// Quickstart: build a small world, collect one pre-conflict and one
// post-conflict DNS sweep through the real measurement pipeline, and
// print the name-server country composition — the paper's Figure 1 in
// two points.
package main

import (
	"context"
	"fmt"
	"log"

	"whereru/internal/analysis"
	"whereru/internal/openintel"
	"whereru/internal/simtime"
	"whereru/internal/store"
	"whereru/internal/world"
)

func main() {
	// A 1:5000-scale world builds in well under a second.
	w, err := world.Build(world.Config{Seed: 1, Scale: 5000, RFShare: 0.10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world: %d domains ever, %d active on %s\n",
		w.NumDomains(), w.ActiveDomains(simtime.ConflictStart), simtime.ConflictStart)

	// Sweep the zone on two days: the eve of the conflict and the end of
	// the study window. Every domain is measured by iterative resolution
	// (NS set, NS addresses, apex A records) against the simulated
	// authoritative hierarchy.
	st := store.New()
	pipe := &openintel.Pipeline{
		Resolver: w.NewResolver(),
		Seeds:    w.Registries,
		Clock:    w.Clock(),
		Store:    st,
		Workers:  4,
	}
	days := []simtime.Day{simtime.ConflictStart.Add(-1), simtime.StudyEnd}
	for _, day := range days {
		stats, err := pipe.Sweep(context.Background(), day)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("swept", stats)
	}

	// Classify: are each domain's name servers in Russia?
	an := &analysis.Analyzer{Store: st, Geo: w.Geo, Internet: w.Internet}
	for _, p := range an.NSCompositionSeries(days, nil) {
		fmt.Printf("%s: %5.1f%% fully Russian NS, %5.1f%% partial, %5.1f%% non (n=%d)\n",
			p.Day, p.FullPct(), p.PartPct(), p.NonPct(), p.Total)
	}
}
