// PKI concentration: the paper's §4. Reads the CT log like Censys does,
// shows certificate issuance collapsing onto Let's Encrypt after the
// invasion (Table 1, Figure 8), the revocation split between ordinary and
// sanctioned domains (Table 2), and the barely-used Russian Trusted Root
// CA that only Internet-wide scans can see (§4.3).
package main

import (
	"fmt"
	"log"
	"os"

	"whereru/internal/analysis"
	"whereru/internal/ct"
	"whereru/internal/pki"
	"whereru/internal/report"
	"whereru/internal/scan"
	"whereru/internal/simtime"
	"whereru/internal/world"
)

func main() {
	w, err := world.Build(world.Config{Seed: 1, Scale: 2000, RFShare: 0.10})
	if err != nil {
		log.Fatal(err)
	}

	// A CT monitor tails the log for certificates naming .ru/.рф domains,
	// exactly as the paper's Censys-indexed pipeline does.
	monitor := ct.NewMonitor(w.CTLog, func(c *pki.Certificate) bool { return c.MatchesRussianTLD() })
	entries := monitor.Poll()
	fmt.Printf("CT log %q: %d entries, %d match .ru/.рф\n\n", w.CTLog.Name, w.CTLog.Size(), len(entries))

	// Table 1: issuance per period.
	t1 := &report.Table{
		Title:   "Issuance by period (paper Table 1)",
		Headers: []string{"period", "total", "Let's Encrypt", "#2", "#3"},
	}
	for _, p := range analysis.IssuanceByPeriod(w.CTLog) {
		second, third := "-", "-"
		if len(p.Issuers) > 1 {
			second = fmt.Sprintf("%s %.2f%%", p.Issuers[1].Org, p.Share(p.Issuers[1].Org))
		}
		if len(p.Issuers) > 2 {
			third = fmt.Sprintf("%s %.2f%%", p.Issuers[2].Org, p.Share(p.Issuers[2].Org))
		}
		t1.AddRow(p.Period.String(), fmt.Sprint(p.Total),
			fmt.Sprintf("%.2f%%", p.Share(pki.LetsEncrypt)), second, third)
	}
	if _, err := t1.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Figure 8: who kept issuing?
	fmt.Println()
	timelines := analysis.IssuanceTimelines(w.CTLog, 10)
	dot := &report.DotTimeline{
		Title: "CA issuance activity (paper Figure 8; '|' marks conflict start and sanctions)",
		From:  simtime.CTWindowStart, To: simtime.CTWindowEnd, Step: 2,
		Marks: map[simtime.Day]byte{simtime.ConflictStart: '|', simtime.SanctionsInEffect: '|'},
	}
	for _, tl := range timelines {
		dot.Rows = append(dot.Rows, report.DotRow{Name: tl.Org, Active: tl.ActiveDays})
	}
	if _, err := dot.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Table 2: revocations, overall vs sanctioned.
	fmt.Println()
	t2 := &report.Table{
		Title:   "Revocations by CA (paper Table 2)",
		Headers: []string{"issuer", "issued", "revoked", "rate", "sanctioned", "revoked", "rate"},
	}
	for _, r := range analysis.RevocationStats(w.CTLog, w.Certs, w.Sanctions, 5) {
		t2.AddRow(r.Org, fmt.Sprint(r.Issued), fmt.Sprint(r.Revoked), report.Pct(r.RevokedPct()),
			fmt.Sprint(r.SancIssued), fmt.Sprint(r.SancRevoked), report.Pct(r.SancRevokedPct()))
	}
	if _, err := t2.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// §4.3: the Russian Trusted Root CA never appears in CT — only
	// Internet-wide TLS scans reveal it.
	archive := scan.NewArchive()
	for d := world.RussianCAStartDay; d <= simtime.CTWindowEnd; d = d.Add(7) {
		archive.Record(d, w.Scanner.Sweep(d))
	}
	rep := analysis.RussianCAImpact(archive, w.Sanctions)
	fmt.Printf("\nRussian Trusted Root CA (visible only in scans):\n")
	fmt.Printf("  unique certificates: %d (paper: 170)\n", rep.UniqueCerts)
	fmt.Printf("  securing %d .ru and %d .рф domains; %d certs cover sanctioned domains (%.0f%% of the list)\n",
		rep.RuDomains, rep.RFDomains, rep.SanctionedCerts, 100*float64(rep.SanctionedDomains)/107)
	fmt.Printf("  other CAs in the same scans: %d certificates\n", rep.BackdropCerts)
}
