// Mail concentration (extension): who runs the mail for .ru/.рф domains?
// The paper's related work (Liu et al., "Who's Got Your Mail?", IMC '21 —
// cited in §5) shows Russia bucking the Western mail-centralization trend
// with heavily domestic providers. This example enables the pipeline's MX
// collection, groups domains by mail operator, and computes HHI market
// concentration alongside the hosting and certificate markets.
package main

import (
	"context"
	"fmt"
	"log"

	"whereru/internal/analysis"
	"whereru/internal/openintel"
	"whereru/internal/simtime"
	"whereru/internal/store"
	"whereru/internal/world"
)

func main() {
	w, err := world.Build(world.Config{Seed: 1, Scale: 5000, RFShare: 0.10})
	if err != nil {
		log.Fatal(err)
	}
	st := store.New()
	pipe := &openintel.Pipeline{
		Resolver:  w.NewResolver(),
		Seeds:     w.Registries,
		Clock:     w.Clock(),
		Store:     st,
		Workers:   4,
		CollectMX: true, // the extension switch
	}
	days := []simtime.Day{
		simtime.ConflictStart.Add(-7),
		world.GoogleStmtDay.Add(45),
	}
	for _, d := range days {
		if _, err := pipe.Sweep(context.Background(), d); err != nil {
			log.Fatal(err)
		}
	}

	an := &analysis.Analyzer{Store: st, Geo: w.Geo, Internet: w.Internet}
	series := an.MailProviderSeries(days, nil)
	fmt.Println("mail operators of .ru/.рф domains (share of domains with MX):")
	for i, label := range []string{"pre-conflict ", "post-conflict"} {
		p := series[i]
		fmt.Printf("\n%s (%s, %d of %d domains publish MX):\n", label, p.Day, p.WithMail, p.Total)
		for _, z := range analysis.TopMailZones(series, 5) {
			fmt.Printf("  %-22s %5.1f%%\n", z, p.Share(z))
		}
	}

	fmt.Println("\nmarket concentration (HHI, 1.0 = monopoly):")
	mailHHI := an.MailConcentration(days, nil)
	hostHHI := an.HostingConcentration(days, nil)
	caHHI := analysis.CAConcentration(w.CTLog)
	fmt.Printf("  mail operators:  %.3f → %.3f\n", mailHHI[0].HHI, mailHHI[1].HHI)
	fmt.Printf("  hosting ASNs:    %.3f → %.3f\n", hostHHI[0].HHI, hostHHI[1].HHI)
	fmt.Printf("  certificate CAs: %.3f (pre-conflict) → %.3f (post-sanctions)\n",
		caHHI[0].HHI, caHHI[2].HHI)
	fmt.Println("\nThe certificate market is the outlier: the paper's §6 warns that")
	fmt.Println("Let's Encrypt's near-complete control of .ru certificates is Russia's")
	fmt.Println("one area of significant exposure — visible here as a CA HHI far above")
	fmt.Println("the diverse hosting and mail markets.")
}
