// Provider exodus: the §3.4 case studies. Amazon, Sedo, Cloudflare and
// Google each announced a different posture toward Russian customers in
// March 2022; this example measures what actually happened to the .ru/.рф
// domains hosted in their networks (Figures 6 and 7).
package main

import (
	"context"
	"fmt"
	"log"

	"whereru/internal/core"
	"whereru/internal/netsim"
	"whereru/internal/simtime"
	"whereru/internal/world"
)

func main() {
	opts := core.QuickOptions()
	opts.Progress = func(format string, args ...any) {
		fmt.Printf("… "+format+"\n", args...)
	}
	study, err := core.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := study.Collect(context.Background()); err != nil {
		log.Fatal(err)
	}

	cases := []struct {
		name      string
		statement string
		asn       netsim.ASN
		baseline  simtime.Day
	}{
		{"Amazon", "no new RU/BY AWS accounts (Mar 8)", 16509, world.AmazonStmtDay},
		{"Sedo", "\"pulling the plug\" on Russian domains (Mar 9)", 47846, world.SedoStmtDay.Add(-1)},
		{"Cloudflare", "complying with sanctions, staying in Russia (Mar 7)", 13335, world.CloudflareStmtDay},
		{"Google", "no new cloud customers in Russia (Mar 10)", 15169, world.GoogleStmtDay},
	}
	scale := study.Scale()
	for _, c := range cases {
		m := study.Movement(c.asn, c.baseline)
		fmt.Printf("\n%s (AS%d) — %s\n", c.name, c.asn, c.statement)
		fmt.Printf("  domains on %s: %d (≈%d at paper scale)\n", c.baseline, m.Original, m.Original*scale)
		fmt.Printf("  by %s: %d remained (%.1f%%), %d relocated (%.1f%%), %d left the zone\n",
			simtime.StudyEnd, m.Remained, m.RemainedPct(), m.RelocatedOut, m.RelocatedPct(), m.Gone)
		fmt.Printf("  incoming: %d newly registered, %d relocated in\n", m.NewlyRegistered, m.RelocatedIn)
		if dests := m.TopDestinations(3); len(dests) > 0 {
			fmt.Printf("  top destinations:")
			for _, d := range dests {
				name := fmt.Sprintf("AS%d", d)
				if p, ok := study.World.ProviderByASN(d); ok {
					name = fmt.Sprintf("%s (AS%d)", p.Org, d)
				}
				fmt.Printf(" %s ×%d", name, m.OutDestinations[d])
			}
			fmt.Println()
		}
	}
	fmt.Println("\nThe paper's conclusion holds in the simulation: exits were real but")
	fmt.Println("far from existential — displaced domains quickly found new providers")
	fmt.Println("(Sedo's parked portfolio largely moved to Serverel in the Netherlands),")
	fmt.Println("and Google's \"relocations\" were mostly an intra-Google ASN shuffle.")
}
