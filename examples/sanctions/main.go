// Sanctions: track the DNS infrastructure of the 107 OFAC/UK-sanctioned
// Russian domains through the 2022 events — the paper's §3.3 / Figure 5.
// Watch the March 3 Netnod cutoff flip a third of the list from partially
// to fully Russian name service overnight.
package main

import (
	"context"
	"fmt"
	"log"

	"whereru/internal/analysis"
	"whereru/internal/openintel"
	"whereru/internal/simtime"
	"whereru/internal/store"
	"whereru/internal/world"
)

func main() {
	w, err := world.Build(world.Config{Seed: 1, Scale: 20000, RFShare: 0.10})
	if err != nil {
		log.Fatal(err)
	}
	list := w.Sanctions
	fmt.Printf("sanctions list: %d domains from %s\n", list.Len(), "US OFAC SDN + UK sanctions list")
	for _, e := range list.Entries()[:5] {
		fmt.Printf("  %-22s %-24s listed %s (%s)\n", e.Domain, e.Entity, e.Listed, e.Authorities)
	}
	fmt.Println("  ...")

	// Daily sweeps around the invasion — but only over the sanctioned
	// names (the full zone is not needed for this analysis).
	st := store.New()
	pipe := &openintel.Pipeline{
		Resolver: w.NewResolver(),
		Clock:    w.Clock(),
		Store:    st,
		Workers:  4,
		Seeds:    seedFunc(func(simtime.Day) []string { return list.AllDomains() }),
	}
	var days []simtime.Day
	for d := simtime.ConflictStart.Add(-3); d <= simtime.Date(2022, 3, 10); d++ {
		days = append(days, d)
	}
	if _, err := pipe.Run(context.Background(), days); err != nil {
		log.Fatal(err)
	}

	an := &analysis.Analyzer{Store: st, Geo: w.Geo, Internet: w.Internet}
	fmt.Println("\nsanctioned-domain NS composition (the paper's Figure 5):")
	for _, p := range an.NSCompositionSeries(days, nil) {
		bar := ""
		for i := 0; i < int(p.FullPct()/2); i++ {
			bar += "#"
		}
		fmt.Printf("%s  full %5.1f%%  part %5.1f%%  non %4.1f%%  |%s\n",
			p.Day, p.FullPct(), p.PartPct(), p.NonPct(), bar)
	}
	fmt.Println("\nNote the partial→full step on 2022-03-03: Netnod (SE) stopped serving",
		"\nits RU-CENTER secondary customers (paper §3.2-3.3).")
}

// seedFunc adapts a function to openintel.Seeder.
type seedFunc func(simtime.Day) []string

func (f seedFunc) ZoneSnapshot(day simtime.Day) []string { return f(day) }
