// Tests live in grid_test so they can drive the full core.Study wiring
// (core imports grid; an internal test package would cycle).
package grid_test

import (
	"bytes"
	"context"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"whereru/internal/core"
	"whereru/internal/grid"
	"whereru/internal/openintel"
	"whereru/internal/simtime"
	"whereru/internal/store"
	"whereru/internal/world"
)

// testOpts is a short dense window over the small world: ~8 sweeps of a
// few hundred domains, enough for several work units per day.
func testOpts() core.Options {
	opts := core.QuickOptions()
	opts.World.Scale = 20000
	opts.World.Seed = 5
	opts.DenseStep = 3
	opts.StudyStart = simtime.Date(2022, 2, 18)
	opts.StudyEnd = simtime.Date(2022, 3, 8)
	opts.GridShard = 64
	return opts
}

// runStudy collects with opts and returns the serialized store and the
// rendered report.
func runStudy(t *testing.T, opts core.Options) (storeBytes, report []byte) {
	t.Helper()
	study, err := core.New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := study.Collect(context.Background()); err != nil {
		t.Fatalf("Collect: %v", err)
	}
	var st, rep bytes.Buffer
	if err := study.SaveStore(&st); err != nil {
		t.Fatalf("SaveStore: %v", err)
	}
	if err := study.RenderAll(&rep); err != nil {
		t.Fatalf("RenderAll: %v", err)
	}
	return st.Bytes(), rep.Bytes()
}

// TestGridDeterminism is the core guarantee: the same study through the
// grid — any worker count, including zero (local fallback) — produces a
// store and report byte-identical to the single-process run.
func TestGridDeterminism(t *testing.T) {
	baseStore, baseReport := runStudy(t, testOpts())

	for _, workers := range []int{0, 1, 3, 8} {
		workers := workers
		t.Run(map[int]string{0: "local-fallback", 1: "one", 3: "three", 8: "eight"}[workers], func(t *testing.T) {
			t.Parallel()
			opts := testOpts()
			opts.GridListen = "127.0.0.1:0"
			opts.GridWorkers = workers
			opts.GridMinWorkers = workers
			gotStore, gotReport := runStudy(t, opts)
			if !bytes.Equal(gotStore, baseStore) {
				t.Errorf("store bytes differ from single-process run (%d vs %d bytes)", len(gotStore), len(baseStore))
			}
			if !bytes.Equal(gotReport, baseReport) {
				t.Errorf("report differs from single-process run")
			}
		})
	}
}

// TestGridJournalDeterminism: with checkpointing on, the journal a grid
// run fsyncs is byte-identical to a single-process run's (fault-free
// runs; the journal sorts measurements by domain, so shard merge order
// cannot leak into the bytes).
func TestGridJournalDeterminism(t *testing.T) {
	dir := t.TempDir()
	base := testOpts()
	base.CheckpointPath = dir + "/base.wrjl"
	baseStore, _ := runStudy(t, base)

	gridOpts := testOpts()
	gridOpts.CheckpointPath = dir + "/grid.wrjl"
	gridOpts.GridListen = "127.0.0.1:0"
	gridOpts.GridWorkers = 3
	gridOpts.GridMinWorkers = 3
	gridStore, _ := runStudy(t, gridOpts)

	if !bytes.Equal(gridStore, baseStore) {
		t.Fatalf("store bytes differ")
	}
	baseJ := readFile(t, base.CheckpointPath)
	gridJ := readFile(t, gridOpts.CheckpointPath)
	if !bytes.Equal(baseJ, gridJ) {
		t.Errorf("journal bytes differ: single-process %d bytes, grid %d bytes", len(baseJ), len(gridJ))
	}
}

// TestGridKillWorkerMidSweep: a worker that vanishes mid-unit (abrupt
// connection close on its second assignment) must not change a byte of
// the result, and the coordinator must observably reassign its unit.
func TestGridKillWorkerMidSweep(t *testing.T) {
	baseStore, baseReport := runStudy(t, testOpts())

	opts := testOpts()
	opts.GridListen = "127.0.0.1:0"
	opts.GridWorkers = 2
	opts.GridMinWorkers = 3 // two healthy in-process + the doomed one

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	opts.OnGridListen = func(addr string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &grid.Worker{
				Pipeline:       workerPipeline(t, opts),
				Name:           "doomed",
				Fingerprint:    core.GridFingerprint(opts),
				ExitAfterUnits: 1,
			}
			// Exits nil when it self-kills on its second assignment.
			if err := w.Run(ctx, addr); err != nil && ctx.Err() == nil {
				t.Errorf("doomed worker: %v", err)
			}
		}()
	}

	study, err := core.New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := study.Collect(context.Background()); err != nil {
		t.Fatalf("Collect: %v", err)
	}
	cancel()
	wg.Wait()

	snap := study.Grid.Metrics().Snapshot()
	if snap["grid_units_reassigned_total"] == 0 {
		t.Errorf("expected a nonzero reassignment counter after killing a worker, got %v", snap)
	}
	if snap["grid_store_epochs"] == 0 || snap["grid_store_distinct_configs"] == 0 ||
		snap["grid_store_resident_bytes"] == 0 {
		t.Errorf("store memory gauges missing from grid metrics: %v", snap)
	}

	var st, rep bytes.Buffer
	if err := study.SaveStore(&st); err != nil {
		t.Fatalf("SaveStore: %v", err)
	}
	if err := study.RenderAll(&rep); err != nil {
		t.Fatalf("RenderAll: %v", err)
	}
	if !bytes.Equal(st.Bytes(), baseStore) {
		t.Errorf("store bytes differ after mid-sweep worker death")
	}
	if !bytes.Equal(rep.Bytes(), baseReport) {
		t.Errorf("report differs after mid-sweep worker death")
	}
}

// TestGridHangWorkerLeaseExpiry: a worker that goes silent — connection
// open, no results, no heartbeats — must lose its lease to the TTL and
// the unit must complete elsewhere with identical bytes.
func TestGridHangWorkerLeaseExpiry(t *testing.T) {
	opts := testOpts()
	opts.StudyEnd = opts.StudyStart // single sweep day keeps the hang short
	day := opts.StudyStart

	// Single-process baseline for the day.
	base := workerPipeline(t, opts)
	if _, err := base.Sweep(context.Background(), day); err != nil {
		t.Fatalf("baseline sweep: %v", err)
	}
	var baseStore bytes.Buffer
	if _, err := base.Store.WriteTo(&baseStore); err != nil {
		t.Fatalf("baseline store: %v", err)
	}

	coordPipe := workerPipeline(t, opts)
	coord := grid.NewCoordinator(coordPipe)
	coord.ShardSize = 64
	coord.LeaseTTL = 200 * time.Millisecond
	coord.Fingerprint = core.GridFingerprint(opts)
	addr, err := coord.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer coord.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for _, w := range []*grid.Worker{
		{Pipeline: workerPipeline(t, opts), Name: "healthy", Fingerprint: core.GridFingerprint(opts), HeartbeatEvery: 50 * time.Millisecond},
		{Pipeline: workerPipeline(t, opts), Name: "hanger", Fingerprint: core.GridFingerprint(opts), HeartbeatEvery: 50 * time.Millisecond, HangAfterUnits: 1},
	} {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx, addr) // errors are fine: the hanger dies by cancel
		}()
	}
	if err := coord.WaitWorkers(ctx, 2); err != nil {
		t.Fatalf("WaitWorkers: %v", err)
	}

	if _, err := coord.SweepDay(ctx, day); err != nil {
		t.Fatalf("SweepDay: %v", err)
	}
	cancel()
	coord.Close()
	wg.Wait()

	snap := coord.Metrics().Snapshot()
	if snap["grid_units_reassigned_total"] == 0 {
		t.Errorf("expected lease expiry to reassign the hung worker's unit, got %v", snap)
	}
	var got bytes.Buffer
	if _, err := coordPipe.Store.WriteTo(&got); err != nil {
		t.Fatalf("store: %v", err)
	}
	if !bytes.Equal(got.Bytes(), baseStore.Bytes()) {
		t.Errorf("store bytes differ after lease expiry")
	}
}

// TestGridFingerprintMismatch: a worker built against a different world
// must be rejected at handshake, never leased work.
func TestGridFingerprintMismatch(t *testing.T) {
	opts := testOpts()
	coord := grid.NewCoordinator(workerPipeline(t, opts))
	coord.Fingerprint = core.GridFingerprint(opts)
	addr, err := coord.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer coord.Close()

	w := &grid.Worker{
		Pipeline:    workerPipeline(t, opts),
		Name:        "imposter",
		Fingerprint: core.GridFingerprint(opts) + 1,
	}
	err = w.Run(context.Background(), addr)
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("want handshake rejection, got %v", err)
	}
}

// workerPipeline builds a private world for opts, as a worker process
// would, and returns a measurement pipeline over it.
func workerPipeline(t testing.TB, opts core.Options) *openintel.Pipeline {
	t.Helper()
	w, err := world.Build(opts.World)
	if err != nil {
		t.Fatalf("world.Build: %v", err)
	}
	return &openintel.Pipeline{
		Resolver:  w.NewResolver(),
		Seeds:     w.Registries,
		Clock:     w.Clock(),
		Store:     store.New(),
		Workers:   opts.Workers,
		CollectMX: opts.CollectMX,
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return b
}
