// White-box tests for lease-state edge cases that external tests cannot
// reach deterministically (package grid_test drives full studies; this
// file pokes the coordinator's state machine directly).
package grid

import (
	"testing"
	"time"

	"whereru/internal/openintel"
	"whereru/internal/simtime"
	"whereru/internal/store"
)

// TestLocalLeaseSurvivesStaleWorkerResult pins the at-most-once merge
// guarantee for the hung-worker/lease-expiry scenario: a unit is leased
// to the local executor when a worker's result for an earlier, expired
// lease of the same unit arrives. handleResult may merge the stale
// result (unit content is deterministic), but when the local
// measurement finishes afterwards it must NOT record again — a second
// sweep.done increment would let SweepDay's wait loop exit with other
// units still open and a nil out in the merge.
func TestLocalLeaseSurvivesStaleWorkerResult(t *testing.T) {
	day := simtime.Date(2022, 2, 24)
	ms := []store.Measurement{
		{Domain: "a.xn--p1ai", Day: day},
		{Domain: "b.ru", Day: day},
	}
	batch, err := store.EncodeMeasurementBatch(day, ms)
	if err != nil {
		t.Fatalf("EncodeMeasurementBatch: %v", err)
	}

	c := NewCoordinator(nil)
	units := []*unit{{idx: 0, start: 0, end: 2}, {idx: 1, start: 2, end: 4}}
	c.sweep = &sweepState{day: day, units: units}

	// An expired worker lease (seq 1) requeued the unit...
	c.seq++
	staleSeq := c.seq

	// ...and the local executor holds the current lease (seq 2, owner
	// nil), exactly as localExecutor sets it up before MeasureUnit.
	c.seq++
	u := units[0]
	u.state = unitLeased
	u.seq = c.seq
	u.owner = nil
	u.started = time.Now()
	localSeq := u.seq

	// The quiet worker answers its expired lease while the local
	// measurement is still running: merged as a stale-but-usable result.
	w := &workerConn{name: "late"}
	if err := c.handleResult(w, resultMsg{Unit: 0, Seq: staleSeq, Day: day, Batch: batch}); err != nil {
		t.Fatalf("handleResult: %v", err)
	}
	if u.state != unitDone {
		t.Fatalf("unit state = %d after stale result, want unitDone", u.state)
	}
	if c.sweep.done != 1 {
		t.Fatalf("sweep.done = %d after stale result, want 1", c.sweep.done)
	}

	// The local measurement lands afterwards: it must be dropped as a
	// duplicate, not double-counted.
	c.recordLocal(u, localSeq, openintel.UnitResult{Measurements: ms})
	if c.sweep.done != 1 {
		t.Fatalf("sweep.done = %d after duplicate local record, want 1 (double-completion)", c.sweep.done)
	}

	snap := c.Metrics().Snapshot()
	if snap["grid_stale_results_total"] != 1 {
		t.Errorf("grid_stale_results_total = %d, want 1", snap["grid_stale_results_total"])
	}
	if snap["grid_duplicate_units_total"] != 1 {
		t.Errorf("grid_duplicate_units_total = %d, want 1", snap["grid_duplicate_units_total"])
	}
	if snap["grid_units_local_total"] != 0 {
		t.Errorf("grid_units_local_total = %d, want 0 (local result was a duplicate)", snap["grid_units_local_total"])
	}
}

// TestRecordLocalFresh: the ordinary path — nobody raced the local
// executor — still records exactly once.
func TestRecordLocalFresh(t *testing.T) {
	day := simtime.Date(2022, 2, 24)
	c := NewCoordinator(nil)
	u := &unit{idx: 0, start: 0, end: 2}
	c.sweep = &sweepState{day: day, units: []*unit{u}}

	c.seq++
	u.state = unitLeased
	u.seq = c.seq
	u.started = time.Now()

	c.recordLocal(u, u.seq, openintel.UnitResult{Measurements: []store.Measurement{
		{Domain: "a.ru", Day: day}, {Domain: "b.ru", Day: day},
	}})
	if u.state != unitDone || c.sweep.done != 1 || u.out == nil {
		t.Fatalf("fresh local record not merged: state=%d done=%d out=%v", u.state, c.sweep.done, u.out)
	}
	if snap := c.Metrics().Snapshot(); snap["grid_units_local_total"] != 1 {
		t.Errorf("grid_units_local_total = %d, want 1", snap["grid_units_local_total"])
	}
}
