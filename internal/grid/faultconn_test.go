package grid_test

import (
	"bytes"
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"whereru/internal/core"
	"whereru/internal/grid"
	"whereru/internal/iofault"
)

// The grid's transport faults are injected with iofault.Conn — the
// generalized descendant of the seeded lossy conn these tests were born
// with. Decisions are pure functions of (seed, write-index), so every
// run degrades the same frame the same way.

// resultFrameMin distinguishes result frames (hundreds of bytes, they
// carry a measurement batch) from hello (~tens) and heartbeats (9).
const resultFrameMin = 200

// faultDial wraps each dialed connection in an iofault.Conn with p.
func faultDial(seed int64, p iofault.ConnProfile) func(ctx context.Context, addr string) (net.Conn, error) {
	return func(ctx context.Context, addr string) (net.Conn, error) {
		var d net.Dialer
		nc, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		return iofault.NewConn(nc, seed, p), nil
	}
}

// lossyGridSweep runs one sweep day with a faulted worker plus a clean
// worker, returning the coordinator's metrics and store bytes alongside
// the store bytes of a clean single-process baseline.
func lossyGridSweep(t *testing.T, p iofault.ConnProfile) (snap map[string]uint64, got, want []byte) {
	t.Helper()
	opts := testOpts()
	day := opts.StudyStart

	base := workerPipeline(t, opts)
	if _, err := base.Sweep(context.Background(), day); err != nil {
		t.Fatalf("baseline sweep: %v", err)
	}
	var baseStore bytes.Buffer
	if _, err := base.Store.WriteTo(&baseStore); err != nil {
		t.Fatalf("baseline store: %v", err)
	}

	coordPipe := workerPipeline(t, opts)
	coord := grid.NewCoordinator(coordPipe)
	coord.ShardSize = 64
	coord.LeaseTTL = time.Second
	coord.Fingerprint = core.GridFingerprint(opts)
	addr, err := coord.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer coord.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for _, w := range []*grid.Worker{
		{Pipeline: workerPipeline(t, opts), Name: "lossy", Fingerprint: core.GridFingerprint(opts), Dial: faultDial(0xC0FFEE, p)},
		{Pipeline: workerPipeline(t, opts), Name: "clean", Fingerprint: core.GridFingerprint(opts)},
	} {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx, addr) // a lossy worker may die of its own faults
		}()
	}
	if err := coord.WaitWorkers(ctx, 2); err != nil {
		t.Fatalf("WaitWorkers: %v", err)
	}

	if _, err := coord.SweepDay(ctx, day); err != nil {
		t.Fatalf("SweepDay: %v", err)
	}
	cancel()
	coord.Close()
	wg.Wait()

	var gotStore bytes.Buffer
	if _, err := coordPipe.Store.WriteTo(&gotStore); err != nil {
		t.Fatalf("store: %v", err)
	}
	return coord.Metrics().Snapshot(), gotStore.Bytes(), baseStore.Bytes()
}

// TestGridLossyWorker: a worker whose transport corrupts or tears a
// result frame must be detected (checksum / framing), dropped, and its
// units re-measured elsewhere — with the final store byte-identical to
// a clean single-process sweep.
func TestGridLossyWorker(t *testing.T) {
	profiles := map[string]iofault.ConnProfile{
		"corrupt": {Corrupt: 1, MinWriteLen: resultFrameMin, Once: true},
		"cut":     {Cut: 1, MinWriteLen: resultFrameMin, Once: true},
	}
	for mode, p := range profiles {
		mode, p := mode, p
		t.Run(mode, func(t *testing.T) {
			snap, got, want := lossyGridSweep(t, p)
			if mode == "corrupt" && snap["grid_frames_rejected_total"] == 0 {
				t.Errorf("expected the corrupted frame to be rejected, got %v", snap)
			}
			if snap["grid_units_reassigned_total"] == 0 {
				t.Errorf("expected the lossy worker's unit to be reassigned, got %v", snap)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("store bytes differ after transport faults")
			}
		})
	}
}

// TestGridDuplicateFrames: a transport that delivers a result frame
// twice must not double-merge the unit — at-most-once is the merge
// contract, and the store must stay byte-identical.
func TestGridDuplicateFrames(t *testing.T) {
	snap, got, want := lossyGridSweep(t, iofault.ConnProfile{
		Duplicate: 1, MinWriteLen: resultFrameMin, Once: true,
	})
	if snap["grid_duplicate_units_total"] == 0 {
		t.Errorf("expected the duplicated frame to be counted, got %v", snap)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("store bytes differ after a duplicated result frame")
	}
}

// TestGridSlowDrip: a fragmenting, dribbling transport (every frame
// delivered in 7-byte pieces) is slow but not wrong — the length-framed
// reader reassembles, nothing is rejected, and the store is
// byte-identical.
func TestGridSlowDrip(t *testing.T) {
	snap, got, want := lossyGridSweep(t, iofault.ConnProfile{
		Drip: 1, DripChunk: 7,
	})
	if snap["grid_frames_rejected_total"] != 0 {
		t.Errorf("drip delivery caused frame rejections: %v", snap)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("store bytes differ after drip delivery")
	}
}

// TestGridPartitionedWorker: a worker that falls silent mid-sweep (a
// netsplit: its writes are swallowed, reads deliver nothing) must have
// its leases expire and its units re-measured elsewhere, with the final
// store byte-identical.
func TestGridPartitionedWorker(t *testing.T) {
	snap, got, want := lossyGridSweep(t, iofault.ConnProfile{
		// Let the hello and the first result through, then netsplit.
		PartitionAfterWrites: 2,
	})
	if snap["grid_units_reassigned_total"] == 0 {
		t.Errorf("expected the partitioned worker's units to be reassigned, got %v", snap)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("store bytes differ after a partition")
	}
}
