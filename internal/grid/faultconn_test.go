package grid_test

import (
	"bytes"
	"context"
	"hash/fnv"
	"net"
	"sync"
	"testing"
	"time"

	"whereru/internal/core"
	"whereru/internal/grid"
)

// faultConn wraps a worker's connection and injects one deterministic
// transport fault, in the spirit of dns.FaultTransport: the decision is
// a pure function of the seed and the write counter, so every run of
// the test degrades the same frame the same way. Frames are written in
// a single Write call, so "one write" is "one frame" here.
type faultConn struct {
	net.Conn
	seed uint64
	mode string // "corrupt" flips a payload byte; "cut" tears the frame

	mu     sync.Mutex
	writes int
	fired  bool
}

// resultFrameMin distinguishes result frames (hundreds of bytes, they
// carry a measurement batch) from hello (~tens) and heartbeats (9).
const resultFrameMin = 200

func (f *faultConn) Write(b []byte) (int, error) {
	f.mu.Lock()
	f.writes++
	fire := !f.fired && len(b) >= resultFrameMin
	if fire {
		f.fired = true
	}
	n := f.writes
	f.mu.Unlock()
	if !fire {
		return f.Conn.Write(b)
	}
	switch f.mode {
	case "corrupt":
		// Flip one bit of a seed-chosen payload byte; the checksum no
		// longer matches and the coordinator must reject the frame.
		h := fnv.New64a()
		var k [16]byte
		for i := 0; i < 8; i++ {
			k[i] = byte(f.seed >> (8 * i))
			k[8+i] = byte(uint64(n) >> (8 * i))
		}
		h.Write(k[:])
		c := make([]byte, len(b))
		copy(c, b)
		c[4+h.Sum64()%uint64(len(b)-8)] ^= 0x40 // stay inside the payload
		return f.Conn.Write(c)
	case "cut":
		// Tear the frame: half the bytes hit the wire, then the
		// connection vanishes mid-unit.
		f.Conn.Write(b[:len(b)/2])
		f.Conn.Close()
		return 0, net.ErrClosed
	default:
		return f.Conn.Write(b)
	}
}

// TestGridLossyWorker: a worker whose transport corrupts or tears a
// result frame must be detected (checksum / framing), dropped, and its
// units re-measured elsewhere — with the final store byte-identical to
// a clean single-process sweep.
func TestGridLossyWorker(t *testing.T) {
	for _, mode := range []string{"corrupt", "cut"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			opts := testOpts()
			day := opts.StudyStart

			base := workerPipeline(t, opts)
			if _, err := base.Sweep(context.Background(), day); err != nil {
				t.Fatalf("baseline sweep: %v", err)
			}
			var baseStore bytes.Buffer
			if _, err := base.Store.WriteTo(&baseStore); err != nil {
				t.Fatalf("baseline store: %v", err)
			}

			coordPipe := workerPipeline(t, opts)
			coord := grid.NewCoordinator(coordPipe)
			coord.ShardSize = 64
			coord.LeaseTTL = time.Second
			coord.Fingerprint = core.GridFingerprint(opts)
			addr, err := coord.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatalf("Listen: %v", err)
			}
			defer coord.Close()

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			lossyDial := func(ctx context.Context, addr string) (net.Conn, error) {
				var d net.Dialer
				nc, err := d.DialContext(ctx, "tcp", addr)
				if err != nil {
					return nil, err
				}
				return &faultConn{Conn: nc, seed: 0xC0FFEE, mode: mode}, nil
			}
			var wg sync.WaitGroup
			for _, w := range []*grid.Worker{
				{Pipeline: workerPipeline(t, opts), Name: "lossy", Fingerprint: core.GridFingerprint(opts), Dial: lossyDial},
				{Pipeline: workerPipeline(t, opts), Name: "clean", Fingerprint: core.GridFingerprint(opts)},
			} {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					w.Run(ctx, addr) // the lossy worker dies of its own faults
				}()
			}
			if err := coord.WaitWorkers(ctx, 2); err != nil {
				t.Fatalf("WaitWorkers: %v", err)
			}

			if _, err := coord.SweepDay(ctx, day); err != nil {
				t.Fatalf("SweepDay: %v", err)
			}
			cancel()
			coord.Close()
			wg.Wait()

			snap := coord.Metrics().Snapshot()
			if mode == "corrupt" && snap["grid_frames_rejected_total"] == 0 {
				t.Errorf("expected the corrupted frame to be rejected, got %v", snap)
			}
			if snap["grid_units_reassigned_total"] == 0 {
				t.Errorf("expected the lossy worker's unit to be reassigned, got %v", snap)
			}
			var got bytes.Buffer
			if _, err := coordPipe.Store.WriteTo(&got); err != nil {
				t.Fatalf("store: %v", err)
			}
			if !bytes.Equal(got.Bytes(), baseStore.Bytes()) {
				t.Errorf("store bytes differ after transport faults")
			}
		})
	}
}
