package grid

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"whereru/internal/openintel"
	"whereru/internal/simtime"
	"whereru/internal/store"
)

// Worker executes grid work units: it dials the coordinator, proves its
// configuration fingerprint, then measures every unit it is leased and
// streams the sorted results back, heartbeating in between so its leases
// stay alive. The worker's pipeline is built against its own copy of the
// world (same seed, same options), which is what makes unit results
// deterministic across workers — any worker measuring unit i produces
// the same bytes.
type Worker struct {
	// Pipeline measures units. Only MeasureUnit runs here; the worker
	// never touches its pipeline's store or journal.
	Pipeline *openintel.Pipeline
	// Name identifies the worker in coordinator logs.
	Name string
	// Fingerprint must match the coordinator's or the connection is
	// rejected at handshake.
	Fingerprint uint64
	// HeartbeatEvery is the lease-renewal interval (default
	// DefaultLeaseTTL/3 — three beats per lease TTL).
	HeartbeatEvery time.Duration
	// DialRetryFor keeps re-dialing a refused address for this long
	// before giving up (default 10s), so workers may start before the
	// coordinator listens.
	DialRetryFor time.Duration
	// Dial overrides the transport (tests inject lossy connections); the
	// default is a plain TCP dial.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Logf, if set, receives operational log lines.
	Logf func(format string, args ...any)

	// ExitAfterUnits, when > 0, makes the worker abruptly close its
	// connection upon receiving its (n+1)th assignment — a test hook
	// simulating a worker killed mid-unit.
	ExitAfterUnits int
	// HangAfterUnits, when > 0, makes the worker go silent upon its
	// (n+1)th assignment — connection open, no results, no heartbeats —
	// until ctx is cancelled: the lease-expiry path.
	HangAfterUnits int
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// framedConn serializes frame writes (results and heartbeats come from
// different goroutines).
type framedConn struct {
	nc net.Conn
	mu sync.Mutex
}

func (f *framedConn) send(payload []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return writeFrame(f.nc, payload)
}

// Run connects to the coordinator at addr and serves assignments until
// the coordinator says done (nil), the context is cancelled, or the
// connection fails.
func (w *Worker) Run(ctx context.Context, addr string) error {
	nc, err := w.dialRetry(ctx, addr)
	if err != nil {
		return fmt.Errorf("grid: worker %s: dial %s: %w", w.Name, addr, err)
	}
	defer nc.Close()
	conn := &framedConn{nc: nc}

	nc.SetDeadline(time.Now().Add(handshakeTimeout))
	if err := conn.send(helloMsg{Name: w.Name, Fingerprint: w.Fingerprint}.encode()); err != nil {
		return fmt.Errorf("grid: worker %s: hello: %w", w.Name, err)
	}
	payload, err := readFrame(nc)
	if err != nil {
		return fmt.Errorf("grid: worker %s: handshake: %w", w.Name, err)
	}
	r := &wireReader{b: payload}
	switch t := r.u8("message type"); t {
	case msgWelcome:
		if _, err := decodeWelcome(r); err != nil {
			return fmt.Errorf("grid: worker %s: %w", w.Name, err)
		}
	case msgReject:
		rej, err := decodeReject(r)
		if err != nil {
			return fmt.Errorf("grid: worker %s: %w", w.Name, err)
		}
		return fmt.Errorf("grid: worker %s rejected: %s", w.Name, rej.Reason)
	default:
		return fmt.Errorf("grid: worker %s: unexpected handshake message type %d", w.Name, t)
	}
	nc.SetDeadline(time.Time{})
	w.logf("grid: worker %s connected to %s", w.Name, addr)

	// A cancelled worker closes its connection so the blocking read
	// returns; the coordinator requeues whatever it held.
	unwatch := closeOnDone(ctx, nc)
	defer unwatch()

	var hung atomic.Bool
	hbStop := make(chan struct{})
	defer close(hbStop)
	go w.heartbeatLoop(conn, &hung, hbStop)

	completed := 0
	var seeds []string
	haveDay := false
	var curDay simtime.Day
	for {
		payload, err := readFrame(nc)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				// The coordinator hung up: for a worker that is the same
				// as being told to drain.
				w.logf("grid: worker %s: coordinator closed the connection (%d units served)", w.Name, completed)
				return nil
			}
			return fmt.Errorf("grid: worker %s: read: %w", w.Name, err)
		}
		r := &wireReader{b: payload}
		switch t := r.u8("message type"); t {
		case msgDone:
			w.logf("grid: worker %s done (%d units)", w.Name, completed)
			return nil
		case msgAssign:
			msg, err := decodeAssign(r)
			if err != nil {
				return fmt.Errorf("grid: worker %s: %w", w.Name, err)
			}
			if w.ExitAfterUnits > 0 && completed >= w.ExitAfterUnits {
				// Die mid-unit: the assignment is accepted by the wire
				// and never answered; the connection just vanishes.
				nc.Close()
				return nil
			}
			if w.HangAfterUnits > 0 && completed >= w.HangAfterUnits {
				// Go catatonic: connection open, heartbeats stopped, the
				// lease left to expire.
				hung.Store(true)
				<-ctx.Done()
				return ctx.Err()
			}
			if !haveDay || msg.Day != curDay {
				// Day boundary: move this worker's world to the sweep day
				// and flush resolver caches, exactly as Sweep does.
				if w.Pipeline.Clock != nil {
					w.Pipeline.Clock.Set(msg.Day)
				}
				w.Pipeline.Resolver.FlushCache()
				seeds = w.Pipeline.Seeds.ZoneSnapshot(msg.Day)
				curDay, haveDay = msg.Day, true
			}
			if int(msg.End) > len(seeds) {
				return fmt.Errorf("grid: worker %s: assignment [%d, %d) beyond inventory of %d", w.Name, msg.Start, msg.End, len(seeds))
			}
			res, err := w.Pipeline.MeasureUnit(ctx, msg.Day, seeds[msg.Start:msg.End])
			if err != nil {
				return err
			}
			batch, err := store.EncodeMeasurementBatch(msg.Day, res.Measurements)
			if err != nil {
				return fmt.Errorf("grid: worker %s: encoding unit %d: %w", w.Name, msg.Unit, err)
			}
			out := resultMsg{
				Unit:           msg.Unit,
				Seq:            msg.Seq,
				Day:            msg.Day,
				Failed:         uint32(res.Failed),
				NXDomain:       uint32(res.NXDomain),
				Unreachable:    uint32(res.Unreachable),
				Retries:        uint32(res.Retries),
				Recovered:      uint32(res.Recovered),
				CacheHits:      uint64(res.CacheHits),
				CacheMisses:    uint64(res.CacheMisses),
				CacheCoalesced: uint64(res.CacheCoalesced),
				Latency:        res.Latency,
				Batch:          batch,
			}
			if err := conn.send(out.encode()); err != nil {
				return fmt.Errorf("grid: worker %s: sending unit %d: %w", w.Name, msg.Unit, err)
			}
			completed++
		default:
			return fmt.Errorf("grid: worker %s: unexpected message type %d", w.Name, t)
		}
	}
}

func (w *Worker) heartbeatLoop(conn *framedConn, hung *atomic.Bool, stop <-chan struct{}) {
	every := w.HeartbeatEvery
	if every <= 0 {
		every = DefaultLeaseTTL / 3
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if hung.Load() {
				return
			}
			if err := conn.send(encodeHeartbeat()); err != nil {
				return // the main read loop surfaces the connection error
			}
		}
	}
}

// dialRetry dials addr, retrying refused connections for DialRetryFor so
// worker processes may start ahead of the coordinator. Only
// ECONNREFUSED is retried — nobody listening yet is the one condition
// startup ordering explains; any other dial error (bad address, DNS
// failure, unreachable network) is misconfiguration and fails fast.
func (w *Worker) dialRetry(ctx context.Context, addr string) (net.Conn, error) {
	dial := w.Dial
	if dial == nil {
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	window := w.DialRetryFor
	if window <= 0 {
		window = 10 * time.Second
	}
	deadline := time.Now().Add(window)
	for {
		nc, err := dial(ctx, addr)
		if err == nil {
			return nc, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !errors.Is(err, syscall.ECONNREFUSED) || time.Now().After(deadline) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// closeOnDone force-closes nc when ctx finishes so blocked reads return;
// the returned func stops the watcher.
func closeOnDone(ctx context.Context, nc net.Conn) func() {
	stopped := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			nc.Close()
		case <-stopped:
		}
	}()
	return func() { close(stopped) }
}
