// Package grid distributes sweep execution across worker processes: a
// coordinator shards each day's domain inventory into contiguous work
// units, leases them to workers over a length-framed checksummed TCP
// protocol, and merges the returned measurement batches deterministically
// — by unit index, never arrival order — so the resulting store, report,
// and journal are byte-identical to a single-process Pipeline.Run
// regardless of worker count, scheduling, or mid-sweep worker death.
package grid

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"whereru/internal/openintel"
	"whereru/internal/simtime"
)

// Frame layout (everything big-endian, in the spirit of the store codec):
//
//	u32 payloadLen | payload | u32 crc32c(payload)
//
// payload:
//
//	u8 msgType | type-specific fields
//
// The checksum is over the payload only; a torn or bit-flipped frame is
// detected at the receiver and the connection dropped — the lease
// machinery then reassigns whatever that worker held. There is no
// resynchronization: a framing error is a connection error.

const (
	// maxFramePayload bounds one frame; a full-zone measurement batch at
	// study scale fits well inside the store's segment limit, which this
	// mirrors.
	maxFramePayload = 1 << 26

	frameHeaderLen  = 4
	frameTrailerLen = 4
)

// Message types.
const (
	msgHello     = 1 // worker → coordinator: name, config fingerprint
	msgWelcome   = 2 // coordinator → worker: fingerprint echo, accepted
	msgReject    = 3 // coordinator → worker: refused (fingerprint mismatch)
	msgAssign    = 4 // coordinator → worker: lease one unit
	msgResult    = 5 // worker → coordinator: unit measurements + tallies
	msgHeartbeat = 6 // worker → coordinator: renew all held leases
	msgDone      = 7 // coordinator → worker: no more work, drain and exit
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// wireError marks protocol-level corruption (bad checksum, short frame,
// malformed payload). The coordinator and worker treat it as fatal for
// the connection, never for the run.
type wireError struct{ msg string }

func (e *wireError) Error() string { return "grid: wire: " + e.msg }

func wireErrorf(format string, args ...any) error {
	return &wireError{msg: fmt.Sprintf(format, args...)}
}

// writeFrame writes one checksummed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFramePayload {
		return wireErrorf("payload %d bytes exceeds limit %d", len(payload), maxFramePayload)
	}
	buf := make([]byte, frameHeaderLen+len(payload)+frameTrailerLen)
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[frameHeaderLen:], payload)
	binary.BigEndian.PutUint32(buf[frameHeaderLen+len(payload):], crc32.Checksum(payload, crcTable))
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame and verifies its checksum. Transport errors
// pass through; integrity failures surface as *wireError.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFramePayload {
		return nil, wireErrorf("frame announces %d bytes (limit %d)", n, maxFramePayload)
	}
	buf := make([]byte, int(n)+frameTrailerLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	payload := buf[:n]
	want := binary.BigEndian.Uint32(buf[n:])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, wireErrorf("frame checksum mismatch: got %08x want %08x", got, want)
	}
	return payload, nil
}

// wireWriter accumulates a payload with error latching.
type wireWriter struct{ buf []byte }

func (w *wireWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *wireWriter) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *wireWriter) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *wireWriter) i32(v int32)  { w.u32(uint32(v)) }
func (w *wireWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *wireWriter) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// wireReader parses a payload with error latching; every read is
// bounds-checked so a hostile payload cannot panic or over-allocate.
type wireReader struct {
	b   []byte
	err error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = wireErrorf(format, args...)
	}
}

func (r *wireReader) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.fail("%s: need %d bytes, have %d", what, n, len(r.b))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *wireReader) u8(what string) uint8 {
	b := r.take(1, what)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *wireReader) u32(what string) uint32 {
	b := r.take(4, what)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *wireReader) u64(what string) uint64 {
	b := r.take(8, what)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *wireReader) i32(what string) int32 { return int32(r.u32(what)) }

func (r *wireReader) str(what string) string {
	n := r.u32(what + " length")
	if r.err == nil && int(n) > len(r.b) {
		r.fail("%s: announces %d bytes, have %d", what, n, len(r.b))
	}
	b := r.take(int(n), what)
	return string(b)
}

func (r *wireReader) bytes(what string) []byte {
	n := r.u32(what + " length")
	if r.err == nil && int(n) > len(r.b) {
		r.fail("%s: announces %d bytes, have %d", what, n, len(r.b))
	}
	return r.take(int(n), what)
}

func (r *wireReader) done(what string) error {
	if r.err == nil && len(r.b) != 0 {
		r.fail("%s: %d trailing bytes", what, len(r.b))
	}
	return r.err
}

// helloMsg opens a worker connection. The fingerprint hashes every
// option that shapes measurement results; the coordinator rejects a
// worker built against a different world, because merging its units
// would silently corrupt the study.
type helloMsg struct {
	Name        string
	Fingerprint uint64
}

func (m helloMsg) encode() []byte {
	var w wireWriter
	w.u8(msgHello)
	w.str(m.Name)
	w.u64(m.Fingerprint)
	return w.buf
}

func decodeHello(r *wireReader) (helloMsg, error) {
	var m helloMsg
	m.Name = r.str("hello name")
	m.Fingerprint = r.u64("hello fingerprint")
	return m, r.done("hello")
}

type welcomeMsg struct {
	Fingerprint uint64
}

func (m welcomeMsg) encode() []byte {
	var w wireWriter
	w.u8(msgWelcome)
	w.u64(m.Fingerprint)
	return w.buf
}

func decodeWelcome(r *wireReader) (welcomeMsg, error) {
	var m welcomeMsg
	m.Fingerprint = r.u64("welcome fingerprint")
	return m, r.done("welcome")
}

type rejectMsg struct {
	Reason string
}

func (m rejectMsg) encode() []byte {
	var w wireWriter
	w.u8(msgReject)
	w.str(m.Reason)
	return w.buf
}

func decodeReject(r *wireReader) (rejectMsg, error) {
	var m rejectMsg
	m.Reason = r.str("reject reason")
	return m, r.done("reject")
}

// assignMsg leases one contiguous unit [Start, End) of day's inventory
// to the worker. Seq is the lease sequence number: every (re)assignment
// of a unit gets a fresh seq, which the result must echo, so the
// coordinator can tell a live result from one sent by a worker whose
// lease already expired.
type assignMsg struct {
	Unit  uint32
	Seq   uint64
	Day   simtime.Day
	Start uint32
	End   uint32
}

func (m assignMsg) encode() []byte {
	var w wireWriter
	w.u8(msgAssign)
	w.u32(m.Unit)
	w.u64(m.Seq)
	w.i32(int32(m.Day))
	w.u32(m.Start)
	w.u32(m.End)
	return w.buf
}

func decodeAssign(r *wireReader) (assignMsg, error) {
	var m assignMsg
	m.Unit = r.u32("assign unit")
	m.Seq = r.u64("assign seq")
	m.Day = simtime.Day(r.i32("assign day"))
	m.Start = r.u32("assign start")
	m.End = r.u32("assign end")
	if r.err == nil && m.End < m.Start {
		r.fail("assign range [%d, %d) inverted", m.Start, m.End)
	}
	return m, r.done("assign")
}

// resultMsg carries one completed unit back: the tallies Sweep would
// have accumulated for these domains, the latency histogram, and the
// store-encoded measurement batch.
type resultMsg struct {
	Unit        uint32
	Seq         uint64
	Day         simtime.Day
	Failed      uint32
	NXDomain    uint32
	Unreachable uint32
	Retries     uint32
	Recovered   uint32
	// CacheHits/CacheMisses/CacheCoalesced are the worker resolver's
	// infrastructure-cache counter deltas across the unit.
	CacheHits      uint64
	CacheMisses    uint64
	CacheCoalesced uint64
	Latency        openintel.LatencyHistogram
	// Batch is a store.EncodeMeasurementBatch blob, sorted by domain.
	Batch []byte
}

func (m resultMsg) encode() []byte {
	var w wireWriter
	w.u8(msgResult)
	w.u32(m.Unit)
	w.u64(m.Seq)
	w.i32(int32(m.Day))
	w.u32(m.Failed)
	w.u32(m.NXDomain)
	w.u32(m.Unreachable)
	w.u32(m.Retries)
	w.u32(m.Recovered)
	w.u64(m.CacheHits)
	w.u64(m.CacheMisses)
	w.u64(m.CacheCoalesced)
	for _, c := range m.Latency.Counts {
		w.u32(c)
	}
	w.bytes(m.Batch)
	return w.buf
}

func decodeResult(r *wireReader) (resultMsg, error) {
	var m resultMsg
	m.Unit = r.u32("result unit")
	m.Seq = r.u64("result seq")
	m.Day = simtime.Day(r.i32("result day"))
	m.Failed = r.u32("result failed")
	m.NXDomain = r.u32("result nxdomain")
	m.Unreachable = r.u32("result unreachable")
	m.Retries = r.u32("result retries")
	m.Recovered = r.u32("result recovered")
	m.CacheHits = r.u64("result cache hits")
	m.CacheMisses = r.u64("result cache misses")
	m.CacheCoalesced = r.u64("result cache coalesced")
	for i := range m.Latency.Counts {
		m.Latency.Counts[i] = r.u32("result latency bucket")
	}
	m.Batch = r.bytes("result batch")
	return m, r.done("result")
}

func encodeHeartbeat() []byte { return []byte{msgHeartbeat} }
func encodeDone() []byte      { return []byte{msgDone} }
