package grid_test

import (
	"context"
	"testing"

	"whereru/internal/core"
	"whereru/internal/grid"
	"whereru/internal/simtime"
)

// benchDay is a dense-window day with the full zone active.
var benchDay = simtime.ConflictStart

// BenchmarkSingleProcessSweep is the baseline the grid is measured
// against: Pipeline.Sweep of one day, in-process.
func BenchmarkSingleProcessSweep(b *testing.B) {
	opts := testOpts()
	p := workerPipeline(b, opts)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Sweep(ctx, benchDay); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridSweep measures one day's sweep dispatched over the wire
// to three workers and merged: the loopback-TCP overhead of the grid
// against BenchmarkSingleProcessSweep. Worker and coordinator setup
// (world builds, handshakes) is outside the timed region, as it
// amortizes over a whole study in real runs.
func BenchmarkGridSweep(b *testing.B) {
	opts := testOpts()
	coordPipe := workerPipeline(b, opts)
	coord := grid.NewCoordinator(coordPipe)
	coord.ShardSize = 64
	coord.Fingerprint = core.GridFingerprint(opts)
	addr, err := coord.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 3; i++ {
		w := &grid.Worker{
			Pipeline:    workerPipeline(b, opts),
			Name:        "bench",
			Fingerprint: core.GridFingerprint(opts),
		}
		go w.Run(ctx, addr)
	}
	if err := coord.WaitWorkers(ctx, 3); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coord.SweepDay(ctx, benchDay); err != nil {
			b.Fatal(err)
		}
	}
}
