package grid

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"whereru/internal/openintel"
	"whereru/internal/simtime"
	"whereru/internal/store"
)

// Defaults. The shard size targets units small enough that losing one to
// a dead worker costs little, large enough that framing overhead is
// noise; the lease TTL assumes workers heartbeat at TTL/3.
const (
	DefaultShardSize = 2000
	DefaultLeaseTTL  = 10 * time.Second

	// localAttempts is how many worker lease expiries a unit tolerates
	// before the coordinator measures it locally even though workers are
	// connected — a unit must always make progress, no matter how the
	// worker population misbehaves.
	localAttempts = 2

	// handshakeTimeout bounds the hello/welcome exchange so a stuck or
	// non-protocol client cannot pin the accept loop's resources.
	handshakeTimeout = 10 * time.Second

	// monitorTick is the lease-scan cadence. It doubles as the liveness
	// floor for every cond-based wait (claim loops, the local executor),
	// so it stays small relative to any plausible TTL.
	monitorTick = 50 * time.Millisecond
)

// Unit lease states.
const (
	unitPending = iota // queued, unowned
	unitLeased         // assigned to a worker (owner set) or running locally (owner nil)
	unitDone           // result merged
)

// Coordinator shards sweep days into contiguous work units and leases
// them to connected workers, falling back to local execution when no
// workers are live. One SweepDay call runs at a time; the zero value is
// not usable — construct with NewCoordinator.
type Coordinator struct {
	// Pipeline supplies the inventory (Seeds), the day clock, the store
	// and journal the merged sweep commits into, and local execution via
	// MeasureUnit when no workers are available.
	Pipeline *openintel.Pipeline
	// ShardSize is the number of domains per work unit (default
	// DefaultShardSize).
	ShardSize int
	// LeaseTTL is how long a worker may hold a unit without a heartbeat
	// before it is reassigned (default DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Fingerprint identifies the measurement configuration; workers whose
	// hello carries a different fingerprint are rejected, because their
	// results would come from a different world.
	Fingerprint uint64
	// Logf, if set, receives operational log lines.
	Logf func(format string, args ...any)

	metrics Metrics

	mu    sync.Mutex
	cond  *sync.Cond
	ln    net.Listener
	conns map[*workerConn]bool
	live  int // connected workers not under suspicion
	seq   uint64
	sweep *sweepState
	close bool

	monitorStop chan struct{}
	monitorDone chan struct{}
	acceptDone  chan struct{}
}

// sweepState is the in-flight day.
type sweepState struct {
	day   simtime.Day
	seeds []string
	units []*unit
	done  int
}

// unit is one contiguous slice [start, end) of the day's inventory and
// its lease: pending → leased (seq, owner, deadline) → done.
type unit struct {
	idx        int
	start, end int
	state      int
	seq        uint64
	owner      *workerConn // nil while pending or when running locally
	deadline   time.Time
	attempts   int // lease expiries + connection losses suffered
	started    time.Time
	out        *unitOutcome
}

// unitOutcome is a merged-ready result.
type unitOutcome struct {
	ms             []store.Measurement
	failed         int
	nxdomain       int
	unreachable    int
	retries        int
	recovered      int
	cacheHits      int64
	cacheMisses    int64
	cacheCoalesced int64
	latency        openintel.LatencyHistogram
}

// workerConn is one accepted worker connection.
type workerConn struct {
	nc   net.Conn
	name string

	wmu sync.Mutex // serializes frame writes

	// Guarded by the coordinator mutex:
	suspect bool // lease expired without heartbeat; no new assignments
	gone    bool
}

func (w *workerConn) send(payload []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeFrame(w.nc, payload)
}

// NewCoordinator returns a coordinator driving the given pipeline.
func NewCoordinator(p *openintel.Pipeline) *Coordinator {
	c := &Coordinator{
		Pipeline:  p,
		ShardSize: DefaultShardSize,
		LeaseTTL:  DefaultLeaseTTL,
		conns:     map[*workerConn]bool{},
	}
	c.cond = sync.NewCond(&c.mu)
	if p != nil {
		c.metrics.SetStore(p.Store)
	}
	return c
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Metrics exposes the coordinator's counters.
func (c *Coordinator) Metrics() *Metrics { return &c.metrics }

// Addr returns the listen address ("" before Listen).
func (c *Coordinator) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// Listen starts accepting workers on addr (host:port; port 0 picks a free
// one) and returns the bound address.
func (c *Coordinator) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("grid: listen %s: %w", addr, err)
	}
	c.mu.Lock()
	c.ln = ln
	c.monitorStop = make(chan struct{})
	c.monitorDone = make(chan struct{})
	c.acceptDone = make(chan struct{})
	c.mu.Unlock()
	go c.acceptLoop(ln)
	go c.monitor()
	return ln.Addr().String(), nil
}

// WaitWorkers blocks until at least n workers are connected and live, or
// ctx expires.
func (c *Coordinator) WaitWorkers(ctx context.Context, n int) error {
	stop := c.wakeOnDone(ctx)
	defer stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.live < n && !c.close {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("grid: waiting for %d workers (%d live): %w", n, c.live, err)
		}
		c.cond.Wait()
	}
	if c.close {
		return fmt.Errorf("grid: coordinator closed while waiting for workers")
	}
	return nil
}

// wakeOnDone broadcasts the coordinator cond when ctx finishes, so
// cond-based waits notice cancellation. The returned stop func releases
// the watcher.
func (c *Coordinator) wakeOnDone(ctx context.Context) func() {
	stopped := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			c.cond.Broadcast()
		case <-stopped:
		}
	}()
	return func() { close(stopped) }
}

// Close stops accepting, tells workers to drain, closes every
// connection, and waits for the background loops to exit. Safe to call
// once.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.close {
		c.mu.Unlock()
		return nil
	}
	c.close = true
	ln := c.ln
	conns := make([]*workerConn, 0, len(c.conns))
	for w := range c.conns {
		conns = append(conns, w)
	}
	c.cond.Broadcast()
	c.mu.Unlock()

	for _, w := range conns {
		// Best effort: a worker that misses the done frame exits on the
		// connection close instead.
		w.nc.SetWriteDeadline(time.Now().Add(time.Second))
		_ = w.send(encodeDone())
		_ = w.nc.Close()
	}
	if ln != nil {
		_ = ln.Close()
		close(c.monitorStop)
		<-c.monitorDone
		<-c.acceptDone
	}
	return nil
}

func (c *Coordinator) acceptLoop(ln net.Listener) {
	defer close(c.acceptDone)
	for {
		nc, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		go c.handshake(nc)
	}
}

// handshake validates a new connection's hello and registers the worker.
func (c *Coordinator) handshake(nc net.Conn) {
	nc.SetDeadline(time.Now().Add(handshakeTimeout))
	payload, err := readFrame(nc)
	if err != nil {
		c.metrics.add(&c.metrics.framesRejected, 1)
		nc.Close()
		return
	}
	r := &wireReader{b: payload}
	if t := r.u8("message type"); t != msgHello {
		c.metrics.add(&c.metrics.framesRejected, 1)
		nc.Close()
		return
	}
	hello, err := decodeHello(r)
	if err != nil {
		c.metrics.add(&c.metrics.framesRejected, 1)
		nc.Close()
		return
	}
	if hello.Fingerprint != c.Fingerprint {
		c.logf("grid: rejecting worker %s: config fingerprint %016x != %016x", hello.Name, hello.Fingerprint, c.Fingerprint)
		writeFrame(nc, rejectMsg{Reason: fmt.Sprintf("config fingerprint mismatch: worker %016x, coordinator %016x", hello.Fingerprint, c.Fingerprint)}.encode())
		nc.Close()
		return
	}
	if err := writeFrame(nc, welcomeMsg{Fingerprint: c.Fingerprint}.encode()); err != nil {
		nc.Close()
		return
	}
	nc.SetDeadline(time.Time{})

	w := &workerConn{nc: nc, name: hello.Name}
	c.mu.Lock()
	if c.close {
		c.mu.Unlock()
		nc.Close()
		return
	}
	c.conns[w] = true
	c.live++
	c.cond.Broadcast()
	c.mu.Unlock()
	c.metrics.workerDelta(1)
	c.logf("grid: worker %s connected (%s)", w.name, nc.RemoteAddr())

	go c.assignLoop(w)
	c.readLoop(w)
}

// dropConn removes a dead connection and requeues whatever it held.
func (c *Coordinator) dropConn(w *workerConn, cause error) {
	c.mu.Lock()
	if w.gone {
		c.mu.Unlock()
		return
	}
	w.gone = true
	closing := c.close
	delete(c.conns, w)
	if !w.suspect {
		c.live--
	}
	requeued := 0
	if c.sweep != nil {
		for _, u := range c.sweep.units {
			if u.state == unitLeased && u.owner == w {
				c.requeueLocked(u)
				requeued++
			}
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()

	w.nc.Close()
	c.metrics.workerDelta(-1)
	if cause != nil && !closing {
		// Connection loss during shutdown is the coordinator hanging up,
		// not a worker failure.
		c.metrics.add(&c.metrics.workerFailures, 1)
	}
	if (requeued > 0 || cause != nil) && !closing {
		c.logf("grid: worker %s disconnected (%d units requeued): %v", w.name, requeued, cause)
	}
}

// requeueLocked returns a leased unit to the pending queue. Caller holds
// the coordinator mutex (the metrics counter takes its own leaf lock).
func (c *Coordinator) requeueLocked(u *unit) {
	u.state = unitPending
	u.owner = nil
	u.attempts++
	c.metrics.add(&c.metrics.unitsReassigned, 1)
}

// readLoop processes a worker's frames until the connection dies.
func (c *Coordinator) readLoop(w *workerConn) {
	for {
		payload, err := readFrame(w.nc)
		if err != nil {
			if _, ok := err.(*wireError); ok {
				// Corrupt frame: the stream cannot be trusted past this
				// point, so the connection dies and the lease machinery
				// recovers the worker's units.
				c.metrics.add(&c.metrics.framesRejected, 1)
			}
			c.dropConn(w, err)
			return
		}
		r := &wireReader{b: payload}
		switch t := r.u8("message type"); t {
		case msgResult:
			msg, err := decodeResult(r)
			if err != nil {
				c.metrics.add(&c.metrics.framesRejected, 1)
				c.dropConn(w, err)
				return
			}
			if err := c.handleResult(w, msg); err != nil {
				c.dropConn(w, err)
				return
			}
		case msgHeartbeat:
			c.heartbeat(w)
		default:
			c.metrics.add(&c.metrics.framesRejected, 1)
			c.dropConn(w, wireErrorf("unexpected message type %d from worker", t))
			return
		}
	}
}

// heartbeat renews every lease the worker holds and lifts suspicion.
func (c *Coordinator) heartbeat(w *workerConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w.gone {
		return
	}
	if w.suspect {
		w.suspect = false
		c.live++
		c.cond.Broadcast()
	}
	if c.sweep == nil {
		return
	}
	deadline := time.Now().Add(c.leaseTTL())
	for _, u := range c.sweep.units {
		if u.state == unitLeased && u.owner == w {
			u.deadline = deadline
		}
	}
}

func (c *Coordinator) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return DefaultLeaseTTL
}

func (c *Coordinator) shardSize() int {
	if c.ShardSize > 0 {
		return c.ShardSize
	}
	return DefaultShardSize
}

// maxOutstanding is how many units one worker may hold at once: two, so
// a worker always has the next unit queued behind the one it is
// measuring, without letting a single fast claimer starve the rest.
const maxOutstanding = 2

// assignLoop leases pending units to one worker until the connection or
// the coordinator closes.
func (c *Coordinator) assignLoop(w *workerConn) {
	for {
		c.mu.Lock()
		var u *unit
		for {
			if c.close || w.gone {
				c.mu.Unlock()
				return
			}
			u = c.claimableLocked(w)
			if u != nil {
				break
			}
			c.cond.Wait()
		}
		c.seq++
		u.state = unitLeased
		u.seq = c.seq
		u.owner = w
		u.deadline = time.Now().Add(c.leaseTTL())
		u.started = time.Now()
		msg := assignMsg{
			Unit:  uint32(u.idx),
			Seq:   u.seq,
			Day:   c.sweep.day,
			Start: uint32(u.start),
			End:   uint32(u.end),
		}
		c.mu.Unlock()

		c.metrics.add(&c.metrics.unitsDispatched, 1)
		if err := w.send(msg.encode()); err != nil {
			c.dropConn(w, err)
			return
		}
	}
}

// claimableLocked picks the next pending unit this worker may take, or
// nil. Caller holds the coordinator mutex.
func (c *Coordinator) claimableLocked(w *workerConn) *unit {
	if c.sweep == nil || w.suspect {
		return nil
	}
	held := 0
	var pick *unit
	for _, u := range c.sweep.units {
		switch {
		case u.state == unitLeased && u.owner == w:
			held++
			if held >= maxOutstanding {
				return nil
			}
		case u.state == unitPending && pick == nil:
			pick = u
		}
	}
	return pick
}

// monitor expires leases on a fixed tick. The broadcast doubles as the
// recheck heartbeat for every cond-based wait.
func (c *Coordinator) monitor() {
	defer close(c.monitorDone)
	t := time.NewTicker(monitorTick)
	defer t.Stop()
	for {
		select {
		case <-c.monitorStop:
			return
		case now := <-t.C:
			c.expireLeases(now)
		}
	}
}

func (c *Coordinator) expireLeases(now time.Time) {
	c.mu.Lock()
	if c.sweep != nil {
		for _, u := range c.sweep.units {
			if u.state != unitLeased || u.owner == nil || now.Before(u.deadline) {
				continue
			}
			// The owner went quiet past the TTL: quarantine it (it keeps
			// its connection — a heartbeat revives it) and requeue.
			if !u.owner.suspect {
				u.owner.suspect = true
				c.live--
				c.logf("grid: worker %s lease on unit %d expired; quarantined", u.owner.name, u.idx)
			}
			c.requeueLocked(u)
		}
	}
	// The broadcast doubles as the periodic recheck for every waiter.
	c.cond.Broadcast()
	c.mu.Unlock()
}

// handleResult validates and records a unit result. A non-nil return is
// a protocol violation that kills the connection; duplicates and stale
// leases are normal operation and absorbed here.
func (c *Coordinator) handleResult(w *workerConn, msg resultMsg) error {
	day, ms, err := store.DecodeMeasurementBatch(msg.Batch)
	if err != nil {
		return fmt.Errorf("grid: result unit %d: %w", msg.Unit, err)
	}
	if day != msg.Day {
		return wireErrorf("result unit %d: batch day %s != message day %s", msg.Unit, day, msg.Day)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sweep == nil || c.sweep.day != msg.Day {
		// A result for a day no longer in flight: a worker that outlived
		// a cancelled sweep. Harmless.
		c.metrics.add(&c.metrics.staleResults, 1)
		return nil
	}
	if int(msg.Unit) >= len(c.sweep.units) {
		return wireErrorf("result names unit %d of %d", msg.Unit, len(c.sweep.units))
	}
	u := c.sweep.units[msg.Unit]
	if u.state == unitDone {
		// At-most-once merge: the unit was finished by someone else
		// (reassignment raced the original worker's result).
		c.metrics.add(&c.metrics.duplicateUnits, 1)
		if u.owner == w {
			u.owner = nil
		}
		c.cond.Broadcast()
		return nil
	}
	if len(ms) != u.end-u.start {
		return wireErrorf("result unit %d carries %d measurements, want %d", msg.Unit, len(ms), u.end-u.start)
	}
	if u.seq != msg.Seq {
		// The lease this result answers already expired, but the unit is
		// still open and unit content is deterministic — identical no
		// matter which worker measured it — so the work is usable.
		c.metrics.add(&c.metrics.staleResults, 1)
	}
	u.out = &unitOutcome{
		ms:             ms,
		failed:         int(msg.Failed),
		nxdomain:       int(msg.NXDomain),
		unreachable:    int(msg.Unreachable),
		retries:        int(msg.Retries),
		recovered:      int(msg.Recovered),
		cacheHits:      int64(msg.CacheHits),
		cacheMisses:    int64(msg.CacheMisses),
		cacheCoalesced: int64(msg.CacheCoalesced),
		latency:        msg.Latency,
	}
	u.state = unitDone
	u.owner = nil
	c.sweep.done++
	c.metrics.add(&c.metrics.unitsCompleted, 1)
	if !u.started.IsZero() {
		c.metrics.observeUnit(time.Since(u.started))
	}
	c.cond.Broadcast()
	return nil
}

// SweepDay measures one day across the grid: it shards the day's
// inventory, waits for every unit to be measured (by workers, or locally
// when none are live), merges unit results in unit-index order, and
// commits the sweep through the pipeline — producing exactly the store
// mutations and journal bytes Pipeline.Sweep would.
func (c *Coordinator) SweepDay(ctx context.Context, day simtime.Day) (openintel.SweepStats, error) {
	begin := time.Now()
	p := c.Pipeline
	// Day context for local execution: the coordinator's own world moves
	// to the sweep day exactly as a single-process sweep would.
	if p.Clock != nil {
		p.Clock.Set(day)
	}
	p.Resolver.FlushCache()
	seeds := p.Seeds.ZoneSnapshot(day)

	shard := c.shardSize()
	units := make([]*unit, 0, (len(seeds)+shard-1)/shard)
	for start := 0; start < len(seeds); start += shard {
		end := start + shard
		if end > len(seeds) {
			end = len(seeds)
		}
		units = append(units, &unit{idx: len(units), start: start, end: end})
	}

	c.mu.Lock()
	if c.sweep != nil {
		c.mu.Unlock()
		return openintel.SweepStats{}, fmt.Errorf("grid: SweepDay(%s): a sweep is already in flight", day)
	}
	c.sweep = &sweepState{day: day, seeds: seeds, units: units}
	c.cond.Broadcast()
	c.mu.Unlock()

	defer func() {
		c.mu.Lock()
		c.sweep = nil
		c.cond.Broadcast()
		c.mu.Unlock()
	}()

	stopWake := c.wakeOnDone(ctx)
	defer stopWake()

	localCtx, stopLocal := context.WithCancel(ctx)
	defer stopLocal()
	localDone := make(chan struct{})
	go func() {
		defer close(localDone)
		c.localExecutor(localCtx, day, seeds)
	}()

	c.mu.Lock()
	for c.sweep.done < len(units) && ctx.Err() == nil && !c.close {
		c.cond.Wait()
	}
	closed := c.close
	c.mu.Unlock()

	stopLocal()
	<-localDone

	if err := ctx.Err(); err != nil {
		return openintel.SweepStats{}, err
	}
	if closed {
		return openintel.SweepStats{}, fmt.Errorf("grid: coordinator closed mid-sweep %s", day)
	}

	// Merge in unit-index order — never arrival order — so the collected
	// slice is the inventory in zone order, just as a single process
	// would have enumerated it.
	stats := openintel.SweepStats{Day: day, Domains: len(seeds)}
	var hist openintel.LatencyHistogram
	collected := make([]store.Measurement, 0, len(seeds))
	for _, u := range units {
		o := u.out
		collected = append(collected, o.ms...)
		stats.Failed += o.failed
		stats.NXDomain += o.nxdomain
		stats.Unreachable += o.unreachable
		stats.Retries += o.retries
		stats.Recovered += o.recovered
		stats.CacheHits += o.cacheHits
		stats.CacheMisses += o.cacheMisses
		stats.CacheCoalesced += o.cacheCoalesced
		hist.Merge(&o.latency)
	}
	c.metrics.addCache(stats.CacheHits, stats.CacheMisses, stats.CacheCoalesced)
	stats.Duration = time.Since(begin)
	stats.LatencyP50 = hist.Quantile(0.50)
	stats.LatencyP90 = hist.Quantile(0.90)
	stats.LatencyP99 = hist.Quantile(0.99)
	if err := p.CommitSweep(stats, collected); err != nil {
		return stats, fmt.Errorf("grid: committing sweep %s: %w", day, err)
	}
	return stats, nil
}

// localExecutor measures units in the coordinator process: all of them
// when no workers are live (graceful degradation to single-process
// collection), and any unit that has burned localAttempts leases (so
// pathological workers cannot stall a unit forever).
func (c *Coordinator) localExecutor(ctx context.Context, day simtime.Day, seeds []string) {
	for {
		c.mu.Lock()
		var u *unit
		for {
			if ctx.Err() != nil || c.close || c.sweep == nil || c.sweep.done >= len(c.sweep.units) {
				c.mu.Unlock()
				return
			}
			for _, cand := range c.sweep.units {
				if cand.state != unitPending {
					continue
				}
				if c.live == 0 || cand.attempts >= localAttempts {
					u = cand
					break
				}
			}
			if u != nil {
				break
			}
			c.cond.Wait()
		}
		c.seq++
		u.state = unitLeased
		u.seq = c.seq
		u.owner = nil // local: the monitor never expires ownerless leases
		u.started = time.Now()
		seq := u.seq
		start, end := u.start, u.end
		c.mu.Unlock()

		res, err := c.Pipeline.MeasureUnit(ctx, day, seeds[start:end])
		if err != nil {
			// Cancelled mid-unit; the sweep is aborting anyway.
			return
		}

		c.recordLocal(u, seq, res)
	}
}

// recordLocal merges a locally measured unit — unless the unit was
// finished while MeasureUnit ran. A worker result answering an expired
// lease can land in handleResult mid-measurement and close the unit;
// recording on top of that would increment sweep.done twice for one
// unit, letting SweepDay's wait loop exit with other units still open
// (and their nil out dereferenced in the merge). The seq check equally
// rejects recording if the local lease was ever superseded.
func (c *Coordinator) recordLocal(u *unit, seq uint64, res openintel.UnitResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sweep == nil || u.state != unitLeased || u.owner != nil || u.seq != seq {
		// Lost the race: unit content is deterministic, so the local
		// measurement is an exact duplicate of whatever was merged.
		c.metrics.add(&c.metrics.duplicateUnits, 1)
		return
	}
	u.out = &unitOutcome{
		ms:             res.Measurements,
		failed:         res.Failed,
		nxdomain:       res.NXDomain,
		unreachable:    res.Unreachable,
		retries:        res.Retries,
		recovered:      res.Recovered,
		cacheHits:      res.CacheHits,
		cacheMisses:    res.CacheMisses,
		cacheCoalesced: res.CacheCoalesced,
		latency:        res.Latency,
	}
	u.state = unitDone
	c.sweep.done++
	c.metrics.add(&c.metrics.unitsLocal, 1)
	c.metrics.observeUnit(time.Since(u.started))
	c.cond.Broadcast()
}
