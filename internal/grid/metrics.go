package grid

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"whereru/internal/openintel"
	"whereru/internal/store"
)

// Metrics counts what the coordinator did, in the same hand-rolled
// Prometheus text style internal/serve exposes: enough to watch a run
// converge and — critically for the robustness story — to observe that a
// killed worker's units really were reassigned.
type Metrics struct {
	mu sync.Mutex

	unitsDispatched uint64 // assignments sent to workers (incl. reassignments)
	unitsCompleted  uint64 // units merged (worker-measured)
	unitsLocal      uint64 // units the coordinator measured itself
	unitsReassigned uint64 // lease expiries that requeued a unit
	duplicateUnits  uint64 // results for already-done units, discarded
	staleResults    uint64 // results echoing an expired lease seq (merged if unit open)
	framesRejected  uint64 // frames dropped for checksum/format errors
	workerConnects  uint64
	workerFailures  uint64 // connections that ended in an error
	workersLive     int64

	// Resolver infrastructure-cache counters, summed over merged sweeps
	// (worker-measured units report their resolver's deltas).
	cacheHits      uint64
	cacheMisses    uint64
	cacheCoalesced uint64

	unitLatency openintel.LatencyHistogram // coordinator-observed per-unit wall clock

	// store, when set via SetStore, contributes the measurement store's
	// interning/memory gauges to Snapshot.
	store *store.Store
}

// SetStore attaches the measurement store whose memory gauges Snapshot
// should report (the coordinator's merged store).
func (m *Metrics) SetStore(s *store.Store) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.store = s
	m.mu.Unlock()
}

// addCache accumulates one sweep's resolver cache counter deltas.
func (m *Metrics) addCache(hits, misses, coalesced int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.cacheHits += uint64(hits)
	m.cacheMisses += uint64(misses)
	m.cacheCoalesced += uint64(coalesced)
	m.mu.Unlock()
}

func (m *Metrics) add(field *uint64, n uint64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	*field += n
	m.mu.Unlock()
}

func (m *Metrics) observeUnit(d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.unitLatency.Observe(d)
	m.mu.Unlock()
}

func (m *Metrics) workerDelta(d int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.workersLive += d
	if d > 0 {
		m.workerConnects += uint64(d)
	}
	m.mu.Unlock()
}

// Snapshot returns the counters as a name→value map. The per-unit
// latency histogram follows Prometheus histogram shape: cumulative
// buckets keyed by their upper bound in microseconds
// (grid_unit_duration_microseconds_bucket_le_<bound>, bounds zero-padded
// so lexical order is numeric order; the overflow bucket is
// ..._bucket_le_inf) plus the total observation count in
// grid_unit_duration_microseconds_count. Emitted only once a unit has
// been observed.
func (m *Metrics) Snapshot() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[string]uint64{
		"grid_units_dispatched_total":         m.unitsDispatched,
		"grid_units_completed_total":          m.unitsCompleted,
		"grid_units_local_total":              m.unitsLocal,
		"grid_units_reassigned_total":         m.unitsReassigned,
		"grid_duplicate_units_total":          m.duplicateUnits,
		"grid_stale_results_total":            m.staleResults,
		"grid_frames_rejected_total":          m.framesRejected,
		"grid_worker_connects_total":          m.workerConnects,
		"grid_worker_failures_total":          m.workerFailures,
		"grid_workers_live":                   uint64(m.workersLive),
		"grid_resolver_cache_hits_total":      m.cacheHits,
		"grid_resolver_cache_misses_total":    m.cacheMisses,
		"grid_resolver_cache_coalesced_total": m.cacheCoalesced,
	}
	if m.unitLatency.Total() > 0 {
		// Bucket i of LatencyHistogram holds durations in
		// (2^(i-1), 2^i] microseconds; the last bucket is overflow.
		last := len(m.unitLatency.Counts) - 1
		var cum uint64
		for i, c := range m.unitLatency.Counts {
			cum += uint64(c)
			if i == last {
				out["grid_unit_duration_microseconds_bucket_le_inf"] = cum
			} else {
				out[fmt.Sprintf("grid_unit_duration_microseconds_bucket_le_%07d", uint64(1)<<i)] = cum
			}
		}
		out["grid_unit_duration_microseconds_count"] = cum
	}
	if m.store != nil {
		ms := m.store.MemStats()
		out["grid_store_domains"] = uint64(ms.Domains)
		out["grid_store_epochs"] = uint64(ms.Epochs)
		out["grid_store_distinct_configs"] = uint64(ms.DistinctConfigs)
		out["grid_store_interned_hosts"] = uint64(ms.InternedHosts)
		out["grid_store_resident_bytes"] = uint64(ms.ResidentBytes())
	}
	return out
}

// WriteTo renders the metrics in Prometheus text exposition format,
// names sorted for deterministic output.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	snap := m.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var total int64
	for _, k := range names {
		n, err := fmt.Fprintf(w, "%s %d\n", k, snap[k])
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
