package grid_test

import (
	"bytes"
	"testing"

	"whereru/internal/world"
)

// TestScenarioGridDeterminism extends the grid determinism guarantee to
// the routing layer: with a scenario active, every route decision is a
// pure function of (topology, day, address), so the store and report
// must stay byte-identical across any worker count — each worker builds
// a private topology and must reach the same verdicts. The test window
// (2022-02-18 .. 2022-03-08) covers every scenario's trigger day:
// conflict start, the Netnod cutoff, and the partition onset.
func TestScenarioGridDeterminism(t *testing.T) {
	for _, scenario := range world.Scenarios() {
		scenario := scenario
		t.Run(scenario, func(t *testing.T) {
			t.Parallel()
			base := testOpts()
			base.Scenario = scenario
			baseStore, baseReport := runStudy(t, base)

			for _, workers := range []int{1, 3, 8} {
				workers := workers
				t.Run(map[int]string{1: "one", 3: "three", 8: "eight"}[workers], func(t *testing.T) {
					t.Parallel()
					opts := testOpts()
					opts.Scenario = scenario
					opts.GridListen = "127.0.0.1:0"
					opts.GridWorkers = workers
					opts.GridMinWorkers = workers
					gotStore, gotReport := runStudy(t, opts)
					if !bytes.Equal(gotStore, baseStore) {
						t.Errorf("store bytes differ from single-process run (%d vs %d bytes)", len(gotStore), len(baseStore))
					}
					if !bytes.Equal(gotReport, baseReport) {
						t.Errorf("report differs from single-process run")
					}
				})
			}
		})
	}
}

// TestScenarioChangesMeasurements is the negative control for the matrix
// above: a scenario must actually reshape the measured bytes, or the
// determinism comparisons prove nothing.
func TestScenarioChangesMeasurements(t *testing.T) {
	plainStore, _ := runStudy(t, testOpts())
	opts := testOpts()
	opts.Scenario = world.ScenarioNetnodDepeering
	scenarioStore, _ := runStudy(t, opts)
	if bytes.Equal(plainStore, scenarioStore) {
		t.Fatal("netnod-depeering produced a byte-identical store; the route layer is not reaching measurement")
	}
}
