package grid

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
	"time"

	"whereru/internal/openintel"
	"whereru/internal/simtime"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{{}, {0x42}, bytes.Repeat([]byte{0xab}, 4096)} {
		var buf bytes.Buffer
		if err := writeFrame(&buf, payload); err != nil {
			t.Fatalf("writeFrame(%d bytes): %v", len(payload), err)
		}
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame(%d bytes): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("round trip lost %d-byte payload", len(payload))
		}
	}
}

// TestFrameDetectsEveryBitFlip: any single-bit corruption of a frame —
// header, payload, or trailer — must surface as an error, never as a
// silently different payload. This is the property the lease machinery
// leans on: a lossy transport can only kill a connection, not corrupt a
// merge.
func TestFrameDetectsEveryBitFlip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("unit 7 measurements go here")
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for i := 0; i < len(frame); i++ {
		for bit := 0; bit < 8; bit++ {
			bad := append([]byte{}, frame...)
			bad[i] ^= 1 << bit
			got, err := readFrame(bytes.NewReader(bad))
			// Header flips may announce a longer frame (read error) or a
			// shorter one (checksum error); payload/trailer flips are
			// checksum errors. All must fail.
			if err == nil && bytes.Equal(got, payload) {
				t.Fatalf("flip of byte %d bit %d went undetected", i, bit)
			}
		}
	}
}

func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte("torn mid-flight")); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for n := 0; n < len(frame); n++ {
		if _, err := readFrame(bytes.NewReader(frame[:n])); err == nil {
			t.Fatalf("readFrame accepted a %d-byte truncation of a %d-byte frame", n, len(frame))
		}
	}
}

func TestFrameRejectsAbsurdLength(t *testing.T) {
	hdr := binary.BigEndian.AppendUint32(nil, maxFramePayload+1)
	_, err := readFrame(bytes.NewReader(hdr))
	if _, ok := err.(*wireError); !ok {
		t.Fatalf("want wireError for oversized announcement, got %v", err)
	}
	if err := writeFrame(&bytes.Buffer{}, make([]byte, maxFramePayload+1)); err == nil {
		t.Fatal("writeFrame accepted an oversized payload")
	}
}

// TestMessageRoundTrips drives every message codec through encode →
// decode and checks structural equality, then feeds the decoder every
// truncation of each payload: all must error, none may panic.
func TestMessageRoundTrips(t *testing.T) {
	var hist openintel.LatencyHistogram
	hist.Observe(150 * time.Millisecond)
	hist.Observe(40 * time.Microsecond)
	res := resultMsg{
		Unit: 3, Seq: 19, Day: simtime.Date(2022, 2, 24),
		Failed: 2, NXDomain: 1, Unreachable: 4, Retries: 7, Recovered: 6,
		Latency: hist,
		Batch:   []byte{0xde, 0xad, 0xbe, 0xef},
	}
	cases := []struct {
		name   string
		msg    any
		typ    uint8
		decode func(r *wireReader) (any, error)
	}{
		{"hello", helloMsg{Name: "w-1", Fingerprint: 0xfeedface}, msgHello,
			func(r *wireReader) (any, error) { return decodeHello(r) }},
		{"welcome", welcomeMsg{Fingerprint: 0xfeedface}, msgWelcome,
			func(r *wireReader) (any, error) { return decodeWelcome(r) }},
		{"reject", rejectMsg{Reason: "fingerprint mismatch"}, msgReject,
			func(r *wireReader) (any, error) { return decodeReject(r) }},
		{"assign", assignMsg{Unit: 5, Seq: 12, Day: simtime.Date(2022, 3, 1), Start: 640, End: 704}, msgAssign,
			func(r *wireReader) (any, error) { return decodeAssign(r) }},
		{"result", res, msgResult,
			func(r *wireReader) (any, error) { return decodeResult(r) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			enc := tc.msg.(interface{ encode() []byte }).encode()
			r := &wireReader{b: enc}
			if typ := r.u8("message type"); typ != tc.typ {
				t.Fatalf("message type = %d, want %d", typ, tc.typ)
			}
			got, err := tc.decode(r)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got, tc.msg) {
				t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tc.msg)
			}
			for n := 1; n < len(enc); n++ {
				r := &wireReader{b: enc[:n]}
				r.u8("message type")
				if _, err := tc.decode(r); err == nil {
					t.Fatalf("decode accepted a %d-byte truncation of %d bytes", n, len(enc))
				}
			}
			// Trailing garbage is rejected (the done() check).
			r = &wireReader{b: append(append([]byte{}, enc...), 0x00)}
			r.u8("message type")
			if _, err := tc.decode(r); err == nil {
				t.Error("decode accepted trailing garbage")
			}
		})
	}
}

func TestAssignRejectsInvertedRange(t *testing.T) {
	enc := assignMsg{Unit: 1, Seq: 2, Day: 100, Start: 50, End: 10}.encode()
	r := &wireReader{b: enc}
	r.u8("message type")
	if _, err := decodeAssign(r); err == nil {
		t.Fatal("decodeAssign accepted an inverted range")
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	enc := encodeHeartbeat()
	r := &wireReader{b: enc}
	if typ := r.u8("message type"); typ != msgHeartbeat {
		t.Fatalf("message type = %d, want %d", typ, msgHeartbeat)
	}
	if err := r.done("heartbeat"); err != nil {
		t.Fatalf("heartbeat carries unexpected fields: %v", err)
	}
}
