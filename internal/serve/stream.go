// stream.go is the live side of the server: follow mode. A watcher
// goroutine tails the study's WRJL journal, and for each segment that
// lands it (1) applies the sweep to the study's store — the same
// mutation sequence a cold replay performs, so the store generation of a
// followed server always equals that of a cold restart over the same
// journal — (2) folds the segment into the incremental engine, (3)
// *patches* the response cache at the new generation, inserting
// fully-rendered bodies built from the engine's accumulators instead of
// letting the next request recompute the whole study, and (4) publishes
// an event to SSE and long-poll subscribers.
//
// Patching is sound because of two invariants enforced elsewhere: the
// engine's series are DeepEqual to the batch recompute (the
// fold-equivalence tests in internal/stream), and both paths render
// through the same doc builders (docs.go) — so a patched body is
// byte-identical, ETag included, to what a cold computation would have
// produced.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"whereru/internal/openintel"
	"whereru/internal/simtime"
	"whereru/internal/store"
	"whereru/internal/stream"
)

// FollowOptions configures Server.Follow.
type FollowOptions struct {
	// Engine is the incremental engine, primed with exactly the journal
	// segments the study's store has already loaded.
	Engine *stream.Engine
	// JournalPath is the WRJL journal to tail.
	JournalPath string
	// StartOffset is the byte offset to tail from — the GoodBytes of the
	// replay that primed the store and engine.
	StartOffset int64
	// Poll overrides the tailer's polling interval (0 keeps the default).
	Poll time.Duration
	// Progress, when set, receives a log line per folded segment.
	Progress func(format string, args ...any)
}

// followState is the mutable follow-mode bookkeeping hanging off the
// Server; it exists even when not following (all zeros) so /metrics is
// shape-stable.
type followState struct {
	active     atomic.Bool
	engine     *stream.Engine
	hub        *streamHub
	sseClients atomic.Int64

	mu          sync.Mutex
	folds       uint64
	foldSeconds float64
	lastDay     simtime.Day
	lagBytes    int64
	patched     uint64
	skipped     uint64
	events      uint64
}

func newFollowState() *followState {
	return &followState{hub: newStreamHub()}
}

// streamEvent is the JSON document published per folded segment, both as
// an SSE "sweep" event and as the long-poll response body. ETags lets a
// dashboard re-GET exactly the endpoints that were patched, keyed by
// figure id plus "hosting" and "sweeps".
type streamEvent struct {
	Day          simtime.Day       `json:"day"`
	Missing      bool              `json:"missing,omitempty"`
	Generation   uint64            `json:"generation"`
	Sweeps       int               `json:"sweeps"`
	Measurements int               `json:"measurements"`
	FoldMS       float64           `json:"fold_ms"`
	ETags        map[string]string `json:"etags,omitempty"`
}

// figureEvent is the per-figure projection of a streamEvent served on
// /api/v1/stream/figures/{id}.
type figureEvent struct {
	Figure     string      `json:"figure"`
	Day        simtime.Day `json:"day"`
	Missing    bool        `json:"missing,omitempty"`
	Generation uint64      `json:"generation"`
	ETag       string      `json:"etag,omitempty"`
}

func eventFor(ev streamEvent, figure string) any {
	if figure == "" {
		return ev
	}
	return figureEvent{
		Figure: figure, Day: ev.Day, Missing: ev.Missing,
		Generation: ev.Generation, ETag: ev.ETags["figures/"+figure],
	}
}

// streamHub fans folded-segment events out to subscribers. SSE readers
// hold a buffered channel each; long-pollers wait on the notify channel,
// which is closed and replaced at every publish.
type streamHub struct {
	mu      sync.Mutex
	subs    map[chan streamEvent]struct{}
	last    *streamEvent
	lastGen uint64
	notify  chan struct{}
}

func newStreamHub() *streamHub {
	return &streamHub{subs: make(map[chan streamEvent]struct{}), notify: make(chan struct{})}
}

func (h *streamHub) publish(ev streamEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.last = &ev
	h.lastGen = ev.Generation
	close(h.notify)
	h.notify = make(chan struct{})
	for ch := range h.subs {
		select {
		case ch <- ev:
		default: // a stalled reader drops events rather than blocking folds
		}
	}
}

// latest returns the most recent event (nil before the first fold), its
// generation, and the channel closed at the next publish.
func (h *streamHub) latest() (*streamEvent, uint64, <-chan struct{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.last, h.lastGen, h.notify
}

func (h *streamHub) subscribe() chan streamEvent {
	ch := make(chan streamEvent, 256)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch
}

func (h *streamHub) unsubscribe(ch chan streamEvent) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
}

// Follow tails the journal and folds each new segment into the study,
// the engine and the response cache until ctx ends. It blocks; run it in
// a goroutine alongside the HTTP listener. Returns nil on context
// cancellation, an error on journal corruption or a fold failure.
func (s *Server) Follow(ctx context.Context, fo FollowOptions) error {
	if fo.Engine == nil {
		return errors.New("serve: follow requires an engine")
	}
	tl, err := store.OpenTail(fo.JournalPath, fo.StartOffset)
	if err != nil {
		return err
	}
	defer tl.Close()
	tl.SetPoll(fo.Poll)
	s.follow.engine = fo.Engine
	s.follow.active.Store(true)
	for {
		rec, err := tl.Next(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		st, gen, err := s.applySegment(rec, tl.Lag())
		if err != nil {
			return err
		}
		if fo.Progress != nil {
			fo.Progress("folded %s: %d measurements, %d domains touched, generation %d",
				rec.Day, st.Measurements, st.DomainsTouched, gen)
		}
	}
}

// applySegment is one follow-mode step: store mutation, engine fold,
// cache patch, metrics, event publish — in that order, so every artifact
// a subscriber can observe after the event exists already.
func (s *Server) applySegment(rec store.JournalSweep, lag int64) (stream.FoldStats, uint64, error) {
	start := time.Now()
	s.liveMu.Lock()
	s.study.ApplySweep(rec)
	s.liveMu.Unlock()
	st, err := s.follow.engine.Fold(rec)
	if err != nil {
		return st, 0, fmt.Errorf("serve: folding %s: %w", rec.Day, err)
	}
	gen := s.study.Store.Generation()
	etags := s.patchCache(gen)
	elapsed := time.Since(start)

	f := s.follow
	f.mu.Lock()
	f.folds++
	f.foldSeconds += elapsed.Seconds()
	f.lastDay = rec.Day
	f.lagBytes = lag
	f.events++
	f.mu.Unlock()

	f.hub.publish(streamEvent{
		Day: rec.Day, Missing: rec.Missing, Generation: gen,
		Sweeps:       len(s.study.Store.Sweeps()),
		Measurements: st.Measurements,
		FoldMS:       float64(elapsed.Microseconds()) / 1e3,
		ETags:        etags,
	})
	return st, gen, nil
}

// patchCache renders every series endpoint from the engine and installs
// the bodies at the new generation, so the first request after a fold is
// a warm hit instead of a full recompute. Returns the ETags by event
// key. Insert-only: a concurrent request that beat us to a key keeps its
// entry (counted as skipped).
func (s *Server) patchCache(gen uint64) map[string]string {
	eng := s.follow.engine
	missing := s.study.Store.MissingSweeps()
	scenario := s.study.Opts.Scenario
	etags := make(map[string]string, len(seriesFigureIDs)+2)
	ins := func(endpoint, params, id string, doc any) {
		body, err := json.Marshal(doc)
		if err != nil {
			return
		}
		body = append(body, '\n')
		sum := sha256.Sum256(body)
		etag := `"` + hex.EncodeToString(sum[:16]) + `"`
		f := s.follow
		f.mu.Lock()
		if s.cache.insert(cacheKey{endpoint: endpoint, params: params, gen: gen}, body, etag) {
			f.patched++
		} else {
			f.skipped++
		}
		f.mu.Unlock()
		etags[id] = etag
	}
	for _, id := range seriesFigureIDs {
		doc, err := docFigure(id, gen, missing, scenario, eng)
		if err != nil {
			continue
		}
		ins("figures", "n="+id, "figures/"+id, doc)
	}
	ins("hosting", "", "hosting", docHosting(gen, missing, eng))
	ins("sweeps", "", "sweeps", docSweepsFromCounts(eng.SweepCounts(), missing, s.liveStats(), gen))
	return etags
}

// docSweepsFromCounts renders the /api/v1/sweeps document from the
// engine's carry-forward sweep counts: the same rows renderSweeps
// derives from a store snapshot, without building one.
func docSweepsFromCounts(counts []stream.SweepCount, missing []simtime.Day, live []openintel.SweepStats, gen uint64) sweepsDoc {
	liveByDay := make(map[simtime.Day]openintel.SweepStats, len(live))
	for _, st := range live {
		liveByDay[st.Day] = st
	}
	doc := sweepsDoc{Endpoint: "sweeps", Generation: gen, Sweeps: len(counts), MissingDays: len(missing)}
	doc.Days = make([]sweepRow, 0, len(counts)+len(missing))
	mi := 0
	for _, c := range counts {
		for mi < len(missing) && missing[mi] < c.Day {
			doc.Days = append(doc.Days, sweepRow{Day: missing[mi], Missing: true})
			mi++
		}
		row := sweepRow{
			Day: c.Day, Domains: c.Measured, Failed: c.Failed,
			NXDomain: c.NXDomain, Unreachable: c.Unreachable,
		}
		if st, ok := liveByDay[c.Day]; ok {
			row.Retries = st.Retries
			row.Recovered = st.Recovered
			row.DurationMS = st.Duration.Milliseconds()
			row.LatencyP50US = st.LatencyP50.Microseconds()
			row.LatencyP90US = st.LatencyP90.Microseconds()
			row.LatencyP99US = st.LatencyP99.Microseconds()
		}
		doc.Days = append(doc.Days, row)
	}
	for mi < len(missing) {
		doc.Days = append(doc.Days, sweepRow{Day: missing[mi], Missing: true})
		mi++
	}
	return doc
}

// liveStats copies the study's per-sweep runtime stats under the live
// lock — follow mode appends to the slice concurrently.
func (s *Server) liveStats() []openintel.SweepStats {
	s.liveMu.RLock()
	defer s.liveMu.RUnlock()
	return append([]openintel.SweepStats(nil), s.study.Stats...)
}

// --- stream endpoints ---

// handleStream registers a streaming pattern: instrumented like handle
// but without the per-request deadline, which would sever long-lived SSE
// connections (long-poll bounds its own wait).
func (s *Server) handleStream(pattern, endpoint string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.met.inflight.Add(1)
		defer s.met.inflight.Add(-1)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.met.observe(endpoint, rec.code, time.Since(start))
	})
}

func (s *Server) handleStreamSweeps(w http.ResponseWriter, r *http.Request) {
	s.serveStream(w, r, "")
}

func (s *Server) handleStreamFigure(w http.ResponseWriter, r *http.Request) {
	n := r.PathValue("n")
	ok := false
	for _, id := range seriesFigureIDs {
		if id == n {
			ok = true
			break
		}
	}
	if !ok {
		http.Error(w, "unknown streaming figure (have: 1, 2, 3, 4, 5, reachability, latency)", http.StatusNotFound)
		return
	}
	s.serveStream(w, r, n)
}

// serveStream dispatches a stream request: SSE when the client accepts
// text/event-stream, one-shot long-poll otherwise.
func (s *Server) serveStream(w http.ResponseWriter, r *http.Request, figure string) {
	if !s.follow.active.Load() {
		http.Error(w, "server is not following a journal (start with -follow)", http.StatusNotFound)
		return
	}
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.serveSSE(w, r, figure)
		return
	}
	s.serveLongPoll(w, r, figure)
}

// serveSSE streams one "sweep" event per folded segment until the client
// disconnects.
func (s *Server) serveSSE(w http.ResponseWriter, r *http.Request, figure string) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported by connection", http.StatusInternalServerError)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": connected generation=%d\n\n", s.study.Store.Generation())
	fl.Flush()

	ch := s.follow.hub.subscribe()
	defer s.follow.hub.unsubscribe(ch)
	s.follow.sseClients.Add(1)
	defer s.follow.sseClients.Add(-1)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			data, err := json.Marshal(eventFor(ev, figure))
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: sweep\nid: %d\ndata: %s\n\n", ev.Generation, data)
			fl.Flush()
		}
	}
}

// serveLongPoll answers with the latest event once its generation
// exceeds ?since= (immediately if it already does), or 204 No Content
// when the request deadline passes first.
func (s *Server) serveLongPoll(w http.ResponseWriter, r *http.Request, figure string) {
	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "since must be a generation number: "+err.Error(), http.StatusBadRequest)
			return
		}
		since = n
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	for {
		ev, gen, changed := s.follow.hub.latest()
		if ev != nil && gen > since {
			body, err := json.Marshal(eventFor(*ev, figure))
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			body = append(body, '\n')
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.Header().Set("Content-Length", strconv.Itoa(len(body)))
			w.Write(body)
			return
		}
		select {
		case <-changed:
		case <-ctx.Done():
			w.WriteHeader(http.StatusNoContent)
			return
		}
	}
}

// writeStreamMetrics appends the whereru_stream_* family to /metrics.
// Always emitted (zeros when not following) so scrapers see a stable
// shape.
func (s *Server) writeStreamMetrics(w io.Writer) {
	f := s.follow
	f.mu.Lock()
	folds, secs := f.folds, f.foldSeconds
	lastDay, lag := f.lastDay, f.lagBytes
	patched, skipped, events := f.patched, f.skipped, f.events
	f.mu.Unlock()
	following := 0
	if f.active.Load() {
		following = 1
	}
	fmt.Fprintf(w, "# HELP whereru_stream_following Whether the server is tailing a journal (follow mode).\n")
	fmt.Fprintf(w, "# TYPE whereru_stream_following gauge\n")
	fmt.Fprintf(w, "whereru_stream_following %d\n", following)
	fmt.Fprintf(w, "# HELP whereru_stream_folds_total Journal segments folded into the live engine.\n")
	fmt.Fprintf(w, "# TYPE whereru_stream_folds_total counter\n")
	fmt.Fprintf(w, "whereru_stream_folds_total %d\n", folds)
	fmt.Fprintf(w, "# HELP whereru_stream_fold_seconds Time spent applying, folding and patching per segment.\n")
	fmt.Fprintf(w, "# TYPE whereru_stream_fold_seconds summary\n")
	fmt.Fprintf(w, "whereru_stream_fold_seconds_sum %g\n", secs)
	fmt.Fprintf(w, "whereru_stream_fold_seconds_count %d\n", folds)
	fmt.Fprintf(w, "# HELP whereru_stream_last_folded_day Day number of the last folded segment.\n")
	fmt.Fprintf(w, "# TYPE whereru_stream_last_folded_day gauge\n")
	fmt.Fprintf(w, "whereru_stream_last_folded_day %d\n", int64(lastDay))
	fmt.Fprintf(w, "# HELP whereru_stream_watcher_lag_bytes Journal bytes beyond the watcher's offset at the last fold.\n")
	fmt.Fprintf(w, "# TYPE whereru_stream_watcher_lag_bytes gauge\n")
	fmt.Fprintf(w, "whereru_stream_watcher_lag_bytes %d\n", lag)
	fmt.Fprintf(w, "# HELP whereru_stream_cache_patched_total Cache entries installed by follow-mode patching.\n")
	fmt.Fprintf(w, "# TYPE whereru_stream_cache_patched_total counter\n")
	fmt.Fprintf(w, "whereru_stream_cache_patched_total %d\n", patched)
	fmt.Fprintf(w, "# HELP whereru_stream_cache_patch_skipped_total Patches skipped because the key was already cached or computing.\n")
	fmt.Fprintf(w, "# TYPE whereru_stream_cache_patch_skipped_total counter\n")
	fmt.Fprintf(w, "whereru_stream_cache_patch_skipped_total %d\n", skipped)
	fmt.Fprintf(w, "# HELP whereru_stream_events_total Events published to stream subscribers.\n")
	fmt.Fprintf(w, "# TYPE whereru_stream_events_total counter\n")
	fmt.Fprintf(w, "whereru_stream_events_total %d\n", events)
	fmt.Fprintf(w, "# HELP whereru_stream_sse_clients Currently connected SSE subscribers.\n")
	fmt.Fprintf(w, "# TYPE whereru_stream_sse_clients gauge\n")
	fmt.Fprintf(w, "whereru_stream_sse_clients %d\n", s.follow.sseClients.Load())
}
