// Package serve is the HTTP query layer over a loaded study: a JSON API
// that exposes every DNS-derived figure and table of the paper, backed
// by the same analysis engine as the text report.
//
// The serving machinery is built for repeated, concurrent traffic over a
// store that only ever grows:
//
//   - Responses are cached fully rendered, keyed on (endpoint, params,
//     store generation). A generation bump — a new sweep appended, a
//     journal replayed — changes every key, so stale results are
//     unreachable rather than explicitly invalidated.
//   - Identical concurrent cold requests coalesce: one leader computes,
//     everyone else waits on the same entry (singleflight).
//   - A bounded semaphore caps concurrent engine computations; past the
//     bound, requests fail fast with 503 + Retry-After instead of piling
//     onto the CPUs.
//   - Every cached body carries a strong content-hash ETag; conditional
//     requests short-circuit to 304 Not Modified.
//   - Each request runs under a deadline (Options.RequestTimeout).
//
// All of it is stdlib-only: net/http for transport, encoding/json for
// rendering, and a hand-rolled Prometheus text exposition at /metrics.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"whereru/internal/core"
	"whereru/internal/dns"
	"whereru/internal/netsim"
	"whereru/internal/simtime"
	"whereru/internal/store"
	"whereru/internal/world"
)

// Options tunes the serving machinery. The zero value is usable: every
// field has a sensible default applied by New.
type Options struct {
	// MaxConcurrent bounds simultaneous engine computations (cache
	// misses). Default: GOMAXPROCS. Cache hits and coalesced waits are
	// not counted — only real analysis work holds a slot.
	MaxConcurrent int
	// RequestTimeout bounds one request end to end. Default: 30s.
	RequestTimeout time.Duration
	// RetryAfter is the hint sent with 503 responses. Default: 1s.
	RetryAfter time.Duration
	// CacheEntries caps the result cache. Default: 512.
	CacheEntries int
}

func (o Options) withDefaults() Options {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 512
	}
	return o
}

// errSaturated marks a request rejected because every computation slot
// was busy; it maps to 503 + Retry-After and is never cached.
var errSaturated = errors.New("serve: computation capacity saturated")

// errNotFound marks a lookup miss inside a compute (unknown domain); it
// maps to 404 and is never cached.
var errNotFound = errors.New("serve: not found")

// Server serves one study over HTTP. It implements http.Handler.
type Server struct {
	study *core.Study
	opts  Options
	cache *resultCache
	sem   chan struct{}
	met   *metrics
	mux   *http.ServeMux

	// computeGate, when set, is called by computation leaders while they
	// hold a semaphore slot — the test hook behind the saturation tests.
	computeGate func(endpoint string)

	// One store snapshot per generation backs the per-domain timeline
	// endpoint, so point lookups don't copy the whole store per request.
	snapMu  sync.Mutex
	snapGen uint64
	snap    *store.Snapshot

	// liveMu guards the study's Sweeps/Stats slices, which the follow
	// watcher appends to while request handlers read them. (The store has
	// its own internal locking.)
	liveMu sync.RWMutex
	// follow is the follow-mode state; present (and all zeros) even when
	// not following.
	follow *followState
}

// New builds a Server over a study that has sweeps loaded or collected.
func New(study *core.Study, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		study:  study,
		opts:   opts,
		cache:  newResultCache(opts.CacheEntries),
		sem:    make(chan struct{}, opts.MaxConcurrent),
		met:    newMetrics(),
		mux:    http.NewServeMux(),
		follow: newFollowState(),
	}
	s.routes()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics exposes the server's counters (tests assert on them).
func (s *Server) Metrics() *metrics { return s.met }

// endpointList enumerates the API surface (reported by /api/v1/study).
func endpointList() []string {
	return []string{
		"/api/v1/figures/{1,2,3,4,5,8,reachability,latency}",
		"/api/v1/tables/{1,2}",
		"/api/v1/hosting",
		"/api/v1/outages",
		"/api/v1/movement?asn=&from=",
		"/api/v1/domains/{name}/timeline",
		"/api/v1/sweeps",
		"/api/v1/stream/sweeps",
		"/api/v1/stream/figures/{1,2,3,4,5,reachability,latency}",
		"/api/v1/study",
		"/healthz",
		"/metrics",
	}
}

// routes registers every endpoint. The endpoint string passed to handle
// is the metrics label: Go 1.22's ServeMux has no way to read back the
// matched pattern, so the label travels alongside the pattern.
func (s *Server) routes() {
	s.handle("GET /api/v1/figures/{n}", "figures", s.handleFigure)
	s.handle("GET /api/v1/tables/{n}", "tables", s.handleTable)
	s.handle("GET /api/v1/hosting", "hosting", s.handleHosting)
	s.handle("GET /api/v1/outages", "outages", s.handleOutages)
	s.handle("GET /api/v1/movement", "movement", s.handleMovement)
	s.handle("GET /api/v1/domains/{name}/timeline", "timeline", s.handleTimeline)
	s.handle("GET /api/v1/sweeps", "sweeps", s.handleSweeps)
	s.handleStream("GET /api/v1/stream/sweeps", "stream_sweeps", s.handleStreamSweeps)
	s.handleStream("GET /api/v1/stream/figures/{n}", "stream_figures", s.handleStreamFigure)
	s.handle("GET /api/v1/study", "study", s.handleStudy)
	s.handle("GET /healthz", "healthz", s.handleHealthz)
	s.handle("GET /metrics", "metrics", s.handleMetrics)
}

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so SSE handlers can stream
// through the recorder.
func (sr *statusRecorder) Flush() {
	if fl, ok := sr.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// handle registers pattern with per-request instrumentation: the
// in-flight gauge, the request deadline, and the latency/status metrics
// labeled with endpoint.
func (s *Server) handle(pattern, endpoint string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.met.inflight.Add(1)
		defer s.met.inflight.Add(-1)
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
		defer cancel()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r.WithContext(ctx))
		s.met.observe(endpoint, rec.code, time.Since(start))
	})
}

// serveCached is the heart of the serving machinery. compute builds the
// response document against the given store generation; serveCached
// handles coalescing, caching, ETags, saturation and timeouts around it.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, endpoint, params string, compute func(gen uint64) (any, error)) {
	gen := s.study.Store.Generation()
	key := cacheKey{endpoint: endpoint, params: params, gen: gen}
	e, leader := s.cache.lookup(key)
	switch {
	case leader:
		s.met.miss()
		s.compute(key, e, compute)
	case e.done():
		s.met.hit()
	default:
		s.met.coalesce()
	}

	select {
	case <-e.ready:
	case <-r.Context().Done():
		w.Header().Set("Retry-After", retryAfterSeconds(s.opts.RetryAfter))
		http.Error(w, "request timed out waiting for computation", http.StatusServiceUnavailable)
		return
	}

	switch {
	case errors.Is(e.err, errSaturated):
		w.Header().Set("Retry-After", retryAfterSeconds(s.opts.RetryAfter))
		http.Error(w, e.err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(e.err, errNotFound):
		http.Error(w, e.err.Error(), http.StatusNotFound)
		return
	case e.err != nil:
		http.Error(w, e.err.Error(), http.StatusInternalServerError)
		return
	}

	h := w.Header()
	h.Set("ETag", e.etag)
	h.Set("Cache-Control", "no-cache")
	if match := r.Header.Get("If-None-Match"); etagMatches(match, e.etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", "application/json; charset=utf-8")
	h.Set("Content-Length", strconv.Itoa(len(e.body)))
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		w.Write(e.body)
	}
}

// compute runs the leader's side of a cache miss: acquire a semaphore
// slot (or fail fast as saturated), run the analysis, render the body,
// stamp the ETag, and publish by closing ready. Errors are published the
// same way but removed from the cache so the next request retries.
func (s *Server) compute(key cacheKey, e *entry, compute func(gen uint64) (any, error)) {
	fail := func(err error) {
		e.err = err
		s.cache.remove(key, e)
		close(e.ready)
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.met.saturated()
		fail(errSaturated)
		return
	}
	defer func() { <-s.sem }()
	s.met.computed()
	if s.computeGate != nil {
		s.computeGate(key.endpoint)
	}
	doc, err := compute(key.gen)
	if err != nil {
		fail(err)
		return
	}
	body, err := json.Marshal(doc)
	if err != nil {
		fail(fmt.Errorf("serve: rendering %s: %w", key.endpoint, err))
		return
	}
	body = append(body, '\n')
	sum := sha256.Sum256(body)
	e.body = body
	e.etag = `"` + hex.EncodeToString(sum[:16]) + `"`
	close(e.ready)
}

// retryAfterSeconds renders a Retry-After header value (whole seconds,
// minimum 1).
func retryAfterSeconds(d time.Duration) string {
	secs := int(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// etagMatches implements the If-None-Match comparison for strong ETags
// ("*" or any listed tag).
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	if header == "*" {
		return true
	}
	for _, part := range splitComma(header) {
		if part == etag || part == "W/"+etag {
			return true
		}
	}
	return false
}

func splitComma(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != ',' {
			i++
		}
		part := trimSpace(s[:i])
		if part != "" {
			out = append(out, part)
		}
		if i == len(s) {
			break
		}
		s = s[i+1:]
	}
	return out
}

func trimSpace(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

// snapshot returns the store snapshot for gen, building it at most once
// per generation.
func (s *Server) snapshot(gen uint64) *store.Snapshot {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.snap == nil || s.snapGen != gen {
		s.snap = s.study.Store.Snapshot()
		s.snapGen = gen
	}
	return s.snap
}

// --- endpoint handlers ---

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	n := r.PathValue("n")
	var compute func(gen uint64) (any, error)
	switch n {
	case "1", "2", "3", "4", "5", "reachability", "latency":
		// Series figures render through the shared doc builders, the same
		// code path follow-mode patching feeds from the stream engine — so
		// a cold compute and a patched entry can only differ if the series
		// themselves diverge (which the fold-equivalence tests forbid).
		compute = func(gen uint64) (any, error) {
			return docFigure(n, gen, s.study.Store.MissingSweeps(), s.study.Opts.Scenario, s.study)
		}
	case "8":
		compute = func(gen uint64) (any, error) {
			return caTimelineDoc{
				Figure: 8, Title: "Top-10 CA issuance timelines",
				Generation: gen,
				WindowFrom: world.RussianCAStartDay, WindowTo: simtime.CTWindowEnd,
				Timelines: renderTimelines(s.study.Fig8()),
			}, nil
		}
	default:
		http.Error(w, "unknown figure (have: 1, 2, 3, 4, 5, 8, reachability, latency)", http.StatusNotFound)
		return
	}
	s.serveCached(w, r, "figures", "n="+n, compute)
}

// missingIn filters missing sweep days to those on or after from.
func missingIn(days []simtime.Day, from simtime.Day) []simtime.Day {
	var out []simtime.Day
	for _, d := range days {
		if d >= from {
			out = append(out, d)
		}
	}
	return out
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	n := r.PathValue("n")
	var compute func(gen uint64) (any, error)
	switch n {
	case "1":
		compute = func(gen uint64) (any, error) {
			return table1Doc{
				Table: 1, Title: "Certificate issuance by period",
				Generation: gen, Scale: s.study.Scale(),
				Rows: renderTable1(s.study.Table1(), s.study.Scale()),
			}, nil
		}
	case "2":
		compute = func(gen uint64) (any, error) {
			return table2Doc{
				Table: 2, Title: "Revocations by top-5 revoking CAs",
				Generation: gen,
				Rows:       renderTable2(s.study.Table2()),
			}, nil
		}
	default:
		http.Error(w, "unknown table (have: 1, 2)", http.StatusNotFound)
		return
	}
	s.serveCached(w, r, "tables", "n="+n, compute)
}

func (s *Server) handleHosting(w http.ResponseWriter, r *http.Request) {
	s.serveCached(w, r, "hosting", "", func(gen uint64) (any, error) {
		return docHosting(gen, s.study.Store.MissingSweeps(), s.study), nil
	})
}

func (s *Server) handleOutages(w http.ResponseWriter, r *http.Request) {
	s.serveCached(w, r, "outages", "", func(gen uint64) (any, error) {
		return renderOutages(s.study.Outages.Events(), s.study.Opts.Scenario, gen), nil
	})
}

func (s *Server) handleMovement(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	asnStr, fromStr := q.Get("asn"), q.Get("from")
	if asnStr == "" || fromStr == "" {
		http.Error(w, "movement requires asn= and from= query parameters (e.g. ?asn=197695&from=2022-02-24)", http.StatusBadRequest)
		return
	}
	asn64, err := strconv.ParseUint(asnStr, 10, 32)
	if err != nil {
		http.Error(w, "asn must be a 32-bit AS number: "+err.Error(), http.StatusBadRequest)
		return
	}
	from, err := simtime.Parse(fromStr)
	if err != nil {
		http.Error(w, "from must be a YYYY-MM-DD date: "+err.Error(), http.StatusBadRequest)
		return
	}
	asn := netsim.ASN(asn64)
	// Canonical params: reprinted, not echoed, so "0197695" and "197695"
	// share a cache entry.
	params := "asn=" + strconv.FormatUint(uint64(asn), 10) + "&from=" + from.String()
	s.serveCached(w, r, "movement", params, func(gen uint64) (any, error) {
		return renderMovement(s.study.Movement(asn, from), gen), nil
	})
}

func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	name := dns.Canonical(r.PathValue("name"))
	s.serveCached(w, r, "timeline", "name="+name, func(gen uint64) (any, error) {
		snap := s.snapshot(gen)
		doms := snap.Domains()
		idx := sort.SearchStrings(doms, name)
		if idx >= len(doms) || doms[idx] != name {
			return nil, fmt.Errorf("%w: domain %q not in the measurement store", errNotFound, name)
		}
		sweeps := snap.Sweeps()
		doc := timelineDoc{Domain: name, Generation: gen}
		snap.VisitEpochs(sweeps, idx, idx+1, func(_ string, cfg store.Config, lo, hi int) {
			doc.Epochs = append(doc.Epochs, renderTimelineEpoch(cfg, sweeps[lo], sweeps[hi-1], hi-lo))
		})
		if len(doc.Epochs) == 0 {
			return nil, fmt.Errorf("%w: domain %q has no measurements on the sweep axis", errNotFound, name)
		}
		doc.FirstSeen = doc.Epochs[0].From
		doc.LastSeen = doc.Epochs[len(doc.Epochs)-1].To
		return doc, nil
	})
}

func (s *Server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	s.serveCached(w, r, "sweeps", "", func(gen uint64) (any, error) {
		return renderSweeps(s.snapshot(gen), s.study.Store.MissingSweeps(), s.liveStats(), gen), nil
	})
}

func (s *Server) handleStudy(w http.ResponseWriter, r *http.Request) {
	s.serveCached(w, r, "study", "", func(gen uint64) (any, error) {
		return renderStudy(s.study, gen), nil
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok generation=%d sweeps=%d domains=%d",
		s.study.Store.Generation(), len(s.study.Store.Sweeps()), s.study.Store.NumDomains())
	if s.follow.active.Load() {
		f := s.follow
		f.mu.Lock()
		folds, lastDay, lag := f.folds, f.lastDay, f.lagBytes
		f.mu.Unlock()
		fmt.Fprintf(w, " follow=1 folds=%d last_folded=%s lag_bytes=%d", folds, lastDay, lag)
	}
	fmt.Fprintln(w)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.WriteTo(w)
	writeSweepCacheMetrics(w, s.liveStats())
	writeStoreMemMetrics(w, s.study.Store.MemStats())
	s.writeStreamMetrics(w)
}
