package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// The cold/warm pair quantifies what the result cache buys: cold runs
// the full analysis engine plus JSON rendering per request, warm is a
// map lookup and a body copy. The recorded numbers live in BENCH_4.json.

func benchRequest(b *testing.B, srv *Server, path string) {
	b.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("GET %s = %d: %.200s", path, rec.Code, rec.Body.String())
	}
}

func BenchmarkServeFig1Cold(b *testing.B) {
	srv := New(testStudy(b), Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.cache.purge()
		benchRequest(b, srv, "/api/v1/figures/1")
	}
}

func BenchmarkServeFig1Warm(b *testing.B) {
	srv := New(testStudy(b), Options{})
	benchRequest(b, srv, "/api/v1/figures/1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRequest(b, srv, "/api/v1/figures/1")
	}
}

func BenchmarkServeTimelineWarm(b *testing.B) {
	srv := New(testStudy(b), Options{})
	doms := srv.study.Store.Domains()
	path := "/api/v1/domains/" + doms[len(doms)/2] + "/timeline"
	benchRequest(b, srv, path)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRequest(b, srv, path)
	}
}
