package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"whereru/internal/openintel"
	"whereru/internal/store"
)

// metrics is the server's observability surface, exposed at /metrics in
// the Prometheus text exposition format (hand-rolled: the repo is
// stdlib-only). Counters are monotonically increasing over the process
// lifetime; the in-flight gauge is the only instantaneous value.
type metrics struct {
	inflight atomic.Int64

	mu sync.Mutex
	// requests counts finished requests by (endpoint label, status code).
	requests map[reqKey]uint64
	// Latency histogram over all endpoints: per-bucket counts for the
	// upper bounds in latencyBuckets, plus a +Inf overflow, a sum and a
	// count (the standard Prometheus histogram triplet).
	bucketCounts [len(latencyBuckets) + 1]uint64
	durSum       float64
	durCount     uint64

	cacheHits    uint64
	cacheMisses  uint64
	coalesced    uint64
	computations uint64
	saturations  uint64
}

type reqKey struct {
	endpoint string
	code     int
}

// latencyBuckets are the histogram upper bounds in seconds; warm cache
// hits land in the sub-millisecond buckets, cold engine computations in
// the upper ones, so the histogram shape is the cache's health at a
// glance.
var latencyBuckets = [...]float64{0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5}

func newMetrics() *metrics {
	return &metrics{requests: make(map[reqKey]uint64)}
}

// observe records one finished request.
func (m *metrics) observe(endpoint string, code int, d time.Duration) {
	secs := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[reqKey{endpoint, code}]++
	i := 0
	for ; i < len(latencyBuckets); i++ {
		if secs <= latencyBuckets[i] {
			break
		}
	}
	m.bucketCounts[i]++
	m.durSum += secs
	m.durCount++
}

func (m *metrics) hit()       { m.mu.Lock(); m.cacheHits++; m.mu.Unlock() }
func (m *metrics) miss()      { m.mu.Lock(); m.cacheMisses++; m.mu.Unlock() }
func (m *metrics) coalesce()  { m.mu.Lock(); m.coalesced++; m.mu.Unlock() }
func (m *metrics) computed()  { m.mu.Lock(); m.computations++; m.mu.Unlock() }
func (m *metrics) saturated() { m.mu.Lock(); m.saturations++; m.mu.Unlock() }

// computationCount returns the number of engine computations run so far
// (the coalescing tests' ground truth).
func (m *metrics) computationCount() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.computations
}

// WriteTo renders the text exposition. Lines are emitted in a fixed,
// sorted order so scrapes are deterministic.
func (m *metrics) WriteTo(w io.Writer) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cw := &countWriter{w: w}

	fmt.Fprintln(cw, "# HELP whereru_requests_total Finished HTTP requests by endpoint and status code.")
	fmt.Fprintln(cw, "# TYPE whereru_requests_total counter")
	keys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(cw, "whereru_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, m.requests[k])
	}

	fmt.Fprintln(cw, "# HELP whereru_request_duration_seconds Request latency histogram (all endpoints).")
	fmt.Fprintln(cw, "# TYPE whereru_request_duration_seconds histogram")
	var cum uint64
	for i, le := range latencyBuckets {
		cum += m.bucketCounts[i]
		fmt.Fprintf(cw, "whereru_request_duration_seconds_bucket{le=\"%g\"} %d\n", le, cum)
	}
	cum += m.bucketCounts[len(latencyBuckets)]
	fmt.Fprintf(cw, "whereru_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(cw, "whereru_request_duration_seconds_sum %g\n", m.durSum)
	fmt.Fprintf(cw, "whereru_request_duration_seconds_count %d\n", m.durCount)

	for _, c := range []struct {
		name, help string
		val        uint64
	}{
		{"whereru_cache_hits_total", "Requests answered from the versioned result cache.", m.cacheHits},
		{"whereru_cache_misses_total", "Requests that found no cached result and led a computation.", m.cacheMisses},
		{"whereru_cache_coalesced_total", "Requests that piggybacked on an in-flight identical computation.", m.coalesced},
		{"whereru_computations_total", "Analysis engine computations actually run.", m.computations},
		{"whereru_saturation_rejections_total", "Requests rejected with 503 because the computation semaphore was full.", m.saturations},
	} {
		fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.val)
	}

	fmt.Fprintln(cw, "# HELP whereru_inflight_requests Requests currently being served.")
	fmt.Fprintln(cw, "# TYPE whereru_inflight_requests gauge")
	fmt.Fprintf(cw, "whereru_inflight_requests %d\n", m.inflight.Load())
	return cw.n, cw.err
}

// writeSweepCacheMetrics renders the resolver infrastructure-cache
// counters accumulated across the study's collected sweeps (zero on a
// study loaded from a store file, which carries no runtime stats).
func writeSweepCacheMetrics(w io.Writer, stats []openintel.SweepStats) {
	var hits, misses, coalesced int64
	for _, st := range stats {
		hits += st.CacheHits
		misses += st.CacheMisses
		coalesced += st.CacheCoalesced
	}
	for _, c := range []struct {
		name, help string
		val        int64
	}{
		{"whereru_sweep_cache_hits_total", "Resolver infrastructure-cache hits across all collected sweeps.", hits},
		{"whereru_sweep_cache_misses_total", "Resolver infrastructure-cache misses across all collected sweeps.", misses},
		{"whereru_sweep_cache_coalesced_total", "Resolver lookups that coalesced onto an in-flight identical miss.", coalesced},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.val)
	}
}

// writeStoreMemMetrics renders the measurement store's interning and
// memory accounting as gauges: values move with store contents (they can
// shrink on compaction), not monotonically.
func writeStoreMemMetrics(w io.Writer, ms store.MemStats) {
	for _, g := range []struct {
		name, help string
		val        int64
	}{
		{"whereru_store_domains", "Domains held by the measurement store.", int64(ms.Domains)},
		{"whereru_store_epochs", "Live (domain, epoch) rows in the columnar store.", ms.Epochs},
		{"whereru_store_distinct_configs", "Distinct interned DNS configurations.", int64(ms.DistinctConfigs)},
		{"whereru_store_interned_hosts", "Distinct pooled hostname strings.", int64(ms.InternedHosts)},
		{"whereru_store_resident_bytes", "Accounted resident bytes of the store representation.", ms.ResidentBytes()},
		{"whereru_store_column_bytes", "Accounted bytes held by the epoch columns and row index.", ms.ColumnBytes},
		{"whereru_store_intern_bytes", "Accounted bytes held by the config intern table and pools.", ms.InternBytes},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.val)
	}
}

type countWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
