// render.go converts the analysis layer's result types into the API's
// JSON documents. Every renderer takes the exact structs the text
// report renders (analysis.Point with its Interpolated gap flag,
// TLDSharePoint, ASNSharePoint, Movement, PeriodIssuance, RevocationRow,
// Timeline), so the JSON API and `whereru`'s stdout report can never
// disagree about the data — they are two serializations of one value.
//
// simtime.Day implements encoding.TextMarshaler, so days appear as
// ISO-8601 strings ("2022-02-24") both as values and as map keys, and
// integer-keyed maps (ASN counts) serialize with json's deterministic
// sorted keys — repeated renders of the same result are byte-identical,
// which is what makes the strong ETags sound.
package serve

import (
	"sort"

	"whereru/internal/analysis"
	"whereru/internal/core"
	"whereru/internal/netsim"
	"whereru/internal/openintel"
	"whereru/internal/simtime"
	"whereru/internal/store"
)

// compositionPoint is one day of a composition series (Figures 1/2/5,
// hosting): the classified counts plus the percentages the figures plot.
type compositionPoint struct {
	Day          simtime.Day `json:"day"`
	Full         int         `json:"full"`
	Part         int         `json:"part"`
	Non          int         `json:"non"`
	Unknown      int         `json:"unknown"`
	Total        int         `json:"total"`
	FullPct      float64     `json:"full_pct"`
	PartPct      float64     `json:"part_pct"`
	NonPct       float64     `json:"non_pct"`
	Interpolated bool        `json:"interpolated,omitempty"`
}

// compositionDoc is a composition-series response.
type compositionDoc struct {
	Figure      int                `json:"figure,omitempty"`
	Endpoint    string             `json:"endpoint,omitempty"`
	Title       string             `json:"title"`
	Generation  uint64             `json:"generation"`
	MissingDays []simtime.Day      `json:"missing_days,omitempty"`
	Series      []compositionPoint `json:"series"`
}

func renderComposition(series []analysis.Point) []compositionPoint {
	out := make([]compositionPoint, 0, len(series))
	for _, p := range series {
		out = append(out, compositionPoint{
			Day: p.Day, Full: p.Full, Part: p.Part, Non: p.Non,
			Unknown: p.Unknown, Total: p.Total,
			FullPct: p.FullPct(), PartPct: p.PartPct(), NonPct: p.NonPct(),
			Interpolated: p.Interpolated,
		})
	}
	return out
}

// tldSharePoint is one day of Figure 3. Counts overlap (a domain using
// name servers under two TLDs counts for both), exactly as in the text
// chart.
type tldSharePoint struct {
	Day    simtime.Day        `json:"day"`
	Total  int                `json:"total"`
	Counts map[string]int     `json:"counts"`
	Shares map[string]float64 `json:"shares"`
}

type tldShareDoc struct {
	Figure      int             `json:"figure"`
	Title       string          `json:"title"`
	Generation  uint64          `json:"generation"`
	TopTLDs     []string        `json:"top_tlds"`
	MissingDays []simtime.Day   `json:"missing_days,omitempty"`
	Series      []tldSharePoint `json:"series"`
}

func renderTLDShares(series []analysis.TLDSharePoint, top []string) []tldSharePoint {
	out := make([]tldSharePoint, 0, len(series))
	for _, p := range series {
		shares := make(map[string]float64, len(top))
		for _, tld := range top {
			shares[tld] = p.Share(tld)
		}
		out = append(out, tldSharePoint{Day: p.Day, Total: p.Total, Counts: p.Counts, Shares: shares})
	}
	return out
}

// asnSharePoint is one day of Figure 4.
type asnSharePoint struct {
	Day    simtime.Day        `json:"day"`
	Total  int                `json:"total"`
	Counts map[netsim.ASN]int `json:"counts"`
}

type asnLabel struct {
	ASN  netsim.ASN `json:"asn"`
	Name string     `json:"name"`
}

type asnShareDoc struct {
	Figure      int             `json:"figure"`
	Title       string          `json:"title"`
	Generation  uint64          `json:"generation"`
	Plotted     []asnLabel      `json:"plotted"`
	MissingDays []simtime.Day   `json:"missing_days,omitempty"`
	Series      []asnSharePoint `json:"series"`
}

func renderASNShares(series []analysis.ASNSharePoint) []asnSharePoint {
	out := make([]asnSharePoint, 0, len(series))
	for _, p := range series {
		out = append(out, asnSharePoint{Day: p.Day, Total: p.Total, Counts: p.Counts})
	}
	return out
}

// caTimeline is one CA's Figure 8 row; active days are a sorted list.
type caTimeline struct {
	Org        string        `json:"org"`
	Total      int           `json:"total"`
	LastActive simtime.Day   `json:"last_active"`
	ActiveDays []simtime.Day `json:"active_days"`
}

type caTimelineDoc struct {
	Figure     int          `json:"figure"`
	Title      string       `json:"title"`
	Generation uint64       `json:"generation"`
	WindowFrom simtime.Day  `json:"window_from"`
	WindowTo   simtime.Day  `json:"window_to"`
	Timelines  []caTimeline `json:"timelines"`
}

func renderTimelines(timelines []analysis.Timeline) []caTimeline {
	out := make([]caTimeline, 0, len(timelines))
	for _, tl := range timelines {
		days := make([]simtime.Day, 0, len(tl.ActiveDays))
		for d := range tl.ActiveDays {
			days = append(days, d)
		}
		sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
		out = append(out, caTimeline{Org: tl.Org, Total: tl.Total, LastActive: tl.LastActive, ActiveDays: days})
	}
	return out
}

// issuerShare is one CA within a Table 1 period.
type issuerShare struct {
	Org      string  `json:"org"`
	Count    int     `json:"count"`
	SharePct float64 `json:"share_pct"`
}

// issuanceRow is one period row of Table 1. PerDayPaper rescales to the
// paper's population (count × scale), mirroring the text table.
type issuanceRow struct {
	Period      string        `json:"period"`
	Days        int           `json:"days"`
	Total       int           `json:"total"`
	PerDay      float64       `json:"per_day"`
	PerDayPaper float64       `json:"per_day_paper"`
	Issuers     []issuerShare `json:"issuers"`
}

type table1Doc struct {
	Table      int           `json:"table"`
	Title      string        `json:"title"`
	Generation uint64        `json:"generation"`
	Scale      int           `json:"scale"`
	Rows       []issuanceRow `json:"rows"`
}

func renderTable1(periods []analysis.PeriodIssuance, scale int) []issuanceRow {
	out := make([]issuanceRow, 0, len(periods))
	for _, p := range periods {
		issuers := make([]issuerShare, 0, len(p.Issuers))
		for _, ic := range p.Issuers {
			issuers = append(issuers, issuerShare{Org: ic.Org, Count: ic.Count, SharePct: p.Share(ic.Org)})
		}
		out = append(out, issuanceRow{
			Period: p.Period.String(), Days: p.Days, Total: p.Total,
			PerDay: p.PerDay(), PerDayPaper: p.PerDay() * float64(scale),
			Issuers: issuers,
		})
	}
	return out
}

// revocationRow is one CA row of Table 2.
type revocationRow struct {
	Org            string  `json:"org"`
	Issued         int     `json:"issued"`
	Revoked        int     `json:"revoked"`
	RevokedPct     float64 `json:"revoked_pct"`
	SancIssued     int     `json:"sanc_issued"`
	SancRevoked    int     `json:"sanc_revoked"`
	SancRevokedPct float64 `json:"sanc_revoked_pct"`
}

type table2Doc struct {
	Table      int             `json:"table"`
	Title      string          `json:"title"`
	Generation uint64          `json:"generation"`
	Rows       []revocationRow `json:"rows"`
}

func renderTable2(rows []analysis.RevocationRow) []revocationRow {
	out := make([]revocationRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, revocationRow{
			Org: r.Org, Issued: r.Issued, Revoked: r.Revoked, RevokedPct: r.RevokedPct(),
			SancIssued: r.SancIssued, SancRevoked: r.SancRevoked, SancRevokedPct: r.SancRevokedPct(),
		})
	}
	return out
}

// movementDoc is the §3.4 movement analysis for one provider network.
type movementDoc struct {
	ASN             netsim.ASN         `json:"asn"`
	From            simtime.Day        `json:"from"`
	To              simtime.Day        `json:"to"`
	Generation      uint64             `json:"generation"`
	Original        int                `json:"original"`
	Remained        int                `json:"remained"`
	RemainedPct     float64            `json:"remained_pct"`
	RelocatedOut    int                `json:"relocated_out"`
	RelocatedPct    float64            `json:"relocated_pct"`
	Gone            int                `json:"gone"`
	RelocatedIn     int                `json:"relocated_in"`
	NewlyRegistered int                `json:"newly_registered"`
	OutDestinations map[netsim.ASN]int `json:"out_destinations"`
	InSources       map[netsim.ASN]int `json:"in_sources"`
	TopDestinations []netsim.ASN       `json:"top_destinations"`
}

func renderMovement(m analysis.Movement, gen uint64) movementDoc {
	return movementDoc{
		ASN: m.ASN, From: m.From, To: m.To, Generation: gen,
		Original: m.Original, Remained: m.Remained, RemainedPct: m.RemainedPct(),
		RelocatedOut: m.RelocatedOut, RelocatedPct: m.RelocatedPct(),
		Gone: m.Gone, RelocatedIn: m.RelocatedIn, NewlyRegistered: m.NewlyRegistered,
		OutDestinations: m.OutDestinations, InSources: m.InSources,
		TopDestinations: m.TopDestinations(5),
	}
}

// timelineEpoch is one configuration epoch of a domain, intersected
// with the sweep axis: From/To are the first and last sweep days the
// configuration was observed on, SweepsCovered how many sweeps that is.
type timelineEpoch struct {
	From          simtime.Day `json:"from"`
	To            simtime.Day `json:"to"`
	SweepsCovered int         `json:"sweeps_covered"`
	NSHosts       []string    `json:"ns_hosts,omitempty"`
	NSAddrs       []string    `json:"ns_addrs,omitempty"`
	ApexAddrs     []string    `json:"apex_addrs,omitempty"`
	MXHosts       []string    `json:"mx_hosts,omitempty"`
	Failed        bool        `json:"failed,omitempty"`
}

type timelineDoc struct {
	Domain     string          `json:"domain"`
	Generation uint64          `json:"generation"`
	FirstSeen  simtime.Day     `json:"first_seen"`
	LastSeen   simtime.Day     `json:"last_seen"`
	Epochs     []timelineEpoch `json:"epochs"`
}

func renderTimelineEpoch(cfg store.Config, from, to simtime.Day, covered int) timelineEpoch {
	ep := timelineEpoch{
		From: from, To: to, SweepsCovered: covered,
		NSHosts: cfg.NSHosts, MXHosts: cfg.MXHosts, Failed: cfg.Failed,
	}
	for _, a := range cfg.NSAddrs {
		ep.NSAddrs = append(ep.NSAddrs, a.String())
	}
	for _, a := range cfg.ApexAddrs {
		ep.ApexAddrs = append(ep.ApexAddrs, a.String())
	}
	return ep
}

// countryReach is one country's slice of a reachability point: domains
// whose name-server set touches the country, and how many of them still
// have a routed address there.
type countryReach struct {
	Country      string  `json:"country"`
	Total        int     `json:"total"`
	Reachable    int     `json:"reachable"`
	ReachablePct float64 `json:"reachable_pct"`
}

// asnReach is the per-ASN analog of countryReach.
type asnReach struct {
	ASN       netsim.ASN `json:"asn"`
	Total     int        `json:"total"`
	Reachable int        `json:"reachable"`
}

// reachPoint is one day of the scenario reachability series.
type reachPoint struct {
	Day          simtime.Day    `json:"day"`
	Total        int            `json:"total"`
	Reachable    int            `json:"reachable"`
	Unreachable  int            `json:"unreachable"`
	ReachablePct float64        `json:"reachable_pct"`
	Countries    []countryReach `json:"countries,omitempty"`
	ASNs         []asnReach     `json:"asns,omitempty"`
	Interpolated bool           `json:"interpolated,omitempty"`
}

type reachabilityDoc struct {
	Endpoint    string        `json:"endpoint"`
	Title       string        `json:"title"`
	Scenario    string        `json:"scenario,omitempty"`
	Generation  uint64        `json:"generation"`
	MissingDays []simtime.Day `json:"missing_days,omitempty"`
	Series      []reachPoint  `json:"series"`
}

func reachPct(reachable, total int) float64 {
	if total == 0 {
		return 100
	}
	return 100 * float64(reachable) / float64(total)
}

func renderReachability(series []analysis.ReachPoint) []reachPoint {
	out := make([]reachPoint, 0, len(series))
	for _, p := range series {
		rp := reachPoint{
			Day: p.Day, Total: p.Total, Reachable: p.Reachable,
			Unreachable:  p.Unreachable,
			ReachablePct: reachPct(p.Reachable, p.Total),
			Interpolated: p.Interpolated,
		}
		for _, c := range p.Countries {
			rp.Countries = append(rp.Countries, countryReach{
				Country: c.Country, Total: c.Total, Reachable: c.Reachable,
				ReachablePct: reachPct(c.Reachable, c.Total),
			})
		}
		for _, a := range p.ASNs {
			rp.ASNs = append(rp.ASNs, asnReach{ASN: a.ASN, Total: a.Total, Reachable: a.Reachable})
		}
		out = append(out, rp)
	}
	return out
}

// countryLatency is one country's latency quantiles (microseconds, the
// unit the sweeps endpoint already reports runtime latency in).
type countryLatency struct {
	Country string `json:"country"`
	Domains int    `json:"domains"`
	P50US   int64  `json:"p50_us"`
	P90US   int64  `json:"p90_us"`
	P99US   int64  `json:"p99_us"`
}

// routeLatencyPoint is one day of the simulated resolution-latency
// series (best routed name-server path per domain).
type routeLatencyPoint struct {
	Day          simtime.Day      `json:"day"`
	Domains      int              `json:"domains"`
	P50US        int64            `json:"p50_us"`
	P90US        int64            `json:"p90_us"`
	P99US        int64            `json:"p99_us"`
	Countries    []countryLatency `json:"countries,omitempty"`
	Interpolated bool             `json:"interpolated,omitempty"`
}

type routeLatencyDoc struct {
	Endpoint    string              `json:"endpoint"`
	Title       string              `json:"title"`
	Scenario    string              `json:"scenario,omitempty"`
	Generation  uint64              `json:"generation"`
	MissingDays []simtime.Day       `json:"missing_days,omitempty"`
	Series      []routeLatencyPoint `json:"series"`
}

func renderRouteLatency(series []analysis.RouteLatencyPoint) []routeLatencyPoint {
	out := make([]routeLatencyPoint, 0, len(series))
	for _, p := range series {
		lp := routeLatencyPoint{
			Day: p.Day, Domains: p.Domains,
			P50US: p.P50.Microseconds(), P90US: p.P90.Microseconds(), P99US: p.P99.Microseconds(),
			Interpolated: p.Interpolated,
		}
		for _, c := range p.Countries {
			lp.Countries = append(lp.Countries, countryLatency{
				Country: c.Country, Domains: c.Domains,
				P50US: c.P50.Microseconds(), P90US: c.P90.Microseconds(), P99US: c.P99.Microseconds(),
			})
		}
		out = append(out, lp)
	}
	return out
}

// outageEvent is one scheduled outage or route-event window.
type outageEvent struct {
	Key  string      `json:"key"`
	Kind string      `json:"kind"`
	From simtime.Day `json:"from"`
	To   simtime.Day `json:"to"`
	Days int         `json:"days"`
}

// outagesDoc is the /api/v1/outages response: every scheduled window in
// effect during collection — registry outages and, under a scenario, the
// route events — keyed and sorted exactly as OutageSchedule.Events
// returns them.
type outagesDoc struct {
	Endpoint   string        `json:"endpoint"`
	Generation uint64        `json:"generation"`
	Scenario   string        `json:"scenario,omitempty"`
	Events     []outageEvent `json:"events"`
}

func renderOutages(events []netsim.ScheduledEvent, scenario string, gen uint64) outagesDoc {
	doc := outagesDoc{
		Endpoint:   "outages",
		Generation: gen,
		Scenario:   scenario,
		Events:     make([]outageEvent, 0, len(events)),
	}
	for _, ev := range events {
		doc.Events = append(doc.Events, outageEvent{
			Key: ev.Key, Kind: ev.Kind,
			From: ev.Window.From, To: ev.Window.To, Days: ev.Window.Len(),
		})
	}
	return doc
}

// studyDoc is the /api/v1/study metadata document.
type studyDoc struct {
	Scale         int           `json:"scale"`
	Seed          int64         `json:"seed"`
	Generation    uint64        `json:"generation"`
	Domains       int           `json:"domains"`
	Sweeps        int           `json:"sweeps"`
	FirstSweep    simtime.Day   `json:"first_sweep,omitempty"`
	LastSweep     simtime.Day   `json:"last_sweep,omitempty"`
	MissingSweeps []simtime.Day `json:"missing_sweeps,omitempty"`
	CollectedMX   bool          `json:"collected_mx"`
	Endpoints     []string      `json:"endpoints"`
}

func renderStudy(st *core.Study, gen uint64) studyDoc {
	doc := studyDoc{
		Scale:         st.Scale(),
		Seed:          st.Opts.World.Seed,
		Generation:    gen,
		Domains:       st.Store.NumDomains(),
		CollectedMX:   st.Opts.CollectMX,
		MissingSweeps: st.Store.MissingSweeps(),
		Endpoints:     endpointList(),
	}
	sweeps := st.Store.Sweeps()
	doc.Sweeps = len(sweeps)
	if len(sweeps) > 0 {
		doc.FirstSweep = sweeps[0]
		doc.LastSweep = sweeps[len(sweeps)-1]
	}
	return doc
}

// sweepRow is one day on the collection axis. Measured days carry counts
// derived from the store's epochs — failed, NXDOMAIN and unreachable
// re-derive from each day's configs exactly as the sweep classified them
// — so the endpoint works for loaded stores and replayed journals too.
// The runtime-only fields (retries, recovered, duration, latency
// quantiles) come from the live SweepStats when the study collected in
// this process, and are omitted otherwise.
type sweepRow struct {
	Day          simtime.Day `json:"day"`
	Missing      bool        `json:"missing,omitempty"`
	Domains      int         `json:"domains"`
	Failed       int         `json:"failed"`
	NXDomain     int         `json:"nxdomain"`
	Unreachable  int         `json:"unreachable"`
	Retries      int         `json:"retries,omitempty"`
	Recovered    int         `json:"recovered,omitempty"`
	DurationMS   int64       `json:"duration_ms,omitempty"`
	LatencyP50US int64       `json:"latency_p50_us,omitempty"`
	LatencyP90US int64       `json:"latency_p90_us,omitempty"`
	LatencyP99US int64       `json:"latency_p99_us,omitempty"`
}

// sweepsDoc is the /api/v1/sweeps response: every scheduled day, swept
// and missing, in day order.
type sweepsDoc struct {
	Endpoint    string     `json:"endpoint"`
	Generation  uint64     `json:"generation"`
	Sweeps      int        `json:"sweeps"`
	MissingDays int        `json:"missing_days"`
	Days        []sweepRow `json:"days"`
}

func renderSweeps(snap *store.Snapshot, missing []simtime.Day, live []openintel.SweepStats, gen uint64) sweepsDoc {
	days := snap.Sweeps()
	nd := len(days)
	// Difference arrays over the day axis: each (domain, epoch) covers a
	// contiguous [lo, hi) day range, so per-day counts accumulate in one
	// epoch pass instead of one full-store pass per day.
	measured := make([]int, nd+1)
	failed := make([]int, nd+1)
	nxdomain := make([]int, nd+1)
	unreachable := make([]int, nd+1)
	snap.ForEachEpochIn(days, func(_ string, cfg store.Config, lo, hi int) {
		measured[lo]++
		measured[hi]--
		switch {
		case cfg.Failed:
			failed[lo]++
			failed[hi]--
		case len(cfg.NSHosts) == 0:
			nxdomain[lo]++
			nxdomain[hi]--
		case len(cfg.NSAddrs) == 0:
			unreachable[lo]++
			unreachable[hi]--
		}
	})

	liveByDay := make(map[simtime.Day]openintel.SweepStats, len(live))
	for _, st := range live {
		liveByDay[st.Day] = st
	}

	doc := sweepsDoc{Endpoint: "sweeps", Generation: gen, Sweeps: nd, MissingDays: len(missing)}
	doc.Days = make([]sweepRow, 0, nd+len(missing))
	var mCum, fCum, nCum, uCum int
	mi := 0
	for i, day := range days {
		for mi < len(missing) && missing[mi] < day {
			doc.Days = append(doc.Days, sweepRow{Day: missing[mi], Missing: true})
			mi++
		}
		mCum += measured[i]
		fCum += failed[i]
		nCum += nxdomain[i]
		uCum += unreachable[i]
		row := sweepRow{Day: day, Domains: mCum, Failed: fCum, NXDomain: nCum, Unreachable: uCum}
		if st, ok := liveByDay[day]; ok {
			row.Retries = st.Retries
			row.Recovered = st.Recovered
			row.DurationMS = st.Duration.Milliseconds()
			row.LatencyP50US = st.LatencyP50.Microseconds()
			row.LatencyP90US = st.LatencyP90.Microseconds()
			row.LatencyP99US = st.LatencyP99.Microseconds()
		}
		doc.Days = append(doc.Days, row)
	}
	for mi < len(missing) {
		doc.Days = append(doc.Days, sweepRow{Day: missing[mi], Missing: true})
		mi++
	}
	return doc
}
