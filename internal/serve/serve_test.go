package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"whereru/internal/analysis"
	"whereru/internal/core"
	"whereru/internal/simtime"
	"whereru/internal/world"
)

// The serve tests share one collected study: collection dominates the
// package's runtime, and every test only reads from it (the ETag
// invalidation test appends, which is the mutation the cache is built
// for).
var (
	studyOnce   sync.Once
	sharedStudy *core.Study
	studyErr    error
)

func testStudy(tb testing.TB) *core.Study {
	tb.Helper()
	studyOnce.Do(func() {
		opts := core.Options{
			World:     world.Config{Seed: 5, Scale: 20000, RFShare: 0.1},
			DenseStep: 7,
			CollectMX: true,
			// A routing scenario so the reachability/latency figures and the
			// outages endpoint have real content to serve.
			Scenario: world.ScenarioNetnodDepeering,
		}
		var s *core.Study
		s, studyErr = core.New(opts)
		if studyErr != nil {
			return
		}
		if studyErr = s.Collect(context.Background()); studyErr == nil {
			sharedStudy = s
		}
	})
	if studyErr != nil {
		tb.Fatalf("building shared study: %v", studyErr)
	}
	return sharedStudy
}

func newTestServer(tb testing.TB, opts Options) (*Server, *httptest.Server) {
	tb.Helper()
	srv := New(testStudy(tb), opts)
	ts := httptest.NewServer(srv)
	tb.Cleanup(ts.Close)
	return srv, ts
}

func get(tb testing.TB, url string) (*http.Response, []byte) {
	tb.Helper()
	resp, err := http.Get(url)
	if err != nil {
		tb.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		tb.Fatalf("reading %s: %v", url, err)
	}
	return resp, body
}

// marshalDoc renders a document exactly as the server does.
func marshalDoc(tb testing.TB, doc any) []byte {
	tb.Helper()
	b, err := json.Marshal(doc)
	if err != nil {
		tb.Fatal(err)
	}
	return append(b, '\n')
}

// TestEndpointsGolden compares every JSON endpoint's bytes against the
// renderer output built directly from the study — the server must be a
// pure serialization of the analysis layer, nothing added, nothing lost.
func TestEndpointsGolden(t *testing.T) {
	st := testStudy(t)
	_, ts := newTestServer(t, Options{})
	gen := st.Store.Generation()

	fig4Labels := func() []asnLabel {
		var out []asnLabel
		for _, p := range core.Fig4Providers() {
			out = append(out, asnLabel{ASN: p.ASN, Name: p.Name})
		}
		return out
	}
	fig3 := st.Fig3()
	fig3Top := analysis.TopTLDs(fig3, 5)
	dense := simtime.Date(2022, 2, 1)

	cases := []struct {
		path string
		doc  any
	}{
		{"/api/v1/figures/1", compositionDoc{
			Figure: 1, Title: "NS-infrastructure composition of .ru/.рф",
			Generation: gen, MissingDays: st.Store.MissingSweeps(),
			Series: renderComposition(st.Fig1()),
		}},
		{"/api/v1/figures/2", compositionDoc{
			Figure: 2, Title: "TLD dependency of .ru/.рф name servers",
			Generation: gen, MissingDays: st.Store.MissingSweeps(),
			Series: renderComposition(st.Fig2()),
		}},
		{"/api/v1/figures/3", tldShareDoc{
			Figure: 3, Title: "Name-server TLD shares",
			Generation: gen, TopTLDs: fig3Top,
			MissingDays: st.Store.MissingSweeps(),
			Series:      renderTLDShares(fig3, fig3Top),
		}},
		{"/api/v1/figures/4", asnShareDoc{
			Figure: 4, Title: "Hosting ASN shares (2022 dense window)",
			Generation: gen, Plotted: fig4Labels(),
			MissingDays: missingIn(st.Store.MissingSweeps(), dense),
			Series:      renderASNShares(st.Fig4()),
		}},
		{"/api/v1/figures/5", compositionDoc{
			Figure: 5, Title: "Sanctioned-domain NS composition (2022 dense window)",
			Generation:  gen,
			MissingDays: missingIn(st.Store.MissingSweeps(), dense),
			Series:      renderComposition(st.Fig5()),
		}},
		{"/api/v1/figures/8", caTimelineDoc{
			Figure: 8, Title: "Top-10 CA issuance timelines",
			Generation: gen,
			WindowFrom: world.RussianCAStartDay, WindowTo: simtime.CTWindowEnd,
			Timelines: renderTimelines(st.Fig8()),
		}},
		{"/api/v1/figures/reachability", reachabilityDoc{
			Endpoint: "reachability", Title: "Name-server reachability under routing scenario",
			Scenario: st.Opts.Scenario, Generation: gen,
			MissingDays: st.Store.MissingSweeps(),
			Series:      renderReachability(st.Reachability()),
		}},
		{"/api/v1/figures/latency", routeLatencyDoc{
			Endpoint: "latency", Title: "Simulated resolution latency (best NS path)",
			Scenario: st.Opts.Scenario, Generation: gen,
			MissingDays: st.Store.MissingSweeps(),
			Series:      renderRouteLatency(st.RouteLatency()),
		}},
		{"/api/v1/outages", renderOutages(st.Outages.Events(), st.Opts.Scenario, gen)},
		{"/api/v1/tables/1", table1Doc{
			Table: 1, Title: "Certificate issuance by period",
			Generation: gen, Scale: st.Scale(),
			Rows: renderTable1(st.Table1(), st.Scale()),
		}},
		{"/api/v1/tables/2", table2Doc{
			Table: 2, Title: "Revocations by top-5 revoking CAs",
			Generation: gen,
			Rows:       renderTable2(st.Table2()),
		}},
		{"/api/v1/hosting", compositionDoc{
			Endpoint: "hosting", Title: "Hosting composition (§3.1)",
			Generation: gen, MissingDays: st.Store.MissingSweeps(),
			Series: renderComposition(st.Hosting()),
		}},
		{"/api/v1/movement?asn=197695&from=2022-02-24", renderMovement(
			st.Movement(197695, simtime.ConflictStart), gen)},
		{"/api/v1/study", renderStudy(st, gen)},
		{"/api/v1/sweeps", renderSweeps(st.Store.Snapshot(), st.Store.MissingSweeps(), st.Stats, gen)},
	}
	for _, c := range cases {
		t.Run(c.path, func(t *testing.T) {
			want := marshalDoc(t, c.doc)
			resp, body := get(t, ts.URL+c.path)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d, body: %s", resp.StatusCode, body)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Errorf("Content-Type = %q", ct)
			}
			if resp.Header.Get("ETag") == "" {
				t.Error("no ETag")
			}
			if string(body) != string(want) {
				t.Errorf("server bytes differ from renderer output\nserver: %.200s\nwant:   %.200s", body, want)
			}
			// Byte-identical on repeat: the cached body is served verbatim.
			_, again := get(t, ts.URL+c.path)
			if string(again) != string(body) {
				t.Error("repeated request returned different bytes")
			}
		})
	}
}

// TestTimelineEndpoint exercises the per-domain point lookup: a known
// domain yields its epoch timeline, an unknown one a 404.
func TestTimelineEndpoint(t *testing.T) {
	st := testStudy(t)
	_, ts := newTestServer(t, Options{})
	doms := st.Store.Domains()
	if len(doms) == 0 {
		t.Fatal("study has no domains")
	}
	name := doms[len(doms)/2]
	resp, body := get(t, ts.URL+"/api/v1/domains/"+strings.TrimSuffix(name, ".")+"/timeline")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body: %s", resp.StatusCode, body)
	}
	var doc timelineDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Domain != name {
		t.Errorf("domain = %q, want %q (canonicalized)", doc.Domain, name)
	}
	if len(doc.Epochs) == 0 {
		t.Fatal("no epochs")
	}
	if doc.FirstSeen > doc.LastSeen {
		t.Errorf("first_seen %s after last_seen %s", doc.FirstSeen, doc.LastSeen)
	}
	total := 0
	for i, ep := range doc.Epochs {
		if ep.From > ep.To {
			t.Errorf("epoch %d: from %s after to %s", i, ep.From, ep.To)
		}
		if ep.SweepsCovered <= 0 {
			t.Errorf("epoch %d: covered %d sweeps", i, ep.SweepsCovered)
		}
		total += ep.SweepsCovered
	}
	if sweeps := len(st.Store.Sweeps()); total > sweeps {
		t.Errorf("epochs cover %d sweeps, study has %d", total, sweeps)
	}

	resp, _ = get(t, ts.URL+"/api/v1/domains/no-such-domain.example/timeline")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown domain: status = %d, want 404", resp.StatusCode)
	}
	// The 404 must not poison the cache: a real domain still resolves.
	resp, _ = get(t, ts.URL+"/api/v1/domains/"+name+"/timeline")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("known domain after 404: status = %d", resp.StatusCode)
	}
}

// TestScenarioContent pins the routing-scenario semantics end to end
// through the API: under netnod-depeering the Swedish name-server slice
// (Netnod's secondary service) is fully reachable before the cutoff and
// gone from the measured footprint after it — the pipeline can no
// longer resolve NS hosts behind the withdrawn AS (the chase fails with
// ErrNoPath), so their addresses drop out of measured configs entirely
// instead of lingering as unreachable entries — and the outages
// endpoint lists the scenario's route events alongside any registry
// outages.
func TestScenarioContent(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	resp, body := get(t, ts.URL+"/api/v1/figures/reachability")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reachability: status %d, body: %s", resp.StatusCode, body)
	}
	var doc struct {
		Scenario string `json:"scenario"`
		Series   []struct {
			Day       string `json:"day"`
			Total     int    `json:"total"`
			Reachable int    `json:"reachable"`
			Countries []struct {
				Country   string `json:"country"`
				Total     int    `json:"total"`
				Reachable int    `json:"reachable"`
			} `json:"countries"`
		} `json:"series"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if doc.Scenario != world.ScenarioNetnodDepeering {
		t.Errorf("scenario = %q, want %q", doc.Scenario, world.ScenarioNetnodDepeering)
	}
	if len(doc.Series) == 0 {
		t.Fatal("empty reachability series")
	}
	se := func(i int) (total, reach int) {
		for _, c := range doc.Series[i].Countries {
			if c.Country == "SE" {
				return c.Total, c.Reachable
			}
		}
		return 0, 0
	}
	cutoff := world.NetnodCutoffDay.String()
	first, last := 0, len(doc.Series)-1
	if doc.Series[first].Day >= cutoff {
		t.Fatalf("first series day %s not before the cutoff %s", doc.Series[first].Day, cutoff)
	}
	if tot, reach := se(first); tot == 0 || reach != tot {
		t.Errorf("pre-cutoff SE reachability = %d/%d, want fully reachable and nonzero", reach, tot)
	}
	if doc.Series[last].Day < cutoff {
		t.Fatalf("last series day %s not past the cutoff %s", doc.Series[last].Day, cutoff)
	}
	if tot, reach := se(last); tot != 0 || reach != 0 {
		t.Errorf("post-cutoff SE reachability = %d/%d, want the SE slice gone from the measured footprint", reach, tot)
	}
	if p := doc.Series[last]; p.Reachable == 0 || p.Reachable > p.Total {
		t.Errorf("post-cutoff overall reachability %d/%d out of range", p.Reachable, p.Total)
	}

	resp, body = get(t, ts.URL+"/api/v1/figures/latency")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("latency: status %d, body: %s", resp.StatusCode, body)
	}
	var lat struct {
		Series []struct {
			Domains int   `json:"domains"`
			P50US   int64 `json:"p50_us"`
			P99US   int64 `json:"p99_us"`
		} `json:"series"`
	}
	if err := json.Unmarshal(body, &lat); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(lat.Series) == 0 {
		t.Fatal("empty latency series")
	}
	if p := lat.Series[len(lat.Series)-1]; p.Domains == 0 || p.P50US == 0 || p.P99US < p.P50US {
		t.Errorf("final latency point %+v, want routed domains with nonzero ordered quantiles", p)
	}

	resp, body = get(t, ts.URL+"/api/v1/outages")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("outages: status %d, body: %s", resp.StatusCode, body)
	}
	var out struct {
		Scenario string `json:"scenario"`
		Events   []struct {
			Key  string `json:"key"`
			Kind string `json:"kind"`
			From string `json:"from"`
			To   string `json:"to"`
			Days int    `json:"days"`
		} `json:"events"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	kinds := map[string]string{}
	for _, ev := range out.Events {
		kinds[ev.Key] = ev.Kind
		if ev.From > ev.To || ev.Days <= 0 {
			t.Errorf("event %s has a degenerate window %s..%s (%d days)", ev.Key, ev.From, ev.To, ev.Days)
		}
	}
	if got := kinds["route:depeer:AS8674-AS64500"]; got != "depeer" {
		t.Errorf("depeering event kind = %q, events: %v", got, kinds)
	}
	if got := kinds["route:ixp:NETNOD-IX:AS8674"]; got != "ixp-withdraw" {
		t.Errorf("IXP-withdrawal event kind = %q, events: %v", got, kinds)
	}
}

// TestRequestValidation covers the 4xx surface: bad figure/table numbers
// and malformed movement parameters.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		path string
		want int
	}{
		{"/api/v1/figures/6", http.StatusNotFound},
		{"/api/v1/figures/x", http.StatusNotFound},
		{"/api/v1/tables/3", http.StatusNotFound},
		{"/api/v1/movement", http.StatusBadRequest},
		{"/api/v1/movement?asn=197695", http.StatusBadRequest},
		{"/api/v1/movement?asn=abc&from=2022-02-24", http.StatusBadRequest},
		{"/api/v1/movement?asn=197695&from=yesterday", http.StatusBadRequest},
		{"/api/v1/nope", http.StatusNotFound},
	}
	for _, c := range cases {
		resp, body := get(t, ts.URL+c.path)
		if resp.StatusCode != c.want {
			t.Errorf("GET %s = %d, want %d (body: %.100s)", c.path, resp.StatusCode, c.want, body)
		}
	}
}

// TestCoalescing issues N concurrent cold requests for the same figure
// and asserts the engine computed exactly once — the singleflight
// guarantee the cache makes.
func TestCoalescing(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	const n = 16
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := get(t, ts.URL+"/api/v1/figures/1")
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	if got := srv.met.computationCount(); got != 1 {
		t.Errorf("%d concurrent cold requests ran %d computations, want exactly 1", n, got)
	}
	for i := 1; i < n; i++ {
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("request %d returned different bytes", i)
		}
	}
}

// TestETagRoundTrip drives the conditional-request protocol: a cached
// ETag turns into 304, a store mutation (generation bump) invalidates it
// back to 200 with fresh bytes.
func TestETagRoundTrip(t *testing.T) {
	st := testStudy(t)
	_, ts := newTestServer(t, Options{})
	url := ts.URL + "/api/v1/figures/2"

	resp, body := get(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold: status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("ETag = %q, want a strong quoted tag", etag)
	}

	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional: status %d, want 304", resp2.StatusCode)
	}
	if len(b2) != 0 {
		t.Errorf("304 carried a %d-byte body", len(b2))
	}
	if resp2.Header.Get("ETag") != etag {
		t.Errorf("304 ETag = %q, want %q", resp2.Header.Get("ETag"), etag)
	}

	// Mutate the store: the generation bumps, the cache key moves on, and
	// the same conditional request must now see fresh content.
	genBefore := st.Store.Generation()
	st.Store.MarkMissingSweep(simtime.StudyEnd.Add(7))
	if st.Store.Generation() == genBefore {
		t.Fatal("MarkMissingSweep did not bump the generation")
	}
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b3, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("post-mutation conditional: status %d, want 200", resp3.StatusCode)
	}
	if resp3.Header.Get("ETag") == etag {
		t.Error("ETag unchanged after store mutation")
	}
	if string(b3) == string(body) {
		t.Error("body unchanged after store mutation")
	}
}

// TestSaturation pins the backpressure contract: with one computation
// slot held by a deliberately stalled leader, a second cold request is
// rejected immediately with 503 + Retry-After, and the slot's eventual
// release lets traffic through again.
func TestSaturation(t *testing.T) {
	// The gate is installed before the listener starts and never changed
	// after, so handler goroutines only ever read it.
	srv := New(testStudy(t), Options{MaxConcurrent: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.computeGate = func(endpoint string) {
		if endpoint == "figures" {
			close(entered)
			<-release
		}
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	type result struct {
		code int
		body string
	}
	leader := make(chan result, 1)
	go func() {
		resp, body := get(t, ts.URL+"/api/v1/figures/1")
		leader <- result{resp.StatusCode, string(body)}
	}()

	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("leader never reached the compute gate")
	}

	resp, _ := get(t, ts.URL+"/api/v1/hosting")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated request: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 without Retry-After")
	}
	srv.met.mu.Lock()
	saturations := srv.met.saturations
	srv.met.mu.Unlock()
	if saturations == 0 {
		t.Error("saturation not counted")
	}

	close(release)
	if r := <-leader; r.code != http.StatusOK {
		t.Fatalf("stalled leader finished with %d: %.200s", r.code, r.body)
	}
	// The rejected request was not cached as an error: it now succeeds.
	resp, _ = get(t, ts.URL+"/api/v1/hosting")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-saturation retry: status %d, want 200", resp.StatusCode)
	}
}

// TestHealthzAndMetrics smoke-tests the operational endpoints.
func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(body), "ok ") {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}

	get(t, ts.URL+"/api/v1/figures/1")
	get(t, ts.URL+"/api/v1/figures/1")

	resp, body = get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	text := string(body)
	for _, line := range []string{
		`whereru_requests_total{endpoint="figures",code="200"}`,
		`whereru_request_duration_seconds_bucket{le="+Inf"}`,
		"whereru_computations_total",
		"whereru_cache_hits_total",
		"whereru_inflight_requests",
		"whereru_store_domains",
		"whereru_store_epochs",
		"whereru_store_distinct_configs",
		"whereru_store_resident_bytes",
	} {
		if !strings.Contains(text, line) {
			t.Errorf("metrics output missing %q", line)
		}
	}
	// Two identical requests: the second must have been a cache hit.
	if !strings.Contains(text, "whereru_cache_hits_total 1") {
		t.Errorf("expected exactly one cache hit, metrics:\n%s", text)
	}
}

// TestCacheEviction verifies the cache honors its capacity and drops
// old-generation entries.
func TestCacheEviction(t *testing.T) {
	c := newResultCache(2)
	finish := func(e *entry, body string) {
		e.body = []byte(body)
		close(e.ready)
	}
	k1 := cacheKey{"a", "", 1}
	e1, lead := c.lookup(k1)
	if !lead {
		t.Fatal("first lookup not leader")
	}
	finish(e1, "one")
	if e, lead := c.lookup(k1); lead || string(e.body) != "one" {
		t.Fatal("second lookup recomputed")
	}

	// A newer generation evicts the old entry on insert.
	e2, _ := c.lookup(cacheKey{"a", "", 2})
	finish(e2, "two")
	if _, lead := c.lookup(k1); !lead {
		t.Error("old-generation entry survived a newer insert")
	}
	if c.len() > 2 {
		t.Errorf("cache over capacity: %d", c.len())
	}

	// Errors are removed, so the next lookup leads again.
	k3 := cacheKey{"b", "", 2}
	e3, _ := c.lookup(k3)
	e3.err = fmt.Errorf("boom")
	c.remove(k3, e3)
	close(e3.ready)
	if _, lead := c.lookup(k3); !lead {
		t.Error("failed entry stayed cached")
	}
}

// TestSweepsEndpointContent exercises /api/v1/sweeps on a study with a
// dropped collection day: swept days carry per-day config tallies and
// the live runtime stats, the dropped day appears interleaved in day
// order as missing, and replayed-style rows (no runtime stats) omit the
// duration fields entirely.
func TestSweepsEndpointContent(t *testing.T) {
	dropped := simtime.Date(2022, 3, 3)
	opts := core.Options{
		World:      world.Config{Seed: 5, Scale: 20000, RFShare: 0.1},
		DenseStep:  7,
		CollectMX:  true,
		StudyStart: simtime.Date(2022, 2, 17),
		StudyEnd:   simtime.Date(2022, 3, 17),
		DropSweeps: []simtime.Day{dropped},
	}
	st, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := New(st, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := get(t, ts.URL+"/api/v1/sweeps")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body: %s", resp.StatusCode, body)
	}
	var doc struct {
		Sweeps      int `json:"sweeps"`
		MissingDays int `json:"missing_days"`
		Days        []struct {
			Day        string `json:"day"`
			Missing    bool   `json:"missing"`
			Domains    int    `json:"domains"`
			DurationMS int64  `json:"duration_ms"`
		} `json:"days"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("unmarshal: %v\nbody: %s", err, body)
	}
	if doc.MissingDays != 1 {
		t.Errorf("missing_days = %d, want 1", doc.MissingDays)
	}
	if doc.Sweeps != len(st.Sweeps) {
		t.Errorf("sweeps = %d, want %d", doc.Sweeps, len(st.Sweeps))
	}
	if len(doc.Days) != doc.Sweeps+doc.MissingDays {
		t.Fatalf("%d day rows, want %d", len(doc.Days), doc.Sweeps+doc.MissingDays)
	}
	prev := ""
	sawMissing := false
	for _, row := range doc.Days {
		if row.Day <= prev {
			t.Errorf("day rows out of order: %s after %s", row.Day, prev)
		}
		prev = row.Day
		if row.Missing {
			sawMissing = true
			if row.Day != dropped.String() {
				t.Errorf("unexpected missing day %s", row.Day)
			}
			if row.Domains != 0 || row.DurationMS != 0 {
				t.Errorf("missing day carries measurements: %+v", row)
			}
			continue
		}
		if row.Domains == 0 {
			t.Errorf("swept day %s reports zero domains", row.Day)
		}
		if row.DurationMS < 0 {
			t.Errorf("swept day %s has negative duration", row.Day)
		}
	}
	if !sawMissing {
		t.Error("dropped day never surfaced as missing")
	}
}
