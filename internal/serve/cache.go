package serve

import "sync"

// The result cache is what lets one process answer heavy repeated
// traffic over an immutable-until-appended store. It does two jobs at
// once:
//
//   - Versioned caching: keys embed the store generation, so a result
//     computed against one store state can never be served after the
//     store gains sweeps — invalidation is a by-product of the key, not
//     an event the store has to broadcast.
//   - Request coalescing (singleflight): the first request for a key
//     installs a pending entry and becomes the leader; every concurrent
//     identical request finds that entry and waits on its ready channel.
//     N concurrent cold requests therefore trigger exactly one engine
//     computation, which the saturation semaphore then bounds.
//
// Entries hold the fully rendered JSON body plus its strong ETag, so a
// warm hit is a map lookup and a memcpy — no analysis, no marshaling.

// cacheKey identifies one cached response: the endpoint, its
// canonicalized parameters, and the store generation the result was
// computed against.
type cacheKey struct {
	endpoint string
	params   string
	gen      uint64
}

// entry is one cached (or in-flight) response. ready is closed by the
// leader when body/etag/err are final; they must not be touched after.
type entry struct {
	ready chan struct{}
	body  []byte
	etag  string
	err   error
}

// done reports whether the entry's computation has finished.
func (e *entry) done() bool {
	select {
	case <-e.ready:
		return true
	default:
		return false
	}
}

// resultCache is the versioned, coalescing response cache.
type resultCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*entry
	// order is the insertion order of live keys, the eviction queue.
	order []cacheKey
	max   int
}

func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{entries: make(map[cacheKey]*entry), max: max}
}

// lookup returns the entry for key, creating a pending one when absent.
// leader is true for the caller that must now compute and publish the
// result (exactly one caller per cold key sees it).
func (c *resultCache) lookup(key cacheKey) (e *entry, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e, false
	}
	c.evictLocked(key.gen)
	e = &entry{ready: make(chan struct{})}
	c.entries[key] = e
	c.order = append(c.order, key)
	return e, true
}

// evictLocked makes room before an insert: entries computed against
// older store generations go first (they can never be hit again — the
// current generation is part of every future key), then the oldest
// completed entries until the cache is under its cap. Pending entries
// are never evicted; their leaders still hold them.
func (c *resultCache) evictLocked(gen uint64) {
	keep := c.order[:0]
	for _, k := range c.order {
		e, ok := c.entries[k]
		if !ok {
			continue // removed on error
		}
		if k.gen < gen && e.done() {
			delete(c.entries, k)
			continue
		}
		keep = append(keep, k)
	}
	c.order = keep
	for i := 0; len(c.entries) >= c.max && i < len(c.order); i++ {
		k := c.order[i]
		if e, ok := c.entries[k]; ok && e.done() {
			delete(c.entries, k)
		}
	}
}

// insert installs an already-computed response for key, but only if the
// key is absent — a pending leader or an existing body always wins, so
// follow-mode patching can never clobber an in-flight computation or
// duplicate an order entry. Reports whether the entry was installed.
func (c *resultCache) insert(key cacheKey, body []byte, etag string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return false
	}
	c.evictLocked(key.gen)
	e := &entry{ready: make(chan struct{}), body: body, etag: etag}
	close(e.ready)
	c.entries[key] = e
	c.order = append(c.order, key)
	return true
}

// remove drops key from the cache if it still maps to e: failed and
// saturated computations must not stay cached, so the next request
// retries instead of replaying the error forever.
func (c *resultCache) remove(key cacheKey, e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.entries[key]; ok && cur == e {
		delete(c.entries, key)
	}
}

// purge empties the cache (benchmarks use it to re-run cold paths).
func (c *resultCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[cacheKey]*entry)
	c.order = nil
}

// len returns the number of live entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
