package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"net/http/httptest"

	"whereru/internal/core"
	"whereru/internal/simtime"
	"whereru/internal/store"
	"whereru/internal/world"
)

// followOpts is a short study window straddling the dense cutoff, so the
// dense-window figures (4/5) gain points during the followed tail.
func followOpts() core.Options {
	return core.Options{
		World:      world.Config{Seed: 5, Scale: 20000, RFShare: 0.1},
		DenseStep:  7,
		CollectMX:  true,
		StudyStart: simtime.Date(2021, 12, 1),
		StudyEnd:   simtime.Date(2022, 3, 1),
	}
}

// collectJournal collects a full study once and returns its journal
// replay and path (the segment source for the follow tests).
func collectJournal(t *testing.T) (*store.JournalReplay, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "full.wrjl")
	opts := followOpts()
	opts.CheckpointPath = path
	s, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	replay, err := store.VerifyJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay.Sweeps) < 4 {
		t.Fatalf("need at least 4 journal segments, have %d", len(replay.Sweeps))
	}
	return replay, path
}

// startFollowed writes the first k segments of replay into a fresh
// journal, loads a study+engine from it, and starts a followed server
// tailing that journal. It returns the server, its base URL, and the
// still-open journal for the test to append the remaining segments to.
func startFollowed(t *testing.T, replay *store.JournalReplay, k int, opts Options) (*Server, string, *store.Journal) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "follow.wrjl")
	j, err := store.CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	for _, rec := range replay.Sweeps[:k] {
		if err := j.AppendSweep(rec); err != nil {
			t.Fatal(err)
		}
	}
	study, prefix, err := core.LoadCheckpointReplay(followOpts(), path)
	if err != nil {
		t.Fatal(err)
	}
	eng := study.NewStreamEngine()
	if err := core.FoldReplay(eng, prefix); err != nil {
		t.Fatal(err)
	}
	srv := New(study, opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	done := make(chan error, 1)
	go func() {
		done <- srv.Follow(ctx, FollowOptions{
			Engine:      eng,
			JournalPath: path,
			StartOffset: prefix.GoodBytes,
			Poll:        2 * time.Millisecond,
		})
	}()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Follow returned %v", err)
		}
	})
	waitFor(t, "follow active", func() bool { return srv.follow.active.Load() })
	return srv, ts.URL, j
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// sseReader connects to an SSE endpoint and delivers decoded "data:"
// payloads over a channel.
func sseReader(t *testing.T, url string) (<-chan streamEvent, func()) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("SSE connect: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("SSE Content-Type = %q", ct)
	}
	events := make(chan streamEvent, 64)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev streamEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				return
			}
			events <- ev
		}
	}()
	return events, func() { resp.Body.Close() }
}

func nextEvent(t *testing.T, events <-chan streamEvent) streamEvent {
	t.Helper()
	select {
	case ev, ok := <-events:
		if !ok {
			t.Fatal("SSE stream closed early")
		}
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for SSE event")
	}
	panic("unreachable")
}

// patchedEndpoints are the paths follow mode patches into the cache —
// the byte-compare set against a cold restart.
var patchedEndpoints = []string{
	"/api/v1/figures/1",
	"/api/v1/figures/2",
	"/api/v1/figures/3",
	"/api/v1/figures/4",
	"/api/v1/figures/5",
	"/api/v1/figures/reachability",
	"/api/v1/figures/latency",
	"/api/v1/hosting",
	"/api/v1/sweeps",
}

// TestFollowLiveUpdates is the end-to-end follow-mode test: segments
// appended to the journal must each produce one SSE event, patch the
// response cache at the new generation, and leave every patched endpoint
// byte-identical (body and ETag) to a cold server restarted over the
// same journal.
func TestFollowLiveUpdates(t *testing.T) {
	replay, fullPath := collectJournal(t)
	n := len(replay.Sweeps)
	k := n / 2
	srv, base, j := startFollowed(t, replay, k, Options{})

	events, closeSSE := sseReader(t, base+"/api/v1/stream/sweeps")
	defer closeSSE()
	figEvents, closeFig := sseReader(t, base+"/api/v1/stream/figures/3")
	defer closeFig()

	// Concurrent readers keep hammering the API during folds; under
	// -race this doubles as an interleaving test.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, p := range []string{"/api/v1/figures/1", "/api/v1/sweeps", "/metrics", "/healthz"} {
					resp, _ := get(t, base+p)
					if resp.StatusCode != http.StatusOK {
						t.Errorf("GET %s during folds: status %d", p, resp.StatusCode)
						return
					}
				}
			}
		}()
	}

	var lastGen uint64
	for _, rec := range replay.Sweeps[k:] {
		if err := j.AppendSweep(rec); err != nil {
			t.Fatal(err)
		}
		ev := nextEvent(t, events)
		if ev.Day != rec.Day {
			t.Fatalf("event day = %s, appended %s", ev.Day, rec.Day)
		}
		if ev.Generation <= lastGen {
			t.Fatalf("event generation %d did not advance past %d", ev.Generation, lastGen)
		}
		if !rec.Missing && len(ev.ETags) == 0 {
			t.Fatalf("swept-day event carries no etags: %+v", ev)
		}
		lastGen = ev.Generation

		fev := nextEvent(t, figEvents)
		if fev.Day != rec.Day || fev.Generation != ev.Generation {
			t.Fatalf("figure event %+v does not match sweep event %+v", fev, ev)
		}
	}
	close(stop)
	wg.Wait()

	srv.follow.mu.Lock()
	folds, patched := srv.follow.folds, srv.follow.patched
	srv.follow.mu.Unlock()
	if folds != uint64(n-k) {
		t.Fatalf("folds = %d, want %d", folds, n-k)
	}
	if patched == 0 {
		t.Fatal("no cache entries were patched")
	}

	// A conditional GET with the patched ETag must round-trip to 304.
	resp, _ := get(t, base+"/api/v1/figures/3")
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on patched figure")
	}
	req, _ := http.NewRequest(http.MethodGet, base+"/api/v1/figures/3", nil)
	req.Header.Set("If-None-Match", etag)
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET after patch: status %d, want 304", cresp.StatusCode)
	}

	// healthz and metrics report the follow state.
	_, hbody := get(t, base+"/healthz")
	if !strings.HasPrefix(string(hbody), "ok ") || !strings.Contains(string(hbody), "follow=1") {
		t.Fatalf("healthz = %q", hbody)
	}
	_, mbody := get(t, base+"/metrics")
	for _, want := range []string{
		fmt.Sprintf("whereru_stream_folds_total %d", n-k),
		"whereru_stream_following 1",
		"whereru_stream_cache_patched_total",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Fatalf("metrics missing %q", want)
		}
	}

	// Byte-compare every patched endpoint against a cold restart over the
	// same journal — same bodies, same ETags.
	coldStudy, _, err := core.LoadCheckpointReplay(followOpts(), fullPath)
	if err != nil {
		t.Fatal(err)
	}
	coldSrv := httptest.NewServer(New(coldStudy, Options{}))
	defer coldSrv.Close()
	if lg, cg := srv.study.Store.Generation(), coldStudy.Store.Generation(); lg != cg {
		t.Fatalf("followed generation %d != cold generation %d", lg, cg)
	}
	for _, p := range patchedEndpoints {
		lresp, lbody := get(t, base+p)
		cresp, cbody := get(t, coldSrv.URL+p)
		if lresp.StatusCode != http.StatusOK || cresp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status live=%d cold=%d", p, lresp.StatusCode, cresp.StatusCode)
		}
		if string(lbody) != string(cbody) {
			t.Errorf("%s: patched body diverged from cold restart\n live: %.200s\n cold: %.200s", p, lbody, cbody)
		}
		if le, ce := lresp.Header.Get("ETag"), cresp.Header.Get("ETag"); le != ce {
			t.Errorf("%s: patched ETag %s != cold ETag %s", p, le, ce)
		}
	}
}

// TestLongPollStream covers the non-SSE side: ?since= returns the latest
// event immediately once the generation has advanced past it, and 204
// when nothing arrives before the deadline.
func TestLongPollStream(t *testing.T) {
	replay, _ := collectJournal(t)
	n := len(replay.Sweeps)
	srv, base, j := startFollowed(t, replay, n-1, Options{RequestTimeout: 500 * time.Millisecond})

	if err := j.AppendSweep(replay.Sweeps[n-1]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "final fold", func() bool { return srv.follow.engine.Folds() == uint64(n) })

	resp, body := get(t, base+"/api/v1/stream/sweeps?since=0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("long-poll since=0: status %d", resp.StatusCode)
	}
	var ev streamEvent
	if err := json.Unmarshal(body, &ev); err != nil {
		t.Fatalf("long-poll body %q: %v", body, err)
	}
	if ev.Day != replay.Sweeps[n-1].Day {
		t.Fatalf("long-poll day = %s, want %s", ev.Day, replay.Sweeps[n-1].Day)
	}

	// Figure-scoped long-poll carries the figure's patched ETag.
	fresp, fbody := get(t, base+"/api/v1/stream/figures/1?since=0")
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("figure long-poll: status %d", fresp.StatusCode)
	}
	var fev figureEvent
	if err := json.Unmarshal(fbody, &fev); err != nil {
		t.Fatal(err)
	}
	if fev.Figure != "1" || fev.Generation != ev.Generation {
		t.Fatalf("figure long-poll event = %+v", fev)
	}
	if fev.ETag != "" {
		gresp, _ := get(t, base+"/api/v1/figures/1")
		if got := gresp.Header.Get("ETag"); got != fev.ETag {
			t.Fatalf("figure etag %s != event etag %s", got, fev.ETag)
		}
	}

	// Caught up: nothing new before the deadline → 204.
	nresp, _ := get(t, fmt.Sprintf("%s/api/v1/stream/sweeps?since=%d", base, ev.Generation))
	if nresp.StatusCode != http.StatusNoContent {
		t.Fatalf("caught-up long-poll: status %d, want 204", nresp.StatusCode)
	}

	// Malformed since is a client error.
	bresp, _ := get(t, base+"/api/v1/stream/sweeps?since=banana")
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since: status %d, want 400", bresp.StatusCode)
	}
}

// TestStreamRequiresFollow pins the non-following behavior: stream
// endpoints 404 and unknown stream figures 404 regardless.
func TestStreamRequiresFollow(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, _ := get(t, ts.URL+"/api/v1/stream/sweeps")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stream without follow: status %d, want 404", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/api/v1/stream/figures/8")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("figure 8 stream: status %d, want 404", resp.StatusCode)
	}
}
