package serve

import (
	"fmt"

	"whereru/internal/analysis"
	"whereru/internal/core"
	"whereru/internal/simtime"
	"whereru/internal/stream"
)

// seriesSource is where a figure's series comes from: the batch engine
// (core.Study recomputes over the whole store) or the incremental one
// (stream.Engine returns its folded accumulators). Both must yield
// identical series — the fold-equivalence tests pin that — so one doc
// builder renders for both, and a cache entry patched from the stream
// engine is byte-identical to one computed cold.
type seriesSource interface {
	Fig1() []analysis.Point
	Fig2() []analysis.Point
	Fig3() []analysis.TLDSharePoint
	Fig4() []analysis.ASNSharePoint
	Fig5() []analysis.Point
	Hosting() []analysis.Point
	Reachability() []analysis.ReachPoint
	RouteLatency() []analysis.RouteLatencyPoint
}

var (
	_ seriesSource = (*core.Study)(nil)
	_ seriesSource = (*stream.Engine)(nil)
)

// seriesFigureIDs are the figure-endpoint ids servable from a
// seriesSource (figure 8 is CT-derived and sweep-independent, so it has
// no stream path).
var seriesFigureIDs = []string{"1", "2", "3", "4", "5", "reachability", "latency"}

// docFigure builds the response document for a series figure. missing is
// the store's full missing-sweeps list (dense-window figures filter it);
// scenario labels the reachability/latency docs.
func docFigure(n string, gen uint64, missing []simtime.Day, scenario string, src seriesSource) (any, error) {
	switch n {
	case "1":
		return compositionDoc{
			Figure: 1, Title: "NS-infrastructure composition of .ru/.рф",
			Generation: gen, MissingDays: missing,
			Series: renderComposition(src.Fig1()),
		}, nil
	case "2":
		return compositionDoc{
			Figure: 2, Title: "TLD dependency of .ru/.рф name servers",
			Generation: gen, MissingDays: missing,
			Series: renderComposition(src.Fig2()),
		}, nil
	case "3":
		series := src.Fig3()
		top := analysis.TopTLDs(series, 5)
		return tldShareDoc{
			Figure: 3, Title: "Name-server TLD shares",
			Generation: gen, TopTLDs: top,
			MissingDays: missing,
			Series:      renderTLDShares(series, top),
		}, nil
	case "4":
		plotted := make([]asnLabel, 0, len(core.Fig4Providers()))
		for _, p := range core.Fig4Providers() {
			plotted = append(plotted, asnLabel{ASN: p.ASN, Name: p.Name})
		}
		return asnShareDoc{
			Figure: 4, Title: "Hosting ASN shares (2022 dense window)",
			Generation: gen, Plotted: plotted,
			MissingDays: missingIn(missing, simtime.Date(2022, 2, 1)),
			Series:      renderASNShares(src.Fig4()),
		}, nil
	case "5":
		return compositionDoc{
			Figure: 5, Title: "Sanctioned-domain NS composition (2022 dense window)",
			Generation:  gen,
			MissingDays: missingIn(missing, simtime.Date(2022, 2, 1)),
			Series:      renderComposition(src.Fig5()),
		}, nil
	case "reachability":
		return reachabilityDoc{
			Endpoint: "reachability", Title: "Name-server reachability under routing scenario",
			Scenario: scenario, Generation: gen,
			MissingDays: missing,
			Series:      renderReachability(src.Reachability()),
		}, nil
	case "latency":
		return routeLatencyDoc{
			Endpoint: "latency", Title: "Simulated resolution latency (best NS path)",
			Scenario: scenario, Generation: gen,
			MissingDays: missing,
			Series:      renderRouteLatency(src.RouteLatency()),
		}, nil
	}
	return nil, fmt.Errorf("serve: no series figure %q", n)
}

// docHosting builds the /api/v1/hosting document.
func docHosting(gen uint64, missing []simtime.Day, src seriesSource) any {
	return compositionDoc{
		Endpoint: "hosting", Title: "Hosting composition (§3.1)",
		Generation: gen, MissingDays: missing,
		Series: renderComposition(src.Hosting()),
	}
}
