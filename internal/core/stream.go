package core

import (
	"fmt"

	"whereru/internal/openintel"
	"whereru/internal/simtime"
	"whereru/internal/store"
	"whereru/internal/stream"
)

// This file wires the incremental engine (internal/stream) to a Study:
// building an engine with the exact analysis context the batch figure
// methods use, priming it from a journal replay, and applying follow-mode
// journal segments to the study's store/stats — the same mutation
// sequence ReplayJournal performs, one segment at a time.

// NewStreamEngine returns an incremental engine bound to the study's
// analyzer, sanctioned-domain filter and dense-window cutoff — the same
// inputs Fig1..Fig5/Hosting/Mail/Reachability/RouteLatency consult, so a
// fully-folded engine reproduces those methods byte for byte.
func (s *Study) NewStreamEngine() *stream.Engine {
	return stream.New(stream.Config{
		Analyzer:    s.Analyzer,
		Sanctioned:  s.sanctionedFilter(),
		DenseCutoff: simtime.Date(2022, 2, 1),
	})
}

// FoldReplay folds every record of a journal replay into eng, in order:
// the cold prime of a followed study.
func FoldReplay(eng *stream.Engine, replay *store.JournalReplay) error {
	for _, rec := range replay.Sweeps {
		if _, err := eng.Fold(rec); err != nil {
			return err
		}
	}
	return nil
}

// LoadCheckpointReplay is LoadCheckpoint, additionally returning the
// replay itself so follow mode knows the journal offset to tail from and
// can prime an engine with the same records the store loaded.
func LoadCheckpointReplay(opts Options, path string) (*Study, *store.JournalReplay, error) {
	s, err := New(opts)
	if err != nil {
		return nil, nil, err
	}
	replay, err := store.VerifyJournal(path)
	if err != nil {
		return nil, nil, fmt.Errorf("core: loading checkpoint: %w", err)
	}
	if replay.Torn() {
		s.Opts.Progress("warning: checkpoint has a torn tail (%d bytes ignored)", replay.TornBytes)
	}
	pipe := &openintel.Pipeline{Store: s.Store}
	s.Stats = pipe.ReplayJournal(replay)
	s.Sweeps = s.Store.Sweeps()
	s.Opts.Progress("loaded %d journaled sweeps from %s", len(replay.Sweeps), path)
	return s, replay, nil
}

// ApplySweep applies one follow-mode journal segment to the study: the
// store mutation ReplayJournal performs for the record, plus the
// Sweeps/Stats bookkeeping Collect performs for a live sweep. Performing
// the identical mutation sequence is what keeps a followed study's store
// generation equal to a cold full-replay — and therefore its rendered
// documents byte-identical.
func (s *Study) ApplySweep(rec store.JournalSweep) {
	if rec.Missing {
		s.Store.MarkMissingSweep(rec.Day)
		return
	}
	s.Store.BeginSweep(rec.Day)
	for _, m := range rec.Measurements {
		s.Store.Add(m)
	}
	s.Sweeps = append(s.Sweeps, rec.Day)
	s.Stats = append(s.Stats, openintel.SweepStats{
		Day:         rec.Day,
		Domains:     rec.Stats.Domains,
		Failed:      rec.Stats.Failed,
		NXDomain:    rec.Stats.NXDomain,
		Retries:     rec.Stats.Retries,
		Recovered:   rec.Stats.Recovered,
		Unreachable: rec.Stats.Unreachable,
	})
}
