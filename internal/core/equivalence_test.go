package core

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// collectArtifacts runs a full checkpointed study with opts and returns
// its three byte-level artifacts: the serialized store, the rendered
// report, and the raw sweep journal.
func collectArtifacts(t *testing.T, opts Options) (storeB, reportB, journalB []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sweeps.wrjl")
	opts.CheckpointPath = path
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	var report bytes.Buffer
	if err := s.RenderAll(&report); err != nil {
		t.Fatal(err)
	}
	journalB, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return storeBytes(t, s), report.Bytes(), journalB
}

// TestFastPathEquivalence is the oracle pinning the resolver fast path:
// a full multi-day study through the preserved reference stack
// (reference wire codec on every in-memory exchange, no cache-miss
// coalescing) must be byte-identical to the same study through the fast
// path (pooled wire buffers, zero-copy decode, singleflight misses) —
// for the store, the rendered report, and (where comparable, see below)
// the sweep journal. Clean and fault-injected worlds, workers 1/3/8.
//
// The journal rows carry per-sweep Retries/Recovered totals. Under
// injected loss with concurrent workers those totals depend on how the
// scheduler interleaved queries against the fault stream — in both
// stacks equally — so journal bytes are only compared where they are
// deterministic: every clean run, and lossy runs with one worker. The
// measured answers (store) and everything derived from them (report)
// are compared unconditionally; that caching and codec changes cannot
// alter them is the determinism contract under test.
func TestFastPathEquivalence(t *testing.T) {
	for _, lossy := range []bool{false, true} {
		for _, workers := range []int{1, 3, 8} {
			name := fmt.Sprintf("workers_%d", workers)
			if lossy {
				name = "lossy_" + name
			} else {
				name = "clean_" + name
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				opts := shortOpts()
				opts.Workers = workers
				if lossy {
					opts.Loss = 0.15
					opts.FaultSeed = 7
				}
				refOpts := opts
				refOpts.ReferenceResolver = true

				fastStore, fastReport, fastJournal := collectArtifacts(t, opts)
				refStore, refReport, refJournal := collectArtifacts(t, refOpts)

				if !bytes.Equal(fastStore, refStore) {
					t.Errorf("store bytes differ between fast path and reference resolver")
				}
				if !bytes.Equal(fastReport, refReport) {
					t.Errorf("rendered report differs between fast path and reference resolver")
				}
				if !lossy || workers == 1 {
					if !bytes.Equal(fastJournal, refJournal) {
						t.Errorf("sweep journal differs between fast path and reference resolver")
					}
				}
			})
		}
	}
}
