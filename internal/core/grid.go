package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"whereru/internal/grid"
	"whereru/internal/netsim"
	"whereru/internal/openintel"
	"whereru/internal/store"
	"whereru/internal/world"
)

// GridFingerprint hashes every option that shapes measurement content.
// A coordinator only accepts workers with an equal fingerprint: a worker
// built from a different world seed, scale, or fault configuration would
// return units from a different simulated Internet, and merging them
// would silently corrupt the study.
func GridFingerprint(opts Options) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(2) // fingerprint schema version
	put(uint64(opts.World.Seed))
	put(uint64(opts.World.Scale))
	put(math.Float64bits(opts.World.RFShare))
	put(math.Float64bits(opts.World.GeoNoise))
	put(math.Float64bits(opts.Loss))
	put(uint64(opts.FaultSeed))
	if opts.CollectMX {
		put(1)
	} else {
		put(0)
	}
	if opts.SimulateOutage {
		put(1)
	} else {
		put(0)
	}
	// Scenario selects route events that reshape every measurement; a
	// worker running a different scenario lives on a different Internet.
	put(uint64(len(opts.Scenario)))
	h.Write([]byte(opts.Scenario))
	return h.Sum64()
}

// startGrid brings up the sweep coordinator and any in-process workers
// for Collect. The returned shutdown func closes the coordinator and
// waits for the workers to drain; Collect defers it so the grid comes
// down even when the run aborts mid-schedule.
func (s *Study) startGrid(ctx context.Context, pipe *openintel.Pipeline) (func(), error) {
	coord := grid.NewCoordinator(pipe)
	if s.Opts.GridShard > 0 {
		coord.ShardSize = s.Opts.GridShard
	}
	if s.Opts.GridLeaseTTL > 0 {
		coord.LeaseTTL = s.Opts.GridLeaseTTL
	}
	coord.Fingerprint = GridFingerprint(s.Opts)
	coord.Logf = s.Opts.Progress
	listen := s.Opts.GridListen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	addr, err := coord.Listen(listen)
	if err != nil {
		return nil, fmt.Errorf("core: starting grid: %w", err)
	}
	s.Grid = coord
	s.Opts.Progress("grid: coordinating sweeps on %s (%d in-process workers)", addr, s.Opts.GridWorkers)
	if s.Opts.OnGridListen != nil {
		s.Opts.OnGridListen(addr)
	}

	// In-process workers get their own context: the coordinator's done
	// message is the normal exit; the cancel is the backstop for workers
	// stuck dialing or measuring when the grid is torn down.
	wctx, stopWorkers := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < s.Opts.GridWorkers; i++ {
		wg.Add(1)
		name := fmt.Sprintf("worker-%d", i+1)
		go func() {
			defer wg.Done()
			if err := RunGridWorker(wctx, s.Opts, addr, name); err != nil && wctx.Err() == nil {
				s.Opts.Progress("grid: %s: %v", name, err)
			}
		}()
	}
	shutdown := func() {
		coord.Close()
		stopWorkers()
		wg.Wait()
	}
	if min := s.Opts.GridMinWorkers; min > 0 {
		if err := coord.WaitWorkers(ctx, min); err != nil {
			shutdown()
			return nil, err
		}
	}
	return shutdown, nil
}

// RunGridWorker builds a private copy of the measurement world for opts
// and serves grid work units from the coordinator at addr until told to
// drain. This is the body of `whereru -grid-worker`; it is also what
// Collect spawns in-process for Options.GridWorkers. The worker's store
// and journal options are ignored — workers measure, the coordinator
// commits.
func RunGridWorker(ctx context.Context, opts Options, addr, name string) error {
	if opts.Workers <= 0 {
		opts.Workers = 8
	}
	if opts.Progress == nil {
		opts.Progress = func(string, ...any) {}
	}
	if err := opts.World.Validate(); err != nil {
		return err
	}
	w, err := world.Build(opts.World)
	if err != nil {
		return fmt.Errorf("core: grid worker %s: building world: %w", name, err)
	}
	if opts.Scenario != "" {
		// The worker's private topology must carry the same route events
		// as the coordinator's, or unit results would diverge.
		if err := w.ApplyScenario(opts.Scenario, nil); err != nil {
			return fmt.Errorf("core: grid worker %s: %w", name, err)
		}
	}
	pipe := &openintel.Pipeline{
		Resolver:  measurementResolver(opts, w, netsim.NewOutageSchedule()),
		Seeds:     w.Registries,
		Clock:     w.Clock(),
		Store:     store.New(), // scratch: MeasureUnit never touches it
		Workers:   opts.Workers,
		CollectMX: opts.CollectMX,
	}
	if opts.Scenario != "" {
		pipe.Routes = w.RouteView()
	}
	worker := &grid.Worker{
		Pipeline:    pipe,
		Name:        name,
		Fingerprint: GridFingerprint(opts),
		Logf:        opts.Progress,
	}
	if opts.GridLeaseTTL > 0 {
		// Three beats per TTL, matching the coordinator's expectations.
		worker.HeartbeatEvery = opts.GridLeaseTTL / 3
	}
	return worker.Run(ctx, addr)
}
