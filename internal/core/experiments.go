package core

import (
	"fmt"
	"io"

	"whereru/internal/analysis"
	"whereru/internal/netsim"
	"whereru/internal/pki"
	"whereru/internal/report"
	"whereru/internal/simtime"
	"whereru/internal/world"
)

// Comparison is one paper-vs-measured line of the experiment index.
type Comparison struct {
	Experiment string
	Metric     string
	Paper      string
	Measured   string
}

// sanctionedFilter selects the sanctioned domains.
func (s *Study) sanctionedFilter() analysis.Filter {
	sanc := s.World.Sanctions
	return func(domain string) bool { return sanc.ContainsEver(domain) }
}

// keyDays returns the standard day axis for longitudinal series: every
// collected sweep plus every scheduled-but-missed day, so collection
// gaps appear as explicit carry-forward points (flagged Interpolated by
// the engine) instead of silently vanishing from the axis.
func (s *Study) keyDays() []simtime.Day {
	return mergeDays(s.Sweeps, s.Store.MissingSweeps())
}

// mergeDays merges two sorted day lists, dropping duplicates.
func mergeDays(a, b []simtime.Day) []simtime.Day {
	if len(b) == 0 {
		return a
	}
	out := make([]simtime.Day, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default: // equal
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	return out
}

// Fig1 computes the Figure 1 series (NS-infrastructure composition).
func (s *Study) Fig1() []analysis.Point {
	return s.Analyzer.NSCompositionSeries(s.keyDays(), nil)
}

// Fig2 computes the Figure 2 series (TLD-dependency composition).
func (s *Study) Fig2() []analysis.Point {
	return s.Analyzer.TLDDependencySeries(s.keyDays(), nil)
}

// Fig3 computes the Figure 3 series (per-TLD shares).
func (s *Study) Fig3() []analysis.TLDSharePoint {
	return s.Analyzer.TLDShareSeries(s.keyDays(), nil)
}

// ProviderSpec names one of the hosting networks Figure 4 plots.
type ProviderSpec struct {
	ASN  netsim.ASN
	Name string
}

// Fig4Providers returns the networks Figure 4 plots, in plot order. The
// text chart and the serve layer's JSON share this list, so the two
// renderings of the figure label the same series.
func Fig4Providers() []ProviderSpec {
	return append([]ProviderSpec(nil), fig4ASNs...)
}

// fig4ASNs is the set of networks Figure 4 plots.
var fig4ASNs = []ProviderSpec{
	{16509, "Amazon (US)"},
	{47846, "Sedo (DE)"},
	{13335, "Cloudflare (US)"},
	{197695, "REG.RU"},
	{48287, "RU-CENTER"},
	{9123, "Timeweb (RU)"},
	{198610, "Beget (RU)"},
	{29802, "Serverel (NL)"},
}

// Fig4 computes the Figure 4 series (hosting ASN shares) over the 2022
// dense window.
func (s *Study) Fig4() []analysis.ASNSharePoint {
	var days []simtime.Day
	for _, d := range s.keyDays() {
		if d >= simtime.Date(2022, 2, 1) {
			days = append(days, d)
		}
	}
	return s.Analyzer.ASNShareSeries(days, nil)
}

// Fig5 computes the Figure 5 series (sanctioned-domain NS composition)
// over the 2022 dense window.
func (s *Study) Fig5() []analysis.Point {
	var days []simtime.Day
	for _, d := range s.keyDays() {
		if d >= simtime.Date(2022, 2, 1) {
			days = append(days, d)
		}
	}
	return s.Analyzer.NSCompositionSeries(days, s.sanctionedFilter())
}

// Reachability computes the scenario reachability series (per-day
// name-server reachability under the AS-level route tables) over the
// standard day axis. Without an active scenario every measured domain is
// reachable.
func (s *Study) Reachability() []analysis.ReachPoint {
	return s.Analyzer.ReachabilitySeries(s.keyDays(), nil)
}

// RouteLatency computes the simulated resolution-latency series under
// the AS-level route tables over the standard day axis.
func (s *Study) RouteLatency() []analysis.RouteLatencyPoint {
	return s.Analyzer.RouteLatencySeries(s.keyDays(), nil)
}

// Movement runs the §3.4 movement analysis for one provider ASN.
func (s *Study) Movement(asn netsim.ASN, from simtime.Day) analysis.Movement {
	return s.Analyzer.MovementAnalysis(asn, from, simtime.StudyEnd, s.World.Registries)
}

// Table1 computes the per-period issuance breakdown.
func (s *Study) Table1() []analysis.PeriodIssuance {
	return analysis.IssuanceByPeriod(s.World.CTLog)
}

// Fig8 computes the top-10 CA issuance timelines.
func (s *Study) Fig8() []analysis.Timeline {
	return analysis.IssuanceTimelines(s.World.CTLog, 10)
}

// Table2 computes the revocation statistics (top-5 revokers).
func (s *Study) Table2() []analysis.RevocationRow {
	return analysis.RevocationStats(s.World.CTLog, s.World.Certs, s.World.Sanctions, 5)
}

// RussianCA computes the §4.3 report.
func (s *Study) RussianCA() analysis.RussianCAReport {
	return analysis.RussianCAImpact(s.Archive, s.World.Sanctions)
}

// Hosting computes the §3.1 hosting-composition series.
func (s *Study) Hosting() []analysis.Point {
	return s.Analyzer.HostingCompositionSeries(s.keyDays(), nil)
}

// Mail computes the mail-operator share series (extension; requires
// CollectMX).
func (s *Study) Mail() []analysis.MailSharePoint {
	return s.Analyzer.MailProviderSeries(s.keyDays(), nil)
}

// Concentration computes HHI series for the hosting and CA markets, plus
// mail when collected (extension).
func (s *Study) Concentration() (hosting, ca, mail []analysis.ConcentrationPoint) {
	ends := []simtime.Day{simtime.StudyStart, simtime.ConflictStart.Add(-1), simtime.StudyEnd}
	hosting = s.Analyzer.HostingConcentration(ends, nil)
	ca = analysis.CAConcentration(s.World.CTLog)
	if s.Opts.CollectMX {
		mail = s.Analyzer.MailConcentration(ends, nil)
	}
	return hosting, ca, mail
}

func compositionChart(title string, series []analysis.Point) *report.Chart {
	full := report.Series{Name: "Full Russian", Mark: 'F', Points: map[simtime.Day]float64{}}
	part := report.Series{Name: "Part Russian", Mark: 'P', Points: map[simtime.Day]float64{}}
	non := report.Series{Name: "Non Russian", Mark: 'N', Points: map[simtime.Day]float64{}}
	days := make([]simtime.Day, 0, len(series))
	var gaps []simtime.Day
	for _, p := range series {
		days = append(days, p.Day)
		if p.Interpolated {
			gaps = append(gaps, p.Day)
		}
		full.Points[p.Day] = p.FullPct()
		part.Points[p.Day] = p.PartPct()
		non.Points[p.Day] = p.NonPct()
	}
	return &report.Chart{
		Title: title, YLabel: "% of domains", YMax: 100,
		Days: days, Series: []report.Series{full, part, non}, Gaps: gaps,
	}
}

// ErrNoSweeps is returned by the figure-and-table entry points when the
// study's store holds no sweeps: nothing was collected, loaded or
// resumed, so there is no series to index into.
var ErrNoSweeps = fmt.Errorf("core: study has no sweeps (run Collect, or load a store or checkpoint first)")

func firstLast[T any](s []T) (first, last T) {
	if len(s) == 0 {
		return
	}
	return s[0], s[len(s)-1]
}

// at returns the series point measured at (or carried into) day.
func at(series []analysis.Point, day simtime.Day) analysis.Point {
	var best analysis.Point
	for i, p := range series {
		if i == 0 || p.Day <= day {
			best = p
		}
	}
	return best
}

func atASN(series []analysis.ASNSharePoint, day simtime.Day) analysis.ASNSharePoint {
	var best analysis.ASNSharePoint
	for i, p := range series {
		if i == 0 || p.Day <= day {
			best = p
		}
	}
	return best
}

// Comparisons computes the paper-vs-measured experiment index across all
// figures and tables. It fails with ErrNoSweeps when the store is empty.
func (s *Study) Comparisons() ([]Comparison, error) {
	if len(s.keyDays()) == 0 {
		return nil, ErrNoSweeps
	}
	var out []Comparison
	add := func(exp, metric, paper string, measured string) {
		out = append(out, Comparison{Experiment: exp, Metric: metric, Paper: paper, Measured: measured})
	}
	pctf := func(v float64) string { return fmt.Sprintf("%.1f%%", v) }

	// §3.1 hosting.
	hosting := s.Hosting()
	hStart, hEnd := firstLast(hosting)
	add("§3.1 hosting", "fully RU-hosted 2017-06-18", "71.0%", pctf(hStart.FullPct()))
	add("§3.1 hosting", "partially RU-hosted 2017-06-18", "0.19%", fmt.Sprintf("%.2f%%", hStart.PartPct()))
	add("§3.1 hosting", "non RU-hosted 2017-06-18", "28.81%", pctf(hStart.NonPct()))
	add("§3.1 hosting", "fully RU-hosted 2022-05-25", "modest increase", pctf(hEnd.FullPct()))

	// Figure 1.
	fig1 := s.Fig1()
	f1Start, f1End := firstLast(fig1)
	add("Fig 1", "fully RU NS 2017-06-18", "67.0%", pctf(f1Start.FullPct()))
	add("Fig 1", "fully RU NS 2022-05-25", "73.9%", pctf(f1End.FullPct()))
	add("Fig 1", "net change", "+6.9 pts", fmt.Sprintf("%+.1f pts", f1End.FullPct()-f1Start.FullPct()))
	preNetnod := at(fig1, world.NetnodCutoffDay.Add(-1))
	postNetnod := at(fig1, world.NetnodCutoffDay)
	add("Fig 1 / §3.2", "Netnod cutoff partial→full step (2022-03-03)", "76k domains",
		fmt.Sprintf("%.1f pts of partial dropped", preNetnod.PartPct()-postNetnod.PartPct()))

	// Figure 2.
	fig2 := s.Fig2()
	f2Start, f2End := firstLast(fig2)
	add("Fig 2", "fully-RU TLD dependency net change", "-6.3 pts", fmt.Sprintf("%+.1f pts", f2End.FullPct()-f2Start.FullPct()))
	add("Fig 2", "partial TLD dependency net change", "+7.9 pts", fmt.Sprintf("%+.1f pts", f2End.PartPct()-f2Start.PartPct()))

	// Figure 3.
	fig3 := s.Fig3()
	f3Start, f3End := firstLast(fig3)
	add("Fig 3", ".ru share 2022-05-25", "78.3%", pctf(f3End.Share("ru")))
	add("Fig 3", ".com share 2022-05-25 (5y change)", "24.7% (+7.5)",
		fmt.Sprintf("%.1f%% (%+.1f)", f3End.Share("com"), f3End.Share("com")-f3Start.Share("com")))
	add("Fig 3", ".pro share 2022-05-25 (5y change)", "12.4% (+3.6)",
		fmt.Sprintf("%.1f%% (%+.1f)", f3End.Share("pro"), f3End.Share("pro")-f3Start.Share("pro")))
	add("Fig 3", ".org share 2022-05-25 (5y change)", "9.2% (+1.0)",
		fmt.Sprintf("%.1f%% (%+.1f)", f3End.Share("org"), f3End.Share("org")-f3Start.Share("org")))
	add("Fig 3", ".net share 2022-05-25 (5y change)", "7.3% (-1.8)",
		fmt.Sprintf("%.1f%% (%+.1f)", f3End.Share("net"), f3End.Share("net")-f3Start.Share("net")))
	add("Fig 3", "rank order on 2022-05-25", "ru > com > pro > org > net",
		fmt.Sprintf("%v", analysis.TopTLDs(fig3, 5)))

	// Figure 4. The 2022 dense window can be empty when a short study
	// window ends before it; skip the rows rather than index into nothing.
	if fig4 := s.Fig4(); len(fig4) > 0 {
		preConflict := atASN(fig4, simtime.ConflictStart.Add(-1))
		f4End := fig4[len(fig4)-1]
		big4 := func(p analysis.ASNSharePoint) float64 {
			return p.Share(197695) + p.Share(48287) + p.Share(9123) + p.Share(198610)
		}
		add("Fig 4", "RU big-four share (start→end of 2022 window)", "38% → 39%",
			fmt.Sprintf("%.1f%% → %.1f%%", big4(preConflict), big4(f4End)))
		add("Fig 4", "Cloudflare share (stable)", "≈7%",
			fmt.Sprintf("%.1f%% → %.1f%%", preConflict.Share(13335), f4End.Share(13335)))
		add("Fig 4", "Sedo share Mar 8 → May 25", "3.1% → ≈0.05%",
			fmt.Sprintf("%.2f%% → %.2f%%", atASN(fig4, world.AmazonStmtDay).Share(47846), f4End.Share(47846)))
	}

	// Figure 5 / §3.3.
	fig5 := s.Fig5()
	feb24 := at(fig5, simtime.ConflictStart)
	mar4 := at(fig5, world.SanctionedNSMoved)
	add("Fig 5 / §3.3", "sanctioned partial NS on Feb 24", "34.0%", pctf(feb24.PartPct()))
	add("Fig 5 / §3.3", "sanctioned non-RU NS on Feb 24", "5.2%", pctf(feb24.NonPct()))
	add("Fig 5 / §3.3", "sanctioned fully-RU NS by Mar 4", "93.8%", pctf(mar4.FullPct()))
	sancHosting := s.Analyzer.HostingCompositionSeries([]simtime.Day{simtime.ConflictStart.Add(-7), simtime.StudyEnd}, s.sanctionedFilter())
	add("§3.3", "sanctioned fully RU-hosted pre-conflict", "101 of 107", fmt.Sprintf("%d of %d", sancHosting[0].Full, sancHosting[0].Total))
	add("§3.3", "sanctioned fully RU-hosted by May 25", "104 of 107", fmt.Sprintf("%d of %d", sancHosting[1].Full, sancHosting[1].Total))

	// Figures 6-7 and §3.4.
	scale := s.Scale()
	am := s.Movement(16509, world.AmazonStmtDay)
	add("Fig 6", "Amazon set on 2022-03-08", "≈58k", report.Count(am.Original, scale))
	add("Fig 6", "remained in AS16509 by May 25", "43%", pctf(am.RemainedPct()))
	add("Fig 6", "incoming (new-reg + relocated-in)", "574 + 988", fmt.Sprintf("%d + %d (scaled)", am.NewlyRegistered, am.RelocatedIn))
	sd := s.Movement(47846, world.SedoStmtDay.Add(-1))
	add("Fig 7", "Sedo set on 2022-03-08", "164k", report.Count(sd.Original, scale))
	add("Fig 7", "relocated out of AS47846", "98%", pctf(sd.RelocatedPct()))
	add("Fig 7", "remained", "1.6%", pctf(sd.RemainedPct()))
	if dests := sd.TopDestinations(1); len(dests) > 0 {
		name := fmt.Sprintf("AS%d", dests[0])
		if p, ok := s.World.ProviderByASN(dests[0]); ok {
			name = fmt.Sprintf("%s (AS%d)", p.Org, dests[0])
		}
		add("Fig 7", "top destination", "Serverel (NL)", name)
	}
	cf := s.Movement(13335, world.CloudflareStmtDay)
	add("§3.4 Cloudflare", "remained in AS13335", "94%", pctf(cf.RemainedPct()))
	add("§3.4 Cloudflare", "newly appeared", "34k", report.Count(cf.NewlyRegistered+cf.RelocatedIn, scale))
	gg := s.Movement(15169, world.GoogleStmtDay)
	add("§3.4 Google", "relocated out of AS15169", "57.1%", pctf(gg.RelocatedPct()))
	if gg.RelocatedOut > 0 {
		intra := 100 * float64(gg.OutDestinations[396982]) / float64(gg.RelocatedOut)
		add("§3.4 Google", "of which to AS396982 (intra-Google)", "75.2%", pctf(intra))
	}

	// Table 1 / §4.
	t1 := s.Table1()
	if len(t1) == 3 {
		add("Tab 1", "Let's Encrypt share pre-conflict", "91.58%", pctf(t1[0].Share(pki.LetsEncrypt)))
		add("Tab 1", "Let's Encrypt share pre-sanctions", "98.06%", pctf(t1[1].Share(pki.LetsEncrypt)))
		add("Tab 1", "Let's Encrypt share post-sanctions", "99.23%", pctf(t1[2].Share(pki.LetsEncrypt)))
		add("§4", "certs/day pre-conflict", "≈130k", fmt.Sprintf("≈%.0fk (paper scale)", t1[0].PerDay()*float64(scale)/1000))
		add("§4", "certs/day post-sanctions", "≈115k", fmt.Sprintf("≈%.0fk (paper scale)", t1[2].PerDay()*float64(scale)/1000))
		add("Tab 1", "post-sanctions top-3", "Let's Encrypt, GlobalSign, Google", topOrgs(t1[2], 3))
	}

	// Figure 8.
	timelines := s.Fig8()
	stopped := 0
	lateWindow := simtime.Date(2022, 4, 15)
	for _, tl := range timelines {
		late := 0
		for d := range tl.ActiveDays {
			if d >= lateWindow {
				late++
			}
		}
		if late <= 2 {
			stopped++
		}
	}
	add("Fig 8", "top-10 CAs that stopped issuing", "6 of 10", fmt.Sprintf("%d of %d", stopped, len(timelines)))

	// Table 2.
	for _, row := range s.Table2() {
		switch row.Org {
		case pki.DigiCert:
			add("Tab 2", "DigiCert sanctioned revocation rate", "100%", pctf(row.SancRevokedPct()))
		case pki.Sectigo:
			add("Tab 2", "Sectigo sanctioned revocation rate", "100%", pctf(row.SancRevokedPct()))
		case pki.LetsEncrypt:
			add("Tab 2", "Let's Encrypt revocation rate (overall / sanctioned)", "0.06% / 1.19%",
				fmt.Sprintf("%.2f%% / %.2f%%", row.RevokedPct(), row.SancRevokedPct()))
		}
	}

	// §4.3.
	rca := s.RussianCA()
	add("§4.3", "unique Russian Trusted Root CA certs in scans", "170", fmt.Sprintf("%d", rca.UniqueCerts))
	add("§4.3", "distinct .ru / .рф domains secured", "130 / 2", fmt.Sprintf("%d / %d", rca.RuDomains, rca.RFDomains))
	add("§4.3", "certs securing sanctioned domains", "36 (34% of list)",
		fmt.Sprintf("%d (%.0f%% of list)", rca.SanctionedCerts, 100*float64(rca.SanctionedDomains)/107))
	add("§4.3", "Russian CA certs in CT logs", "0 (does not log)", fmt.Sprintf("%d", len(s.World.CTLog.Scan(0, s.World.CTLog.Size(), func(c *pki.Certificate) bool {
		return c.RootOrg == pki.RussianTrustedRootCA
	}))))
	return out, nil
}

func topOrgs(p analysis.PeriodIssuance, k int) string {
	names := make([]string, 0, k)
	for i := 0; i < k && i < len(p.Issuers); i++ {
		names = append(names, p.Issuers[i].Org)
	}
	return fmt.Sprintf("%v", names)
}

// RenderAll writes every figure and table, with charts, to w. It fails
// with ErrNoSweeps when the store is empty.
func (s *Study) RenderAll(w io.Writer) error {
	if len(s.keyDays()) == 0 {
		return ErrNoSweeps
	}
	scale := s.Scale()
	fmt.Fprintf(w, "Where .ru? — reproduction report (scale 1:%d, %d domains, %d sweeps)\n\n",
		scale, s.World.NumDomains(), len(s.Sweeps))

	if _, err := compositionChart("Figure 1: NS-infrastructure country composition (.ru/.рф)", s.Fig1()).WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if _, err := compositionChart("Figure 2: TLD-dependency composition of delegations", s.Fig2()).WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	// Figure 3 chart: top-5 TLD shares.
	fig3 := s.Fig3()
	marks := []byte{'r', 'c', 'p', 'o', 'n'}
	var f3Series []report.Series
	for i, tld := range analysis.TopTLDs(fig3, 5) {
		ser := report.Series{Name: "." + tld, Mark: marks[i%len(marks)], Points: map[simtime.Day]float64{}}
		for _, pt := range fig3 {
			ser.Points[pt.Day] = pt.Share(tld)
		}
		f3Series = append(f3Series, ser)
	}
	f3Chart := &report.Chart{Title: "Figure 3: top-5 TLDs of authoritative name servers", YLabel: "% of domains", YMax: 100, Days: s.keyDays(), Series: f3Series, Gaps: s.Store.MissingSweeps()}
	if _, err := f3Chart.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	// Figure 4 chart.
	fig4 := s.Fig4()
	var f4Days []simtime.Day
	for _, p := range fig4 {
		f4Days = append(f4Days, p.Day)
	}
	var f4Series []report.Series
	f4Marks := []byte{'A', 'S', 'C', 'R', 'N', 'T', 'B', 'V'}
	for i, spec := range fig4ASNs {
		ser := report.Series{Name: spec.Name, Mark: f4Marks[i], Points: map[simtime.Day]float64{}}
		for _, pt := range fig4 {
			ser.Points[pt.Day] = pt.Share(spec.ASN)
		}
		f4Series = append(f4Series, ser)
	}
	f4Chart := &report.Chart{Title: "Figure 4: hosting networks of .ru/.рф domains (top ASNs, 2022)", YLabel: "% of domains", YMax: 20, Days: f4Days, Series: f4Series, Gaps: s.Store.MissingSweeps()}
	if _, err := f4Chart.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	if _, err := compositionChart("Figure 5: sanctioned-domain NS composition (2022)", s.Fig5()).WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	// Scenario figures: reachability and simulated resolution latency
	// under the AS-level route tables. Rendered only when a routing
	// scenario is active, so scenario-less reports keep their exact
	// historical bytes.
	if s.Analyzer.Routes != nil {
		if err := s.renderScenario(w); err != nil {
			return err
		}
	}

	// Figures 6-7 + §3.4 movement tables.
	moveTable := &report.Table{
		Title:   "Figures 6-7 / §3.4: domain movement by provider (baseline day → 2022-05-25)",
		Headers: []string{"provider", "baseline", "original", "remained", "relocated", "gone", "new-reg in", "moved in", "top dest"},
	}
	for _, spec := range []struct {
		name string
		asn  netsim.ASN
		from simtime.Day
	}{
		{"Amazon AS16509", 16509, world.AmazonStmtDay},
		{"Sedo AS47846", 47846, world.SedoStmtDay.Add(-1)},
		{"Cloudflare AS13335", 13335, world.CloudflareStmtDay},
		{"Google AS15169", 15169, world.GoogleStmtDay},
	} {
		m := s.Movement(spec.asn, spec.from)
		dest := "-"
		if d := m.TopDestinations(1); len(d) > 0 {
			dest = fmt.Sprintf("AS%d", d[0])
			if p, ok := s.World.ProviderByASN(d[0]); ok {
				dest = fmt.Sprintf("%s AS%d", p.Org, d[0])
			}
		}
		moveTable.AddRow(spec.name, spec.from.String(), fmt.Sprint(m.Original),
			fmt.Sprintf("%d (%.1f%%)", m.Remained, m.RemainedPct()),
			fmt.Sprintf("%d (%.1f%%)", m.RelocatedOut, m.RelocatedPct()),
			fmt.Sprint(m.Gone), fmt.Sprint(m.NewlyRegistered), fmt.Sprint(m.RelocatedIn), dest)
	}
	if _, err := moveTable.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	// Figures 6 and 7 as flow diagrams.
	for _, spec := range []struct {
		title string
		asn   netsim.ASN
		from  simtime.Day
	}{
		{"Figure 6: movement of Russian domains in Amazon's AS16509", 16509, world.AmazonStmtDay},
		{"Figure 7: movement of Russian domains in Sedo's AS47846", 47846, world.SedoStmtDay.Add(-1)},
	} {
		m := s.Movement(spec.asn, spec.from)
		flow := &report.Flows{
			Title:  spec.title,
			Source: fmt.Sprintf("AS%d on %s", spec.asn, spec.from),
			Total:  m.Original,
		}
		flow.Add("remained", m.Remained)
		for _, dest := range m.TopDestinations(4) {
			name := fmt.Sprintf("AS%d", dest)
			if p, ok := s.World.ProviderByASN(dest); ok {
				name = fmt.Sprintf("%s AS%d", p.Org, dest)
			}
			flow.Add(name, m.OutDestinations[dest])
		}
		if m.Gone > 0 {
			flow.Add("left the zone", m.Gone)
		}
		if _, err := flow.WriteTo(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	// Table 1.
	t1 := &report.Table{
		Title:   "Table 1: issuing activity of CAs per period (counts at simulation scale)",
		Headers: []string{"period", "days", "total", "certs/day (paper scale)", "top issuers"},
	}
	for _, p := range s.Table1() {
		top := ""
		for i, ic := range p.Issuers {
			if i >= 3 {
				break
			}
			if i > 0 {
				top += ", "
			}
			top += fmt.Sprintf("%s %.2f%%", ic.Org, p.Share(ic.Org))
		}
		t1.AddRow(p.Period.String(), fmt.Sprint(p.Days), fmt.Sprint(p.Total),
			fmt.Sprintf("%.0f", p.PerDay()*float64(scale)), top)
	}
	if _, err := t1.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	// Figure 8 dot timeline.
	timelines := s.Fig8()
	dot := &report.DotTimeline{
		Title: "Figure 8: CA issuance-activity timelines (Jan 1 – May 15, 2022)",
		From:  simtime.CTWindowStart, To: simtime.CTWindowEnd, Step: 2,
		Marks: map[simtime.Day]byte{simtime.ConflictStart: '|', simtime.SanctionsInEffect: '|'},
	}
	for _, tl := range timelines {
		dot.Rows = append(dot.Rows, report.DotRow{Name: tl.Org, Active: tl.ActiveDays})
	}
	if _, err := dot.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	// Table 2.
	t2 := &report.Table{
		Title:   "Table 2: revocation activity (top-5 revoking CAs)",
		Headers: []string{"issuer", "issued", "revoked", "rate", "sanc issued", "sanc revoked", "sanc rate"},
	}
	for _, r := range s.Table2() {
		t2.AddRow(r.Org, fmt.Sprint(r.Issued), fmt.Sprint(r.Revoked), report.Pct(r.RevokedPct()),
			fmt.Sprint(r.SancIssued), fmt.Sprint(r.SancRevoked), report.Pct(r.SancRevokedPct()))
	}
	if _, err := t2.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	// §4.3.
	rca := s.RussianCA()
	fmt.Fprintf(w, "§4.3 Russian Trusted Root CA (from %d scan days):\n", len(s.Archive.Days()))
	fmt.Fprintf(w, "  unique certificates observed: %d (paper: 170)\n", rca.UniqueCerts)
	fmt.Fprintf(w, "  .ru domains secured: %d (paper: 130); .рф: %d (paper: 2); other TLDs: %d\n", rca.RuDomains, rca.RFDomains, rca.OtherTLDNames)
	fmt.Fprintf(w, "  sanctioned-domain certs: %d covering %d domains (%.0f%% of the list)\n",
		rca.SanctionedCerts, rca.SanctionedDomains, 100*float64(rca.SanctionedDomains)/107)
	fmt.Fprintf(w, "  backdrop certificates from other CAs in the same scans: %d\n\n", rca.BackdropCerts)

	// Extension: relocation latency after provider exits (§6: "virtually
	// all of the impacted sites quickly found new providers").
	lt := &report.Table{
		Title:   "Extension: relocation latency after provider exits (days to first new ASN)",
		Headers: []string{"provider", "event", "relocated", "median", "p90", "still there", "gone"},
	}
	for _, spec := range []struct {
		name  string
		asn   netsim.ASN
		event simtime.Day
	}{
		{"Sedo AS47846", 47846, world.SedoStmtDay.Add(-1)},
		{"Amazon AS16509", 16509, world.AmazonStmtDay},
		{"Google AS15169", 15169, world.GoogleStmtDay},
	} {
		rep := s.Analyzer.RelocationLatency(spec.asn, spec.event, simtime.StudyEnd)
		med, _ := rep.Median()
		p90, _ := rep.Percentile(90)
		lt.AddRow(spec.name, spec.event.String(), fmt.Sprint(rep.Relocated),
			fmt.Sprintf("%d d", med), fmt.Sprintf("%d d", p90),
			fmt.Sprint(rep.StillThere), fmt.Sprint(rep.Gone))
	}
	if _, err := lt.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	// Extension: mail-operator shares + market concentration.
	if s.Opts.CollectMX {
		mail := s.Mail()
		if len(mail) > 0 && mail[len(mail)-1].WithMail > 0 {
			mt := &report.Table{
				Title:   "Extension: mail operators of .ru/.рф domains (Liu et al. methodology)",
				Headers: []string{"mail zone", "share of domains with MX (2022-05-25)"},
			}
			last := mail[len(mail)-1]
			for _, z := range analysis.TopMailZones(mail, 6) {
				mt.AddRow(z, report.Pct(last.Share(z)))
			}
			if _, err := mt.WriteTo(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	}
	hostHHI, caHHI, mailHHI := s.Concentration()
	ct := &report.Table{
		Title:   "Extension: market concentration (HHI; 1.0 = monopoly)",
		Headers: []string{"market", "point", "HHI", "top-1 share", "participants"},
	}
	for _, p := range hostHHI {
		ct.AddRow("hosting (ASNs)", p.Day.String(), fmt.Sprintf("%.3f", p.HHI), report.Pct(p.Top1Share), fmt.Sprint(p.Participants))
	}
	for i, p := range caHHI {
		period := []string{"pre-conflict", "pre-sanctions", "post-sanctions"}[i]
		ct.AddRow("certificates (CAs)", period, fmt.Sprintf("%.3f", p.HHI), report.Pct(p.Top1Share), fmt.Sprint(p.Participants))
	}
	for _, p := range mailHHI {
		ct.AddRow("mail (operators)", p.Day.String(), fmt.Sprintf("%.3f", p.HHI), report.Pct(p.Top1Share), fmt.Sprint(p.Participants))
	}
	if _, err := ct.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	// Paper-vs-measured index.
	idx := &report.Table{
		Title:   "Paper vs measured (experiment index)",
		Headers: []string{"experiment", "metric", "paper", "measured"},
	}
	comps, err := s.Comparisons()
	if err != nil {
		return err
	}
	for _, c := range comps {
		idx.AddRow(c.Experiment, c.Metric, c.Paper, c.Measured)
	}
	_, err = idx.WriteTo(w)
	return err
}

// renderScenario writes the routing-scenario figures: the reachability
// chart, the per-country reachability table at the final day, and the
// simulated resolution-latency chart.
func (s *Study) renderScenario(w io.Writer) error {
	reach := s.Reachability()
	reachSer := report.Series{Name: "reachable", Mark: 'R', Points: map[simtime.Day]float64{}}
	days := make([]simtime.Day, 0, len(reach))
	var gaps []simtime.Day
	for _, p := range reach {
		days = append(days, p.Day)
		if p.Interpolated {
			gaps = append(gaps, p.Day)
		}
		v := 100.0
		if p.Total > 0 {
			v = 100 * float64(p.Reachable) / float64(p.Total)
		}
		reachSer.Points[p.Day] = v
	}
	chart := &report.Chart{
		Title:  fmt.Sprintf("Scenario %q: NS reachability from the measurement vantage", s.Opts.Scenario),
		YLabel: "% of domains", YMax: 100,
		Days: days, Series: []report.Series{reachSer}, Gaps: gaps,
	}
	if _, err := chart.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	if len(reach) > 0 {
		last := reach[len(reach)-1]
		rt := &report.Table{
			Title:   fmt.Sprintf("Scenario reachability by NS country on %s", last.Day),
			Headers: []string{"country", "domains", "reachable", "rate"},
		}
		for _, c := range last.Countries {
			rate := 0.0
			if c.Total > 0 {
				rate = 100 * float64(c.Reachable) / float64(c.Total)
			}
			rt.AddRow(c.Country, fmt.Sprint(c.Total), fmt.Sprint(c.Reachable), report.Pct(rate))
		}
		if _, err := rt.WriteTo(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	lat := s.RouteLatency()
	p50 := report.Series{Name: "p50", Mark: '5', Points: map[simtime.Day]float64{}}
	p99 := report.Series{Name: "p99", Mark: '9', Points: map[simtime.Day]float64{}}
	ymax := 0.0
	for _, p := range lat {
		v50 := float64(p.P50.Microseconds()) / 1000
		v99 := float64(p.P99.Microseconds()) / 1000
		p50.Points[p.Day] = v50
		p99.Points[p.Day] = v99
		if v99 > ymax {
			ymax = v99
		}
	}
	if ymax < 1 {
		ymax = 1
	}
	latChart := &report.Chart{
		Title:  fmt.Sprintf("Scenario %q: simulated resolution latency (best NS path)", s.Opts.Scenario),
		YLabel: "ms", YMax: ymax,
		Days: days, Series: []report.Series{p50, p99}, Gaps: gaps,
	}
	if _, err := latChart.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

// ExperimentsMarkdown writes the EXPERIMENTS.md content: the per-
// experiment paper-vs-measured record for the current run.
func (s *Study) ExperimentsMarkdown(w io.Writer) error {
	fmt.Fprintf(w, "# EXPERIMENTS — paper vs measured\n\n")
	fmt.Fprintf(w, "Generated by `go run ./cmd/whereru -markdown EXPERIMENTS.md` from a deterministic run: seed %d, scale 1:%d\n",
		s.Opts.World.Seed, s.Scale())
	fmt.Fprintf(w, "(%d simulated domains ever registered; absolute counts below are at\n", s.World.NumDomains())
	fmt.Fprintf(w, "simulation scale unless marked otherwise), %d DNS sweeps %s..%s,\n",
		len(s.Sweeps), simtime.StudyStart, simtime.StudyEnd)
	fmt.Fprintf(w, "weekly TLS scans %s..%s.\n\n", world.RussianCAStartDay, simtime.CTWindowEnd)
	fmt.Fprintf(w, "The reproduction targets the paper's *shape* — who wins, directions of\n")
	fmt.Fprintf(w, "change, where steps fall — not its absolute testbed counts; see\n")
	fmt.Fprintf(w, "DESIGN.md §1 for the substitution rationale and deviations.\n\n")

	comps, err := s.Comparisons()
	if err != nil {
		return err
	}
	group := ""
	for _, c := range comps {
		if c.Experiment != group {
			group = c.Experiment
			fmt.Fprintf(w, "\n## %s\n\n", group)
			fmt.Fprintf(w, "| metric | paper | measured |\n|---|---|---|\n")
		}
		fmt.Fprintf(w, "| %s | %s | %s |\n", c.Metric, c.Paper, c.Measured)
	}
	fmt.Fprintf(w, "\n## Known level deviations (shape preserved)\n\n")
	fmt.Fprintf(w, "- Figure 3 levels: the simulated `.com` share runs high (≈31%% vs 24.7%%)\n")
	fmt.Fprintf(w, "  and `.ru`/`.pro` run a few points low; growth directions, growth\n")
	fmt.Fprintf(w, "  magnitudes and the rank order (ru > com > pro > org > net) match.\n")
	fmt.Fprintf(w, "- Figure 2 levels: fully-Russian TLD dependency sits ≈6 points below the\n")
	fmt.Fprintf(w, "  paper's curve; the published net changes (-6.3 full / +7.9 partial) and\n")
	fmt.Fprintf(w, "  the tiny conflict-time step are reproduced.\n")
	fmt.Fprintf(w, "- Table 2 sanctioned issuance counts are scaled (Let's Encrypt's 16k\n")
	fmt.Fprintf(w, "  modeled at 1:10 before world scaling); revocation *rates* — the table's\n")
	fmt.Fprintf(w, "  signal — are preserved, including 100%% for DigiCert and Sectigo.\n")
	fmt.Fprintf(w, "- The 2021-03-22 measurement outage (paper footnote 8) is supported as a\n")
	fmt.Fprintf(w, "  scheduled fault-profile window (`Options.SimulateOutage`, applied to the\n")
	fmt.Fprintf(w, "  registry TLD servers via `dns.FaultTransport`) but not enabled in the\n")
	fmt.Fprintf(w, "  default schedule. Injected packet loss (`Options.Loss`) is likewise\n")
	fmt.Fprintf(w, "  off by default; when enabled, per-sweep retry/recovery counts are\n")
	fmt.Fprintf(w, "  recorded in `SweepStats`.\n")
	return nil
}

// ExportCSV writes the principal longitudinal series as CSV files via
// the create callback: fig1 (NS composition), fig2 (TLD dependency),
// fig3 (TLD shares), fig4 (ASN shares), fig5 (sanctioned composition).
func (s *Study) ExportCSV(create func(name string) (io.WriteCloser, error)) error {
	writeSeries := func(name string, header []string, rows [][]string) error {
		f, err := create(name)
		if err != nil {
			return err
		}
		if err := report.CSV(f, header, rows); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	comp := func(series []analysis.Point) [][]string {
		rows := make([][]string, 0, len(series))
		for _, p := range series {
			interp := "0"
			if p.Interpolated {
				interp = "1"
			}
			rows = append(rows, []string{p.Day.String(),
				fmt.Sprintf("%.4f", p.FullPct()), fmt.Sprintf("%.4f", p.PartPct()),
				fmt.Sprintf("%.4f", p.NonPct()), fmt.Sprint(p.Total), interp})
		}
		return rows
	}
	compHeader := []string{"day", "full_pct", "part_pct", "non_pct", "total", "interpolated"}
	if err := writeSeries("fig1_ns_composition.csv", compHeader, comp(s.Fig1())); err != nil {
		return err
	}
	if err := writeSeries("fig2_tld_dependency.csv", compHeader, comp(s.Fig2())); err != nil {
		return err
	}
	if err := writeSeries("fig5_sanctioned.csv", compHeader, comp(s.Fig5())); err != nil {
		return err
	}
	fig3 := s.Fig3()
	top := analysis.TopTLDs(fig3, 5)
	var f3rows [][]string
	for _, p := range fig3 {
		row := []string{p.Day.String()}
		for _, tld := range top {
			row = append(row, fmt.Sprintf("%.4f", p.Share(tld)))
		}
		f3rows = append(f3rows, row)
	}
	if err := writeSeries("fig3_tld_shares.csv", append([]string{"day"}, top...), f3rows); err != nil {
		return err
	}
	fig4 := s.Fig4()
	f4header := []string{"day"}
	for _, spec := range fig4ASNs {
		f4header = append(f4header, fmt.Sprintf("AS%d", spec.ASN))
	}
	var f4rows [][]string
	for _, p := range fig4 {
		row := []string{p.Day.String()}
		for _, spec := range fig4ASNs {
			row = append(row, fmt.Sprintf("%.4f", p.Share(spec.ASN)))
		}
		f4rows = append(f4rows, row)
	}
	return writeSeries("fig4_asn_shares.csv", f4header, f4rows)
}
