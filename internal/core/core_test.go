package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"whereru/internal/world"
)

// tinyStudy runs a full collect at 1:20000 scale (≈585 domains) — small
// enough for unit tests, large enough to exercise every code path.
func tinyStudy(t *testing.T) *Study {
	t.Helper()
	opts := Options{World: world.Config{Seed: 5, Scale: 20000, RFShare: 0.1}, DenseStep: 7, CollectMX: true}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStudyLifecycle(t *testing.T) {
	s := tinyStudy(t)
	if len(s.Sweeps) == 0 || len(s.Stats) != len(s.Sweeps) {
		t.Fatalf("sweeps=%d stats=%d", len(s.Sweeps), len(s.Stats))
	}
	if s.Store.NumDomains() == 0 {
		t.Fatal("empty store after Collect")
	}
	if len(s.Archive.Days()) == 0 {
		t.Fatal("no scan days recorded")
	}
	if s.Scale() != 20000 {
		t.Fatalf("Scale = %d", s.Scale())
	}
}

func TestRenderAllProducesEveryExperiment(t *testing.T) {
	s := tinyStudy(t)
	var buf bytes.Buffer
	if err := s.RenderAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"Figure 6", "Figure 7", "Figures 6-7", "Table 1", "Figure 8",
		"Table 2", "Russian Trusted Root CA", "Paper vs measured",
		"relocation latency", "market concentration", "mail operators",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestComparisonsCoverAllExperiments(t *testing.T) {
	s := tinyStudy(t)
	comps, err := s.Comparisons()
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) < 30 {
		t.Fatalf("only %d comparison rows", len(comps))
	}
	groups := map[string]bool{}
	for _, c := range comps {
		groups[c.Experiment] = true
		if c.Metric == "" || c.Paper == "" || c.Measured == "" {
			t.Errorf("incomplete comparison: %+v", c)
		}
	}
	for _, g := range []string{"Fig 1", "Fig 2", "Fig 3", "Fig 4", "Fig 5 / §3.3", "Fig 6", "Fig 7", "Tab 1", "Fig 8", "Tab 2", "§4.3", "§3.1 hosting"} {
		if !groups[g] {
			t.Errorf("missing experiment group %q (have %v)", g, groups)
		}
	}
}

func TestExperimentsMarkdown(t *testing.T) {
	s := tinyStudy(t)
	var buf bytes.Buffer
	if err := s.ExperimentsMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	md := buf.String()
	if !strings.HasPrefix(md, "# EXPERIMENTS") {
		t.Error("missing title")
	}
	if !strings.Contains(md, "| metric | paper | measured |") {
		t.Error("missing table header")
	}
	if !strings.Contains(md, "73.9%") {
		t.Error("missing paper target values")
	}
}

func TestSaveStore(t *testing.T) {
	s := tinyStudy(t)
	var buf bytes.Buffer
	if err := s.SaveStore(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 1000 {
		t.Fatalf("store blob suspiciously small: %d bytes", buf.Len())
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("WRST")) {
		t.Error("store blob missing magic")
	}
}

func TestDefaultsApplied(t *testing.T) {
	s, err := New(Options{World: world.Config{Seed: 1, Scale: 50000, RFShare: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Opts.DenseStep != 3 || s.Opts.Workers != 8 {
		t.Errorf("defaults not applied: %+v", s.Opts)
	}
	if s.Opts.DenseFrom.String() != "2022-02-01" {
		t.Errorf("DenseFrom default = %v", s.Opts.DenseFrom)
	}
	if _, err := New(Options{World: world.Config{Scale: 0}}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestEmptyStudyReturnsErrNoSweeps(t *testing.T) {
	s, err := New(Options{World: world.Config{Seed: 5, Scale: 20000, RFShare: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	// No Collect: the store holds zero sweeps. The entry points must
	// fail cleanly instead of panicking on an empty series.
	if _, err := s.Comparisons(); !errors.Is(err, ErrNoSweeps) {
		t.Fatalf("Comparisons on empty study: err = %v, want ErrNoSweeps", err)
	}
	if err := s.RenderAll(io.Discard); !errors.Is(err, ErrNoSweeps) {
		t.Fatalf("RenderAll on empty study: err = %v, want ErrNoSweeps", err)
	}
	if err := s.ExperimentsMarkdown(io.Discard); !errors.Is(err, ErrNoSweeps) {
		t.Fatalf("ExperimentsMarkdown on empty study: err = %v, want ErrNoSweeps", err)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	s := tinyStudy(t)
	var blob bytes.Buffer
	if err := s.SaveStore(&blob); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(s.Opts, &blob)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Store.NumDomains(), s.Store.NumDomains(); got != want {
		t.Fatalf("loaded domains = %d, want %d", got, want)
	}
	if got, want := len(loaded.Sweeps), len(s.Sweeps); got != want {
		t.Fatalf("loaded sweeps = %d, want %d", got, want)
	}
	// The DNS-derived series must be identical to the originating study's.
	want, got := s.Fig1(), loaded.Fig1()
	if len(want) != len(got) {
		t.Fatalf("Fig1 lengths differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("Fig1[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

type memFile struct {
	bytes.Buffer
	closed bool
}

func (m *memFile) Close() error { m.closed = true; return nil }

func TestExportCSV(t *testing.T) {
	s := tinyStudy(t)
	files := map[string]*memFile{}
	err := s.ExportCSV(func(name string) (io.WriteCloser, error) {
		f := &memFile{}
		files[name] = f
		return f, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"fig1_ns_composition.csv", "fig2_tld_dependency.csv",
		"fig3_tld_shares.csv", "fig4_asn_shares.csv", "fig5_sanctioned.csv",
	}
	for _, name := range want {
		f, ok := files[name]
		if !ok {
			t.Errorf("missing %s", name)
			continue
		}
		if !f.closed {
			t.Errorf("%s not closed", name)
		}
		lines := strings.Split(strings.TrimSpace(f.String()), "\n")
		if len(lines) < 2 {
			t.Errorf("%s has no data rows", name)
		}
		if !strings.Contains(lines[0], "day") {
			t.Errorf("%s header = %q", name, lines[0])
		}
	}
}
