// Package core is the top of the library: a Study wires the synthetic
// world, the OpenINTEL-style collection pipeline, the CUIDS-style scans
// and the analysis layer together, and regenerates every figure and table
// of the paper with a paper-vs-measured comparison. cmd/whereru and the
// examples are thin wrappers around this package.
package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"whereru/internal/analysis"
	"whereru/internal/dns"
	"whereru/internal/grid"
	"whereru/internal/iofault"
	"whereru/internal/netsim"
	"whereru/internal/openintel"
	"whereru/internal/scan"
	"whereru/internal/simtime"
	"whereru/internal/store"
	"whereru/internal/world"
)

// Options configures a Study.
type Options struct {
	// World configures the synthetic ecosystem (seed, scale).
	World world.Config
	// DenseFrom is when sweeps switch from monthly to dense (default
	// 2022-02-01, matching the paper's analysis granularity).
	DenseFrom simtime.Day
	// DenseStep is the dense sweep interval in days (default 3).
	DenseStep int
	// Workers is the sweep concurrency (default 8).
	Workers int
	// AnalysisWorkers is the analysis shard count for figure regeneration
	// (0 = one shard per CPU). Results are independent of the setting: the
	// epoch engine merges per-shard counters deterministically.
	AnalysisWorkers int
	// CollectMX enables the mail-measurement extension (MX records are
	// collected alongside NS/A, enabling the mail-concentration analyses).
	CollectMX bool
	// Loss is the per-exchange packet-loss probability injected into
	// every sweep (0, the default, disables fault injection). Retries in
	// the resolver stack recover almost all injected loss; the recovery
	// is quantified in each sweep's SweepStats.
	Loss float64
	// FaultSeed seeds the fault-injection layer and the DNS client's
	// query IDs; 0 reuses the world seed. Fault decisions are pure
	// functions of the seed and the query, so a fixed seed reproduces the
	// same degraded measurements run after run.
	FaultSeed int64
	// SimulateOutage schedules the paper's 2021-03-22 collection outage
	// (footnote 8) as a fault-profile outage window on the registry TLD
	// servers — the declarative re-expression of World.SetOutage.
	SimulateOutage bool
	// Scenario selects a built-in routing scenario (world.Scenarios lists
	// the catalog: "netnod-depeering", "ru-ixp-isolation",
	// "runet-partition"). When set, every sweep exchange consults the
	// AS-level route table: servers with no path fail like timeouts,
	// routed exchanges accumulate simulated path latency, and the
	// reachability/latency analyses light up. Empty disables the route
	// layer entirely — measurements are byte-identical to earlier
	// versions.
	Scenario string
	// CheckpointPath, when set, makes collection crash-safe: every
	// completed sweep is appended to an fsynced journal at this path, so
	// a killed run can pick up where it left off.
	CheckpointPath string
	// Resume replays an existing journal at CheckpointPath before
	// collecting: journaled sweeps load from disk, collection continues
	// from the first unswept scheduled day, and the final results are
	// byte-identical to an uninterrupted run. Without Resume the journal
	// is created fresh (truncating any previous one).
	Resume bool
	// DropSweeps lists scheduled days to deliberately skip, simulating
	// collection outages: the store records them as missing, the analyses
	// flag their series points Interpolated, and the charts mark them.
	DropSweeps []simtime.Day
	// StudyStart/StudyEnd override the collection window (zero = the
	// paper's 2017-06-18 .. 2022-05-25). Tests use short windows to
	// exercise crash/resume cheaply.
	StudyStart, StudyEnd simtime.Day
	// CrashAfter, when > 0, aborts Collect with ErrCrashInjected after
	// that many live (non-replayed) sweeps have been journaled — the test
	// hook behind the crash-resume smoke test. The TLS scans are skipped;
	// a resumed run redoes them.
	CrashAfter int
	// GridListen, when set (host:port; port 0 picks a free one), runs
	// collection through internal/grid: a coordinator listens here,
	// shards each sweep day into work units, and leases them to
	// connected workers, degrading to local execution when none are
	// live. Results are byte-identical to a single-process run.
	GridListen string
	// GridWorkers spawns that many in-process grid workers (each builds
	// its own copy of the world). Setting it without GridListen listens
	// on a loopback port. External workers (`whereru -grid-worker`) may
	// connect either way.
	GridWorkers int
	// GridShard is the number of domains per grid work unit (default
	// grid.DefaultShardSize).
	GridShard int
	// GridMinWorkers makes Collect wait for that many connected workers
	// before the first sweep (0 starts immediately, measuring locally
	// until workers join).
	GridMinWorkers int
	// GridLeaseTTL overrides the work-unit lease TTL (default
	// grid.DefaultLeaseTTL). Tests shorten it to exercise expiry fast.
	GridLeaseTTL time.Duration
	// OnGridListen, if set, is called once with the coordinator's bound
	// address before workers are awaited — how tests and operators learn
	// the port when GridListen used port 0.
	OnGridListen func(addr string)
	// FS routes the study's durability-critical file I/O — the
	// checkpoint journal and SaveStoreFile — through a filesystem
	// abstraction. nil means the real OS; the chaos matrix installs an
	// iofault.FaultFS here to crash collection at exact byte offsets.
	FS iofault.FS
	// ReferenceResolver routes every in-memory exchange through the
	// preserved reference wire codec and disables cache-miss coalescing:
	// the resolver stack exactly as it was before the fast path. The
	// equivalence tests run whole studies both ways and byte-compare
	// store, report, and journal output; production runs leave it off.
	ReferenceResolver bool
	// Progress, if non-nil, receives human-readable progress lines.
	Progress func(format string, args ...any)
}

// ErrCrashInjected is returned by Collect when Options.CrashAfter fires:
// the simulated hard kill of the collection process.
var ErrCrashInjected = fmt.Errorf("core: crash injected after checkpoint")

// DefaultOptions returns the full-fidelity configuration.
func DefaultOptions() Options {
	return Options{World: world.DefaultConfig(), DenseStep: 3, Workers: 8, CollectMX: true}
}

// QuickOptions returns a small, fast configuration (used by tests and the
// quickstart example).
func QuickOptions() Options {
	return Options{World: world.TestConfig(), DenseStep: 3, Workers: 8, CollectMX: true}
}

// Study is one full reproduction run.
type Study struct {
	Opts     Options
	World    *world.World
	Store    *store.Store
	Analyzer *analysis.Analyzer
	Archive  *scan.Archive
	// Outages records the scheduled outage windows in effect during
	// collection (day-indexed, keyed by "tld:<label>").
	Outages *netsim.OutageSchedule
	// Sweeps are the measurement days collected.
	Sweeps []simtime.Day
	// Stats summarizes each sweep.
	Stats []openintel.SweepStats
	// Grid is the sweep coordinator when collection ran distributed
	// (Options.GridListen/GridWorkers); its Metrics outlive Collect so
	// operators can inspect reassignment counters after the run.
	Grid *grid.Coordinator
}

// New builds the world for a study.
func New(opts Options) (*Study, error) {
	if opts.DenseFrom == 0 {
		opts.DenseFrom = simtime.Date(2022, 2, 1)
	}
	if opts.DenseStep <= 0 {
		opts.DenseStep = 3
	}
	if opts.Workers <= 0 {
		opts.Workers = 8
	}
	if opts.Progress == nil {
		opts.Progress = func(string, ...any) {}
	}
	if err := opts.World.Validate(); err != nil {
		return nil, err
	}
	opts.Progress("building world (scale 1:%d, %d domains)...", opts.World.Scale, opts.World.NumDomains())
	w, err := world.Build(opts.World)
	if err != nil {
		return nil, fmt.Errorf("core: building world: %w", err)
	}
	st := store.New()
	outages := netsim.NewOutageSchedule()
	an := &analysis.Analyzer{Store: st, Geo: w.Geo, Internet: w.Internet, Workers: opts.AnalysisWorkers}
	if opts.Scenario != "" {
		if err := w.ApplyScenario(opts.Scenario, outages); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		an.Routes = w.RouteView()
	}
	return &Study{
		Opts:     opts,
		World:    w,
		Store:    st,
		Analyzer: an,
		Archive:  scan.NewArchive(),
		Outages:  outages,
	}, nil
}

// LoadStore builds the world for opts and adopts a previously saved
// measurement store (written by SaveStore / `whereru -store`) in place
// of running Collect. The world must be built with the same seed and
// scale that produced the store: the geolocation, routing and registry
// context the analyses consult is regenerated from opts, while the DNS
// measurements come from the file. The TLS scan archive is not part of
// the store format, so the §4.3 scan report stays empty on a loaded
// study; every DNS-derived figure and table is available.
func LoadStore(opts Options, src io.Reader) (*Study, error) {
	s, err := New(opts)
	if err != nil {
		return nil, err
	}
	st, err := store.Read(src)
	if err != nil {
		return nil, fmt.Errorf("core: loading store: %w", err)
	}
	s.adoptStore(st)
	return s, nil
}

// LoadCheckpoint builds the world for opts and replays a sweep journal
// (written by `whereru -checkpoint`) into the study's store, without
// collecting further. A torn tail is tolerated exactly as Resume
// tolerates it: the intact prefix replays, the damage is reported via
// Progress. The journal file itself is not modified.
func LoadCheckpoint(opts Options, path string) (*Study, error) {
	s, err := New(opts)
	if err != nil {
		return nil, err
	}
	replay, err := store.VerifyJournal(path)
	if err != nil {
		return nil, fmt.Errorf("core: loading checkpoint: %w", err)
	}
	if replay.Torn() {
		s.Opts.Progress("warning: checkpoint has a torn tail (%d bytes ignored)", replay.TornBytes)
	}
	pipe := &openintel.Pipeline{Store: s.Store}
	s.Stats = pipe.ReplayJournal(replay)
	s.Sweeps = s.Store.Sweeps()
	s.Opts.Progress("loaded %d journaled sweeps from %s", len(replay.Sweeps), path)
	return s, nil
}

// adoptStore swaps in st as the study's measurement database, pointing
// the analysis engine at it and deriving the sweep list from it.
func (s *Study) adoptStore(st *store.Store) {
	s.Store = st
	s.Analyzer.Store = st
	s.Sweeps = st.Sweeps()
}

// measurementResolver builds the sweep resolver for opts against w:
// fault-injected with the scheduled outage when configured, plain
// otherwise. Collect uses it for the coordinator process; RunGridWorker
// uses it for each worker's private copy of the world — identical
// configuration is what makes grid unit results deterministic.
func measurementResolver(opts Options, w *world.World, outages *netsim.OutageSchedule) *dns.Resolver {
	// With a scenario active every exchange passes through the route
	// layer before touching the wire; without one the stack is built
	// directly over the in-memory wire, byte-identical to scenario-less
	// versions of this code.
	var base dns.Transport = w.Mem
	if opts.Scenario != "" {
		base = w.RoutedTransport()
	}
	resolver := dns.NewResolver(base, w.Roots())
	if opts.Loss > 0 || opts.SimulateOutage {
		seed := opts.FaultSeed
		if seed == 0 {
			seed = opts.World.Seed
		}
		profile := dns.FaultProfile{Loss: opts.Loss}
		ft := dns.NewFaultTransport(base, seed, w.Clock())
		ft.SetDefault(profile)
		resolver = dns.NewResolver(ft, w.Roots())
		resolver.Client = dns.NewSeededClient(ft, seed)
		if opts.SimulateOutage {
			w.ScheduleRegistryOutage(ft, profile, simtime.OneDay(simtime.MeasurementOutage), outages)
		}
	}
	if opts.ReferenceResolver {
		w.Mem.SetReferenceCodec(true)
		resolver.Cache().DisableCoalescing()
	}
	return resolver
}

// Collect runs the full measurement campaign: DNS sweeps over the study
// window (monthly, then dense for 2022) and weekly TLS scans over the
// Russian-CA window. With CheckpointPath set each completed sweep is
// journaled durably; with Resume the journal's sweeps replay from disk
// and collection continues from the first unswept scheduled day.
func (s *Study) Collect(ctx context.Context) error {
	start, end := s.Opts.StudyStart, s.Opts.StudyEnd
	if start == 0 {
		start = simtime.StudyStart
	}
	if end == 0 {
		end = simtime.StudyEnd
	}
	schedule := openintel.Schedule(start, end, s.Opts.DenseFrom, s.Opts.DenseStep)
	pipe := &openintel.Pipeline{
		Resolver:  measurementResolver(s.Opts, s.World, s.Outages),
		Seeds:     s.World.Registries,
		Clock:     s.World.Clock(),
		Store:     s.Store,
		Workers:   s.Opts.Workers,
		CollectMX: s.Opts.CollectMX,
	}
	if s.Opts.Scenario != "" {
		pipe.Routes = s.World.RouteView()
	}

	done := map[simtime.Day]bool{}
	if s.Opts.CheckpointPath != "" {
		if s.Opts.Resume {
			j, replay, err := store.OpenJournalFS(s.fs(), s.Opts.CheckpointPath)
			if err != nil {
				return fmt.Errorf("core: opening checkpoint: %w", err)
			}
			defer j.Close()
			if replay.Torn() {
				s.Opts.Progress("warning: checkpoint had a torn tail (%d bytes dropped); resuming from the last complete sweep", replay.TornBytes)
			}
			s.Stats = append(s.Stats, pipe.ReplayJournal(replay)...)
			done = openintel.Covered(replay)
			s.Opts.Progress("resumed %d journaled sweeps from %s", len(replay.Sweeps), s.Opts.CheckpointPath)
			pipe.Checkpoint = j
		} else {
			j, err := store.CreateJournalFS(s.fs(), s.Opts.CheckpointPath)
			if err != nil {
				return fmt.Errorf("core: creating checkpoint: %w", err)
			}
			defer j.Close()
			pipe.Checkpoint = j
		}
	}
	drop := map[simtime.Day]bool{}
	for _, d := range s.Opts.DropSweeps {
		drop[d] = true
	}

	// sweepFn is how one day gets measured: in-process by default,
	// through the grid coordinator when distribution is requested.
	sweepFn := pipe.Sweep
	if s.Opts.GridListen != "" || s.Opts.GridWorkers > 0 {
		shutdown, err := s.startGrid(ctx, pipe)
		if err != nil {
			return err
		}
		defer shutdown()
		sweepFn = s.Grid.SweepDay
	}

	s.Sweeps = s.Store.Sweeps()
	s.Opts.Progress("collecting %d DNS sweeps (%s .. %s)...", len(schedule), start, end)
	live := 0
	for i, day := range schedule {
		if done[day] {
			continue
		}
		if drop[day] {
			if err := pipe.SkipSweep(day); err != nil {
				return fmt.Errorf("core: skipping sweep %s: %w", day, err)
			}
			continue
		}
		stats, err := sweepFn(ctx, day)
		if err != nil {
			return fmt.Errorf("core: sweep %s: %w", day, err)
		}
		s.Sweeps = append(s.Sweeps, day)
		s.Stats = append(s.Stats, stats)
		live++
		if s.Opts.CrashAfter > 0 && live >= s.Opts.CrashAfter {
			return ErrCrashInjected
		}
		if (i+1)%25 == 0 {
			s.Opts.Progress("  sweep %d/%d done (%s: %d domains)", i+1, len(schedule), day, stats.Domains)
		}
	}
	s.Opts.Progress("running TLS scans (%s .. %s, weekly)...", world.RussianCAStartDay, simtime.CTWindowEnd)
	for d := world.RussianCAStartDay; d <= simtime.CTWindowEnd; d = d.Add(7) {
		s.Archive.Record(d, s.World.Scanner.Sweep(d))
	}
	return nil
}

// SaveStore writes the measurement store to w (the on-disk interchange
// format; see internal/store).
func (s *Study) SaveStore(w io.Writer) error {
	_, err := s.Store.WriteTo(w)
	return err
}

// fs resolves Options.FS, defaulting to the real filesystem.
func (s *Study) fs() iofault.FS {
	if s.Opts.FS != nil {
		return s.Opts.FS
	}
	return iofault.OS
}

// SaveStoreFile durably writes the measurement store to path via an
// atomic replace (temp file, fsync, rename, directory fsync): a crash
// at any byte leaves either the previous store or the complete new one,
// never a torn file.
func (s *Study) SaveStoreFile(path string) error {
	return iofault.WriteAtomic(s.fs(), path, func(w io.Writer) error {
		_, err := s.Store.WriteTo(w)
		return err
	})
}

// Scale returns the study's population scale divisor.
func (s *Study) Scale() int { return s.Opts.World.Scale }
