package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"whereru/internal/simtime"
	"whereru/internal/world"
)

// shortOpts is the crash-test configuration: five dense sweeps over one
// month at 1:20000 scale, cheap enough to re-collect once per crash
// boundary while still exercising the full pipeline.
func shortOpts() Options {
	return Options{
		World:      world.Config{Seed: 5, Scale: 20000, RFShare: 0.1},
		DenseStep:  7,
		CollectMX:  true,
		StudyStart: simtime.Date(2022, 2, 1),
		StudyEnd:   simtime.Date(2022, 3, 1),
	}
}

// runStudy collects with opts and returns the rendered report plus the
// study itself.
func runStudy(t *testing.T, opts Options) ([]byte, *Study) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.RenderAll(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), s
}

func storeBytes(t *testing.T, s *Study) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.SaveStore(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCrashResumeEquivalence kills a checkpointed run after every possible
// sweep boundary and proves a resumed run produces a byte-identical report
// and store — the headline durability guarantee.
func TestCrashResumeEquivalence(t *testing.T) {
	opts := shortOpts()
	want, base := runStudy(t, opts)
	wantStore := storeBytes(t, base)
	n := len(base.Sweeps)
	if n < 3 || n > 10 {
		t.Fatalf("window produced %d sweeps, want a handful", n)
	}
	for k := 1; k <= n; k++ {
		t.Run(fmt.Sprintf("crash_after_%d_of_%d", k, n), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "sweeps.wrjl")

			copts := opts
			copts.CheckpointPath = path
			copts.CrashAfter = k
			crashed, err := New(copts)
			if err != nil {
				t.Fatal(err)
			}
			if err := crashed.Collect(context.Background()); !errors.Is(err, ErrCrashInjected) {
				t.Fatalf("crash run returned %v, want ErrCrashInjected", err)
			}
			if len(crashed.Sweeps) != k {
				t.Fatalf("crashed after %d sweeps, want %d", len(crashed.Sweeps), k)
			}

			ropts := opts
			ropts.CheckpointPath = path
			ropts.Resume = true
			got, resumed := runStudy(t, ropts)
			if len(resumed.Sweeps) != n {
				t.Errorf("resumed run has %d sweeps, want %d", len(resumed.Sweeps), n)
			}
			if len(resumed.Stats) != n {
				t.Errorf("resumed run has %d sweep stats, want %d", len(resumed.Stats), n)
			}
			if !bytes.Equal(storeBytes(t, resumed), wantStore) {
				t.Errorf("resumed store differs from uninterrupted run")
			}
			if !bytes.Equal(got, want) {
				t.Errorf("resumed report differs from uninterrupted run")
			}
		})
	}
}

// TestResumeWithoutCrashIsNoop resumes a journal that already covers the
// whole schedule: no sweeps re-run, output unchanged.
func TestResumeWithoutCrashIsNoop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweeps.wrjl")
	opts := shortOpts()
	opts.CheckpointPath = path
	want, full := runStudy(t, opts)

	ropts := opts
	ropts.Resume = true
	got, resumed := runStudy(t, ropts)
	if len(resumed.Sweeps) != len(full.Sweeps) {
		t.Errorf("resumed %d sweeps, want %d", len(resumed.Sweeps), len(full.Sweeps))
	}
	if !bytes.Equal(got, want) {
		t.Errorf("noop resume changed the report")
	}
}

// TestDropSweepsGapAnalysis drops a scheduled sweep and checks the outage
// is recorded, flagged Interpolated in the series (with non-gap points
// unchanged), and marked in the rendered charts.
func TestDropSweepsGapAnalysis(t *testing.T) {
	opts := shortOpts()
	_, base := runStudy(t, opts)
	if len(base.Sweeps) < 4 {
		t.Fatalf("only %d sweeps", len(base.Sweeps))
	}
	dropDay := base.Sweeps[2]

	dopts := shortOpts()
	dopts.DropSweeps = []simtime.Day{dropDay}
	out, s := runStudy(t, dopts)

	missing := s.Store.MissingSweeps()
	if len(missing) != 1 || missing[0] != dropDay {
		t.Fatalf("MissingSweeps = %v, want [%s]", missing, dropDay)
	}
	if !strings.Contains(string(out), ":=collection gap") {
		t.Errorf("report does not mark the collection gap")
	}

	// The gap day still appears on the series axis, flagged Interpolated;
	// every other point is identical to the uninterrupted run.
	days := s.keyDays()
	gapPts := s.Analyzer.NSCompositionSeries(days, nil)
	refPts := base.Analyzer.NSCompositionSeries(days, nil)
	if len(gapPts) != len(refPts) {
		t.Fatalf("series lengths differ: %d vs %d", len(gapPts), len(refPts))
	}
	sawGap := false
	for i, p := range gapPts {
		if p.Day == dropDay {
			sawGap = true
			if !p.Interpolated {
				t.Errorf("point at dropped day %s not flagged Interpolated", dropDay)
			}
			continue
		}
		if p.Interpolated {
			t.Errorf("swept day %s wrongly flagged Interpolated", p.Day)
		}
		if p != refPts[i] {
			t.Errorf("non-gap point at %s changed: %+v vs %+v", p.Day, p, refPts[i])
		}
	}
	if !sawGap {
		t.Fatalf("dropped day %s missing from series axis %v", dropDay, days)
	}
}

// TestDropSweepsSurviveResume journals a run with an outage, crashes it
// after the gap, and checks the resumed run still knows about the missing
// sweep — the gap marker must be as durable as the measurements.
func TestDropSweepsSurviveResume(t *testing.T) {
	opts := shortOpts()
	_, base := runStudy(t, opts)
	if len(base.Sweeps) < 4 {
		t.Fatalf("only %d sweeps", len(base.Sweeps))
	}
	dropDay := base.Sweeps[1]

	dopts := shortOpts()
	dopts.DropSweeps = []simtime.Day{dropDay}
	want, full := runStudy(t, dopts)

	path := filepath.Join(t.TempDir(), "sweeps.wrjl")
	copts := dopts
	copts.CheckpointPath = path
	copts.CrashAfter = 2 // fires on the sweep after the dropped day
	crashed, err := New(copts)
	if err != nil {
		t.Fatal(err)
	}
	if err := crashed.Collect(context.Background()); !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("crash run returned %v, want ErrCrashInjected", err)
	}
	if got := crashed.Store.MissingSweeps(); len(got) != 1 || got[0] != dropDay {
		t.Fatalf("crashed run MissingSweeps = %v, want [%s]", got, dropDay)
	}

	ropts := dopts
	ropts.CheckpointPath = path
	ropts.Resume = true
	got, resumed := runStudy(t, ropts)
	if ms := resumed.Store.MissingSweeps(); len(ms) != 1 || ms[0] != dropDay {
		t.Errorf("resumed MissingSweeps = %v, want [%s]", ms, dropDay)
	}
	if len(resumed.Sweeps) != len(full.Sweeps) {
		t.Errorf("resumed %d sweeps, want %d", len(resumed.Sweeps), len(full.Sweeps))
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed gap report differs from uninterrupted gap run")
	}
}
