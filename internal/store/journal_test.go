package store

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"whereru/internal/simtime"
)

func sweepRec(day simtime.Day, domains ...string) JournalSweep {
	rec := JournalSweep{
		Day:   day,
		Stats: JournalStats{Domains: len(domains), Retries: 1},
	}
	for _, d := range domains {
		rec.Measurements = append(rec.Measurements, Measurement{
			Domain: d,
			Day:    day,
			Config: cfg([]string{"ns." + d}, []string{"11.0.0.1"}, []string{"11.0.1.1"}),
		})
	}
	return rec
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweeps.wrjl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []JournalSweep{
		sweepRec(100, "b.ru.", "a.ru."),
		{Day: 107, Missing: true},
		sweepRec(114, "a.ru."),
	}
	for _, r := range recs {
		if err := j.AppendSweep(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	replay, err := VerifyJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Torn() {
		t.Fatalf("clean journal reported torn (%d bytes)", replay.TornBytes)
	}
	if len(replay.Sweeps) != 3 {
		t.Fatalf("replayed %d sweeps, want 3", len(replay.Sweeps))
	}
	got := replay.Sweeps
	if got[0].Day != 100 || got[1].Day != 107 || got[2].Day != 114 {
		t.Fatalf("days = %d,%d,%d", got[0].Day, got[1].Day, got[2].Day)
	}
	if !got[1].Missing || got[0].Missing || got[2].Missing {
		t.Fatal("missing flags wrong")
	}
	if got[0].Stats != recs[0].Stats {
		t.Fatalf("stats = %+v, want %+v", got[0].Stats, recs[0].Stats)
	}
	// Measurements come back sorted by domain regardless of append order.
	if got[0].Measurements[0].Domain != "a.ru." || got[0].Measurements[1].Domain != "b.ru." {
		t.Fatalf("measurements not sorted: %+v", got[0].Measurements)
	}
	want := recs[0].Measurements[1] // a.ru., appended second
	if !reflect.DeepEqual(got[0].Measurements[0], want) {
		t.Fatalf("measurement round trip: %+v != %+v", got[0].Measurements[0], want)
	}
}

func TestJournalAppendAfterReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweeps.wrjl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSweep(sweepRec(10, "a.ru.")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, replay, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay.Sweeps) != 1 || replay.Torn() {
		t.Fatalf("replay = %d sweeps, torn=%v", len(replay.Sweeps), replay.Torn())
	}
	if err := j2.AppendSweep(sweepRec(17, "a.ru.")); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	final, err := VerifyJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Sweeps) != 2 || final.Sweeps[1].Day != 17 {
		t.Fatalf("after reopen: %d sweeps", len(final.Sweeps))
	}
}

// TestJournalTornTail truncates the file mid-segment at every possible
// cut point and asserts OpenJournal always drops exactly the torn
// segment, keeps all prior ones, and leaves a file that later appends
// extend cleanly.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	master := filepath.Join(dir, "master.wrjl")
	j, err := CreateJournal(master)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSweep(sweepRec(10, "a.ru.", "b.ru.")); err != nil {
		t.Fatal(err)
	}
	sizeAfterFirst := fileSize(t, master)
	if err := j.AppendSweep(sweepRec(17, "a.ru.")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	full, err := os.ReadFile(master)
	if err != nil {
		t.Fatal(err)
	}

	for cut := int(sizeAfterFirst); cut < len(full); cut++ {
		path := filepath.Join(dir, "torn.wrjl")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, replay, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("cut=%d: OpenJournal: %v", cut, err)
		}
		if cut > int(sizeAfterFirst) && !replay.Torn() {
			t.Fatalf("cut=%d: torn tail not reported", cut)
		}
		if len(replay.Sweeps) != 1 || replay.Sweeps[0].Day != 10 {
			t.Fatalf("cut=%d: replay = %+v", cut, replay.Sweeps)
		}
		if got := fileSize(t, path); got != sizeAfterFirst {
			t.Fatalf("cut=%d: file not truncated to valid prefix (%d != %d)", cut, got, sizeAfterFirst)
		}
		// The repaired journal accepts new segments.
		if err := j2.AppendSweep(sweepRec(24, "c.ru.")); err != nil {
			t.Fatalf("cut=%d: append after repair: %v", cut, err)
		}
		j2.Close()
		final, err := VerifyJournal(path)
		if err != nil || final.Torn() || len(final.Sweeps) != 2 {
			t.Fatalf("cut=%d: after repair+append: %v, %+v", cut, err, final)
		}
		if final.Sweeps[1].Day != 24 {
			t.Fatalf("cut=%d: appended day = %d", cut, final.Sweeps[1].Day)
		}
	}
}

func TestJournalBitFlipDropsTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flip.wrjl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.AppendSweep(sweepRec(10, "a.ru."))
	size := fileSize(t, path)
	j.AppendSweep(sweepRec(17, "b.ru."))
	j.Close()
	raw, _ := os.ReadFile(path)
	// Corrupt the second segment's payload.
	raw[int(size)+8] ^= 0x01
	os.WriteFile(path, raw, 0o644)

	replay, err := VerifyJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !replay.Torn() || len(replay.Sweeps) != 1 {
		t.Fatalf("checksum flip: torn=%v sweeps=%d", replay.Torn(), len(replay.Sweeps))
	}
	if replay.GoodBytes != size {
		t.Fatalf("GoodBytes = %d, want %d", replay.GoodBytes, size)
	}
}

func TestJournalHeaderValidation(t *testing.T) {
	if _, err := DecodeJournal(bytes.NewReader([]byte("WRJ"))); err == nil {
		t.Fatal("short header accepted")
	}
	if _, err := DecodeJournal(bytes.NewReader([]byte("XXXX\x00\x01"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := DecodeJournal(bytes.NewReader([]byte("WRJL\x00\x63"))); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestJournalSyncHook(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.wrjl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	syncs := 0
	j.Sync = func() error { syncs++; return nil }
	j.AppendSweep(sweepRec(10, "a.ru."))
	j.AppendSweep(sweepRec(17, "a.ru."))
	if syncs != 2 {
		t.Fatalf("syncs = %d, want one per append", syncs)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}
