package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"
	"sort"

	"whereru/internal/simtime"
)

// The on-disk format is a simple length-prefixed binary layout:
//
//	magic "WRST" | version u16
//	sweepCount u32 | sweeps (i32 each)
//	domainCount u32
//	per domain: name | epochCount u32
//	  per epoch: from i32 | lastSeen i32 | failed u8
//	    nsHostCount u16 | hosts | nsAddrCount u16 | addrs(4B) |
//	    apexAddrCount u16 | addrs(4B) | mxHostCount u16 | hosts (v2+)
//
// Strings are u16-length-prefixed; addresses are IPv4 (the simulation's
// measurement plane is v4-only; AAAA support in the DNS layer is for
// protocol completeness). Version 1 files (without the MX section) are
// still readable.

const (
	magic   = "WRST"
	version = 2
)

// WriteTo serializes the store.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cw := &countingWriter{w: bufio.NewWriter(w)}
	cw.write([]byte(magic))
	cw.u16(version)
	cw.u32(uint32(len(s.sweeps)))
	for _, d := range s.sweeps {
		cw.i32(int32(d))
	}
	domains := make([]string, 0, len(s.domains))
	for d := range s.domains {
		domains = append(domains, d)
	}
	// Sorted for deterministic output.
	sortStrings(domains)
	cw.u32(uint32(len(domains)))
	for _, name := range domains {
		cw.str(name)
		ds := s.domains[name]
		cw.u32(uint32(len(ds.epochs)))
		for _, e := range ds.epochs {
			cw.i32(int32(e.from))
			cw.i32(int32(e.lastSeen))
			if e.config.Failed {
				cw.write([]byte{1})
			} else {
				cw.write([]byte{0})
			}
			cw.u16(uint16(len(e.config.NSHosts)))
			for _, h := range e.config.NSHosts {
				cw.str(h)
			}
			cw.addrs(e.config.NSAddrs)
			cw.addrs(e.config.ApexAddrs)
			cw.u16(uint16(len(e.config.MXHosts)))
			for _, h := range e.config.MXHosts {
				cw.str(h)
			}
		}
	}
	if cw.err == nil {
		cw.err = cw.w.(*bufio.Writer).Flush()
	}
	return cw.n, cw.err
}

func sortStrings(s []string) {
	// small local helper to avoid importing sort twice conceptually
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) write(b []byte) {
	if c.err != nil {
		return
	}
	n, err := c.w.Write(b)
	c.n += int64(n)
	c.err = err
}

func (c *countingWriter) u16(v uint16) { c.write(binary.BigEndian.AppendUint16(nil, v)) }
func (c *countingWriter) u32(v uint32) { c.write(binary.BigEndian.AppendUint32(nil, v)) }
func (c *countingWriter) i32(v int32)  { c.u32(uint32(v)) }
func (c *countingWriter) str(s string) {
	c.u16(uint16(len(s)))
	c.write([]byte(s))
}
func (c *countingWriter) addrs(a []netip.Addr) {
	c.u16(uint16(len(a)))
	for _, addr := range a {
		b := addr.As4()
		c.write(b[:])
	}
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = err
		return nil
	}
	return b
}

func (r *reader) u16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) i32() int32 { return int32(r.u32()) }

func (r *reader) str() string {
	n := int(r.u16())
	b := r.bytes(n)
	return string(b)
}

func (r *reader) addrs() []netip.Addr {
	n := int(r.u16())
	if n == 0 || r.err != nil {
		return nil
	}
	out := make([]netip.Addr, 0, n)
	for i := 0; i < n; i++ {
		b := r.bytes(4)
		if b == nil {
			return nil
		}
		out = append(out, netip.AddrFrom4([4]byte(b)))
	}
	return out
}

// countSweepsIn counts schedule entries in [from, to].
func countSweepsIn(sweeps []simtime.Day, from, to simtime.Day) int {
	lo := sort.Search(len(sweeps), func(i int) bool { return sweeps[i] >= from })
	hi := sort.Search(len(sweeps), func(i int) bool { return sweeps[i] > to })
	if hi < lo {
		return 0
	}
	return hi - lo
}

// Read deserializes a store written by WriteTo.
func Read(src io.Reader) (*Store, error) {
	r := &reader{r: bufio.NewReader(src)}
	if got := string(r.bytes(4)); got != magic {
		return nil, fmt.Errorf("store: bad magic %q", got)
	}
	v := r.u16()
	if v != 1 && v != version {
		return nil, fmt.Errorf("store: unsupported version %d", v)
	}
	s := New()
	nSweeps := int(r.u32())
	for i := 0; i < nSweeps && r.err == nil; i++ {
		s.sweeps = append(s.sweeps, simtime.Day(r.i32()))
	}
	nDomains := int(r.u32())
	for i := 0; i < nDomains && r.err == nil; i++ {
		name := r.str()
		nEpochs := int(r.u32())
		ds := &domainSeries{epochs: make([]epoch, 0, nEpochs)}
		for j := 0; j < nEpochs && r.err == nil; j++ {
			var e epoch
			e.from = simtime.Day(r.i32())
			e.lastSeen = simtime.Day(r.i32())
			flags := r.bytes(1)
			if flags != nil {
				e.config.Failed = flags[0] == 1
			}
			nHosts := int(r.u16())
			for k := 0; k < nHosts && r.err == nil; k++ {
				e.config.NSHosts = append(e.config.NSHosts, r.str())
			}
			e.config.NSAddrs = r.addrs()
			e.config.ApexAddrs = r.addrs()
			if v >= 2 {
				nMX := int(r.u16())
				for k := 0; k < nMX && r.err == nil; k++ {
					e.config.MXHosts = append(e.config.MXHosts, r.str())
				}
			}
			ds.epochs = append(ds.epochs, e)
		}
		s.domains[name] = ds
	}
	// Reconstruct the naive (one-record-per-sweep) count from the sweep
	// schedule: each epoch spans the sweeps in [from, lastSeen].
	for _, ds := range s.domains {
		for _, e := range ds.epochs {
			s.naive += int64(countSweepsIn(s.sweeps, e.from, e.lastSeen))
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("store: decode: %w", r.err)
	}
	return s, nil
}
