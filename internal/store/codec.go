package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net/netip"
	"sort"

	"whereru/internal/simtime"
)

// The on-disk format (version 3) is a sequence of length-framed,
// CRC32C-checksummed sections:
//
//	magic "WRST" | version u16
//	section: sweep days      (u32 count | i32 each)
//	section: missing days    (u32 count | i32 each)
//	section: domain count    (u32)
//	per domain, one section:
//	  name | epochCount u32
//	    per epoch: from i32 | lastSeen i32 | failed u8
//	      nsHostCount u16 | hosts | nsAddrCount u16 | addrs(4B) |
//	      apexAddrCount u16 | addrs(4B) | mxHostCount u16 | hosts
//
// where a section is `payloadLen u32 | payload | crc32c(payload) u32`.
// Strings are u16-length-prefixed; addresses are IPv4 (the simulation's
// measurement plane is v4-only; AAAA support in the DNS layer is for
// protocol completeness).
//
// The framing makes the decoder truncation-tolerant: every complete,
// checksum-valid domain record in a torn file is recoverable
// (ReadRecover), and every count field is validated against the bytes
// actually present before anything is allocated. Version 1 (no MX
// section) and version 2 files — the unframed legacy stream — are still
// readable.
//
// The decoder feeds the columnar store directly: a domain record's
// epochs are appended to the epoch columns and its configs interned from
// views into the section payload, so reading a paper-scale file never
// materializes per-epoch structs — the only allocations proportional to
// content are for configurations never seen before.

const (
	magic   = "WRST"
	version = 3

	// maxHeaderSectionBytes bounds the sweep/missing/count sections; even
	// daily sweeps over a century fit in well under a megabyte.
	maxHeaderSectionBytes = 1 << 20
	// maxDomainRecordBytes bounds one domain's record. A record an
	// attacker-shaped length field claims to be larger is corrupt by
	// definition, so the decoder never allocates more than this for it.
	maxDomainRecordBytes = 1 << 24
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encoder accumulates a section payload, latching the first overflow:
// counts are stored as u16/u32 and a value that does not fit must fail
// the write rather than truncate silently.
type encoder struct {
	buf bytes.Buffer
	err error
}

func (e *encoder) fail(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf("store: encode: "+format, args...)
	}
}

func (e *encoder) u8(v byte) { e.buf.WriteByte(v) }

func (e *encoder) u16(v int, what string) {
	if v < 0 || v > math.MaxUint16 {
		e.fail("%s %d overflows u16", what, v)
		return
	}
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], uint16(v))
	e.buf.Write(b[:])
}

func (e *encoder) u32(v int, what string) {
	if v < 0 || int64(v) > math.MaxUint32 {
		e.fail("%s %d overflows u32", what, v)
		return
	}
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(v))
	e.buf.Write(b[:])
}

func (e *encoder) i32(v int32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(v))
	e.buf.Write(b[:])
}

func (e *encoder) str(s, what string) {
	e.u16(len(s), what+" length")
	e.buf.WriteString(s)
}

func (e *encoder) strs(ss []string, what string) {
	e.u16(len(ss), what+" count")
	for _, s := range ss {
		e.str(s, what)
	}
}

func (e *encoder) addrs(a []netip.Addr, what string) {
	e.u16(len(a), what+" count")
	for _, addr := range a {
		b := addr.As4()
		e.buf.Write(b[:])
	}
}

func (e *encoder) days(ds []simtime.Day, what string) {
	e.u32(len(ds), what+" count")
	for _, d := range ds {
		e.i32(int32(d))
	}
}

// config writes the failed flag and the four record sets — the layout
// shared by store epochs and journal measurements.
func (e *encoder) config(c Config, domain string) {
	if c.Failed {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.strs(c.NSHosts, domain+" NS host")
	e.addrs(c.NSAddrs, domain+" NS addr")
	e.addrs(c.ApexAddrs, domain+" apex addr")
	e.strs(c.MXHosts, domain+" MX host")
}

// sectionWriter emits the v3 file shape: the magic+version header, then
// length-framed CRC32C sections. Store.WriteTo and the test oracle
// ReferenceStore.WriteTo share it, so the columnar and reference
// representations cannot drift in framing.
type sectionWriter struct {
	bw *bufio.Writer
	cw countingWriter
}

func newSectionWriter(w io.Writer) *sectionWriter {
	sw := &sectionWriter{bw: bufio.NewWriter(w)}
	sw.cw.w = sw.bw
	sw.cw.write([]byte(magic))
	var vb [2]byte
	binary.BigEndian.PutUint16(vb[:], version)
	sw.cw.write(vb[:])
	return sw
}

func (sw *sectionWriter) section(build func(e *encoder)) error {
	var e encoder
	build(&e)
	if e.err != nil {
		return e.err
	}
	payload := e.buf.Bytes()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	sw.cw.write(hdr[:])
	sw.cw.write(payload)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.Checksum(payload, crcTable))
	sw.cw.write(crc[:])
	return sw.cw.err
}

func (sw *sectionWriter) close() (int64, error) {
	if sw.cw.err == nil {
		sw.cw.err = sw.bw.Flush()
	}
	return sw.cw.n, sw.cw.err
}

// WriteTo serializes the store in the version-3 format, reading epochs
// straight out of the columns. The bytes are identical to what the
// pre-columnar representation wrote: interning changes where a config's
// slices live, never their contents, and the encoder only ever sees
// contents.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	idx, ord := s.sortedView() // sorted for deterministic output
	s.mu.RLock()
	defer s.mu.RUnlock()
	sw := newSectionWriter(w)
	if err := sw.section(func(e *encoder) { e.days(s.sweeps, "sweep") }); err != nil {
		return sw.cw.n, err
	}
	if err := sw.section(func(e *encoder) { e.days(s.missing, "missing sweep") }); err != nil {
		return sw.cw.n, err
	}
	if err := sw.section(func(e *encoder) { e.u32(len(idx), "domain count") }); err != nil {
		return sw.cw.n, err
	}
	for i, name := range idx {
		d := ord[i]
		o, n := s.off[d], s.cnt[d]
		err := sw.section(func(e *encoder) {
			e.str(name, "domain name")
			e.u32(int(n), name+" epoch count")
			for j := uint32(0); j < n; j++ {
				e.i32(int32(s.epochFrom[o+j]))
				e.i32(int32(s.epochLast[o+j]))
				e.config(s.intern.config(s.epochCfg[o+j]), name)
			}
		})
		if err != nil {
			return sw.cw.n, err
		}
	}
	return sw.close()
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) write(b []byte) {
	if c.err != nil {
		return
	}
	n, err := c.w.Write(b)
	c.n += int64(n)
	c.err = err
}

// corrupt builds the decoder's uniform error.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("store: corrupt: "+format, args...)
}

// byteReader decodes a section payload. Every count field is validated
// against the bytes remaining in the payload before any allocation, so
// a 20-byte record claiming a billion epochs fails immediately instead
// of pre-allocating gigabytes.
type byteReader struct {
	b   []byte
	off int
	err error
}

func (r *byteReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = corrupt(format, args...)
	}
}

func (r *byteReader) remaining() int { return len(r.b) - r.off }

func (r *byteReader) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.remaining() {
		r.fail("%s: need %d bytes, %d remain", what, n, r.remaining())
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *byteReader) u8(what string) byte {
	b := r.take(1, what)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *byteReader) u16(what string) int {
	b := r.take(2, what)
	if b == nil {
		return 0
	}
	return int(binary.BigEndian.Uint16(b))
}

func (r *byteReader) u32(what string) int {
	b := r.take(4, what)
	if b == nil {
		return 0
	}
	return int(binary.BigEndian.Uint32(b))
}

func (r *byteReader) i32(what string) int32 { return int32(r.u32(what)) }

// count16 reads a u16 element count and rejects it when even minimally-
// sized elements could not fit in the remaining payload.
func (r *byteReader) count16(elemMin int, what string) int {
	n := r.u16(what + " count")
	if r.err == nil && n*elemMin > r.remaining() {
		r.fail("%s count %d exceeds remaining %d bytes", what, n, r.remaining())
		return 0
	}
	return n
}

// count32 is count16 for u32 counts. The division avoids overflowing
// n*elemMin on hostile counts.
func (r *byteReader) count32(elemMin int, what string) int {
	n := r.u32(what + " count")
	if r.err == nil && elemMin > 0 && n > r.remaining()/elemMin {
		r.fail("%s count %d exceeds remaining %d bytes", what, n, r.remaining())
		return 0
	}
	return n
}

func (r *byteReader) str(what string) string {
	n := r.u16(what + " length")
	b := r.take(n, what)
	return string(b)
}

func (r *byteReader) strs(what string) []string {
	// Minimum encoded string is its 2-byte length prefix.
	n := r.count16(2, what)
	if n == 0 || r.err != nil {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.str(what))
	}
	if r.err != nil {
		return nil
	}
	return out
}

func (r *byteReader) addrs(what string) []netip.Addr {
	n := r.count16(4, what)
	if n == 0 || r.err != nil {
		return nil
	}
	out := make([]netip.Addr, 0, n)
	for i := 0; i < n; i++ {
		b := r.take(4, what)
		if b == nil {
			return nil
		}
		out = append(out, netip.AddrFrom4([4]byte(b)))
	}
	return out
}

func (r *byteReader) days(what string) []simtime.Day {
	n := r.count32(4, what)
	if n == 0 || r.err != nil {
		return nil
	}
	out := make([]simtime.Day, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, simtime.Day(r.i32(what)))
	}
	if r.err != nil {
		return nil
	}
	return out
}

func (r *byteReader) config(domain string) Config {
	var c Config
	c.Failed = r.u8(domain+" failed flag") == 1
	c.NSHosts = r.strs(domain + " NS host")
	c.NSAddrs = r.addrs(domain + " NS addr")
	c.ApexAddrs = r.addrs(domain + " apex addr")
	c.MXHosts = r.strs(domain + " MX host")
	return c
}

// The *Ctx variants below are the hot-path twins of take/u8/u16/count16:
// they carry the domain name as separate context and assemble the error
// label ("<domain> <field>") only when something is actually wrong. The
// plain variants concatenate eagerly, which is fine once per section but
// would be an allocation per epoch on the scratch decode path.

func (r *byteReader) takeCtx(n int, ctx, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.remaining() {
		r.fail("%s %s: need %d bytes, %d remain", ctx, what, n, r.remaining())
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *byteReader) u8Ctx(ctx, what string) byte {
	b := r.takeCtx(1, ctx, what)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *byteReader) u16Ctx(ctx, what string) int {
	b := r.takeCtx(2, ctx, what)
	if b == nil {
		return 0
	}
	return int(binary.BigEndian.Uint16(b))
}

func (r *byteReader) i32Ctx(ctx, what string) int32 {
	b := r.takeCtx(4, ctx, what)
	if b == nil {
		return 0
	}
	return int32(binary.BigEndian.Uint32(b))
}

func (r *byteReader) count32Ctx(elemMin int, ctx, what string) int {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 4 {
		r.fail("%s %s count: need 4 bytes, %d remain", ctx, what, r.remaining())
		return 0
	}
	n := int(binary.BigEndian.Uint32(r.b[r.off:]))
	r.off += 4
	if elemMin > 0 && n > r.remaining()/elemMin {
		r.fail("%s %s count %d exceeds remaining %d bytes", ctx, what, n, r.remaining())
		return 0
	}
	return n
}

func (r *byteReader) count16Ctx(elemMin int, ctx, what string) int {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 2 {
		r.fail("%s %s count: need 2 bytes, %d remain", ctx, what, r.remaining())
		return 0
	}
	n := int(binary.BigEndian.Uint16(r.b[r.off:]))
	r.off += 2
	if n*elemMin > r.remaining() {
		r.fail("%s %s count %d exceeds remaining %d bytes", ctx, what, n, r.remaining())
		return 0
	}
	return n
}

// hostsInto decodes a hostname list into dst (capacity reused across
// epochs); the returned entries alias the payload.
func (r *byteReader) hostsInto(dst [][]byte, ctx, what string) [][]byte {
	dst = dst[:0]
	n := r.count16Ctx(2, ctx, what)
	if n == 0 || r.err != nil {
		return dst
	}
	for i := 0; i < n && r.err == nil; i++ {
		if r.remaining() < 2 {
			r.fail("%s %s length: need 2 bytes, %d remain", ctx, what, r.remaining())
			break
		}
		m := int(binary.BigEndian.Uint16(r.b[r.off:]))
		r.off += 2
		if b := r.takeCtx(m, ctx, what); b != nil {
			dst = append(dst, b)
		}
	}
	return dst
}

// addrsInto is addrs with a reused destination.
func (r *byteReader) addrsInto(dst []netip.Addr, ctx, what string) []netip.Addr {
	dst = dst[:0]
	n := r.count16Ctx(4, ctx, what)
	if n == 0 || r.err != nil {
		return dst
	}
	for i := 0; i < n; i++ {
		b := r.takeCtx(4, ctx, what)
		if b == nil {
			return dst
		}
		dst = append(dst, netip.AddrFrom4([4]byte(b)))
	}
	return dst
}

// configInto decodes a config into the reusable scratch, allocating
// nothing: hostname entries are views into the payload, materialized
// only if the intern table has never seen the config.
func (r *byteReader) configInto(sc *scratchConfig, domain string) {
	sc.failed = r.u8Ctx(domain, "failed flag") == 1
	sc.nsHosts = r.hostsInto(sc.nsHosts, domain, "NS host")
	sc.nsAddrs = r.addrsInto(sc.nsAddrs, domain, "NS addr")
	sc.apexAddrs = r.addrsInto(sc.apexAddrs, domain, "apex addr")
	sc.mxHosts = r.hostsInto(sc.mxHosts, domain, "MX host")
}

// readFullN reads exactly n bytes without trusting n for the allocation:
// small reads go to an exact-size buffer, large ones grow with the data
// actually arriving, so a huge claimed length against a short input
// fails with bounded memory.
func readFullN(r io.Reader, n int) ([]byte, error) {
	const direct = 1 << 16
	if n <= direct {
		b := make([]byte, n)
		m, err := io.ReadFull(r, b)
		// On a short read, return only the bytes that arrived — callers
		// account torn tails by len(payload), which must not count the
		// promised length.
		return b[:m], err
	}
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return buf.Bytes(), err
	}
	return buf.Bytes(), nil
}

// readSection reads one length-framed section and verifies its checksum.
func readSection(r io.Reader, maxLen int, what string) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, corrupt("%s: reading section length: %v", what, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > int64(maxLen) {
		return nil, corrupt("%s: section length %d exceeds limit %d", what, n, maxLen)
	}
	payload, err := readFullN(r, int(n))
	if err != nil {
		return nil, corrupt("%s: reading %d-byte section: %v", what, n, err)
	}
	var crcb [4]byte
	if _, err := io.ReadFull(r, crcb[:]); err != nil {
		return nil, corrupt("%s: reading checksum: %v", what, err)
	}
	if got, want := crc32.Checksum(payload, crcTable), binary.BigEndian.Uint32(crcb[:]); got != want {
		return nil, corrupt("%s: checksum mismatch (%08x != %08x)", what, got, want)
	}
	return payload, nil
}

// readRecordSection is readSection for the i-th of n domain records,
// appending the record position only if the read actually fails (a
// Sprintf per record would be an allocation per domain at paper scale).
func readRecordSection(r io.Reader, i, n int) ([]byte, error) {
	payload, err := readSection(r, maxDomainRecordBytes, "domain record")
	if err != nil {
		return nil, fmt.Errorf("%v (record %d/%d)", err, i, n)
	}
	return payload, nil
}

// Recovery reports what a tolerant decode salvaged from a damaged file.
type Recovery struct {
	// Version is the decoded format version.
	Version int
	// Domains is the number of complete domain records decoded;
	// ExpectedDomains is what the header promised.
	Domains, ExpectedDomains int
	// GoodBytes is the length of the prefix that decoded cleanly.
	GoodBytes int64
	// Damaged is set when any part of the file could not be decoded;
	// Reason describes the first damage encountered.
	Damaged bool
	Reason  string
}

// Read deserializes a store written by WriteTo (any format version). It
// is strict: any truncation, checksum mismatch or implausible count
// yields a "store: corrupt:" error.
func Read(src io.Reader) (*Store, error) {
	s, rec, err := decode(src, false)
	if err != nil {
		return nil, err
	}
	if rec.Damaged {
		// Unreachable in strict mode, kept as a backstop.
		return nil, corrupt("%s", rec.Reason)
	}
	return s, nil
}

// ReadRecover is the truncation-tolerant decode: it returns every
// complete, checksum-valid domain record from a torn or bit-flipped
// file, plus a Recovery describing the damage. The error is non-nil
// only when even the header is unreadable.
func ReadRecover(src io.Reader) (*Store, *Recovery, error) {
	return decode(src, true)
}

func decode(src io.Reader, tolerant bool) (*Store, *Recovery, error) {
	var hdr [6]byte
	if _, err := io.ReadFull(src, hdr[:]); err != nil {
		return nil, nil, corrupt("reading header: %v", err)
	}
	if got := string(hdr[:4]); got != magic {
		return nil, nil, fmt.Errorf("store: bad magic %q", got)
	}
	v := binary.BigEndian.Uint16(hdr[4:])
	switch v {
	case 1, 2:
		return decodeLegacy(src, int(v), tolerant)
	case version:
		return decodeV3(src, tolerant)
	default:
		return nil, nil, fmt.Errorf("store: unsupported version %d", v)
	}
}

// ascending validates that decoded day lists are sorted (the in-memory
// invariant every consumer relies on).
func ascending(days []simtime.Day) bool {
	for i := 1; i < len(days); i++ {
		if days[i] <= days[i-1] {
			return false
		}
	}
	return true
}

// truncateRows discards column rows appended past mark: the decoders'
// rollback for a domain record that fails mid-parse (only complete
// records count as recovered).
func (s *Store) truncateRows(mark int) {
	s.epochFrom = s.epochFrom[:mark]
	s.epochLast = s.epochLast[:mark]
	s.epochCfg = s.epochCfg[:mark]
}

// adoptTailRows registers name as owning the nRows rows at the column
// tail. The decoders append one domain's rows contiguously and then
// adopt them, so a failed record never leaves a registered domain
// behind.
func (s *Store) adoptTailRows(name string, nRows int) {
	d := uint32(len(s.names))
	s.byName[name] = d
	s.names = append(s.names, name)
	s.off = append(s.off, uint32(len(s.epochFrom)-nRows))
	s.cnt = append(s.cnt, uint32(nRows))
	s.nameBytes += int64(len(name))
	s.live += int64(nRows)
	s.index, s.order = nil, nil
}

func decodeV3(src io.Reader, tolerant bool) (*Store, *Recovery, error) {
	rec := &Recovery{Version: version}
	s := New()
	off := int64(6) // header already consumed

	damage := func(err error) (*Store, *Recovery, error) {
		if !tolerant {
			return nil, nil, err
		}
		rec.Damaged = true
		rec.Reason = err.Error()
		rec.GoodBytes = off
		s.rebuildNaive()
		return s, rec, nil
	}

	header := func(what string) ([]byte, error) {
		payload, err := readSection(src, maxHeaderSectionBytes, what)
		if err == nil {
			off += int64(8 + len(payload))
		}
		return payload, err
	}

	decodeDays := func(what string) ([]simtime.Day, error) {
		payload, err := header(what)
		if err != nil {
			return nil, err
		}
		r := &byteReader{b: payload}
		days := r.days(what)
		if r.err == nil && r.remaining() != 0 {
			r.fail("%s: %d trailing bytes in section", what, r.remaining())
		}
		if r.err == nil && !ascending(days) {
			r.fail("%s days not strictly ascending", what)
		}
		return days, r.err
	}

	var err error
	if s.sweeps, err = decodeDays("sweeps"); err != nil {
		return damage(err)
	}
	if s.missing, err = decodeDays("missing sweeps"); err != nil {
		return damage(err)
	}
	countPayload, err := header("domain count")
	if err != nil {
		return damage(err)
	}
	if len(countPayload) != 4 {
		return damage(corrupt("domain count section is %d bytes, want 4", len(countPayload)))
	}
	nDomains := int(binary.BigEndian.Uint32(countPayload))
	rec.ExpectedDomains = nDomains

	var sc scratchConfig
	var br byteReader
	for i := 0; i < nDomains; i++ {
		payload, err := readRecordSection(src, i+1, nDomains)
		if err != nil {
			return damage(err)
		}
		mark := len(s.epochFrom)
		name, nRows, err := s.decodeDomainRecord(payload, &br, &sc)
		if err != nil {
			return damage(err)
		}
		if _, dup := s.byName[name]; dup {
			s.truncateRows(mark)
			return damage(corrupt("duplicate domain record %q", name))
		}
		off += int64(8 + len(payload))
		s.adoptTailRows(name, nRows)
		rec.Domains++
	}
	rec.GoodBytes = off
	s.rebuildNaive()
	return s, rec, nil
}

// decodeDomainRecord parses one framed domain section payload, appending
// its epochs to the column tail (rolled back on error). It returns the
// domain name and the number of rows appended; the caller adopts them.
// r is caller-owned scratch, reset here, so record decode allocates only
// the name string and whatever interning a never-seen config requires.
func (s *Store) decodeDomainRecord(payload []byte, r *byteReader, sc *scratchConfig) (string, int, error) {
	*r = byteReader{b: payload}
	name := r.str("domain name")
	// Minimum epoch: from+lastSeen (8) + failed (1) + four empty counts (8).
	nEpochs := r.count32Ctx(17, name, "epoch")
	if r.err != nil {
		return "", 0, r.err
	}
	mark := len(s.epochFrom)
	for j := 0; j < nEpochs && r.err == nil; j++ {
		from := simtime.Day(r.i32Ctx(name, "epoch from"))
		last := simtime.Day(r.i32Ctx(name, "epoch lastSeen"))
		r.configInto(sc, name)
		if r.err != nil {
			break
		}
		s.epochFrom = append(s.epochFrom, from)
		s.epochLast = append(s.epochLast, last)
		s.epochCfg = append(s.epochCfg, s.intern.internScratch(sc))
	}
	if r.err == nil && r.remaining() != 0 {
		r.fail("%s: %d trailing bytes in domain record", name, r.remaining())
	}
	if r.err != nil {
		s.truncateRows(mark)
		return "", 0, r.err
	}
	return name, len(s.epochFrom) - mark, nil
}

// capHint bounds a pre-allocation by what the input could plausibly
// hold: legacy (unframed) streams carry counts we cannot validate
// against a payload length, so allocations grow with the data actually
// read instead of trusting the field.
func capHint(n, max int) int {
	if n > max {
		return max
	}
	return n
}

// decodeLegacy reads the unframed version 1/2 stream. Counts cannot be
// checked against a section length here, so allocations are capped and
// truncation surfaces as a read error at the point the data runs out.
// Epochs land in the columns exactly as in the v3 path; the transient
// per-epoch Config is tolerable because legacy files predate paper
// scale.
func decodeLegacy(src io.Reader, v int, tolerant bool) (*Store, *Recovery, error) {
	rec := &Recovery{Version: v}
	r := &reader{r: bufio.NewReader(src)}
	s := New()
	nSweeps := int(r.u32())
	for i := 0; i < nSweeps && r.err == nil; i++ {
		s.sweeps = append(s.sweeps, simtime.Day(r.i32()))
	}
	if r.err == nil && !ascending(s.sweeps) {
		r.err = corrupt("sweep days not strictly ascending")
	}
	nDomains := int(r.u32())
	rec.ExpectedDomains = nDomains
	if r.err != nil {
		if tolerant {
			rec.Damaged = true
			rec.Reason = r.err.Error()
			return s, rec, nil
		}
		return nil, nil, r.err
	}
	for i := 0; i < nDomains; i++ {
		name := r.str()
		if _, dup := s.byName[name]; dup && r.err == nil {
			r.err = corrupt("duplicate domain record %q", name)
		}
		nEpochs := int(r.u32())
		mark := len(s.epochFrom)
		for j := 0; j < nEpochs && r.err == nil; j++ {
			from := simtime.Day(r.i32())
			last := simtime.Day(r.i32())
			var c Config
			flags := r.bytes(1)
			if flags != nil {
				c.Failed = flags[0] == 1
			}
			nHosts := int(r.u16())
			for k := 0; k < nHosts && r.err == nil; k++ {
				c.NSHosts = append(c.NSHosts, r.str())
			}
			c.NSAddrs = r.addrs()
			c.ApexAddrs = r.addrs()
			if v >= 2 {
				nMX := int(r.u16())
				for k := 0; k < nMX && r.err == nil; k++ {
					c.MXHosts = append(c.MXHosts, r.str())
				}
			}
			if r.err == nil {
				s.epochFrom = append(s.epochFrom, from)
				s.epochLast = append(s.epochLast, last)
				s.epochCfg = append(s.epochCfg, s.intern.intern(c))
			}
		}
		if r.err != nil {
			// Drop the partially-decoded domain: only complete records
			// count as recovered.
			s.truncateRows(mark)
			if tolerant {
				rec.Damaged = true
				rec.Reason = r.err.Error()
				s.rebuildNaive()
				return s, rec, nil
			}
			return nil, nil, corrupt("decode: %v", r.err)
		}
		s.adoptTailRows(name, len(s.epochFrom)-mark)
		rec.Domains++
	}
	s.rebuildNaive()
	return s, rec, nil
}

// rebuildNaive reconstructs the naive (one-record-per-sweep) count from
// the sweep schedule: each epoch spans the sweeps in [from, lastSeen].
func (s *Store) rebuildNaive() {
	s.naive = 0
	for d := range s.names {
		o, n := s.off[d], s.cnt[d]
		for j := uint32(0); j < n; j++ {
			s.naive += int64(countSweepsIn(s.sweeps, s.epochFrom[o+j], s.epochLast[o+j]))
		}
	}
}

// reader is the legacy streaming decoder.
type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = corrupt("decode: %v", err)
		return nil
	}
	return b
}

func (r *reader) u16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) i32() int32 { return int32(r.u32()) }

func (r *reader) str() string {
	n := int(r.u16())
	b := r.bytes(n)
	return string(b)
}

func (r *reader) addrs() []netip.Addr {
	n := int(r.u16())
	if n == 0 || r.err != nil {
		return nil
	}
	out := make([]netip.Addr, 0, capHint(n, 256))
	for i := 0; i < n; i++ {
		b := r.bytes(4)
		if b == nil {
			return nil
		}
		out = append(out, netip.AddrFrom4([4]byte(b)))
	}
	return out
}

// countSweepsIn counts schedule entries in [from, to].
func countSweepsIn(sweeps []simtime.Day, from, to simtime.Day) int {
	lo := sort.Search(len(sweeps), func(i int) bool { return sweeps[i] >= from })
	hi := sort.Search(len(sweeps), func(i int) bool { return sweeps[i] > to })
	if hi < lo {
		return 0
	}
	return hi - lo
}
