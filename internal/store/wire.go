package store

import (
	"fmt"

	"whereru/internal/simtime"
)

// Measurement batches are the store's third wire surface (after the store
// file and the sweep journal): one sweep day's observations for a
// contiguous slice of the zone inventory, serialized in the same
// domain+config layout the journal uses. internal/grid streams these
// between workers and the coordinator; keeping the codec here means the
// grid protocol cannot drift from the formats the store can persist.
//
// Layout:
//
//	day i32 | count u32 | per measurement: domain str | config
//
// (the codec's config layout: failed u8 | nsHosts | nsAddrs | apexAddrs |
// mxHosts). The batch carries no framing or checksum of its own — the
// transport that embeds it is responsible for integrity, exactly as the
// journal's segment framing is for journal payloads.

// maxBatchBytes bounds one encoded batch; it matches the journal's
// segment limit, which a full-scale sweep already fits inside.
const maxBatchBytes = maxJournalSegment

// EncodeMeasurementBatch serializes one day's measurements in the order
// given (callers that need a canonical order sort by domain first). Every
// measurement must carry the batch day; configs are normalized in place.
func EncodeMeasurementBatch(day simtime.Day, ms []Measurement) ([]byte, error) {
	var e encoder
	e.i32(int32(day))
	e.u32(len(ms), "batch measurement count")
	for _, m := range ms {
		if m.Day != day {
			return nil, fmt.Errorf("store: batch for %s holds a measurement for %s (%s)", day, m.Day, m.Domain)
		}
		e.str(m.Domain, "batch measurement domain")
		e.config(m.Config.Normalize(), m.Domain)
	}
	if e.err != nil {
		return nil, e.err
	}
	if e.buf.Len() > maxBatchBytes {
		return nil, fmt.Errorf("store: batch for %s is %d bytes (limit %d)", day, e.buf.Len(), maxBatchBytes)
	}
	return e.buf.Bytes(), nil
}

// DecodeMeasurementBatch parses a batch written by EncodeMeasurementBatch.
// Every count is validated against the bytes actually present before
// anything is allocated, and trailing garbage is rejected — the same
// strictness the journal decoder applies to its payloads.
func DecodeMeasurementBatch(b []byte) (simtime.Day, []Measurement, error) {
	if len(b) > maxBatchBytes {
		return 0, nil, corrupt("batch: %d bytes exceeds limit %d", len(b), maxBatchBytes)
	}
	r := &byteReader{b: b}
	day := simtime.Day(r.i32("batch day"))
	// Minimum measurement: name length (2) + failed (1) + 4 counts (8).
	n := r.count32(11, "batch measurement")
	if r.err != nil {
		return 0, nil, r.err
	}
	ms := make([]Measurement, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		var m Measurement
		m.Domain = r.str("batch measurement domain")
		m.Day = day
		m.Config = r.config(m.Domain)
		ms = append(ms, m)
	}
	if r.err == nil && r.remaining() != 0 {
		r.fail("batch: %d trailing bytes", r.remaining())
	}
	if r.err != nil {
		return 0, nil, r.err
	}
	return day, ms, nil
}
