package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"

	"whereru/internal/iofault"
	"whereru/internal/simtime"
)

// The sweep journal is the collection pipeline's crash-safety mechanism:
// an append-only file that gains one checksummed, length-framed segment
// per completed sweep, fsynced before the pipeline moves on. A crashed
// run resumes by replaying the journal's complete segments into a fresh
// store and continuing the schedule from the first unswept day; a tail
// torn by the crash fails its checksum (or its framing) and is dropped.
//
// File layout:
//
//	magic "WRJL" | version u16
//	per segment: payloadLen u32 | payload | crc32c(payload) u32
//	payload:
//	  kind u8 (0 = sweep, 1 = missing day)
//	  day i32
//	  kind 0 only:
//	    stats 6×u32 (domains, failed, nxdomain, retries, recovered,
//	    unreachable)
//	    measurementCount u32
//	    per measurement: domain str | failed u8 | nsHosts | nsAddrs |
//	      apexAddrs | mxHosts   (the codec's config layout)

const (
	journalMagic   = "WRJL"
	journalVersion = 1
	// maxJournalSegment bounds one segment; a sweep of every domain the
	// full-scale world holds fits comfortably.
	maxJournalSegment = 1 << 26

	segSweep   = 0
	segMissing = 1
)

// JournalStats carries one sweep's summary counters through the journal
// (mirroring openintel.SweepStats, which the store cannot import).
type JournalStats struct {
	Domains, Failed, NXDomain, Retries, Recovered, Unreachable int
}

// JournalSweep is one journaled schedule day: either a completed sweep
// with its measurements, or a missing-day marker (a scheduled day
// deliberately or accidentally not collected).
type JournalSweep struct {
	Day     simtime.Day
	Missing bool
	Stats   JournalStats
	// Measurements holds the sweep's observations, sorted by domain.
	Measurements []Measurement
}

// JournalReplay is the result of scanning a journal: the replayable
// records plus how much of the file was valid.
type JournalReplay struct {
	// Version is the decoded journal format version.
	Version int
	Sweeps  []JournalSweep
	// GoodBytes is the length of the valid prefix; TornBytes counts the
	// trailing bytes after it that failed framing or checksum (0 for a
	// clean file).
	GoodBytes int64
	TornBytes int64
}

// Torn reports whether the journal carried a damaged tail.
func (r *JournalReplay) Torn() bool { return r.TornBytes > 0 }

// Journal is an open sweep journal positioned for appending.
type Journal struct {
	f    iofault.File
	path string
	// off is the end of the last durable segment — the rollback point
	// when an append fails partway.
	off int64
	// Sync flushes an appended segment to stable storage; it defaults to
	// the file's fsync and exists as a hook for tests that count or fail
	// durability points.
	Sync func() error
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close closes the underlying file.
func (j *Journal) Close() error { return j.f.Close() }

// CreateJournal creates (or truncates) a journal at path and writes its
// header durably.
func CreateJournal(path string) (*Journal, error) {
	return CreateJournalFS(iofault.OS, path)
}

// CreateJournalFS is CreateJournal with the file I/O routed through
// fsys, so fault injection can exercise the header write.
func CreateJournalFS(fsys iofault.FS, path string) (*Journal, error) {
	f, err := iofault.Create(fsys, path)
	if err != nil {
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	j := &Journal{f: f, path: path}
	j.Sync = f.Sync
	var hdr [6]byte
	copy(hdr[:4], journalMagic)
	binary.BigEndian.PutUint16(hdr[4:], journalVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: journal: writing header: %w", err)
	}
	if err := j.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: journal: syncing header: %w", err)
	}
	j.off = 6
	return j, nil
}

// OpenJournal opens the journal at path for resuming, creating it fresh
// when absent. Every segment is length- and checksum-verified; a torn
// tail is truncated away in place so subsequent appends extend a valid
// file. The returned replay holds the surviving records (and TornBytes
// when a tail was dropped — callers should log that).
func OpenJournal(path string) (*Journal, *JournalReplay, error) {
	return OpenJournalFS(iofault.OS, path)
}

// OpenJournalFS is OpenJournal with the file I/O routed through fsys.
func OpenJournalFS(fsys iofault.FS, path string) (*Journal, *JournalReplay, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: journal: %w", err)
	}
	j := &Journal{f: f, path: path}
	j.Sync = f.Sync
	if st.Size() > 0 && st.Size() < 6 {
		// Shorter than the header: a crash tore the journal's very
		// creation. Nothing could have been journaled yet, so reset to
		// empty and write a fresh header below. (A full-size file with a
		// wrong header stays an error — that is a foreign file, not a
		// torn one.)
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: journal: resetting torn header: %w", err)
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: journal: %w", err)
		}
		st = nil
	}
	if st == nil || st.Size() == 0 {
		// Fresh file: write the header as CreateJournal would.
		var hdr [6]byte
		copy(hdr[:4], journalMagic)
		binary.BigEndian.PutUint16(hdr[4:], journalVersion)
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: journal: writing header: %w", err)
		}
		if err := j.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: journal: syncing header: %w", err)
		}
		j.off = 6
		return j, &JournalReplay{GoodBytes: 6}, nil
	}
	replay, err := DecodeJournal(bufio.NewReader(f))
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if replay.Torn() {
		if err := f.Truncate(replay.GoodBytes); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: journal: truncating torn tail: %w", err)
		}
		// The truncation must be durable before new segments land after
		// it: otherwise a second crash can resurrect the torn bytes
		// underneath a fresh segment's framing.
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: journal: syncing truncated tail: %w", err)
		}
	}
	if _, err := f.Seek(replay.GoodBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: journal: %w", err)
	}
	j.off = replay.GoodBytes
	return j, replay, nil
}

// AppendSweep encodes rec as one checksummed segment, appends it and
// fsyncs, so the sweep is durable before the pipeline moves to the next
// day. Measurements are normalized and sorted by domain first, making
// the journal's bytes deterministic regardless of worker interleaving.
//
// A failed append — a short write, a full disk, a failed fsync — rolls
// the file back to the end of the last durable segment before
// returning, so the journal stays clean and the same Journal (or a
// reopened one) can retry or resume once the condition clears. The
// returned error wraps the cause (e.g. syscall.ENOSPC), letting callers
// distinguish a full disk from torn hardware.
func (j *Journal) AppendSweep(rec JournalSweep) error {
	frame, err := encodeJournalSegment(rec)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(frame); err != nil {
		j.rollback()
		return fmt.Errorf("store: journal: appending %s: %w", rec.Day, err)
	}
	if err := j.Sync(); err != nil {
		j.rollback()
		return fmt.Errorf("store: journal: syncing %s: %w", rec.Day, err)
	}
	j.off += int64(len(frame))
	return nil
}

// rollback drops a partially appended segment, restoring the file to
// the end of the last durable one. Best-effort: if the disk is failing
// hard enough that even the truncate cannot land, the checksummed
// framing still fences the torn bytes off at the next open.
func (j *Journal) rollback() {
	if err := j.f.Truncate(j.off); err != nil {
		return
	}
	j.f.Seek(j.off, io.SeekStart)
	j.f.Sync()
}

func encodeJournalSegment(rec JournalSweep) ([]byte, error) {
	var e encoder
	if rec.Missing {
		e.u8(segMissing)
		e.i32(int32(rec.Day))
	} else {
		e.u8(segSweep)
		e.i32(int32(rec.Day))
		for _, v := range []int{rec.Stats.Domains, rec.Stats.Failed, rec.Stats.NXDomain,
			rec.Stats.Retries, rec.Stats.Recovered, rec.Stats.Unreachable} {
			e.u32(v, "sweep stat")
		}
		ms := append([]Measurement(nil), rec.Measurements...)
		sort.Slice(ms, func(i, k int) bool { return ms[i].Domain < ms[k].Domain })
		e.u32(len(ms), "measurement count")
		for _, m := range ms {
			e.str(m.Domain, "measurement domain")
			e.config(m.Config.Normalize(), m.Domain)
		}
	}
	if e.err != nil {
		return nil, e.err
	}
	payload := e.buf.Bytes()
	if len(payload) > maxJournalSegment {
		return nil, fmt.Errorf("store: journal: segment for %s is %d bytes (limit %d)", rec.Day, len(payload), maxJournalSegment)
	}
	frame := make([]byte, 0, len(payload)+8)
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.BigEndian.AppendUint32(frame, crc32.Checksum(payload, crcTable))
	return frame, nil
}

// DecodeJournal scans journal bytes from r: it validates the header,
// then reads segments until the input ends or a segment fails framing
// or checksum. Damage never yields an error — it ends the valid prefix,
// and the remaining input is counted into TornBytes. The error is
// non-nil only for an unreadable or mismatched header.
func DecodeJournal(r io.Reader) (*JournalReplay, error) {
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, corrupt("journal: reading header: %v", err)
	}
	if got := string(hdr[:4]); got != journalMagic {
		return nil, fmt.Errorf("store: journal: bad magic %q", got)
	}
	if v := binary.BigEndian.Uint16(hdr[4:]); v != journalVersion {
		return nil, fmt.Errorf("store: journal: unsupported version %d", v)
	}
	replay := &JournalReplay{Version: journalVersion, GoodBytes: 6}
	for {
		frameLen, rec, err := readJournalSegment(r)
		if err == io.EOF {
			return replay, nil
		}
		if err != nil {
			// Torn or corrupt from here on: everything already consumed
			// for this segment plus whatever follows is unrecoverable.
			rest, _ := io.Copy(io.Discard, r)
			replay.TornBytes = frameLen + rest
			return replay, nil
		}
		replay.Sweeps = append(replay.Sweeps, rec)
		replay.GoodBytes += frameLen
	}
}

// readJournalSegment reads one segment, returning the bytes it consumed
// (even on failure, so the caller can account for them), the decoded
// record, and io.EOF at a clean end of input.
func readJournalSegment(r io.Reader) (int64, JournalSweep, error) {
	var rec JournalSweep
	var hdr [4]byte
	n, err := io.ReadFull(r, hdr[:])
	if err == io.EOF {
		return 0, rec, io.EOF
	}
	if err != nil {
		return int64(n), rec, corrupt("journal: torn segment length")
	}
	payloadLen := binary.BigEndian.Uint32(hdr[:])
	if payloadLen > maxJournalSegment {
		return int64(n), rec, corrupt("journal: segment length %d exceeds limit", payloadLen)
	}
	payload, err := readFullN(r, int(payloadLen))
	if err != nil {
		return int64(n + len(payload)), rec, corrupt("journal: torn segment payload")
	}
	var crcb [4]byte
	cn, err := io.ReadFull(r, crcb[:])
	consumed := int64(n) + int64(payloadLen) + int64(cn)
	if err != nil {
		return consumed, rec, corrupt("journal: torn segment checksum")
	}
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(crcb[:]) {
		return consumed, rec, corrupt("journal: segment checksum mismatch")
	}
	rec, derr := decodeJournalPayload(payload)
	if derr != nil {
		return consumed, rec, derr
	}
	return consumed, rec, nil
}

func decodeJournalPayload(payload []byte) (JournalSweep, error) {
	var rec JournalSweep
	r := &byteReader{b: payload}
	kind := r.u8("segment kind")
	rec.Day = simtime.Day(r.i32("sweep day"))
	switch kind {
	case segMissing:
		rec.Missing = true
	case segSweep:
		stats := []*int{&rec.Stats.Domains, &rec.Stats.Failed, &rec.Stats.NXDomain,
			&rec.Stats.Retries, &rec.Stats.Recovered, &rec.Stats.Unreachable}
		for _, p := range stats {
			v := r.u32("sweep stat")
			if v > math.MaxInt32 {
				r.fail("sweep stat %d implausibly large", v)
			}
			*p = v
		}
		// Minimum measurement: name length (2) + failed (1) + 4 counts (8).
		nMeas := r.count32(11, "measurement")
		if r.err != nil {
			return rec, r.err
		}
		rec.Measurements = make([]Measurement, 0, nMeas)
		for i := 0; i < nMeas && r.err == nil; i++ {
			var m Measurement
			m.Domain = r.str("measurement domain")
			m.Day = rec.Day
			m.Config = r.config(m.Domain)
			rec.Measurements = append(rec.Measurements, m)
		}
	default:
		r.fail("journal: unknown segment kind %d", kind)
	}
	if r.err == nil && r.remaining() != 0 {
		r.fail("journal: %d trailing bytes in segment", r.remaining())
	}
	if r.err != nil {
		return rec, r.err
	}
	return rec, nil
}

// VerifyJournal scans the journal file at path without opening it for
// appending: the workbench and fsck entry point.
func VerifyJournal(path string) (*JournalReplay, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, f); err != nil {
		return nil, err
	}
	return DecodeJournal(&buf)
}

// RepairJournal truncates the journal at path to its valid prefix,
// dropping a torn tail. It reports the replay after repair.
func RepairJournal(path string) (*JournalReplay, error) {
	return RepairJournalFS(iofault.OS, path)
}

// RepairJournalFS is RepairJournal with the file I/O routed through
// fsys, so the chaos matrix can crash the repair itself.
func RepairJournalFS(fsys iofault.FS, path string) (*JournalReplay, error) {
	j, replay, err := OpenJournalFS(fsys, path)
	if err != nil {
		return nil, err
	}
	return replay, j.Close()
}
