package store

import (
	"io"
	"sort"
	"sync"

	"whereru/internal/simtime"
)

// ReferenceStore is the pre-columnar store representation — a
// map[string]*series of fat per-epoch structs — kept as the equivalence
// oracle for the columnar Store. It is deliberately simple and
// allocation-heavy: its job is to be obviously correct so tests can feed
// both stores the same measurement stream and byte-compare the results
// (WriteTo output, At/History answers, report bytes downstream).
//
// It lives in the main package (no build tag) so equivalence tests in
// other packages can construct it, but nothing outside tests should: the
// columnar Store is the production representation.
type ReferenceStore struct {
	mu      sync.RWMutex
	domains map[string]*refSeries
	sweeps  []simtime.Day
	missing []simtime.Day
	naive   int64
}

type refEpoch struct {
	from, lastSeen simtime.Day
	config         Config
}

type refSeries struct {
	epochs []refEpoch // sorted by from
}

// NewReference returns an empty reference store.
func NewReference() *ReferenceStore {
	return &ReferenceStore{domains: make(map[string]*refSeries)}
}

// BeginSweep registers a sweep day (chronological order required).
func (s *ReferenceStore) BeginSweep(day simtime.Day) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.sweeps); n == 0 || s.sweeps[n-1] < day {
		s.sweeps = append(s.sweeps, day)
	}
}

// MarkMissingSweep records a scheduled-but-uncollected sweep day.
func (s *ReferenceStore) MarkMissingSweep(day simtime.Day) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := sort.Search(len(s.missing), func(i int) bool { return s.missing[i] >= day })
	if i < len(s.missing) && s.missing[i] == day {
		return
	}
	s.missing = append(s.missing, 0)
	copy(s.missing[i+1:], s.missing[i:])
	s.missing[i] = day
}

// Add records a measurement with the same epoch-compression rule as
// Store.Add: extend the tail epoch when the normalized config is Equal,
// else open a new epoch.
func (s *ReferenceStore) Add(m Measurement) {
	cfg := m.Config.Normalize()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.naive++
	ds, ok := s.domains[m.Domain]
	if !ok {
		ds = &refSeries{}
		s.domains[m.Domain] = ds
	}
	if n := len(ds.epochs); n > 0 && ds.epochs[n-1].config.Equal(cfg) && ds.epochs[n-1].lastSeen <= m.Day {
		ds.epochs[n-1].lastSeen = m.Day
		return
	}
	ds.epochs = append(ds.epochs, refEpoch{from: m.Day, lastSeen: m.Day, config: cfg})
}

// At returns the configuration at the most recent sweep at or before day.
func (s *ReferenceStore) At(domain string, day simtime.Day) (Config, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, ok := s.domains[domain]
	if !ok {
		return Config{}, false
	}
	es := ds.epochs
	i := sort.Search(len(es), func(i int) bool { return es[i].from > day })
	if i == 0 {
		return Config{}, false
	}
	return es[i-1].config, true
}

// MeasuredOn mirrors Store.MeasuredOn.
func (s *ReferenceStore) MeasuredOn(domain string, day simtime.Day) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, ok := s.domains[domain]
	if !ok {
		return false
	}
	es := ds.epochs
	i := sort.Search(len(es), func(i int) bool { return es[i].from > day })
	if i == 0 {
		return false
	}
	return i < len(es) || es[i-1].lastSeen >= day
}

// Domains returns the sorted domain names.
func (s *ReferenceStore) Domains() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.domains))
	for d := range s.domains {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Sweeps returns the recorded sweep days.
func (s *ReferenceStore) Sweeps() []simtime.Day {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]simtime.Day(nil), s.sweeps...)
}

// MissingSweeps returns the scheduled-but-uncollected sweep days.
func (s *ReferenceStore) MissingSweeps() []simtime.Day {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]simtime.Day(nil), s.missing...)
}

// History mirrors Store.History.
func (s *ReferenceStore) History(domain string) []Measurement {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, ok := s.domains[domain]
	if !ok {
		return nil
	}
	out := make([]Measurement, len(ds.epochs))
	for i, e := range ds.epochs {
		out[i] = Measurement{Domain: domain, Day: e.from, Config: e.config}
	}
	return out
}

// Stats mirrors Store.Stats.
func (s *ReferenceStore) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var epochs int64
	for _, ds := range s.domains {
		epochs += int64(len(ds.epochs))
	}
	return Stats{Domains: len(s.domains), Epochs: epochs, NaiveRecords: s.naive}
}

// WriteTo serializes in the version-3 format through the same
// sectionWriter as Store.WriteTo, so the two representations produce
// byte-identical files for identical contents — the core equivalence
// property the oracle exists to check.
func (s *ReferenceStore) WriteTo(w io.Writer) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx := make([]string, 0, len(s.domains))
	for d := range s.domains {
		idx = append(idx, d)
	}
	sort.Strings(idx)
	sw := newSectionWriter(w)
	if err := sw.section(func(e *encoder) { e.days(s.sweeps, "sweep") }); err != nil {
		return sw.cw.n, err
	}
	if err := sw.section(func(e *encoder) { e.days(s.missing, "missing sweep") }); err != nil {
		return sw.cw.n, err
	}
	if err := sw.section(func(e *encoder) { e.u32(len(idx), "domain count") }); err != nil {
		return sw.cw.n, err
	}
	for _, name := range idx {
		es := s.domains[name].epochs
		err := sw.section(func(e *encoder) {
			e.str(name, "domain name")
			e.u32(len(es), name+" epoch count")
			for _, ep := range es {
				e.i32(int32(ep.from))
				e.i32(int32(ep.lastSeen))
				e.config(ep.config, name)
			}
		})
		if err != nil {
			return sw.cw.n, err
		}
	}
	return sw.close()
}
