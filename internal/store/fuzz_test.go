package store

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzSeeds returns valid encodings in every supported version plus a
// journal, so the fuzzers start from structurally meaningful corpora.
func fuzzSeedStore() ([]byte, []byte, []byte) {
	s := buildStore(4)
	var v3 bytes.Buffer
	if _, err := s.WriteTo(&v3); err != nil {
		panic(err)
	}
	v2 := legacyEncode(2, s)
	v1 := legacyEncode(1, buildStoreOpts(3, false))
	return v3.Bytes(), v2, v1
}

// FuzzStoreRead asserts the decoders never panic or over-allocate on
// arbitrary input, and that anything the strict decoder accepts
// round-trips through the v3 encoder unchanged.
func FuzzStoreRead(f *testing.F) {
	v3, v2, v1 := fuzzSeedStore()
	f.Add(v3)
	f.Add(v2)
	f.Add(v1)
	// Truncations and bit flips of the valid encodings.
	for _, seed := range [][]byte{v3, v2, v1} {
		f.Add(seed[:len(seed)/2])
		f.Add(seed[:len(seed)-3])
		flipped := append([]byte(nil), seed...)
		flipped[len(flipped)/3] ^= 0x10
		f.Add(flipped)
	}
	f.Add([]byte("WRST"))
	f.Add([]byte("WRST\x00\x03\x00\x00\xff\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			if s != nil {
				t.Fatal("strict Read returned both store and error")
			}
		} else {
			// Accepted input must round-trip: encode to v3, read back, equal.
			var buf bytes.Buffer
			if _, werr := s.WriteTo(&buf); werr != nil {
				t.Fatalf("re-encode of accepted input failed: %v", werr)
			}
			back, rerr := Read(bytes.NewReader(buf.Bytes()))
			if rerr != nil {
				t.Fatalf("re-read failed: %v", rerr)
			}
			if !reflect.DeepEqual(s.Sweeps(), back.Sweeps()) ||
				!reflect.DeepEqual(s.MissingSweeps(), back.MissingSweeps()) ||
				!reflect.DeepEqual(s.Domains(), back.Domains()) {
				t.Fatal("round trip diverged")
			}
		}
		// The tolerant decoder must hold its invariants on the same input.
		rs, rec, rerr := ReadRecover(bytes.NewReader(data))
		if rerr == nil {
			if rec.GoodBytes > int64(len(data)) {
				t.Fatalf("GoodBytes %d exceeds input %d", rec.GoodBytes, len(data))
			}
			if got := len(rs.Domains()); got != rec.Domains {
				t.Fatalf("recovered %d domains, Recovery says %d", got, rec.Domains)
			}
			if err == nil && rec.Damaged {
				t.Fatal("strict accepted what tolerant flagged damaged")
			}
		}
	})
}

// FuzzJournalReplay asserts journal scanning never panics and that the
// valid prefix it reports is itself a clean journal.
func FuzzJournalReplay(f *testing.F) {
	// Build a small valid journal in memory via the segment encoder.
	var buf bytes.Buffer
	buf.WriteString("WRJL\x00\x01")
	for _, rec := range []JournalSweep{
		sweepRec(10, "a.ru.", "b.ru."),
		{Day: 17, Missing: true},
		sweepRec(24, "a.ru."),
	} {
		frame, err := encodeJournalSegment(rec)
		if err != nil {
			f.Fatal(err)
		}
		buf.Write(frame)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x04
	f.Add(flipped)
	f.Add([]byte("WRJL\x00\x01"))
	f.Add([]byte("WRJL\x00\x01\xff\xff\xff\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		replay, err := DecodeJournal(bytes.NewReader(data))
		if err != nil {
			return // unreadable header
		}
		if replay.GoodBytes < 6 || replay.GoodBytes > int64(len(data)) {
			t.Fatalf("GoodBytes %d out of range for %d-byte input", replay.GoodBytes, len(data))
		}
		// The reported valid prefix must itself decode cleanly with the
		// same records — this is what OpenJournal truncates to.
		prefix, perr := DecodeJournal(bytes.NewReader(data[:replay.GoodBytes]))
		if perr != nil {
			t.Fatalf("valid prefix failed to decode: %v", perr)
		}
		if prefix.Torn() {
			t.Fatal("valid prefix reported torn")
		}
		if len(prefix.Sweeps) != len(replay.Sweeps) {
			t.Fatalf("prefix has %d sweeps, replay had %d", len(prefix.Sweeps), len(replay.Sweeps))
		}
	})
}
