package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"whereru/internal/simtime"
)

// cloneConfig deep-copies a config so the same logical measurement can be
// handed to two stores without either seeing the other's normalization
// (Normalize sorts in place).
func cloneConfig(c Config) Config {
	return Config{
		NSHosts:   append([]string(nil), c.NSHosts...),
		NSAddrs:   append([]netip.Addr(nil), c.NSAddrs...),
		ApexAddrs: append([]netip.Addr(nil), c.ApexAddrs...),
		MXHosts:   append([]string(nil), c.MXHosts...),
		Failed:    c.Failed,
	}
}

// randConfig draws from a small provider pool so configs repeat (the
// redundancy interning exploits) while still exercising variety: shuffled
// section orders, duplicate hosts, empty sections, failures.
func randConfig(rng *rand.Rand) Config {
	if rng.Intn(20) == 0 {
		return Config{Failed: true}
	}
	var c Config
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		c.NSHosts = append(c.NSHosts, fmt.Sprintf("ns%d.prov%d.ru.", rng.Intn(3), rng.Intn(4)))
	}
	if rng.Intn(8) == 0 { // duplicate host entry
		c.NSHosts = append(c.NSHosts, c.NSHosts[0])
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		c.NSAddrs = append(c.NSAddrs, netip.AddrFrom4([4]byte{11, byte(rng.Intn(4)), 0, byte(1 + rng.Intn(3))}))
	}
	for i, n := 0, rng.Intn(2); i < n; i++ {
		c.ApexAddrs = append(c.ApexAddrs, netip.AddrFrom4([4]byte{11, byte(rng.Intn(4)), 1, byte(1 + rng.Intn(3))}))
	}
	if rng.Intn(2) == 0 {
		c.MXHosts = append(c.MXHosts, fmt.Sprintf("mx.prov%d.ru.", rng.Intn(4)))
	}
	rng.Shuffle(len(c.NSHosts), func(i, j int) { c.NSHosts[i], c.NSHosts[j] = c.NSHosts[j], c.NSHosts[i] })
	return c
}

// feedBoth drives the columnar store and the reference oracle with an
// identical randomized measurement stream: domains churn in and out of
// sweeps (forcing row relocation and compaction in the columnar layout)
// and some scheduled days go missing.
func feedBoth(t *testing.T, seed int64, nDomains, nSweeps int) (*Store, *ReferenceStore) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	col, ref := New(), NewReference()
	for i := 0; i < nSweeps; i++ {
		day := simtime.Day(600 + i*3)
		if rng.Intn(12) == 0 {
			col.MarkMissingSweep(day)
			ref.MarkMissingSweep(day)
			continue
		}
		col.BeginSweep(day)
		ref.BeginSweep(day)
		for j := 0; j < nDomains; j++ {
			if rng.Intn(5) == 0 {
				continue // domain absent this sweep
			}
			c := randConfig(rng)
			name := fmt.Sprintf("dom%03d.ru.", j)
			col.Add(Measurement{Domain: name, Day: day, Config: cloneConfig(c)})
			ref.Add(Measurement{Domain: name, Day: day, Config: cloneConfig(c)})
		}
	}
	return col, ref
}

// assertEquivalent checks every public read surface of the columnar store
// against the oracle, then byte-compares the serialized files.
func assertEquivalent(t *testing.T, col *Store, ref *ReferenceStore) {
	t.Helper()
	if !reflect.DeepEqual(col.Sweeps(), ref.Sweeps()) {
		t.Fatalf("sweeps differ: %v vs %v", col.Sweeps(), ref.Sweeps())
	}
	if !reflect.DeepEqual(col.MissingSweeps(), ref.MissingSweeps()) {
		t.Fatalf("missing sweeps differ: %v vs %v", col.MissingSweeps(), ref.MissingSweeps())
	}
	if !reflect.DeepEqual(col.Domains(), ref.Domains()) {
		t.Fatalf("domains differ")
	}
	if cs, rs := col.Stats(), ref.Stats(); cs != rs {
		t.Fatalf("stats differ: %+v vs %+v", cs, rs)
	}
	doms := ref.Domains()
	sweeps := ref.Sweeps()
	probe := append([]simtime.Day(nil), sweeps...)
	if len(sweeps) > 0 {
		probe = append(probe, sweeps[0]-1, sweeps[len(sweeps)-1]+10, sweeps[0]+1)
	}
	for _, d := range doms {
		if !reflect.DeepEqual(col.History(d), ref.History(d)) {
			t.Fatalf("history differs for %s:\n%v\nvs\n%v", d, col.History(d), ref.History(d))
		}
		for _, day := range probe {
			cc, cok := col.At(d, day)
			rc, rok := ref.At(d, day)
			if cok != rok || (cok && !cc.Equal(rc)) {
				t.Fatalf("At(%s, %d) differs: (%v,%v) vs (%v,%v)", d, day, cc, cok, rc, rok)
			}
			if col.MeasuredOn(d, day) != ref.MeasuredOn(d, day) {
				t.Fatalf("MeasuredOn(%s, %d) differs", d, day)
			}
		}
	}
	// The snapshot view must agree with the oracle too.
	sn := col.Snapshot()
	if !reflect.DeepEqual(sn.Domains(), doms) {
		t.Fatalf("snapshot domains differ")
	}
	for i, d := range doms {
		for _, day := range probe {
			cc, cok := sn.At(i, day)
			rc, rok := ref.At(d, day)
			if cok != rok || (cok && !cc.Equal(rc)) {
				t.Fatalf("Snapshot.At(%s, %d) differs", d, day)
			}
			if sn.MeasuredAt(i, day) != ref.MeasuredOn(d, day) {
				t.Fatalf("Snapshot.MeasuredAt(%s, %d) differs", d, day)
			}
		}
	}
	// VisitEpochs must enumerate exactly the oracle's epochs, with day
	// ranges matching the epoch boundaries History exposes.
	type visit struct {
		domain string
		lo, hi int
	}
	var got []visit
	sn.ForEachEpochIn(sweeps, func(domain string, cfg Config, lo, hi int) {
		got = append(got, visit{domain, lo, hi})
	})
	var want []visit
	for _, d := range doms {
		h := ref.History(d)
		eps := epochsOfRef(ref, d)
		lo := 0
		for j := range h {
			start, end := eps[j].from, eps[j].lastSeen
			if j+1 < len(eps) {
				end = eps[j+1].from - 1
			}
			l := lo
			for l < len(sweeps) && sweeps[l] < start {
				l++
			}
			h2 := l
			for h2 < len(sweeps) && sweeps[h2] <= end {
				h2++
			}
			lo = h2
			if l < h2 {
				want = append(want, visit{d, l, h2})
			}
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("VisitEpochs enumeration differs:\n%v\nvs\n%v", got, want)
	}
	// Finally, the bytes: the two representations must serialize
	// identically.
	var cb, rb bytes.Buffer
	if _, err := col.WriteTo(&cb); err != nil {
		t.Fatalf("columnar WriteTo: %v", err)
	}
	if _, err := ref.WriteTo(&rb); err != nil {
		t.Fatalf("reference WriteTo: %v", err)
	}
	if !bytes.Equal(cb.Bytes(), rb.Bytes()) {
		t.Fatalf("serialized files differ: %d vs %d bytes", cb.Len(), rb.Len())
	}
}

func epochsOfRef(s *ReferenceStore, name string) []refEpoch {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, ok := s.domains[name]
	if !ok {
		return nil
	}
	return append([]refEpoch(nil), ds.epochs...)
}

func TestReferenceEquivalenceRandom(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		col, ref := feedBoth(t, seed, 40, 30)
		assertEquivalent(t, col, ref)
	}
}

// TestReferenceEquivalenceChurn interleaves domains aggressively so the
// columnar store relocates rows constantly and crosses its compaction
// threshold, then checks nothing observable changed.
func TestReferenceEquivalenceChurn(t *testing.T) {
	col, ref := New(), NewReference()
	for i := 0; i < 60; i++ {
		day := simtime.Day(700 + i)
		col.BeginSweep(day)
		ref.BeginSweep(day)
		for j := 0; j < 30; j++ {
			// Alternate each domain's config every sweep: every Add opens a
			// new epoch, so every non-tail domain relocates every sweep.
			c := cfg(
				[]string{fmt.Sprintf("ns%d.p%d.ru.", (i+j)%2, j%3)},
				[]string{fmt.Sprintf("11.0.%d.%d", (i+j)%2, j%3+1)},
				nil,
			)
			name := fmt.Sprintf("churn%02d.ru.", j)
			col.Add(Measurement{Domain: name, Day: day, Config: cloneConfig(c)})
			ref.Add(Measurement{Domain: name, Day: day, Config: cloneConfig(c)})
		}
	}
	assertEquivalent(t, col, ref)
}

// TestReferenceEquivalenceAdversarial covers the normalization edge
// cases: duplicate hosts, mixed case (distinct configs — Normalize sorts
// but never folds case), empty vs nil sections, failures, same-day
// re-measurement.
func TestReferenceEquivalenceAdversarial(t *testing.T) {
	col, ref := New(), NewReference()
	cases := []Config{
		{NSHosts: []string{"b.ru.", "a.ru.", "b.ru."}}, // dup + unsorted
		{NSHosts: []string{"B.ru.", "a.ru."}},          // mixed case stays distinct
		{NSHosts: []string{}, MXHosts: []string{}},     // empty non-nil sections
		{},                                      // all nil
		{Failed: true},                          // failure epoch
		{MXHosts: []string{"mx.ru.", "MX.ru."}}, // case-distinct MX
		{NSHosts: []string{"a.ru.", "a.ru.", "a.ru."}}, // triple dup
		{NSHosts: []string{"b.ru.", "a.ru."}},          // same set as case 0 minus dup
	}
	day := simtime.Day(100)
	for i, c := range cases {
		col.BeginSweep(day)
		ref.BeginSweep(day)
		name := fmt.Sprintf("adv%d.ru.", i%4) // reuse names so configs alternate
		col.Add(Measurement{Domain: name, Day: day, Config: cloneConfig(c)})
		ref.Add(Measurement{Domain: name, Day: day, Config: cloneConfig(c)})
		// Same-day duplicate measurement exercises the lastSeen <= day rule.
		col.Add(Measurement{Domain: name, Day: day, Config: cloneConfig(c)})
		ref.Add(Measurement{Domain: name, Day: day, Config: cloneConfig(c)})
		day += 7
	}
	assertEquivalent(t, col, ref)
}

// TestReferenceEquivalenceJournalReplay replays one journal into both
// representations and byte-compares the stores they produce — the
// crash-resume path must be as representation-independent as the clean
// path.
func TestReferenceEquivalenceJournalReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.journal")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		day := simtime.Day(300 + i*3)
		rec := JournalSweep{Day: day}
		if i == 4 {
			rec.Missing = true
		} else {
			for jdx := 0; jdx < 12; jdx++ {
				if rng.Intn(4) == 0 {
					continue
				}
				rec.Measurements = append(rec.Measurements, Measurement{
					Domain: fmt.Sprintf("jr%02d.ru.", jdx),
					Day:    day,
					Config: randConfig(rng),
				})
			}
		}
		if err := j.AppendSweep(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	replay, err := DecodeJournal(f)
	if err != nil {
		t.Fatal(err)
	}
	col, ref := New(), NewReference()
	for _, sw := range replay.Sweeps {
		if sw.Missing {
			col.MarkMissingSweep(sw.Day)
			ref.MarkMissingSweep(sw.Day)
			continue
		}
		col.BeginSweep(sw.Day)
		ref.BeginSweep(sw.Day)
		for _, m := range sw.Measurements {
			col.Add(Measurement{Domain: m.Domain, Day: m.Day, Config: cloneConfig(m.Config)})
			ref.Add(Measurement{Domain: m.Domain, Day: m.Day, Config: cloneConfig(m.Config)})
		}
	}
	assertEquivalent(t, col, ref)
}

// TestReferenceEquivalenceFileRoundTrip writes the reference store's
// bytes and reads them back through the columnar decoder: decode of the
// oracle's file must re-encode to the identical bytes.
func TestReferenceEquivalenceFileRoundTrip(t *testing.T) {
	_, ref := feedBoth(t, 99, 25, 20)
	var rb bytes.Buffer
	if _, err := ref.WriteTo(&rb); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(rb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if _, err := back.WriteTo(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rb.Bytes(), again.Bytes()) {
		t.Fatalf("decode+re-encode of reference bytes changed them: %d vs %d bytes", rb.Len(), again.Len())
	}
}
