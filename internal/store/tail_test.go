package store

import (
	"context"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"
	"whereru/internal/simtime"
)

func tailRec(day int32, domain string) JournalSweep {
	return JournalSweep{
		Day:   simtime.Day(day),
		Stats: JournalStats{Domains: 1},
		Measurements: []Measurement{{
			Domain: domain,
			Day:    simtime.Day(day),
			Config: Config{
				NSHosts: []string{"ns1." + domain},
				NSAddrs: []netip.Addr{netip.MustParseAddr("192.0.2.1")},
			},
		}},
	}
}

func fastTail(t *testing.T, path string, off int64) *Tailer {
	t.Helper()
	tl, err := OpenTail(path, off)
	if err != nil {
		t.Fatal(err)
	}
	tl.SetPoll(5 * time.Millisecond)
	t.Cleanup(func() { tl.Close() })
	return tl
}

func TestTailerFollowsAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wrjl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.AppendSweep(tailRec(100, "a.ru.")); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSweep(JournalSweep{Day: simtime.Day(101), Missing: true}); err != nil {
		t.Fatal(err)
	}

	tl := fastTail(t, path, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	r1, err := tl.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Day != simtime.Day(100) || len(r1.Measurements) != 1 || r1.Measurements[0].Domain != "a.ru." {
		t.Fatalf("first segment = %+v", r1)
	}
	r2, err := tl.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Day != simtime.Day(101) || !r2.Missing {
		t.Fatalf("second segment = %+v", r2)
	}
	if lag := tl.Lag(); lag != 0 {
		t.Fatalf("caught-up Lag = %d, want 0", lag)
	}

	// A segment appended while the tailer is mid-Next must be delivered.
	go func() {
		time.Sleep(20 * time.Millisecond)
		j.AppendSweep(tailRec(102, "b.ru."))
	}()
	r3, err := tl.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Day != simtime.Day(102) {
		t.Fatalf("live segment day = %s", r3.Day)
	}
}

func TestTailerResumesFromOffset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wrjl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.AppendSweep(tailRec(100, "a.ru.")); err != nil {
		t.Fatal(err)
	}
	replay, err := VerifyJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSweep(tailRec(101, "b.ru.")); err != nil {
		t.Fatal(err)
	}

	tl := fastTail(t, path, replay.GoodBytes)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rec, err := tl.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Day != simtime.Day(101) {
		t.Fatalf("resumed tail saw day %s, want %s", rec.Day, simtime.Day(101))
	}
}

func TestTailerWaitsOutTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wrjl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSweep(tailRec(100, "a.ru.")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate a crashed writer: garbage beyond the last durable segment.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0x00, 0x00, 0x00, 0x20, 0xde, 0xad, 0xbe, 0xef}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tl := fastTail(t, path, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if rec, err := tl.Next(ctx); err != nil {
		t.Fatal(err)
	} else if rec.Day != simtime.Day(100) {
		t.Fatalf("day = %s", rec.Day)
	}
	// The torn tail must read as "no data yet", not as an error or a
	// record.
	short, scancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer scancel()
	if rec, err := tl.Next(short); err != context.DeadlineExceeded {
		t.Fatalf("torn tail yielded (%+v, %v), want deadline", rec, err)
	}

	// A resuming writer truncates the tear and appends; the tailer picks
	// that up transparently.
	j2, replay, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !replay.Torn() {
		t.Fatal("expected a torn tail")
	}
	if err := j2.AppendSweep(tailRec(101, "b.ru.")); err != nil {
		t.Fatal(err)
	}
	rec, err := tl.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Day != simtime.Day(101) {
		t.Fatalf("post-repair day = %s", rec.Day)
	}
}

func TestTailerRejectsTruncationBelowOffset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wrjl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSweep(tailRec(100, "a.ru.")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	tl := fastTail(t, path, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := tl.Next(ctx); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Next(ctx); err == nil || err == context.DeadlineExceeded {
		t.Fatalf("truncation below offset yielded %v, want a hard error", err)
	}
}

func TestTailerWaitsForFileCreation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wrjl")
	tl, err := OpenTail(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	tl.SetPoll(5 * time.Millisecond)
	go func() {
		time.Sleep(20 * time.Millisecond)
		j, err := CreateJournal(path)
		if err != nil {
			return
		}
		defer j.Close()
		j.AppendSweep(tailRec(100, "a.ru."))
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rec, err := tl.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Day != simtime.Day(100) {
		t.Fatalf("day = %s", rec.Day)
	}
}
