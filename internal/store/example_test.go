package store_test

import (
	"fmt"
	"net/netip"

	"whereru/internal/simtime"
	"whereru/internal/store"
)

// ExampleStore shows epoch compression: ten identical sweeps collapse
// into one epoch, and any measured day reconstructs.
func ExampleStore() {
	st := store.New()
	cfg := store.Config{
		NSHosts:   []string{"ns1.reg.ru."},
		ApexAddrs: []netip.Addr{netip.MustParseAddr("11.0.0.7")},
	}
	for i := 0; i < 10; i++ {
		day := simtime.Date(2022, 1, 1).Add(i * 7)
		st.BeginSweep(day)
		st.Add(store.Measurement{Domain: "example.ru.", Day: day, Config: cfg})
	}
	stats := st.Stats()
	fmt.Printf("%d sweeps stored as %d epoch(s)\n", stats.NaiveRecords, stats.Epochs)

	got, _ := st.At("example.ru.", simtime.Date(2022, 2, 10))
	fmt.Println("NS on 2022-02-10:", got.NSHosts[0])
	// Output:
	// 10 sweeps stored as 1 epoch(s)
	// NS on 2022-02-10: ns1.reg.ru.
}
