package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"reflect"
	"strings"
	"testing"

	"whereru/internal/simtime"
)

// buildStore populates a store with nDomains domains over a handful of
// sweeps, including config changes, a failed epoch, and missing days.
func buildStore(nDomains int) *Store { return buildStoreOpts(nDomains, true) }

func buildStoreOpts(nDomains int, withMX bool) *Store {
	s := New()
	for i := 0; i < 8; i++ {
		day := simtime.Day(500 + i*7)
		s.BeginSweep(day)
		for j := 0; j < nDomains; j++ {
			c := cfg(
				[]string{fmt.Sprintf("ns%d.prov%d.ru.", j%3, (j+i/4)%4)},
				[]string{fmt.Sprintf("11.%d.0.%d", j%4, j%3+1)},
				[]string{fmt.Sprintf("11.%d.1.%d", j%4, j%3+1)},
			)
			if withMX {
				c.MXHosts = []string{fmt.Sprintf("mx.prov%d.ru.", j%4)}
			}
			if j == 3 && i == 5 {
				c = Config{Failed: true}
			}
			s.Add(Measurement{Domain: fmt.Sprintf("dom%03d.ru.", j), Day: day, Config: c})
		}
	}
	s.MarkMissingSweep(521)
	s.MarkMissingSweep(507)
	return s
}

// epochView is a test-only materialized epoch; epochsOf reads a domain's
// rows out of the columns for fixtures that need raw epoch boundaries.
type epochView struct {
	from, lastSeen simtime.Day
	config         Config
}

func epochsOf(s *Store, name string) []epochView {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.byName[name]
	if !ok {
		return nil
	}
	o, n := s.off[d], s.cnt[d]
	out := make([]epochView, 0, n)
	for j := uint32(0); j < n; j++ {
		out = append(out, epochView{
			from:     s.epochFrom[o+j],
			lastSeen: s.epochLast[o+j],
			config:   s.intern.config(s.epochCfg[o+j]),
		})
	}
	return out
}

func storesEqual(t *testing.T, a, b *Store) {
	t.Helper()
	if !reflect.DeepEqual(a.Sweeps(), b.Sweeps()) {
		t.Fatalf("sweeps differ: %v vs %v", a.Sweeps(), b.Sweeps())
	}
	if !reflect.DeepEqual(a.MissingSweeps(), b.MissingSweeps()) {
		t.Fatalf("missing sweeps differ: %v vs %v", a.MissingSweeps(), b.MissingSweeps())
	}
	if !reflect.DeepEqual(a.Domains(), b.Domains()) {
		t.Fatalf("domains differ")
	}
	for _, d := range a.Domains() {
		if !reflect.DeepEqual(a.History(d), b.History(d)) {
			t.Fatalf("history differs for %s", d)
		}
	}
}

func TestCodecV3RoundTripWithMissingSweeps(t *testing.T) {
	s := buildStore(12)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	storesEqual(t, s, back)
	if got := back.MissingSweeps(); len(got) != 2 || got[0] != 507 || got[1] != 521 {
		t.Fatalf("MissingSweeps = %v", got)
	}
	// Naive-record accounting must survive the round trip (it feeds the
	// compression ablation).
	if s.Stats().NaiveRecords != back.Stats().NaiveRecords {
		t.Fatalf("naive records %d != %d", s.Stats().NaiveRecords, back.Stats().NaiveRecords)
	}
}

// TestReadRecoverTruncation cuts a valid v3 file at every byte length and
// asserts the tolerant decoder never panics, never errors past the
// header, and recovers exactly the domains whose sections survived.
func TestReadRecoverTruncation(t *testing.T) {
	s := buildStore(10)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	wantDomains := s.Domains()
	for cut := 0; cut <= len(full); cut++ {
		torn := full[:cut]
		back, rec, err := ReadRecover(bytes.NewReader(torn))
		if cut < 6 {
			if err == nil {
				t.Fatalf("cut=%d: torn header accepted", cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut=%d: ReadRecover error: %v", cut, err)
		}
		if cut < len(full) && !rec.Damaged {
			t.Fatalf("cut=%d: truncation not flagged as damage", cut)
		}
		if cut == len(full) && rec.Damaged {
			t.Fatalf("intact file flagged damaged: %s", rec.Reason)
		}
		if rec.GoodBytes > int64(cut) {
			t.Fatalf("cut=%d: GoodBytes %d exceeds input", cut, rec.GoodBytes)
		}
		// Recovered domains must be an exact prefix of the (sorted) encoded
		// order, each with its full history intact.
		got := back.Domains()
		if len(got) != rec.Domains {
			t.Fatalf("cut=%d: %d domains recovered, Recovery says %d", cut, len(got), rec.Domains)
		}
		if len(got) > len(wantDomains) {
			t.Fatalf("cut=%d: recovered more domains than written", cut)
		}
		for i, d := range got {
			if d != wantDomains[i] {
				t.Fatalf("cut=%d: recovered %q at %d, want %q", cut, d, i, wantDomains[i])
			}
			if !reflect.DeepEqual(back.History(d), s.History(d)) {
				t.Fatalf("cut=%d: recovered history for %s differs", cut, d)
			}
		}
	}
}

// TestReadRecoverBitFlip flips one byte inside a domain section: strict
// Read must reject the file, ReadRecover must salvage the domains before
// the damage.
func TestReadRecoverBitFlip(t *testing.T) {
	s := buildStore(10)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Flip a byte about 70% in: past the header sections, inside some
	// domain record's payload.
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)*7/10] ^= 0x40
	if _, err := Read(bytes.NewReader(flipped)); err == nil {
		t.Fatal("strict Read accepted a bit-flipped file")
	} else if !strings.Contains(err.Error(), "store: corrupt:") {
		t.Fatalf("error %q lacks store: corrupt: prefix", err)
	}
	back, rec, err := ReadRecover(bytes.NewReader(flipped))
	if err != nil {
		t.Fatalf("ReadRecover: %v", err)
	}
	if !rec.Damaged || rec.Reason == "" {
		t.Fatal("bit flip not reported as damage")
	}
	if rec.Domains >= rec.ExpectedDomains {
		t.Fatalf("recovered %d of %d domains despite damage", rec.Domains, rec.ExpectedDomains)
	}
	for _, d := range back.Domains() {
		if !reflect.DeepEqual(back.History(d), s.History(d)) {
			t.Fatalf("salvaged history for %s differs", d)
		}
	}
}

// TestReadRejectsHugeCounts builds inputs whose count fields promise far
// more data than the file holds: the decoder must fail with a corrupt
// error without attempting the implied allocation.
func TestReadRejectsHugeCounts(t *testing.T) {
	section := func(payload []byte) []byte {
		out := binary.BigEndian.AppendUint32(nil, uint32(len(payload)))
		out = append(out, payload...)
		return binary.BigEndian.AppendUint32(out, crcChecksum(payload))
	}
	header := append([]byte(magic), 0, version)

	// A sweeps section claiming a billion days in a 4-byte payload.
	huge := append([]byte(nil), header...)
	huge = append(huge, section(binary.BigEndian.AppendUint32(nil, 1_000_000_000))...)
	if _, err := Read(bytes.NewReader(huge)); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("billion-sweep file: err = %v", err)
	}

	// A domain record claiming a billion epochs.
	var e encoder
	e.str("x.ru.", "domain name")
	e.u32(1_000_000_000, "epoch count")
	emptyDays := binary.BigEndian.AppendUint32(nil, 0)
	rec := append([]byte(nil), header...)
	rec = append(rec, section(emptyDays)...)                             // no sweeps
	rec = append(rec, section(emptyDays)...)                             // no missing days
	rec = append(rec, section(binary.BigEndian.AppendUint32(nil, 1))...) // domain count
	rec = append(rec, section(e.buf.Bytes())...)                         // the hostile record
	if _, err := Read(bytes.NewReader(rec)); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("billion-epoch file: err = %v", err)
	}

	// Legacy v1 stream: 20 bytes claiming a billion domains.
	v1 := []byte("WRST\x00\x01")
	v1 = binary.BigEndian.AppendUint32(v1, 0)             // no sweeps
	v1 = binary.BigEndian.AppendUint32(v1, 1_000_000_000) // domains
	v1 = append(v1, 0, 3, 'x', '.', 'z')                  // one tiny name, then EOF
	if _, err := Read(bytes.NewReader(v1)); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("billion-domain v1 file: err = %v", err)
	}
}

func crcChecksum(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

func TestWriteToRejectsOverflow(t *testing.T) {
	hosts := make([]string, 70000)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("ns%d.ru.", i)
	}
	s := New()
	s.Add(Measurement{Domain: "big.ru.", Day: 1, Config: Config{NSHosts: hosts}})
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err == nil {
		t.Fatal("70k NS hosts silently truncated to u16")
	} else if !strings.Contains(err.Error(), "overflows u16") {
		t.Fatalf("err = %v, want u16 overflow", err)
	}
}

// legacyEncode writes the unframed v1/v2 stream format for compatibility
// fixtures (the current encoder only emits v3).
func legacyEncode(v int, s *Store) []byte {
	out := []byte(magic)
	out = append(out, 0, byte(v))
	sweeps := s.Sweeps()
	out = binary.BigEndian.AppendUint32(out, uint32(len(sweeps)))
	for _, d := range sweeps {
		out = binary.BigEndian.AppendUint32(out, uint32(int32(d)))
	}
	doms := s.Domains()
	out = binary.BigEndian.AppendUint32(out, uint32(len(doms)))
	str := func(x string) {
		out = binary.BigEndian.AppendUint16(out, uint16(len(x)))
		out = append(out, x...)
	}
	for _, name := range doms {
		str(name)
		eps := epochsOf(s, name)
		out = binary.BigEndian.AppendUint32(out, uint32(len(eps)))
		for _, ep := range eps {
			out = binary.BigEndian.AppendUint32(out, uint32(int32(ep.from)))
			out = binary.BigEndian.AppendUint32(out, uint32(int32(ep.lastSeen)))
			if ep.config.Failed {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
			out = binary.BigEndian.AppendUint16(out, uint16(len(ep.config.NSHosts)))
			for _, hst := range ep.config.NSHosts {
				str(hst)
			}
			out = binary.BigEndian.AppendUint16(out, uint16(len(ep.config.NSAddrs)))
			for _, a := range ep.config.NSAddrs {
				b := a.As4()
				out = append(out, b[:]...)
			}
			out = binary.BigEndian.AppendUint16(out, uint16(len(ep.config.ApexAddrs)))
			for _, a := range ep.config.ApexAddrs {
				b := a.As4()
				out = append(out, b[:]...)
			}
			if v >= 2 {
				out = binary.BigEndian.AppendUint16(out, uint16(len(ep.config.MXHosts)))
				for _, hst := range ep.config.MXHosts {
					str(hst)
				}
			}
		}
	}
	return out
}

// TestLegacyFormatsStillReadable pins v1/v2 compatibility: a handcrafted
// legacy stream decodes to the same store contents, and re-encoding it
// produces a valid v3 file.
func TestLegacyFormatsStillReadable(t *testing.T) {
	for _, v := range []int{1, 2} {
		// v1 predates MX collection, so its fixture carries none.
		s := buildStoreOpts(6, v >= 2)
		raw := legacyEncode(v, s)
		back, err := Read(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("v%d: Read: %v", v, err)
		}
		if !reflect.DeepEqual(s.Sweeps(), back.Sweeps()) {
			t.Fatalf("v%d: sweeps differ", v)
		}
		if !reflect.DeepEqual(s.Domains(), back.Domains()) {
			t.Fatalf("v%d: domains differ", v)
		}
		for _, d := range s.Domains() {
			if !reflect.DeepEqual(s.History(d), back.History(d)) {
				t.Fatalf("v%d: history differs for %s", v, d)
			}
		}
		// Upgrade path: legacy in, v3 out.
		var buf bytes.Buffer
		if _, err := back.WriteTo(&buf); err != nil {
			t.Fatalf("v%d: re-encode: %v", v, err)
		}
		again, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("v%d: re-read: %v", v, err)
		}
		storesEqual(t, back, again)

		// A truncated legacy stream recovers its complete domains.
		torn := raw[:len(raw)*2/3]
		rec, recovery, err := ReadRecover(bytes.NewReader(torn))
		if err != nil {
			t.Fatalf("v%d: ReadRecover(torn): %v", v, err)
		}
		if !recovery.Damaged {
			t.Fatalf("v%d: torn legacy stream not flagged", v)
		}
		for _, d := range rec.Domains() {
			if !reflect.DeepEqual(rec.History(d), s.History(d)) {
				t.Fatalf("v%d: recovered legacy history differs for %s", v, d)
			}
		}
	}
}

func TestMarkMissingSweep(t *testing.T) {
	s := New()
	for _, d := range []simtime.Day{30, 10, 20, 10, 30} {
		s.MarkMissingSweep(d)
	}
	got := s.MissingSweeps()
	if !reflect.DeepEqual(got, []simtime.Day{10, 20, 30}) {
		t.Fatalf("MissingSweeps = %v", got)
	}
	// The returned slice is immutable: later marks build a fresh slice
	// (copy-on-write) instead of mutating the one already handed out.
	s.MarkMissingSweep(5)
	if !reflect.DeepEqual(got, []simtime.Day{10, 20, 30}) {
		t.Fatalf("earlier snapshot mutated by MarkMissingSweep: %v", got)
	}
	if now := s.MissingSweeps(); !reflect.DeepEqual(now, []simtime.Day{5, 10, 20, 30}) {
		t.Fatalf("MissingSweeps after new mark = %v", now)
	}
}
