package store

import (
	"net/netip"
	"reflect"
	"testing"

	"whereru/internal/simtime"
)

func batchFixture(day simtime.Day) []Measurement {
	return []Measurement{
		{Domain: "alpha.ru", Day: day, Config: Config{
			NSHosts:   []string{"ns2.alpha.ru", "ns1.alpha.ru"}, // unsorted on purpose
			NSAddrs:   []netip.Addr{netip.MustParseAddr("10.0.0.2"), netip.MustParseAddr("10.0.0.1")},
			ApexAddrs: []netip.Addr{netip.MustParseAddr("192.0.2.7")},
			MXHosts:   []string{"mx.alpha.ru"},
		}},
		{Domain: "beta.xn--p1ai", Day: day, Config: Config{Failed: true}},
		{Domain: "gamma.ru", Day: day, Config: Config{NSHosts: []string{"ns.hoster.de"}}},
	}
}

func TestMeasurementBatchRoundTrip(t *testing.T) {
	day := simtime.Date(2022, 2, 24)
	ms := batchFixture(day)
	b, err := EncodeMeasurementBatch(day, ms)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	gotDay, got, err := DecodeMeasurementBatch(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if gotDay != day {
		t.Errorf("day = %v, want %v", gotDay, day)
	}
	// The codec normalizes configs on the way in.
	want := make([]Measurement, len(ms))
	for i, m := range ms {
		m.Config = m.Config.Normalize()
		want[i] = m
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}

	// Determinism: encoding the decoded batch reproduces the bytes.
	b2, err := EncodeMeasurementBatch(day, got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if string(b2) != string(b) {
		t.Errorf("re-encode is not byte-identical")
	}
}

func TestMeasurementBatchEmpty(t *testing.T) {
	day := simtime.Date(2022, 3, 1)
	b, err := EncodeMeasurementBatch(day, nil)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	gotDay, got, err := DecodeMeasurementBatch(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if gotDay != day || len(got) != 0 {
		t.Errorf("got day %v, %d measurements; want %v, 0", gotDay, len(got), day)
	}
}

func TestMeasurementBatchDayMismatch(t *testing.T) {
	day := simtime.Date(2022, 2, 24)
	ms := batchFixture(day)
	ms[1].Day = day + 1
	if _, err := EncodeMeasurementBatch(day, ms); err == nil {
		t.Fatal("encode accepted a measurement from another day")
	}
}

// TestMeasurementBatchHostileInput: truncations, bit flips, and trailing
// garbage must all surface as errors — never a panic, never a silent
// partial decode. The transport checksums frames, but the decoder is the
// last line of defense.
func TestMeasurementBatchHostileInput(t *testing.T) {
	day := simtime.Date(2022, 2, 24)
	good, err := EncodeMeasurementBatch(day, batchFixture(day))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}

	// Every prefix of a valid batch is invalid (measurement counts no
	// longer match the bytes present).
	for n := 0; n < len(good); n++ {
		if _, _, err := DecodeMeasurementBatch(good[:n]); err == nil {
			t.Fatalf("decode accepted a %d-byte truncation of a %d-byte batch", n, len(good))
		}
	}

	// Trailing garbage is rejected.
	if _, _, err := DecodeMeasurementBatch(append(append([]byte{}, good...), 0x00)); err == nil {
		t.Error("decode accepted trailing garbage")
	}

	// An absurd count field must be rejected before allocation. The count
	// sits right after the day: day i32 | count u32.
	huge := append([]byte{}, good...)
	huge[4], huge[5], huge[6], huge[7] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := DecodeMeasurementBatch(huge); err == nil {
		t.Error("decode accepted an absurd measurement count")
	}

	// An over-limit batch is rejected outright.
	if _, _, err := DecodeMeasurementBatch(make([]byte, maxBatchBytes+1)); err == nil {
		t.Error("decode accepted an over-limit batch")
	}
}
