package store

import (
	"bytes"
	"fmt"
	"net/netip"
	"reflect"
	"testing"

	"whereru/internal/simtime"
)

func ip(s string) netip.Addr { return netip.MustParseAddr(s) }

func cfg(ns []string, nsIPs, apex []string) Config {
	c := Config{NSHosts: ns}
	for _, a := range nsIPs {
		c.NSAddrs = append(c.NSAddrs, ip(a))
	}
	for _, a := range apex {
		c.ApexAddrs = append(c.ApexAddrs, ip(a))
	}
	return c.Normalize()
}

func TestEpochCompression(t *testing.T) {
	s := New()
	c1 := cfg([]string{"ns1.reg.ru."}, []string{"11.0.0.1"}, []string{"11.0.1.1"})
	c2 := cfg([]string{"ns1.sedo.de."}, []string{"11.9.0.1"}, []string{"11.9.1.1"})
	// 10 sweeps with config c1, then 5 with c2.
	for i := 0; i < 10; i++ {
		day := simtime.Day(100 + i*7)
		s.BeginSweep(day)
		s.Add(Measurement{Domain: "a.ru.", Day: day, Config: c1})
	}
	for i := 0; i < 5; i++ {
		day := simtime.Day(100 + (10+i)*7)
		s.BeginSweep(day)
		s.Add(Measurement{Domain: "a.ru.", Day: day, Config: c2})
	}
	st := s.Stats()
	if st.Epochs != 2 {
		t.Fatalf("Epochs = %d, want 2", st.Epochs)
	}
	if st.NaiveRecords != 15 {
		t.Fatalf("NaiveRecords = %d, want 15", st.NaiveRecords)
	}
	if st.Domains != 1 {
		t.Fatalf("Domains = %d", st.Domains)
	}
	// Snapshot reconstruction at various days.
	got, ok := s.At("a.ru.", 100)
	if !ok || !got.Equal(c1) {
		t.Fatal("At(first sweep) wrong")
	}
	got, ok = s.At("a.ru.", 105) // between sweeps: carries forward
	if !ok || !got.Equal(c1) {
		t.Fatal("At(between sweeps) wrong")
	}
	got, ok = s.At("a.ru.", 100+10*7)
	if !ok || !got.Equal(c2) {
		t.Fatal("At(after change) wrong")
	}
	if _, ok = s.At("a.ru.", 99); ok {
		t.Fatal("At(before first sweep) resolved")
	}
	if _, ok = s.At("zzz.ru.", 200); ok {
		t.Fatal("At(unknown domain) resolved")
	}
}

func TestConfigEqualAndNormalize(t *testing.T) {
	a := cfg([]string{"b.", "a."}, []string{"11.0.0.2", "11.0.0.1"}, []string{"11.1.0.1"})
	b := cfg([]string{"a.", "b."}, []string{"11.0.0.1", "11.0.0.2"}, []string{"11.1.0.1"})
	if !a.Equal(b) {
		t.Fatal("normalized configs not equal")
	}
	c := cfg([]string{"a.", "b."}, []string{"11.0.0.1", "11.0.0.2"}, []string{"11.1.0.2"})
	if a.Equal(c) {
		t.Fatal("different apex configs equal")
	}
	d := a
	d.Failed = true
	if a.Equal(d) {
		t.Fatal("failed flag ignored in Equal")
	}
	if a.Equal(Config{}) {
		t.Fatal("non-empty equals empty")
	}
}

func TestMeasuredOn(t *testing.T) {
	s := New()
	c := cfg([]string{"ns.x.ru."}, nil, nil)
	s.BeginSweep(10)
	s.Add(Measurement{Domain: "d.ru.", Day: 10, Config: c})
	s.BeginSweep(20)
	s.Add(Measurement{Domain: "d.ru.", Day: 20, Config: c})
	if !s.MeasuredOn("d.ru.", 10) || !s.MeasuredOn("d.ru.", 15) || !s.MeasuredOn("d.ru.", 20) {
		t.Fatal("measured days not covered")
	}
	if s.MeasuredOn("d.ru.", 9) {
		t.Fatal("measured before first sweep")
	}
	// After the last sweep the domain is no longer measured (it may have
	// left the zone).
	if s.MeasuredOn("d.ru.", 21) {
		t.Fatal("measured after last sweep")
	}
	if s.MeasuredOn("other.ru.", 15) {
		t.Fatal("unknown domain measured")
	}
}

func TestForEachAt(t *testing.T) {
	s := New()
	c := cfg([]string{"ns.x.ru."}, nil, nil)
	for i, d := range []string{"b.ru.", "a.ru.", "c.ru."} {
		day := simtime.Day(10 + i)
		s.BeginSweep(day)
		s.Add(Measurement{Domain: d, Day: day, Config: c})
	}
	var visited []string
	s.ForEachAt(12, func(domain string, _ Config) { visited = append(visited, domain) })
	// a.ru. measured day 11 (lastSeen 11 < 12, no later epoch → not measured),
	// b.ru. day 10 (same), c.ru. day 12 (measured).
	want := []string{"c.ru."}
	if !reflect.DeepEqual(visited, want) {
		t.Fatalf("ForEachAt visited %v, want %v", visited, want)
	}
}

func TestSweepsAndHistory(t *testing.T) {
	s := New()
	s.BeginSweep(5)
	s.BeginSweep(5) // duplicate ignored
	s.BeginSweep(9)
	if got := s.Sweeps(); len(got) != 2 || got[0] != 5 || got[1] != 9 {
		t.Fatalf("Sweeps = %v", got)
	}
	c1 := cfg([]string{"x."}, nil, nil)
	c2 := cfg([]string{"y."}, nil, nil)
	s.Add(Measurement{Domain: "h.ru.", Day: 5, Config: c1})
	s.Add(Measurement{Domain: "h.ru.", Day: 9, Config: c2})
	h := s.History("h.ru.")
	if len(h) != 2 || h[0].Day != 5 || h[1].Day != 9 {
		t.Fatalf("History = %+v", h)
	}
	if s.History("none.ru.") != nil {
		t.Fatal("History of unknown domain non-nil")
	}
	if s.NumDomains() != 1 {
		t.Fatalf("NumDomains = %d", s.NumDomains())
	}
}

func TestCodecRoundTrip(t *testing.T) {
	s := New()
	for i := 0; i < 50; i++ {
		day := simtime.Day(1000 + i*3)
		s.BeginSweep(day)
		for j := 0; j < 20; j++ {
			c := cfg(
				[]string{fmt.Sprintf("ns%d.prov%d.ru.", j%2, j%5)},
				[]string{fmt.Sprintf("11.%d.0.%d", j%5, j%2+1)},
				[]string{fmt.Sprintf("11.%d.1.%d", (i/25+j)%5, j+1)},
			)
			if j == 7 && i%2 == 0 {
				c.Failed = true
				c.NSHosts = nil
				c.NSAddrs = nil
				c.ApexAddrs = nil
			}
			s.Add(Measurement{Domain: fmt.Sprintf("dom%02d.ru.", j), Day: day, Config: c})
		}
	}
	var buf bytes.Buffer
	n, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo returned %d, buffer has %d", n, buf.Len())
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(s.Sweeps(), back.Sweeps()) {
		t.Fatal("sweeps differ after round trip")
	}
	if !reflect.DeepEqual(s.Domains(), back.Domains()) {
		t.Fatal("domains differ after round trip")
	}
	for _, d := range s.Domains() {
		if !reflect.DeepEqual(s.History(d), back.History(d)) {
			t.Fatalf("history differs for %s", d)
		}
	}
}

func TestDomainsIndexInvalidation(t *testing.T) {
	s := New()
	c := cfg([]string{"ns.x.ru."}, nil, nil)
	s.Add(Measurement{Domain: "b.ru.", Day: 10, Config: c})
	if got := s.Domains(); !reflect.DeepEqual(got, []string{"b.ru."}) {
		t.Fatalf("Domains = %v", got)
	}
	// Re-measuring an existing domain must not disturb the cached index;
	// a new domain must invalidate it.
	s.Add(Measurement{Domain: "b.ru.", Day: 11, Config: c})
	s.Add(Measurement{Domain: "a.ru.", Day: 11, Config: c})
	if got := s.Domains(); !reflect.DeepEqual(got, []string{"a.ru.", "b.ru."}) {
		t.Fatalf("Domains after invalidation = %v", got)
	}
	// The returned slice is a copy: mutating it must not corrupt the index.
	first := s.Domains()
	first[0] = "zzz.ru."
	if got := s.Domains(); got[0] != "a.ru." {
		t.Fatalf("Domains shared its cache: %v", got)
	}
}

// TestSnapshotEpochRanges pins the visitor's interval semantics against
// ForEachAt: an epoch covers its sweeps, carries across gaps when a later
// epoch exists, and ends at its last sighting for the final epoch.
func TestSnapshotEpochRanges(t *testing.T) {
	s := New()
	c1 := cfg([]string{"ns1.x.ru."}, nil, nil)
	c2 := cfg([]string{"ns2.x.ru."}, nil, nil)
	// a.ru.: c1 on days 10-20, gap, c2 on day 40 (dropout after 40).
	for _, d := range []simtime.Day{10, 20} {
		s.BeginSweep(d)
		s.Add(Measurement{Domain: "a.ru.", Day: d, Config: c1})
	}
	s.BeginSweep(30) // a.ru. missed this sweep (epoch gap)
	s.BeginSweep(40)
	s.Add(Measurement{Domain: "a.ru.", Day: 40, Config: c2})
	s.BeginSweep(50) // a.ru. gone

	days := []simtime.Day{5, 10, 20, 30, 40, 50}
	snap := s.Snapshot()
	type visit struct {
		cfg    Config
		lo, hi int
	}
	var visits []visit
	snap.ForEachEpochIn(days, func(domain string, cfg Config, lo, hi int) {
		if domain != "a.ru." {
			t.Fatalf("unexpected domain %s", domain)
		}
		visits = append(visits, visit{cfg: cfg, lo: lo, hi: hi})
	})
	// c1 covers days[1:4] (10, 20 and the gap day 30: a later epoch means
	// still in zone); c2 covers days[4:5] (40 only — 50 is past lastSeen).
	if len(visits) != 2 {
		t.Fatalf("visits = %d, want 2", len(visits))
	}
	if !visits[0].cfg.Equal(c1) || visits[0].lo != 1 || visits[0].hi != 4 {
		t.Fatalf("first epoch range = [%d,%d)", visits[0].lo, visits[0].hi)
	}
	if !visits[1].cfg.Equal(c2) || visits[1].lo != 4 || visits[1].hi != 5 {
		t.Fatalf("second epoch range = [%d,%d)", visits[1].lo, visits[1].hi)
	}

	// Cross-check the visitor against ForEachAt on every day.
	perDay := make([]int, len(days))
	for i, d := range days {
		s.ForEachAt(d, func(string, Config) { perDay[i]++ })
	}
	visited := make([]int, len(days))
	snap.ForEachEpochIn(days, func(_ string, _ Config, lo, hi int) {
		for i := lo; i < hi; i++ {
			visited[i]++
		}
	})
	if !reflect.DeepEqual(perDay, visited) {
		t.Fatalf("visitor coverage %v != ForEachAt coverage %v", visited, perDay)
	}
}

func TestSnapshotAtAndMeasuredAt(t *testing.T) {
	s := New()
	c := cfg([]string{"ns.x.ru."}, nil, nil)
	s.BeginSweep(10)
	s.Add(Measurement{Domain: "d.ru.", Day: 10, Config: c})
	s.BeginSweep(20)
	s.Add(Measurement{Domain: "d.ru.", Day: 20, Config: c})
	snap := s.Snapshot()
	if snap.NumDomains() != 1 || snap.Domains()[0] != "d.ru." {
		t.Fatalf("snapshot domains = %v", snap.Domains())
	}
	for _, day := range []simtime.Day{9, 10, 15, 21} {
		gotCfg, gotOK := snap.At(0, day)
		wantCfg, wantOK := s.At("d.ru.", day)
		if gotOK != wantOK || (gotOK && !gotCfg.Equal(wantCfg)) {
			t.Fatalf("Snapshot.At(%d) diverges from Store.At", day)
		}
		if snap.MeasuredAt(0, day) != s.MeasuredOn("d.ru.", day) {
			t.Fatalf("Snapshot.MeasuredAt(%d) diverges from Store.MeasuredOn", day)
		}
	}
	// The snapshot must not see writes that land after the capture.
	s.BeginSweep(30)
	s.Add(Measurement{Domain: "d.ru.", Day: 30, Config: c})
	s.Add(Measurement{Domain: "new.ru.", Day: 30, Config: c})
	if snap.NumDomains() != 1 {
		t.Fatal("snapshot grew after capture")
	}
	if snap.MeasuredAt(0, 30) {
		t.Fatal("snapshot saw a post-capture sweep")
	}
	if len(snap.Sweeps()) != 2 {
		t.Fatalf("snapshot sweeps = %v", snap.Sweeps())
	}
}

func TestGenerationTracksMutations(t *testing.T) {
	s := New()
	if s.Generation() != 0 {
		t.Fatalf("fresh store generation = %d", s.Generation())
	}
	g0 := s.Generation()
	s.BeginSweep(10)
	if s.Generation() <= g0 {
		t.Fatal("BeginSweep did not bump the generation")
	}
	g1 := s.Generation()
	s.BeginSweep(10) // duplicate day: no observable change
	if s.Generation() != g1 {
		t.Fatal("no-op BeginSweep bumped the generation")
	}
	s.Add(Measurement{Domain: "a.ru.", Day: 10, Config: cfg([]string{"ns1.reg.ru."}, nil, nil)})
	if s.Generation() <= g1 {
		t.Fatal("Add did not bump the generation")
	}
	g2 := s.Generation()
	s.MarkMissingSweep(12)
	if s.Generation() <= g2 {
		t.Fatal("MarkMissingSweep did not bump the generation")
	}
	g3 := s.Generation()
	s.MarkMissingSweep(12) // duplicate: no observable change
	if s.Generation() != g3 {
		t.Fatal("duplicate MarkMissingSweep bumped the generation")
	}
}

// TestGenerationConcurrentWithReaders hammers the read API (Snapshot,
// Domains, Generation, At, Sweeps) against a concurrent writer. Run
// under -race it pins both the generation counter's locking and the
// PR-2 sorted-index locking; it also checks the invalidation contract:
// a reader that saw generation G before reading and G again after knows
// its reads were from one unchanged store state.
func TestGenerationConcurrentWithReaders(t *testing.T) {
	s := New()
	const sweeps = 40
	done := make(chan struct{})
	go func() {
		defer close(done)
		for day := 0; day < sweeps; day++ {
			s.BeginSweep(simtime.Day(day * 3))
			for d := 0; d < 25; d++ {
				s.Add(Measurement{
					Domain: fmt.Sprintf("dom%02d.ru.", d),
					Day:    simtime.Day(day * 3),
					Config: cfg([]string{fmt.Sprintf("ns%d.reg.ru.", (day+d)%5)}, []string{"11.0.0.1"}, nil),
				})
			}
			if day%7 == 3 {
				s.MarkMissingSweep(simtime.Day(day*3 + 1))
			}
		}
	}()
	for i := 0; ; i++ {
		g1 := s.Generation()
		snap := s.Snapshot()
		doms := s.Domains()
		s.Sweeps()
		s.MissingSweeps()
		if len(doms) > 0 {
			s.At(doms[0], simtime.Day(i%int(sweeps*3)))
		}
		g2 := s.Generation()
		if g1 == g2 {
			// Unchanged generation brackets: the snapshot must hold
			// exactly the domains the index reported.
			if snap.NumDomains() != len(doms) {
				t.Fatalf("stable generation %d but snapshot %d domains vs index %d",
					g1, snap.NumDomains(), len(doms))
			}
		}
		select {
		case <-done:
			if got := s.Generation(); got == 0 {
				t.Fatal("generation still 0 after writes")
			}
			return
		default:
		}
	}
}

func TestCodecRejectsJunk(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(bytes.NewReader([]byte("WRST\x00\x63"))); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := Read(bytes.NewReader([]byte("WRST\x00\x01\x00\x00\x00\x05"))); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func BenchmarkAddCompressible(b *testing.B) {
	s := New()
	c := cfg([]string{"ns1.reg.ru."}, []string{"11.0.0.1"}, []string{"11.0.1.1"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(Measurement{Domain: "bench.ru.", Day: simtime.Day(i), Config: c})
	}
}

func BenchmarkAt(b *testing.B) {
	s := New()
	for i := 0; i < 1000; i++ {
		c := cfg([]string{fmt.Sprintf("ns%d.ru.", i%7)}, nil, nil)
		s.Add(Measurement{Domain: "bench.ru.", Day: simtime.Day(i * 5), Config: c})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.At("bench.ru.", simtime.Day(i%5000)); !ok && i%5000 >= 0 {
			b.Fatal("lookup failed")
		}
	}
}
