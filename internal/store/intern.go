package store

import (
	"encoding/binary"
	"net/netip"
)

// internTable hash-conses Configs: every distinct configuration is stored
// once and addressed by a dense uint32 ID. This is what makes the
// columnar store paper-scale — hosting configurations are massively
// redundant (a handful of providers serve most of the zone), so the
// store pays for each distinct Config once, not once per domain-epoch.
//
// Two layers of sharing:
//
//   - Config identity: an unambiguous byte encoding of the config is the
//     key of ids; equal configs (same section contents in the same
//     order) always map to the same ID.
//   - Storage: the canonical Config's slices are sub-slices of shared
//     append-only arenas (hostArena, addrArena), and every hostname
//     string is canonicalized through strs, so a name-server name
//     appearing in a million configs holds its bytes once.
//
// The arenas only ever append; growing them reallocates the backing
// array but previously returned sub-slices keep pointing at the old one,
// so canonical Configs handed out earlier stay valid forever. That
// append-only discipline is also what lets Snapshot alias the configs
// table instead of copying it.
//
// The table does not normalize: callers pass exactly the Config they
// want stored (Add normalizes first, the decoders pass file contents
// verbatim), so interning is invisible to every reader — it changes
// where bytes live, never what a lookup returns.
type internTable struct {
	ids     map[string]uint32 // encoded config -> ID
	configs []Config          // ID -> canonical pooled config
	strs    map[string]string // canonical hostname instances

	hostArena []string
	addrArena []netip.Addr

	key []byte // reusable key-encoding scratch

	hostBytes int64 // bytes held by distinct hostname strings
	keyBytes  int64 // bytes held by interned config keys
}

func (t *internTable) init() {
	t.ids = make(map[string]uint32)
	t.strs = make(map[string]string)
}

// config returns the canonical Config for id. The value's slices alias
// the shared pools and must be treated as read-only.
func (t *internTable) config(id uint32) Config { return t.configs[id] }

// view returns the configs table frozen at its current length, safe to
// read concurrently with further interning (the slice is append-only).
func (t *internTable) view() []Config {
	return t.configs[:len(t.configs):len(t.configs)]
}

// intern returns the ID for c, registering it on first sight. c is
// stored as given (no normalization); its slices are copied into the
// pools, so the caller's backing arrays are not retained.
func (t *internTable) intern(c Config) uint32 {
	k := t.key[:0]
	k = appendFailedKey(k, c.Failed)
	k = appendHostsKey(k, c.NSHosts)
	k = appendAddrsKey(k, c.NSAddrs)
	k = appendAddrsKey(k, c.ApexAddrs)
	k = appendHostsKey(k, c.MXHosts)
	t.key = k
	if id, ok := t.ids[string(k)]; ok {
		return id
	}
	return t.add(k, Config{
		NSHosts:   t.internHosts(c.NSHosts),
		NSAddrs:   t.internAddrs(c.NSAddrs),
		ApexAddrs: t.internAddrs(c.ApexAddrs),
		MXHosts:   t.internHosts(c.MXHosts),
		Failed:    c.Failed,
	})
}

// scratchConfig is a decoded config whose hostnames still alias the
// section payload. The decode path interns from it directly so a
// paper-scale file read allocates strings only for configs never seen
// before, never per epoch.
type scratchConfig struct {
	failed             bool
	nsHosts, mxHosts   [][]byte
	nsAddrs, apexAddrs []netip.Addr
}

// internScratch is intern for a scratchConfig. It must produce exactly
// the ID intern would for the equivalent Config — the key encodings are
// kept byte-identical (TestInternScratchAgreesWithIntern pins this).
func (t *internTable) internScratch(sc *scratchConfig) uint32 {
	k := t.key[:0]
	k = appendFailedKey(k, sc.failed)
	k = appendHostBytesKey(k, sc.nsHosts)
	k = appendAddrsKey(k, sc.nsAddrs)
	k = appendAddrsKey(k, sc.apexAddrs)
	k = appendHostBytesKey(k, sc.mxHosts)
	t.key = k
	if id, ok := t.ids[string(k)]; ok {
		return id
	}
	return t.add(k, Config{
		NSHosts:   t.internHostBytes(sc.nsHosts),
		NSAddrs:   t.internAddrs(sc.nsAddrs),
		ApexAddrs: t.internAddrs(sc.apexAddrs),
		MXHosts:   t.internHostBytes(sc.mxHosts),
		Failed:    sc.failed,
	})
}

func (t *internTable) add(key []byte, canonical Config) uint32 {
	id := uint32(len(t.configs))
	t.ids[string(key)] = id
	t.keyBytes += int64(len(key))
	t.configs = append(t.configs, canonical)
	return id
}

func (t *internTable) internHosts(hs []string) []string {
	if len(hs) == 0 {
		return nil
	}
	start := len(t.hostArena)
	for _, h := range hs {
		t.hostArena = append(t.hostArena, t.canon(h))
	}
	return t.hostArena[start:len(t.hostArena):len(t.hostArena)]
}

func (t *internTable) internHostBytes(hs [][]byte) []string {
	if len(hs) == 0 {
		return nil
	}
	start := len(t.hostArena)
	for _, h := range hs {
		t.hostArena = append(t.hostArena, t.canonBytes(h))
	}
	return t.hostArena[start:len(t.hostArena):len(t.hostArena)]
}

func (t *internTable) internAddrs(as []netip.Addr) []netip.Addr {
	if len(as) == 0 {
		return nil
	}
	start := len(t.addrArena)
	t.addrArena = append(t.addrArena, as...)
	return t.addrArena[start:len(t.addrArena):len(t.addrArena)]
}

// canon returns the canonical instance of h, registering it on first
// sight.
func (t *internTable) canon(h string) string {
	if c, ok := t.strs[h]; ok {
		return c
	}
	t.strs[h] = h
	t.hostBytes += int64(len(h))
	return h
}

// canonBytes is canon for a byte view; the map lookup on string(b) does
// not allocate, so repeated hostnames cost nothing to look up.
func (t *internTable) canonBytes(b []byte) string {
	if c, ok := t.strs[string(b)]; ok {
		return c
	}
	s := string(b)
	t.strs[s] = s
	t.hostBytes += int64(len(s))
	return s
}

// The key encoding is an unambiguous serialization of a config's
// contents: the failed flag, then each section with a uvarint count and
// length-prefixed (hosts) or tagged fixed-width (addrs) elements. Two
// configs encode to the same key iff their sections hold the same
// elements in the same order.

func appendFailedKey(k []byte, failed bool) []byte {
	if failed {
		return append(k, 1)
	}
	return append(k, 0)
}

func appendHostsKey(k []byte, hs []string) []byte {
	k = binary.AppendUvarint(k, uint64(len(hs)))
	for _, h := range hs {
		k = binary.AppendUvarint(k, uint64(len(h)))
		k = append(k, h...)
	}
	return k
}

func appendHostBytesKey(k []byte, hs [][]byte) []byte {
	k = binary.AppendUvarint(k, uint64(len(hs)))
	for _, h := range hs {
		k = binary.AppendUvarint(k, uint64(len(h)))
		k = append(k, h...)
	}
	return k
}

func appendAddrsKey(k []byte, as []netip.Addr) []byte {
	k = binary.AppendUvarint(k, uint64(len(as)))
	for _, a := range as {
		switch {
		case a.Is4():
			b := a.As4()
			k = append(k, 4)
			k = append(k, b[:]...)
		case a.IsValid():
			b := a.As16()
			k = append(k, 16)
			k = append(k, b[:]...)
			z := a.Zone()
			k = binary.AppendUvarint(k, uint64(len(z)))
			k = append(k, z...)
		default:
			k = append(k, 0)
		}
	}
	return k
}
