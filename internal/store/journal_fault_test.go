package store

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"whereru/internal/iofault"
	"whereru/internal/simtime"
)

// seedJournal writes nGood sweeps through a clean FS and returns the
// path plus the file size — the durable baseline faults must not harm.
func seedJournal(t *testing.T, dir string, nGood int) (string, int64) {
	t.Helper()
	path := filepath.Join(dir, "sweeps.wrjl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nGood; i++ {
		if err := j.AppendSweep(sweepRec(simtime.Day(100+7*i), "a.ru.", "b.ru.")); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, st.Size()
}

// TestJournalAppendENOSPCResumable: a full disk mid-append surfaces a
// typed ENOSPC, rolls the file back to the last durable segment, and the
// journal accepts the same sweep once space returns — nothing torn,
// nothing lost, nothing duplicated.
func TestJournalAppendENOSPCResumable(t *testing.T) {
	path, goodSize := seedJournal(t, t.TempDir(), 2)

	// The disk fills 10 bytes into the third append (DiskFullAtByte
	// budgets bytes written through this FS, which has written none yet).
	ffs := iofault.NewFaultFS(iofault.OS, 21, iofault.Profile{DiskFullAtByte: 10})
	j, replay, err := OpenJournalFS(ffs, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay.Sweeps) != 2 || replay.Torn() {
		t.Fatalf("baseline replay: %d sweeps, torn=%v", len(replay.Sweeps), replay.Torn())
	}
	rec := sweepRec(simtime.Day(200), "c.ru.")
	err = j.AppendSweep(rec)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append on full disk = %v, want an ENOSPC-wrapping error", err)
	}
	j.Close()

	// Rollback left the file exactly at the durable prefix: clean, two
	// sweeps, no torn tail for fsck to complain about.
	v, err := VerifyJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if v.Torn() || len(v.Sweeps) != 2 || v.GoodBytes != goodSize {
		t.Fatalf("after ENOSPC: torn=%v sweeps=%d good=%d (want clean, 2, %d)",
			v.Torn(), len(v.Sweeps), v.GoodBytes, goodSize)
	}

	// Space clears; the same journal file resumes and takes the sweep.
	j2, replay2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if replay2.Torn() {
		t.Fatalf("resume found a torn tail after a rolled-back append")
	}
	if err := j2.AppendSweep(rec); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	v2, err := VerifyJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(v2.Sweeps) != 3 || v2.Sweeps[2].Day != 200 {
		t.Fatalf("after resume: %d sweeps", len(v2.Sweeps))
	}
}

// TestJournalAppendSyncFaultRollsBack: when the fsync of a new segment
// fails, the segment's bytes may or may not be on disk — so AppendSweep
// must retract them rather than advance past an unproven write.
func TestJournalAppendSyncFaultRollsBack(t *testing.T) {
	path, goodSize := seedJournal(t, t.TempDir(), 1)

	ffs := iofault.NewFaultFS(iofault.OS, 22, iofault.Profile{FailSyncOp: 1})
	j, _, err := OpenJournalFS(ffs, path)
	if err != nil {
		t.Fatal(err)
	}
	err = j.AppendSweep(sweepRec(simtime.Day(300), "d.ru."))
	if !errors.Is(err, iofault.ErrSyncFault) {
		t.Fatalf("append with failing fsync = %v", err)
	}
	j.Close()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != goodSize {
		t.Fatalf("file is %d bytes after failed sync, want rollback to %d", st.Size(), goodSize)
	}
	if v, err := VerifyJournal(path); err != nil || v.Torn() || len(v.Sweeps) != 1 {
		t.Fatalf("journal damaged by failed sync: %v, %+v", err, v)
	}
}

// TestJournalShortWriteRollsBack: injected short writes (n < len with
// an error) must not leave a partial frame behind.
func TestJournalShortWriteRollsBack(t *testing.T) {
	path, goodSize := seedJournal(t, t.TempDir(), 1)
	ffs := iofault.NewFaultFS(iofault.OS, 23, iofault.Profile{ShortWriteProb: 1})
	j, _, err := OpenJournalFS(ffs, path)
	if err != nil {
		t.Fatal(err)
	}
	err = j.AppendSweep(sweepRec(simtime.Day(300), "d.ru."))
	if !errors.Is(err, iofault.ErrShortWrite) {
		t.Fatalf("append = %v, want short-write error", err)
	}
	j.Close()
	if st, _ := os.Stat(path); st.Size() != goodSize {
		t.Fatalf("file is %d bytes, want %d", st.Size(), goodSize)
	}
}

// TestJournalTornBytesCountActualBytes: TornBytes must count the bytes
// actually present after the good prefix — not the length a torn frame's
// prefix promised — so GoodBytes+TornBytes always equals the file size.
// (A crash mid-append leaves a 35 KB frame's first 4 KB on disk; fsck
// must report 4 KB torn, not 35 KB.)
func TestJournalTornBytesCountActualBytes(t *testing.T) {
	path, goodSize := seedJournal(t, t.TempDir(), 2)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Start a third frame but deliver only its length prefix plus a
	// sliver of payload — a crash-truncated tail.
	frame := full[6:] // first segment: 4-byte len + payload + crc
	torn := frame[:12]
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	v, err := VerifyJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Sweeps) != 2 || v.GoodBytes != goodSize {
		t.Fatalf("good prefix: sweeps=%d good=%d, want 2, %d", len(v.Sweeps), v.GoodBytes, goodSize)
	}
	if v.TornBytes != int64(len(torn)) {
		t.Fatalf("TornBytes = %d, want the %d bytes actually on disk", v.TornBytes, len(torn))
	}
	if st, _ := os.Stat(path); v.GoodBytes+v.TornBytes != st.Size() {
		t.Fatalf("GoodBytes(%d)+TornBytes(%d) != file size %d", v.GoodBytes, v.TornBytes, st.Size())
	}
}

// TestJournalTornTailTruncateIsSynced: OpenJournal fsyncs the torn-tail
// truncation before handing the journal back — a failing fsync there
// must refuse the open instead of letting appends land over bytes the
// disk may still resurrect.
func TestJournalTornTailTruncateIsSynced(t *testing.T) {
	path, _ := seedJournal(t, t.TempDir(), 2)
	// Tear the tail: append garbage that fails framing.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xFF, 0xFF, 0xFF})
	f.Close()

	ffs := iofault.NewFaultFS(iofault.OS, 24, iofault.Profile{FailSyncOp: 1})
	_, _, err = OpenJournalFS(ffs, path)
	if !errors.Is(err, iofault.ErrSyncFault) {
		t.Fatalf("open with failing truncate-fsync = %v, want refusal", err)
	}

	// The refused open already truncated in place (only its durability
	// was unproven), so re-tear before exercising the healthy path.
	f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xFF, 0xFF, 0xFF})
	f.Close()

	// Without the fault the same open truncates, syncs and resumes.
	j, replay, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if !replay.Torn() || len(replay.Sweeps) != 2 {
		t.Fatalf("replay = torn=%v sweeps=%d", replay.Torn(), len(replay.Sweeps))
	}
}
