package store

import (
	"fmt"
	"net/netip"
	"reflect"
	"testing"
)

// internCases are adversarial configs for the interning properties:
// duplicate hosts, mixed case, empty vs nil sections, invalid and v6
// addresses, failure flags.
func internCases() []Config {
	v6 := netip.MustParseAddr("2001:db8::1")
	v6z := netip.MustParseAddr("fe80::1%eth0")
	return []Config{
		{},
		{NSHosts: []string{}},
		{NSHosts: []string{"a.ru."}},
		{NSHosts: []string{"a.ru.", "a.ru."}},
		{NSHosts: []string{"a.ru.", "b.ru."}},
		{NSHosts: []string{"b.ru.", "a.ru."}},
		{NSHosts: []string{"A.ru."}},
		{NSHosts: []string{"a.RU."}},
		{MXHosts: []string{"a.ru."}}, // same host, different section
		{NSHosts: []string{"a.ru."}, MXHosts: []string{"a.ru."}},
		{Failed: true},
		{Failed: true, NSHosts: []string{"a.ru."}},
		{NSAddrs: []netip.Addr{netip.AddrFrom4([4]byte{11, 0, 0, 1})}},
		{ApexAddrs: []netip.Addr{netip.AddrFrom4([4]byte{11, 0, 0, 1})}}, // same addr, different section
		{NSAddrs: []netip.Addr{v6}},
		{NSAddrs: []netip.Addr{v6z}},
		{NSAddrs: []netip.Addr{{}}},
		{NSHosts: []string{""}}, // empty hostname element
		{NSHosts: []string{"", ""}},
	}
}

// TestInternRoundTripsNormalizeEqual is the property satellite (d) asks
// for: for any two adversarial configs, intern assigns the same ID
// exactly when the normalized configs are Equal, and the canonical config
// it stores is indistinguishable from the normalized input.
func TestInternRoundTripsNormalizeEqual(t *testing.T) {
	cases := internCases()
	var table internTable
	table.init()
	norm := make([]Config, len(cases))
	ids := make([]uint32, len(cases))
	for i, c := range cases {
		norm[i] = cloneConfig(c).Normalize()
		ids[i] = table.intern(cloneConfig(c).Normalize())
	}
	for i := range cases {
		got := table.config(ids[i])
		if !got.Equal(norm[i]) {
			t.Errorf("case %d: interned config not Equal to normalized input:\n%+v\nvs\n%+v", i, got, norm[i])
		}
		// Contents must match element-for-element, not just via Equal (the
		// codec serializes these bytes).
		if !reflect.DeepEqual(flattenConfig(got), flattenConfig(norm[i])) {
			t.Errorf("case %d: interned contents differ: %v vs %v", i, flattenConfig(got), flattenConfig(norm[i]))
		}
		for j := range cases {
			sameID := ids[i] == ids[j]
			equal := norm[i].Equal(norm[j])
			if sameID != equal {
				t.Errorf("cases %d/%d: sameID=%v but Equal=%v (%+v vs %+v)", i, j, sameID, equal, norm[i], norm[j])
			}
		}
	}
	// Re-interning is stable and allocates no new entries.
	before := len(table.configs)
	for i, c := range cases {
		if id := table.intern(cloneConfig(c).Normalize()); id != ids[i] {
			t.Errorf("case %d: re-intern gave %d, want %d", i, id, ids[i])
		}
	}
	if len(table.configs) != before {
		t.Errorf("re-interning grew the table: %d -> %d", before, len(table.configs))
	}
}

// flattenConfig projects a config to comparable value form (DeepEqual on
// Config itself would distinguish pool-backed sub-slices by capacity).
func flattenConfig(c Config) [5]any {
	return [5]any{c.Failed,
		append([]string(nil), c.NSHosts...),
		append([]netip.Addr(nil), c.NSAddrs...),
		append([]netip.Addr(nil), c.ApexAddrs...),
		append([]string(nil), c.MXHosts...)}
}

// TestInternScratchAgreesWithIntern pins the decode fast path: a config
// serialized to its v3 byte layout and decoded into a scratchConfig must
// intern to exactly the ID the materialized Config gets. The two key
// encodings diverging would make file decode and live Add disagree about
// config identity.
func TestInternScratchAgreesWithIntern(t *testing.T) {
	var table internTable
	table.init()
	for i, c := range internCases() {
		if hasNonV4Addr(c) {
			continue // the v3 codec is v4-only; scratch decode never sees these
		}
		n := cloneConfig(c).Normalize()
		var e encoder
		e.config(n, "x")
		if e.err != nil {
			t.Fatalf("case %d: encode: %v", i, e.err)
		}
		r := &byteReader{b: e.buf.Bytes()}
		var sc scratchConfig
		r.configInto(&sc, "x")
		if r.err != nil || r.remaining() != 0 {
			t.Fatalf("case %d: scratch decode: err=%v remaining=%d", i, r.err, r.remaining())
		}
		want := table.intern(cloneConfig(c).Normalize())
		got := table.internScratch(&sc)
		if got != want {
			t.Errorf("case %d: internScratch=%d, intern=%d for %+v", i, got, want, n)
		}
	}
}

func hasNonV4Addr(c Config) bool {
	for _, a := range c.NSAddrs {
		if !a.Is4() {
			return true
		}
	}
	for _, a := range c.ApexAddrs {
		if !a.Is4() {
			return true
		}
	}
	return false
}

// TestInternSharesHostStorage verifies the storage-sharing layer: the
// same hostname appearing in many distinct configs is pooled to one
// canonical string instance.
func TestInternSharesHostStorage(t *testing.T) {
	var table internTable
	table.init()
	host := "ns1.shared.ru."
	for i := 0; i < 50; i++ {
		c := Config{
			NSHosts:   []string{host},
			ApexAddrs: []netip.Addr{netip.AddrFrom4([4]byte{11, 0, 0, byte(i + 1)})},
		}
		table.intern(c.Normalize())
	}
	if got := len(table.strs); got != 1 {
		t.Fatalf("50 configs with one shared host pooled %d strings, want 1", got)
	}
	if got := len(table.configs); got != 50 {
		t.Fatalf("distinct configs = %d, want 50", got)
	}
	// Every canonical config's NSHosts[0] must be the same string instance
	// (same data pointer), not just equal bytes.
	first := table.config(0).NSHosts[0]
	for id := uint32(1); id < 50; id++ {
		if got := table.config(id).NSHosts[0]; got != first {
			t.Fatalf("config %d host %q not pooled", id, got)
		}
	}
	if table.hostBytes != int64(len(host)) {
		t.Fatalf("hostBytes = %d, want %d", table.hostBytes, len(host))
	}
}

// TestInternArenaGrowthKeepsOldConfigsValid pins the append-only arena
// contract: configs interned before arena reallocation keep their
// contents afterward.
func TestInternArenaGrowthKeepsOldConfigsValid(t *testing.T) {
	var table internTable
	table.init()
	id0 := table.intern(Config{NSHosts: []string{"first.ru."}}.Normalize())
	want := flattenConfig(table.config(id0))
	for i := 0; i < 5000; i++ { // force multiple arena reallocations
		table.intern(Config{NSHosts: []string{fmt.Sprintf("ns%d.ru.", i)}}.Normalize())
	}
	if got := flattenConfig(table.config(id0)); !reflect.DeepEqual(got, want) {
		t.Fatalf("early config changed after arena growth: %v vs %v", got, want)
	}
}
