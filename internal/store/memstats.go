package store

import (
	"net/netip"
	"runtime"
	"unsafe"

	"whereru/internal/simtime"
)

// MemStats describes the store's resident memory and interning behavior.
// The byte figures are accounted, not sampled: they are computed from the
// capacities of the columnar representation itself, so they are exactly
// reproducible for a given measurement stream — which is what lets the CI
// memory gate compare them across runners, the way the allocs gate
// compares allocs/op (both are timing-independent).
//
// The accounting covers the dominant terms — columns, arenas, string
// bytes, table entries — plus a fixed per-entry estimate for Go map
// overhead. It deliberately excludes allocator slack and GC headroom, so
// it reads a little under a heap profiler; the measured
// runtime.ReadMemStats harness in the tests pins the two against each
// other.
type MemStats struct {
	// Domains and Epochs mirror Stats; DeadRows counts column rows
	// abandoned by relocation and not yet compacted.
	Domains      int
	Epochs       int64
	DeadRows     int
	NaiveRecords int64

	// DistinctConfigs is the intern table size: how many distinct
	// configurations the whole store has ever observed.
	DistinctConfigs int
	// InternedHosts is the number of distinct hostname strings pooled;
	// HostSlots and AddrSlots are the shared arenas' entry counts (one
	// slot per hostname/address position across all distinct configs).
	InternedHosts int
	HostSlots     int
	AddrSlots     int

	// ColumnBytes is the epoch columns plus the per-domain row offsets.
	ColumnBytes int64
	// InternBytes is the intern table: arenas, canonical config table,
	// distinct string bytes and the config-key index.
	InternBytes int64
	// IndexBytes is the domain index: names, name bytes, the name map
	// and the cached sorted view.
	IndexBytes int64
}

// mapEntryOverhead approximates Go's per-entry map cost (bucket slot,
// hash metadata, load-factor headroom) for the accounted figures. The
// exact number varies by key size and fill; 48 bytes is a deliberate
// middle estimate, applied uniformly so comparisons stay meaningful.
const mapEntryOverhead = 48

// ResidentBytes is the accounted total.
func (m MemStats) ResidentBytes() int64 { return m.ColumnBytes + m.InternBytes + m.IndexBytes }

// BytesPerEpoch is the headline density metric: accounted resident bytes
// per live (domain, epoch) row. This is what BENCH_MEM_THRESHOLD gates.
func (m MemStats) BytesPerEpoch() float64 {
	if m.Epochs == 0 {
		return 0
	}
	return float64(m.ResidentBytes()) / float64(m.Epochs)
}

// Element sizes for the accounting (unsafe.Sizeof is a compile-time
// constant; the "unsafe" import does no unsafe memory access).
const (
	daySize    = int64(unsafe.Sizeof(simtime.Day(0)))
	strSize    = int64(unsafe.Sizeof(""))
	addrSize   = int64(unsafe.Sizeof(netip.Addr{}))
	configSize = int64(unsafe.Sizeof(Config{}))
)

// LiveHeapBytes measures the live-heap growth attributable to building a
// value: it settles the heap with GC, snapshots runtime.MemStats, runs
// build, settles again with the result still reachable, and returns the
// HeapAlloc delta. This is the measured (as opposed to accounted)
// memory harness: MemStats says what the representation should cost,
// LiveHeapBytes says what the runtime actually retains — the heap
// reduction test holds the two against each other, and BENCH_7.json
// records its output.
func LiveHeapBytes(build func() any) uint64 {
	settle := func() {
		// Two cycles: the first can leave just-unreachable objects for the
		// next sweep; the second settles them.
		runtime.GC()
		runtime.GC()
	}
	var before, after runtime.MemStats
	settle()
	runtime.ReadMemStats(&before)
	v := build()
	settle()
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(v)
	if after.HeapAlloc < before.HeapAlloc {
		return 0
	}
	return after.HeapAlloc - before.HeapAlloc
}

// MemStats computes the store's memory accounting.
func (s *Store) MemStats() MemStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := &s.intern
	m := MemStats{
		Domains:         len(s.names),
		Epochs:          s.live,
		DeadRows:        len(s.epochFrom) - int(s.live),
		NaiveRecords:    s.naive,
		DistinctConfigs: len(t.configs),
		InternedHosts:   len(t.strs),
		HostSlots:       len(t.hostArena),
		AddrSlots:       len(t.addrArena),
	}
	m.ColumnBytes = int64(cap(s.epochFrom))*daySize +
		int64(cap(s.epochLast))*daySize +
		int64(cap(s.epochCfg))*4 +
		int64(cap(s.off))*4 + int64(cap(s.cnt))*4
	m.InternBytes = int64(cap(t.hostArena))*strSize +
		int64(cap(t.addrArena))*addrSize +
		int64(cap(t.configs))*configSize +
		t.hostBytes + t.keyBytes +
		int64(len(t.ids)+len(t.strs))*mapEntryOverhead
	m.IndexBytes = int64(cap(s.names))*strSize + s.nameBytes +
		int64(len(s.byName))*mapEntryOverhead +
		int64(cap(s.index))*strSize + int64(cap(s.order))*4
	return m
}
