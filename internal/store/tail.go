package store

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"
)

// Tailer follows a WRJL journal file as it grows, decoding each segment
// once it is completely and verifiably on disk — `tail -f` with the
// journal's framing and checksum rules. It is the input side of follow
// mode: the serve watcher and `rustore tail` both drain one.
//
// A frame that is only partially visible (the writer is mid-append, or a
// crashed writer left a torn tail that its resuming successor will
// truncate away) is simply not yet available: Next keeps polling until
// the bytes at the current offset become a complete, checksum-valid
// segment. The file shrinking below the tailer's offset, by contrast, is
// a real error — every offset the tailer advances past was a durable,
// CRC-valid segment, so truncation below it means the file is not the
// journal the tailer was following.
type Tailer struct {
	f    *os.File
	path string
	off  int64
	// poll is the interval at which Next re-examines the file (default
	// 200ms).
	poll  time.Duration
	hdrOK bool
}

// DefaultTailPoll is the default polling interval of a Tailer.
const DefaultTailPoll = 200 * time.Millisecond

// OpenTail opens the journal at path for following, starting at offset.
// Offset 0 (or anything below the 6-byte header) starts at the first
// segment — the header is validated once it exists; an offset returned
// by a prior scan (JournalReplay.GoodBytes) or Tailer.Offset resumes
// after the segments that scan already consumed. The file itself need
// not exist yet if offset is 0; Next waits for it.
func OpenTail(path string, offset int64) (*Tailer, error) {
	t := &Tailer{path: path, off: offset, poll: DefaultTailPoll}
	if offset >= 6 {
		t.hdrOK = true
	} else {
		t.off = 6
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) && offset < 6 {
			return t, nil // wait for creation in Next
		}
		return nil, fmt.Errorf("store: tail: %w", err)
	}
	t.f = f
	if t.hdrOK {
		return t, nil
	}
	if err := t.checkHeader(); err != nil && err != errTailWait {
		f.Close()
		return nil, err
	}
	return t, nil
}

// SetPoll overrides the polling interval (intervals <= 0 keep the
// default).
func (t *Tailer) SetPoll(d time.Duration) {
	if d > 0 {
		t.poll = d
	}
}

// Offset returns the end of the last consumed segment: the resume point
// for a successor tailer.
func (t *Tailer) Offset() int64 { return t.off }

// Lag returns how many bytes of journal exist beyond the tailer's
// offset (0 when fully caught up; it counts torn or in-flight bytes
// too, which is exactly what a watcher wants to alert on).
func (t *Tailer) Lag() int64 {
	if t.f == nil {
		return 0
	}
	st, err := t.f.Stat()
	if err != nil || st.Size() < t.off {
		return 0
	}
	return st.Size() - t.off
}

// Close releases the underlying file.
func (t *Tailer) Close() error {
	if t.f == nil {
		return nil
	}
	return t.f.Close()
}

// errTailWait is the internal "not yet" signal: the bytes needed are not
// on disk (or not valid) yet.
var errTailWait = fmt.Errorf("store: tail: waiting for data")

// Next blocks until the next complete segment is available and returns
// it, or fails with the context's error when ctx ends first.
func (t *Tailer) Next(ctx context.Context) (JournalSweep, error) {
	for {
		rec, err := t.tryNext()
		if err == nil {
			return rec, nil
		}
		if err != errTailWait {
			return JournalSweep{}, err
		}
		select {
		case <-ctx.Done():
			return JournalSweep{}, ctx.Err()
		case <-time.After(t.poll):
		}
	}
}

// tryNext attempts to decode one segment at the current offset without
// blocking: errTailWait means try again later.
func (t *Tailer) tryNext() (JournalSweep, error) {
	var zero JournalSweep
	if t.f == nil {
		f, err := os.Open(t.path)
		if err != nil {
			if os.IsNotExist(err) {
				return zero, errTailWait
			}
			return zero, fmt.Errorf("store: tail: %w", err)
		}
		t.f = f
	}
	if !t.hdrOK {
		if err := t.checkHeader(); err != nil {
			return zero, err
		}
	}
	st, err := t.f.Stat()
	if err != nil {
		return zero, fmt.Errorf("store: tail: %w", err)
	}
	size := st.Size()
	if size < t.off {
		return zero, fmt.Errorf("store: tail: journal truncated to %d bytes below consumed offset %d", size, t.off)
	}
	if size < t.off+8 {
		return zero, errTailWait
	}
	var hdr [4]byte
	if _, err := t.f.ReadAt(hdr[:], t.off); err != nil {
		return zero, errTailWait
	}
	payloadLen := int64(binary.BigEndian.Uint32(hdr[:]))
	if payloadLen > maxJournalSegment {
		// Garbage length: a torn tail the writer will truncate on its
		// next open. Not ours to consume.
		return zero, errTailWait
	}
	frameEnd := t.off + 4 + payloadLen + 4
	if size < frameEnd {
		return zero, errTailWait
	}
	buf := make([]byte, payloadLen+4)
	if _, err := io.ReadFull(io.NewSectionReader(t.f, t.off+4, payloadLen+4), buf); err != nil {
		return zero, errTailWait
	}
	payload, crcb := buf[:payloadLen], buf[payloadLen:]
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(crcb) {
		// Torn or in-flight bytes; wait for the writer to finish or a
		// resuming writer to truncate them away.
		return zero, errTailWait
	}
	rec, err := decodeJournalPayload(payload)
	if err != nil {
		// Checksum-valid but undecodable is real corruption, not a race.
		return zero, err
	}
	t.off = frameEnd
	return rec, nil
}

// checkHeader validates the 6-byte file header once enough bytes exist.
func (t *Tailer) checkHeader() error {
	st, err := t.f.Stat()
	if err != nil {
		return fmt.Errorf("store: tail: %w", err)
	}
	if st.Size() < 6 {
		return errTailWait
	}
	var hdr [6]byte
	if _, err := t.f.ReadAt(hdr[:], 0); err != nil {
		return errTailWait
	}
	if string(hdr[:4]) != journalMagic {
		return fmt.Errorf("store: tail: bad magic %q", hdr[:4])
	}
	if v := binary.BigEndian.Uint16(hdr[4:]); v != journalVersion {
		return fmt.Errorf("store: tail: unsupported version %d", v)
	}
	t.hdrOK = true
	if t.off < 6 {
		t.off = 6
	}
	return nil
}
