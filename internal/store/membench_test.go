package store

import (
	"bytes"
	"fmt"
	"net/netip"
	"testing"

	"whereru/internal/simtime"
)

func addrList(ss ...string) []netip.Addr {
	out := make([]netip.Addr, len(ss))
	for i, s := range ss {
		out[i] = netip.MustParseAddr(s)
	}
	return out
}

// paperStream feeds fn one measurement per (domain, sweep) with the
// provider redundancy the paper reports: a handful of hosting providers
// serve most of the zone, and a small fraction of domains change
// configuration per sweep. This is the workload the interned columnar
// layout is designed for.
func paperStream(nDomains, nSweeps int, fn func(m Measurement)) {
	for i := 0; i < nSweeps; i++ {
		day := simtime.Day(19000 + i*3)
		for j := 0; j < nDomains; j++ {
			// ~6% of domains migrate provider each sweep, giving multi-epoch
			// series like the paper's five-year window produces.
			gen := (j + i*nDomains/16) / nDomains
			prov := (j + gen) % 8
			fn(Measurement{
				Domain: fmt.Sprintf("dom%06d.ru.", j),
				Day:    day,
				Config: Config{
					NSHosts:   []string{fmt.Sprintf("ns1.prov%d.ru.", prov), fmt.Sprintf("ns2.prov%d.ru.", prov)},
					NSAddrs:   addrList(fmt.Sprintf("11.%d.0.1", prov), fmt.Sprintf("11.%d.0.2", prov)),
					ApexAddrs: addrList(fmt.Sprintf("11.%d.1.%d", prov, j%2+1)),
					MXHosts:   []string{fmt.Sprintf("mx.prov%d.ru.", prov)},
				},
			})
		}
	}
}

func buildColumnar(nDomains, nSweeps int) *Store {
	s := New()
	last := simtime.Day(-1)
	paperStream(nDomains, nSweeps, func(m Measurement) {
		if m.Day != last {
			s.BeginSweep(m.Day)
			last = m.Day
		}
		s.Add(m)
	})
	return s
}

func buildReference(nDomains, nSweeps int) *ReferenceStore {
	s := NewReference()
	last := simtime.Day(-1)
	paperStream(nDomains, nSweeps, func(m Measurement) {
		if m.Day != last {
			s.BeginSweep(m.Day)
			last = m.Day
		}
		s.Add(m)
	})
	return s
}

// BenchmarkStoreAdd measures ingest: one op is one measurement through
// Add on the paper-shaped workload (interning hits dominate; the store
// should not allocate per measurement once the config universe is seen).
func BenchmarkStoreAdd(b *testing.B) {
	const nDomains, nSweeps = 2000, 20
	ms := make([]Measurement, 0, nDomains*nSweeps)
	paperStream(nDomains, nSweeps, func(m Measurement) { ms = append(ms, m.Clone()) })
	b.ReportAllocs()
	b.ResetTimer()
	var s *Store
	for i := 0; i < b.N; i++ {
		if i%len(ms) == 0 {
			b.StopTimer()
			s = New() // fresh store each pass so epochs behave identically
			b.StartTimer()
		}
		s.Add(ms[i%len(ms)])
	}
}

// Clone deep-copies a measurement (Add's Normalize sorts slices in
// place, which would corrupt a shared benchmark fixture re-used across
// passes).
func (m Measurement) Clone() Measurement {
	m.Config = cloneConfig(m.Config)
	return m
}

// BenchmarkStoreRead measures file decode: one op is a full Read of a
// serialized paper-shaped store.
func BenchmarkStoreRead(b *testing.B) {
	s := buildColumnar(2000, 30)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestColumnarHeapReduction is the acceptance measurement: live heap
// bytes per (domain, epoch), measured with runtime.ReadMemStats via
// LiveHeapBytes, must drop at least 4x from the reference representation
// to the columnar one on the paper-shaped workload. The logged figures
// are what BENCH_7.json records.
func TestColumnarHeapReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("heap measurement is too noisy under -short's time budget")
	}
	const nDomains, nSweeps = 5000, 40
	refHeap := LiveHeapBytes(func() any { return buildReference(nDomains, nSweeps) })
	var col *Store
	colHeap := LiveHeapBytes(func() any { col = buildColumnar(nDomains, nSweeps); return col })
	epochs := col.Stats().Epochs
	if epochs == 0 {
		t.Fatal("no epochs built")
	}
	refPer := float64(refHeap) / float64(epochs)
	colPer := float64(colHeap) / float64(epochs)
	t.Logf("epochs=%d reference=%.1f B/epoch columnar=%.1f B/epoch reduction=%.1fx",
		epochs, refPer, colPer, refPer/colPer)
	ms := col.MemStats()
	t.Logf("accounted: %.1f B/epoch (%d resident bytes, %d distinct configs, %d pooled hosts)",
		ms.BytesPerEpoch(), ms.ResidentBytes(), ms.DistinctConfigs, ms.InternedHosts)
	if colPer*4 > refPer {
		t.Fatalf("columnar store is only %.2fx smaller than reference (%.1f vs %.1f B/epoch), want >= 4x",
			refPer/colPer, refPer, colPer)
	}
	// The accounted figure must stay honest: within 2x of measured either
	// way (it excludes allocator slack; it must not drift into fiction).
	if acc := ms.BytesPerEpoch(); acc > colPer*2 || colPer > acc*2 {
		t.Fatalf("accounted %.1f B/epoch vs measured %.1f B/epoch differ by more than 2x", acc, colPer)
	}
}
