// Package store is the longitudinal measurement database: per-domain,
// per-sweep DNS measurements with epoch compression. OpenINTEL-style
// collection produces one record per domain per sweep, but domain
// configurations are piecewise-constant, so the store keeps an epoch only
// when the observed configuration changes — a ~50× reduction over naive
// per-day snapshots on the paper's five-year window (the ablation bench in
// bench_test.go quantifies this) — while reconstructing the full snapshot
// for any measured day.
package store

import (
	"net/netip"
	"sort"
	"sync"

	"whereru/internal/simtime"
)

// Config is one observed DNS configuration for a domain: its delegated
// name-server set, the addresses those servers resolve to, and the A
// records of the domain apex. All slices are sorted; Configs with equal
// content compare equal via Equal.
type Config struct {
	// NSHosts are the delegated name-server names.
	NSHosts []string
	// NSAddrs is the union of the name servers' A records.
	NSAddrs []netip.Addr
	// ApexAddrs are the domain apex's A records.
	ApexAddrs []netip.Addr
	// MXHosts are the domain's mail-exchanger names (optional; collected
	// when the pipeline's mail extension is enabled).
	MXHosts []string
	// Failed marks a sweep where resolution failed entirely (measurement
	// outage or unreachable infrastructure).
	Failed bool
}

// Normalize sorts the slices in place and returns the config.
func (c Config) Normalize() Config {
	sort.Strings(c.NSHosts)
	sortAddrs(c.NSAddrs)
	sortAddrs(c.ApexAddrs)
	sort.Strings(c.MXHosts)
	return c
}

func sortAddrs(a []netip.Addr) {
	sort.Slice(a, func(i, j int) bool { return a[i].Less(a[j]) })
}

// Equal reports deep equality with another config (both assumed
// normalized).
func (c Config) Equal(o Config) bool {
	if c.Failed != o.Failed ||
		len(c.NSHosts) != len(o.NSHosts) ||
		len(c.NSAddrs) != len(o.NSAddrs) ||
		len(c.ApexAddrs) != len(o.ApexAddrs) ||
		len(c.MXHosts) != len(o.MXHosts) {
		return false
	}
	for i := range c.NSHosts {
		if c.NSHosts[i] != o.NSHosts[i] {
			return false
		}
	}
	for i := range c.NSAddrs {
		if c.NSAddrs[i] != o.NSAddrs[i] {
			return false
		}
	}
	for i := range c.ApexAddrs {
		if c.ApexAddrs[i] != o.ApexAddrs[i] {
			return false
		}
	}
	for i := range c.MXHosts {
		if c.MXHosts[i] != o.MXHosts[i] {
			return false
		}
	}
	return true
}

// Measurement is one sweep's observation of one domain.
type Measurement struct {
	Domain string
	Day    simtime.Day
	Config Config
}

// epoch is a run of sweeps with an identical configuration.
type epoch struct {
	from, lastSeen simtime.Day
	config         Config
}

type domainSeries struct {
	epochs []epoch // sorted by from
}

// Store is the measurement database.
type Store struct {
	mu      sync.RWMutex
	domains map[string]*domainSeries
	sweeps  []simtime.Day // sorted unique sweep days recorded
	// naive counts what the uncompressed record count would be, for the
	// compression-ratio ablation.
	naive int64
}

// New returns an empty store.
func New() *Store {
	return &Store{domains: make(map[string]*domainSeries)}
}

// BeginSweep registers a sweep day. Sweeps must be recorded in
// chronological order.
func (s *Store) BeginSweep(day simtime.Day) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.sweeps); n == 0 || s.sweeps[n-1] < day {
		s.sweeps = append(s.sweeps, day)
	}
}

// Add records a measurement. Measurements for one domain must arrive in
// chronological order (the pipeline guarantees this).
func (s *Store) Add(m Measurement) {
	cfg := m.Config.Normalize()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.naive++
	ds, ok := s.domains[m.Domain]
	if !ok {
		ds = &domainSeries{}
		s.domains[m.Domain] = ds
	}
	if n := len(ds.epochs); n > 0 && ds.epochs[n-1].config.Equal(cfg) && ds.epochs[n-1].lastSeen <= m.Day {
		ds.epochs[n-1].lastSeen = m.Day
		return
	}
	ds.epochs = append(ds.epochs, epoch{from: m.Day, lastSeen: m.Day, config: cfg})
}

// At returns the configuration observed for domain at the most recent
// sweep at or before day. ok is false when the domain has no measurement
// by then.
func (s *Store) At(domain string, day simtime.Day) (Config, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, ok := s.domains[domain]
	if !ok {
		return Config{}, false
	}
	return ds.at(day)
}

func (ds *domainSeries) at(day simtime.Day) (Config, bool) {
	i := sort.Search(len(ds.epochs), func(i int) bool { return ds.epochs[i].from > day })
	if i == 0 {
		return Config{}, false
	}
	return ds.epochs[i-1].config, true
}

// MeasuredOn reports whether the domain was seen on a sweep at or before
// day and at or after the epoch containing day started. A domain that
// dropped out of the zone stops being "measured" after its last sweep.
func (s *Store) MeasuredOn(domain string, day simtime.Day) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, ok := s.domains[domain]
	if !ok {
		return false
	}
	i := sort.Search(len(ds.epochs), func(i int) bool { return ds.epochs[i].from > day })
	if i == 0 {
		return false
	}
	// Measured if the covering epoch's run extends to (or past) day, or a
	// later epoch exists (meaning the domain was still in the zone).
	return i < len(ds.epochs) || ds.epochs[i-1].lastSeen >= day
}

// Domains returns all measured domain names, sorted.
func (s *Store) Domains() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.domains))
	for d := range s.domains {
		out = append(out, d)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// NumDomains returns the number of measured domains.
func (s *Store) NumDomains() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.domains)
}

// Sweeps returns the recorded sweep days.
func (s *Store) Sweeps() []simtime.Day {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]simtime.Day(nil), s.sweeps...)
}

// ForEachAt calls fn with every domain measured on day (per MeasuredOn)
// and its configuration at that day, in sorted domain order.
func (s *Store) ForEachAt(day simtime.Day, fn func(domain string, cfg Config)) {
	for _, d := range s.Domains() {
		s.mu.RLock()
		ds := s.domains[d]
		i := sort.Search(len(ds.epochs), func(i int) bool { return ds.epochs[i].from > day })
		var cfg Config
		covered := false
		if i > 0 && (i < len(ds.epochs) || ds.epochs[i-1].lastSeen >= day) {
			cfg = ds.epochs[i-1].config
			covered = true
		}
		s.mu.RUnlock()
		if covered {
			fn(d, cfg)
		}
	}
}

// Stats describes the store's compression behavior.
type Stats struct {
	Domains int
	Epochs  int64
	// NaiveRecords is what one-record-per-sweep storage would hold.
	NaiveRecords int64
}

// Stats returns compression statistics.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var epochs int64
	for _, ds := range s.domains {
		epochs += int64(len(ds.epochs))
	}
	return Stats{Domains: len(s.domains), Epochs: epochs, NaiveRecords: s.naive}
}

// History returns the epochs for one domain as (from, lastSeen, config)
// triples, for inspection tools.
func (s *Store) History(domain string) []Measurement {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, ok := s.domains[domain]
	if !ok {
		return nil
	}
	out := make([]Measurement, len(ds.epochs))
	for i, e := range ds.epochs {
		out[i] = Measurement{Domain: domain, Day: e.from, Config: e.config}
	}
	return out
}
