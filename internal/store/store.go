// Package store is the longitudinal measurement database: per-domain,
// per-sweep DNS measurements with epoch compression. OpenINTEL-style
// collection produces one record per domain per sweep, but domain
// configurations are piecewise-constant, so the store keeps an epoch only
// when the observed configuration changes — a ~50× reduction over naive
// per-day snapshots on the paper's five-year window (the ablation bench in
// bench_test.go quantifies this) — while reconstructing the full snapshot
// for any measured day.
//
// The in-memory representation is columnar and interned (DESIGN
// "Columnar store"): epochs live in parallel global arrays — from and
// lastSeen day columns plus a config-ID column — and every distinct
// Config is stored once in a hash-consed intern table (intern.go). A
// domain is a dense index selecting a contiguous row range, so the
// per-epoch cost is 12 bytes of columns instead of a fat struct of
// slices, which is what lets the paper-scale study (≈6.7M domains ×
// 1,803 days) fit in memory. The representation is invisible at the API:
// every reader returns the same values the pre-columnar store did, and
// the v3 file bytes are identical (reference.go keeps the old
// representation as the equivalence oracle for tests).
package store

import (
	"net/netip"
	"sort"
	"sync"

	"whereru/internal/simtime"
)

// Config is one observed DNS configuration for a domain: its delegated
// name-server set, the addresses those servers resolve to, and the A
// records of the domain apex. All slices are sorted; Configs with equal
// content compare equal via Equal.
type Config struct {
	// NSHosts are the delegated name-server names.
	NSHosts []string
	// NSAddrs is the union of the name servers' A records.
	NSAddrs []netip.Addr
	// ApexAddrs are the domain apex's A records.
	ApexAddrs []netip.Addr
	// MXHosts are the domain's mail-exchanger names (optional; collected
	// when the pipeline's mail extension is enabled).
	MXHosts []string
	// Failed marks a sweep where resolution failed entirely (measurement
	// outage or unreachable infrastructure).
	Failed bool
}

// Normalize sorts the slices in place and returns the config.
func (c Config) Normalize() Config {
	sort.Strings(c.NSHosts)
	sortAddrs(c.NSAddrs)
	sortAddrs(c.ApexAddrs)
	sort.Strings(c.MXHosts)
	return c
}

// sortAddrs sorts in place. Address sets are a handful of entries, so
// insertion sort beats sort.Slice and allocates nothing (sort.Slice
// allocates a reflect-based swapper per call — measurable at sweep
// scale).
func sortAddrs(a []netip.Addr) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j].Less(a[j-1]); j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Equal reports deep equality with another config (both assumed
// normalized).
func (c Config) Equal(o Config) bool {
	if c.Failed != o.Failed ||
		len(c.NSHosts) != len(o.NSHosts) ||
		len(c.NSAddrs) != len(o.NSAddrs) ||
		len(c.ApexAddrs) != len(o.ApexAddrs) ||
		len(c.MXHosts) != len(o.MXHosts) {
		return false
	}
	for i := range c.NSHosts {
		if c.NSHosts[i] != o.NSHosts[i] {
			return false
		}
	}
	for i := range c.NSAddrs {
		if c.NSAddrs[i] != o.NSAddrs[i] {
			return false
		}
	}
	for i := range c.ApexAddrs {
		if c.ApexAddrs[i] != o.ApexAddrs[i] {
			return false
		}
	}
	for i := range c.MXHosts {
		if c.MXHosts[i] != o.MXHosts[i] {
			return false
		}
	}
	return true
}

// Measurement is one sweep's observation of one domain.
type Measurement struct {
	Domain string
	Day    simtime.Day
	Config Config
}

// Store is the measurement database.
//
// Concurrency and aliasing rules the columns obey (Snapshot relies on
// them):
//
//   - epochFrom and epochCfg entries are written once when a row is
//     appended and never mutated in place.
//   - epochLast is extended in place only while its row is the domain's
//     column tail.
//   - A domain that gains an epoch while another domain owns the column
//     tail is relocated: its rows are copied to the tail and the old
//     rows abandoned (dead) until compact rebuilds the columns into
//     fresh arrays.
//
// So any reader holding a frozen length of epochFrom/epochCfg (and its
// own copy of the mutable epochLast and per-domain offsets) sees an
// immutable view, even while Add keeps appending.
type Store struct {
	mu sync.RWMutex

	intern internTable

	// Domain index: byName maps a name to its dense index; names, off and
	// cnt are parallel to it. Domain d's epochs are the rows
	// [off[d], off[d]+cnt[d]) of the epoch columns.
	byName map[string]uint32
	names  []string
	off    []uint32
	cnt    []uint32

	// Epoch columns (see the aliasing rules above).
	epochFrom []simtime.Day
	epochLast []simtime.Day
	epochCfg  []uint32
	live      int64 // live (reachable) epoch rows

	sweeps []simtime.Day // sorted unique sweep days recorded; append-only
	// missing holds scheduled-but-uncollected sweep days (sorted unique):
	// collection outages the analyses must treat as gaps, not data. It is
	// copy-on-write — MarkMissingSweep installs a fresh slice — so
	// MissingSweeps can return it without copying.
	missing []simtime.Day

	// index is the cached sorted domain list and order the matching dense
	// index per position; nil index means dirty (a domain was added since
	// the last build). Rebuilt lazily by sortedView.
	index []string
	order []uint32

	// gen is the store revision, bumped on every mutation that changes
	// what a reader could observe (Add, BeginSweep, MarkMissingSweep —
	// and therefore also journal replay and file decode, which go
	// through those). Result caches key on it to invalidate when the
	// store gains sweeps.
	gen uint64
	// naive counts what the uncompressed record count would be, for the
	// compression-ratio ablation.
	naive int64
	// nameBytes tracks domain-name string bytes for MemStats.
	nameBytes int64
}

// New returns an empty store.
func New() *Store {
	s := &Store{byName: make(map[string]uint32)}
	s.intern.init()
	return s
}

// BeginSweep registers a sweep day. Sweeps must be recorded in
// chronological order.
func (s *Store) BeginSweep(day simtime.Day) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.sweeps); n == 0 || s.sweeps[n-1] < day {
		s.sweeps = append(s.sweeps, day)
		s.gen++
	}
}

// MarkMissingSweep records a scheduled sweep day on which no collection
// happened (an outage or a deliberately dropped day). Missing days are
// what make the analysis layer honest about gaps: series points on them
// are carry-forward values, flagged Interpolated rather than presented
// as fresh measurements.
func (s *Store) MarkMissingSweep(day simtime.Day) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := sort.Search(len(s.missing), func(i int) bool { return s.missing[i] >= day })
	if i < len(s.missing) && s.missing[i] == day {
		return
	}
	// Copy-on-write: readers hold the previous slice, so build the new
	// list beside it instead of shifting in place.
	out := make([]simtime.Day, len(s.missing)+1)
	copy(out, s.missing[:i])
	out[i] = day
	copy(out[i+1:], s.missing[i:])
	s.missing = out
	s.gen++
}

// Generation returns the store revision: a counter that increases on
// every observable mutation. Two calls returning the same value bracket
// a window in which the store's contents did not change, which is what
// makes it a sound cache-invalidation key.
func (s *Store) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// MissingSweeps returns the scheduled-but-uncollected sweep days. The
// slice is immutable (each mutation installs a fresh one) and shared:
// callers must not modify it. Serve-layer handlers call this per
// request, which is why it does not copy.
func (s *Store) MissingSweeps() []simtime.Day {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.missing
}

// Add records a measurement. Measurements for one domain must arrive in
// chronological order (the pipeline guarantees this).
func (s *Store) Add(m Measurement) {
	cfg := m.Config.Normalize()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.naive++
	s.gen++
	cid := s.intern.intern(cfg)
	d, ok := s.byName[m.Domain]
	if !ok {
		d = uint32(len(s.names))
		s.byName[m.Domain] = d
		s.names = append(s.names, m.Domain)
		s.off = append(s.off, uint32(len(s.epochFrom)))
		s.cnt = append(s.cnt, 0)
		s.nameBytes += int64(len(m.Domain))
		s.index, s.order = nil, nil // new domain invalidates the sorted index
	}
	o, n := s.off[d], s.cnt[d]
	if n > 0 {
		tail := o + n - 1
		if s.epochCfg[tail] == cid && s.epochLast[tail] <= m.Day {
			s.epochLast[tail] = m.Day
			return
		}
		if o+n != uint32(len(s.epochFrom)) {
			// Another domain owns the column tail: relocate this domain's
			// rows there, abandoning the old ones (compact reclaims them).
			no := uint32(len(s.epochFrom))
			s.epochFrom = append(s.epochFrom, s.epochFrom[o:o+n]...)
			s.epochLast = append(s.epochLast, s.epochLast[o:o+n]...)
			s.epochCfg = append(s.epochCfg, s.epochCfg[o:o+n]...)
			s.off[d] = no
		}
	} else {
		s.off[d] = uint32(len(s.epochFrom))
	}
	s.epochFrom = append(s.epochFrom, m.Day)
	s.epochLast = append(s.epochLast, m.Day)
	s.epochCfg = append(s.epochCfg, cid)
	s.cnt[d]++
	s.live++
	if dead := int64(len(s.epochFrom)) - s.live; dead > s.live && dead > 4096 {
		s.compact()
	}
}

// compact rebuilds the epoch columns without the dead rows relocation
// left behind. Fresh arrays are allocated so snapshots aliasing the old
// columns stay valid.
func (s *Store) compact() {
	from := make([]simtime.Day, 0, s.live)
	last := make([]simtime.Day, 0, s.live)
	cfg := make([]uint32, 0, s.live)
	for d := range s.names {
		o, n := s.off[d], s.cnt[d]
		s.off[d] = uint32(len(from))
		from = append(from, s.epochFrom[o:o+n]...)
		last = append(last, s.epochLast[o:o+n]...)
		cfg = append(cfg, s.epochCfg[o:o+n]...)
	}
	s.epochFrom, s.epochLast, s.epochCfg = from, last, cfg
}

// covering returns the index (within the n rows at offset o) of the
// epoch whose run covers day — the last row with from <= day — and
// whether one exists.
func covering(from []simtime.Day, o, n uint32, day simtime.Day) (uint32, bool) {
	j := uint32(sort.Search(int(n), func(k int) bool { return from[o+uint32(k)] > day }))
	if j == 0 {
		return 0, false
	}
	return j - 1, true
}

// At returns the configuration observed for domain at the most recent
// sweep at or before day. ok is false when the domain has no measurement
// by then. The returned config's slices alias the store's interned pools
// and must be treated as read-only.
func (s *Store) At(domain string, day simtime.Day) (Config, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.byName[domain]
	if !ok {
		return Config{}, false
	}
	j, ok := covering(s.epochFrom, s.off[d], s.cnt[d], day)
	if !ok {
		return Config{}, false
	}
	return s.intern.config(s.epochCfg[s.off[d]+j]), true
}

// MeasuredOn reports whether the domain was seen on a sweep at or before
// day and at or after the epoch containing day started. A domain that
// dropped out of the zone stops being "measured" after its last sweep.
func (s *Store) MeasuredOn(domain string, day simtime.Day) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.byName[domain]
	if !ok {
		return false
	}
	o, n := s.off[d], s.cnt[d]
	j, ok := covering(s.epochFrom, o, n, day)
	if !ok {
		return false
	}
	// Measured if the covering epoch's run extends to (or past) day, or a
	// later epoch exists (meaning the domain was still in the zone).
	return j+1 < n || s.epochLast[o+j] >= day
}

// sortedView returns the cached sorted domain list and, parallel to it,
// each position's dense index, rebuilding both when a new domain has
// been added since the last build. The returned slices are shared and
// must not be mutated.
func (s *Store) sortedView() ([]string, []uint32) {
	s.mu.RLock()
	idx, ord := s.index, s.order
	s.mu.RUnlock()
	if idx != nil {
		return idx, ord
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.index == nil {
		ord = make([]uint32, len(s.names))
		for i := range ord {
			ord[i] = uint32(i)
		}
		sort.Slice(ord, func(i, j int) bool { return s.names[ord[i]] < s.names[ord[j]] })
		idx = make([]string, len(ord))
		for i, d := range ord {
			idx[i] = s.names[d]
		}
		s.index, s.order = idx, ord
	}
	return s.index, s.order
}

func (s *Store) sortedIndex() []string {
	idx, _ := s.sortedView()
	return idx
}

// Domains returns all measured domain names, sorted.
func (s *Store) Domains() []string {
	return append([]string(nil), s.sortedIndex()...)
}

// NumDomains returns the number of measured domains.
func (s *Store) NumDomains() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.names)
}

// Sweeps returns the recorded sweep days. The slice is shared and
// immutable through it (the store only ever appends past its length):
// callers must not modify it.
func (s *Store) Sweeps() []simtime.Day {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sweeps[:len(s.sweeps):len(s.sweeps)]
}

// ForEachAt calls fn with every domain measured on day (per MeasuredOn)
// and its configuration at that day, in sorted domain order. The day's
// view is gathered under a single read lock, then fn runs unlocked (so it
// may call back into the store).
func (s *Store) ForEachAt(day simtime.Day, fn func(domain string, cfg Config)) {
	idx, ord := s.sortedView()
	type hit struct {
		domain string
		cfg    Config
	}
	hits := make([]hit, 0, len(idx))
	s.mu.RLock()
	for i, domain := range idx {
		d := ord[i]
		o, n := s.off[d], s.cnt[d]
		j, ok := covering(s.epochFrom, o, n, day)
		if ok && (j+1 < n || s.epochLast[o+j] >= day) {
			hits = append(hits, hit{domain: domain, cfg: s.intern.config(s.epochCfg[o+j])})
		}
	}
	s.mu.RUnlock()
	for _, h := range hits {
		fn(h.domain, h.cfg)
	}
}

// Snapshot is a read-only capture of the store, sharing the immutable
// columns with it. Analyses iterate a Snapshot lock-free (and
// concurrently) while collection may continue to mutate the live store.
//
// The capture is cheap at paper scale because most of it is aliasing:
// the from and config-ID columns, the intern table and the sorted name
// list are append-only or frozen, so only the in-place-mutable state is
// copied — the lastSeen column and the per-domain row offsets.
type Snapshot struct {
	domains  []string
	off, cnt []uint32 // row range per domains position
	from     []simtime.Day
	last     []simtime.Day
	cfg      []uint32
	configs  []Config
	sweeps   []simtime.Day
}

// Snapshot captures the store's current contents.
func (s *Store) Snapshot() *Snapshot {
	idx, ord := s.sortedView()
	s.mu.RLock()
	defer s.mu.RUnlock()
	off := make([]uint32, len(ord))
	cnt := make([]uint32, len(ord))
	for i, d := range ord {
		off[i], cnt[i] = s.off[d], s.cnt[d]
	}
	rows := len(s.epochFrom)
	return &Snapshot{
		domains: idx,
		off:     off,
		cnt:     cnt,
		from:    s.epochFrom[:rows:rows],
		last:    append(make([]simtime.Day, 0, rows), s.epochLast...),
		cfg:     s.epochCfg[:rows:rows],
		configs: s.intern.view(),
		sweeps:  s.sweeps[:len(s.sweeps):len(s.sweeps)],
	}
}

// Domains returns the snapshot's sorted domain names. The slice is shared
// and must not be mutated.
func (sn *Snapshot) Domains() []string { return sn.domains }

// NumDomains returns the number of captured domains.
func (sn *Snapshot) NumDomains() int { return len(sn.domains) }

// Sweeps returns the sweep days captured in the snapshot. The slice is
// shared and must not be mutated.
func (sn *Snapshot) Sweeps() []simtime.Day { return sn.sweeps }

// At returns the domain's configuration at day, with the same semantics as
// Store.At.
func (sn *Snapshot) At(i int, day simtime.Day) (Config, bool) {
	o, n := sn.off[i], sn.cnt[i]
	j, ok := covering(sn.from, o, n, day)
	if !ok {
		return Config{}, false
	}
	return sn.configs[sn.cfg[o+j]], true
}

// MeasuredAt reports whether domain i was measured on day, with the same
// semantics as Store.MeasuredOn.
func (sn *Snapshot) MeasuredAt(i int, day simtime.Day) bool {
	o, n := sn.off[i], sn.cnt[i]
	j, ok := covering(sn.from, o, n, day)
	if !ok {
		return false
	}
	return j+1 < n || sn.last[o+j] >= day
}

// ForEachEpochIn yields every domain's epochs intersected with the sorted
// sweep days: fn is called once per (domain, epoch) whose effective
// interval covers at least one of days, with [lo, hi) the covered index
// range into days. An epoch's effective interval runs from its first
// sweep to the day before the next epoch starts (a later epoch means the
// domain stayed in the zone), or to its last sighting for the final epoch
// — exactly the days ForEachAt would report the domain measured.
//
// This is the analysis fast path: classification work that is constant
// over an epoch runs once per epoch instead of once per day. The visit
// itself allocates nothing — the config passed to fn is the interned
// canonical instance read straight out of the columns.
func (sn *Snapshot) ForEachEpochIn(days []simtime.Day, fn func(domain string, cfg Config, lo, hi int)) {
	sn.VisitEpochs(days, 0, len(sn.domains), fn)
}

// VisitEpochs is ForEachEpochIn restricted to the domains with index in
// [first, last), enabling callers to shard a snapshot across workers.
func (sn *Snapshot) VisitEpochs(days []simtime.Day, first, last int, fn func(domain string, cfg Config, lo, hi int)) {
	if first < 0 {
		first = 0
	}
	if last > len(sn.domains) {
		last = len(sn.domains)
	}
	for i := first; i < last; i++ {
		domain := sn.domains[i]
		o, n := int(sn.off[i]), int(sn.cnt[i])
		lo := 0
		for j := 0; j < n; j++ {
			row := o + j
			start := sn.from[row]
			end := sn.last[row]
			if j+1 < n {
				end = sn.from[row+1] - 1
			}
			// Epochs ascend, so each search resumes where the last ended.
			l := lo + sort.Search(len(days)-lo, func(k int) bool { return days[lo+k] >= start })
			h := l + sort.Search(len(days)-l, func(k int) bool { return days[l+k] > end })
			lo = h
			if l < h {
				fn(domain, sn.configs[sn.cfg[row]], l, h)
			}
		}
	}
}

// Stats describes the store's compression behavior.
type Stats struct {
	Domains int
	Epochs  int64
	// NaiveRecords is what one-record-per-sweep storage would hold.
	NaiveRecords int64
}

// Stats returns compression statistics.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{Domains: len(s.names), Epochs: s.live, NaiveRecords: s.naive}
}

// History returns the epochs for one domain as (from, lastSeen, config)
// triples, for inspection tools. The configs alias the interned pools
// and must be treated as read-only.
func (s *Store) History(domain string) []Measurement {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.byName[domain]
	if !ok {
		return nil
	}
	o, n := s.off[d], s.cnt[d]
	out := make([]Measurement, n)
	for j := uint32(0); j < n; j++ {
		out[j] = Measurement{Domain: domain, Day: s.epochFrom[o+j], Config: s.intern.config(s.epochCfg[o+j])}
	}
	return out
}
