// Package store is the longitudinal measurement database: per-domain,
// per-sweep DNS measurements with epoch compression. OpenINTEL-style
// collection produces one record per domain per sweep, but domain
// configurations are piecewise-constant, so the store keeps an epoch only
// when the observed configuration changes — a ~50× reduction over naive
// per-day snapshots on the paper's five-year window (the ablation bench in
// bench_test.go quantifies this) — while reconstructing the full snapshot
// for any measured day.
package store

import (
	"net/netip"
	"sort"
	"sync"

	"whereru/internal/simtime"
)

// Config is one observed DNS configuration for a domain: its delegated
// name-server set, the addresses those servers resolve to, and the A
// records of the domain apex. All slices are sorted; Configs with equal
// content compare equal via Equal.
type Config struct {
	// NSHosts are the delegated name-server names.
	NSHosts []string
	// NSAddrs is the union of the name servers' A records.
	NSAddrs []netip.Addr
	// ApexAddrs are the domain apex's A records.
	ApexAddrs []netip.Addr
	// MXHosts are the domain's mail-exchanger names (optional; collected
	// when the pipeline's mail extension is enabled).
	MXHosts []string
	// Failed marks a sweep where resolution failed entirely (measurement
	// outage or unreachable infrastructure).
	Failed bool
}

// Normalize sorts the slices in place and returns the config.
func (c Config) Normalize() Config {
	sort.Strings(c.NSHosts)
	sortAddrs(c.NSAddrs)
	sortAddrs(c.ApexAddrs)
	sort.Strings(c.MXHosts)
	return c
}

// sortAddrs sorts in place. Address sets are a handful of entries, so
// insertion sort beats sort.Slice and allocates nothing (sort.Slice
// allocates a reflect-based swapper per call — measurable at sweep
// scale).
func sortAddrs(a []netip.Addr) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j].Less(a[j-1]); j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Equal reports deep equality with another config (both assumed
// normalized).
func (c Config) Equal(o Config) bool {
	if c.Failed != o.Failed ||
		len(c.NSHosts) != len(o.NSHosts) ||
		len(c.NSAddrs) != len(o.NSAddrs) ||
		len(c.ApexAddrs) != len(o.ApexAddrs) ||
		len(c.MXHosts) != len(o.MXHosts) {
		return false
	}
	for i := range c.NSHosts {
		if c.NSHosts[i] != o.NSHosts[i] {
			return false
		}
	}
	for i := range c.NSAddrs {
		if c.NSAddrs[i] != o.NSAddrs[i] {
			return false
		}
	}
	for i := range c.ApexAddrs {
		if c.ApexAddrs[i] != o.ApexAddrs[i] {
			return false
		}
	}
	for i := range c.MXHosts {
		if c.MXHosts[i] != o.MXHosts[i] {
			return false
		}
	}
	return true
}

// Measurement is one sweep's observation of one domain.
type Measurement struct {
	Domain string
	Day    simtime.Day
	Config Config
}

// epoch is a run of sweeps with an identical configuration.
type epoch struct {
	from, lastSeen simtime.Day
	config         Config
}

type domainSeries struct {
	epochs []epoch // sorted by from
}

// Store is the measurement database.
type Store struct {
	mu      sync.RWMutex
	domains map[string]*domainSeries
	sweeps  []simtime.Day // sorted unique sweep days recorded
	// missing holds scheduled-but-uncollected sweep days (sorted unique):
	// collection outages the analyses must treat as gaps, not data.
	missing []simtime.Day
	// index is the cached sorted domain list; nil means dirty (a domain
	// was added since the last build). Rebuilt lazily by sortedIndex.
	index []string
	// gen is the store revision, bumped on every mutation that changes
	// what a reader could observe (Add, BeginSweep, MarkMissingSweep —
	// and therefore also journal replay and file decode, which go
	// through those). Result caches key on it to invalidate when the
	// store gains sweeps.
	gen uint64
	// naive counts what the uncompressed record count would be, for the
	// compression-ratio ablation.
	naive int64
}

// New returns an empty store.
func New() *Store {
	return &Store{domains: make(map[string]*domainSeries)}
}

// BeginSweep registers a sweep day. Sweeps must be recorded in
// chronological order.
func (s *Store) BeginSweep(day simtime.Day) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.sweeps); n == 0 || s.sweeps[n-1] < day {
		s.sweeps = append(s.sweeps, day)
		s.gen++
	}
}

// MarkMissingSweep records a scheduled sweep day on which no collection
// happened (an outage or a deliberately dropped day). Missing days are
// what make the analysis layer honest about gaps: series points on them
// are carry-forward values, flagged Interpolated rather than presented
// as fresh measurements.
func (s *Store) MarkMissingSweep(day simtime.Day) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := sort.Search(len(s.missing), func(i int) bool { return s.missing[i] >= day })
	if i < len(s.missing) && s.missing[i] == day {
		return
	}
	s.missing = append(s.missing, 0)
	copy(s.missing[i+1:], s.missing[i:])
	s.missing[i] = day
	s.gen++
}

// Generation returns the store revision: a counter that increases on
// every observable mutation. Two calls returning the same value bracket
// a window in which the store's contents did not change, which is what
// makes it a sound cache-invalidation key.
func (s *Store) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// MissingSweeps returns the scheduled-but-uncollected sweep days.
func (s *Store) MissingSweeps() []simtime.Day {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]simtime.Day(nil), s.missing...)
}

// Add records a measurement. Measurements for one domain must arrive in
// chronological order (the pipeline guarantees this).
func (s *Store) Add(m Measurement) {
	cfg := m.Config.Normalize()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.naive++
	s.gen++
	ds, ok := s.domains[m.Domain]
	if !ok {
		ds = &domainSeries{}
		s.domains[m.Domain] = ds
		s.index = nil // new domain invalidates the sorted index
	}
	if n := len(ds.epochs); n > 0 && ds.epochs[n-1].config.Equal(cfg) && ds.epochs[n-1].lastSeen <= m.Day {
		ds.epochs[n-1].lastSeen = m.Day
		return
	}
	ds.epochs = append(ds.epochs, epoch{from: m.Day, lastSeen: m.Day, config: cfg})
}

// At returns the configuration observed for domain at the most recent
// sweep at or before day. ok is false when the domain has no measurement
// by then.
func (s *Store) At(domain string, day simtime.Day) (Config, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, ok := s.domains[domain]
	if !ok {
		return Config{}, false
	}
	return ds.at(day)
}

func (ds *domainSeries) at(day simtime.Day) (Config, bool) {
	return epochAt(ds.epochs, day)
}

// MeasuredOn reports whether the domain was seen on a sweep at or before
// day and at or after the epoch containing day started. A domain that
// dropped out of the zone stops being "measured" after its last sweep.
func (s *Store) MeasuredOn(domain string, day simtime.Day) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, ok := s.domains[domain]
	if !ok {
		return false
	}
	i := sort.Search(len(ds.epochs), func(i int) bool { return ds.epochs[i].from > day })
	if i == 0 {
		return false
	}
	// Measured if the covering epoch's run extends to (or past) day, or a
	// later epoch exists (meaning the domain was still in the zone).
	return i < len(ds.epochs) || ds.epochs[i-1].lastSeen >= day
}

// sortedIndex returns the cached sorted domain list, rebuilding it when a
// new domain has been added since the last build. The returned slice is
// shared and must not be mutated.
func (s *Store) sortedIndex() []string {
	s.mu.RLock()
	idx := s.index
	s.mu.RUnlock()
	if idx != nil {
		return idx
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.index == nil {
		idx = make([]string, 0, len(s.domains))
		for d := range s.domains {
			idx = append(idx, d)
		}
		sort.Strings(idx)
		s.index = idx
	}
	return s.index
}

// Domains returns all measured domain names, sorted.
func (s *Store) Domains() []string {
	return append([]string(nil), s.sortedIndex()...)
}

// NumDomains returns the number of measured domains.
func (s *Store) NumDomains() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.domains)
}

// Sweeps returns the recorded sweep days.
func (s *Store) Sweeps() []simtime.Day {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]simtime.Day(nil), s.sweeps...)
}

// ForEachAt calls fn with every domain measured on day (per MeasuredOn)
// and its configuration at that day, in sorted domain order. The day's
// view is gathered under a single read lock, then fn runs unlocked (so it
// may call back into the store).
func (s *Store) ForEachAt(day simtime.Day, fn func(domain string, cfg Config)) {
	idx := s.sortedIndex()
	type hit struct {
		domain string
		cfg    Config
	}
	hits := make([]hit, 0, len(idx))
	s.mu.RLock()
	for _, d := range idx {
		ds := s.domains[d]
		i := sort.Search(len(ds.epochs), func(i int) bool { return ds.epochs[i].from > day })
		if i > 0 && (i < len(ds.epochs) || ds.epochs[i-1].lastSeen >= day) {
			hits = append(hits, hit{domain: d, cfg: ds.epochs[i-1].config})
		}
	}
	s.mu.RUnlock()
	for _, h := range hits {
		fn(h.domain, h.cfg)
	}
}

// Snapshot is a read-only capture of the store: the sorted domain list and
// every domain's epochs, copied under one lock. Analyses iterate a
// Snapshot lock-free (and concurrently) while collection may continue to
// mutate the live store.
type Snapshot struct {
	domains []string
	series  [][]epoch // parallel to domains
	sweeps  []simtime.Day
}

// Snapshot captures the store's current contents.
func (s *Store) Snapshot() *Snapshot {
	idx := s.sortedIndex()
	s.mu.RLock()
	defer s.mu.RUnlock()
	series := make([][]epoch, len(idx))
	for i, d := range idx {
		// Copy the epoch structs: Add mutates the live tail epoch's
		// lastSeen in place. The configs' slices are immutable once stored.
		series[i] = append([]epoch(nil), s.domains[d].epochs...)
	}
	return &Snapshot{
		domains: idx,
		series:  series,
		sweeps:  append([]simtime.Day(nil), s.sweeps...),
	}
}

// Domains returns the snapshot's sorted domain names. The slice is shared
// and must not be mutated.
func (sn *Snapshot) Domains() []string { return sn.domains }

// NumDomains returns the number of captured domains.
func (sn *Snapshot) NumDomains() int { return len(sn.domains) }

// Sweeps returns the sweep days captured in the snapshot.
func (sn *Snapshot) Sweeps() []simtime.Day { return sn.sweeps }

// At returns the domain's configuration at day, with the same semantics as
// Store.At.
func (sn *Snapshot) At(i int, day simtime.Day) (Config, bool) {
	return epochAt(sn.series[i], day)
}

// MeasuredAt reports whether domain i was measured on day, with the same
// semantics as Store.MeasuredOn.
func (sn *Snapshot) MeasuredAt(i int, day simtime.Day) bool {
	es := sn.series[i]
	j := sort.Search(len(es), func(j int) bool { return es[j].from > day })
	if j == 0 {
		return false
	}
	return j < len(es) || es[j-1].lastSeen >= day
}

func epochAt(es []epoch, day simtime.Day) (Config, bool) {
	i := sort.Search(len(es), func(i int) bool { return es[i].from > day })
	if i == 0 {
		return Config{}, false
	}
	return es[i-1].config, true
}

// ForEachEpochIn yields every domain's epochs intersected with the sorted
// sweep days: fn is called once per (domain, epoch) whose effective
// interval covers at least one of days, with [lo, hi) the covered index
// range into days. An epoch's effective interval runs from its first
// sweep to the day before the next epoch starts (a later epoch means the
// domain stayed in the zone), or to its last sighting for the final epoch
// — exactly the days ForEachAt would report the domain measured.
//
// This is the analysis fast path: classification work that is constant
// over an epoch runs once per epoch instead of once per day.
func (sn *Snapshot) ForEachEpochIn(days []simtime.Day, fn func(domain string, cfg Config, lo, hi int)) {
	sn.VisitEpochs(days, 0, len(sn.domains), fn)
}

// VisitEpochs is ForEachEpochIn restricted to the domains with index in
// [first, last), enabling callers to shard a snapshot across workers.
func (sn *Snapshot) VisitEpochs(days []simtime.Day, first, last int, fn func(domain string, cfg Config, lo, hi int)) {
	if first < 0 {
		first = 0
	}
	if last > len(sn.domains) {
		last = len(sn.domains)
	}
	for i := first; i < last; i++ {
		domain := sn.domains[i]
		es := sn.series[i]
		lo := 0
		for j, e := range es {
			start := e.from
			end := e.lastSeen
			if j+1 < len(es) {
				end = es[j+1].from - 1
			}
			// Epochs ascend, so each search resumes where the last ended.
			l := lo + sort.Search(len(days)-lo, func(k int) bool { return days[lo+k] >= start })
			h := l + sort.Search(len(days)-l, func(k int) bool { return days[l+k] > end })
			lo = h
			if l < h {
				fn(domain, e.config, l, h)
			}
		}
	}
}

// Stats describes the store's compression behavior.
type Stats struct {
	Domains int
	Epochs  int64
	// NaiveRecords is what one-record-per-sweep storage would hold.
	NaiveRecords int64
}

// Stats returns compression statistics.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var epochs int64
	for _, ds := range s.domains {
		epochs += int64(len(ds.epochs))
	}
	return Stats{Domains: len(s.domains), Epochs: epochs, NaiveRecords: s.naive}
}

// History returns the epochs for one domain as (from, lastSeen, config)
// triples, for inspection tools.
func (s *Store) History(domain string) []Measurement {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, ok := s.domains[domain]
	if !ok {
		return nil
	}
	out := make([]Measurement, len(ds.epochs))
	for i, e := range ds.epochs {
		out[i] = Measurement{Domain: domain, Day: e.from, Config: e.config}
	}
	return out
}
