package store

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"whereru/internal/iofault"
)

// storeSection is one length-framed, checksummed region of a v3 store
// file: [off, end) covering payloadLen u32 | payload | crc32c u32.
type storeSection struct {
	name     string
	off, end int
}

// walkSections parses a v3 store file's framing into named sections:
// the fixed layout is sweeps, missing days, domain count, then one
// section per domain.
func walkSections(t *testing.T, full []byte) []storeSection {
	t.Helper()
	names := []string{"sweeps", "missing", "domain-count"}
	var secs []storeSection
	off := 6 // magic + version
	for i := 0; off < len(full); i++ {
		if off+4 > len(full) {
			t.Fatalf("section %d: torn length at %d", i, off)
		}
		payloadLen := int(binary.BigEndian.Uint32(full[off:]))
		end := off + 4 + payloadLen + 4
		if end > len(full) {
			t.Fatalf("section %d: runs past the file (%d > %d)", i, end, len(full))
		}
		name := "domain"
		if i < len(names) {
			name = names[i]
		}
		secs = append(secs, storeSection{name: name, off: off, end: end})
		off = end
	}
	return secs
}

// sampleOffsets picks n deterministic byte offsets inside [off, end),
// spread by an FNV hash so the samples land in length prefixes,
// payloads and checksums alike.
func sampleOffsets(off, end, n int, salt uint64) []int {
	if end <= off {
		return nil
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		h := fnv.New64a()
		var b [16]byte
		binary.BigEndian.PutUint64(b[:8], salt)
		binary.BigEndian.PutUint64(b[8:], uint64(i))
		h.Write(b[:])
		out = append(out, off+int(h.Sum64()%uint64(end-off)))
	}
	return out
}

// TestReadRecoverSectionFaults flips a byte at sampled offsets inside
// every section of a v3 file and asserts the salvage contract per
// section kind: damage to the sweeps/missing/count headers recovers
// zero domains (the prefix before the damage holds none), damage to
// domain section k recovers exactly the first k domains with intact
// histories — never a partial or corrupted history.
func TestReadRecoverSectionFaults(t *testing.T) {
	s := buildStore(12)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	secs := walkSections(t, full)
	wantDomains := s.Domains()

	domainIdx := 0
	for _, sec := range secs {
		wantPrefix := 0 // domains that must survive damage in this section
		if sec.name == "domain" {
			wantPrefix = domainIdx
			domainIdx++
		}
		for _, pos := range sampleOffsets(sec.off, sec.end, 8, uint64(sec.off)) {
			flipped := append([]byte(nil), full...)
			flipped[pos] ^= 0x01
			if bytes.Equal(flipped, full) {
				t.Fatalf("flip at %d was a no-op", pos)
			}
			back, rec, err := ReadRecover(bytes.NewReader(flipped))
			if err != nil {
				t.Fatalf("%s@%d: ReadRecover error: %v", sec.name, pos, err)
			}
			if !rec.Damaged {
				t.Fatalf("%s@%d: damage not flagged", sec.name, pos)
			}
			got := back.Domains()
			if len(got) != wantPrefix {
				t.Fatalf("%s@%d: recovered %d domains, want the %d before the damage",
					sec.name, pos, len(got), wantPrefix)
			}
			for i, d := range got {
				if d != wantDomains[i] {
					t.Fatalf("%s@%d: domain %d is %q, want %q", sec.name, pos, i, d, wantDomains[i])
				}
				if !reflect.DeepEqual(back.History(d), s.History(d)) {
					t.Fatalf("%s@%d: salvaged history for %s differs", sec.name, pos, d)
				}
			}
			if rec.GoodBytes > int64(sec.end) {
				t.Fatalf("%s@%d: GoodBytes %d claims bytes past the damaged section (%d)",
					sec.name, pos, rec.GoodBytes, sec.end)
			}
		}
	}
	if domainIdx != len(wantDomains) {
		t.Fatalf("walked %d domain sections, store has %d domains", domainIdx, len(wantDomains))
	}
}

// TestReadRecoverTruncationAtSectionBoundaries cuts the file exactly at
// each section boundary: a clean cut after domain section k is the
// crash-after-k-writes shape, and must recover exactly k domains.
func TestReadRecoverTruncationAtSectionBoundaries(t *testing.T) {
	s := buildStore(9)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	secs := walkSections(t, full)
	domainsSeen := 0
	for _, sec := range secs {
		if sec.name == "domain" {
			domainsSeen++
		}
		back, rec, err := ReadRecover(bytes.NewReader(full[:sec.end]))
		if err != nil {
			t.Fatalf("cut after %s: %v", sec.name, err)
		}
		wantDamaged := sec.end != len(full)
		if rec.Damaged != wantDamaged {
			t.Fatalf("cut after %s@%d: Damaged=%v want %v", sec.name, sec.end, rec.Damaged, wantDamaged)
		}
		if got := len(back.Domains()); got != domainsSeen {
			t.Fatalf("cut after %s: %d domains, want %d", sec.name, got, domainsSeen)
		}
	}
}

// TestReadRecoverThroughFaultFS reads the store through the iofault
// layer: short reads must be invisible (they defer bytes, not lose
// them), and injected bit-flips must surface as flagged damage with a
// clean prefix salvage — the disk-rot shape of the same contract.
func TestReadRecoverThroughFaultFS(t *testing.T) {
	s := buildStore(10)
	path := filepath.Join(t.TempDir(), "s.wrst")
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// Short reads: same store, byte for byte.
	sfs := iofault.NewFaultFS(iofault.OS, 31, iofault.Profile{ShortReadProb: 0.9})
	f, err := iofault.Open(sfs, path)
	if err != nil {
		t.Fatal(err)
	}
	back, rec, err := ReadRecover(f)
	f.Close()
	if err != nil || rec.Damaged {
		t.Fatalf("short reads broke recovery: err=%v damaged=%v", err, rec.Damaged)
	}
	storesEqual(t, s, back)
	if sfs.Stats().Injected == 0 {
		t.Fatal("no short reads injected")
	}

	// Bit rot on the read path: flagged, salvage is an intact prefix.
	for _, seed := range []int64{41, 42, 43, 44} {
		bfs := iofault.NewFaultFS(iofault.OS, seed, iofault.Profile{ReadBitFlipProb: 0.05})
		f, err := iofault.Open(bfs, path)
		if err != nil {
			t.Fatal(err)
		}
		back, rec, err := ReadRecover(io.Reader(f))
		f.Close()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if bfs.Stats().Injected == 0 {
			// This seed's schedule flipped nothing in a file this size;
			// the clean-read contract applies instead.
			if rec.Damaged {
				t.Fatalf("seed %d: no fault injected but damage flagged", seed)
			}
			continue
		}
		if !rec.Damaged {
			// A flip can land in bytes ReadRecover never checksums only if
			// it hit a region already past GoodBytes; with flips injected
			// the file must not silently read back identical.
			storesEqual(t, s, back)
			continue
		}
		for _, d := range back.Domains() {
			if !reflect.DeepEqual(back.History(d), s.History(d)) {
				t.Fatalf("seed %d: salvaged history for %s differs", seed, d)
			}
		}
	}
}
