// Package sanctions models the US OFAC SDN and UK sanctions lists as they
// bear on domain names. The paper labels 107 unique .ru/.рф domains as
// sanctioned from their appearance on either list (§2); this package holds
// that list model, listing dates, and the matcher used to classify
// certificates and measurements.
package sanctions

import (
	"sort"
	"strings"
	"sync"

	"whereru/internal/dns"
	"whereru/internal/simtime"
)

// Authority identifies which sanctions regime listed an entity.
type Authority int

// The two authorities the paper draws from.
const (
	USOFAC Authority = 1 << iota
	UKSanctions
)

// String names the authority set.
func (a Authority) String() string {
	var parts []string
	if a&USOFAC != 0 {
		parts = append(parts, "US-OFAC-SDN")
	}
	if a&UKSanctions != 0 {
		parts = append(parts, "UK")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// Entry is one sanctioned domain.
type Entry struct {
	// Domain is the canonical sanctioned name.
	Domain string
	// Entity is the sanctioned organization behind the domain.
	Entity string
	// Listed is when the domain first appeared on a list.
	Listed simtime.Day
	// Authorities is the set of regimes listing it.
	Authorities Authority
}

// List is a set of sanctioned domains with date-aware membership.
type List struct {
	mu      sync.RWMutex
	entries map[string]Entry
}

// NewList returns an empty sanctions list.
func NewList() *List { return &List{entries: make(map[string]Entry)} }

// Add inserts or merges an entry. Adding the same domain under another
// authority unions the authorities and keeps the earliest listing date.
func (l *List) Add(e Entry) {
	e.Domain = dns.Canonical(e.Domain)
	l.mu.Lock()
	defer l.mu.Unlock()
	if prev, ok := l.entries[e.Domain]; ok {
		if prev.Listed < e.Listed {
			e.Listed = prev.Listed
		}
		e.Authorities |= prev.Authorities
		if e.Entity == "" {
			e.Entity = prev.Entity
		}
	}
	l.entries[e.Domain] = e
}

// Len returns the number of unique sanctioned domains.
func (l *List) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// Contains reports whether name or a parent of name is sanctioned as of
// day (subdomains of a sanctioned domain count as sanctioned, matching
// how certificates for www.<sanctioned> are treated).
func (l *List) Contains(name string, day simtime.Day) bool {
	e, ok := l.Match(name)
	return ok && e.Listed <= day
}

// ContainsEver is Contains without the date condition — the paper's §4
// certificate analysis labels a domain sanctioned regardless of when the
// certificate was issued relative to the listing.
func (l *List) ContainsEver(name string) bool {
	_, ok := l.Match(name)
	return ok
}

// Match finds the entry covering name (exact or ancestor match).
func (l *List) Match(name string) (Entry, bool) {
	name = dns.Canonical(name)
	l.mu.RLock()
	defer l.mu.RUnlock()
	for n := name; n != "."; n = dns.Parent(n) {
		if e, ok := l.entries[n]; ok {
			return e, true
		}
	}
	return Entry{}, false
}

// Domains returns the sanctioned domains listed on or before day, sorted.
func (l *List) Domains(day simtime.Day) []string {
	l.mu.RLock()
	out := make([]string, 0, len(l.entries))
	for _, e := range l.entries {
		if e.Listed <= day {
			out = append(out, e.Domain)
		}
	}
	l.mu.RUnlock()
	sort.Strings(out)
	return out
}

// AllDomains returns every sanctioned domain regardless of date, sorted.
func (l *List) AllDomains() []string {
	l.mu.RLock()
	out := make([]string, 0, len(l.entries))
	for _, e := range l.entries {
		out = append(out, e.Domain)
	}
	l.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Entries returns all entries sorted by domain.
func (l *List) Entries() []Entry {
	l.mu.RLock()
	out := make([]Entry, 0, len(l.entries))
	for _, e := range l.entries {
		out = append(out, e)
	}
	l.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}
