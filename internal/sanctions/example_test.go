package sanctions_test

import (
	"fmt"

	"whereru/internal/sanctions"
	"whereru/internal/simtime"
)

func ExampleList() {
	l := sanctions.NewList()
	l.Add(sanctions.Entry{
		Domain:      "vtb.ru",
		Entity:      "VTB Bank",
		Listed:      simtime.Date(2022, 2, 25),
		Authorities: sanctions.USOFAC | sanctions.UKSanctions,
	})
	e, _ := l.Match("online.vtb.ru.")
	fmt.Println(e.Entity, "—", e.Authorities)
	fmt.Println("sanctioned on Feb 24:", l.Contains("vtb.ru.", simtime.Date(2022, 2, 24)))
	fmt.Println("sanctioned on Feb 25:", l.Contains("vtb.ru.", simtime.Date(2022, 2, 25)))
	// Output:
	// VTB Bank — US-OFAC-SDN+UK
	// sanctioned on Feb 24: false
	// sanctioned on Feb 25: true
}
