package sanctions

import (
	"testing"

	"whereru/internal/simtime"
)

func TestAddAndMatch(t *testing.T) {
	l := NewList()
	listed := simtime.MustParse("2022-02-25")
	l.Add(Entry{Domain: "vtb.ru", Entity: "VTB Bank", Listed: listed, Authorities: USOFAC})
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
	e, ok := l.Match("vtb.ru.")
	if !ok || e.Entity != "VTB Bank" {
		t.Fatalf("Match = %+v, %v", e, ok)
	}
	// Subdomains match.
	if _, ok := l.Match("online.vtb.ru."); !ok {
		t.Error("subdomain did not match")
	}
	if _, ok := l.Match("notvtb.ru."); ok {
		t.Error("sibling matched")
	}
	if !l.ContainsEver("www.vtb.ru.") {
		t.Error("ContainsEver failed")
	}
}

func TestDateAwareness(t *testing.T) {
	l := NewList()
	listed := simtime.MustParse("2022-02-25")
	l.Add(Entry{Domain: "sber.ru", Listed: listed, Authorities: UKSanctions})
	if l.Contains("sber.ru.", listed.Add(-1)) {
		t.Error("sanctioned before listing date")
	}
	if !l.Contains("sber.ru.", listed) {
		t.Error("not sanctioned on listing date")
	}
	if got := l.Domains(listed.Add(-1)); len(got) != 0 {
		t.Errorf("Domains before listing = %v", got)
	}
	if got := l.Domains(listed); len(got) != 1 {
		t.Errorf("Domains on listing day = %v", got)
	}
}

func TestMergeAuthorities(t *testing.T) {
	l := NewList()
	early := simtime.MustParse("2022-02-25")
	late := simtime.MustParse("2022-03-15")
	l.Add(Entry{Domain: "dual.ru", Entity: "Dual Org", Listed: late, Authorities: USOFAC})
	l.Add(Entry{Domain: "dual.ru", Listed: early, Authorities: UKSanctions})
	e, _ := l.Match("dual.ru.")
	if e.Listed != early {
		t.Errorf("merged Listed = %v, want earliest %v", e.Listed, early)
	}
	if e.Authorities != USOFAC|UKSanctions {
		t.Errorf("merged Authorities = %v", e.Authorities)
	}
	if e.Entity != "Dual Org" {
		t.Errorf("entity lost in merge: %q", e.Entity)
	}
	if l.Len() != 1 {
		t.Errorf("merge created duplicate: Len = %d", l.Len())
	}
}

func TestAuthorityString(t *testing.T) {
	if USOFAC.String() != "US-OFAC-SDN" {
		t.Error(USOFAC.String())
	}
	if UKSanctions.String() != "UK" {
		t.Error(UKSanctions.String())
	}
	if (USOFAC | UKSanctions).String() != "US-OFAC-SDN+UK" {
		t.Error((USOFAC | UKSanctions).String())
	}
	if Authority(0).String() != "none" {
		t.Error(Authority(0).String())
	}
}

func TestSortedAccessors(t *testing.T) {
	l := NewList()
	for _, d := range []string{"zzz.ru", "aaa.ru", "mmm.ru"} {
		l.Add(Entry{Domain: d, Listed: 1})
	}
	all := l.AllDomains()
	if len(all) != 3 || all[0] != "aaa.ru." || all[2] != "zzz.ru." {
		t.Errorf("AllDomains = %v", all)
	}
	entries := l.Entries()
	if len(entries) != 3 || entries[0].Domain != "aaa.ru." {
		t.Errorf("Entries = %v", entries)
	}
}
