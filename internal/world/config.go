package world

import "fmt"

// Config controls world generation.
type Config struct {
	// Seed makes the world deterministic; two worlds with equal Config
	// are identical.
	Seed int64
	// Scale divides the paper's population counts: Scale=200 simulates
	// 1/200th of the 11.7M unique domains. Percentage-valued results are
	// scale-invariant (up to sampling noise); absolute counts in reports
	// are multiplied back up by Scale.
	Scale int
	// RFShare is the fraction of domains under .рф (the rest are .ru).
	RFShare float64
	// GeoNoise is the fraction of /24 subnets whose geolocation disagrees
	// with the operator's true country — the paper's footnote 5 notes "a
	// small percentage of disagreement in country-level geolocation".
	// 0 (the default) models a perfect database.
	GeoNoise float64
}

// DefaultConfig is the full-fidelity configuration used by cmd/whereru.
func DefaultConfig() Config {
	return Config{Seed: 20220224, Scale: 200, RFShare: 0.10}
}

// TestConfig is a small, fast world for tests and examples.
func TestConfig() Config {
	return Config{Seed: 20220224, Scale: 2000, RFShare: 0.10}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Scale < 1 {
		return fmt.Errorf("world: Scale must be ≥ 1, got %d", c.Scale)
	}
	if c.RFShare < 0 || c.RFShare > 1 {
		return fmt.Errorf("world: RFShare must be in [0,1], got %g", c.RFShare)
	}
	if c.GeoNoise < 0 || c.GeoNoise > 0.5 {
		return fmt.Errorf("world: GeoNoise must be in [0,0.5], got %g", c.GeoNoise)
	}
	return nil
}

// NumDomains returns the number of simulated domains (ever registered).
func (c Config) NumDomains() int {
	return int(PaperNumbers.UniqueDomainsEver) / c.Scale
}
