package world

import (
	"context"
	"testing"

	"whereru/internal/dns"
	"whereru/internal/simtime"
)

func TestMailProviderDeterministic(t *testing.T) {
	w := getWorld(t)
	day := simtime.ConflictStart.Add(-30)
	var withMail, without int
	for _, name := range w.names[:500] {
		d := w.domains[name]
		p1 := w.MailProviderFor(d, day)
		p2 := w.MailProviderFor(d, day)
		if p1 != p2 {
			t.Fatalf("mail provider for %s not deterministic", name)
		}
		if p1 == nil {
			without++
		} else {
			withMail++
			if p1.MailHost == "" {
				t.Fatalf("mail provider %s has no mail host", p1.Key)
			}
		}
	}
	// ≈88% of domains publish MX.
	if withMail < 350 || without < 20 {
		t.Errorf("mail split = %d with / %d without, want ≈88/12", withMail, without)
	}
}

func TestMailDominatedByDomesticProviders(t *testing.T) {
	w := getWorld(t)
	day := simtime.ConflictStart.Add(-30)
	counts := map[string]int{}
	for _, name := range w.names {
		d := w.domains[name]
		if !d.ActiveOn(day) {
			continue
		}
		if p := w.MailProviderFor(d, day); p != nil {
			counts[p.Key]++
		}
	}
	if counts["yandex"] <= counts["google"] {
		t.Errorf("yandex mail (%d) should dominate google (%d)", counts["yandex"], counts["google"])
	}
	if counts["mailru"] == 0 {
		t.Error("no Mail.ru customers")
	}
}

func TestGoogleWorkspaceMigration(t *testing.T) {
	w := getWorld(t)
	before := GoogleStmtDay.Add(-5)
	after := GoogleStmtDay.Add(30)
	moved := 0
	stayed := 0
	for _, name := range w.names {
		d := w.domains[name]
		if !d.ActiveOn(after) {
			continue
		}
		pb := w.MailProviderFor(d, before)
		pa := w.MailProviderFor(d, after)
		if pb != nil && pb.Key == "google" {
			if pa != nil && pa.Key != "google" {
				moved++
				if pa.Country != "RU" {
					t.Errorf("google-mail domain %s moved to non-RU provider %s", name, pa.Key)
				}
			} else {
				stayed++
			}
		}
	}
	if moved == 0 {
		t.Error("no Google Workspace migrations after the announcement")
	}
	if stayed == 0 {
		t.Error("every Google Workspace customer left; expected a partial move")
	}
}

func TestMXServedOverDNS(t *testing.T) {
	w := getWorld(t)
	day := simtime.ConflictStart
	w.Clock().Set(day)
	r := w.NewResolver()
	ctx := context.Background()

	checked := 0
	for _, name := range w.names {
		if checked >= 20 {
			break
		}
		d := w.domains[name]
		if !d.ActiveOn(day) {
			continue
		}
		want := w.MailProviderFor(d, day)
		res, err := r.Resolve(ctx, name, dns.TypeMX)
		if err != nil {
			t.Fatalf("MX(%s): %v", name, err)
		}
		if want == nil {
			if len(res.Answers) != 0 {
				t.Fatalf("%s should publish no MX, got %v", name, res.Answers)
			}
		} else {
			if len(res.Answers) != 1 {
				t.Fatalf("%s MX answers = %v", name, res.Answers)
			}
			mx := res.Answers[0].Data.(dns.MXData)
			if mx.Host != want.MailHost {
				t.Fatalf("%s MX = %s, want %s", name, mx.Host, want.MailHost)
			}
			// The MX target must itself resolve.
			addrs, err := r.LookupHost(ctx, mx.Host, 0)
			if err != nil || len(addrs) == 0 {
				t.Fatalf("MX target %s unresolvable: %v", mx.Host, err)
			}
			if addrs[0] != want.MailAddr {
				t.Fatalf("MX target %s = %v, want %v", mx.Host, addrs[0], want.MailAddr)
			}
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("only checked %d domains", checked)
	}
}
