package world

import (
	"fmt"
	"math/rand"
	"sort"

	"whereru/internal/idn"
	"whereru/internal/simtime"
)

// eraSplitDay separates the "early" and "late" configuration-weight eras;
// configurations chosen from 2020 on use the late tables, which drives the
// paper's slow TLD-dependency trends (Figures 2 and 3).
var eraSplitDay = simtime.Date(2020, 1, 1)

// churnCutoff ends baseline provider churn; from here on, configuration
// changes come from the explicit 2022 event timeline.
var churnCutoff = simtime.Date(2022, 2, 1)

// epochRec is one piecewise-constant configuration interval; it applies
// from From until the next epoch (or the end of the domain's life).
type epochRec struct {
	From simtime.Day
	// DNS is a key into dnsProfiles.
	DNS string
	// Host is a key into hostProfiles.
	Host string
}

// DomainRec is one simulated domain's full history.
type DomainRec struct {
	// Name is canonical and ACE-encoded.
	Name string
	// Created and Removed bound the registration (Removed 0 = live).
	Created simtime.Day
	Removed simtime.Day
	// Sanctioned marks the 107 sanctioned domains.
	Sanctioned bool
	// epochs is sorted by From; epochs[0].From == Created.
	epochs []epochRec
}

// ActiveOn reports whether the domain is registered on day.
func (d *DomainRec) ActiveOn(day simtime.Day) bool {
	return d.Created <= day && (d.Removed == 0 || day < d.Removed)
}

// ConfigAt returns the configuration in force on day.
func (d *DomainRec) ConfigAt(day simtime.Day) (epochRec, bool) {
	if !d.ActiveOn(day) {
		return epochRec{}, false
	}
	i := sort.Search(len(d.epochs), func(i int) bool { return d.epochs[i].From > day })
	if i == 0 {
		return epochRec{}, false
	}
	return d.epochs[i-1], true
}

// setConfig inserts a configuration change at day, replacing any changes
// scheduled at the same day and keeping epochs sorted. Zero-valued fields
// inherit from the configuration in force at day.
func (d *DomainRec) setConfig(day simtime.Day, dns, host string) {
	cur, ok := d.ConfigAt(day)
	if !ok {
		// The domain is not registered on that day (e.g. an event's
		// delayed move landing after the registration lapsed): drop the
		// change rather than record an epoch nobody can serve.
		return
	}
	if dns == "" {
		dns = cur.DNS
	}
	if host == "" {
		host = cur.Host
	}
	if cur.DNS == dns && cur.Host == host {
		return
	}
	e := epochRec{From: day, DNS: dns, Host: host}
	i := sort.Search(len(d.epochs), func(i int) bool { return d.epochs[i].From >= day })
	if i < len(d.epochs) && d.epochs[i].From == day {
		d.epochs[i] = e
		return
	}
	d.epochs = append(d.epochs, epochRec{})
	copy(d.epochs[i+1:], d.epochs[i:])
	d.epochs[i] = e
}

// dnsGeneral filters a DNS weight table down to the profiles sampled when
// hosting does not force the DNS choice (Cloudflare/Sedo/Amazon/Google
// DNS arrives via hosting correlation instead).
func dnsGeneral(table []weighted) []weighted {
	out := make([]weighted, 0, len(table))
	for _, w := range table {
		switch w.key {
		case "cloudflare", "sedodns", "amazonr53", "googledns":
			continue
		}
		out = append(out, w)
	}
	return out
}

var (
	dnsGeneralEarly = dnsGeneral(dnsWeightsEarly)
	dnsGeneralLate  = dnsGeneral(dnsWeightsLate)
)

// fullRUDNSProfiles are destinations for repatriation moves (also valid
// hosting-profile keys, used for hosting relocations).
var fullRUDNSProfiles = []string{
	"regru", "rucenter", "timeweb", "beget", "sprinthost", "rupool1", "rupool2", "rupool3",
}

// repatriationDNS picks the DNS destination for a conflict-driven
// repatriation: mostly domestic providers whose NS names still span
// non-Russian TLDs (so the geo composition jumps while the TLD
// composition barely moves — the paper's Figure 1 vs Figure 2 contrast).
func repatriationDNS(rng *rand.Rand) string {
	if rng.Float64() < 0.75 {
		return "beget-mixed"
	}
	return fullRUDNSProfiles[rng.Intn(len(fullRUDNSProfiles))]
}

func dnsTables(day simtime.Day) (all, general []weighted) {
	if day < eraSplitDay {
		return dnsWeightsEarly, dnsGeneralEarly
	}
	return dnsWeightsLate, dnsGeneralLate
}

func hostTable(day simtime.Day) []weighted {
	if day < eraSplitDay {
		return hostWeightsEarly
	}
	return hostWeightsLate
}

// pickDNSFor samples a DNS profile consistent with the hosting choice.
func pickDNSFor(host string, day simtime.Day, rng *rand.Rand) string {
	_, general := dnsTables(day)
	switch host {
	case "cloudflare":
		return "cloudflare"
	case "sedo":
		return "sedodns"
	case "amazon":
		if rng.Float64() < 0.6 {
			return "amazonr53"
		}
	case "google", "googlecloud2":
		if rng.Float64() < 0.7 {
			return "googledns"
		}
	}
	return sampleWeighted(general, rng.Float64())
}

// genName builds the i-th domain name: ~RFShare of names are Cyrillic
// labels punycode-encoded under .рф, the rest synthetic .ru names.
func (w *World) genName(i int, rng *rand.Rand) string {
	if rng.Float64() < w.cfg.RFShare {
		label, err := idn.EncodeLabel(fmt.Sprintf("домен%d", i))
		if err == nil {
			return label + "." + idn.RFTLDASCII + "."
		}
	}
	return fmt.Sprintf("domain%07d.ru.", i)
}

// genDomain deterministically creates the i-th domain's full history
// (lifecycle, initial profiles, baseline churn, 2022 events).
func (w *World) genDomain(i int) *DomainRec {
	rng := rand.New(rand.NewSource(w.cfg.Seed ^ (int64(i)+1)*0x5851F42D4C957F2D))
	d := &DomainRec{Name: w.genName(i, rng)}

	start, end := simtime.StudyStart, simtime.StudyEnd
	window := end.Sub(start)
	// 62% of all names predate the study window (≈4.95M of 8M... here of
	// 11.7M unique the standing stock is ~42%, but heavy parking churn
	// means most transient names live inside the window).
	if rng.Float64() < 0.42 {
		d.Created = start.Add(-1 - rng.Intn(2500))
		if rng.Float64() < 0.12 {
			d.Removed = start.Add(1 + rng.Intn(window))
		}
	} else {
		// Transient (heavily parking-driven) registrations inside the
		// window: short-lived, keeping the standing stock near the
		// paper's ≈5M while unique names reach 11.7M (scaled).
		d.Created = start.Add(1 + rng.Intn(window-1))
		if rng.Float64() < 0.95 {
			rem := d.Created.Add(21 + rng.Intn(240))
			if rem < end {
				d.Removed = rem
			}
		}
	}

	// Initial configuration, with 2022 new-registration preferences
	// (the paper's §3.4 influxes of newly registered domains).
	host := sampleWeighted(hostTable(d.Created), rng.Float64())
	if d.Created >= simtime.ConflictStart {
		switch {
		case d.Created >= AmazonStmtDay && rng.Float64() < 0.003:
			host = "amazon"
		case d.Created >= GoogleStmtDay && rng.Float64() < 0.001:
			host = "google"
		case d.Created >= CloudflareStmtDay && rng.Float64() < 0.06:
			host = "cloudflare"
		}
	}
	dns := pickDNSFor(host, d.Created, rng)
	d.epochs = append(d.epochs, epochRec{From: d.Created, DNS: dns, Host: host})

	// Baseline churn: a combined provider-change process at ~12%/year,
	// 7:5 hosting:DNS, up to churnCutoff.
	t := d.Created
	if t < start {
		t = start
	}
	for {
		wait := rng.ExpFloat64() * 365.0 / 0.12
		t = t.Add(int(wait) + 1)
		if t >= churnCutoff || (d.Removed != 0 && t >= d.Removed) {
			break
		}
		if rng.Float64() < 7.0/12.0 {
			h := sampleWeighted(hostTable(t), rng.Float64())
			d.setConfig(t, "", h)
			// Hosting moves to integrated providers drag DNS along.
			switch h {
			case "cloudflare", "sedo":
				d.setConfig(t, pickDNSFor(h, t, rng), h)
			}
		} else {
			_, general := dnsTables(t)
			d.setConfig(t, sampleWeighted(general, rng.Float64()), "")
		}
	}

	// Gradual TLD-dependency drift (Figure 2): domains on purely
	// Russian-TLD name service slowly pick up infrastructure named under
	// non-Russian TLDs (partial +7.9 points over the window), without
	// moving their geography.
	t = d.Created
	if t < start {
		t = start
	}
	for {
		t = t.Add(int(rng.ExpFloat64()*365.0/0.032) + 1)
		if t >= churnCutoff || (d.Removed != 0 && t >= d.Removed) {
			break
		}
		cfg, ok := d.ConfigAt(t)
		if !ok || !tldFullDNSProfiles[cfg.DNS] {
			continue
		}
		var dest string
		switch r := rng.Float64(); {
		case r < 0.40:
			dest = "ru-pro"
		case r < 0.72:
			dest = "rupool2"
		case r < 0.92:
			dest = "beget-mixed"
		default:
			dest = "ru-net"
		}
		d.setConfig(t, dest, "")
	}

	w.applyEvents(d, rng)
	return d
}

// tldFullDNSProfiles are DNS profiles whose NS names sit entirely under
// Russian TLDs — the source population for the Figure 2 drift.
var tldFullDNSProfiles = map[string]bool{
	"regru": true, "rucenter": true, "timeweb": true, "sprinthost": true,
	"masterhost": true, "peterhost": true, "rupool1": true, "rupool3": true,
}

// applyEvents plays the 2022 conflict timeline against one domain, in
// chronological order. Probabilities are calibrated to the paper's §3
// observations; see calibration.go.
func (w *World) applyEvents(d *DomainRec, rng *rand.Rand) {
	if d.Removed != 0 && d.Removed <= simtime.ConflictStart {
		return
	}
	end := simtime.StudyEnd

	// Domains in the §3.4 case-study sets stay in the zone through the
	// end of the window, as the paper's movement accounting implies
	// (98% + 1.6% of Sedo's set is still resolvable on May 25).
	if d.Removed != 0 && d.Removed > simtime.ConflictStart {
		for _, check := range []struct {
			day  simtime.Day
			host string
		}{
			{CloudflareStmtDay, "cloudflare"},
			{AmazonStmtDay, "amazon"},
			{SedoStmtDay.Add(-1), "sedo"},
			{GoogleStmtDay, "google"},
		} {
			if d.Removed > check.day {
				if cfg, ok := d.ConfigAt(check.day); ok && cfg.Host == check.host {
					d.Removed = 0
					break
				}
			}
		}
	}

	// Pre-conflict parking oscillation between Amazon and Sedo (Fig 4).
	if cfg, ok := d.ConfigAt(simtime.Date(2022, 2, 18)); ok && cfg.Host == "amazon" && rng.Float64() < 0.30 {
		d.setConfig(simtime.Date(2022, 2, 19).Add(rng.Intn(3)), "sedodns", "sedo")
	}
	if cfg, ok := d.ConfigAt(simtime.Date(2022, 3, 1)); ok && cfg.Host == "sedo" && rng.Float64() < 0.25 {
		d.setConfig(simtime.Date(2022, 3, 2).Add(rng.Intn(3)), "amazonr53", "amazon")
	}

	// Anticipatory repatriation of partially-Russian DNS (§3.1: "many
	// domains with name servers partially outside Russia clearly
	// transition towards fully Russian").
	if cfg, ok := d.ConfigAt(simtime.Date(2022, 2, 23)); ok {
		var p float64
		switch cfg.DNS {
		case "self-cloudflare":
			p = 0.25
		case "self-wedos":
			p = 0.30
		case "self-netnod":
			p = 0.35
		}
		if p > 0 && rng.Float64() < p {
			d.setConfig(simtime.ConflictStart.Add(rng.Intn(50)), repatriationDNS(rng), "")
		}
	}

	// Netnod stops serving its RU-CENTER secondary customers on the
	// exact cutoff day (§3.2: 76k domains partial → full on March 3).
	if cfg, ok := d.ConfigAt(NetnodCutoffDay.Add(-1)); ok && cfg.DNS == "rucenter-netnod" {
		d.setConfig(NetnodCutoffDay, "rucenter", "")
	}

	// Cloudflare: business as usual — 94% remain; a stream of incomers.
	if cfg, ok := d.ConfigAt(CloudflareStmtDay); ok {
		if cfg.Host == "cloudflare" {
			if rng.Float64() < 0.06 {
				dest := fullRUDNSProfiles[rng.Intn(len(fullRUDNSProfiles))]
				d.setConfig(CloudflareStmtDay.Add(1+rng.Intn(75)), dest, dest)
			}
		} else if rng.Float64() < float64(PaperNumbers.CloudflareNewIn)/PaperNumbers.ActiveDomainsEnd {
			d.setConfig(CloudflareStmtDay.Add(1+rng.Intn(75)), "cloudflare", "cloudflare")
		}
	}

	// Amazon: stops new RU/BY registrations Mar 8; >half of the hosted
	// set relocates, 43% remains; some existing domains move in.
	if cfg, ok := d.ConfigAt(AmazonStmtDay); ok {
		if cfg.Host == "amazon" {
			if rng.Float64() < 1-PaperNumbers.AmazonRemainPct/100 {
				dest := "serverel"
				switch r := rng.Float64(); {
				case r < 0.45:
					dest = "rupool" + string(rune('1'+rng.Intn(3)))
				case r < 0.60:
					dest = "digitalocean"
				}
				d.setConfig(AmazonStmtDay.Add(2+rng.Intn(70)), "", dest)
			}
		} else if cfg.Host != "sedo" && rng.Float64() < float64(PaperNumbers.AmazonRelocatedIn)/PaperNumbers.ActiveDomainsEnd {
			d.setConfig(AmazonStmtDay.Add(7+rng.Intn(60)), "amazonr53", "amazon")
		}
	}

	// Sedo pulls the plug Mar 9: 98.4% relocate (mostly to Serverel, NL),
	// 1.6% remain; a few hundred external names move in.
	if cfg, ok := d.ConfigAt(SedoStmtDay.Add(-1)); ok {
		if cfg.Host == "sedo" {
			if rng.Float64() < 1-PaperNumbers.SedoRemainPct/100 {
				dest, dnsDest := "serverel", "serverel"
				switch r := rng.Float64(); {
				case r < 0.20:
					dest = "rupool" + string(rune('1'+rng.Intn(3)))
					dnsDest = dest
				case r < 0.25:
					dest, dnsDest = "amazon", "amazonr53"
				case r < 0.32:
					dest, dnsDest = "digitalocean", ""
				}
				d.setConfig(SedoStmtDay.Add(rng.Intn(45)), dnsDest, dest)
			}
		} else if cfg.Host != "amazon" && rng.Float64() < float64(PaperNumbers.SedoRelocatedIn)/PaperNumbers.ActiveDomainsEnd {
			d.setConfig(SedoStmtDay.Add(10+rng.Intn(50)), "sedodns", "sedo")
		}
	}

	// Google: stops new customers Mar 10; 57.1% of hosted names relocate,
	// 75.2% of those merely to Google's other ASN around Mar 16.
	if cfg, ok := d.ConfigAt(GoogleStmtDay); ok {
		if cfg.Host == "google" {
			if rng.Float64() < PaperNumbers.GoogleRelocatePct/100 {
				if rng.Float64() < PaperNumbers.GoogleIntraPct/100 {
					d.setConfig(GoogleIntraDay, "", "googlecloud2")
				} else {
					dest := fullRUDNSProfiles[rng.Intn(len(fullRUDNSProfiles))]
					d.setConfig(GoogleStmtDay.Add(2+rng.Intn(60)), "", dest)
				}
			}
		} else if rng.Float64() < float64(PaperNumbers.GoogleExternalIn)/PaperNumbers.ActiveDomainsEnd {
			d.setConfig(GoogleStmtDay.Add(5+rng.Intn(60)), "googledns", "google")
		}
	}

	// End-of-March migrations out of Hetzner and Linode DNS hosting
	// (§3.2); partially-Russian customers repatriate.
	if cfg, ok := d.ConfigAt(HetznerExitDay.Add(-1)); ok {
		switch cfg.DNS {
		case "self-hetzner":
			if rng.Float64() < 0.75 {
				d.setConfig(HetznerExitDay.Add(rng.Intn(10)), repatriationDNS(rng), "")
			}
		case "hetznerdns":
			if rng.Float64() < 0.40 {
				d.setConfig(HetznerExitDay.Add(rng.Intn(10)), "cloudflare", "")
			}
		}
	}
	if cfg, ok := d.ConfigAt(LinodeExitDay.Add(-1)); ok && cfg.DNS == "self-linode" {
		if rng.Float64() < 0.60 {
			d.setConfig(LinodeExitDay.Add(rng.Intn(10)), repatriationDNS(rng), "")
		}
	}
	_ = end
}
