package world

import (
	"context"
	"net/netip"
	"testing"

	"whereru/internal/ct"
	"whereru/internal/dns"
	"whereru/internal/pki"
	"whereru/internal/simtime"
)

// buildTest builds one shared small world for the package's tests.
var testWorld *World

func getWorld(t testing.TB) *World {
	t.Helper()
	if testWorld == nil {
		w, err := Build(TestConfig())
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		testWorld = w
	}
	return testWorld
}

func TestBuildBasics(t *testing.T) {
	w := getWorld(t)
	if w.NumDomains() < 5000 {
		t.Fatalf("NumDomains = %d, want ≥ 5000 at 1:2000 scale", w.NumDomains())
	}
	if w.Sanctions.Len() != 107 {
		t.Fatalf("sanctioned list = %d, want 107", w.Sanctions.Len())
	}
	if len(w.Roots()) == 0 {
		t.Fatal("no root servers")
	}
	// Scaled active population: ≈4.95M/2000 ≈ 2475 at study start.
	active := w.ActiveDomains(simtime.StudyStart)
	if active < 1800 || active > 3400 {
		t.Errorf("active at start = %d, want ≈2500", active)
	}
	activeEnd := w.ActiveDomains(simtime.StudyEnd)
	if activeEnd <= active-600 || activeEnd > 4200 {
		t.Errorf("active at end = %d (start %d), want mild growth", activeEnd, active)
	}
}

func TestDeterminism(t *testing.T) {
	w1, err := Build(Config{Seed: 7, Scale: 20000, RFShare: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Build(Config{Seed: 7, Scale: 20000, RFShare: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if w1.NumDomains() != w2.NumDomains() {
		t.Fatalf("domain counts differ: %d vs %d", w1.NumDomains(), w2.NumDomains())
	}
	for i, name := range w1.names {
		d1 := w1.domains[name]
		d2, ok := w2.domains[name]
		if !ok {
			t.Fatalf("domain %s missing in second world", name)
		}
		if d1.Created != d2.Created || d1.Removed != d2.Removed || len(d1.epochs) != len(d2.epochs) {
			t.Fatalf("domain %d (%s) differs between builds", i, name)
		}
		for j := range d1.epochs {
			if d1.epochs[j] != d2.epochs[j] {
				t.Fatalf("epoch %d of %s differs", j, name)
			}
		}
	}
	// Different seed → different world.
	w3, err := Build(Config{Seed: 8, Scale: 20000, RFShare: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for _, name := range w1.names {
		if d3, ok := w3.domains[name]; ok {
			d1 := w1.domains[name]
			if d1.Created == d3.Created && len(d1.epochs) == len(d3.epochs) {
				same++
			}
		}
	}
	if same == len(w1.names) {
		t.Error("different seeds produced identical worlds")
	}
}

func TestEndToEndResolution(t *testing.T) {
	w := getWorld(t)
	w.Clock().Set(simtime.StudyStart)
	r := w.NewResolver()
	ctx := context.Background()

	// Find a domain active at study start.
	var target *DomainRec
	for _, name := range w.names {
		d := w.domains[name]
		if d.ActiveOn(simtime.StudyStart) && !d.Sanctioned {
			target = d
			break
		}
	}
	if target == nil {
		t.Fatal("no active domain found")
	}
	hosts, err := r.LookupNS(ctx, target.Name)
	if err != nil {
		t.Fatalf("LookupNS(%s): %v", target.Name, err)
	}
	if len(hosts) == 0 {
		t.Fatalf("no NS for %s", target.Name)
	}
	cfg, _ := target.ConfigAt(simtime.StudyStart)
	wantHosts, _ := w.nsSetFor(cfg.DNS)
	if len(hosts) != len(wantHosts) {
		t.Fatalf("NS count = %d, want %d (%v vs %v)", len(hosts), len(wantHosts), hosts, wantHosts)
	}
	addrs, err := r.LookupA(ctx, target.Name)
	if err != nil {
		t.Fatalf("LookupA(%s): %v", target.Name, err)
	}
	want := w.hostAddrsFor(target.Name, cfg.Host)
	if len(addrs) != len(want) {
		t.Fatalf("apex addrs = %v, want %v", addrs, want)
	}
	// NS host addresses resolve too.
	for _, h := range hosts {
		hostAddrs, err := r.LookupHost(ctx, h, 0)
		if err != nil {
			t.Fatalf("LookupHost(%s): %v", h, err)
		}
		if len(hostAddrs) == 0 {
			t.Fatalf("no address for NS %s", h)
		}
	}
}

func TestResolutionTracksClock(t *testing.T) {
	w := getWorld(t)
	ctx := context.Background()

	// A sanctioned Netnod-secondary domain changes NS set on March 3.
	name := "sanctioned070.ru." // index 70 ∈ [65,99) → rucenter-netnod
	d, ok := w.Domain(name)
	if !ok {
		t.Fatal("sanctioned070.ru. missing")
	}
	cfgBefore, _ := d.ConfigAt(NetnodCutoffDay.Add(-1))
	if cfgBefore.DNS != "rucenter-netnod" {
		t.Fatalf("unexpected pre-cutoff profile %q", cfgBefore.DNS)
	}

	w.Clock().Set(NetnodCutoffDay.Add(-1))
	r := w.NewResolver()
	before, err := r.LookupNS(ctx, name)
	if err != nil {
		t.Fatal(err)
	}
	w.Clock().Set(NetnodCutoffDay)
	r.FlushCache()
	after, err := r.LookupNS(ctx, name)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 3 || len(after) != 2 {
		t.Fatalf("NS sets: before=%v after=%v (want netnod server to vanish)", before, after)
	}
	foundNetnod := false
	for _, h := range before {
		if h == "dns-ru.netnod.su." {
			foundNetnod = true
		}
	}
	if !foundNetnod {
		t.Fatalf("netnod server not in pre-cutoff set %v", before)
	}
	for _, h := range after {
		if h == "dns-ru.netnod.su." {
			t.Fatal("netnod server still present after cutoff")
		}
	}
}

func TestRemovedDomainGone(t *testing.T) {
	w := getWorld(t)
	var removed *DomainRec
	for _, name := range w.names {
		d := w.domains[name]
		if d.Removed != 0 && d.Removed < simtime.StudyEnd {
			removed = d
			break
		}
	}
	if removed == nil {
		t.Skip("no removed domain in this world")
	}
	w.Clock().Set(removed.Removed)
	r := w.NewResolver()
	res, err := r.Resolve(context.Background(), removed.Name, dns.TypeNS)
	if err != nil {
		t.Fatalf("Resolve removed: %v", err)
	}
	if res.RCode != dns.RCodeNXDomain {
		t.Fatalf("removed domain rcode = %v, want NXDOMAIN", res.RCode)
	}
}

func TestSanctionedWorld(t *testing.T) {
	w := getWorld(t)
	domains := w.Sanctions.AllDomains()
	if len(domains) != 107 {
		t.Fatalf("sanctioned = %d", len(domains))
	}
	// All registered and resolvable pre-conflict.
	full, part, non := 0, 0, 0
	day := simtime.ConflictStart
	for _, name := range domains {
		d, ok := w.Domain(name)
		if !ok || !d.ActiveOn(day) {
			t.Fatalf("sanctioned %s not active", name)
		}
		cfg, _ := d.ConfigAt(day)
		ru, other := false, false
		for _, key := range dnsProfiles[cfg.DNS] {
			if w.providers[key].Country == "RU" {
				ru = true
			} else {
				other = true
			}
		}
		switch {
		case ru && other:
			part++
		case ru:
			full++
		default:
			non++
		}
	}
	// Paper: 34.0% partial, 5.2% non on Feb 24.
	if part != 36 || non != 6 || full != 65 {
		t.Fatalf("sanctioned NS on Feb 24: full=%d part=%d non=%d, want 65/36/6", full, part, non)
	}
}

func TestCertCorpus(t *testing.T) {
	w := getWorld(t)
	if w.Certs.Len() == 0 {
		t.Fatal("no certificates generated")
	}
	if w.CTLog.Size() == 0 {
		t.Fatal("empty CT log")
	}
	// Russian CA certs exist, are unlogged, and are served.
	rtr := w.Certs.ByIssuer(pki.RussianTrustedRootCA)
	if len(rtr) != PaperNumbers.RussianCACerts {
		t.Fatalf("Russian CA certs = %d, want %d", len(rtr), PaperNumbers.RussianCACerts)
	}
	for _, c := range rtr {
		if c.Logged {
			t.Fatal("Russian CA certificate logged to CT")
		}
	}
	if w.Scanner.NumEndpoints() < PaperNumbers.RussianCACerts {
		t.Fatalf("scanner endpoints = %d", w.Scanner.NumEndpoints())
	}
	// CT log integrity: verify a couple of inclusion proofs.
	head := w.CTLog.Head()
	for _, idx := range []int64{0, head.Size / 2, head.Size - 1} {
		e, err := w.CTLog.Entry(idx)
		if err != nil {
			t.Fatal(err)
		}
		proof, err := w.CTLog.InclusionProof(idx, head.Size)
		if err != nil {
			t.Fatal(err)
		}
		if !ct.VerifyInclusion(e.Cert.Marshal(), idx, head.Size, proof, head.Root) {
			t.Fatalf("inclusion proof failed for entry %d", idx)
		}
	}
}

func TestGeoNoiseShiftsClassification(t *testing.T) {
	clean, err := Build(Config{Seed: 11, Scale: 20000, RFShare: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Build(Config{Seed: 11, Scale: 20000, RFShare: 0.1, GeoNoise: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	day := simtime.ConflictStart
	// Count how many of REG.RU's pool addresses geolocate to RU in each.
	p1, _ := clean.Provider("regru")
	p2, _ := noisy.Provider("regru")
	countRU := func(w *World, pool []netip.Addr) int {
		n := 0
		for _, a := range pool {
			if c, ok := w.Geo.Lookup(day, a); ok && c == "RU" {
				n++
			}
		}
		return n
	}
	cleanRU := countRU(clean, p1.HostPool)
	noisyRU := countRU(noisy, p2.HostPool)
	if cleanRU != len(p1.HostPool) {
		t.Fatalf("clean world mislocates %d addresses", len(p1.HostPool)-cleanRU)
	}
	if noisyRU >= len(p2.HostPool) {
		t.Skip("noise did not hit this pool at this seed; acceptable (probabilistic)")
	}
	// Bad GeoNoise rejected.
	if _, err := Build(Config{Seed: 1, Scale: 20000, RFShare: 0.1, GeoNoise: 0.9}); err == nil {
		t.Error("GeoNoise 0.9 accepted")
	}
}
