package world

import (
	"net/netip"

	"whereru/internal/netsim"
)

// Provider is one hosting and/or DNS provider in the simulated Internet.
type Provider struct {
	// Key is the stable internal identifier ("regru").
	Key string
	// Org is the display name ("REG.RU").
	Org string
	// ASN is the provider's autonomous system.
	ASN netsim.ASN
	// Country is where the provider's infrastructure geolocates.
	Country string
	// NSNames are the provider's authoritative server names (canonical,
	// ACE form). Their TLDs drive the paper's Figure 2/3 analyses.
	NSNames []string
	// MailHost is the provider's mail exchanger name ("" = no mail
	// service). Must live under one of the provider's NS zones so the
	// delegation path resolves it.
	MailHost string

	// Populated by Build:
	// NSAddrs are the addresses of NSNames (parallel slice).
	NSAddrs []netip.Addr
	// MailAddr is MailHost's address (when MailHost is set).
	MailAddr netip.Addr
	// HostPool is the shared-hosting address pool apex A records point at.
	HostPool []netip.Addr
}

// hostPoolSize is the number of shared-hosting addresses per provider.
const hostPoolSize = 64

// infraASN is the dedicated AS hosting root and TLD server addresses.
const infraASN netsim.ASN = 51999

// Catalog returns the full provider catalog. AS numbers for real providers
// are their real-world ASNs; synthetic aggregate pools use the 51xxx range.
func Catalog() []*Provider {
	ns := func(names ...string) []string { return names }
	return []*Provider{
		// ---- Russian providers ----
		{Key: "regru", Org: "REG.RU", ASN: 197695, Country: "RU", NSNames: ns("ns1.reg.ru.", "ns2.reg.ru."), MailHost: "mx1.reg.ru."},
		{Key: "rucenter", Org: "RU-CENTER", ASN: 48287, Country: "RU", NSNames: ns("ns3-l2.nic.ru.", "ns4-l2.nic.ru."), MailHost: "mx.nic.ru."},
		{Key: "timeweb", Org: "Timeweb", ASN: 9123, Country: "RU", NSNames: ns("ns1.timeweb.ru.", "ns2.timeweb.ru."), MailHost: "mx.timeweb.ru."},
		{Key: "beget", Org: "Beget", ASN: 198610, Country: "RU", NSNames: ns("ns1.beget.com.", "ns2.beget.pro."), MailHost: "mx.beget.com."},
		{Key: "sprinthost", Org: "Sprinthost", ASN: 35278, Country: "RU", NSNames: ns("ns1.sprinthost.ru.", "ns2.sprinthost.ru.")},
		{Key: "masterhost", Org: "Masterhost", ASN: 25532, Country: "RU", NSNames: ns("ns1.masterhost.ru.", "ns2.masterhost.ru.")},
		{Key: "yandex", Org: "Yandex", ASN: 13238, Country: "RU", NSNames: ns("dns1.yandex.net.", "dns2.yandex.net."), MailHost: "mx.yandex.net."},
		{Key: "peterhost", Org: "Peterhost", ASN: 51005, Country: "RU", NSNames: ns("ns1.peterhost.ru.", "ns2.peterhost.ru.")},
		{Key: "rupool1", Org: "RU Hosting Pool 1", ASN: 51001, Country: "RU", MailHost: "mx.hosting1.ru.", NSNames: ns("ns1.hosting1.ru.", "ns2.hosting1.ru.")},
		{Key: "rupool2", Org: "RU Hosting Pool 2", ASN: 51002, Country: "RU", MailHost: "mx.hosting2.ru.", NSNames: ns("ns1.hosting2.ru.", "ns2.hosting2.org.")},
		{Key: "rupool3", Org: "RU Hosting Pool 3", ASN: 51003, Country: "RU", MailHost: "mx.hosting3.ru.", NSNames: ns("ns1.hosting3.ru.", "ns2.hosting3.ru.")},
		{Key: "ruself", Org: "RU Self-Hosted", ASN: 51004, Country: "RU", NSNames: ns("ns1.selfdns.ru.", "ns2.selfdns.ru.")},
		{Key: "propool", Org: "RU DNS .pro Pool", ASN: 51006, Country: "RU", NSNames: ns("ns1.dns-pro.pro.", "ns2.dns-pro.pro.")},
		{Key: "compool", Org: "RU DNS .com Pool", ASN: 51007, Country: "RU", NSNames: ns("ns1.dns-com.com.", "ns2.dns-com.com.")},
		// Mail.ru (VK) provides mail service only in the simulation; its
		// NS names exist to anchor the mail.ru zone delegation.
		{Key: "mailru", Org: "Mail.ru (VK)", ASN: 47764, Country: "RU", NSNames: ns("ns1.mail.ru.", "ns2.mail.ru."), MailHost: "mxs.mail.ru."},

		// ---- Western / foreign providers ----
		{Key: "cloudflare", Org: "Cloudflare", ASN: 13335, Country: "US", NSNames: ns("gene.ns.cloudflare.com.", "lola.ns.cloudflare.com.")},
		{Key: "amazon", Org: "Amazon", ASN: 16509, Country: "US", NSNames: ns("ns-101.awsdns-12.com.", "ns-202.awsdns-25.net.", "ns-303.awsdns-37.org.")},
		{Key: "sedo", Org: "Sedo", ASN: 47846, Country: "DE", NSNames: ns("ns1.sedoparking.com.", "ns2.sedoparking.com.")},
		{Key: "google", Org: "Google", ASN: 15169, Country: "US", NSNames: ns("ns-cloud-e1.googledomains.com.", "ns-cloud-e2.googledomains.com."), MailHost: "aspmx.googledomains.com."},
		// googlecloud2 is hosting-only (the ASN Google moved customers to
		// around 2022-03-16); DNS for its customers stays on "google".
		{Key: "googlecloud2", Org: "Google Cloud", ASN: 396982, Country: "US"},
		{Key: "godaddy", Org: "GoDaddy", ASN: 26496, Country: "US", NSNames: ns("ns45.domaincontrol.com.", "ns46.domaincontrol.com."), MailHost: "smtp.domaincontrol.com."},
		{Key: "hetzner", Org: "Hetzner", ASN: 24940, Country: "DE", NSNames: ns("ns1.your-server.de.", "ns2.your-server.de."), MailHost: "mail.your-server.de."},
		{Key: "linode", Org: "Linode", ASN: 63949, Country: "US", NSNames: ns("ns1.linode.com.", "ns2.linode.com.")},
		{Key: "netnod", Org: "Netnod", ASN: 8674, Country: "SE", NSNames: ns("dns-ru.netnod.su.")},
		{Key: "serverel", Org: "Serverel", ASN: 29802, Country: "NL", NSNames: ns("ns1.serverel.com.", "ns2.serverel.com.")},
		{Key: "ovh", Org: "OVH", ASN: 16276, Country: "FR", NSNames: ns("dns1.ovh.net.", "ns1.ovh.net.")},
		{Key: "digitalocean", Org: "DigitalOcean", ASN: 14061, Country: "US", NSNames: ns("ns1.digitalocean.com.", "ns2.digitalocean.com.")},
		{Key: "wedos", Org: "WEDOS", ASN: 25234, Country: "CZ", NSNames: ns("ns1.wedos.cz.", "ns2.wedos.cz.")},
		{Key: "zoneee", Org: "Zone.ee", ASN: 3327, Country: "EE", NSNames: ns("ns1.zone.ee.", "ns2.zone.ee.")},
		{Key: "homepl", Org: "home.pl", ASN: 12824, Country: "PL", NSNames: ns("dns1.home.pl.", "dns2.home.pl.")},
	}
}

// weighted is a (choice key, weight) pair; weights are in percent of the
// domain population but only relative magnitude matters when sampling.
type weighted struct {
	key    string
	weight float64
}

// dnsProfiles maps a profile key to the provider keys whose NS names are
// unioned to form the domain's delegation. Multi-provider profiles are the
// paper's "partial" configurations when the providers' countries differ.
var dnsProfiles = map[string][]string{
	"regru":           {"regru"},
	"rucenter":        {"rucenter"},
	"timeweb":         {"timeweb"},
	"beget":           {"beget"},
	"sprinthost":      {"sprinthost"},
	"masterhost":      {"masterhost"},
	"yandex":          {"yandex"},
	"peterhost":       {"peterhost"},
	"rupool1":         {"rupool1"},
	"rupool2":         {"rupool2"},
	"rupool3":         {"rupool3"},
	"rucenter-netnod": {"rucenter", "netnod"},
	"self-netnod":     {"ruself", "netnod"},
	"beget-mixed":     {"rupool1", "compool"},
	"ru-pro":          {"rupool3", "propool"},
	"ru-net":          {"ruself", "yandex"},
	"self-cloudflare": {"ruself", "cloudflare"},
	"self-hetzner":    {"ruself", "hetzner"},
	"self-linode":     {"ruself", "linode"},
	"self-wedos":      {"ruself", "wedos"},
	"serverel":        {"serverel"},
	"cloudflare":      {"cloudflare"},
	"godaddy":         {"godaddy"},
	"sedodns":         {"sedo"},
	"amazonr53":       {"amazon"},
	"googledns":       {"google"},
	"hetznerdns":      {"hetzner"},
}

// dnsWeightsEarly is the DNS-profile distribution for configurations
// chosen before 2020 (and the bulk of the 2017 population). Calibrated so
// the measured composition hits the paper's 67.0% fully-Russian NS
// infrastructure with ~16.5% each partial and non.
var dnsWeightsEarly = []weighted{
	{"regru", 13}, {"rucenter", 11}, {"timeweb", 7}, {"beget", 4},
	{"sprinthost", 3}, {"masterhost", 3.5}, {"yandex", 7}, {"peterhost", 2.5},
	{"rupool1", 2}, {"rupool2", 5.5}, {"rupool3", 3},
	{"beget-mixed", 1.5}, {"ru-pro", 2}, {"ru-net", 0.5},
	{"rucenter-netnod", 1.5}, {"self-netnod", 3},
	{"self-cloudflare", 3.5}, {"self-hetzner", 4.5}, {"self-linode", 1}, {"self-wedos", 2.5},
	{"cloudflare", 5.9}, {"godaddy", 2.5}, {"sedodns", 3.1}, {"amazonr53", 1.2},
	{"googledns", 0.4}, {"hetznerdns", 4},
}

// dnsWeightsLate shifts toward Cloudflare and Beget (driving the paper's
// growing .com/.pro dependency) and away from .net-named infrastructure.
var dnsWeightsLate = []weighted{
	{"regru", 10.5}, {"rucenter", 8}, {"timeweb", 7}, {"beget", 4},
	{"sprinthost", 2.5}, {"masterhost", 2.5}, {"yandex", 1.5}, {"peterhost", 2},
	{"rupool1", 2}, {"rupool2", 5.5}, {"rupool3", 3},
	{"beget-mixed", 6}, {"ru-pro", 7}, {"ru-net", 0.5},
	{"rucenter-netnod", 1.5}, {"self-netnod", 3},
	{"self-cloudflare", 5}, {"self-hetzner", 4}, {"self-linode", 1}, {"self-wedos", 2.5},
	{"cloudflare", 6.5}, {"godaddy", 2.5}, {"sedodns", 3.1}, {"amazonr53", 1.2},
	{"googledns", 0.4}, {"hetznerdns", 4},
}

// hostProfiles maps hosting profile keys to provider keys; two providers
// mean the apex carries one A record in each (the paper's rare "partial"
// hosting).
var hostProfiles = map[string][]string{
	"regru": {"regru"}, "rucenter": {"rucenter"}, "timeweb": {"timeweb"},
	"beget": {"beget"}, "sprinthost": {"sprinthost"}, "masterhost": {"masterhost"},
	"yandex": {"yandex"}, "peterhost": {"peterhost"},
	"rupool1": {"rupool1"}, "rupool2": {"rupool2"}, "rupool3": {"rupool3"},
	"ruself":     {"ruself"},
	"dual-ru-de": {"ruself", "hetzner"},
	"cloudflare": {"cloudflare"}, "amazon": {"amazon"}, "sedo": {"sedo"},
	"google": {"google"}, "googlecloud2": {"googlecloud2"}, "godaddy": {"godaddy"},
	"hetzner": {"hetzner"}, "linode": {"linode"}, "serverel": {"serverel"},
	"ovh": {"ovh"}, "digitalocean": {"digitalocean"}, "wedos": {"wedos"},
	"zoneee": {"zoneee"}, "homepl": {"homepl"},
}

// hostWeightsEarly is the hosting distribution for pre-2020 choices:
// 71.0% fully Russian, 0.19% partial, 28.81% non-Russian, with the
// paper's named-provider shares (REG.RU+RU-CENTER+Timeweb+Beget = 38%,
// Cloudflare ≈ 6, Amazon ≈ 1.1, Sedo ≈ 3.1, Google ≈ 0.33).
var hostWeightsEarly = []weighted{
	{"regru", 13}, {"rucenter", 11}, {"timeweb", 8}, {"beget", 6},
	{"sprinthost", 4}, {"masterhost", 4}, {"yandex", 2}, {"peterhost", 3},
	{"rupool1", 6}, {"rupool2", 6}, {"rupool3", 5.81}, {"ruself", 2},
	{"dual-ru-de", 0.19},
	{"cloudflare", 5.9}, {"amazon", 1.1}, {"sedo", 3.1}, {"google", 0.33},
	{"godaddy", 5.6}, {"hetzner", 3.5}, {"linode", 2}, {"serverel", 0.3},
	{"ovh", 2.5}, {"digitalocean", 2.2}, {"wedos", 0.8}, {"zoneee", 0.48},
	{"homepl", 1.19},
}

// hostWeightsLate nudges Beget up (the paper's Figure 4 shows the
// Russian big four going from 38% to 39%).
var hostWeightsLate = []weighted{
	{"regru", 13}, {"rucenter", 11}, {"timeweb", 8}, {"beget", 8},
	{"sprinthost", 4}, {"masterhost", 3.5}, {"yandex", 2}, {"peterhost", 2.5},
	{"rupool1", 6}, {"rupool2", 5.5}, {"rupool3", 5.31}, {"ruself", 2},
	{"dual-ru-de", 0.19},
	{"cloudflare", 6.5}, {"amazon", 1.1}, {"sedo", 3.1}, {"google", 0.33},
	{"godaddy", 5}, {"hetzner", 3.5}, {"linode", 2}, {"serverel", 0.3},
	{"ovh", 2.5}, {"digitalocean", 2.2}, {"wedos", 0.8}, {"zoneee", 0.48},
	{"homepl", 1.19},
}

// sampleWeighted picks a key from a weight table given a uniform [0,1)
// draw.
func sampleWeighted(table []weighted, u float64) string {
	var total float64
	for _, w := range table {
		total += w.weight
	}
	x := u * total
	for _, w := range table {
		x -= w.weight
		if x < 0 {
			return w.key
		}
	}
	return table[len(table)-1].key
}
