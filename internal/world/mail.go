package world

import (
	"hash/fnv"

	"whereru/internal/simtime"
)

// Mail-service modeling (measurement extension). The paper's platform,
// OpenINTEL, also collects MX records, and its companion work (Liu et
// al., IMC '21, cited in §5) characterizes mail-provider concentration —
// with Russia singled out as bucking the Western-centralization trend via
// heavily domestic mail. This extension reproduces that angle: domains get
// a deterministic mail configuration dominated by Yandex/Mail.ru, and
// Google Workspace customers partially migrate after Google's March 10
// announcement.

// mailChoices maps a hash bucket (out of 100) to a mail provider key;
// "" means the domain publishes no MX, "host" means mail rides with the
// hosting provider.
type mailChoice struct {
	upTo int // cumulative bucket bound (exclusive)
	key  string
}

var mailChoices = []mailChoice{
	{34, "yandex"}, // Yandex.Mail dominates Russian domain mail
	{50, "mailru"}, // Mail.ru (VK) second
	{58, "google"}, // Google Workspace
	{88, "host"},   // mail with the hosting provider
	{100, ""},      // no MX published
}

// mailBucket deterministically buckets a domain into [0,100).
func mailBucket(name string) int {
	h := fnv.New32()
	h.Write([]byte("mail:"))
	h.Write([]byte(name))
	return int(h.Sum32() % 100)
}

// MailProviderFor returns the provider serving mail for the domain on
// day ("" = the domain publishes no MX). Google-Workspace domains
// partially migrate to domestic providers after Google's March 10, 2022
// announcement.
func (w *World) MailProviderFor(d *DomainRec, day simtime.Day) *Provider {
	bucket := mailBucket(d.Name)
	key := ""
	for _, c := range mailChoices {
		if bucket < c.upTo {
			key = c.key
			break
		}
	}
	switch key {
	case "":
		return nil
	case "host":
		cfg, ok := d.ConfigAt(day)
		if !ok {
			return nil
		}
		keys := hostProfiles[cfg.Host]
		if len(keys) == 0 {
			return nil
		}
		p := w.providers[keys[0]]
		if p == nil || p.MailHost == "" {
			// Hosting provider without mail service: fall back to Yandex.
			return w.providers["yandex"]
		}
		return p
	case "google":
		// After Google's announcement, a third of Workspace customers
		// repatriate — split between Yandex and Mail.ru.
		if day >= GoogleStmtDay.Add(14) && bucket%3 == 0 {
			if bucket%2 == 0 {
				return w.providers["yandex"]
			}
			return w.providers["mailru"]
		}
		return w.providers["google"]
	default:
		return w.providers[key]
	}
}
