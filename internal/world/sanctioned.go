package world

import (
	"fmt"

	"whereru/internal/sanctions"
	"whereru/internal/simtime"
)

// buildSanctioned creates the 107 sanctioned domains (§3.3) with the
// hosting and name-service histories the paper reports:
//
//   - 101 of 107 hosted exclusively in Russian ASNs before the conflict;
//     three more become fully Russian-hosted by May 25; the final three
//     remain hosted in Germany, the Czech Republic and Estonia.
//   - On Feb 24: 34.0% partial and 5.2% non-Russian name service; by
//     March 4, 93.8% fully Russian — driven almost entirely by Netnod
//     dropping its RU-CENTER secondary service.
//
// Sanctioned domains are appended to the same registry/serving fabric as
// the generated population, so every analysis sees them via measurement.
func (w *World) buildSanctioned() {
	type sancSpec struct {
		host     string
		dns      string
		entity   string
		moveHost simtime.Day // 0 = hosting never changes
		moveDNS  simtime.Day // 0 = DNS follows only global events
		dnsDest  string
	}
	const n = 107
	specs := make([]sancSpec, 0, n)
	for i := 0; i < n; i++ {
		s := sancSpec{entity: fmt.Sprintf("Sanctioned Entity %03d", i)}
		switch {
		case i < 40: // fully Russian DNS + hosting throughout
			s.host, s.dns = "rucenter", "rucenter"
		case i < 65:
			s.host, s.dns = "regru", "regru"
		case i < 99: // 34 partial via Netnod secondaries (cut off Mar 3)
			s.host, s.dns = "rucenter", "rucenter-netnod"
		case i == 99 || i == 100: // partial via self+cloudflare
			s.host, s.dns = "rupool1", "self-cloudflare"
			if i == 99 { // one repatriates by Mar 4 (the 100th full domain)
				s.moveDNS, s.dnsDest = SanctionedNSMoved, "rucenter"
			}
		case i == 101: // foreign-hosted (DE), becomes RU-hosted in April
			s.host, s.dns = "hetzner", "godaddy"
			s.moveHost = simtime.Date(2022, 4, 10)
		case i == 102: // foreign-hosted (PL), becomes RU-hosted in May
			s.host, s.dns = "homepl", "godaddy"
			s.moveHost = simtime.Date(2022, 5, 2)
		case i == 103: // foreign-hosted (DE), becomes RU-hosted in April
			s.host, s.dns = "hetzner", "cloudflare"
			s.moveHost = simtime.Date(2022, 4, 20)
		case i == 104: // remains in Germany
			s.host, s.dns = "hetzner", "godaddy"
		case i == 105: // remains in the Czech Republic
			s.host, s.dns = "wedos", "cloudflare"
		default: // 106: remains in Estonia
			s.host, s.dns = "zoneee", "hetznerdns"
		}
		specs = append(specs, s)
	}

	created := simtime.Date(2012, 6, 1)
	for i, s := range specs {
		name := fmt.Sprintf("sanctioned%03d.ru.", i)
		d := &DomainRec{
			Name:       name,
			Created:    created,
			Sanctioned: true,
			epochs:     []epochRec{{From: created, DNS: s.dns, Host: s.host}},
		}
		// Netnod cutoff applies to sanctioned domains too (§3.3: "nearly
		// all of them had an authoritative hosted by Netnod until the
		// change to full Russian on March 4").
		if s.dns == "rucenter-netnod" {
			d.setConfig(NetnodCutoffDay, "rucenter", "")
		}
		if s.moveDNS != 0 {
			d.setConfig(s.moveDNS, s.dnsDest, "")
		}
		if s.moveHost != 0 {
			d.setConfig(s.moveHost, "", "rucenter")
		}
		w.domains[name] = d
		w.names = append(w.names, name)
		if reg, ok := w.Registries.ForName(name); ok {
			// Sanctioned names are real long-standing registrations.
			if _, err := reg.Register(name, created, s.entity, "RU-CENTER"); err != nil {
				panic(fmt.Sprintf("world: sanctioned registration: %v", err))
			}
		}
		authority := sanctions.USOFAC
		if i%3 == 0 {
			authority |= sanctions.UKSanctions
		} else if i%7 == 0 {
			authority = sanctions.UKSanctions
		}
		listed := simtime.Date(2022, 2, 25)
		if i%5 == 0 {
			listed = simtime.Date(2022, 3, 11)
		}
		w.Sanctions.Add(sanctions.Entry{
			Domain:      name,
			Entity:      s.entity,
			Listed:      listed,
			Authorities: authority,
		})
	}
}
