package world

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"whereru/internal/dns"
	"whereru/internal/netsim"
	"whereru/internal/simtime"
)

// This file wires the AS-level routing model (netsim.Topology) into the
// world: a transit backbone connecting the provider ASes to the
// measurement vantage, two IXP fabrics (an MSK-IX analog for the RU side
// and a DE-CIX analog for the western side) plus Netnod's own fabric,
// and the built-in scenario catalog that turns the paper's event
// timeline into route events with reachability and latency consequences.

// Topology ASNs that exist only in the routing graph, not the address
// plan: the measurement platform's vantage AS and the two aggregate
// transit carriers. Values are from the private-use range so they can
// never collide with catalog providers.
const (
	// VantageASN is the measurement platform's origin AS — every route
	// decision is taken from its perspective.
	VantageASN netsim.ASN = 64496
	// EUTransitASN aggregates western transit.
	EUTransitASN netsim.ASN = 64500
	// RUTransitASN aggregates Russian domestic transit.
	RUTransitASN netsim.ASN = 64501
)

// IXP fabric names in the base topology.
const (
	// IXPMoscow is the MSK-IX analog: RU providers plus both transit
	// carriers (the EU carrier is a remote peer — the link the RU-IXP
	// isolation scenario withdraws).
	IXPMoscow = "MSK-IX"
	// IXPStockholm is Netnod's own fabric, where dns-ru.netnod.su peers
	// with EU transit and RU-CENTER.
	IXPStockholm = "NETNOD-IX"
	// IXPFrankfurt is the DE-CIX analog for western providers.
	IXPFrankfurt = "DE-CIX"
)

// buildTopology constructs the AS adjacency graph. Every provider hangs
// off its regional transit carrier; RU providers additionally peer at
// the Moscow fabric, western providers at the Frankfurt fabric, and
// Netnod at its Stockholm fabric. The design gives most RU destinations
// two equal-hop paths from the vantage — through the Moscow fabric
// (cheap) and through RU transit (expensive) — so scenarios that
// degrade the fabric shift latency without severing reachability, while
// depeering/partition events sever it outright.
func (w *World) buildTopology() error {
	t := netsim.NewTopology()
	// Backbone: vantage → EU transit → {RU transit, DNS infra}.
	t.AddLink(VantageASN, EUTransitASN, 5*time.Millisecond, netsim.LinkTransit)
	t.AddLink(EUTransitASN, RUTransitASN, 30*time.Millisecond, netsim.LinkTransit)
	t.AddLink(EUTransitASN, infraASN, 2*time.Millisecond, netsim.LinkTransit)

	for _, name := range []string{IXPMoscow, IXPStockholm, IXPFrankfurt} {
		port := time.Millisecond
		if name == IXPMoscow {
			port = 2 * time.Millisecond
		}
		if err := t.AddIXP(name, port); err != nil {
			return err
		}
	}
	// Transit carriers peer remotely at the fabrics that matter for the
	// scenarios: EU transit is a remote member of MSK-IX (withdrawable),
	// and both western fabrics include EU transit.
	for _, m := range []struct {
		ixp string
		asn netsim.ASN
	}{
		{IXPMoscow, RUTransitASN},
		{IXPMoscow, EUTransitASN},
		{IXPStockholm, EUTransitASN},
		{IXPFrankfurt, EUTransitASN},
	} {
		if err := t.AddIXPMember(m.ixp, m.asn); err != nil {
			return err
		}
	}

	// Providers, in sorted key order (map-walk order must not decide
	// anything, same rule as servedTLDs).
	keys := make([]string, 0, len(w.providers))
	for k := range w.providers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p := w.providers[k]
		if p.Country == "RU" {
			t.AddLink(RUTransitASN, p.ASN, 8*time.Millisecond, netsim.LinkTransit)
			if err := t.AddIXPMember(IXPMoscow, p.ASN); err != nil {
				return err
			}
			continue
		}
		t.AddLink(EUTransitASN, p.ASN, 8*time.Millisecond, netsim.LinkTransit)
		if err := t.AddIXPMember(IXPFrankfurt, p.ASN); err != nil {
			return err
		}
	}
	// Netnod's .ru service peers on its own fabric with RU-CENTER (the
	// secondary arrangement behind the rucenter-netnod profile).
	netnod := w.providers["netnod"]
	rucenter := w.providers["rucenter"]
	if netnod != nil {
		if err := t.AddIXPMember(IXPStockholm, netnod.ASN); err != nil {
			return err
		}
	}
	if rucenter != nil {
		if err := t.AddIXPMember(IXPStockholm, rucenter.ASN); err != nil {
			return err
		}
	}
	w.Topology = t
	return nil
}

// RouteView returns the per-address routing oracle from the measurement
// vantage — the object both the DNS route transport and the analysis
// engine consume.
func (w *World) RouteView() *netsim.RouteView {
	return &netsim.RouteView{Net: w.Internet, R: w.Topology.Router(VantageASN)}
}

// RoutedTransport wraps the in-memory wire with the route layer: no AS
// path to a server ⇒ the exchange fails like a timeout; routed
// exchanges accumulate simulated path latency.
func (w *World) RoutedTransport() *dns.RouteTransport {
	return dns.NewRouteTransport(w.Mem, w.Clock(), w.RouteView())
}

// Built-in scenario names.
const (
	// ScenarioNetnodDepeering models the Netnod cutoff as a real routing
	// event: from NetnodCutoffDay to study end, AS8674 is depeered from
	// EU transit and withdraws from both its fabrics (Stockholm and the
	// Frankfurt remote peering), so dns-ru.netnod.su becomes unreachable
	// rather than merely unlisted.
	ScenarioNetnodDepeering = "netnod-depeering"
	// ScenarioRUIXPIsolation models RU-side IXP isolation: from the
	// invasion to study end, EU transit's remote peering at the Moscow
	// fabric is withdrawn, so vantage→RU paths fall back to the long
	// transit detour — a latency signal with reachability intact.
	ScenarioRUIXPIsolation = "ru-ixp-isolation"
	// ScenarioRUNETPartition models a partial RUNET partition: for two
	// weeks in March 2022, RU transit and the small RU ASes are cut from
	// the outside world; the major RU providers keep their direct Moscow
	// fabric peerings and stay reachable.
	ScenarioRUNETPartition = "runet-partition"
)

// Scenarios returns the built-in scenario names, sorted.
func Scenarios() []string {
	return []string{ScenarioNetnodDepeering, ScenarioRUIXPIsolation, ScenarioRUNETPartition}
}

// ApplyScenario registers a built-in scenario's route events on the
// topology and records them in sched (key "route:<event key>") so the
// outage API can list them. It must run before measurement starts.
func (w *World) ApplyScenario(name string, sched *netsim.OutageSchedule) error {
	t := w.Topology
	switch name {
	case ScenarioNetnodDepeering:
		win := simtime.Window{From: NetnodCutoffDay, To: simtime.StudyEnd}
		netnod, ok := w.providers["netnod"]
		if !ok {
			return fmt.Errorf("world: scenario %s: no netnod provider", name)
		}
		t.Depeer(netnod.ASN, EUTransitASN, win)
		// Both fabric memberships go: the Stockholm fabric is Netnod's own,
		// and leaving the Frankfurt remote peering up would let traffic slip
		// around the depeering through any other western member.
		for _, ixp := range []string{IXPStockholm, IXPFrankfurt} {
			if err := t.WithdrawIXPMember(ixp, netnod.ASN, win); err != nil {
				return err
			}
		}
	case ScenarioRUIXPIsolation:
		win := simtime.Window{From: simtime.ConflictStart, To: simtime.StudyEnd}
		if err := t.WithdrawIXPMember(IXPMoscow, EUTransitASN, win); err != nil {
			return err
		}
	case ScenarioRUNETPartition:
		win := simtime.Window{From: simtime.Date(2022, 3, 6), To: simtime.Date(2022, 3, 20)}
		// The partition group: RU transit plus every RU provider except
		// the majors, which keep serving the outside world through their
		// direct Moscow fabric peering with EU transit.
		surviving := map[string]bool{
			"regru": true, "rucenter": true, "timeweb": true,
			"beget": true, "yandex": true,
		}
		group := []netsim.ASN{RUTransitASN}
		keys := make([]string, 0, len(w.providers))
		for k := range w.providers {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := w.providers[k]
			if p.Country == "RU" && !surviving[k] {
				group = append(group, p.ASN)
			}
		}
		t.Partition("runet", group, win)
	default:
		return fmt.Errorf("world: unknown scenario %q (have: %s)", name, strings.Join(Scenarios(), ", "))
	}
	if sched != nil {
		for _, ev := range t.Events() {
			sched.AddEvent("route:"+ev.Key, ev.Kind, ev.Window)
		}
	}
	return nil
}
