package world

import (
	"net/netip"
	"strings"

	"whereru/internal/dns"
	"whereru/internal/idn"
	"whereru/internal/netsim"
	"whereru/internal/simtime"
)

// buildServing binds the root, TLD and provider authoritative handlers
// into the in-memory wire. All handlers are dynamic: they consult the
// simulation clock, so the same binding answers differently on different
// days — exactly how the measurement pipeline experiences the real world.
func (w *World) buildServing() error {
	w.buildRRCache()
	for _, root := range w.roots {
		w.Mem.Bind(root, dns.HandlerFunc(w.serveRoot))
	}
	for tld, addrs := range w.tldAddrs {
		handler := w.tldHandler(tld)
		for _, a := range addrs {
			w.Mem.Bind(a, handler)
		}
	}
	for _, p := range w.providers {
		handler := w.providerHandler(p)
		for _, a := range p.NSAddrs {
			w.Mem.Bind(a, handler)
		}
	}
	return nil
}

// serveRoot refers every query to the TLD servers for its rightmost label.
func (w *World) serveRoot(q *dns.Message, _ netip.Addr) *dns.Message {
	resp := q.Reply()
	if len(q.Questions) != 1 {
		resp.RCode = dns.RCodeNotImp
		return resp
	}
	name := q.Questions[0].Name
	tld := dns.TLD(name)
	set, ok := w.rr.rootRef[tld]
	if !ok {
		resp.Authoritative = true
		resp.RCode = dns.RCodeNXDomain
		resp.Authority = w.rr.rootNXSOA
		return resp
	}
	resp.Authority = set.auth
	resp.Additional = set.addl
	return resp
}

// tldHandler serves one TLD: delegations for provider zones (from their
// NS names) and — for .ru and .рф — delegations for registered domains
// according to each domain's configuration on the current simulated day.
func (w *World) tldHandler(tld string) dns.Handler {
	zone := tld + "."
	isRegistryTLD := tld == "ru" || tld == idn.RFTLDASCII
	return dns.HandlerFunc(func(q *dns.Message, _ netip.Addr) *dns.Message {
		resp := q.Reply()
		if len(q.Questions) != 1 {
			resp.RCode = dns.RCodeNotImp
			return resp
		}
		name := q.Questions[0].Name
		if !dns.IsSubdomain(name, zone) {
			resp.RCode = dns.RCodeRefused
			return resp
		}
		now := w.Clock().Now()

		// Provider zones (e.g. nic.ru., sedoparking.com.) win over
		// registrations: they are infrastructure, not customer names.
		for z := name; z != zone && z != "."; z = dns.Parent(z) {
			if _, ok := w.providerZones[z]; ok {
				set := w.rr.providerRef[z]
				resp.Authority = set.auth
				resp.Additional = set.addl
				return resp
			}
		}
		if isRegistryTLD {
			if reg := w.registeredAncestor(name, zone); reg != "" {
				if d, ok := w.domains[reg]; ok && d.ActiveOn(now) {
					if cfg, ok := d.ConfigAt(now); ok {
						set := w.domainReferral(reg, cfg.DNS, zone)
						resp.Authority = set.auth
						resp.Additional = set.addl
						return resp
					}
				}
			}
		}
		resp.Authoritative = true
		resp.RCode = dns.RCodeNXDomain
		resp.Authority = []dns.RR{dns.NewSOA(zone, "a.tld-servers."+zone, "hostmaster."+zone, uint32(now))}
		return resp
	})
}

// registeredAncestor trims name to the registration directly under zone.
// The registration is always a suffix of name, so the result is returned
// as a substring without allocating.
func (w *World) registeredAncestor(name, zone string) string {
	if name == zone || len(name) <= len(zone)+1 || !strings.HasSuffix(name, "."+zone) {
		return ""
	}
	prefix := name[:len(name)-len(zone)-1]
	i := strings.LastIndexByte(prefix, '.')
	return name[i+1:]
}

// providerHandler answers authoritatively for a provider's NS names, and
// for any domain whose configuration on the current day delegates to this
// provider.
func (w *World) providerHandler(p *Provider) dns.Handler {
	// The provider's own infrastructure names answer from fixed record
	// sets, built once per handler.
	ownRRs := make(map[string][]dns.RR, len(p.NSNames)+1)
	for i, n := range p.NSNames {
		ownRRs[n] = []dns.RR{dns.NewA(n, 3600, p.NSAddrs[i])}
	}
	if p.MailHost != "" {
		ownRRs[p.MailHost] = []dns.RR{dns.NewA(p.MailHost, 3600, p.MailAddr)}
	}
	// Apex NS sets: any provider zone apex queried at this server is
	// answered with this provider's NS names (owner = queried zone).
	apexNS := make(map[string][]dns.RR, len(w.providerZones))
	for zone := range w.providerZones {
		rrs := make([]dns.RR, 0, len(p.NSNames))
		for _, h := range p.NSNames {
			rrs = append(rrs, dns.NewNS(zone, 3600, h))
		}
		apexNS[zone] = rrs
	}
	return dns.HandlerFunc(func(q *dns.Message, _ netip.Addr) *dns.Message {
		resp := q.Reply()
		if len(q.Questions) != 1 {
			resp.RCode = dns.RCodeNotImp
			return resp
		}
		question := q.Questions[0]
		name := question.Name
		now := w.Clock().Now()

		// The provider's own infrastructure names.
		if rrs, ok := ownRRs[name]; ok {
			resp.Authoritative = true
			if question.Type == dns.TypeA {
				resp.Answers = rrs
			}
			return resp
		}
		// Provider zone apex (e.g. SOA/NS for nic.ru.) — answer minimally.
		if _, ok := w.providerZones[name]; ok {
			resp.Authoritative = true
			if question.Type == dns.TypeNS {
				resp.Answers = apexNS[name]
			}
			return resp
		}

		// Customer domains.
		d, ok := w.domains[name]
		if !ok {
			resp.RCode = dns.RCodeRefused
			return resp
		}
		cfg, ok := d.ConfigAt(now)
		if !ok {
			resp.RCode = dns.RCodeRefused
			return resp
		}
		serves := false
		for _, key := range dnsProfiles[cfg.DNS] {
			if key == p.Key {
				serves = true
				break
			}
		}
		if !serves {
			// Lame delegation: the domain moved away but something still
			// points here.
			resp.RCode = dns.RCodeRefused
			return resp
		}
		resp.Authoritative = true
		switch question.Type {
		case dns.TypeNS:
			resp.Answers = w.nsAnswers(name, cfg.DNS)
		case dns.TypeA:
			resp.Answers = w.aAnswers(name, cfg.Host)
		case dns.TypeMX:
			if mp := w.MailProviderFor(d, now); mp != nil && mp.MailHost != "" {
				resp.Answers = w.mxAnswers(name, mp.MailHost)
			}
		case dns.TypeSOA:
			resp.Answers = []dns.RR{dns.NewSOA(name, p.NSNames[0], "hostmaster."+name, uint32(now))}
		}
		return resp
	})
}

// SetOutage simulates the collection outage the paper notes on
// 2021-03-22 (footnote 8) by making the registry TLD servers unreachable
// for the given day when enabled.
//
// Deprecated-by-design: this flips shared MemNet state and must be
// manually undone; ScheduleRegistryOutage expresses the same event as a
// day-keyed fault-profile window that turns itself on and off with the
// simulation clock.
func (w *World) SetOutage(day simtime.Day, enabled bool) {
	_ = day
	for _, tld := range []string{"ru", idn.RFTLDASCII} {
		for _, a := range w.tldAddrs[tld] {
			w.Mem.SetUnreachable(a, enabled)
		}
	}
}

// ScheduleRegistryOutage registers a scheduled outage window for every
// registry TLD server on the fault layer: base is the profile otherwise
// in effect for those servers (typically the sweep's default), and the
// window is appended to its outage schedule. The plan is also recorded
// in sched (when non-nil) under the "tld:<label>" key so analyses can
// ask what was down on a given day.
func (w *World) ScheduleRegistryOutage(ft *dns.FaultTransport, base dns.FaultProfile, win simtime.Window, sched *netsim.OutageSchedule) {
	base.Outages = append(base.Outages, win)
	for _, tld := range []string{"ru", idn.RFTLDASCII} {
		for _, a := range w.tldAddrs[tld] {
			ft.SetServer(a, base)
		}
		if sched != nil {
			sched.Add("tld:"+tld, win)
		}
	}
}
