package world

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/netip"
	"sort"

	"whereru/internal/ct"
	"whereru/internal/dns"
	"whereru/internal/geo"
	"whereru/internal/idn"
	"whereru/internal/netsim"
	"whereru/internal/pki"
	"whereru/internal/registry"
	"whereru/internal/sanctions"
	"whereru/internal/scan"
	"whereru/internal/simtime"
)

// World is the fully-wired simulated ecosystem. Build constructs it; the
// measurement pipeline and analyses then observe it exclusively through
// protocol surfaces (DNS queries, CT log reads, CRL/OCSP state, scans).
type World struct {
	cfg Config

	// Internet is the address plan (ASes, prefixes, origin lookup).
	Internet *netsim.Internet
	// Topology is the AS-level routing graph (adjacency, IXP fabrics,
	// scheduled route events) layered on Internet's address plan.
	Topology *netsim.Topology
	// Mem is the in-memory DNS wire.
	Mem *dns.MemNet
	// Geo is the IP2Location-analog geolocation database.
	Geo *geo.DB
	// Registries groups the .ru and .рф registries.
	Registries *registry.Group
	// Sanctions is the OFAC/UK list (107 domains).
	Sanctions *sanctions.List
	// Certs is the ground-truth certificate corpus.
	Certs *pki.Store
	// CTLog is the public CT log (Censys's index analog reads this).
	CTLog *ct.Log
	// Scanner is the CUIDS-analog endpoint registry.
	Scanner *scan.Scanner
	// CAs is the CA catalog by organization name.
	CAs map[string]*pki.CA

	providers map[string]*Provider
	byASN     map[netsim.ASN]*Provider
	domains   map[string]*DomainRec
	names     []string // all domain names, generation order
	roots     []netip.Addr
	tldAddrs  map[string][]netip.Addr // tld label ("ru") -> server addrs
	// providerZones maps a provider's NS-name parent zone ("nic.ru.") to
	// the provider, for TLD delegation of the providers' own names.
	providerZones map[string]*Provider
	// rr memoizes handler response sections (see rrcache.go).
	rr *rrCache
}

// Build generates the world.
func Build(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &World{
		cfg:           cfg,
		Internet:      netsim.NewInternet(simtime.StudyStart),
		Mem:           dns.NewMemNet(),
		Geo:           geo.NewDB(),
		Sanctions:     sanctions.NewList(),
		Certs:         pki.NewStore(),
		CTLog:         ct.NewLog("whereru-log"),
		Scanner:       scan.NewScanner(),
		CAs:           pki.StandardCatalog(),
		providers:     make(map[string]*Provider),
		byASN:         make(map[netsim.ASN]*Provider),
		domains:       make(map[string]*DomainRec),
		tldAddrs:      make(map[string][]netip.Addr),
		providerZones: make(map[string]*Provider),
	}
	if err := w.buildProviders(); err != nil {
		return nil, err
	}
	if err := w.buildGeo(); err != nil {
		return nil, err
	}
	if err := w.buildDomains(); err != nil {
		return nil, err
	}
	w.buildSanctioned()
	if err := w.buildServing(); err != nil {
		return nil, err
	}
	if err := w.buildTopology(); err != nil {
		return nil, err
	}
	if err := w.buildCerts(); err != nil {
		return nil, err
	}
	return w, nil
}

// Config returns the world's configuration.
func (w *World) Config() Config { return w.cfg }

// Clock returns the shared simulation clock.
func (w *World) Clock() *netsim.Clock { return w.Internet.Clock }

// Roots returns the root name-server hint addresses.
func (w *World) Roots() []netip.Addr { return w.roots }

// NewResolver returns an iterative resolver over the in-memory wire.
func (w *World) NewResolver() *dns.Resolver {
	return dns.NewResolver(w.Mem, w.roots)
}

// NewFaultyResolver returns a resolver whose exchanges pass through a
// deterministic fault-injection layer configured with profile as the
// default for every server, plus the fault transport for installing
// per-server or per-prefix overrides (e.g. outage windows on registry
// infrastructure). The resolver's client is seeded with the same seed,
// so two runs over identical worlds observe identical faults.
func (w *World) NewFaultyResolver(seed int64, profile dns.FaultProfile) (*dns.Resolver, *dns.FaultTransport) {
	ft := dns.NewFaultTransport(w.Mem, seed, w.Clock())
	ft.SetDefault(profile)
	r := dns.NewResolver(ft, w.roots)
	r.Client = dns.NewSeededClient(ft, seed)
	return r, ft
}

// TLDServerAddrs returns the server addresses for a served TLD label
// ("ru", the .рф punycode), for targeting registry infrastructure with
// fault profiles.
func (w *World) TLDServerAddrs(tld string) []netip.Addr {
	addrs := make([]netip.Addr, len(w.tldAddrs[tld]))
	copy(addrs, w.tldAddrs[tld])
	return addrs
}

// Provider returns a provider by key.
func (w *World) Provider(key string) (*Provider, bool) {
	p, ok := w.providers[key]
	return p, ok
}

// ProviderByASN returns the provider owning an ASN.
func (w *World) ProviderByASN(asn netsim.ASN) (*Provider, bool) {
	p, ok := w.byASN[asn]
	return p, ok
}

// Domain returns the record for a canonical name.
func (w *World) Domain(name string) (*DomainRec, bool) {
	d, ok := w.domains[name]
	return d, ok
}

// NumDomains returns the number of generated domains (incl. sanctioned).
func (w *World) NumDomains() int { return len(w.names) }

func (w *World) buildProviders() error {
	for _, p := range Catalog() {
		if _, err := w.Internet.RegisterAS(netsim.AS{
			Number: p.ASN, Name: p.Key, Org: p.Org, Country: p.Country,
		}); err != nil {
			return err
		}
		// Name-server addresses.
		for range p.NSNames {
			addr, err := w.Internet.NextAddr(p.ASN)
			if err != nil {
				return err
			}
			p.NSAddrs = append(p.NSAddrs, addr)
		}
		if p.MailHost != "" {
			addr, err := w.Internet.NextAddr(p.ASN)
			if err != nil {
				return err
			}
			p.MailAddr = addr
		}
		// Shared-hosting pool.
		for i := 0; i < hostPoolSize; i++ {
			addr, err := w.Internet.NextAddr(p.ASN)
			if err != nil {
				return err
			}
			p.HostPool = append(p.HostPool, addr)
		}
		w.providers[p.Key] = p
		w.byASN[p.ASN] = p
		for _, nsName := range p.NSNames {
			zone := dns.Parent(nsName)
			w.providerZones[zone] = p
		}
	}
	// Root and TLD infrastructure live in a dedicated infra AS.
	if _, err := w.Internet.RegisterAS(netsim.AS{Number: infraASN, Name: "infra", Org: "DNS Infrastructure", Country: "US"}); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		addr, err := w.Internet.NextAddr(infraASN)
		if err != nil {
			return err
		}
		w.roots = append(w.roots, addr)
	}
	for _, tld := range w.servedTLDs() {
		for i := 0; i < 2; i++ {
			addr, err := w.Internet.NextAddr(infraASN)
			if err != nil {
				return err
			}
			w.tldAddrs[tld] = append(w.tldAddrs[tld], addr)
		}
	}
	return nil
}

// servedTLDs collects every TLD the simulation must serve: the two
// registry TLDs plus each TLD appearing in provider NS names. The
// providers are visited in sorted key order — TLD order decides which
// infrastructure addresses each TLD is allocated, and a map walk here
// would make two Builds with the same seed disagree on server addresses.
func (w *World) servedTLDs() []string {
	keys := make([]string, 0, len(w.providers))
	for k := range w.providers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	seen := map[string]bool{"ru": true, idn.RFTLDASCII: true}
	out := []string{"ru", idn.RFTLDASCII}
	for _, k := range keys {
		for _, n := range w.providers[k].NSNames {
			tld := dns.TLD(n)
			if !seen[tld] {
				seen[tld] = true
				out = append(out, tld)
			}
		}
	}
	return out
}

func (w *World) buildGeo() error {
	b := geo.NewBuilder()
	// Countries confusable with each hosting country, for the noise model.
	confusions := map[string][]string{
		"RU": {"UA", "KZ"}, "US": {"CA", "NL"}, "DE": {"AT", "NL"},
		"NL": {"DE", "BE"}, "SE": {"FI", "NO"}, "CZ": {"SK", "DE"},
		"EE": {"LV", "FI"}, "PL": {"DE", "CZ"}, "FR": {"BE", "DE"},
	}
	rng := rand.New(rand.NewSource(w.cfg.Seed ^ 0x6E01))
	for _, alloc := range w.Internet.Allocations() {
		as, ok := w.Internet.Lookup(alloc.ASN)
		if !ok {
			return fmt.Errorf("world: allocation for unknown AS%d", alloc.ASN)
		}
		b.Add(alloc.Prefix, as.Country)
		if w.cfg.GeoNoise > 0 {
			// Mislocate a sample of /24s inside the /16 (footnote 5:
			// country-level geolocation disagreement).
			wrong := confusions[as.Country]
			if len(wrong) == 0 {
				wrong = []string{"US"}
			}
			base := alloc.Prefix.Addr().As4()
			for sub := 0; sub < 256; sub++ {
				if rng.Float64() < w.cfg.GeoNoise {
					p := netip.PrefixFrom(netip.AddrFrom4([4]byte{base[0], base[1], byte(sub), 0}), 24)
					b.Add(p, wrong[rng.Intn(len(wrong))])
				}
			}
		}
	}
	// A single snapshot effective from well before the study window.
	return w.Geo.Snapshot(simtime.StudyStart.Add(-3650), b)
}

func (w *World) buildDomains() error {
	ru := registry.New("ru.")
	rf := registry.New(idn.RFTLDASCII + ".")
	w.Registries = registry.NewGroup(ru, rf)
	n := w.cfg.NumDomains()
	registrars := []string{"REG.RU", "RU-CENTER", "Beget", "Timeweb", "Webnames"}
	for i := 0; i < n; i++ {
		d := w.genDomain(i)
		if _, dup := w.domains[d.Name]; dup {
			continue // RFShare sampling can collide on names; skip
		}
		w.domains[d.Name] = d
		w.names = append(w.names, d.Name)
		reg, ok := w.Registries.ForName(d.Name)
		if !ok {
			return fmt.Errorf("world: no registry for %s", d.Name)
		}
		if _, err := reg.Register(d.Name, d.Created, fmt.Sprintf("ORG-%06d", i), registrars[i%len(registrars)]); err != nil {
			return fmt.Errorf("world: register %s: %w", d.Name, err)
		}
		if d.Removed != 0 {
			if err := reg.Remove(d.Name, d.Removed); err != nil {
				return err
			}
		}
	}
	return nil
}

// hostAddrsFor derives the apex A records for a domain under a given
// hosting profile: one stable pool address per hosting provider.
func (w *World) hostAddrsFor(name string, hostProfile string) []netip.Addr {
	keys, ok := hostProfiles[hostProfile]
	if !ok {
		return nil
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	idx := int(h.Sum32())
	var out []netip.Addr
	for _, k := range keys {
		p := w.providers[k]
		if p == nil || len(p.HostPool) == 0 {
			continue
		}
		out = append(out, p.HostPool[(idx%len(p.HostPool)+len(p.HostPool))%len(p.HostPool)])
	}
	return out
}

// nsSetFor returns the NS names and their glue for a DNS profile.
func (w *World) nsSetFor(dnsProfile string) (hosts []string, addrs []netip.Addr) {
	for _, key := range dnsProfiles[dnsProfile] {
		p := w.providers[key]
		if p == nil {
			continue
		}
		hosts = append(hosts, p.NSNames...)
		addrs = append(addrs, p.NSAddrs...)
	}
	return hosts, addrs
}

// ActiveDomains returns how many domains are registered on day.
func (w *World) ActiveDomains(day simtime.Day) int {
	return w.Registries.Count(day)
}

// randomActiveDomain picks a uniformly random domain active on day.
func (w *World) randomActiveDomain(rng *rand.Rand, day simtime.Day) (*DomainRec, bool) {
	for tries := 0; tries < 64; tries++ {
		d := w.domains[w.names[rng.Intn(len(w.names))]]
		if d.ActiveOn(day) {
			return d, true
		}
	}
	return nil, false
}
