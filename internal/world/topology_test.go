package world

import (
	"strings"
	"testing"
	"time"

	"whereru/internal/netsim"
	"whereru/internal/simtime"
)

// scenarioWorld builds a private world (the package-level shared world
// must stay unmutated) and applies the named scenario, returning the
// world and the schedule the route events were recorded on.
func scenarioWorld(t *testing.T, name string) (*World, *netsim.OutageSchedule) {
	t.Helper()
	w, err := Build(Config{Seed: 7, Scale: 20000, RFShare: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	sched := netsim.NewOutageSchedule()
	if name != "" {
		if err := w.ApplyScenario(name, sched); err != nil {
			t.Fatalf("ApplyScenario(%s): %v", name, err)
		}
	}
	return w, sched
}

// routeTo reports the vantage's route decision for every NS address of a
// provider; all addresses of one AS must agree, so it returns the
// consensus and fails the test on a split.
func routeTo(t *testing.T, w *World, key string, day simtime.Day) (time.Duration, bool) {
	t.Helper()
	p, ok := w.Provider(key)
	if !ok {
		t.Fatalf("no provider %q", key)
	}
	if len(p.NSAddrs) == 0 {
		t.Fatalf("provider %q has no NS addresses", key)
	}
	rv := w.RouteView()
	lat0, ok0 := rv.Route(day, p.NSAddrs[0])
	for _, addr := range p.NSAddrs[1:] {
		lat, ok := rv.Route(day, addr)
		if ok != ok0 || lat != lat0 {
			t.Fatalf("provider %q: NS addresses disagree on day %s: (%v,%v) vs (%v,%v)",
				key, day, lat0, ok0, lat, ok)
		}
	}
	return lat0, ok0
}

func TestBaseTopologyAllReachable(t *testing.T) {
	w, _ := scenarioWorld(t, "")
	day := simtime.ConflictStart.Add(-1)
	for _, p := range Catalog() {
		if len(p.NSNames) == 0 {
			continue // hosting-only AS, no name servers to route to
		}
		lat, ok := routeTo(t, w, p.Key, day)
		if !ok {
			t.Errorf("%s (AS%d) unreachable in the base topology", p.Key, p.ASN)
			continue
		}
		if lat <= 0 {
			t.Errorf("%s: path latency %v, want > 0", p.Key, lat)
		}
	}
	// Root and TLD infrastructure must route too, or no sweep resolves.
	rv := w.RouteView()
	for _, root := range w.Roots() {
		if _, ok := rv.Route(day, root); !ok {
			t.Errorf("root server %v unreachable", root)
		}
	}
}

func TestScenarioNetnodDepeeringRoutes(t *testing.T) {
	w, _ := scenarioWorld(t, ScenarioNetnodDepeering)
	if _, ok := routeTo(t, w, "netnod", NetnodCutoffDay.Add(-1)); !ok {
		t.Error("netnod unreachable before the cutoff")
	}
	for _, day := range []simtime.Day{NetnodCutoffDay, NetnodCutoffDay.Add(10), simtime.StudyEnd} {
		if _, ok := routeTo(t, w, "netnod", day); ok {
			t.Errorf("netnod still reachable on %s, want depeered", day)
		}
	}
	// Collateral check: the depeering is surgical — RU-CENTER (Netnod's
	// Stockholm fabric peer) and a western provider keep their routes.
	for _, key := range []string{"rucenter", "regru", "yandex"} {
		if _, ok := routeTo(t, w, key, NetnodCutoffDay.Add(10)); !ok {
			t.Errorf("%s lost its route to the netnod depeering", key)
		}
	}
}

func TestScenarioRUIXPIsolationLatency(t *testing.T) {
	w, _ := scenarioWorld(t, ScenarioRUIXPIsolation)
	before, after := simtime.ConflictStart.Add(-1), simtime.ConflictStart.Add(10)
	for _, key := range []string{"regru", "timeweb", "sprinthost"} {
		latBefore, okBefore := routeTo(t, w, key, before)
		latAfter, okAfter := routeTo(t, w, key, after)
		if !okBefore || !okAfter {
			t.Fatalf("%s: reachability (%v, %v), want intact both sides — this scenario is a latency event", key, okBefore, okAfter)
		}
		if latAfter <= latBefore {
			t.Errorf("%s: latency %v → %v across the fabric withdrawal, want an increase (transit detour)", key, latBefore, latAfter)
		}
	}
	// Western providers never crossed the Moscow fabric; their paths are
	// untouched.
	gbLatBefore, _ := routeTo(t, w, "godaddy", before)
	gbLatAfter, ok := routeTo(t, w, "godaddy", after)
	if !ok || gbLatAfter != gbLatBefore {
		t.Errorf("godaddy path changed (%v → %v, ok=%v), want unaffected", gbLatBefore, gbLatAfter, ok)
	}
}

func TestScenarioRUNETPartitionRoutes(t *testing.T) {
	w, _ := scenarioWorld(t, ScenarioRUNETPartition)
	win := simtime.Window{From: simtime.Date(2022, 3, 6), To: simtime.Date(2022, 3, 20)}
	majors := []string{"regru", "rucenter", "timeweb", "beget", "yandex"}
	minors := []string{"sprinthost", "masterhost", "peterhost", "rupool1"}

	inside := win.From.Add(3)
	for _, key := range minors {
		if _, ok := routeTo(t, w, key, inside); ok {
			t.Errorf("%s reachable inside the partition window", key)
		}
		if _, ok := routeTo(t, w, key, win.From.Add(-1)); !ok {
			t.Errorf("%s unreachable before the partition", key)
		}
		if _, ok := routeTo(t, w, key, win.To.Add(1)); !ok {
			t.Errorf("%s unreachable after the partition lifted", key)
		}
	}
	for _, key := range majors {
		if _, ok := routeTo(t, w, key, inside); !ok {
			t.Errorf("major %s lost reachability inside the partition, want its Moscow fabric peering to hold", key)
		}
	}
}

func TestApplyScenarioUnknown(t *testing.T) {
	w, _ := scenarioWorld(t, "")
	err := w.ApplyScenario("no-such-scenario", nil)
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	for _, name := range Scenarios() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list scenario %q", err, name)
		}
	}
}

func TestApplyScenarioRecordsEvents(t *testing.T) {
	_, sched := scenarioWorld(t, ScenarioNetnodDepeering)
	evs := sched.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded on the schedule")
	}
	kinds := map[string]string{}
	for _, ev := range evs {
		if !strings.HasPrefix(ev.Key, "route:") {
			t.Errorf("event key %q missing route: prefix", ev.Key)
		}
		if ev.Window.From != NetnodCutoffDay || ev.Window.To != simtime.StudyEnd {
			t.Errorf("event %s window %s..%s, want cutoff..study end", ev.Key, ev.Window.From, ev.Window.To)
		}
		kinds[ev.Key] = ev.Kind
	}
	want := map[string]string{
		"route:depeer:AS8674-AS64500": netsim.EventDepeer,
		"route:ixp:NETNOD-IX:AS8674":  netsim.EventIXPWithdraw,
		"route:ixp:DE-CIX:AS8674":     netsim.EventIXPWithdraw,
	}
	for key, kind := range want {
		if kinds[key] != kind {
			t.Errorf("event %s: kind %q, want %q (have %v)", key, kinds[key], kind, kinds)
		}
	}
}
