package world

import (
	"bytes"
	"reflect"
	"testing"

	"whereru/internal/dns"
	"whereru/internal/dns/zone"
	"whereru/internal/simtime"
)

func TestExportZoneSeedsMatchRegistry(t *testing.T) {
	w := getWorld(t)
	day := simtime.ConflictStart
	z, err := w.ExportZone("ru.", day)
	if err != nil {
		t.Fatal(err)
	}
	seeds := SeedsFromZone(z)
	var want []string
	for _, r := range w.Registries.Registries() {
		if r.TLD == "ru." {
			want = r.ZoneSnapshot(day)
		}
	}
	if len(seeds) != len(want) {
		t.Fatalf("zone seeds = %d, registry snapshot = %d", len(seeds), len(want))
	}
	if !reflect.DeepEqual(seeds, want) {
		t.Fatal("seed lists differ")
	}
}

func TestExportZoneRoundTripsThroughParser(t *testing.T) {
	w := getWorld(t)
	z, err := w.ExportZone("xn--p1ai.", simtime.ConflictStart)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := z.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := zone.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-parse failed: %v", err)
	}
	if back.Origin != "xn--p1ai." {
		t.Fatalf("origin = %q", back.Origin)
	}
	if back.Size() != z.Size() {
		t.Fatalf("size after round trip: %d vs %d", back.Size(), z.Size())
	}
	if !reflect.DeepEqual(SeedsFromZone(z), SeedsFromZone(back)) {
		t.Fatal("seeds changed through serialization")
	}
}

func TestExportZoneTracksDate(t *testing.T) {
	w := getWorld(t)
	before, err := w.ExportZone("ru.", NetnodCutoffDay.Add(-1))
	if err != nil {
		t.Fatal(err)
	}
	after, err := w.ExportZone("ru.", NetnodCutoffDay)
	if err != nil {
		t.Fatal(err)
	}
	// The Netnod customers' delegations lose their third NS record.
	nsBefore := before.Lookup("sanctioned070.ru.", dns.TypeNS)
	nsAfter := after.Lookup("sanctioned070.ru.", dns.TypeNS)
	if len(nsBefore) != 3 || len(nsAfter) != 2 {
		t.Fatalf("NS counts across cutoff: %d → %d, want 3 → 2", len(nsBefore), len(nsAfter))
	}
	// SOA serials encode the date.
	soaB := before.SOA().Data.(dns.SOAData).Serial
	soaA := after.SOA().Data.(dns.SOAData).Serial
	if soaB >= soaA {
		t.Fatalf("serials not increasing: %d then %d", soaB, soaA)
	}
}

func TestExportZoneErrors(t *testing.T) {
	w := getWorld(t)
	if _, err := w.ExportZone("dk.", 0); err == nil {
		t.Error("unserved TLD exported")
	}
	if _, err := w.ExportZone("com.", 0); err == nil {
		t.Error("non-registry TLD exported")
	}
}

func TestZoneDelegationsQueryable(t *testing.T) {
	w := getWorld(t)
	day := simtime.ConflictStart
	z, err := w.ExportZone("ru.", day)
	if err != nil {
		t.Fatal(err)
	}
	seeds := SeedsFromZone(z)
	// The zone answers referrals for its delegations, like a real TLD
	// server loaded from this file would.
	ans := z.Query(seeds[0], dns.TypeA)
	if ans.Authoritative {
		t.Fatal("delegation answered authoritatively")
	}
	if len(ans.Authority) == 0 {
		t.Fatalf("no referral for %s", seeds[0])
	}
}
