package world

import (
	"testing"

	"whereru/internal/dns"
)

// These tests pin internal consistency of the static tables: every weight
// references an existing profile, every profile references existing
// providers, no two providers collide on ASN or NS zone, and event
// destinations are valid. They catch the class of bug where a calibration
// edit silently breaks resolution for a slice of the population.

func TestCatalogASNsUnique(t *testing.T) {
	seen := map[uint32]string{}
	for _, p := range Catalog() {
		if prev, dup := seen[uint32(p.ASN)]; dup {
			t.Errorf("AS%d claimed by both %s and %s", p.ASN, prev, p.Key)
		}
		seen[uint32(p.ASN)] = p.Key
	}
}

func TestCatalogNSNamesValid(t *testing.T) {
	for _, p := range Catalog() {
		for _, n := range p.NSNames {
			if !dns.ValidName(n) {
				t.Errorf("%s: invalid NS name %q", p.Key, n)
			}
			if dns.CountLabels(n) < 3 {
				t.Errorf("%s: NS name %q too shallow to anchor a zone", p.Key, n)
			}
		}
		if p.MailHost != "" {
			if !dns.ValidName(p.MailHost) {
				t.Errorf("%s: invalid mail host %q", p.Key, p.MailHost)
			}
		}
	}
}

func TestCatalogNSZonesUnique(t *testing.T) {
	// Each NS-name parent zone must belong to exactly one provider, or
	// TLD delegation becomes ambiguous.
	zones := map[string]string{}
	for _, p := range Catalog() {
		for _, n := range p.NSNames {
			zone := dns.Parent(n)
			if prev, dup := zones[zone]; dup && prev != p.Key {
				t.Errorf("zone %s claimed by both %s and %s", zone, prev, p.Key)
			}
			zones[zone] = p.Key
		}
	}
}

func TestMailHostsAnchoredInProviderZones(t *testing.T) {
	for _, p := range Catalog() {
		if p.MailHost == "" {
			continue
		}
		zone := dns.Parent(p.MailHost)
		anchored := false
		for _, n := range p.NSNames {
			if dns.Parent(n) == zone {
				anchored = true
			}
		}
		if !anchored {
			t.Errorf("%s: mail host %s not under any of the provider's NS zones", p.Key, p.MailHost)
		}
	}
}

func TestDNSProfilesReferenceProviders(t *testing.T) {
	keys := map[string]bool{}
	for _, p := range Catalog() {
		keys[p.Key] = true
	}
	for profile, providers := range dnsProfiles {
		if len(providers) == 0 {
			t.Errorf("profile %q has no providers", profile)
		}
		for _, k := range providers {
			if !keys[k] {
				t.Errorf("profile %q references unknown provider %q", profile, k)
			}
		}
	}
	for profile, providers := range hostProfiles {
		if len(providers) == 0 {
			t.Errorf("host profile %q has no providers", profile)
		}
		for _, k := range providers {
			if !keys[k] {
				t.Errorf("host profile %q references unknown provider %q", profile, k)
			}
		}
	}
}

func TestWeightTablesReferenceProfiles(t *testing.T) {
	for name, table := range map[string][]weighted{
		"dnsWeightsEarly": dnsWeightsEarly,
		"dnsWeightsLate":  dnsWeightsLate,
	} {
		total := 0.0
		for _, w := range table {
			if _, ok := dnsProfiles[w.key]; !ok {
				t.Errorf("%s: unknown DNS profile %q", name, w.key)
			}
			if w.weight <= 0 {
				t.Errorf("%s: non-positive weight for %q", name, w.key)
			}
			total += w.weight
		}
		if total < 80 || total > 120 {
			t.Errorf("%s: weights sum to %.1f, want ≈100", name, total)
		}
	}
	for name, table := range map[string][]weighted{
		"hostWeightsEarly": hostWeightsEarly,
		"hostWeightsLate":  hostWeightsLate,
	} {
		total := 0.0
		for _, w := range table {
			if _, ok := hostProfiles[w.key]; !ok {
				t.Errorf("%s: unknown host profile %q", name, w.key)
			}
			total += w.weight
		}
		if total < 95 || total > 105 {
			t.Errorf("%s: weights sum to %.1f, want ≈100", name, total)
		}
	}
}

func TestRepatriationDestinationsValid(t *testing.T) {
	for _, k := range fullRUDNSProfiles {
		if _, ok := dnsProfiles[k]; !ok {
			t.Errorf("repatriation DNS destination %q missing from dnsProfiles", k)
		}
		if _, ok := hostProfiles[k]; !ok {
			t.Errorf("repatriation host destination %q missing from hostProfiles", k)
		}
	}
	for k := range tldFullDNSProfiles {
		provs, ok := dnsProfiles[k]
		if !ok {
			t.Fatalf("tldFullDNSProfiles references unknown profile %q", k)
		}
		// Every NS name in a TLD-full profile must be under a Russian TLD.
		cat := map[string]*Provider{}
		for _, p := range Catalog() {
			cat[p.Key] = p
		}
		for _, pk := range provs {
			for _, n := range cat[pk].NSNames {
				tld := dns.TLD(n)
				if tld != "ru" && tld != "su" && tld != "xn--p1ai" {
					t.Errorf("profile %q marked TLD-full but %s has NS %s under .%s", k, pk, n, tld)
				}
			}
		}
	}
}

func TestSampleWeightedCoversTable(t *testing.T) {
	table := []weighted{{"a", 1}, {"b", 2}, {"c", 1}}
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		counts[sampleWeighted(table, float64(i)/4000)]++
	}
	if counts["a"] == 0 || counts["b"] == 0 || counts["c"] == 0 {
		t.Fatalf("sampleWeighted missed keys: %v", counts)
	}
	if counts["b"] < counts["a"] || counts["b"] < counts["c"] {
		t.Errorf("weights not respected: %v", counts)
	}
	// Boundary draws.
	if got := sampleWeighted(table, 0); got != "a" {
		t.Errorf("u=0 → %q", got)
	}
	if got := sampleWeighted(table, 0.9999999); got != "c" {
		t.Errorf("u→1 → %q", got)
	}
}

func TestDomainEpochsInvariants(t *testing.T) {
	w := getWorld(t)
	for _, name := range w.names {
		d := w.domains[name]
		if len(d.epochs) == 0 {
			t.Fatalf("%s has no epochs", name)
		}
		if d.epochs[0].From != d.Created {
			t.Fatalf("%s first epoch %v != created %v", name, d.epochs[0].From, d.Created)
		}
		for i := 1; i < len(d.epochs); i++ {
			if d.epochs[i].From <= d.epochs[i-1].From {
				t.Fatalf("%s epochs out of order at %d", name, i)
			}
		}
		for _, e := range d.epochs {
			if _, ok := dnsProfiles[e.DNS]; !ok {
				t.Fatalf("%s epoch references unknown DNS profile %q", name, e.DNS)
			}
			if _, ok := hostProfiles[e.Host]; !ok {
				t.Fatalf("%s epoch references unknown host profile %q", name, e.Host)
			}
		}
	}
}
