package world

import (
	"fmt"
	"math/rand"

	"whereru/internal/pki"
	"whereru/internal/simtime"
)

// caIssuance describes one CA's daily issuance for .ru/.рф names at paper
// scale, per period, with the day it stopped (0 = never stopped) and
// whether it occasionally leaks "isolated dot" issuance afterwards from
// lesser-known CNs (Figure 8).
type caIssuance struct {
	org          string
	preConflict  float64 // certs/day, paper scale
	preSanctions float64
	postSanction float64
	stopDay      simtime.Day
	isolatedDots bool
	revRate      float64 // Table 2 revocation rate, percent
}

// issuancePlan is calibrated from Table 1 (per-period totals divided by
// period lengths: 54, 30 and 51 days) and Figure 8 (stop dates).
var issuancePlan = []caIssuance{
	{org: pki.LetsEncrypt, preConflict: 121963, preSanctions: 109500, postSanction: 107020, revRate: 0.06},
	{org: pki.DigiCert, preConflict: 4519, stopDay: simtime.Date(2022, 2, 25), isolatedDots: true, revRate: 0.80},
	{org: pki.CPanel, preConflict: 2833, preSanctions: 367, stopDay: simtime.Date(2022, 3, 26), isolatedDots: true, revRate: 0.10},
	{org: pki.GlobalSign, preConflict: 1000, preSanctions: 833, postSanction: 549, revRate: 1.68},
	{org: pki.Sectigo, preConflict: 900, preSanctions: 120, stopDay: simtime.Date(2022, 3, 1), isolatedDots: true, revRate: 5.15},
	{org: pki.ZeroSSL, preConflict: 600, preSanctions: 250, stopDay: simtime.Date(2022, 3, 10), revRate: 0.30},
	{org: pki.GoGetSSL, preConflict: 450, preSanctions: 150, stopDay: simtime.Date(2022, 3, 5), revRate: 0.20},
	{org: pki.GoogleTrust, preConflict: 400, preSanctions: 300, postSanction: 255, revRate: 0.05},
	{org: pki.AmazonTrust, preConflict: 300, preSanctions: 80, stopDay: simtime.Date(2022, 3, 12), revRate: 0.10},
	{org: pki.CloudflareInc, preConflict: 180, preSanctions: 30, postSanction: 8, revRate: 0.05},
}

// sanctionedPlan carries Table 2's sanctioned-domain columns: issuance
// counts at paper scale (Let's Encrypt's 16k modeled at 1:10) and the
// revocation fraction. DigiCert and Sectigo revoke everything (revPct
// 100); counts scale with the world so Table 1's shares stay untouched,
// while rates — the paper's Table 2 signal — are preserved.
type sanctionedIssuance struct {
	org      string
	issued   int
	revPct   float64 // percent of issued that get revoked
	preShare float64 // fraction issued before the conflict
}

var sanctionedPlan = []sanctionedIssuance{
	{org: pki.LetsEncrypt, issued: PaperNumbers.SancIssuedLE, revPct: 1.19, preShare: 0.55},
	{org: pki.DigiCert, issued: PaperNumbers.SancIssuedDigiCert, revPct: 100, preShare: 1.0},
	{org: pki.GlobalSign, issued: PaperNumbers.SancIssuedGlobalSign, revPct: 2.54, preShare: 0.15},
	{org: pki.Sectigo, issued: PaperNumbers.SancIssuedSectigo, revPct: 100, preShare: 1.0},
	{org: pki.ZeroSSL, issued: PaperNumbers.SancIssuedZeroSSL, revPct: 2.43, preShare: 0.6},
}

func (p caIssuance) rate(day simtime.Day) float64 {
	if p.stopDay != 0 && day >= p.stopDay {
		return 0
	}
	switch simtime.PeriodOf(day) {
	case simtime.PreConflict:
		return p.preConflict
	case simtime.PreSanctions:
		return p.preSanctions
	default:
		return p.postSanction
	}
}

// buildCerts generates the §4 certificate corpus: the CT window's daily
// issuance per CA (scaled), revocations, the sanctioned-domain issuance
// and revocation patterns, the Russian Trusted Root CA's unlogged
// certificates, and the TLS scan endpoints that make them observable.
func (w *World) buildCerts() error {
	rng := rand.New(rand.NewSource(w.cfg.Seed ^ 0x5EC7C4A5))
	scale := float64(w.cfg.Scale)
	revWindowStart := simtime.Date(2022, 2, 25)

	for day := simtime.CTWindowStart; day <= simtime.CTWindowEnd; day++ {
		for _, plan := range issuancePlan {
			ca := w.CAs[plan.org]
			rate := plan.rate(day) / scale
			count := int(rate)
			if rng.Float64() < rate-float64(count) {
				count++
			}
			// Isolated post-stop dots from lesser-known issuing CNs.
			if count == 0 && plan.isolatedDots && plan.stopDay != 0 && day > plan.stopDay && rng.Float64() < 0.04 {
				count = 1
			}
			for i := 0; i < count; i++ {
				d, ok := w.randomActiveDomain(rng, day)
				if !ok || d.Sanctioned {
					// Sanctioned-domain issuance follows its own plan
					// (Table 2); keep it out of the background volume.
					continue
				}
				cert, err := ca.Issue(day, d.Name, "www."+d.Name)
				if err != nil {
					return err
				}
				if err := w.Certs.Add(cert); err != nil {
					return err
				}
				if cert.Logged {
					if _, err := w.CTLog.Append(cert, day); err != nil {
						return err
					}
				}
				// Background revocations at the CA's Table-2 rate, for
				// certificates whose validity reaches the analysis window.
				if cert.NotAfter >= revWindowStart && rng.Float64() < plan.revRate/100 {
					revDay := maxDay(day+1, revWindowStart).Add(rng.Intn(30))
					if revDay <= simtime.CTWindowEnd {
						w.Certs.CRL(cert.IssuerOrg).Revoke(cert.Serial, revDay, pki.ReasonSuperseded)
					}
				}
			}
		}
	}

	if err := w.buildSanctionedCerts(rng); err != nil {
		return err
	}
	if err := w.buildRussianCA(rng); err != nil {
		return err
	}
	w.buildScanEndpoints(rng)
	return nil
}

func maxDay(a, b simtime.Day) simtime.Day {
	if a > b {
		return a
	}
	return b
}

// buildSanctionedCerts issues Table 2's sanctioned-domain certificates.
// DigiCert and Sectigo issued only before the conflict and subsequently
// revoked every one; GlobalSign's issuance is mostly post-conflict (the
// RU-CENTER advice to buy GlobalSign certificates).
func (w *World) buildSanctionedCerts(rng *rand.Rand) error {
	sanc := w.Sanctions.AllDomains()
	// Sanctioned issuance was calibrated against a 1:10 model of the
	// paper's absolute counts; rescale to this world's scale with a floor
	// that keeps every CA's revocation rate well-defined.
	sancScale := float64(w.cfg.Scale) / 10.0
	if sancScale < 1 {
		sancScale = 1
	}
	for _, plan := range sanctionedPlan {
		ca := w.CAs[plan.org]
		issued := int(float64(plan.issued)/sancScale + 0.5)
		if issued < 4 {
			issued = 4
		}
		revoked := issued
		if plan.revPct < 100 {
			revoked = int(float64(issued)*plan.revPct/100 + 0.5)
			// The paper's §4.2 observation — every CA's sanctioned
			// revocation rate exceeds its overall rate — must survive
			// small scaled samples.
			if revoked < 1 {
				revoked = 1
			}
		}
		for i := 0; i < issued; i++ {
			var day simtime.Day
			if float64(i) < float64(issued)*plan.preShare {
				day = simtime.CTWindowStart.Add(rng.Intn(simtime.ConflictStart.Sub(simtime.CTWindowStart)))
			} else {
				day = simtime.ConflictStart.Add(rng.Intn(simtime.CTWindowEnd.Sub(simtime.ConflictStart) + 1))
			}
			domain := sanc[rng.Intn(len(sanc))]
			cert, err := ca.Issue(day, domain, "www."+domain)
			if err != nil {
				return err
			}
			if err := w.Certs.Add(cert); err != nil {
				return err
			}
			if cert.Logged {
				if _, err := w.CTLog.Append(cert, day); err != nil {
					return err
				}
			}
			// The first `revoked` certificates get revoked: full
			// revocation for DigiCert/Sectigo, sampled for the rest.
			if i < revoked {
				revDay := maxDay(day+1, simtime.Date(2022, 2, 25)).Add(rng.Intn(14))
				if revDay > simtime.CTWindowEnd {
					revDay = simtime.CTWindowEnd
				}
				w.Certs.CRL(cert.IssuerOrg).Revoke(cert.Serial, revDay, pki.ReasonCessation)
			}
		}
	}
	return nil
}

// buildRussianCA issues the Russian Trusted Root CA's 170 certificates
// (§4.3): 36 secure sanctioned domains, 94 other .ru names, 2 .рф names,
// and 38 Russian-affiliated names under other TLDs. None are CT-logged;
// they become visible only through the scanner.
func (w *World) buildRussianCA(rng *rand.Rand) error {
	ca := w.CAs[pki.RussianTrustedRootCA]
	sanc := w.Sanctions.AllDomains()
	issueDay := func() simtime.Day {
		return RussianCAStartDay.Add(rng.Intn(21)) // "over a period of a few weeks"
	}
	var targets []string
	for i := 0; i < PaperNumbers.RussianCASanctionedCerts; i++ {
		targets = append(targets, sanc[i%len(sanc)])
	}
	ruCount := PaperNumbers.RussianCARuDomains - PaperNumbers.RussianCASanctionedCerts
	seen := map[string]bool{}
	// Bounded search: tiny worlds (extreme Scale) may not have 94
	// distinct active .ru names; the other-TLD fill below tops up to 170.
	for attempts := 0; len(seen) < ruCount && attempts < 200*ruCount; attempts++ {
		d, ok := w.randomActiveDomain(rng, simtime.StudyEnd)
		if !ok {
			break
		}
		if seen[d.Name] || w.Sanctions.ContainsEver(d.Name) || !isRu(d.Name) {
			continue
		}
		seen[d.Name] = true
		targets = append(targets, d.Name)
	}
	for i := 0; i < PaperNumbers.RussianCARFDomains; i++ {
		targets = append(targets, fmt.Sprintf("xn--%02d-6kc.xn--p1ai.", i))
	}
	for len(targets) < PaperNumbers.RussianCACerts {
		targets = append(targets, fmt.Sprintf("russian-affiliated%03d.com.", len(targets)))
	}
	for _, name := range targets {
		cert, err := ca.Issue(issueDay(), name)
		if err != nil {
			return err
		}
		if err := w.Certs.Add(cert); err != nil {
			return err
		}
		// Every Russian-CA certificate is actively served, so scans see it.
		addr, err := w.Internet.NextAddr(w.providers["rucenter"].ASN)
		if err != nil {
			return err
		}
		c := cert
		w.Scanner.Register(addr, func(day simtime.Day) []*pki.Certificate {
			if day >= c.NotBefore && day <= c.NotAfter {
				return []*pki.Certificate{c}
			}
			return nil
		})
	}
	return nil
}

func isRu(name string) bool {
	return len(name) > 3 && name[len(name)-3:] == "ru."
}

// buildScanEndpoints registers a sample of ordinary TLS endpoints so the
// scan archive contains the >800k-certificate backdrop the paper contrasts
// the Russian CA's 170 certificates against (scaled).
func (w *World) buildScanEndpoints(rng *rand.Rand) {
	// Serve a sample of recent Let's Encrypt certificates.
	leCerts := w.Certs.ByIssuer(pki.LetsEncrypt)
	sample := 800
	if sample > len(leCerts) {
		sample = len(leCerts)
	}
	for i := 0; i < sample; i++ {
		cert := leCerts[rng.Intn(len(leCerts))]
		addr, err := w.Internet.NextAddr(w.providers["rupool1"].ASN)
		if err != nil {
			return
		}
		c := cert
		w.Scanner.Register(addr, func(day simtime.Day) []*pki.Certificate {
			if day >= c.NotBefore && day <= c.NotAfter {
				return []*pki.Certificate{c}
			}
			return nil
		})
	}
}
