package world

import (
	"net/netip"
	"sync"

	"whereru/internal/dns"
)

// Authoritative handlers answer the same question with the same record
// set over and over — every domain on a given DNS profile shares one NS
// host set, every sweep asks for every domain's delegation — so the
// handlers memoize their response sections instead of rebuilding RR
// slices per query. All cached sets are pure functions of immutable
// world state (profiles, providers, per-epoch domain configs), never of
// the simulation clock, and responses are serialized to the wire before
// any client sees them, so sharing one slice across responses is
// invisible to measurements. Cached slices are write-once: handlers
// assign them to empty response sections and never append afterwards.

// nsSet is a DNS profile's name-server host set with its glue.
type nsSet struct {
	hosts []string
	addrs []netip.Addr
}

// refSet is a memoized referral: authority (NS) and additional (glue).
type refSet struct {
	auth []dns.RR
	addl []dns.RR
}

// rrKey keys lazily-built per-domain caches by owner name and profile.
type rrKey struct {
	name    string
	profile string
}

// rrCache holds the memoized response sections. Eager maps are built
// once in buildServing and read without locks; lazy maps fill on first
// use under rrMu (domain×profile pairs are discovered as queries come).
type rrCache struct {
	nsSets      map[string]nsSet  // dnsProfile -> host set (eager)
	rootRef     map[string]refSet // tld label -> root referral (eager)
	providerRef map[string]refSet // provider zone -> delegation (eager)
	rootNXSOA   []dns.RR          // root NXDOMAIN authority (eager)

	mu       sync.RWMutex
	domRef   map[rrKey]refSet   // {domain, dnsProfile} -> TLD delegation
	nsAnswer map[rrKey][]dns.RR // {domain, dnsProfile} -> NS answers
	aAnswer  map[rrKey][]dns.RR // {domain, hostProfile} -> apex A answers
	mxAnswer map[rrKey][]dns.RR // {domain, mailHost} -> MX answer
}

// buildRRCache precomputes the profile- and provider-keyed sets; called
// from buildServing after providers and TLD addresses are final.
func (w *World) buildRRCache() {
	c := &rrCache{
		nsSets:      make(map[string]nsSet, len(dnsProfiles)),
		rootRef:     make(map[string]refSet, len(w.tldAddrs)),
		providerRef: make(map[string]refSet, len(w.providerZones)),
		rootNXSOA:   []dns.RR{dns.NewSOA(".", "a.root-servers.net.", "nstld.verisign-grs.com.", 1)},
		domRef:      make(map[rrKey]refSet),
		nsAnswer:    make(map[rrKey][]dns.RR),
		aAnswer:     make(map[rrKey][]dns.RR),
		mxAnswer:    make(map[rrKey][]dns.RR),
	}
	for profile := range dnsProfiles {
		hosts, addrs := w.nsSetFor(profile)
		c.nsSets[profile] = nsSet{hosts: hosts, addrs: addrs}
	}
	for tld, addrs := range w.tldAddrs {
		zone := tld + "."
		var set refSet
		for i, a := range addrs {
			host := string(rune('a'+i)) + ".tld-servers." + zone
			set.auth = append(set.auth, dns.NewNS(zone, 172800, host))
			set.addl = append(set.addl, dns.NewA(host, 172800, a))
		}
		c.rootRef[tld] = set
	}
	for zone, p := range w.providerZones {
		c.providerRef[zone] = buildProviderReferral(zone, p)
	}
	w.rr = c
}

// buildProviderReferral materializes appendProviderReferral's record set.
func buildProviderReferral(zone string, p *Provider) refSet {
	var set refSet
	for i, h := range p.NSNames {
		if !dns.IsSubdomain(h, zone) {
			continue
		}
		set.auth = append(set.auth, dns.NewNS(zone, 172800, h))
		set.addl = append(set.addl, dns.NewA(h, 172800, p.NSAddrs[i]))
	}
	if len(set.auth) == 0 {
		// NS names under someone else's zone (e.g. googlecloud2 sharing
		// googledomains.com): delegate with all of the provider's names.
		for i, h := range p.NSNames {
			set.auth = append(set.auth, dns.NewNS(zone, 172800, h))
			set.addl = append(set.addl, dns.NewA(h, 172800, p.NSAddrs[i]))
		}
	}
	return set
}

// nsSetCached returns the memoized host set for a DNS profile.
func (w *World) nsSetCached(profile string) nsSet {
	if s, ok := w.rr.nsSets[profile]; ok {
		return s
	}
	hosts, addrs := w.nsSetFor(profile) // unknown profile: build uncached
	return nsSet{hosts: hosts, addrs: addrs}
}

// domainReferral returns the memoized TLD delegation for a registered
// domain on a DNS profile: NS records plus glue for in-bailiwick hosts.
func (w *World) domainReferral(domain, profile, zone string) refSet {
	key := rrKey{domain, profile}
	c := w.rr
	c.mu.RLock()
	set, ok := c.domRef[key]
	c.mu.RUnlock()
	if ok {
		return set
	}
	ns := w.nsSetCached(profile)
	for i, h := range ns.hosts {
		set.auth = append(set.auth, dns.NewNS(domain, 3600, h))
		if dns.IsSubdomain(h, zone) && i < len(ns.addrs) {
			set.addl = append(set.addl, dns.NewA(h, 3600, ns.addrs[i]))
		}
	}
	c.mu.Lock()
	c.domRef[key] = set
	c.mu.Unlock()
	return set
}

// nsAnswers returns the memoized authoritative NS answer set for a
// customer domain on a DNS profile.
func (w *World) nsAnswers(domain, profile string) []dns.RR {
	key := rrKey{domain, profile}
	c := w.rr
	c.mu.RLock()
	rrs, ok := c.nsAnswer[key]
	c.mu.RUnlock()
	if ok {
		return rrs
	}
	ns := w.nsSetCached(profile)
	rrs = make([]dns.RR, 0, len(ns.hosts))
	for _, h := range ns.hosts {
		rrs = append(rrs, dns.NewNS(domain, 3600, h))
	}
	c.mu.Lock()
	c.nsAnswer[key] = rrs
	c.mu.Unlock()
	return rrs
}

// aAnswers returns the memoized apex A answer set for a customer domain
// on a hosting profile.
func (w *World) aAnswers(domain, hostProfile string) []dns.RR {
	key := rrKey{domain, hostProfile}
	c := w.rr
	c.mu.RLock()
	rrs, ok := c.aAnswer[key]
	c.mu.RUnlock()
	if ok {
		return rrs
	}
	addrs := w.hostAddrsFor(domain, hostProfile)
	rrs = make([]dns.RR, 0, len(addrs))
	for _, a := range addrs {
		rrs = append(rrs, dns.NewA(domain, 300, a))
	}
	c.mu.Lock()
	c.aAnswer[key] = rrs
	c.mu.Unlock()
	return rrs
}

// mxAnswers returns the memoized MX answer for a customer domain and
// mail host.
func (w *World) mxAnswers(domain, mailHost string) []dns.RR {
	key := rrKey{domain, mailHost}
	c := w.rr
	c.mu.RLock()
	rrs, ok := c.mxAnswer[key]
	c.mu.RUnlock()
	if ok {
		return rrs
	}
	rrs = []dns.RR{dns.NewMX(domain, 3600, 10, mailHost)}
	c.mu.Lock()
	c.mxAnswer[key] = rrs
	c.mu.Unlock()
	return rrs
}
