// Package world generates the synthetic .ru/.рф ecosystem the measurement
// pipeline runs against: providers with AS numbers and address space,
// millions of (scaled) domains with piecewise-constant DNS/hosting
// configurations, the 2022 event timeline (invasion, Netnod cutoff,
// provider exits, sanctions), and the certificate corpus (CAs, CT log,
// revocations, the Russian Trusted Root CA, and TLS scan endpoints).
//
// Everything is deterministic given Config.Seed, and all headline numbers
// from the paper are encoded in this file so the generator, the analysis
// tests and EXPERIMENTS.md share one source of truth.
package world

import "whereru/internal/simtime"

// Calibration holds the paper's published numbers. Values are percentages
// of domains unless stated otherwise; absolute counts are at paper scale
// (divide by Config.Scale for the simulated world).
type Calibration struct {
	// §2: population.
	UniqueDomainsEver  float64 // 11.7M unique names over the window
	ActiveDomainsStart float64 // "just under 5M" on 2017-06-18
	ActiveDomainsEnd   float64 // ≈5.3M by the end of the window
	SanctionedDomains  int     // 107
	HostingASNs        int     // 13.3k (context only)
	DNSASNs            int     // 9.5k (context only)

	// §3.1 hosting composition on 2017-06-18.
	HostFullRUStart float64 // 71.0
	HostPartRUStart float64 // 0.19
	HostNonRUStart  float64 // 28.81

	// §3.1 NS-infrastructure composition.
	NSFullRUStart float64 // 67.0 on 2017-06-18
	NSFullRUEnd   float64 // 73.9 on 2022-05-25

	// §3.1 TLD dependency (Figure 2): net changes comparing extrema.
	TLDFullNetChange float64 // -6.3
	TLDPartNetChange float64 // +7.9

	// Figure 3: share of domains with ≥1 NS name under the TLD, 2022-05-25
	// (start values derive from the published net changes).
	TLDShareRuEnd  float64 // 78.3
	TLDShareComEnd float64 // 24.7 (up 7.5 over five years)
	TLDShareProEnd float64 // 12.4 (up from 8.8)
	TLDShareOrgEnd float64 // 9.2 (up from 8.2)
	TLDShareNetEnd float64 // 7.3 (down from 9.1)

	// Figure 4: hosting shares.
	RUBigFourShareStart float64 // 38 (REG.RU+RU-CENTER+Timeweb+Beget)
	RUBigFourShareEnd   float64 // 39
	CloudflareShare     float64 // ≈7 throughout

	// §3.2: Netnod stopped serving 76k domains on 2022-03-03.
	NetnodDomains int
	NetnodCutoff  simtime.Day

	// §3.3 sanctioned domains.
	SanctionedFullRUHostedPreConflict int     // 101 of 107
	SanctionedNSPartFeb24             float64 // 34.0
	SanctionedNSNonFeb24              float64 // 5.2
	SanctionedNSFullMar4              float64 // 93.8

	// §3.4 provider case studies (counts at paper scale).
	AmazonSetMar8         int     // ≈58k (derived from Fig 4 ≈1.1% share)
	AmazonRemainPct       float64 // 43
	AmazonNewlyRegistered int     // 574
	AmazonRelocatedIn     int     // 988
	SedoSetMar8           int     // 164k
	SedoRemainPct         float64 // 1.6
	SedoRelocatedIn       int     // 311
	CloudflareSetMar7     int     // 315k
	CloudflareRemainPct   float64 // 94
	CloudflareNewIn       int     // 34k
	GoogleSetMar10        int     // 17.7k
	GoogleRelocatePct     float64 // 57.1
	GoogleIntraPct        float64 // 75.2 (of relocated, to AS396982)
	GoogleExternalIn      int     // 187
	GoogleNewlyRegistered int     // 184

	// §4 certificate issuance (Table 1), thousands of certs per period at
	// paper scale, and per-day averages.
	CertsPerDayPreConflict   float64 // ≈130k
	CertsPerDayPreSanctions  float64 // ≈115k
	CertsPerDayPostSanctions float64 // ≈115k
	LESharePreConflict       float64 // 91.58
	LESharePreSanctions      float64 // 98.06
	LESharePostSanctions     float64 // 99.23

	// §4.2 revocation rates (Table 2), percent of issued.
	RevRateLE         float64 // 0.06
	RevRateDigiCert   float64 // 0.80
	RevRateGlobalSign float64 // 1.68
	RevRateSectigo    float64 // 5.15
	RevRateZeroSSL    float64 // 0.30
	// sanctioned-domain revocation rates
	RevRateLESanc         float64 // 1.19
	RevRateDigiCertSanc   float64 // 100
	RevRateGlobalSignSanc float64 // 2.54
	RevRateSectigoSanc    float64 // 100
	RevRateZeroSSLSanc    float64 // 2.43

	// §4.2 sanctioned-domain issuance counts (absolute, not scaled).
	SancIssuedLE         int // 16k → modeled at 1:10 (1600) to bound runtime
	SancIssuedDigiCert   int // 308
	SancIssuedGlobalSign int // 905
	SancIssuedSectigo    int // 164
	SancIssuedZeroSSL    int // 82

	// §4.3 Russian Trusted Root CA (absolute counts).
	RussianCACerts           int // 170 unique certs in scans
	RussianCARuDomains       int // 130 secure .ru
	RussianCARFDomains       int // 2 secure .рф
	RussianCASanctionedCerts int // 36 secure sanctioned domains
}

// PaperNumbers is the single source of truth for calibration targets.
var PaperNumbers = Calibration{
	UniqueDomainsEver:  11_700_000,
	ActiveDomainsStart: 4_950_000,
	ActiveDomainsEnd:   5_300_000,
	SanctionedDomains:  107,
	HostingASNs:        13_300,
	DNSASNs:            9_500,

	HostFullRUStart: 71.0,
	HostPartRUStart: 0.19,
	HostNonRUStart:  28.81,

	NSFullRUStart: 67.0,
	NSFullRUEnd:   73.9,

	TLDFullNetChange: -6.3,
	TLDPartNetChange: 7.9,

	TLDShareRuEnd:  78.3,
	TLDShareComEnd: 24.7,
	TLDShareProEnd: 12.4,
	TLDShareOrgEnd: 9.2,
	TLDShareNetEnd: 7.3,

	RUBigFourShareStart: 38,
	RUBigFourShareEnd:   39,
	CloudflareShare:     7,

	NetnodDomains: 76_000,
	NetnodCutoff:  simtime.Date(2022, 3, 3),

	SanctionedFullRUHostedPreConflict: 101,
	SanctionedNSPartFeb24:             34.0,
	SanctionedNSNonFeb24:              5.2,
	SanctionedNSFullMar4:              93.8,

	AmazonSetMar8:         58_000,
	AmazonRemainPct:       43,
	AmazonNewlyRegistered: 574,
	AmazonRelocatedIn:     988,
	SedoSetMar8:           164_000,
	SedoRemainPct:         1.6,
	SedoRelocatedIn:       311,
	CloudflareSetMar7:     315_000,
	CloudflareRemainPct:   94,
	CloudflareNewIn:       34_000,
	GoogleSetMar10:        17_700,
	GoogleRelocatePct:     57.1,
	GoogleIntraPct:        75.2,
	GoogleExternalIn:      187,
	GoogleNewlyRegistered: 184,

	CertsPerDayPreConflict:   130_000,
	CertsPerDayPreSanctions:  115_000,
	CertsPerDayPostSanctions: 115_000,
	LESharePreConflict:       91.58,
	LESharePreSanctions:      98.06,
	LESharePostSanctions:     99.23,

	RevRateLE:         0.06,
	RevRateDigiCert:   0.80,
	RevRateGlobalSign: 1.68,
	RevRateSectigo:    5.15,
	RevRateZeroSSL:    0.30,

	RevRateLESanc:         1.19,
	RevRateDigiCertSanc:   100,
	RevRateGlobalSignSanc: 2.54,
	RevRateSectigoSanc:    100,
	RevRateZeroSSLSanc:    2.43,

	SancIssuedLE:         1_600,
	SancIssuedDigiCert:   308,
	SancIssuedGlobalSign: 905,
	SancIssuedSectigo:    164,
	SancIssuedZeroSSL:    82,

	RussianCACerts:           170,
	RussianCARuDomains:       130,
	RussianCARFDomains:       2,
	RussianCASanctionedCerts: 36,
}

// Event dates from §3.4 and §4.
var (
	NetnodCutoffDay   = simtime.Date(2022, 3, 3)
	SanctionedNSMoved = simtime.Date(2022, 3, 4)
	CloudflareStmtDay = simtime.Date(2022, 3, 7)
	AmazonStmtDay     = simtime.Date(2022, 3, 8)
	SedoStmtDay       = simtime.Date(2022, 3, 9)
	GoogleStmtDay     = simtime.Date(2022, 3, 10)
	GoogleIntraDay    = simtime.Date(2022, 3, 16) // AS15169 → AS396982
	HetznerExitDay    = simtime.Date(2022, 3, 28)
	LinodeExitDay     = simtime.Date(2022, 3, 30)
	RussianCAStartDay = simtime.Date(2022, 3, 10)
)
