package world

import (
	"fmt"

	"whereru/internal/dns"
	"whereru/internal/dns/zone"
	"whereru/internal/simtime"
)

// ExportZone materializes a TLD's zone file for one day — the "daily zone
// file snapshot" artifact the paper's pipeline is seeded from (§2). The
// zone carries the apex SOA/NS, one NS record per delegated registered
// domain per name server, and glue A records for in-bailiwick servers.
// The output round-trips through the zone-file parser, so it can be
// written to disk and consumed by any standard tooling.
func (w *World) ExportZone(tld string, day simtime.Day) (*zone.Zone, error) {
	origin := dns.Canonical(tld)
	label := dns.TLD(origin)
	if _, served := w.tldAddrs[label]; !served {
		return nil, fmt.Errorf("world: TLD %q not served", tld)
	}
	var reg interface {
		ZoneSnapshot(simtime.Day) []string
	}
	found := false
	for _, r := range w.Registries.Registries() {
		if r.TLD == origin {
			reg = r
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("world: %q is not a registry TLD", tld)
	}

	z := zone.New(origin)
	// Replace the synthesized SOA with one whose serial encodes the
	// snapshot date, as registry zone files do.
	z.RemoveRRset(origin, dns.TypeSOA)
	y, m, d := day.YMD()
	serial := uint32(y*1000000 + m*10000 + d*100 + 1)
	if err := z.Add(dns.NewSOA(origin, "a.tld-servers."+origin, "hostmaster."+origin, serial)); err != nil {
		return nil, err
	}
	for i := range w.tldAddrs[label] {
		host := string(rune('a'+i)) + ".tld-servers." + origin
		if err := z.Add(dns.NewNS(origin, 172800, host)); err != nil {
			return nil, err
		}
		if err := z.Add(dns.NewA(host, 172800, w.tldAddrs[label][i])); err != nil {
			return nil, err
		}
	}

	glueDone := map[string]bool{}
	for _, name := range reg.ZoneSnapshot(day) {
		rec, ok := w.domains[name]
		if !ok {
			continue
		}
		cfg, ok := rec.ConfigAt(day)
		if !ok {
			continue
		}
		hosts, addrs := w.nsSetFor(cfg.DNS)
		for i, h := range hosts {
			if err := z.Add(dns.NewNS(name, 3600, h)); err != nil {
				return nil, err
			}
			if dns.IsSubdomain(h, origin) && !glueDone[h] && i < len(addrs) {
				glueDone[h] = true
				if err := z.Add(dns.NewA(h, 3600, addrs[i])); err != nil {
					return nil, err
				}
			}
		}
	}
	return z, nil
}

// SeedsFromZone extracts the registered-domain inventory from a TLD zone
// snapshot: the owner names of delegation NS records (everything except
// the apex). This is how a zone file becomes a measurement seed list.
func SeedsFromZone(z *zone.Zone) []string {
	var out []string
	for _, name := range z.Names() {
		if name == z.Origin {
			continue
		}
		if len(z.Lookup(name, dns.TypeNS)) > 0 {
			out = append(out, name)
		}
	}
	return out
}
