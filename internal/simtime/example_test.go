package simtime_test

import (
	"fmt"

	"whereru/internal/simtime"
)

func ExampleDate() {
	d := simtime.Date(2022, 2, 24)
	fmt.Println(d)
	fmt.Println(d.Add(30))
	fmt.Println(simtime.PeriodOf(d))
	// Output:
	// 2022-02-24
	// 2022-03-26
	// pre-sanctions
}

func ExampleRange() {
	from := simtime.MustParse("2022-03-01")
	simtime.Range(from, from.Add(6), 3, func(d simtime.Day) bool {
		fmt.Println(d)
		return true
	})
	// Output:
	// 2022-03-01
	// 2022-03-04
	// 2022-03-07
}

func ExamplePeriodOf() {
	for _, s := range []string{"2022-01-15", "2022-03-01", "2022-04-15"} {
		d := simtime.MustParse(s)
		fmt.Printf("%s: %s\n", d, simtime.PeriodOf(d))
	}
	// Output:
	// 2022-01-15: pre-conflict
	// 2022-03-01: pre-sanctions
	// 2022-04-15: post-sanctions
}
