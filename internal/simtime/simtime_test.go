package simtime

import (
	"encoding/json"
	"testing"
	"testing/quick"
	"time"
)

func TestDateRoundTrip(t *testing.T) {
	cases := []struct {
		y, m, d int
		want    string
	}{
		{1970, 1, 1, "1970-01-01"},
		{2017, 6, 18, "2017-06-18"},
		{2022, 2, 24, "2022-02-24"},
		{2022, 3, 26, "2022-03-26"},
		{2022, 5, 25, "2022-05-25"},
		{2000, 2, 29, "2000-02-29"},
		{1999, 12, 31, "1999-12-31"},
		{2100, 1, 1, "2100-01-01"},
	}
	for _, c := range cases {
		d := Date(c.y, c.m, c.d)
		if got := d.String(); got != c.want {
			t.Errorf("Date(%d,%d,%d).String() = %q, want %q", c.y, c.m, c.d, got, c.want)
		}
		y2, m2, d2 := d.YMD()
		if y2 != c.y || m2 != c.m || d2 != c.d {
			t.Errorf("YMD round trip failed for %s: got %d-%d-%d", c.want, y2, m2, d2)
		}
	}
}

func TestEpoch(t *testing.T) {
	if Date(1970, 1, 1) != 0 {
		t.Fatalf("epoch: Date(1970,1,1) = %d, want 0", Date(1970, 1, 1))
	}
	if Date(1970, 1, 2) != 1 {
		t.Fatalf("Date(1970,1,2) = %d, want 1", Date(1970, 1, 2))
	}
	if Date(1969, 12, 31) != -1 {
		t.Fatalf("Date(1969,12,31) = %d, want -1", Date(1969, 12, 31))
	}
}

func TestAgainstTimePackage(t *testing.T) {
	// Cross-check against the standard library over a broad range.
	start := time.Date(1995, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 15000; i += 17 {
		tt := start.AddDate(0, 0, i)
		want := Day(tt.Unix() / 86400)
		got := Date(tt.Year(), int(tt.Month()), tt.Day())
		if got != want {
			t.Fatalf("Date(%v) = %d, want %d", tt, got, want)
		}
	}
}

func TestStudyWindowLength(t *testing.T) {
	// The paper states the study spans 1803 days.
	if got := StudyEnd.Sub(StudyStart) + 1; got != 1803 {
		t.Errorf("study window = %d days, want 1803", got)
	}
}

func TestPeriodOf(t *testing.T) {
	cases := []struct {
		date string
		want Period
	}{
		{"2017-06-18", PreConflict},
		{"2022-02-23", PreConflict},
		{"2022-02-24", PreSanctions},
		{"2022-03-25", PreSanctions},
		{"2022-03-26", PostSanctions},
		{"2022-05-25", PostSanctions},
	}
	for _, c := range cases {
		if got := PeriodOf(MustParse(c.date)); got != c.want {
			t.Errorf("PeriodOf(%s) = %v, want %v", c.date, got, c.want)
		}
	}
}

func TestPeriodString(t *testing.T) {
	if PreConflict.String() != "pre-conflict" ||
		PreSanctions.String() != "pre-sanctions" ||
		PostSanctions.String() != "post-sanctions" {
		t.Error("period names do not match the paper's terminology")
	}
	if Period(99).String() != "Period(99)" {
		t.Error("unknown period should render numerically")
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "2022", "2022-13-01", "2022-00-10", "2022-01-32", "a-b-c", "2022/01/02"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseRoundTripProperty(t *testing.T) {
	f := func(n int16) bool {
		d := Day(int32(n)) + Date(2000, 1, 1)
		parsed, err := Parse(d.String())
		return err == nil && parsed == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMonthHelpers(t *testing.T) {
	d := MustParse("2022-02-24")
	if d.FirstOfMonth().String() != "2022-02-01" {
		t.Errorf("FirstOfMonth = %s", d.FirstOfMonth())
	}
	if d.NextMonth().String() != "2022-03-01" {
		t.Errorf("NextMonth = %s", d.NextMonth())
	}
	dec := MustParse("2021-12-05")
	if dec.NextMonth().String() != "2022-01-01" {
		t.Errorf("NextMonth across year = %s", dec.NextMonth())
	}
	if d.Year() != 2022 || d.Month() != 2 || d.DayOfMonth() != 24 {
		t.Errorf("accessors wrong: %d %d %d", d.Year(), d.Month(), d.DayOfMonth())
	}
}

func TestAddSub(t *testing.T) {
	d := MustParse("2022-02-24")
	if d.Add(30).String() != "2022-03-26" {
		t.Errorf("Add(30) = %s, want 2022-03-26", d.Add(30))
	}
	if d.Add(-1).String() != "2022-02-23" {
		t.Errorf("Add(-1) = %s", d.Add(-1))
	}
	if MustParse("2022-03-26").Sub(d) != 30 {
		t.Error("Sub inverse of Add failed")
	}
}

func TestRange(t *testing.T) {
	var got []string
	Range(MustParse("2022-01-01"), MustParse("2022-01-07"), 3, func(d Day) bool {
		got = append(got, d.String())
		return true
	})
	want := []string{"2022-01-01", "2022-01-04", "2022-01-07"}
	if len(got) != len(want) {
		t.Fatalf("Range visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range visited %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	Range(0, 100, 1, func(Day) bool { count++; return count < 5 })
	if count != 5 {
		t.Errorf("early stop visited %d days, want 5", count)
	}
	// Non-positive step defaults to 1.
	count = 0
	Range(0, 3, 0, func(Day) bool { count++; return true })
	if count != 4 {
		t.Errorf("zero step visited %d days, want 4", count)
	}
}

func TestWindow(t *testing.T) {
	w := Window{From: Date(2022, 3, 3), To: Date(2022, 3, 5)}
	if w.Len() != 3 {
		t.Errorf("Len = %d, want 3", w.Len())
	}
	for d := w.From - 1; d <= w.To+1; d++ {
		want := d >= w.From && d <= w.To
		if w.Contains(d) != want {
			t.Errorf("Contains(%s) = %v, want %v", d, !want, want)
		}
	}
	if got := w.String(); got != "2022-03-03..2022-03-05" {
		t.Errorf("String = %q", got)
	}
	one := OneDay(Date(2022, 3, 3))
	if one.Len() != 1 || !one.Contains(Date(2022, 3, 3)) || one.Contains(Date(2022, 3, 4)) {
		t.Errorf("OneDay = %+v", one)
	}
	// An inverted window contains nothing.
	inv := Window{From: 10, To: 5}
	if inv.Contains(7) || inv.Len() != 0 {
		t.Errorf("inverted window: Contains=%v Len=%d", inv.Contains(7), inv.Len())
	}
}

func TestDayTextMarshalRoundTrip(t *testing.T) {
	var buf []byte
	var err error
	day := Date(2022, 2, 24)
	if buf, err = day.MarshalText(); err != nil || string(buf) != "2022-02-24" {
		t.Fatalf("MarshalText = %q, %v", buf, err)
	}
	var back Day
	if err := back.UnmarshalText(buf); err != nil || back != day {
		t.Fatalf("UnmarshalText(%q) = %v, %v", buf, back, err)
	}
	if err := back.UnmarshalText([]byte("not-a-date")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDayJSONEncoding(t *testing.T) {
	// Day must encode as an ISO date both as a JSON value and as a JSON
	// map key (the serve layer relies on both).
	type wrapper struct {
		Day   Day         `json:"day"`
		ByDay map[Day]int `json:"by_day"`
	}
	b, err := json.Marshal(wrapper{Day: Date(2022, 5, 25), ByDay: map[Day]int{Date(2022, 1, 2): 7}})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"day":"2022-05-25","by_day":{"2022-01-02":7}}`
	if string(b) != want {
		t.Fatalf("json = %s, want %s", b, want)
	}
	var w wrapper
	if err := json.Unmarshal(b, &w); err != nil {
		t.Fatal(err)
	}
	if w.Day != Date(2022, 5, 25) || w.ByDay[Date(2022, 1, 2)] != 7 {
		t.Fatalf("round trip = %+v", w)
	}
}
