// Package simtime provides the simulation calendar used throughout the
// reproduction. All longitudinal data is keyed by Day, a compact count of
// civil days since the Unix epoch (1970-01-01). Using an integer day rather
// than time.Time keeps measurement records small, makes arithmetic on
// multi-year daily series trivial, and removes time zones from the model
// entirely (the paper's data is daily-granularity zone snapshots).
package simtime

import (
	"fmt"
	"strconv"
	"strings"
)

// Day is a civil date, counted in days since 1970-01-01 (which is Day 0).
// Days before the epoch are negative. Day supports ordinary integer
// comparison: d1 < d2 means d1 is an earlier date.
type Day int32

// Date returns the Day for the given civil year, month and day.
// The algorithm is the classic days-from-civil conversion and is exact for
// all dates in the proleptic Gregorian calendar.
func Date(year, month, day int) Day {
	y := int64(year)
	m := int64(month)
	d := int64(day)
	if m <= 2 {
		y--
	}
	var era int64
	if y >= 0 {
		era = y / 400
	} else {
		era = (y - 399) / 400
	}
	yoe := y - era*400 // [0, 399]
	var mp int64
	if m > 2 {
		mp = m - 3
	} else {
		mp = m + 9
	}
	doy := (153*mp+2)/5 + d - 1            // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return Day(era*146097 + doe - 719468)  // shift epoch to 1970-01-01
}

// YMD returns the civil year, month and day of d.
func (d Day) YMD() (year, month, day int) {
	z := int64(d) + 719468
	var era int64
	if z >= 0 {
		era = z / 146097
	} else {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100) // [0, 365]
	mp := (5*doy + 2) / 153                  // [0, 11]
	dd := doy - (153*mp+2)/5 + 1             // [1, 31]
	var m int64
	if mp < 10 {
		m = mp + 3
	} else {
		m = mp - 9
	}
	if m <= 2 {
		y++
	}
	return int(y), int(m), int(dd)
}

// String renders d in ISO-8601 form, e.g. "2022-02-24".
func (d Day) String() string {
	y, m, dd := d.YMD()
	return fmt.Sprintf("%04d-%02d-%02d", y, m, dd)
}

// Parse parses an ISO-8601 date ("2006-01-02") into a Day.
func Parse(s string) (Day, error) {
	parts := strings.Split(s, "-")
	if len(parts) != 3 {
		return 0, fmt.Errorf("simtime: malformed date %q", s)
	}
	y, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	d, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return 0, fmt.Errorf("simtime: malformed date %q", s)
	}
	if m < 1 || m > 12 || d < 1 || d > 31 {
		return 0, fmt.Errorf("simtime: date out of range %q", s)
	}
	return Date(y, m, d), nil
}

// MarshalText renders d in ISO-8601 form. Implementing
// encoding.TextMarshaler (rather than json.Marshaler) makes Day encode
// as "2022-02-24" both as a JSON value and as a JSON map key, so every
// serialization of day-keyed data is human-readable and sorts
// chronologically.
func (d Day) MarshalText() ([]byte, error) { return []byte(d.String()), nil }

// UnmarshalText parses an ISO-8601 date, the inverse of MarshalText.
func (d *Day) UnmarshalText(b []byte) error {
	parsed, err := Parse(string(b))
	if err != nil {
		return err
	}
	*d = parsed
	return nil
}

// MustParse is Parse for constants in tests and tables; it panics on error.
func MustParse(s string) Day {
	d, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return d
}

// Year returns the civil year of d.
func (d Day) Year() int { y, _, _ := d.YMD(); return y }

// Month returns the civil month (1-12) of d.
func (d Day) Month() int { _, m, _ := d.YMD(); return m }

// DayOfMonth returns the day-of-month (1-31) of d.
func (d Day) DayOfMonth() int { _, _, dd := d.YMD(); return dd }

// Add returns the date n days after d (n may be negative).
func (d Day) Add(n int) Day { return d + Day(n) }

// Sub returns the number of days from e to d (d - e).
func (d Day) Sub(e Day) int { return int(d - e) }

// FirstOfMonth returns the first day of d's month.
func (d Day) FirstOfMonth() Day {
	y, m, _ := d.YMD()
	return Date(y, m, 1)
}

// NextMonth returns the first day of the month after d's month.
func (d Day) NextMonth() Day {
	y, m, _ := d.YMD()
	m++
	if m > 12 {
		m = 1
		y++
	}
	return Date(y, m, 1)
}

// Study window and event dates from the paper (§2, §3).
var (
	// StudyStart is the first day of the OpenINTEL data window.
	StudyStart = Date(2017, 6, 18)
	// StudyEnd is the last day of the OpenINTEL data window. The window is
	// 1803 days long, matching the paper's "nearly five-year period".
	StudyEnd = Date(2022, 5, 25)
	// ConflictStart is the day of the Russian invasion of Ukraine.
	ConflictStart = Date(2022, 2, 24)
	// SanctionsInEffect is the start of the paper's "post-sanctions" period.
	SanctionsInEffect = Date(2022, 3, 26)
	// CTWindowStart and CTWindowEnd delimit the certificate-transparency
	// analysis window of §4.
	CTWindowStart = Date(2022, 1, 1)
	CTWindowEnd   = Date(2022, 5, 15)
	// MeasurementOutage is the dip on 2021-03-22 noted in the paper
	// (footnote 8): a collection outage, not a real infrastructure change.
	MeasurementOutage = Date(2021, 3, 22)
)

// Period is one of the paper's three analysis periods in 2022.
type Period int

const (
	// PreConflict is everything before 2022-02-24.
	PreConflict Period = iota
	// PreSanctions is 2022-02-24 through 2022-03-25 inclusive.
	PreSanctions
	// PostSanctions is 2022-03-26 onward.
	PostSanctions
)

// String returns the paper's name for the period.
func (p Period) String() string {
	switch p {
	case PreConflict:
		return "pre-conflict"
	case PreSanctions:
		return "pre-sanctions"
	case PostSanctions:
		return "post-sanctions"
	default:
		return fmt.Sprintf("Period(%d)", int(p))
	}
}

// PeriodOf classifies a date into the paper's three periods.
func PeriodOf(d Day) Period {
	switch {
	case d < ConflictStart:
		return PreConflict
	case d < SanctionsInEffect:
		return PreSanctions
	default:
		return PostSanctions
	}
}

// Window is an inclusive range of days [From, To]. It is the unit of
// scheduled interventions in the simulation: outage windows on the fault
// layer, analysis periods, and provider-event spans are all day windows.
type Window struct {
	From, To Day
}

// Contains reports whether d falls inside the window (inclusive).
func (w Window) Contains(d Day) bool { return w.From <= d && d <= w.To }

// Len returns the number of days in the window (0 if To < From).
func (w Window) Len() int {
	if w.To < w.From {
		return 0
	}
	return int(w.To-w.From) + 1
}

// String renders the window as "2022-03-03..2022-03-05".
func (w Window) String() string { return w.From.String() + ".." + w.To.String() }

// OneDay returns the window covering exactly d.
func OneDay(d Day) Window { return Window{From: d, To: d} }

// Range iterates days [from, to] inclusive with the given step in days,
// calling fn for each; it stops early if fn returns false.
func Range(from, to Day, step int, fn func(Day) bool) {
	if step <= 0 {
		step = 1
	}
	for d := from; d <= to; d += Day(step) {
		if !fn(d) {
			return
		}
	}
}
