// Package registry models TLD registries: the registration lifecycle of
// domain names and the daily zone snapshots that seed the measurement
// pipeline (the paper uses daily .ru/.рф zone files as the inventory of
// names to measure), plus a whois view exposing creation dates (the
// paper's Cisco Whois Domain API analog, used to separate newly registered
// domains from relocated ones in the §3.4 provider case studies).
package registry

import (
	"fmt"
	"sort"
	"sync"

	"whereru/internal/dns"
	"whereru/internal/simtime"
)

// Domain is one registered name and its lifecycle.
type Domain struct {
	// Name is canonical ("example.ru.").
	Name string
	// Created is the registration date.
	Created simtime.Day
	// Removed is the deletion date, or 0 while the registration is live.
	// (Day 0 is 1970-01-01, decades before any simulated registration.)
	Removed simtime.Day
	// Registrant identifies the holder (synthetic org handle).
	Registrant string
	// Registrar is the sponsoring registrar.
	Registrar string
}

// ActiveOn reports whether the registration exists on day.
func (d *Domain) ActiveOn(day simtime.Day) bool {
	return d.Created <= day && (d.Removed == 0 || day < d.Removed)
}

// Registry is one TLD's registration database.
type Registry struct {
	// TLD is the canonical zone ("ru." or "xn--p1ai.").
	TLD string

	mu      sync.RWMutex
	domains map[string]*Domain
}

// New creates an empty registry for a TLD.
func New(tld string) *Registry {
	return &Registry{TLD: dns.Canonical(tld), domains: make(map[string]*Domain)}
}

// Register creates a registration. Re-registering a deleted name is
// allowed (it resets the lifecycle, as redemption does in practice);
// registering a live name is an error.
func (r *Registry) Register(name string, day simtime.Day, registrant, registrar string) (*Domain, error) {
	name = dns.Canonical(name)
	if !dns.IsSubdomain(name, r.TLD) || name == r.TLD {
		return nil, fmt.Errorf("registry %s: %s out of zone", r.TLD, name)
	}
	if dns.CountLabels(name) != dns.CountLabels(r.TLD)+1 {
		return nil, fmt.Errorf("registry %s: %s is not a direct child", r.TLD, name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if d, ok := r.domains[name]; ok && (d.Removed == 0 || d.Removed > day) {
		return nil, fmt.Errorf("registry %s: %s already registered", r.TLD, name)
	}
	d := &Domain{Name: name, Created: day, Registrant: registrant, Registrar: registrar}
	r.domains[name] = d
	return d, nil
}

// Remove deletes a registration effective on day.
func (r *Registry) Remove(name string, day simtime.Day) error {
	name = dns.Canonical(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.domains[name]
	if !ok || d.Removed != 0 {
		return fmt.Errorf("registry %s: %s not registered", r.TLD, name)
	}
	d.Removed = day
	return nil
}

// Whois returns the registration record for name (a copy).
func (r *Registry) Whois(name string) (Domain, bool) {
	name = dns.Canonical(name)
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.domains[name]
	if !ok {
		return Domain{}, false
	}
	return *d, true
}

// IsActive reports whether name is registered on day.
func (r *Registry) IsActive(name string, day simtime.Day) bool {
	name = dns.Canonical(name)
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.domains[name]
	return ok && d.ActiveOn(day)
}

// Count returns the number of registrations active on day.
func (r *Registry) Count(day simtime.Day) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, d := range r.domains {
		if d.ActiveOn(day) {
			n++
		}
	}
	return n
}

// ZoneSnapshot returns the sorted names active on day — the daily zone
// file used to seed a measurement sweep.
func (r *Registry) ZoneSnapshot(day simtime.Day) []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.domains))
	for _, d := range r.domains {
		if d.ActiveOn(day) {
			out = append(out, d.Name)
		}
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// All returns every registration ever made, sorted by name.
func (r *Registry) All() []Domain {
	r.mu.RLock()
	out := make([]Domain, 0, len(r.domains))
	for _, d := range r.domains {
		out = append(out, *d)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Group bundles several registries (the paper measures .ru and .рф
// together) behind one inventory and whois interface.
type Group struct {
	registries []*Registry
}

// NewGroup bundles registries.
func NewGroup(regs ...*Registry) *Group { return &Group{registries: regs} }

// Registries returns the member registries.
func (g *Group) Registries() []*Registry { return g.registries }

// ForName returns the member registry whose TLD contains name.
func (g *Group) ForName(name string) (*Registry, bool) {
	name = dns.Canonical(name)
	for _, r := range g.registries {
		if dns.IsSubdomain(name, r.TLD) {
			return r, true
		}
	}
	return nil, false
}

// Whois looks the name up in the owning registry.
func (g *Group) Whois(name string) (Domain, bool) {
	r, ok := g.ForName(name)
	if !ok {
		return Domain{}, false
	}
	return r.Whois(name)
}

// ZoneSnapshot concatenates the members' snapshots (sorted within each
// TLD, TLDs in group order — matching how zone files arrive per TLD).
func (g *Group) ZoneSnapshot(day simtime.Day) []string {
	var out []string
	for _, r := range g.registries {
		out = append(out, r.ZoneSnapshot(day)...)
	}
	return out
}

// Count sums registrations active on day across members.
func (g *Group) Count(day simtime.Day) int {
	n := 0
	for _, r := range g.registries {
		n += r.Count(day)
	}
	return n
}
