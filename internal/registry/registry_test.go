package registry

import (
	"fmt"
	"testing"

	"whereru/internal/simtime"
)

func TestLifecycle(t *testing.T) {
	r := New("ru.")
	day := simtime.MustParse("2020-01-15")
	d, err := r.Register("example.ru", day, "ORG-1", "REG.RU")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "example.ru." || d.Created != day {
		t.Fatalf("registered record wrong: %+v", d)
	}
	if !r.IsActive("example.ru.", day) {
		t.Fatal("not active on creation day")
	}
	if r.IsActive("example.ru.", day-1) {
		t.Fatal("active before creation")
	}
	if _, err := r.Register("example.ru.", day.Add(5), "ORG-2", "X"); err == nil {
		t.Fatal("double registration accepted")
	}
	del := day.Add(100)
	if err := r.Remove("example.ru.", del); err != nil {
		t.Fatal(err)
	}
	if r.IsActive("example.ru.", del) {
		t.Fatal("active on removal day")
	}
	if !r.IsActive("example.ru.", del-1) {
		t.Fatal("not active the day before removal")
	}
	if err := r.Remove("example.ru.", del); err == nil {
		t.Fatal("double removal accepted")
	}
	// Re-registration after deletion is allowed.
	if _, err := r.Register("example.ru.", del.Add(30), "ORG-3", "Y"); err != nil {
		t.Fatalf("re-registration failed: %v", err)
	}
	w, ok := r.Whois("example.ru.")
	if !ok || w.Registrant != "ORG-3" {
		t.Fatalf("whois after re-registration: %+v", w)
	}
}

func TestRegisterValidation(t *testing.T) {
	r := New("ru.")
	if _, err := r.Register("example.com.", 0, "", ""); err == nil {
		t.Error("out-of-zone registration accepted")
	}
	if _, err := r.Register("ru.", 0, "", ""); err == nil {
		t.Error("apex registration accepted")
	}
	if _, err := r.Register("a.b.ru.", 0, "", ""); err == nil {
		t.Error("third-level registration accepted")
	}
}

func TestZoneSnapshotAndCount(t *testing.T) {
	r := New("ru.")
	base := simtime.MustParse("2021-06-01")
	for i := 0; i < 10; i++ {
		if _, err := r.Register(fmt.Sprintf("d%03d.ru.", i), base.Add(i), "", ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Remove("d003.ru.", base.Add(20)); err != nil {
		t.Fatal(err)
	}
	// On base+5: d0..d5 registered (6), none removed.
	if got := r.Count(base.Add(5)); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	snap := r.ZoneSnapshot(base.Add(25))
	if len(snap) != 9 {
		t.Fatalf("snapshot size = %d, want 9", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1] >= snap[i] {
			t.Fatal("snapshot not sorted")
		}
	}
	for _, n := range snap {
		if n == "d003.ru." {
			t.Fatal("removed domain in snapshot")
		}
	}
	if all := r.All(); len(all) != 10 {
		t.Fatalf("All = %d records, want 10", len(all))
	}
}

func TestGroup(t *testing.T) {
	ru := New("ru.")
	rf := New("xn--p1ai.")
	base := simtime.MustParse("2021-01-01")
	if _, err := ru.Register("a.ru.", base, "", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := rf.Register("xn--80a.xn--p1ai.", base, "", ""); err != nil {
		t.Fatal(err)
	}
	g := NewGroup(ru, rf)
	if got := g.Count(base); got != 2 {
		t.Fatalf("group Count = %d", got)
	}
	snap := g.ZoneSnapshot(base)
	if len(snap) != 2 {
		t.Fatalf("group snapshot = %v", snap)
	}
	if _, ok := g.Whois("a.ru."); !ok {
		t.Error("group whois .ru failed")
	}
	if _, ok := g.Whois("xn--80a.xn--p1ai."); !ok {
		t.Error("group whois .рф failed")
	}
	if _, ok := g.Whois("a.com."); ok {
		t.Error("group whois out-of-group name succeeded")
	}
	if reg, ok := g.ForName("b.ru."); !ok || reg != ru {
		t.Error("ForName failed")
	}
	if got := g.Registries(); len(got) != 2 {
		t.Error("Registries failed")
	}
}

func BenchmarkZoneSnapshot(b *testing.B) {
	r := New("ru.")
	for i := 0; i < 20000; i++ {
		if _, err := r.Register(fmt.Sprintf("bench%05d.ru.", i), 0, "", ""); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := r.ZoneSnapshot(10); len(got) != 20000 {
			b.Fatal("wrong size")
		}
	}
}
