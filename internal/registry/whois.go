package registry

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"

	"whereru/internal/dns"
)

// WhoisServer serves registration records over the RFC 3912 WHOIS
// protocol (TCP port 43 in the wild; an ephemeral port here): the client
// sends one query line, the server answers with key-value text and closes
// the connection. The paper confirms newly registered domains with
// Cisco's Whois Domain API; this is the equivalent service for the
// simulated registries.
type WhoisServer struct {
	// Source answers lookups; Group and Registry both satisfy it.
	Source interface {
		Whois(name string) (Domain, bool)
	}

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// Listen starts serving on addr ("127.0.0.1:0" for an ephemeral port).
func (s *WhoisServer) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("registry: whois server already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the listen address, valid after Listen.
func (s *WhoisServer) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server.
func (s *WhoisServer) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *WhoisServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	var connWG sync.WaitGroup
	defer connWG.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		connWG.Add(1)
		go func() {
			defer connWG.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

func (s *WhoisServer) serveConn(conn net.Conn) {
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil && line == "" {
		return
	}
	query := dns.Canonical(strings.TrimSpace(line))
	rec, ok := s.Source.Whois(query)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	if !ok {
		fmt.Fprintf(w, "%% No match for %s\r\n", query)
		return
	}
	fmt.Fprintf(w, "domain:     %s\r\n", strings.TrimSuffix(rec.Name, "."))
	fmt.Fprintf(w, "registrant: %s\r\n", rec.Registrant)
	fmt.Fprintf(w, "registrar:  %s\r\n", rec.Registrar)
	fmt.Fprintf(w, "created:    %s\r\n", rec.Created)
	if rec.Removed != 0 {
		fmt.Fprintf(w, "removed:    %s\r\n", rec.Removed)
		fmt.Fprintf(w, "state:      DELETED\r\n")
	} else {
		fmt.Fprintf(w, "state:      REGISTERED\r\n")
	}
}

// WhoisQuery performs a client-side RFC 3912 lookup against addr and
// returns the raw response text.
func WhoisQuery(addr, name string) (string, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "%s\r\n", name); err != nil {
		return "", err
	}
	var sb strings.Builder
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return sb.String(), nil
}
