package registry

import (
	"strings"
	"testing"

	"whereru/internal/simtime"
)

func startWhois(t *testing.T) (*WhoisServer, *Registry) {
	t.Helper()
	r := New("ru.")
	if _, err := r.Register("example.ru.", simtime.MustParse("2020-05-01"), "ORG-EX", "REG.RU"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("gone.ru.", simtime.MustParse("2019-01-01"), "ORG-GONE", "RU-CENTER"); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("gone.ru.", simtime.MustParse("2021-07-15")); err != nil {
		t.Fatal(err)
	}
	s := &WhoisServer{Source: r}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, r
}

func TestWhoisLookup(t *testing.T) {
	s, _ := startWhois(t)
	resp, err := WhoisQuery(s.Addr(), "example.ru")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"domain:     example.ru",
		"registrant: ORG-EX",
		"registrar:  REG.RU",
		"created:    2020-05-01",
		"state:      REGISTERED",
	} {
		if !strings.Contains(resp, want) {
			t.Errorf("response missing %q:\n%s", want, resp)
		}
	}
}

func TestWhoisDeletedDomain(t *testing.T) {
	s, _ := startWhois(t)
	resp, err := WhoisQuery(s.Addr(), "gone.ru.")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp, "state:      DELETED") || !strings.Contains(resp, "removed:    2021-07-15") {
		t.Errorf("deleted record wrong:\n%s", resp)
	}
}

func TestWhoisNoMatch(t *testing.T) {
	s, _ := startWhois(t)
	resp, err := WhoisQuery(s.Addr(), "nosuch.ru")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp, "% No match for nosuch.ru.") {
		t.Errorf("no-match response wrong:\n%s", resp)
	}
}

func TestWhoisCaseAndDotInsensitive(t *testing.T) {
	s, _ := startWhois(t)
	for _, q := range []string{"EXAMPLE.RU", "example.ru.", "Example.Ru"} {
		resp, err := WhoisQuery(s.Addr(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(resp, "ORG-EX") {
			t.Errorf("query %q did not match:\n%s", q, resp)
		}
	}
}

func TestWhoisServerLifecycle(t *testing.T) {
	s := &WhoisServer{Source: New("ru.")}
	if s.Addr() != "" {
		t.Error("Addr before Listen")
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err == nil {
		t.Error("Listen after Close succeeded")
	}
	if _, err := WhoisQuery(s.Addr(), "x.ru"); err == nil {
		t.Error("query to closed server succeeded")
	}
}
