// Package stream is the incremental half of the analysis layer: an
// engine that maintains every longitudinal series the serve API exposes
// (Figures 1/2/3/4/5, hosting, mail, reachability, latency, per-sweep
// counts) as live accumulator state, and folds one journal segment's
// deltas into them instead of revisiting all epochs.
//
// The contract is byte-identity: after folding segments 1..k, every
// getter returns element-for-element exactly what a cold
// analysis.Analyzer recompute over the same k segments returns (the
// equivalence tests assert this through reflect.DeepEqual and through
// the serve layer's rendered JSON). What makes a fold O(day) rather
// than O(study) is the same piecewise-constant insight the columnar
// store compresses:
//
//   - Appending sweep day T only changes the series at axis days in
//     (prevSeen(domain), T] for domains measured on T. A domain whose
//     config is unchanged extends its current epoch over that whole
//     range; a changed config closes the old epoch at T-1 (so gap days
//     in between carry the old classification) and opens a new one at
//     T. Domains absent from the sweep are untouched — their final
//     epoch still ends at their last-seen day, exactly as the store's
//     effective-interval rule reads it.
//   - A missing-day marker appends an Interpolated axis point that is
//     all zeros until a later sweep's backfill covers it.
//
// Per-domain cursors (last measured axis index + last config) are the
// only cross-fold state besides the accumulators themselves, so fold
// cost is proportional to the segment's measurements plus the patched
// gap ranges — independent of how long the study already is. FoldStats
// counts the work done, which is what the O(day) tests pin.
package stream

import (
	"fmt"
	"sync"

	"whereru/internal/analysis"
	"whereru/internal/netsim"
	"whereru/internal/simtime"
	"whereru/internal/store"
)

// Config wires an Engine to a study's analysis context.
type Config struct {
	// Analyzer supplies the classifiers, geolocation, address plan and
	// route oracle. The engine owns private memoizing caches built from
	// it; the analyzer itself is only read.
	Analyzer *analysis.Analyzer
	// Sanctioned is the Figure 5 domain filter (nil folds Figure 5 over
	// all domains, like a study without sanction data).
	Sanctioned analysis.Filter
	// DenseCutoff is the first axis day of the dense-window figures
	// (4 and 5); days before it are excluded from those two series.
	// Zero includes every day.
	DenseCutoff simtime.Day
}

// FoldStats counts the work one fold performed. The counters are the
// ground truth of the O(day) contract: for a fixed sweep, they are
// independent of how many segments were folded before it.
type FoldStats struct {
	Day     simtime.Day
	Missing bool
	// Measurements is the number of measurements in the folded segment.
	Measurements int
	// DomainsTouched counts domains whose cursor advanced.
	DomainsTouched int
	// Classifications counts per-day classifier/route evaluations.
	Classifications int
	// PointsPatched counts individual series-point updates (a domain
	// covering one axis day in one series counts once).
	PointsPatched int
}

// add accumulates other into s (used to total stats across folds).
func (s *FoldStats) add(o FoldStats) {
	s.Measurements += o.Measurements
	s.DomainsTouched += o.DomainsTouched
	s.Classifications += o.Classifications
	s.PointsPatched += o.PointsPatched
}

// cursor is the per-domain fold state: the axis index of the domain's
// last measurement and the (normalized) config it carried.
type cursor struct {
	lastIdx int
	cfg     store.Config
}

// SweepCount is one sweep day of the per-sweep measurement counts (the
// /api/v1/sweeps derivation): totals of measured domains that day and
// the failed/NXDOMAIN/unreachable classification of their configs.
type SweepCount struct {
	Day         simtime.Day
	Measured    int
	Failed      int
	NXDomain    int
	Unreachable int
}

// accumulator is one incrementally-maintained series.
type accumulator interface {
	// appendDay extends the series axis with the global axis day gi.
	appendDay(e *Engine, gi int, day simtime.Day, swept bool)
	// cover applies one domain's coverage of the inclusive global axis
	// index range [lo, hi] under cfg.
	cover(e *Engine, domain string, cfg store.Config, lo, hi int, st *FoldStats)
}

// Engine holds the accumulator state for every series. All methods are
// safe for concurrent use: folds take the write lock, getters the read
// lock and return copies.
type Engine struct {
	mu sync.RWMutex

	// days is the global axis: every folded day (sweep or missing), in
	// ascending order — the same axis core.Study.keyDays() computes.
	days     []simtime.Day
	swept    []bool
	sweepIdx []int // global index -> sweep ordinal (-1 for missing days)
	// sweptBefore[i] is the number of swept axis days among days[:i]
	// (len(days)+1 entries), mapping global index ranges to sweep
	// ordinal ranges in O(1).
	sweptBefore []int
	sweeps      []simtime.Day
	missing     []simtime.Day

	cursors map[string]cursor

	fig1, fig2, fig5, hosting *compSeries
	fig3                      *shareSeries[string]
	fig4                      *shareSeries[netsim.ASN]
	mail                      *shareSeries[string]
	reach                     *reachSeries
	lat                       *latSeries
	counts                    *sweepSeries
	accs                      []accumulator

	folds uint64
	total FoldStats
}

// New builds an empty engine; feed it journal segments with Fold.
func New(cfg Config) *Engine {
	a := cfg.Analyzer
	e := &Engine{cursors: make(map[string]cursor), sweptBefore: []int{0}}
	e.fig1 = newCompSeries(a.NewNSClassifier(), nil, 0)
	e.fig2 = newCompSeries(a.NewTLDClassifier(), nil, 0)
	e.fig5 = newCompSeries(a.NewNSClassifier(), cfg.Sanctioned, cfg.DenseCutoff)
	e.hosting = newCompSeries(a.NewHostingClassifier(), nil, 0)
	e.fig3 = newShareSeries[string](0,
		func(cfg store.Config) bool { return !cfg.Failed && len(cfg.NSHosts) > 0 },
		nil,
		tldKeys)
	e.fig4 = newShareSeries[netsim.ASN](cfg.DenseCutoff,
		func(cfg store.Config) bool { return !cfg.Failed },
		nil,
		func(c store.Config, dst []netsim.ASN) []netsim.ASN { return asnKeys(a, c, dst) })
	e.mail = newShareSeries[string](0,
		func(cfg store.Config) bool { return !cfg.Failed },
		func(cfg store.Config) bool { return len(cfg.MXHosts) > 0 },
		mailKeys)
	e.reach = newReachSeries(a.NewRouteEval())
	e.lat = newLatSeries(a.NewRouteEval())
	e.counts = &sweepSeries{}
	e.accs = []accumulator{e.fig1, e.fig2, e.fig5, e.hosting, e.fig3, e.fig4, e.mail, e.reach, e.lat, e.counts}
	return e
}

// Fold applies one journal segment. Segments must arrive in ascending
// day order — the order the journal records them — with at most one
// measurement per domain per segment (the journal's own invariants).
func (e *Engine) Fold(rec store.JournalSweep) (FoldStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := FoldStats{Day: rec.Day, Missing: rec.Missing, Measurements: len(rec.Measurements)}
	if n := len(e.days); n > 0 && rec.Day <= e.days[n-1] {
		return st, fmt.Errorf("stream: fold of %s out of order (axis ends at %s)", rec.Day, e.days[n-1])
	}
	gi := len(e.days)
	swept := !rec.Missing
	e.days = append(e.days, rec.Day)
	e.swept = append(e.swept, swept)
	if swept {
		e.sweepIdx = append(e.sweepIdx, len(e.sweeps))
		e.sweeps = append(e.sweeps, rec.Day)
		e.sweptBefore = append(e.sweptBefore, e.sweptBefore[gi]+1)
	} else {
		e.sweepIdx = append(e.sweepIdx, -1)
		e.missing = append(e.missing, rec.Day)
		e.sweptBefore = append(e.sweptBefore, e.sweptBefore[gi])
	}
	for _, acc := range e.accs {
		acc.appendDay(e, gi, rec.Day, swept)
	}
	if swept {
		for _, m := range rec.Measurements {
			cfg := m.Config.Normalize()
			cur, seen := e.cursors[m.Domain]
			if seen && cur.lastIdx >= gi {
				// Duplicate measurement within one segment: the journal
				// never produces one; ignore rather than double-count.
				continue
			}
			st.DomainsTouched++
			switch {
			case !seen:
				e.coverAll(m.Domain, cfg, gi, gi, &st)
			case cur.cfg.Equal(cfg):
				// Same config: the store extends the tail epoch, which
				// retroactively covers every axis day since the previous
				// measurement (gap days, and sweep days the domain sat
				// out before re-entering identically).
				e.coverAll(m.Domain, cur.cfg, cur.lastIdx+1, gi, &st)
			default:
				// Changed config: the old epoch's effective end becomes
				// T-1, so intermediate axis days carry the old
				// classification; day T gets the new one.
				if cur.lastIdx+1 <= gi-1 {
					e.coverAll(m.Domain, cur.cfg, cur.lastIdx+1, gi-1, &st)
				}
				e.coverAll(m.Domain, cfg, gi, gi, &st)
			}
			e.cursors[m.Domain] = cursor{lastIdx: gi, cfg: cfg}
		}
	}
	e.folds++
	e.total.add(st)
	return st, nil
}

func (e *Engine) coverAll(domain string, cfg store.Config, lo, hi int, st *FoldStats) {
	for _, acc := range e.accs {
		acc.cover(e, domain, cfg, lo, hi, st)
	}
}

// --- getters (read lock + copy; every one matches the corresponding
// core.Study method element for element) ---

// Fig1 returns the NS-composition series.
func (e *Engine) Fig1() []analysis.Point { return e.compPoints(e.fig1) }

// Fig2 returns the TLD-dependency series.
func (e *Engine) Fig2() []analysis.Point { return e.compPoints(e.fig2) }

// Fig5 returns the sanctioned-domain NS-composition series (dense
// window).
func (e *Engine) Fig5() []analysis.Point { return e.compPoints(e.fig5) }

// Hosting returns the §3.1 hosting-composition series.
func (e *Engine) Hosting() []analysis.Point { return e.compPoints(e.hosting) }

func (e *Engine) compPoints(cs *compSeries) []analysis.Point {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]analysis.Point, len(cs.pts))
	copy(out, cs.pts)
	return out
}

// Fig3 returns the per-TLD share series.
func (e *Engine) Fig3() []analysis.TLDSharePoint {
	e.mu.RLock()
	defer e.mu.RUnlock()
	s := e.fig3
	out := make([]analysis.TLDSharePoint, 0, len(s.totals))
	for i := range s.totals {
		out = append(out, analysis.TLDSharePoint{
			Day: e.days[s.start+i], Total: s.totals[i], Counts: copyMap(s.counts[i]),
		})
	}
	return out
}

// Fig4 returns the hosting-ASN share series (dense window).
func (e *Engine) Fig4() []analysis.ASNSharePoint {
	e.mu.RLock()
	defer e.mu.RUnlock()
	s := e.fig4
	out := make([]analysis.ASNSharePoint, 0, len(s.totals))
	for i := range s.totals {
		out = append(out, analysis.ASNSharePoint{
			Day: e.days[s.start+i], Total: s.totals[i], Counts: copyMap(s.counts[i]),
		})
	}
	return out
}

// Mail returns the mail-operator share series.
func (e *Engine) Mail() []analysis.MailSharePoint {
	e.mu.RLock()
	defer e.mu.RUnlock()
	s := e.mail
	out := make([]analysis.MailSharePoint, 0, len(s.totals))
	for i := range s.totals {
		out = append(out, analysis.MailSharePoint{
			Day: e.days[s.start+i], Total: s.totals[i], WithMail: s.subs[i], Counts: copyMap(s.counts[i]),
		})
	}
	return out
}

// Reachability returns the per-day reachability series.
func (e *Engine) Reachability() []analysis.ReachPoint {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.reach.materialize(e)
}

// RouteLatency returns the simulated resolution-latency series.
func (e *Engine) RouteLatency() []analysis.RouteLatencyPoint {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.lat.materialize(e)
}

// SweepCounts returns the per-sweep measurement counts.
func (e *Engine) SweepCounts() []SweepCount {
	e.mu.RLock()
	defer e.mu.RUnlock()
	c := e.counts
	out := make([]SweepCount, 0, len(e.sweeps))
	for i, day := range e.sweeps {
		out = append(out, SweepCount{
			Day: day, Measured: c.measured[i], Failed: c.failed[i],
			NXDomain: c.nxdomain[i], Unreachable: c.unreach[i],
		})
	}
	return out
}

// Days returns the folded axis (sweeps plus missing days, ascending).
func (e *Engine) Days() []simtime.Day {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]simtime.Day, len(e.days))
	copy(out, e.days)
	return out
}

// MissingDays returns the folded missing-day markers.
func (e *Engine) MissingDays() []simtime.Day {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]simtime.Day, len(e.missing))
	copy(out, e.missing)
	return out
}

// LastDay returns the most recently folded day (ok=false before any
// fold).
func (e *Engine) LastDay() (simtime.Day, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if len(e.days) == 0 {
		return 0, false
	}
	return e.days[len(e.days)-1], true
}

// Folds returns how many segments have been folded.
func (e *Engine) Folds() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.folds
}

// TotalStats returns the fold-work counters summed over every fold.
func (e *Engine) TotalStats() FoldStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.total
}

func copyMap[K comparable](m map[K]int) map[K]int {
	out := make(map[K]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
