package stream

import (
	"sort"
	"time"

	"whereru/internal/analysis"
	"whereru/internal/netsim"
	"whereru/internal/simtime"
	"whereru/internal/store"
)

// reachSeries accumulates the per-day reachability series: running
// domain totals and reachable counts, overall and per country / ASN of
// the name-server addresses, evaluated through the same memoizing route
// cache the batch engine shards use. Its axis is the full global axis
// (no cutoff), so local and global indices coincide.
type reachSeries struct {
	eval           *analysis.RouteEval
	total, reach   []int
	cTotal, cReach map[string][]int
	aTotal, aReach map[netsim.ASN][]int
	// Per-(epoch, day) scratch: country/ASN -> saw a reachable address.
	cSeen map[string]bool
	aSeen map[netsim.ASN]bool
}

func newReachSeries(eval *analysis.RouteEval) *reachSeries {
	return &reachSeries{
		eval:   eval,
		cTotal: make(map[string][]int), cReach: make(map[string][]int),
		aTotal: make(map[netsim.ASN][]int), aReach: make(map[netsim.ASN][]int),
		cSeen: make(map[string]bool), aSeen: make(map[netsim.ASN]bool),
	}
}

func (s *reachSeries) appendDay(*Engine, int, simtime.Day, bool) {
	s.total = append(s.total, 0)
	s.reach = append(s.reach, 0)
	for k := range s.cTotal {
		s.cTotal[k] = append(s.cTotal[k], 0)
	}
	for k := range s.cReach {
		s.cReach[k] = append(s.cReach[k], 0)
	}
	for k := range s.aTotal {
		s.aTotal[k] = append(s.aTotal[k], 0)
	}
	for k := range s.aReach {
		s.aReach[k] = append(s.aReach[k], 0)
	}
}

// bump increments m[k][i], zero-filling a new key's column to length n.
func bump[K comparable](m map[K][]int, k K, i, n int) {
	col := m[k]
	if col == nil {
		col = make([]int, n)
		m[k] = col
	}
	col[i]++
}

func (s *reachSeries) cover(e *Engine, _ string, cfg store.Config, lo, hi int, st *FoldStats) {
	if len(cfg.NSAddrs) == 0 {
		return
	}
	n := len(s.total)
	for i := lo; i <= hi; i++ {
		day := e.days[i]
		ver := s.eval.Version(day)
		anyReach := false
		clear(s.cSeen)
		clear(s.aSeen)
		for _, addr := range cfg.NSAddrs {
			_, ok := s.eval.Route(ver, day, addr)
			if ok {
				anyReach = true
			}
			asn, country, known := s.eval.Origin(addr)
			if !known {
				continue
			}
			if country != "" {
				s.cSeen[country] = s.cSeen[country] || ok
			}
			s.aSeen[asn] = s.aSeen[asn] || ok
		}
		st.Classifications++
		st.PointsPatched++
		s.total[i]++
		if anyReach {
			s.reach[i]++
		}
		for country, reach := range s.cSeen {
			bump(s.cTotal, country, i, n)
			if reach {
				bump(s.cReach, country, i, n)
			}
		}
		for asn, reach := range s.aSeen {
			bump(s.aTotal, asn, i, n)
			if reach {
				bump(s.aReach, asn, i, n)
			}
		}
	}
}

// materialize renders the accumulators into the batch engine's exact
// output shape. Caller holds the engine lock.
func (s *reachSeries) materialize(e *Engine) []analysis.ReachPoint {
	countries := make([]string, 0, len(s.cTotal))
	for c := range s.cTotal {
		countries = append(countries, c)
	}
	sort.Strings(countries)
	asns := make([]netsim.ASN, 0, len(s.aTotal))
	for as := range s.aTotal {
		asns = append(asns, as)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })

	out := make([]analysis.ReachPoint, 0, len(e.days))
	for i, day := range e.days {
		p := analysis.ReachPoint{
			Day:          day,
			Interpolated: !e.swept[i],
			Total:        s.total[i],
			Reachable:    s.reach[i],
			Unreachable:  s.total[i] - s.reach[i],
		}
		for _, c := range countries {
			t := s.cTotal[c][i]
			if t == 0 {
				continue
			}
			r := 0
			if col := s.cReach[c]; col != nil {
				r = col[i]
			}
			p.Countries = append(p.Countries, analysis.CountryReach{Country: c, Total: t, Reachable: r})
		}
		for _, as := range asns {
			t := s.aTotal[as][i]
			if t == 0 {
				continue
			}
			r := 0
			if col := s.aReach[as]; col != nil {
				r = col[i]
			}
			p.ASNs = append(p.ASNs, analysis.ASNReach{ASN: as, Total: t, Reachable: r})
		}
		out = append(out, p)
	}
	return out
}

// latSeries accumulates the simulated resolution-latency series: one
// best-path-latency histogram per day, overall and per country.
type latSeries struct {
	eval  *analysis.RouteEval
	hist  [][analysis.LatencyBucketCount]int
	cHist map[string][][analysis.LatencyBucketCount]int
	cSeen map[string]bool
}

func newLatSeries(eval *analysis.RouteEval) *latSeries {
	return &latSeries{
		eval:  eval,
		cHist: make(map[string][][analysis.LatencyBucketCount]int),
		cSeen: make(map[string]bool),
	}
}

func (s *latSeries) appendDay(*Engine, int, simtime.Day, bool) {
	s.hist = append(s.hist, [analysis.LatencyBucketCount]int{})
	for k := range s.cHist {
		s.cHist[k] = append(s.cHist[k], [analysis.LatencyBucketCount]int{})
	}
}

func (s *latSeries) cover(e *Engine, _ string, cfg store.Config, lo, hi int, st *FoldStats) {
	if len(cfg.NSAddrs) == 0 {
		return
	}
	for i := lo; i <= hi; i++ {
		day := e.days[i]
		ver := s.eval.Version(day)
		best, routed := time.Duration(0), false
		clear(s.cSeen)
		for _, addr := range cfg.NSAddrs {
			lat, ok := s.eval.Route(ver, day, addr)
			if !ok {
				continue
			}
			if !routed || lat < best {
				best, routed = lat, true
			}
			if _, country, known := s.eval.Origin(addr); known && country != "" {
				s.cSeen[country] = true
			}
		}
		st.Classifications++
		if !routed {
			continue
		}
		st.PointsPatched++
		b := analysis.LatencyBucketIndex(best)
		s.hist[i][b]++
		for country := range s.cSeen {
			col := s.cHist[country]
			if col == nil {
				col = make([][analysis.LatencyBucketCount]int, len(s.hist))
				s.cHist[country] = col
			}
			col[i][b]++
		}
	}
}

func (s *latSeries) materialize(e *Engine) []analysis.RouteLatencyPoint {
	countries := make([]string, 0, len(s.cHist))
	for c := range s.cHist {
		countries = append(countries, c)
	}
	sort.Strings(countries)

	out := make([]analysis.RouteLatencyPoint, 0, len(e.days))
	for i, day := range e.days {
		run := s.hist[i]
		domains := 0
		for _, c := range run {
			domains += c
		}
		p := analysis.RouteLatencyPoint{
			Day:          day,
			Interpolated: !e.swept[i],
			Domains:      domains,
			P50:          analysis.LatencyQuantile(&run, 0.50),
			P90:          analysis.LatencyQuantile(&run, 0.90),
			P99:          analysis.LatencyQuantile(&run, 0.99),
		}
		for _, c := range countries {
			cr := s.cHist[c][i]
			cd := 0
			for _, v := range cr {
				cd += v
			}
			if cd == 0 {
				continue
			}
			p.Countries = append(p.Countries, analysis.CountryLatency{
				Country: c,
				Domains: cd,
				P50:     analysis.LatencyQuantile(&cr, 0.50),
				P90:     analysis.LatencyQuantile(&cr, 0.90),
				P99:     analysis.LatencyQuantile(&cr, 0.99),
			})
		}
		out = append(out, p)
	}
	return out
}
