package stream_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"whereru/internal/core"
	"whereru/internal/simtime"
	"whereru/internal/store"
	"whereru/internal/stream"
	"whereru/internal/world"
)

// The fold/recompute equivalence contract: after folding journal
// segments 1..k, every engine getter must equal — element for element —
// the corresponding batch method of a cold study that replayed the same
// k segments. The tests below assert it for every prefix of journals
// produced by plain, gap-day, crash-resumed, grid-distributed and
// scenario runs.

// streamOpts is a short window straddling the 2022-02-01 dense cutoff,
// so the Fig4/Fig5 suffix axis is exercised: two monthly sweeps, then
// weekly dense ones.
func streamOpts() core.Options {
	return core.Options{
		World:      world.Config{Seed: 5, Scale: 20000, RFShare: 0.1},
		DenseStep:  7,
		CollectMX:  true,
		StudyStart: simtime.Date(2021, 12, 1),
		StudyEnd:   simtime.Date(2022, 3, 1),
	}
}

// journalFor collects a study with opts (plus a checkpoint journal) and
// returns the journal replay.
func journalFor(t *testing.T, opts core.Options) *store.JournalReplay {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sweeps.wrjl")
	opts.CheckpointPath = path
	s, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	replay, err := store.VerifyJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay.Sweeps) == 0 {
		t.Fatal("journal is empty")
	}
	return replay
}

// assertPrefixEquivalence folds the replay one segment at a time into a
// fresh engine while applying the same segments to a cold study, and
// DeepEqual-compares every series after every segment.
func assertPrefixEquivalence(t *testing.T, opts core.Options, replay *store.JournalReplay) {
	t.Helper()
	cold, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	eng := cold.NewStreamEngine()
	for k, rec := range replay.Sweeps {
		if _, err := eng.Fold(rec); err != nil {
			t.Fatalf("fold %d (%s): %v", k, rec.Day, err)
		}
		cold.ApplySweep(rec)
		compareSeries(t, fmt.Sprintf("prefix %d/%d (%s)", k+1, len(replay.Sweeps), rec.Day), eng, cold)
		if t.Failed() {
			return
		}
	}
}

func compareSeries(t *testing.T, label string, eng *stream.Engine, cold *core.Study) {
	t.Helper()
	check := func(name string, got, want any) {
		t.Helper()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: %s diverged from cold recompute\n fold: %+v\n cold: %+v", label, name, got, want)
		}
	}
	check("Fig1", eng.Fig1(), cold.Fig1())
	check("Fig2", eng.Fig2(), cold.Fig2())
	check("Fig3", eng.Fig3(), cold.Fig3())
	check("Fig4", eng.Fig4(), cold.Fig4())
	check("Fig5", eng.Fig5(), cold.Fig5())
	check("Hosting", eng.Hosting(), cold.Hosting())
	check("Mail", eng.Mail(), cold.Mail())
	check("Reachability", eng.Reachability(), cold.Reachability())
	check("RouteLatency", eng.RouteLatency(), cold.RouteLatency())
}

func TestFoldEquivalencePlain(t *testing.T) {
	opts := streamOpts()
	assertPrefixEquivalence(t, opts, journalFor(t, opts))
}

func TestFoldEquivalenceGapDays(t *testing.T) {
	opts := streamOpts()
	probe := journalFor(t, opts)
	if len(probe.Sweeps) < 5 {
		t.Fatalf("only %d sweeps", len(probe.Sweeps))
	}
	// Drop one monthly day and one dense day: the engine must fold the
	// missing markers as Interpolated zero points and backfill them when
	// later sweeps extend epochs across the gap.
	opts.DropSweeps = []simtime.Day{probe.Sweeps[1].Day, probe.Sweeps[3].Day}
	assertPrefixEquivalence(t, opts, journalFor(t, opts))
}

func TestFoldEquivalenceScenario(t *testing.T) {
	opts := streamOpts()
	opts.Scenario = "netnod-depeering"
	assertPrefixEquivalence(t, opts, journalFor(t, opts))
}

func TestFoldEquivalenceCrashResumedJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweeps.wrjl")
	opts := streamOpts()
	opts.CheckpointPath = path
	opts.CrashAfter = 2
	crashed, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := crashed.Collect(context.Background()); !errors.Is(err, core.ErrCrashInjected) {
		t.Fatalf("crash run returned %v, want ErrCrashInjected", err)
	}
	ropts := streamOpts()
	ropts.CheckpointPath = path
	ropts.Resume = true
	resumed, err := core.New(ropts)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	replay, err := store.VerifyJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	assertPrefixEquivalence(t, streamOpts(), replay)
}

func TestFoldEquivalenceGridJournal(t *testing.T) {
	opts := streamOpts()
	opts.GridWorkers = 2
	replay := journalFor(t, opts)
	// The fold runs against a plain (non-grid) analysis context; the
	// journal bytes are what grid must have made identical.
	assertPrefixEquivalence(t, streamOpts(), replay)
}

func TestFoldRejectsOutOfOrderDays(t *testing.T) {
	opts := streamOpts()
	replay := journalFor(t, opts)
	s, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	eng := s.NewStreamEngine()
	if _, err := eng.Fold(replay.Sweeps[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Fold(replay.Sweeps[0]); err == nil {
		t.Fatal("folding an earlier day after a later one should fail")
	}
	if _, err := eng.Fold(replay.Sweeps[1]); err == nil {
		t.Fatal("re-folding the same day should fail")
	}
}

// TestFoldCostIndependentOfStudyLength is the O(day) assertion: folding
// the final segment must perform identical work whether the engine has
// already folded the whole study or just the immediately preceding
// segment — fold cost depends on the day's deltas, not the axis length.
func TestFoldCostIndependentOfStudyLength(t *testing.T) {
	opts := streamOpts()
	replay := journalFor(t, opts)
	n := len(replay.Sweeps)
	if n < 3 {
		t.Fatalf("only %d segments", n)
	}
	s, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	long := s.NewStreamEngine()
	for _, rec := range replay.Sweeps[:n-1] {
		if _, err := long.Fold(rec); err != nil {
			t.Fatal(err)
		}
	}
	short := s.NewStreamEngine()
	if _, err := short.Fold(replay.Sweeps[n-2]); err != nil {
		t.Fatal(err)
	}
	stLong, err := long.Fold(replay.Sweeps[n-1])
	if err != nil {
		t.Fatal(err)
	}
	stShort, err := short.Fold(replay.Sweeps[n-1])
	if err != nil {
		t.Fatal(err)
	}
	if stLong != stShort {
		t.Errorf("fold work depends on study length:\n long-primed: %+v\nshort-primed: %+v", stLong, stShort)
	}
	if stLong.PointsPatched == 0 || stLong.Classifications == 0 {
		t.Errorf("fold counters empty: %+v", stLong)
	}
}

// TestEngineConcurrentReaders hammers every getter from multiple
// goroutines while segments fold — the race detector turns interleaving
// bugs into failures.
func TestEngineConcurrentReaders(t *testing.T) {
	opts := streamOpts()
	replay := journalFor(t, opts)
	s, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	eng := s.NewStreamEngine()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				eng.Fig1()
				eng.Fig3()
				eng.Fig4()
				eng.Mail()
				eng.Reachability()
				eng.RouteLatency()
				eng.SweepCounts()
				eng.LastDay()
				eng.Folds()
			}
		}()
	}
	for _, rec := range replay.Sweeps {
		if _, err := eng.Fold(rec); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// BenchmarkFoldOneDay times folding a full short-study journal, reported
// per segment.
func BenchmarkFoldOneDay(b *testing.B) {
	opts := streamOpts()
	path := filepath.Join(b.TempDir(), "sweeps.wrjl")
	opts.CheckpointPath = path
	s, err := core.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Collect(context.Background()); err != nil {
		b.Fatal(err)
	}
	replay, err := store.VerifyJournal(path)
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := core.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	folds := 0
	for i := 0; i < b.N; i++ {
		eng := ctx.NewStreamEngine()
		for _, rec := range replay.Sweeps {
			if _, err := eng.Fold(rec); err != nil {
				b.Fatal(err)
			}
			folds++
		}
	}
	b.StopTimer()
	if folds > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(folds), "ns/fold")
	}
}
