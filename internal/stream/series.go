package stream

import (
	"whereru/internal/analysis"
	"whereru/internal/dns"
	"whereru/internal/netsim"
	"whereru/internal/simtime"
	"whereru/internal/store"
)

// compSeries accumulates one composition series (Figures 1, 2, 5 and
// the hosting breakdown): a Point per admitted axis day, patched in
// place as folds cover day ranges.
type compSeries struct {
	classify analysis.DayClassifier
	filter   analysis.Filter
	cutoff   simtime.Day
	// start is the global axis index of the series' first admitted day
	// (-1 until one is appended); local index i maps to global start+i.
	start int
	pts   []analysis.Point
}

func newCompSeries(classify analysis.DayClassifier, filter analysis.Filter, cutoff simtime.Day) *compSeries {
	return &compSeries{classify: classify, filter: filter, cutoff: cutoff, start: -1}
}

func (s *compSeries) appendDay(_ *Engine, gi int, day simtime.Day, swept bool) {
	if day < s.cutoff {
		return
	}
	if s.start < 0 {
		s.start = gi
	}
	s.pts = append(s.pts, analysis.Point{Day: day, Interpolated: !swept})
}

// clamp maps an inclusive global range to the series' local range; ok is
// false when the series has no days in it.
func (s *compSeries) clamp(lo, hi int) (l, h int, ok bool) {
	if s.start < 0 || hi < s.start {
		return 0, 0, false
	}
	if lo < s.start {
		lo = s.start
	}
	return lo - s.start, hi - s.start, true
}

func (s *compSeries) cover(e *Engine, domain string, cfg store.Config, lo, hi int, st *FoldStats) {
	if s.filter != nil && !s.filter(domain) {
		return
	}
	l, h, ok := s.clamp(lo, hi)
	if !ok {
		return
	}
	for i := l; i <= h; i++ {
		c := s.classify(e.days[s.start+i], cfg)
		st.Classifications++
		st.PointsPatched++
		p := &s.pts[i]
		p.Total++
		switch c {
		case analysis.CompFull:
			p.Full++
		case analysis.CompPart:
			p.Part++
		case analysis.CompNon:
			p.Non++
		default:
			p.Unknown++
		}
	}
}

// shareSeries accumulates one keyed-share series (Figures 3 and 4, mail
// operators): per-day totals, optional subpopulation totals, and per-key
// counts. Keys are config-derived and day-independent, exactly like the
// epoch engine's key extraction.
type shareSeries[K comparable] struct {
	include func(store.Config) bool
	subpop  func(store.Config) bool
	keysOf  func(store.Config, []K) []K
	cutoff  simtime.Day
	start   int
	totals  []int
	subs    []int
	counts  []map[K]int
	scratch []K
}

func newShareSeries[K comparable](cutoff simtime.Day, include, subpop func(store.Config) bool, keysOf func(store.Config, []K) []K) *shareSeries[K] {
	return &shareSeries[K]{include: include, subpop: subpop, keysOf: keysOf, cutoff: cutoff, start: -1}
}

func (s *shareSeries[K]) appendDay(_ *Engine, gi int, day simtime.Day, _ bool) {
	if day < s.cutoff {
		return
	}
	if s.start < 0 {
		s.start = gi
	}
	s.totals = append(s.totals, 0)
	s.subs = append(s.subs, 0)
	s.counts = append(s.counts, make(map[K]int))
}

func (s *shareSeries[K]) cover(_ *Engine, _ string, cfg store.Config, lo, hi int, st *FoldStats) {
	if s.start < 0 || hi < s.start {
		return
	}
	if lo < s.start {
		lo = s.start
	}
	l, h := lo-s.start, hi-s.start
	if !s.include(cfg) {
		// Excluded configs contribute to neither totals nor counts — the
		// epoch engine's include gate runs before the total.
		return
	}
	inSub := s.subpop == nil || s.subpop(cfg)
	var keys []K
	if inSub {
		s.scratch = s.keysOf(cfg, s.scratch[:0])
		keys = s.scratch
		st.Classifications++
	}
	for i := l; i <= h; i++ {
		st.PointsPatched++
		s.totals[i]++
		if !inSub {
			continue
		}
		if s.subpop != nil {
			s.subs[i]++
		}
		for _, k := range keys {
			s.counts[i][k]++
		}
	}
}

// sweepSeries accumulates the per-sweep coverage counts backing the
// /api/v1/sweeps rows: for each sweep day, how many domains' epochs
// cover it and how their configs classify (failed / NXDOMAIN /
// unreachable). It is a carry-forward series like the composition ones
// (the serve renderer walks epochs with difference arrays over the
// sweeps axis) but on sweep days only — missing axis days are rendered
// as bare markers and carry no counts.
type sweepSeries struct {
	measured []int
	failed   []int
	nxdomain []int
	unreach  []int
}

func (s *sweepSeries) appendDay(_ *Engine, _ int, _ simtime.Day, swept bool) {
	if !swept {
		return
	}
	s.measured = append(s.measured, 0)
	s.failed = append(s.failed, 0)
	s.nxdomain = append(s.nxdomain, 0)
	s.unreach = append(s.unreach, 0)
}

func (s *sweepSeries) cover(e *Engine, _ string, cfg store.Config, lo, hi int, st *FoldStats) {
	// Map the global range to sweep ordinals; missing days inside it
	// carry no sweep rows.
	loOrd := e.sweptBefore[lo]
	hiOrd := e.sweptBefore[hi+1] - 1
	for si := loOrd; si <= hiOrd; si++ {
		st.PointsPatched++
		s.measured[si]++
		switch {
		case cfg.Failed:
			s.failed[si]++
		case len(cfg.NSHosts) == 0:
			s.nxdomain[si]++
		case len(cfg.NSAddrs) == 0:
			s.unreach[si]++
		}
	}
}

// --- key extractors shared with the analysis layer's share series ---

func tldKeys(cfg store.Config, dst []string) []string {
	for _, host := range cfg.NSHosts {
		dst = uniqueAppend(dst, dns.TLD(host))
	}
	return dst
}

func asnKeys(a *analysis.Analyzer, cfg store.Config, dst []netsim.ASN) []netsim.ASN {
	for _, addr := range cfg.ApexAddrs {
		if asn, ok := a.Internet.OriginAS(addr); ok {
			dst = uniqueAppend(dst, asn)
		}
	}
	return dst
}

func mailKeys(cfg store.Config, dst []string) []string {
	for _, h := range cfg.MXHosts {
		dst = uniqueAppend(dst, analysis.MXZone(h))
	}
	return dst
}

func uniqueAppend[K comparable](dst []K, k K) []K {
	for _, have := range dst {
		if have == k {
			return dst
		}
	}
	return append(dst, k)
}
