// Package ct implements an RFC 6962-style Certificate Transparency log:
// an append-only Merkle tree (SHA-256, 0x00/0x01 domain separation) over
// serialized certificates, tree heads, inclusion and consistency proofs
// with verifiers, and a monitor that tails the log for certificates
// matching a predicate — the reproduction's analog of Censys's CT index,
// which the paper uses to find every certificate securing a .ru or .рф
// name (§4.1).
package ct

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"whereru/internal/pki"
	"whereru/internal/simtime"
)

// Hash is a SHA-256 digest.
type Hash = [sha256.Size]byte

// LeafHash computes the RFC 6962 leaf hash: SHA-256(0x00 || leaf).
func LeafHash(leaf []byte) Hash {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(leaf)
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// NodeHash computes the RFC 6962 interior hash: SHA-256(0x01 || l || r).
func NodeHash(l, r Hash) Hash {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(l[:])
	h.Write(r[:])
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// EmptyRoot is the root of the empty tree: SHA-256 of the empty string.
func EmptyRoot() Hash { return sha256.Sum256(nil) }

// Entry is one log entry.
type Entry struct {
	Index     int64
	Timestamp simtime.Day
	Cert      *pki.Certificate
}

// TreeHead is a (conceptually signed) tree head.
type TreeHead struct {
	Size      int64
	Root      Hash
	Timestamp simtime.Day
}

// Log is an append-only CT log.
type Log struct {
	// Name identifies the log shard (e.g. "oak2022").
	Name string

	mu      sync.RWMutex
	entries []Entry
	hashes  []Hash // leaf hashes, parallel to entries
	// memo caches roots of complete, aligned subtrees, which are
	// immutable once formed. Key packs (start, size): start*2^34 | size.
	memo map[int64]Hash
	// UseMemo can be disabled for the ablation benchmark.
	UseMemo bool
	// key signs tree heads (see sth.go); empty = unsigned log.
	key []byte
}

// NewLog creates an empty log.
func NewLog(name string) *Log {
	return &Log{Name: name, memo: make(map[int64]Hash), UseMemo: true}
}

// Append adds a certificate to the log at the given timestamp and returns
// its index. Appending certificates from CAs that do not log is the
// caller's bug, so it is rejected loudly.
func (l *Log) Append(cert *pki.Certificate, day simtime.Day) (int64, error) {
	if !cert.Logged {
		return 0, fmt.Errorf("ct: certificate %d is marked not-logged", cert.Serial)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	idx := int64(len(l.entries))
	l.entries = append(l.entries, Entry{Index: idx, Timestamp: day, Cert: cert})
	l.hashes = append(l.hashes, LeafHash(cert.Marshal()))
	return idx, nil
}

// Size returns the current number of entries.
func (l *Log) Size() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return int64(len(l.entries))
}

// Entry returns the entry at index i.
func (l *Log) Entry(i int64) (Entry, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if i < 0 || i >= int64(len(l.entries)) {
		return Entry{}, fmt.Errorf("ct: index %d out of range [0,%d)", i, len(l.entries))
	}
	return l.entries[i], nil
}

// Head returns the tree head for the current size.
func (l *Log) Head() TreeHead {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := int64(len(l.entries))
	var ts simtime.Day
	if n > 0 {
		ts = l.entries[n-1].Timestamp
	}
	return TreeHead{Size: n, Root: l.rootLocked(0, n), Timestamp: ts}
}

// RootAt returns the root of the first n entries.
func (l *Log) RootAt(n int64) (Hash, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if n < 0 || n > int64(len(l.entries)) {
		return Hash{}, fmt.Errorf("ct: size %d out of range", n)
	}
	return l.rootLocked(0, n), nil
}

// largestPow2Below returns the largest power of two strictly less than n
// (n must be ≥ 2).
func largestPow2Below(n int64) int64 {
	k := int64(1)
	for k*2 < n {
		k *= 2
	}
	return k
}

// rootLocked computes MTH(D[start:start+size]).
func (l *Log) rootLocked(start, size int64) Hash {
	switch size {
	case 0:
		return EmptyRoot()
	case 1:
		return l.hashes[start]
	}
	aligned := l.UseMemo && size&(size-1) == 0 && start%size == 0
	var key int64
	if aligned {
		key = start<<34 | size
		if h, ok := l.memo[key]; ok {
			return h
		}
	}
	k := largestPow2Below(size)
	h := NodeHash(l.rootLocked(start, k), l.rootLocked(start+k, size-k))
	if aligned {
		l.memo[key] = h
	}
	return h
}

// Proof errors.
var (
	ErrBadRange = errors.New("ct: proof parameters out of range")
)

// InclusionProof returns the audit path for the leaf at index within the
// tree of the first treeSize entries (RFC 6962 §2.1.1 PATH).
func (l *Log) InclusionProof(index, treeSize int64) ([]Hash, error) {
	l.mu.Lock() // memo writes require the write lock
	defer l.mu.Unlock()
	if index < 0 || treeSize > int64(len(l.hashes)) || index >= treeSize {
		return nil, ErrBadRange
	}
	return l.pathLocked(index, 0, treeSize), nil
}

func (l *Log) pathLocked(m, start, size int64) []Hash {
	if size <= 1 {
		return nil
	}
	k := largestPow2Below(size)
	if m < k {
		return append(l.pathLocked(m, start, k), l.rootLocked(start+k, size-k))
	}
	return append(l.pathLocked(m-k, start+k, size-k), l.rootLocked(start, k))
}

// VerifyInclusion checks an audit path (RFC 9162 §2.1.3.2).
func VerifyInclusion(leaf []byte, index, treeSize int64, proof []Hash, root Hash) bool {
	if index < 0 || index >= treeSize {
		return false
	}
	fn, sn := index, treeSize-1
	r := LeafHash(leaf)
	for _, p := range proof {
		if sn == 0 {
			return false
		}
		if fn&1 == 1 || fn == sn {
			r = NodeHash(p, r)
			if fn&1 == 0 {
				for {
					fn >>= 1
					sn >>= 1
					if fn&1 == 1 || fn == 0 {
						break
					}
				}
			}
		} else {
			r = NodeHash(r, p)
		}
		fn >>= 1
		sn >>= 1
	}
	return sn == 0 && r == root
}

// ConsistencyProof returns the proof that the tree of size m is a prefix
// of the tree of size n (RFC 6962 §2.1.2 PROOF).
func (l *Log) ConsistencyProof(m, n int64) ([]Hash, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if m < 0 || n > int64(len(l.hashes)) || m > n {
		return nil, ErrBadRange
	}
	if m == 0 || m == n {
		return nil, nil
	}
	return l.subProofLocked(m, 0, n, true), nil
}

func (l *Log) subProofLocked(m, start, n int64, complete bool) []Hash {
	if m == n {
		if complete {
			return nil
		}
		return []Hash{l.rootLocked(start, m)}
	}
	k := largestPow2Below(n)
	if m <= k {
		return append(l.subProofLocked(m, start, k, complete), l.rootLocked(start+k, n-k))
	}
	return append(l.subProofLocked(m-k, start+k, n-k, false), l.rootLocked(start, k))
}

// VerifyConsistency checks a consistency proof between tree sizes m ≤ n
// with roots rootM and rootN (RFC 9162 §2.1.4.2).
func VerifyConsistency(m, n int64, rootM, rootN Hash, proof []Hash) bool {
	switch {
	case m < 0 || m > n:
		return false
	case m == n:
		return len(proof) == 0 && rootM == rootN
	case m == 0:
		// The empty tree is consistent with anything; RFC 9162 requires
		// an empty proof in this case.
		return len(proof) == 0
	}
	// If m is a power of two, the first subtree root equals rootM and is
	// implicit; prepend it.
	path := proof
	if m&(m-1) == 0 {
		path = append([]Hash{rootM}, proof...)
	}
	if len(path) == 0 {
		return false
	}
	fn, sn := m-1, n-1
	for fn&1 == 1 {
		fn >>= 1
		sn >>= 1
	}
	fr, sr := path[0], path[0]
	for _, c := range path[1:] {
		if sn == 0 {
			return false
		}
		if fn&1 == 1 || fn == sn {
			fr = NodeHash(c, fr)
			sr = NodeHash(c, sr)
			if fn&1 == 0 {
				for {
					fn >>= 1
					sn >>= 1
					if fn&1 == 1 || fn == 0 {
						break
					}
				}
			}
		} else {
			sr = NodeHash(sr, c)
		}
		fn >>= 1
		sn >>= 1
	}
	return fr == rootM && sr == rootN && sn == 0
}

// Scan visits entries [from, to) that satisfy pred (nil = all), returning
// the matches. It is the bulk-read primitive monitors build on.
func (l *Log) Scan(from, to int64, pred func(*pki.Certificate) bool) []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if from < 0 {
		from = 0
	}
	if to > int64(len(l.entries)) {
		to = int64(len(l.entries))
	}
	var out []Entry
	for i := from; i < to; i++ {
		if pred == nil || pred(l.entries[i].Cert) {
			out = append(out, l.entries[i])
		}
	}
	return out
}

// Monitor tails a log, delivering new entries that match a predicate —
// how Censys incrementally indexes CT shards.
type Monitor struct {
	Log  *Log
	Pred func(*pki.Certificate) bool

	mu   sync.Mutex
	next int64
}

// NewMonitor creates a monitor from the beginning of the log.
func NewMonitor(log *Log, pred func(*pki.Certificate) bool) *Monitor {
	return &Monitor{Log: log, Pred: pred}
}

// Poll returns entries appended since the previous Poll that match.
func (m *Monitor) Poll() []Entry {
	m.mu.Lock()
	from := m.next
	size := m.Log.Size()
	m.next = size
	m.mu.Unlock()
	return m.Log.Scan(from, size, m.Pred)
}

// Position returns the monitor's next index.
func (m *Monitor) Position() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.next
}
