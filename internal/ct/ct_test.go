package ct

import (
	"encoding/hex"
	"fmt"
	"testing"

	"whereru/internal/pki"
	"whereru/internal/simtime"
)

// testCert builds the i-th deterministic logged certificate.
func testCert(i int) *pki.Certificate {
	return &pki.Certificate{
		Serial:    uint64(i + 1),
		IssuerOrg: pki.LetsEncrypt,
		IssuerCN:  "R3",
		RootOrg:   pki.LetsEncrypt,
		SubjectCN: fmt.Sprintf("cert%04d.ru.", i),
		SANs:      []string{fmt.Sprintf("cert%04d.ru.", i)},
		NotBefore: 19000,
		NotAfter:  19090,
		Logged:    true,
	}
}

func buildLog(t testing.TB, n int) *Log {
	t.Helper()
	l := NewLog("test")
	for i := 0; i < n; i++ {
		if _, err := l.Append(testCert(i), simtime.Day(19000+i)); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestEmptyRootKnownValue(t *testing.T) {
	// RFC 6962: the empty tree hash is SHA-256 of the empty string.
	want := "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
	if got := hex.EncodeToString(func() []byte { h := EmptyRoot(); return h[:] }()); got != want {
		t.Fatalf("empty root = %s", got)
	}
	l := NewLog("empty")
	head := l.Head()
	if head.Size != 0 || hex.EncodeToString(head.Root[:]) != want {
		t.Fatalf("empty log head = %+v", head)
	}
}

func TestAppendAndEntry(t *testing.T) {
	l := buildLog(t, 10)
	if l.Size() != 10 {
		t.Fatalf("Size = %d", l.Size())
	}
	e, err := l.Entry(7)
	if err != nil || e.Cert.SubjectCN != "cert0007.ru." || e.Index != 7 {
		t.Fatalf("Entry(7) = %+v, %v", e, err)
	}
	if _, err := l.Entry(10); err == nil {
		t.Fatal("out-of-range Entry succeeded")
	}
	if _, err := l.Entry(-1); err == nil {
		t.Fatal("negative Entry succeeded")
	}
	// Not-logged certificates are rejected.
	c := testCert(99)
	c.Logged = false
	if _, err := l.Append(c, 0); err == nil {
		t.Fatal("unlogged certificate appended")
	}
}

func TestRootChangesOnAppend(t *testing.T) {
	l := NewLog("t")
	prev := l.Head().Root
	for i := 0; i < 20; i++ {
		if _, err := l.Append(testCert(i), 0); err != nil {
			t.Fatal(err)
		}
		cur := l.Head().Root
		if cur == prev {
			t.Fatalf("root unchanged after append %d", i)
		}
		prev = cur
	}
}

func TestInclusionProofsAllLeavesAllSizes(t *testing.T) {
	const maxN = 65 // crosses several power-of-two boundaries
	l := buildLog(t, maxN)
	for n := int64(1); n <= maxN; n++ {
		root, err := l.RootAt(n)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < n; i++ {
			proof, err := l.InclusionProof(i, n)
			if err != nil {
				t.Fatalf("InclusionProof(%d,%d): %v", i, n, err)
			}
			leaf := testCert(int(i)).Marshal()
			if !VerifyInclusion(leaf, i, n, proof, root) {
				t.Fatalf("inclusion proof failed for leaf %d in tree %d", i, n)
			}
			// Tampered leaf must fail.
			bad := append([]byte(nil), leaf...)
			bad[0] ^= 0xFF
			if VerifyInclusion(bad, i, n, proof, root) {
				t.Fatalf("tampered leaf verified for %d/%d", i, n)
			}
			// Wrong index must fail.
			if n > 1 && VerifyInclusion(leaf, (i+1)%n, n, proof, root) {
				t.Fatalf("wrong-index proof verified for %d/%d", i, n)
			}
		}
	}
}

func TestInclusionProofRangeErrors(t *testing.T) {
	l := buildLog(t, 5)
	for _, c := range []struct{ idx, size int64 }{{-1, 5}, {5, 5}, {0, 6}, {3, 2}} {
		if _, err := l.InclusionProof(c.idx, c.size); err == nil {
			t.Errorf("InclusionProof(%d,%d) succeeded", c.idx, c.size)
		}
	}
	if VerifyInclusion(nil, 0, 0, nil, EmptyRoot()) {
		t.Error("inclusion in empty tree verified")
	}
}

func TestConsistencyProofsAllPairs(t *testing.T) {
	const maxN = 40
	l := buildLog(t, maxN)
	roots := make([]Hash, maxN+1)
	for n := int64(0); n <= maxN; n++ {
		r, err := l.RootAt(n)
		if err != nil {
			t.Fatal(err)
		}
		roots[n] = r
	}
	for m := int64(0); m <= maxN; m++ {
		for n := m; n <= maxN; n++ {
			proof, err := l.ConsistencyProof(m, n)
			if err != nil {
				t.Fatalf("ConsistencyProof(%d,%d): %v", m, n, err)
			}
			if !VerifyConsistency(m, n, roots[m], roots[n], proof) {
				t.Fatalf("consistency proof failed for %d → %d", m, n)
			}
			// A wrong old root must fail (except the vacuous m==0 case,
			// where RFC 9162 does not bind the old root).
			if m > 0 {
				bad := roots[m]
				bad[3] ^= 0x40
				if VerifyConsistency(m, n, bad, roots[n], proof) {
					t.Fatalf("bad old root verified for %d → %d", m, n)
				}
			}
			if m > 0 && m < n {
				bad := roots[n]
				bad[7] ^= 0x01
				if VerifyConsistency(m, n, roots[m], bad, proof) {
					t.Fatalf("bad new root verified for %d → %d", m, n)
				}
			}
		}
	}
}

func TestConsistencyProofRangeErrors(t *testing.T) {
	l := buildLog(t, 5)
	if _, err := l.ConsistencyProof(4, 3); err == nil {
		t.Error("m>n accepted")
	}
	if _, err := l.ConsistencyProof(0, 9); err == nil {
		t.Error("n>size accepted")
	}
	if VerifyConsistency(3, 2, Hash{}, Hash{}, nil) {
		t.Error("m>n verified")
	}
}

func TestMemoMatchesNoMemo(t *testing.T) {
	a := buildLog(t, 131)
	b := buildLog(t, 131)
	b.UseMemo = false
	for n := int64(0); n <= 131; n += 13 {
		ra, _ := a.RootAt(n)
		rb, _ := b.RootAt(n)
		if ra != rb {
			t.Fatalf("memoized root differs at size %d", n)
		}
	}
}

func TestScanAndMonitor(t *testing.T) {
	l := buildLog(t, 30)
	even := func(c *pki.Certificate) bool { return c.Serial%2 == 0 }
	got := l.Scan(0, 30, even)
	if len(got) != 15 {
		t.Fatalf("Scan matched %d, want 15", len(got))
	}
	// Out-of-range scan bounds are clamped.
	if got := l.Scan(-5, 999, nil); len(got) != 30 {
		t.Fatalf("clamped Scan = %d", len(got))
	}

	m := NewMonitor(l, even)
	if first := m.Poll(); len(first) != 15 {
		t.Fatalf("first Poll = %d", len(first))
	}
	if again := m.Poll(); len(again) != 0 {
		t.Fatalf("second Poll = %d, want 0", len(again))
	}
	if _, err := l.Append(testCert(100), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(testCert(101), 0); err != nil {
		t.Fatal(err)
	}
	inc := m.Poll()
	if len(inc) != 1 || inc[0].Cert.Serial != 102 {
		t.Fatalf("incremental Poll = %+v", inc)
	}
	if m.Position() != 32 {
		t.Fatalf("Position = %d", m.Position())
	}
}

func TestHeadTimestamp(t *testing.T) {
	l := NewLog("t")
	if _, err := l.Append(testCert(0), simtime.MustParse("2022-01-05")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(testCert(1), simtime.MustParse("2022-02-06")); err != nil {
		t.Fatal(err)
	}
	head := l.Head()
	if head.Size != 2 || head.Timestamp != simtime.MustParse("2022-02-06") {
		t.Fatalf("Head = %+v", head)
	}
}

func BenchmarkAppend(b *testing.B) {
	l := NewLog("bench")
	certs := make([]*pki.Certificate, 1024)
	for i := range certs {
		certs[i] = testCert(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(certs[i%1024], 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRootMemoized(b *testing.B) {
	l := buildLog(b, 4096)
	if _, err := l.RootAt(4096); err != nil { // warm the memo
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.RootAt(4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRootUnmemoized(b *testing.B) {
	l := buildLog(b, 4096)
	l.UseMemo = false
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.RootAt(4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInclusionProof(b *testing.B) {
	l := buildLog(b, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.InclusionProof(int64(i)%4096, 4096); err != nil {
			b.Fatal(err)
		}
	}
}
