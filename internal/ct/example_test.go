package ct_test

import (
	"fmt"

	"whereru/internal/ct"
	"whereru/internal/pki"
)

// ExampleLog shows the auditor flow: append certificates, fetch a signed
// tree head, and verify an inclusion proof against it.
func ExampleLog() {
	log := ct.NewLog("example-log")
	log.SetKey([]byte("auditor-key"))
	ca := pki.NewCA(1, pki.LetsEncrypt, []string{"R3"}, 90)

	var leaf []byte
	for i := 0; i < 5; i++ {
		cert, _ := ca.Issue(19000, fmt.Sprintf("site%d.ru", i))
		idx, _ := log.Append(cert, 19000)
		if idx == 2 {
			leaf = cert.Marshal()
		}
	}
	sth, _ := log.SignedHead()
	fmt.Println("head verified:", ct.VerifySignedHead(sth, []byte("auditor-key")))

	proof, _ := log.InclusionProof(2, sth.Size)
	fmt.Println("inclusion verified:", ct.VerifyInclusion(leaf, 2, sth.Size, proof, sth.Root))
	// Output:
	// head verified: true
	// inclusion verified: true
}

// ExampleMonitor tails a log for Russian-domain certificates, as the
// paper's Censys-indexed pipeline does.
func ExampleMonitor() {
	log := ct.NewLog("example-log")
	ca := pki.NewCA(1, pki.LetsEncrypt, []string{"R3"}, 90)
	for _, name := range []string{"bank.ru", "shop.com", "пример.рф"} {
		cert, _ := ca.Issue(19000, name)
		log.Append(cert, 19000)
	}
	m := ct.NewMonitor(log, func(c *pki.Certificate) bool { return c.MatchesRussianTLD() })
	for _, e := range m.Poll() {
		fmt.Println(e.Cert.SubjectCN)
	}
	// Output:
	// bank.ru.
	// xn--e1afmkfd.xn--p1ai.
}
