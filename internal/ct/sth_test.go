package ct

import "testing"

func TestSignedHeadRoundTrip(t *testing.T) {
	l := buildLog(t, 17)
	key := []byte("auditor-shared-key")
	if _, err := l.SignedHead(); err == nil {
		t.Fatal("key-less log produced a signed head")
	}
	l.SetKey(key)
	sth, err := l.SignedHead()
	if err != nil {
		t.Fatal(err)
	}
	if sth.Size != 17 {
		t.Fatalf("signed head size = %d", sth.Size)
	}
	if !VerifySignedHead(sth, key) {
		t.Fatal("genuine head failed verification")
	}
	// Wrong key fails.
	if VerifySignedHead(sth, []byte("wrong")) {
		t.Fatal("wrong key verified")
	}
	if VerifySignedHead(sth, nil) {
		t.Fatal("empty key verified")
	}
}

func TestSignedHeadDetectsTampering(t *testing.T) {
	l := buildLog(t, 9)
	key := []byte("k")
	l.SetKey(key)
	sth, err := l.SignedHead()
	if err != nil {
		t.Fatal(err)
	}
	tamperedSize := sth
	tamperedSize.Size++
	if VerifySignedHead(tamperedSize, key) {
		t.Error("size tampering verified")
	}
	tamperedRoot := sth
	tamperedRoot.Root[0] ^= 1
	if VerifySignedHead(tamperedRoot, key) {
		t.Error("root tampering verified")
	}
	tamperedTS := sth
	tamperedTS.Timestamp++
	if VerifySignedHead(tamperedTS, key) {
		t.Error("timestamp tampering verified")
	}
	tamperedSig := sth
	tamperedSig.Signature[5] ^= 0x80
	if VerifySignedHead(tamperedSig, key) {
		t.Error("signature tampering verified")
	}
}

func TestSignedHeadTracksAppends(t *testing.T) {
	l := buildLog(t, 4)
	l.SetKey([]byte("k"))
	first, err := l.SignedHead()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(testCert(100), 0); err != nil {
		t.Fatal(err)
	}
	second, err := l.SignedHead()
	if err != nil {
		t.Fatal(err)
	}
	if first.Signature == second.Signature {
		t.Fatal("signature unchanged after append")
	}
	// Both heads verify, and a consistency proof links them — the full
	// auditor flow.
	key := []byte("k")
	if !VerifySignedHead(first, key) || !VerifySignedHead(second, key) {
		t.Fatal("heads failed verification")
	}
	proof, err := l.ConsistencyProof(first.Size, second.Size)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyConsistency(first.Size, second.Size, first.Root, second.Root, proof) {
		t.Fatal("consistency between signed heads failed")
	}
}
