package ct

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
)

// Signed tree heads. A real CT log signs its tree heads with an ECDSA
// key; auditors verify with the log's public key. The simulation keeps
// the same trust topology with an HMAC-SHA256 over the head fields: the
// log holds the key, verifiers are handed it out of band, and a forged or
// tampered head fails verification. (The point here is the protocol
// plumbing — gossiping and verifying heads — not public-key crypto.)

// SignedTreeHead is a tree head with the log's signature.
type SignedTreeHead struct {
	TreeHead
	LogID     [8]byte
	Signature [sha256.Size]byte
}

// ErrNoKey is returned when signing is requested on a key-less log.
var ErrNoKey = errors.New("ct: log has no signing key")

// SetKey installs the log's signing key (any non-empty byte string) and
// derives the log ID from it.
func (l *Log) SetKey(key []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.key = append([]byte(nil), key...)
}

func headBytes(h TreeHead, logID [8]byte) []byte {
	var b []byte
	b = append(b, logID[:]...)
	b = binary.BigEndian.AppendUint64(b, uint64(h.Size))
	b = append(b, h.Root[:]...)
	b = binary.BigEndian.AppendUint32(b, uint32(int32(h.Timestamp)))
	return b
}

// logID derives a stable identifier from the key.
func logID(key []byte) [8]byte {
	sum := sha256.Sum256(append([]byte("whereru-log-id:"), key...))
	var id [8]byte
	copy(id[:], sum[:8])
	return id
}

// SignedHead returns the current tree head, signed.
func (l *Log) SignedHead() (SignedTreeHead, error) {
	head := l.Head()
	l.mu.RLock()
	key := l.key
	l.mu.RUnlock()
	if len(key) == 0 {
		return SignedTreeHead{}, ErrNoKey
	}
	sth := SignedTreeHead{TreeHead: head, LogID: logID(key)}
	mac := hmac.New(sha256.New, key)
	mac.Write(headBytes(head, sth.LogID))
	copy(sth.Signature[:], mac.Sum(nil))
	return sth, nil
}

// VerifySignedHead checks a signed tree head against the log's key (held
// by the auditor).
func VerifySignedHead(sth SignedTreeHead, key []byte) bool {
	if len(key) == 0 || logID(key) != sth.LogID {
		return false
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(headBytes(sth.TreeHead, sth.LogID))
	expect := mac.Sum(nil)
	return hmac.Equal(expect, sth.Signature[:])
}
