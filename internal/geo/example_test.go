package geo_test

import (
	"fmt"
	"net/netip"

	"whereru/internal/geo"
	"whereru/internal/simtime"
)

// ExampleDB shows date-aware geolocation: the same address answers
// differently before and after a snapshot boundary (space that "moved").
func ExampleDB() {
	db := geo.NewDB()
	prefix := netip.MustParsePrefix("11.5.0.0/16")
	cut := simtime.Date(2022, 3, 3)
	db.Snapshot(simtime.Date(2017, 1, 1), geo.NewBuilder().Add(prefix, geo.SE))
	db.Snapshot(cut, geo.NewBuilder().Add(prefix, geo.RU))

	addr := netip.MustParseAddr("11.5.9.9")
	before, _ := db.Lookup(cut.Add(-1), addr)
	after, _ := db.Lookup(cut, addr)
	fmt.Println(before, "→", after)
	// Output: SE → RU
}
