package geo

import (
	"net/netip"
	"testing"

	"whereru/internal/simtime"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ip(s string) netip.Addr    { return netip.MustParseAddr(s) }

func TestLookupBasic(t *testing.T) {
	db := NewDB()
	b := NewBuilder().
		Add(pfx("11.0.0.0/16"), RU).
		Add(pfx("11.1.0.0/16"), US).
		Add(pfx("11.2.0.0/16"), DE)
	if err := db.Snapshot(simtime.StudyStart, b); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr string
		want string
	}{
		{"11.0.0.1", RU},
		{"11.0.255.255", RU},
		{"11.1.12.13", US},
		{"11.2.0.0", DE},
	}
	for _, c := range cases {
		got, ok := db.Lookup(simtime.StudyStart, ip(c.addr))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %q,%v want %q", c.addr, got, ok, c.want)
		}
	}
	if _, ok := db.Lookup(simtime.StudyStart, ip("12.0.0.1")); ok {
		t.Error("unmapped address resolved")
	}
	if _, ok := db.Lookup(simtime.StudyStart-1, ip("11.0.0.1")); ok {
		t.Error("lookup before first snapshot resolved")
	}
	if _, ok := db.Lookup(simtime.StudyStart, ip("2001:db8::1")); ok {
		t.Error("IPv6 lookup resolved in IPv4-only DB")
	}
}

func TestVersionedSnapshots(t *testing.T) {
	// The Netnod scenario: space that geolocates to SE until March 3,
	// 2022, then to RU.
	db := NewDB()
	cut := simtime.MustParse("2022-03-03")
	if err := db.Snapshot(simtime.StudyStart, NewBuilder().Add(pfx("11.5.0.0/16"), SE)); err != nil {
		t.Fatal(err)
	}
	if err := db.Snapshot(cut, NewBuilder().Add(pfx("11.5.0.0/16"), RU)); err != nil {
		t.Fatal(err)
	}
	if got, _ := db.Lookup(cut.Add(-1), ip("11.5.1.1")); got != SE {
		t.Errorf("day before cut = %q, want SE", got)
	}
	if got, _ := db.Lookup(cut, ip("11.5.1.1")); got != RU {
		t.Errorf("day of cut = %q, want RU", got)
	}
	if got, _ := db.Lookup(simtime.StudyEnd, ip("11.5.1.1")); got != RU {
		t.Errorf("after cut = %q, want RU", got)
	}
	days := db.Snapshots()
	if len(days) != 2 || days[0] != simtime.StudyStart || days[1] != cut {
		t.Errorf("Snapshots = %v", days)
	}
}

func TestVersionIndex(t *testing.T) {
	db := NewDB()
	cut := simtime.MustParse("2022-03-03")
	if db.Version(simtime.StudyStart) != -1 {
		t.Error("empty DB should report version -1")
	}
	if err := db.Snapshot(simtime.StudyStart, NewBuilder().Add(pfx("11.5.0.0/16"), SE)); err != nil {
		t.Fatal(err)
	}
	if err := db.Snapshot(cut, NewBuilder().Add(pfx("11.5.0.0/16"), RU)); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		day  simtime.Day
		want int
	}{
		{simtime.StudyStart - 1, -1},
		{simtime.StudyStart, 0},
		{cut - 1, 0},
		{cut, 1},
		{simtime.StudyEnd, 1},
	}
	for _, c := range cases {
		if got := db.Version(c.day); got != c.want {
			t.Errorf("Version(%s) = %d, want %d", c.day, got, c.want)
		}
	}
	// The contract the analysis memoization relies on: equal versions mean
	// equal lookup results.
	a := ip("11.5.1.1")
	g1, _ := db.Lookup(simtime.StudyStart, a)
	g2, _ := db.Lookup(cut-1, a)
	if db.Version(simtime.StudyStart) == db.Version(cut-1) && g1 != g2 {
		t.Error("same version produced different lookups")
	}
}

func TestDuplicateSnapshotRejected(t *testing.T) {
	db := NewDB()
	if err := db.Snapshot(0, NewBuilder().Add(pfx("11.0.0.0/16"), RU)); err != nil {
		t.Fatal(err)
	}
	if err := db.Snapshot(0, NewBuilder().Add(pfx("11.0.0.0/16"), US)); err == nil {
		t.Fatal("duplicate snapshot accepted")
	}
}

func TestOverridesWin(t *testing.T) {
	// A more-specific override added later must win: an anycast /24
	// inside a provider /16.
	db := NewDB()
	b := NewBuilder().
		Add(pfx("11.7.0.0/16"), RU).
		Add(pfx("11.7.9.0/24"), US)
	if err := db.Snapshot(0, b); err != nil {
		t.Fatal(err)
	}
	if got, _ := db.Lookup(0, ip("11.7.8.1")); got != RU {
		t.Errorf("outside override = %q, want RU", got)
	}
	if got, _ := db.Lookup(0, ip("11.7.9.77")); got != US {
		t.Errorf("inside override = %q, want US", got)
	}
	if got, _ := db.Lookup(0, ip("11.7.10.1")); got != RU {
		t.Errorf("after override = %q, want RU", got)
	}
}

func TestBinarySearchAgreesWithLinear(t *testing.T) {
	db := NewDB()
	countries := []string{RU, US, DE, NL, SE}
	b := NewBuilder()
	for i := 0; i < 100; i++ {
		b.Add(pfx(addr16(i)), countries[i%len(countries)])
	}
	if err := db.Snapshot(0, b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		a := ip(addrIn16(i))
		g1, ok1 := db.Lookup(0, a)
		g2, ok2 := db.LookupLinear(0, a)
		if g1 != g2 || ok1 != ok2 {
			t.Fatalf("mismatch at %v: %q,%v vs %q,%v", a, g1, ok1, g2, ok2)
		}
	}
}

func addr16(i int) string {
	return netip.AddrFrom4([4]byte{byte(20 + i/256), byte(i % 256), 0, 0}).String() + "/16"
}

func addrIn16(i int) string {
	return netip.AddrFrom4([4]byte{byte(20 + i/256), byte(i % 256), 3, 7}).String()
}

func TestEmptyBuilderSnapshot(t *testing.T) {
	db := NewDB()
	if err := db.Snapshot(0, NewBuilder()); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Lookup(0, ip("11.0.0.1")); ok {
		t.Fatal("empty snapshot resolved an address")
	}
}

func TestAdjacentRangesMerge(t *testing.T) {
	// Two adjacent /16s with the same country merge into one range.
	db := NewDB()
	b := NewBuilder().
		Add(pfx("30.0.0.0/16"), RU).
		Add(pfx("30.1.0.0/16"), RU)
	if err := db.Snapshot(0, b); err != nil {
		t.Fatal(err)
	}
	if got, ok := db.Lookup(0, ip("30.0.255.255")); !ok || got != RU {
		t.Error("first half failed")
	}
	if got, ok := db.Lookup(0, ip("30.1.0.0")); !ok || got != RU {
		t.Error("second half failed")
	}
}

func BenchmarkLookupBinary(b *testing.B) {
	db := benchDB(b)
	a := ip(addrIn16(50))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := db.Lookup(0, a); !ok {
			b.Fatal("lookup failed")
		}
	}
}

func BenchmarkLookupLinear(b *testing.B) {
	db := benchDB(b)
	a := ip(addrIn16(50))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := db.LookupLinear(0, a); !ok {
			b.Fatal("lookup failed")
		}
	}
}

func benchDB(b *testing.B) *DB {
	b.Helper()
	db := NewDB()
	builder := NewBuilder()
	countries := []string{RU, US, DE, NL, SE}
	for i := 0; i < 2000; i++ {
		builder.Add(pfx(addr16(i)), countries[i%len(countries)])
	}
	if err := db.Snapshot(0, builder); err != nil {
		b.Fatal(err)
	}
	return db
}
