// Package geo is the reproduction's IP2Location analog: a versioned
// IP-to-country database. The paper geolocates every resolved address with
// contemporaneous snapshots of a commercial database; here snapshots are
// built from the simulated address plan (plus explicit overrides for
// cases like anycast space) and queried per-date, so "where was this IP on
// 2022-03-03?" has a well-defined answer even as space moves.
package geo

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"whereru/internal/simtime"
)

// Countries used by the reproduction (ISO 3166-1 alpha-2).
const (
	RU = "RU" // Russian Federation
	US = "US"
	DE = "DE"
	NL = "NL"
	SE = "SE"
	CZ = "CZ"
	EE = "EE"
	PL = "PL"
	GB = "GB"
	JP = "JP"
)

type rangeEntry struct {
	lo, hi  uint32
	country string
}

type snapshot struct {
	from    simtime.Day
	entries []rangeEntry // sorted by lo, disjoint
}

// DB is a versioned IP-to-country database.
type DB struct {
	mu        sync.RWMutex
	snapshots []snapshot // sorted by from
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{} }

// Builder accumulates ranges for one dated snapshot.
type Builder struct {
	entries []rangeEntry
}

// NewBuilder returns an empty snapshot builder.
func NewBuilder() *Builder { return &Builder{} }

func addrToU32(a netip.Addr) uint32 {
	b := a.As4()
	return binary.BigEndian.Uint32(b[:])
}

// Add maps an IPv4 prefix to a country. Later Adds override earlier ones
// where they overlap (more-specific entries should be added last).
func (b *Builder) Add(prefix netip.Prefix, country string) *Builder {
	if !prefix.Addr().Is4() {
		return b
	}
	lo := addrToU32(prefix.Masked().Addr())
	size := uint32(1) << (32 - prefix.Bits())
	b.entries = append(b.entries, rangeEntry{lo: lo, hi: lo + size - 1, country: country})
	return b
}

// build flattens possibly-overlapping entries into disjoint sorted ranges,
// with later entries winning.
func (b *Builder) build() []rangeEntry {
	if len(b.entries) == 0 {
		return nil
	}
	// Collect cut points.
	type boundary struct{ v uint32 }
	cuts := make(map[uint32]struct{})
	for _, e := range b.entries {
		cuts[e.lo] = struct{}{}
		if e.hi != ^uint32(0) {
			cuts[e.hi+1] = struct{}{}
		}
	}
	points := make([]uint32, 0, len(cuts))
	for v := range cuts {
		points = append(points, v)
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	var out []rangeEntry
	for i, lo := range points {
		var hi uint32
		if i+1 < len(points) {
			hi = points[i+1] - 1
		} else {
			hi = ^uint32(0)
		}
		// Last matching entry wins.
		country := ""
		for j := len(b.entries) - 1; j >= 0; j-- {
			if b.entries[j].lo <= lo && hi <= b.entries[j].hi {
				country = b.entries[j].country
				break
			}
		}
		if country == "" {
			continue
		}
		// Merge with previous range when contiguous and same country.
		if n := len(out); n > 0 && out[n-1].country == country && out[n-1].hi+1 == lo {
			out[n-1].hi = hi
		} else {
			out = append(out, rangeEntry{lo: lo, hi: hi, country: country})
		}
	}
	return out
}

// Snapshot finalizes the builder into the DB as the view effective from
// the given day onward (until a later snapshot supersedes it).
func (db *DB) Snapshot(from simtime.Day, b *Builder) error {
	entries := b.build()
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, s := range db.snapshots {
		if s.from == from {
			return fmt.Errorf("geo: duplicate snapshot for %s", from)
		}
	}
	db.snapshots = append(db.snapshots, snapshot{from: from, entries: entries})
	sort.Slice(db.snapshots, func(i, j int) bool { return db.snapshots[i].from < db.snapshots[j].from })
	return nil
}

// Lookup returns the country for addr as of day. ok is false when the
// address is unmapped or the day precedes all snapshots.
func (db *DB) Lookup(day simtime.Day, addr netip.Addr) (string, bool) {
	if !addr.Is4() {
		return "", false
	}
	v := addrToU32(addr)
	db.mu.RLock()
	defer db.mu.RUnlock()
	// Latest snapshot with from <= day.
	i := sort.Search(len(db.snapshots), func(i int) bool { return db.snapshots[i].from > day })
	if i == 0 {
		return "", false
	}
	entries := db.snapshots[i-1].entries
	j := sort.Search(len(entries), func(j int) bool { return entries[j].hi >= v })
	if j < len(entries) && entries[j].lo <= v && v <= entries[j].hi {
		return entries[j].country, true
	}
	return "", false
}

// Version returns the index of the snapshot effective on day (0-based in
// snapshot order), or -1 when the day precedes all snapshots. Lookup
// results are a pure function of (Version(day), addr), which lets callers
// memoize geolocation across the piecewise-constant version windows.
func (db *DB) Version(day simtime.Day) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	i := sort.Search(len(db.snapshots), func(i int) bool { return db.snapshots[i].from > day })
	return i - 1
}

// Snapshots returns the effective-from days of all snapshots, sorted.
func (db *DB) Snapshots() []simtime.Day {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]simtime.Day, len(db.snapshots))
	for i, s := range db.snapshots {
		out[i] = s.from
	}
	return out
}

// LookupLinear is the no-index baseline used by the ablation benchmark:
// it scans the effective snapshot sequentially.
func (db *DB) LookupLinear(day simtime.Day, addr netip.Addr) (string, bool) {
	if !addr.Is4() {
		return "", false
	}
	v := addrToU32(addr)
	db.mu.RLock()
	defer db.mu.RUnlock()
	var entries []rangeEntry
	for _, s := range db.snapshots {
		if s.from <= day {
			entries = s.entries
		}
	}
	for _, e := range entries {
		if e.lo <= v && v <= e.hi {
			return e.country, true
		}
	}
	return "", false
}
