package idn

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRFTLD(t *testing.T) {
	// The headline case for this codebase: .рф must encode to xn--p1ai.
	enc, err := EncodeLabel("рф")
	if err != nil {
		t.Fatalf("EncodeLabel(рф): %v", err)
	}
	if enc != "xn--p1ai" {
		t.Fatalf("EncodeLabel(рф) = %q, want xn--p1ai", enc)
	}
	dec, err := DecodeLabel("xn--p1ai")
	if err != nil {
		t.Fatalf("DecodeLabel(xn--p1ai): %v", err)
	}
	if dec != "рф" {
		t.Fatalf("DecodeLabel(xn--p1ai) = %q, want рф", dec)
	}
}

func TestRFC3492Vectors(t *testing.T) {
	// Selected test vectors from RFC 3492 §7.1.
	cases := []struct {
		unicode string
		ascii   string
	}{
		{"ليهمابتكلموشعربي؟", "xn--egbpdaj6bu4bxfgehfvwxn"},
		{"他们为什么不说中文", "xn--ihqwcrb4cv8a8dqg056pqjye"},
		{"Pročprostěnemluvíčesky", "xn--Proprostnemluvesky-uyb24dma41a"},
		{"почемужеонинеговорятпорусски", "xn--b1abfaaepdrnnbgefbadotcwatmq2g4l"},
		{"PorquénopuedensimplementehablarenEspañol", "xn--PorqunopuedensimplementehablarenEspaol-fmd56a"},
		{"3年B組金八先生", "xn--3B-ww4c5e180e575a65lsy2b"},
		{"-> $1.00 <-", "-> $1.00 <-"},
	}
	for _, c := range cases {
		got, err := EncodeLabel(c.unicode)
		if err != nil {
			t.Errorf("EncodeLabel(%q): %v", c.unicode, err)
			continue
		}
		if !strings.EqualFold(got, c.ascii) {
			t.Errorf("EncodeLabel(%q) = %q, want %q", c.unicode, got, c.ascii)
		}
		back, err := DecodeLabel(got)
		if err != nil {
			t.Errorf("DecodeLabel(%q): %v", got, err)
			continue
		}
		if back != c.unicode {
			t.Errorf("DecodeLabel(%q) = %q, want %q", got, back, c.unicode)
		}
	}
}

func TestToASCII(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"пример.рф", "xn--e1afmkfd.xn--p1ai"},
		{"пример.рф.", "xn--e1afmkfd.xn--p1ai."},
		{"example.ru", "example.ru"},
		{"EXAMPLE.RU", "example.ru"},
		{"банк.example.ru", "xn--80ab2al.example.ru"},
		{".", "."},
		{"", ""},
	}
	for _, c := range cases {
		got, err := ToASCII(c.in)
		if err != nil {
			t.Errorf("ToASCII(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ToASCII(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestToASCIIErrors(t *testing.T) {
	if _, err := ToASCII("a..b.ru"); err == nil {
		t.Error("ToASCII with empty label should fail")
	}
	long := strings.Repeat("я", 64)
	if _, err := ToASCII(long + ".ru"); err == nil {
		t.Error("ToASCII with >63-octet encoded label should fail")
	}
}

func TestToUnicode(t *testing.T) {
	if got := ToUnicode("xn--e1afmkfd.xn--p1ai"); got != "пример.рф" {
		t.Errorf("ToUnicode = %q", got)
	}
	if got := ToUnicode("xn--e1afmkfd.xn--p1ai."); got != "пример.рф." {
		t.Errorf("ToUnicode with root dot = %q", got)
	}
	if got := ToUnicode("example.ru"); got != "example.ru" {
		t.Errorf("ToUnicode ascii passthrough = %q", got)
	}
	// Invalid ACE labels are preserved rather than dropped.
	if got := ToUnicode("xn--!!!.ru"); got != "xn--!!!.ru" {
		t.Errorf("ToUnicode invalid = %q", got)
	}
}

func TestDecodeInvalid(t *testing.T) {
	for _, s := range []string{"xn--\x80abc", "xn--999999999b", "xn--ab!cd"} {
		if _, err := DecodeLabel(s); err == nil {
			t.Errorf("DecodeLabel(%q) unexpectedly succeeded", s)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Any string of Cyrillic + ASCII letters must round-trip.
	alphabet := []rune("abcdzабвгдежзиклмнопрстуфхцчшщыэюярф")
	f := func(seed []byte) bool {
		if len(seed) == 0 || len(seed) > 20 {
			return true
		}
		runes := make([]rune, len(seed))
		for i, b := range seed {
			runes[i] = alphabet[int(b)%len(alphabet)]
		}
		label := string(runes)
		enc, err := EncodeLabel(label)
		if err != nil {
			return false
		}
		dec, err := DecodeLabel(enc)
		return err == nil && dec == label
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeLabel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := EncodeLabel("российскаяфедерация"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeLabel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := DecodeLabel("xn--p1ai"); err != nil {
			b.Fatal(err)
		}
	}
}
