package idn

import "testing"

// FuzzDecodeLabel feeds arbitrary ACE labels to the punycode decoder: no
// panics, and every successful decode must re-encode to an equivalent
// (case-normalized) label.
func FuzzDecodeLabel(f *testing.F) {
	for _, s := range []string{"xn--p1ai", "xn--e1afmkfd", "xn--", "plain", "xn--999999"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		dec, err := DecodeLabel(s)
		if err != nil {
			return
		}
		if dec == s {
			return // ASCII passthrough
		}
		re, err := EncodeLabel(dec)
		if err != nil {
			t.Fatalf("decoded %q to %q but re-encode failed: %v", s, dec, err)
		}
		back, err := DecodeLabel(re)
		if err != nil || back != dec {
			t.Fatalf("round trip unstable: %q → %q → %q → %q (%v)", s, dec, re, back, err)
		}
	})
}

// FuzzEncodeLabel feeds arbitrary Unicode labels to the encoder.
func FuzzEncodeLabel(f *testing.F) {
	for _, s := range []string{"рф", "пример", "mixed-ascii-и-кириллица", ""} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		enc, err := EncodeLabel(s)
		if err != nil {
			return
		}
		dec, err := DecodeLabel(enc)
		if err != nil {
			t.Fatalf("EncodeLabel(%q) = %q, but decode failed: %v", s, enc, err)
		}
		// Valid UTF-8 inputs must round-trip exactly.
		if validUTF8(s) && dec != s {
			t.Fatalf("round trip: %q → %q → %q", s, enc, dec)
		}
	})
}

func validUTF8(s string) bool {
	for _, r := range s {
		if r == 0xFFFD {
			return false
		}
	}
	return true
}
