// Package idn implements Punycode (RFC 3492) and the small subset of IDNA
// needed to handle internationalized domain names in the reproduction —
// most importantly the Cyrillic ccTLD .рф, whose ASCII-compatible encoding
// is xn--p1ai. Zone files and the DNS wire format carry only ASCII labels,
// so every piece of the pipeline that touches .рф names round-trips through
// this package.
package idn

import (
	"errors"
	"fmt"
	"strings"
)

// ACEPrefix is the IDNA ASCII-compatible-encoding prefix.
const ACEPrefix = "xn--"

// Punycode bootstring parameters from RFC 3492 §5.
const (
	base        = 36
	tmin        = 1
	tmax        = 26
	skew        = 38
	damp        = 700
	initialBias = 72
	initialN    = 128
)

var (
	// ErrInvalid is returned for malformed punycode input.
	ErrInvalid = errors.New("idn: invalid punycode")
	// ErrOverflow is returned when decoding would overflow the code-point space.
	ErrOverflow = errors.New("idn: punycode overflow")
)

func adapt(delta, numPoints int, firstTime bool) int {
	if firstTime {
		delta /= damp
	} else {
		delta /= 2
	}
	delta += delta / numPoints
	k := 0
	for delta > ((base-tmin)*tmax)/2 {
		delta /= base - tmin
		k += base
	}
	return k + (base-tmin+1)*delta/(delta+skew)
}

func encodeDigit(d int) byte {
	switch {
	case d < 26:
		return byte('a' + d)
	case d < 36:
		return byte('0' + d - 26)
	}
	panic("idn: internal error: digit out of range")
}

func decodeDigit(c byte) (int, bool) {
	switch {
	case '0' <= c && c <= '9':
		return int(c-'0') + 26, true
	case 'a' <= c && c <= 'z':
		return int(c - 'a'), true
	case 'A' <= c && c <= 'Z':
		return int(c - 'A'), true
	}
	return 0, false
}

// EncodeLabel punycode-encodes a single label. ASCII-only labels are
// returned unchanged (without the ACE prefix); labels containing non-ASCII
// runes are encoded and prefixed with "xn--".
func EncodeLabel(label string) (string, error) {
	ascii := true
	for _, r := range label {
		if r >= 0x80 {
			ascii = false
			break
		}
	}
	if ascii {
		return label, nil
	}
	runes := []rune(label)
	var out strings.Builder
	out.WriteString(ACEPrefix)
	basicCount := 0
	for _, r := range runes {
		if r < 0x80 {
			out.WriteByte(byte(r))
			basicCount++
		}
	}
	if basicCount > 0 {
		out.WriteByte('-')
	}
	n, delta, bias := initialN, 0, initialBias
	handled := basicCount
	for handled < len(runes) {
		m := int(^uint32(0) >> 1)
		for _, r := range runes {
			if int(r) >= n && int(r) < m {
				m = int(r)
			}
		}
		delta += (m - n) * (handled + 1)
		if delta < 0 {
			return "", ErrOverflow
		}
		n = m
		for _, r := range runes {
			if int(r) < n {
				delta++
				if delta < 0 {
					return "", ErrOverflow
				}
				continue
			}
			if int(r) > n {
				continue
			}
			q := delta
			for k := base; ; k += base {
				t := k - bias
				if t < tmin {
					t = tmin
				} else if t > tmax {
					t = tmax
				}
				if q < t {
					break
				}
				out.WriteByte(encodeDigit(t + (q-t)%(base-t)))
				q = (q - t) / (base - t)
			}
			out.WriteByte(encodeDigit(q))
			bias = adapt(delta, handled+1, handled == basicCount)
			delta = 0
			handled++
		}
		delta++
		n++
	}
	return out.String(), nil
}

// DecodeLabel decodes a single ACE label (with or without the "xn--"
// prefix back into Unicode. Labels without the prefix are returned as-is.
func DecodeLabel(label string) (string, error) {
	if !strings.HasPrefix(strings.ToLower(label), ACEPrefix) {
		return label, nil
	}
	encoded := label[len(ACEPrefix):]
	var output []rune
	pos := 0
	if i := strings.LastIndexByte(encoded, '-'); i >= 0 {
		for _, c := range []byte(encoded[:i]) {
			if c >= 0x80 {
				return "", ErrInvalid
			}
			output = append(output, rune(c))
		}
		pos = i + 1
	}
	n, i, bias := initialN, 0, initialBias
	for pos < len(encoded) {
		oldi, w := i, 1
		for k := base; ; k += base {
			if pos >= len(encoded) {
				return "", ErrInvalid
			}
			digit, ok := decodeDigit(encoded[pos])
			pos++
			if !ok {
				return "", ErrInvalid
			}
			if digit > (int(^uint32(0)>>1)-i)/w {
				return "", ErrOverflow
			}
			i += digit * w
			t := k - bias
			if t < tmin {
				t = tmin
			} else if t > tmax {
				t = tmax
			}
			if digit < t {
				break
			}
			if w > int(^uint32(0)>>1)/(base-t) {
				return "", ErrOverflow
			}
			w *= base - t
		}
		bias = adapt(i-oldi, len(output)+1, oldi == 0)
		if i/(len(output)+1) > int(^uint32(0)>>1)-n {
			return "", ErrOverflow
		}
		n += i / (len(output) + 1)
		i %= len(output) + 1
		if n > 0x10FFFF {
			return "", ErrInvalid
		}
		output = append(output, 0)
		copy(output[i+1:], output[i:])
		output[i] = rune(n)
		i++
	}
	return string(output), nil
}

// ToASCII converts a possibly-internationalized dotted domain name to its
// ASCII-compatible form, lowercasing ASCII letters. A trailing root dot is
// preserved.
func ToASCII(name string) (string, error) {
	if name == "" || name == "." {
		return name, nil
	}
	trailing := strings.HasSuffix(name, ".")
	trimmed := strings.TrimSuffix(name, ".")
	labels := strings.Split(trimmed, ".")
	for i, l := range labels {
		if l == "" {
			return "", fmt.Errorf("idn: empty label in %q", name)
		}
		enc, err := EncodeLabel(strings.ToLower(l))
		if err != nil {
			return "", fmt.Errorf("idn: encoding label %q: %w", l, err)
		}
		if len(enc) > 63 {
			return "", fmt.Errorf("idn: label %q exceeds 63 octets after encoding", l)
		}
		labels[i] = enc
	}
	out := strings.Join(labels, ".")
	if trailing {
		out += "."
	}
	return out, nil
}

// ToUnicode converts an ACE-encoded dotted domain name back to Unicode.
// Labels that fail to decode are kept in their ASCII form, matching the
// lenient behavior of browsers and measurement tooling.
func ToUnicode(name string) string {
	trailing := strings.HasSuffix(name, ".")
	trimmed := strings.TrimSuffix(name, ".")
	if trimmed == "" {
		return name
	}
	labels := strings.Split(trimmed, ".")
	for i, l := range labels {
		if dec, err := DecodeLabel(l); err == nil {
			labels[i] = dec
		}
	}
	out := strings.Join(labels, ".")
	if trailing {
		out += "."
	}
	return out
}

// RFTLDUnicode and RFTLDASCII are the two spellings of the Cyrillic
// Russian Federation ccTLD used throughout the paper.
const (
	RFTLDUnicode = "рф"
	RFTLDASCII   = "xn--p1ai"
)
