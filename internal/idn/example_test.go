package idn_test

import (
	"fmt"

	"whereru/internal/idn"
)

func ExampleToASCII() {
	ascii, _ := idn.ToASCII("пример.рф")
	fmt.Println(ascii)
	fmt.Println(idn.ToUnicode(ascii))
	// Output:
	// xn--e1afmkfd.xn--p1ai
	// пример.рф
}

func ExampleEncodeLabel() {
	enc, _ := idn.EncodeLabel("рф")
	fmt.Println(enc)
	dec, _ := idn.DecodeLabel("xn--p1ai")
	fmt.Println(dec)
	// Output:
	// xn--p1ai
	// рф
}
