package analysis

import (
	"context"
	"net/netip"
	"reflect"
	"testing"

	"whereru/internal/dns"
	"whereru/internal/geo"
	"whereru/internal/netsim"
	"whereru/internal/openintel"
	"whereru/internal/simtime"
	"whereru/internal/store"
	"whereru/internal/world"
)

// The epoch engine's contract is exact equivalence: every series it
// produces must be element-for-element identical to the per-day
// reference path, for any worker count. These tests hold it to that on
// three worlds — the full integration fixture, a lossy fault-injected
// collection, and a handcrafted dropout world with epoch gaps — at
// several shard widths, including widths that do not divide the domain
// count evenly.

var equivWorkerCounts = []int{1, 3, 8}

// assertSeriesEqual runs every analysis in both engines and requires
// exact equality.
func assertSeriesEqual(t *testing.T, an *Analyzer, days []simtime.Day, filter Filter) {
	t.Helper()
	type check struct {
		name      string
		fast, ref func() interface{}
	}
	checks := []check{
		{"NSComposition",
			func() interface{} { return an.NSCompositionSeries(days, filter) },
			func() interface{} { return an.ReferenceNSCompositionSeries(days, filter) }},
		{"HostingComposition",
			func() interface{} { return an.HostingCompositionSeries(days, filter) },
			func() interface{} { return an.referenceSeries(days, filter, hostingCompositionClassifier(an.Geo)) }},
		{"TLDDependency",
			func() interface{} { return an.TLDDependencySeries(days, filter) },
			func() interface{} { return an.referenceSeries(days, filter, tldDependencyClassifier(an.Geo)) }},
		{"MailComposition",
			func() interface{} { return an.MailCompositionSeries(days, filter) },
			func() interface{} { return an.referenceSeries(days, filter, mailCompositionClassifier(an.Geo)) }},
		{"TLDShare",
			func() interface{} { return an.TLDShareSeries(days, filter) },
			func() interface{} { return an.referenceTLDShareSeries(days, filter) }},
		{"ASNShare",
			func() interface{} { return an.ASNShareSeries(days, filter) },
			func() interface{} { return an.referenceASNShareSeries(days, filter) }},
		{"MailProvider",
			func() interface{} { return an.MailProviderSeries(days, filter) },
			func() interface{} { return an.referenceMailProviderSeries(days, filter) }},
	}
	for _, c := range checks {
		got, want := c.fast(), c.ref()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s (workers=%d): epoch engine diverges from reference\n got %+v\nwant %+v",
				c.name, an.Workers, got, want)
		}
	}
}

func TestEquivalenceOnFixture(t *testing.T) {
	f := getFixture(t)
	sanc := f.w.Sanctions
	filters := []struct {
		name string
		f    Filter
	}{
		{"all", nil},
		{"sanctioned", func(d string) bool { return sanc.ContainsEver(d) }},
	}
	for _, w := range equivWorkerCounts {
		an := &Analyzer{Store: f.store, Geo: f.w.Geo, Internet: f.w.Internet, Workers: w}
		for _, flt := range filters {
			assertSeriesEqual(t, an, f.days, flt.f)
		}
		for _, asn := range []netsim.ASN{16509, 47846, 13335, 15169} {
			got := an.MovementAnalysis(asn, world.AmazonStmtDay, simtime.StudyEnd, f.w.Registries)
			want := an.referenceMovementAnalysis(asn, world.AmazonStmtDay, simtime.StudyEnd, f.w.Registries)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("MovementAnalysis(AS%d, workers=%d) diverges\n got %+v\nwant %+v", asn, w, got, want)
			}
		}
	}
}

// TestEquivalenceOnLossyWorld repeats the check on a fault-injected
// collection: loss-induced Failed configs and retry-recovered
// measurements must flow through both engines identically.
func TestEquivalenceOnLossyWorld(t *testing.T) {
	w, err := world.Build(world.Config{Seed: 20220224, Scale: 20000, RFShare: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	resolver, _ := w.NewFaultyResolver(7, dns.FaultProfile{Loss: 0.15, ServFail: 0.05})
	st := store.New()
	pipe := &openintel.Pipeline{
		Resolver:  resolver,
		Seeds:     w.Registries,
		Clock:     w.Clock(),
		Store:     st,
		Workers:   4,
		CollectMX: true,
	}
	days := []simtime.Day{
		simtime.StudyStart,
		simtime.Date(2022, 2, 20),
		simtime.ConflictStart,
		simtime.Date(2022, 3, 4),
		simtime.Date(2022, 3, 12),
		simtime.StudyEnd,
	}
	if _, err := pipe.Run(context.Background(), days); err != nil {
		t.Fatal(err)
	}
	// Also probe days the sweep never ran on: carry-forward and
	// before-first-measurement behavior must match too.
	probe := append(append([]simtime.Day{simtime.StudyStart - 10}, days...),
		simtime.Date(2022, 3, 5), simtime.StudyEnd+10)
	for _, workers := range equivWorkerCounts {
		an := &Analyzer{Store: st, Geo: w.Geo, Internet: w.Internet, Workers: workers}
		assertSeriesEqual(t, an, probe, nil)
		got := an.MovementAnalysis(47846, simtime.ConflictStart, simtime.StudyEnd, w.Registries)
		want := an.referenceMovementAnalysis(47846, simtime.ConflictStart, simtime.StudyEnd, w.Registries)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("lossy MovementAnalysis (workers=%d) diverges\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestEquivalenceOnDropoutWorld hand-builds the store shapes the fixture
// rarely produces in bulk: epoch gaps (a domain missing sweeps in the
// middle of its life), zone dropout, failed measurements, and a geo
// snapshot boundary mid-window so classification genuinely varies by
// day for a fixed config.
func TestEquivalenceOnDropoutWorld(t *testing.T) {
	an, st, ru, us := unitAnalyzer(t)
	// Second geo snapshot at day 50 swaps the countries, so every
	// geo-dependent classification flips mid-window.
	in := an.Internet
	b := geo.NewBuilder()
	for _, alloc := range in.Allocations() {
		as, _ := in.Lookup(alloc.ASN)
		country := geo.RU
		if as.Country == geo.RU {
			country = geo.US
		}
		b.Add(alloc.Prefix, country)
	}
	if err := an.Geo.Snapshot(50, b); err != nil {
		t.Fatal(err)
	}

	ruNS := store.Config{NSHosts: []string{"ns.a.ru."}, NSAddrs: []netip.Addr{ru},
		ApexAddrs: []netip.Addr{ru}, MXHosts: []string{"mx.yandex.net."}}
	usNS := store.Config{NSHosts: []string{"ns.b.com."}, NSAddrs: []netip.Addr{us},
		ApexAddrs: []netip.Addr{us}, MXHosts: []string{"mx.google.com."}}
	mixed := store.Config{NSHosts: []string{"ns.a.ru.", "ns.b.com."}, NSAddrs: []netip.Addr{ru, us},
		ApexAddrs: []netip.Addr{ru, us}}
	failed := store.Config{Failed: true}
	// Per-domain life stories, keyed by sweep day; a missing sweep is an
	// epoch gap (or zone dropout at the tail).
	lives := map[string]map[simtime.Day]store.Config{
		"steady.ru.":  {10: ruNS, 20: ruNS, 30: ruNS, 40: ruNS, 60: ruNS, 70: ruNS},
		"gap.ru.":     {10: usNS, 40: usNS, 70: usNS}, // carries across gaps
		"dropout.ru.": {10: mixed, 20: mixed},         // leaves the zone after 20
		"late.ru.":    {60: ruNS, 70: usNS},           // appears mid-study
		"flaky.ru.":   {10: ruNS, 20: failed, 30: ruNS, 60: failed, 70: usNS},
		"moved.ru.":   {10: usNS, 20: usNS, 30: ruNS, 40: ruNS, 60: ruNS, 70: ruNS},
	}
	// Deterministic insertion order so the store's contents don't depend
	// on map iteration.
	names := []string{"steady.ru.", "gap.ru.", "dropout.ru.", "late.ru.", "flaky.ru.", "moved.ru."}
	for _, day := range []simtime.Day{10, 20, 30, 40, 60, 70} {
		st.BeginSweep(day)
		for _, name := range names {
			if cfg, ok := lives[name][day]; ok {
				st.Add(store.Measurement{Domain: name, Day: day, Config: cfg})
			}
		}
	}

	// Probe every behavior class: before any sweep, on sweeps, between
	// sweeps (carry-forward), inside the gap, across the geo flip at 50,
	// and past the last sweep.
	probe := []simtime.Day{5, 10, 15, 20, 25, 30, 40, 45, 50, 55, 60, 65, 70, 75}
	for _, workers := range equivWorkerCounts {
		an.Workers = workers
		assertSeriesEqual(t, an, probe, nil)
		only := func(d string) bool { return d == "gap.ru." || d == "flaky.ru." }
		assertSeriesEqual(t, an, probe, only)
	}
}
