package analysis

import (
	"net/netip"
	"runtime"
	"sort"
	"sync"

	"whereru/internal/simtime"
	"whereru/internal/store"
)

// The epoch engine is the analysis fast path. The per-day path walks the
// whole store once per requested day — rebuilding the domain list,
// re-locking and re-classifying every domain each time — even though
// domain configurations are piecewise-constant epochs, the very insight
// the store's compression encodes. The engine instead captures one
// read-only store snapshot, shards the sorted domain list over a worker
// pool, visits each domain's epochs intersected with the requested days,
// classifies once per (domain, epoch, geo-version window), and
// accumulates results into per-shard difference arrays over the day axis.
// Shard results merge by addition, so the output is deterministic and
// element-for-element identical to the reference per-day path (the
// equivalence tests assert exactly that).

// workers returns the shard count: Analyzer.Workers, defaulting to the
// machine's CPU count.
func (a *Analyzer) workers() int {
	if a.Workers > 0 {
		return a.Workers
	}
	return runtime.NumCPU()
}

// shard partitions [0, n) into contiguous ranges and runs fn(shard, lo,
// hi) on each concurrently, returning when all complete.
func (a *Analyzer) shard(n int, fn func(shard, lo, hi int)) int {
	w := a.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(0, 0, n)
		return 1
	}
	var wg sync.WaitGroup
	for s := 0; s < w; s++ {
		lo, hi := s*n/w, (s+1)*n/w
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			fn(s, lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
	return w
}

// geoLookup is the geolocation dependency of the classifiers. geo.DB
// satisfies it directly (the reference path); shard workers wrap it in a
// memoizing geoCache (the fast path).
type geoLookup interface {
	Lookup(day simtime.Day, addr netip.Addr) (string, bool)
}

// versionedGeo is the part of geo.DB the cache needs beyond Lookup.
type versionedGeo interface {
	geoLookup
	Version(day simtime.Day) int
}

// geoCache memoizes country lookups keyed by (geo DB version, addr): the
// database is versioned in dated snapshots, so within one version window
// a lookup is a pure function of the address. Each shard worker owns one
// cache, so no locking is needed.
type geoCache struct {
	db      versionedGeo
	curDay  simtime.Day
	curVer  int
	haveDay bool
	memo    map[geoKey]geoVal
}

type geoKey struct {
	ver  int
	addr netip.Addr
}

type geoVal struct {
	country string
	ok      bool
}

func newGeoCache(db versionedGeo) *geoCache {
	return &geoCache{db: db, memo: map[geoKey]geoVal{}}
}

func (g *geoCache) Lookup(day simtime.Day, addr netip.Addr) (string, bool) {
	if !g.haveDay || day != g.curDay {
		g.curDay, g.curVer, g.haveDay = day, g.db.Version(day), true
	}
	k := geoKey{ver: g.curVer, addr: addr}
	if v, hit := g.memo[k]; hit {
		return v.country, v.ok
	}
	country, ok := g.db.Lookup(day, addr)
	g.memo[k] = geoVal{country: country, ok: ok}
	return country, ok
}

// classifierFor builds a day-wise composition classifier bound to a geo
// lookup. Classifiers must be pure: for a fixed config, the result may
// change across days only when the geo version changes.
type classifierFor func(g geoLookup) func(day simtime.Day, cfg store.Config) Composition

// segment is a maximal run of day indices sharing one geo version, so a
// classification made for any day inside it holds across all of it.
type segment struct{ lo, hi int }

// geoSegments splits the day axis at geolocation snapshot boundaries.
func (a *Analyzer) geoSegments(days []simtime.Day) []segment {
	if a.Geo == nil {
		return []segment{{lo: 0, hi: len(days)}}
	}
	var segs []segment
	for i := 0; i < len(days); {
		v := a.Geo.Version(days[i])
		j := i + 1
		for j < len(days) && a.Geo.Version(days[j]) == v {
			j++
		}
		segs = append(segs, segment{lo: i, hi: j})
		i = j
	}
	return segs
}

// sortDays returns the day axis in ascending order plus, when the input
// was not already sorted, the mapping from sorted index to original
// index. The epoch visitor's interval searches require an ascending
// axis, but the public series methods accept days in any order, exactly
// like the reference path.
func sortDays(days []simtime.Day) ([]simtime.Day, []int) {
	for i := 1; i < len(days); i++ {
		if days[i] < days[i-1] {
			perm := make([]int, len(days))
			for j := range perm {
				perm[j] = j
			}
			sort.Slice(perm, func(a, b int) bool { return days[perm[a]] < days[perm[b]] })
			sorted := make([]simtime.Day, len(days))
			for si, oi := range perm {
				sorted[si] = days[oi]
			}
			return sorted, perm
		}
	}
	return days, nil
}

// epochSeries computes a composition series with the epoch engine; it is
// the fast-path equivalent of referenceSeries.
func (a *Analyzer) epochSeries(days []simtime.Day, filter Filter, mk classifierFor) []Point {
	out := make([]Point, 0, len(days))
	if len(days) == 0 {
		return out
	}
	days, perm := sortDays(days)
	snap := a.Store.Snapshot()
	segs := a.geoSegments(days)
	n := snap.NumDomains()

	// Per-shard difference arrays over the day axis, one per class.
	const nClasses = 5 // Full, Part, Non, Unknown, Total
	type acc [nClasses][]int
	shards := make([]acc, a.workers())
	used := a.shard(n, func(shard, lo, hi int) {
		d := &shards[shard]
		for c := range d {
			d[c] = make([]int, len(days)+1)
		}
		classify := mk(newGeoCache(a.Geo))
		curDomain, keep := "", true
		snap.VisitEpochs(days, lo, hi, func(domain string, cfg store.Config, elo, ehi int) {
			if filter != nil {
				if domain != curDomain {
					curDomain, keep = domain, filter(domain)
				}
				if !keep {
					return
				}
			}
			d[4][elo]++
			d[4][ehi]--
			// Classify once per geo-version window the epoch overlaps.
			for _, sg := range segs {
				l, h := max(elo, sg.lo), min(ehi, sg.hi)
				if l >= h {
					continue
				}
				c := classify(days[l], cfg)
				idx := 3 // Unknown
				switch c {
				case CompFull:
					idx = 0
				case CompPart:
					idx = 1
				case CompNon:
					idx = 2
				}
				d[idx][l]++
				d[idx][h]--
			}
		})
	})

	// Deterministic merge: sum the shard deltas, then prefix-sum along the
	// day axis.
	sweeps := snap.Sweeps()
	var run [nClasses]int
	for i, day := range days {
		p := Point{Day: day, Interpolated: !sweptDay(sweeps, day)}
		for c := 0; c < nClasses; c++ {
			for s := 0; s < used; s++ {
				if shards[s][c] != nil {
					run[c] += shards[s][c][i]
				}
			}
		}
		p.Full, p.Part, p.Non, p.Unknown, p.Total = run[0], run[1], run[2], run[3], run[4]
		out = append(out, p)
	}
	if perm != nil {
		res := make([]Point, len(out))
		for si, oi := range perm {
			res[oi] = out[si]
		}
		return res
	}
	return out
}

// referenceSeries is the original per-day path: one full store walk per
// requested day. It is retained as the equivalence oracle for the epoch
// engine and as the naive side of the series ablation benchmarks; the
// production entry points all run the epoch engine.
func (a *Analyzer) referenceSeries(days []simtime.Day, filter Filter, classify func(simtime.Day, store.Config) Composition) []Point {
	out := make([]Point, 0, len(days))
	sweeps := a.Store.Sweeps()
	for _, day := range days {
		p := Point{Day: day, Interpolated: !sweptDay(sweeps, day)}
		a.Store.ForEachAt(day, func(domain string, cfg store.Config) {
			if filter != nil && !filter(domain) {
				return
			}
			p.Total++
			switch classify(day, cfg) {
			case CompFull:
				p.Full++
			case CompPart:
				p.Part++
			case CompNon:
				p.Non++
			default:
				p.Unknown++
			}
		})
		out = append(out, p)
	}
	return out
}

// epochShareSeries is the epoch engine for keyed share series (Figures 3
// and 4, mail operators): per day it produces the population size, an
// optional subpopulation size, and per-key domain counts. include selects
// configs that count toward the population; subpop (optional) selects the
// subpopulation; keysOf appends a config's distinct keys to dst. Keys may
// not depend on the day.
func epochShareSeries[K comparable](a *Analyzer, days []simtime.Day, filter Filter,
	include func(cfg store.Config) bool,
	subpop func(cfg store.Config) bool,
	keysOf func(cfg store.Config, dst []K) []K,
) (totals, subs []int, counts []map[K]int) {
	totals = make([]int, len(days))
	subs = make([]int, len(days))
	counts = make([]map[K]int, len(days))
	for i := range counts {
		counts[i] = make(map[K]int)
	}
	if len(days) == 0 {
		return totals, subs, counts
	}
	days, perm := sortDays(days)
	snap := a.Store.Snapshot()
	n := snap.NumDomains()

	type acc struct {
		dTotal, dSub []int
		dKey         map[K][]int
	}
	shards := make([]acc, a.workers())
	used := a.shard(n, func(shard, lo, hi int) {
		d := &shards[shard]
		d.dTotal = make([]int, len(days)+1)
		d.dSub = make([]int, len(days)+1)
		d.dKey = make(map[K][]int)
		var scratch []K
		curDomain, keep := "", true
		snap.VisitEpochs(days, lo, hi, func(domain string, cfg store.Config, elo, ehi int) {
			if filter != nil {
				if domain != curDomain {
					curDomain, keep = domain, filter(domain)
				}
				if !keep {
					return
				}
			}
			if !include(cfg) {
				return
			}
			d.dTotal[elo]++
			d.dTotal[ehi]--
			if subpop != nil {
				if !subpop(cfg) {
					return
				}
				d.dSub[elo]++
				d.dSub[ehi]--
			}
			scratch = keysOf(cfg, scratch[:0])
			for _, k := range scratch {
				dk := d.dKey[k]
				if dk == nil {
					dk = make([]int, len(days)+1)
					d.dKey[k] = dk
				}
				dk[elo]++
				dk[ehi]--
			}
		})
	})

	// Merge the shard deltas, then prefix-sum each key's axis. Zero-count
	// days are omitted from the maps, matching the per-day reference path.
	merged := make(map[K][]int)
	for s := 0; s < used; s++ {
		for i := range days {
			totals[i] += shards[s].dTotal[i]
			subs[i] += shards[s].dSub[i]
		}
		for k, dk := range shards[s].dKey {
			mk := merged[k]
			if mk == nil {
				mk = make([]int, len(days)+1)
				merged[k] = mk
			}
			for i := range dk {
				mk[i] += dk[i]
			}
		}
	}
	for i := 1; i < len(days); i++ {
		totals[i] += totals[i-1]
		subs[i] += subs[i-1]
	}
	for k, mk := range merged {
		run := 0
		for i := range days {
			run += mk[i]
			if run > 0 {
				counts[i][k] = run
			}
		}
	}
	if perm != nil {
		rt := make([]int, len(days))
		rs := make([]int, len(days))
		rc := make([]map[K]int, len(days))
		for si, oi := range perm {
			rt[oi], rs[oi], rc[oi] = totals[si], subs[si], counts[si]
		}
		return rt, rs, rc
	}
	return totals, subs, counts
}

// sweptDay reports whether day is one of the (sorted) recorded sweep
// days. A series point on a day no sweep covered is carry-forward data
// and gets flagged Interpolated.
func sweptDay(sweeps []simtime.Day, day simtime.Day) bool {
	i := sort.Search(len(sweeps), func(i int) bool { return sweeps[i] >= day })
	return i < len(sweeps) && sweeps[i] == day
}

// uniqueAppend appends k to dst unless already present (key sets per
// config are tiny, so a linear scan beats a map).
func uniqueAppend[K comparable](dst []K, k K) []K {
	for _, have := range dst {
		if have == k {
			return dst
		}
	}
	return append(dst, k)
}
