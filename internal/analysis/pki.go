package analysis

import (
	"sort"

	"whereru/internal/ct"
	"whereru/internal/dns"
	"whereru/internal/pki"
	"whereru/internal/sanctions"
	"whereru/internal/scan"
	"whereru/internal/simtime"
)

// IssuerCount pairs a CA organization with a certificate count.
type IssuerCount struct {
	Org   string
	Count int
}

// PeriodIssuance is one period's issuance breakdown (one column group of
// Table 1).
type PeriodIssuance struct {
	Period simtime.Period
	Days   int
	Total  int
	// Issuers is sorted by count, descending.
	Issuers []IssuerCount
}

// PerDay returns the average certificates per day in the period.
func (p PeriodIssuance) PerDay() float64 {
	if p.Days == 0 {
		return 0
	}
	return float64(p.Total) / float64(p.Days)
}

// Share returns an issuer's share of the period's issuance, in percent.
func (p PeriodIssuance) Share(org string) float64 {
	for _, ic := range p.Issuers {
		if ic.Org == org {
			return pct(ic.Count, p.Total)
		}
	}
	return 0
}

// russianCert reports whether a certificate secures a .ru/.рф name
// (the paper's footnote-6 match criterion).
func russianCert(c *pki.Certificate) bool { return c.MatchesRussianTLD() }

// IssuanceByPeriod computes Table 1 from the CT log: certificates for
// Russian domains per period, per issuing CA.
func IssuanceByPeriod(log *ct.Log) []PeriodIssuance {
	byPeriod := map[simtime.Period]map[string]int{}
	for _, e := range log.Scan(0, log.Size(), russianCert) {
		if e.Timestamp < simtime.CTWindowStart || e.Timestamp > simtime.CTWindowEnd {
			continue
		}
		p := simtime.PeriodOf(e.Timestamp)
		if byPeriod[p] == nil {
			byPeriod[p] = make(map[string]int)
		}
		byPeriod[p][e.Cert.IssuerOrg]++
	}
	lengths := map[simtime.Period]int{
		simtime.PreConflict:   simtime.ConflictStart.Sub(simtime.CTWindowStart),
		simtime.PreSanctions:  simtime.SanctionsInEffect.Sub(simtime.ConflictStart),
		simtime.PostSanctions: simtime.CTWindowEnd.Sub(simtime.SanctionsInEffect) + 1,
	}
	out := make([]PeriodIssuance, 0, 3)
	for _, period := range []simtime.Period{simtime.PreConflict, simtime.PreSanctions, simtime.PostSanctions} {
		pi := PeriodIssuance{Period: period, Days: lengths[period]}
		for org, n := range byPeriod[period] {
			pi.Issuers = append(pi.Issuers, IssuerCount{Org: org, Count: n})
			pi.Total += n
		}
		sort.Slice(pi.Issuers, func(i, j int) bool {
			if pi.Issuers[i].Count != pi.Issuers[j].Count {
				return pi.Issuers[i].Count > pi.Issuers[j].Count
			}
			return pi.Issuers[i].Org < pi.Issuers[j].Org
		})
		out = append(out, pi)
	}
	return out
}

// Timeline is Figure 8's data for one CA: the set of days with at least
// one new certificate for a Russian domain.
type Timeline struct {
	Org        string
	Total      int
	ActiveDays map[simtime.Day]bool
	// LastActive is the final issuance day in the window.
	LastActive simtime.Day
}

// StoppedBy reports whether the CA shows no issuance on or after day
// (used to count "six of the ten top CAs stopped issuing altogether").
func (t Timeline) StoppedBy(day simtime.Day) bool { return t.LastActive < day }

// IssuanceTimelines computes Figure 8 for the top-k CAs by volume.
func IssuanceTimelines(log *ct.Log, k int) []Timeline {
	byOrg := map[string]*Timeline{}
	for _, e := range log.Scan(0, log.Size(), russianCert) {
		if e.Timestamp < simtime.CTWindowStart || e.Timestamp > simtime.CTWindowEnd {
			continue
		}
		t := byOrg[e.Cert.IssuerOrg]
		if t == nil {
			t = &Timeline{Org: e.Cert.IssuerOrg, ActiveDays: make(map[simtime.Day]bool)}
			byOrg[e.Cert.IssuerOrg] = t
		}
		t.Total++
		t.ActiveDays[e.Timestamp] = true
		if e.Timestamp > t.LastActive {
			t.LastActive = e.Timestamp
		}
	}
	out := make([]Timeline, 0, len(byOrg))
	for _, t := range byOrg {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Org < out[j].Org
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// RevocationRow is one CA's row of Table 2.
type RevocationRow struct {
	Org string
	// Issued/Revoked cover certificates for .ru/.рф domains whose
	// validity ended after 2022-02-25 (the paper's criterion).
	Issued  int
	Revoked int
	// SancIssued/SancRevoked restrict to sanctioned domains.
	SancIssued  int
	SancRevoked int
}

// RevokedPct returns the overall revocation rate in percent.
func (r RevocationRow) RevokedPct() float64 { return pct(r.Revoked, r.Issued) }

// SancRevokedPct returns the sanctioned-domain revocation rate.
func (r RevocationRow) SancRevokedPct() float64 { return pct(r.SancRevoked, r.SancIssued) }

// CRLSource exposes per-CA revocation state; pki.Store satisfies it.
type CRLSource interface {
	CRL(issuerOrg string) *pki.CRL
}

// RevocationStats computes Table 2: per CA, Russian-domain certificates
// issued (validity ending after Feb 25, 2022) and revoked, with the
// sanctioned-domain subset, ranked by revocation count.
func RevocationStats(log *ct.Log, crls CRLSource, sanc *sanctions.List, topK int) []RevocationRow {
	cutoff := simtime.Date(2022, 2, 25)
	rows := map[string]*RevocationRow{}
	status := map[string]*pki.CRL{}
	for _, e := range log.Scan(0, log.Size(), russianCert) {
		c := e.Cert
		if c.NotAfter <= cutoff {
			continue
		}
		row := rows[c.IssuerOrg]
		if row == nil {
			row = &RevocationRow{Org: c.IssuerOrg}
			rows[c.IssuerOrg] = row
		}
		crl := status[c.IssuerOrg]
		if crl == nil {
			crl = crls.CRL(c.IssuerOrg)
			status[c.IssuerOrg] = crl
		}
		revoked := crl.Status(c.Serial, simtime.CTWindowEnd) == pki.OCSPRevoked
		sanctioned := certSanctioned(c, sanc)
		row.Issued++
		if revoked {
			row.Revoked++
		}
		if sanctioned {
			row.SancIssued++
			if revoked {
				row.SancRevoked++
			}
		}
	}
	out := make([]RevocationRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Revoked != out[j].Revoked {
			return out[i].Revoked > out[j].Revoked
		}
		return out[i].Org < out[j].Org
	})
	if topK > 0 && topK < len(out) {
		out = out[:topK]
	}
	return out
}

func certSanctioned(c *pki.Certificate, sanc *sanctions.List) bool {
	for _, n := range c.Names() {
		if sanc.ContainsEver(n) {
			return true
		}
	}
	return false
}

// RussianCAReport is the §4.3 analysis of the Russian Trusted Root CA,
// computed from scan data (the CA does not log to CT).
type RussianCAReport struct {
	// UniqueCerts is the number of distinct certificates observed.
	UniqueCerts int
	// RuDomains / RFDomains are distinct .ru / .рф names secured.
	RuDomains int
	RFDomains int
	// OtherTLDNames are secured names under all other TLDs.
	OtherTLDNames int
	// SanctionedCerts is the count of certificates securing sanctioned
	// domains; SanctionedDomains the distinct domains covered.
	SanctionedCerts   int
	SanctionedDomains int
	// BackdropCerts counts unique certificates from all other CAs in the
	// same scans (the paper's ">800k" contrast).
	BackdropCerts int
}

// RussianCAImpact computes the §4.3 report from a scan archive.
func RussianCAImpact(archive *scan.Archive, sanc *sanctions.List) RussianCAReport {
	var rep RussianCAReport
	fromRTR := func(c *pki.Certificate) bool { return c.RootOrg == pki.RussianTrustedRootCA }
	ruSeen, rfSeen, otherSeen := map[string]bool{}, map[string]bool{}, map[string]bool{}
	sancSeen := map[string]bool{}
	for _, c := range archive.UniqueCerts(fromRTR) {
		rep.UniqueCerts++
		isSanc := false
		for _, name := range c.Names() {
			switch dns.TLD(name) {
			case "ru":
				ruSeen[name] = true
			case "xn--p1ai":
				rfSeen[name] = true
			default:
				otherSeen[name] = true
			}
			if e, ok := sanc.Match(name); ok {
				isSanc = true
				sancSeen[e.Domain] = true
			}
		}
		if isSanc {
			rep.SanctionedCerts++
		}
	}
	rep.RuDomains = len(ruSeen)
	rep.RFDomains = len(rfSeen)
	rep.OtherTLDNames = len(otherSeen)
	rep.SanctionedDomains = len(sancSeen)
	rep.BackdropCerts = len(archive.UniqueCerts(func(c *pki.Certificate) bool { return !fromRTR(c) }))
	return rep
}
