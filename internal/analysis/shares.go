package analysis

import (
	"sort"

	"whereru/internal/dns"
	"whereru/internal/netsim"
	"whereru/internal/simtime"
	"whereru/internal/store"
)

// TLDSharePoint is one day of Figure 3: for each TLD, the share of
// domains that delegate to at least one name server under it. Shares
// overlap (a domain with ns1.foo.ru and ns2.bar.com counts for both), so
// they do not sum to 100%.
type TLDSharePoint struct {
	Day    simtime.Day
	Total  int
	Counts map[string]int
}

// Share returns the percentage of domains using the TLD that day.
func (p TLDSharePoint) Share(tld string) float64 { return pct(p.Counts[tld], p.Total) }

// TLDShareSeries computes Figure 3's underlying series for all TLDs.
func (a *Analyzer) TLDShareSeries(days []simtime.Day, filter Filter) []TLDSharePoint {
	totals, _, counts := epochShareSeries(a, days, filter,
		func(cfg store.Config) bool { return !cfg.Failed && len(cfg.NSHosts) > 0 },
		nil,
		func(cfg store.Config, dst []string) []string {
			for _, host := range cfg.NSHosts {
				dst = uniqueAppend(dst, dns.TLD(host))
			}
			return dst
		})
	out := make([]TLDSharePoint, 0, len(days))
	for i, day := range days {
		out = append(out, TLDSharePoint{Day: day, Total: totals[i], Counts: counts[i]})
	}
	return out
}

// referenceTLDShareSeries is the per-day reference path for Figure 3,
// kept as the equivalence oracle for the epoch engine.
func (a *Analyzer) referenceTLDShareSeries(days []simtime.Day, filter Filter) []TLDSharePoint {
	out := make([]TLDSharePoint, 0, len(days))
	for _, day := range days {
		p := TLDSharePoint{Day: day, Counts: make(map[string]int)}
		a.Store.ForEachAt(day, func(domain string, cfg store.Config) {
			if filter != nil && !filter(domain) {
				return
			}
			if cfg.Failed || len(cfg.NSHosts) == 0 {
				return
			}
			p.Total++
			seen := map[string]bool{}
			for _, host := range cfg.NSHosts {
				tld := dns.TLD(host)
				if !seen[tld] {
					seen[tld] = true
					p.Counts[tld]++
				}
			}
		})
		out = append(out, p)
	}
	return out
}

// TopTLDs ranks TLDs by their share on the final day of the series
// (how the paper picks its "Top 5 TLDs out of 270").
func TopTLDs(series []TLDSharePoint, k int) []string {
	if len(series) == 0 {
		return nil
	}
	last := series[len(series)-1]
	tlds := make([]string, 0, len(last.Counts))
	for tld := range last.Counts {
		tlds = append(tlds, tld)
	}
	sort.Slice(tlds, func(i, j int) bool {
		ci, cj := last.Counts[tlds[i]], last.Counts[tlds[j]]
		if ci != cj {
			return ci > cj
		}
		return tlds[i] < tlds[j]
	})
	if k > len(tlds) {
		k = len(tlds)
	}
	return tlds[:k]
}

// ASNSharePoint is one day of Figure 4: the share of domains whose apex
// resolves into each hosting network.
type ASNSharePoint struct {
	Day    simtime.Day
	Total  int
	Counts map[netsim.ASN]int
}

// Share returns the percentage of domains hosted in the ASN that day.
func (p ASNSharePoint) Share(asn netsim.ASN) float64 { return pct(p.Counts[asn], p.Total) }

// ASNShareSeries computes Figure 4's series: per day, how many measured
// domains have at least one apex A record originated by each ASN.
func (a *Analyzer) ASNShareSeries(days []simtime.Day, filter Filter) []ASNSharePoint {
	totals, _, counts := epochShareSeries(a, days, filter,
		func(cfg store.Config) bool { return !cfg.Failed },
		nil,
		func(cfg store.Config, dst []netsim.ASN) []netsim.ASN {
			for _, addr := range cfg.ApexAddrs {
				if asn, ok := a.Internet.OriginAS(addr); ok {
					dst = uniqueAppend(dst, asn)
				}
			}
			return dst
		})
	out := make([]ASNSharePoint, 0, len(days))
	for i, day := range days {
		out = append(out, ASNSharePoint{Day: day, Total: totals[i], Counts: counts[i]})
	}
	return out
}

// referenceASNShareSeries is the per-day reference path for Figure 4,
// kept as the equivalence oracle for the epoch engine.
func (a *Analyzer) referenceASNShareSeries(days []simtime.Day, filter Filter) []ASNSharePoint {
	out := make([]ASNSharePoint, 0, len(days))
	for _, day := range days {
		p := ASNSharePoint{Day: day, Counts: make(map[netsim.ASN]int)}
		a.Store.ForEachAt(day, func(domain string, cfg store.Config) {
			if filter != nil && !filter(domain) {
				return
			}
			if cfg.Failed {
				return
			}
			p.Total++
			seen := map[netsim.ASN]bool{}
			for _, addr := range cfg.ApexAddrs {
				if asn, ok := a.Internet.OriginAS(addr); ok && !seen[asn] {
					seen[asn] = true
					p.Counts[asn]++
				}
			}
		})
		out = append(out, p)
	}
	return out
}

// hostASNs returns the set of ASNs a config's apex addresses originate
// from.
func (a *Analyzer) hostASNs(cfg store.Config) map[netsim.ASN]bool {
	out := make(map[netsim.ASN]bool, len(cfg.ApexAddrs))
	for _, addr := range cfg.ApexAddrs {
		if asn, ok := a.Internet.OriginAS(addr); ok {
			out[asn] = true
		}
	}
	return out
}
