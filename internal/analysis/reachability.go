package analysis

import (
	"net/netip"
	"sort"
	"time"

	"whereru/internal/netsim"
	"whereru/internal/simtime"
	"whereru/internal/store"
)

// This file computes the routing-scenario figures: per-day reachability
// of domain name-server infrastructure (overall, per country, per ASN)
// and simulated resolution-latency series, both driven by the AS-level
// route tables. The implementation is epoch-engine style: one store
// snapshot, the sorted domain list sharded over workers, one route
// evaluation per (epoch × route-version window), per-shard difference
// arrays over the day axis, and a deterministic shard-order merge — so
// the output is byte-identical for any worker count, the same contract
// the composition series keep.

// RouteOracle is the analysis-side routing dependency: per-day
// reachability and path latency for an address, plus the route-state
// version that lets the engine segment the day axis (within one version
// every route decision is constant). netsim.RouteView satisfies it.
type RouteOracle interface {
	Route(day simtime.Day, addr netip.Addr) (time.Duration, bool)
	Version(day simtime.Day) int
}

// allReachable is the nil-Routes oracle: one version, every address
// reachable at zero latency. It keeps the series well-defined (and
// trivial) on studies without a scenario.
type allReachable struct{}

func (allReachable) Route(simtime.Day, netip.Addr) (time.Duration, bool) { return 0, true }
func (allReachable) Version(simtime.Day) int                             { return 0 }

// routes resolves the analyzer's oracle.
func (a *Analyzer) routes() RouteOracle {
	if a.Routes != nil {
		return a.Routes
	}
	return allReachable{}
}

// routeSegments splits the day axis at route-state version boundaries,
// the routing analog of geoSegments.
func routeSegments(oracle RouteOracle, days []simtime.Day) []segment {
	var segs []segment
	for i := 0; i < len(days); {
		v := oracle.Version(days[i])
		j := i + 1
		for j < len(days) && oracle.Version(days[j]) == v {
			j++
		}
		segs = append(segs, segment{lo: i, hi: j})
		i = j
	}
	return segs
}

// routeCache memoizes route decisions keyed by (route version, addr) and
// address origin metadata (static). Each shard worker owns one, like
// geoCache.
type routeCache struct {
	oracle RouteOracle
	net    *netsim.Internet
	memo   map[routeKey]routeVal
	origin map[netip.Addr]originVal
}

type routeKey struct {
	ver  int
	addr netip.Addr
}

type routeVal struct {
	lat time.Duration
	ok  bool
}

type originVal struct {
	asn     netsim.ASN
	country string
	known   bool
}

func newRouteCache(oracle RouteOracle, net *netsim.Internet) *routeCache {
	return &routeCache{
		oracle: oracle,
		net:    net,
		memo:   map[routeKey]routeVal{},
		origin: map[netip.Addr]originVal{},
	}
}

// route returns the memoized route decision for addr on day (ver is the
// day's route version, resolved by the caller once per segment).
func (c *routeCache) route(ver int, day simtime.Day, addr netip.Addr) (time.Duration, bool) {
	k := routeKey{ver: ver, addr: addr}
	if v, hit := c.memo[k]; hit {
		return v.lat, v.ok
	}
	lat, ok := c.oracle.Route(day, addr)
	c.memo[k] = routeVal{lat: lat, ok: ok}
	return lat, ok
}

// originOf returns the (ASN, country) of an address per the address
// plan. Addresses outside the plan report known=false and are excluded
// from the per-country/per-ASN breakdowns.
func (c *routeCache) originOf(addr netip.Addr) originVal {
	if v, hit := c.origin[addr]; hit {
		return v
	}
	var v originVal
	if c.net != nil {
		if asn, ok := c.net.OriginAS(addr); ok {
			v.asn, v.known = asn, true
			if as, ok := c.net.Lookup(asn); ok {
				v.country = as.Country
			}
		}
	}
	c.origin[addr] = v
	return v
}

// CountryReach is one country's slice of a reachability point: how many
// measured domains have name-server addresses there, and for how many of
// them at least one such address has an AS path.
type CountryReach struct {
	Country   string
	Total     int
	Reachable int
}

// ASNReach is the per-ASN analog of CountryReach.
type ASNReach struct {
	ASN       netsim.ASN
	Total     int
	Reachable int
}

// ReachPoint is one day of the reachability series. A domain counts when
// its epoch carries at least one name-server address; it is Reachable
// when at least one of those addresses has an AS path from the vantage.
// The Countries/ASNs breakdowns attribute the domain to every country or
// ASN its name-server set touches (a dual-homed domain counts in both),
// sorted for deterministic serialization.
type ReachPoint struct {
	Day          simtime.Day
	Interpolated bool
	Total        int
	Reachable    int
	Unreachable  int
	Countries    []CountryReach
	ASNs         []ASNReach
}

// ReachabilitySeries computes per-day name-server reachability under the
// analyzer's route oracle for the given days (any order). Without Routes
// every domain with name-server addresses is reachable.
func (a *Analyzer) ReachabilitySeries(days []simtime.Day, filter Filter) []ReachPoint {
	out := make([]ReachPoint, 0, len(days))
	if len(days) == 0 {
		return out
	}
	days, perm := sortDays(days)
	oracle := a.routes()
	snap := a.Store.Snapshot()
	segs := routeSegments(oracle, days)
	n := snap.NumDomains()

	type acc struct {
		dTotal, dReach []int
		cTotal, cReach map[string][]int
		aTotal, aReach map[netsim.ASN][]int
	}
	shards := make([]acc, a.workers())
	used := a.shard(n, func(shard, lo, hi int) {
		d := &shards[shard]
		d.dTotal = make([]int, len(days)+1)
		d.dReach = make([]int, len(days)+1)
		d.cTotal = make(map[string][]int)
		d.cReach = make(map[string][]int)
		d.aTotal = make(map[netsim.ASN][]int)
		d.aReach = make(map[netsim.ASN][]int)
		rc := newRouteCache(oracle, a.Internet)
		diff := func(m map[string][]int, k string, l, h int) {
			dk := m[k]
			if dk == nil {
				dk = make([]int, len(days)+1)
				m[k] = dk
			}
			dk[l]++
			dk[h]--
		}
		diffA := func(m map[netsim.ASN][]int, k netsim.ASN, l, h int) {
			dk := m[k]
			if dk == nil {
				dk = make([]int, len(days)+1)
				m[k] = dk
			}
			dk[l]++
			dk[h]--
		}
		// Per-epoch scratch, reused across visits.
		type slice struct {
			reach bool
		}
		cSeen := map[string]*slice{}
		aSeen := map[netsim.ASN]*slice{}
		curDomain, keep := "", true
		snap.VisitEpochs(days, lo, hi, func(domain string, cfg store.Config, elo, ehi int) {
			if filter != nil {
				if domain != curDomain {
					curDomain, keep = domain, filter(domain)
				}
				if !keep {
					return
				}
			}
			if len(cfg.NSAddrs) == 0 {
				return
			}
			for _, sg := range segs {
				l, h := max(elo, sg.lo), min(ehi, sg.hi)
				if l >= h {
					continue
				}
				day := days[l]
				ver := oracle.Version(day)
				anyReach := false
				for k := range cSeen {
					delete(cSeen, k)
				}
				for k := range aSeen {
					delete(aSeen, k)
				}
				for _, addr := range cfg.NSAddrs {
					_, ok := rc.route(ver, day, addr)
					if ok {
						anyReach = true
					}
					o := rc.originOf(addr)
					if !o.known {
						continue
					}
					if o.country != "" {
						s := cSeen[o.country]
						if s == nil {
							s = &slice{}
							cSeen[o.country] = s
						}
						s.reach = s.reach || ok
					}
					s := aSeen[o.asn]
					if s == nil {
						s = &slice{}
						aSeen[o.asn] = s
					}
					s.reach = s.reach || ok
				}
				d.dTotal[l]++
				d.dTotal[h]--
				if anyReach {
					d.dReach[l]++
					d.dReach[h]--
				}
				for country, s := range cSeen {
					diff(d.cTotal, country, l, h)
					if s.reach {
						diff(d.cReach, country, l, h)
					}
				}
				for asn, s := range aSeen {
					diffA(d.aTotal, asn, l, h)
					if s.reach {
						diffA(d.aReach, asn, l, h)
					}
				}
			}
		})
	})

	// Deterministic merge: sum shard deltas in shard order, prefix-sum.
	mTotal := make([]int, len(days)+1)
	mReach := make([]int, len(days)+1)
	mcTotal := make(map[string][]int)
	mcReach := make(map[string][]int)
	maTotal := make(map[netsim.ASN][]int)
	maReach := make(map[netsim.ASN][]int)
	mergeS := func(dst map[string][]int, src map[string][]int) {
		for k, dk := range src {
			mk := dst[k]
			if mk == nil {
				mk = make([]int, len(days)+1)
				dst[k] = mk
			}
			for i := range dk {
				mk[i] += dk[i]
			}
		}
	}
	mergeA := func(dst map[netsim.ASN][]int, src map[netsim.ASN][]int) {
		for k, dk := range src {
			mk := dst[k]
			if mk == nil {
				mk = make([]int, len(days)+1)
				dst[k] = mk
			}
			for i := range dk {
				mk[i] += dk[i]
			}
		}
	}
	for s := 0; s < used; s++ {
		for i := range mTotal {
			mTotal[i] += shards[s].dTotal[i]
			mReach[i] += shards[s].dReach[i]
		}
		mergeS(mcTotal, shards[s].cTotal)
		mergeS(mcReach, shards[s].cReach)
		mergeA(maTotal, shards[s].aTotal)
		mergeA(maReach, shards[s].aReach)
	}
	countries := make([]string, 0, len(mcTotal))
	for c := range mcTotal {
		countries = append(countries, c)
	}
	sort.Strings(countries)
	asns := make([]netsim.ASN, 0, len(maTotal))
	for as := range maTotal {
		asns = append(asns, as)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })

	sweeps := snap.Sweeps()
	runTotal, runReach := 0, 0
	runC := make(map[string][2]int, len(countries))
	runA := make(map[netsim.ASN][2]int, len(asns))
	for i, day := range days {
		runTotal += mTotal[i]
		runReach += mReach[i]
		p := ReachPoint{
			Day:          day,
			Interpolated: !sweptDay(sweeps, day),
			Total:        runTotal,
			Reachable:    runReach,
			Unreachable:  runTotal - runReach,
		}
		for _, c := range countries {
			r := runC[c]
			r[0] += mcTotal[c][i]
			if dk := mcReach[c]; dk != nil {
				r[1] += dk[i]
			}
			runC[c] = r
			if r[0] > 0 {
				p.Countries = append(p.Countries, CountryReach{Country: c, Total: r[0], Reachable: r[1]})
			}
		}
		for _, as := range asns {
			r := runA[as]
			r[0] += maTotal[as][i]
			if dk := maReach[as]; dk != nil {
				r[1] += dk[i]
			}
			runA[as] = r
			if r[0] > 0 {
				p.ASNs = append(p.ASNs, ASNReach{ASN: as, Total: r[0], Reachable: r[1]})
			}
		}
		out = append(out, p)
	}
	if perm != nil {
		res := make([]ReachPoint, len(out))
		for si, oi := range perm {
			res[oi] = out[si]
		}
		return res
	}
	return out
}

// latencyBuckets is the histogram resolution of the route-latency
// series: power-of-two microsecond buckets, matching the pipeline's
// runtime latency histogram so the two views of latency are comparable.
const latencyBuckets = 24

// latencyBucket returns the bucket index for a duration.
func latencyBucket(d time.Duration) int {
	us := d.Microseconds()
	i := 0
	for i < latencyBuckets-1 && us > int64(1)<<i {
		i++
	}
	return i
}

// bucketQuantile returns the upper bound of the bucket holding the
// q-quantile observation of a merged histogram (0 when empty).
func bucketQuantile(counts *[latencyBuckets]int, q float64) time.Duration {
	var total uint64
	for _, c := range counts {
		total += uint64(c)
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += uint64(c)
		if cum >= target {
			return time.Duration(int64(1)<<i) * time.Microsecond
		}
	}
	return time.Duration(int64(1)<<(latencyBuckets-1)) * time.Microsecond
}

// CountryLatency is one country's slice of a latency point: quantiles of
// the best-path latency of domains whose name-server set touches it.
type CountryLatency struct {
	Country       string
	Domains       int
	P50, P90, P99 time.Duration
}

// RouteLatencyPoint is one day of the simulated resolution-latency
// series. A domain observes its best (minimum) routed path latency over
// its name-server addresses; domains with no routed address contribute
// nothing (their cost is visible in the reachability series instead).
type RouteLatencyPoint struct {
	Day           simtime.Day
	Interpolated  bool
	Domains       int
	P50, P90, P99 time.Duration
	Countries     []CountryLatency
}

// RouteLatencySeries computes per-day simulated resolution-latency
// quantiles under the analyzer's route oracle for the given days (any
// order). Without Routes every latency is zero.
func (a *Analyzer) RouteLatencySeries(days []simtime.Day, filter Filter) []RouteLatencyPoint {
	out := make([]RouteLatencyPoint, 0, len(days))
	if len(days) == 0 {
		return out
	}
	days, perm := sortDays(days)
	oracle := a.routes()
	snap := a.Store.Snapshot()
	segs := routeSegments(oracle, days)
	n := snap.NumDomains()

	type acc struct {
		hist  [latencyBuckets][]int
		cHist map[string]*[latencyBuckets][]int
	}
	shards := make([]acc, a.workers())
	used := a.shard(n, func(shard, lo, hi int) {
		d := &shards[shard]
		d.cHist = make(map[string]*[latencyBuckets][]int)
		rc := newRouteCache(oracle, a.Internet)
		cSeen := map[string]bool{}
		curDomain, keep := "", true
		snap.VisitEpochs(days, lo, hi, func(domain string, cfg store.Config, elo, ehi int) {
			if filter != nil {
				if domain != curDomain {
					curDomain, keep = domain, filter(domain)
				}
				if !keep {
					return
				}
			}
			if len(cfg.NSAddrs) == 0 {
				return
			}
			for _, sg := range segs {
				l, h := max(elo, sg.lo), min(ehi, sg.hi)
				if l >= h {
					continue
				}
				day := days[l]
				ver := oracle.Version(day)
				best, routed := time.Duration(0), false
				for k := range cSeen {
					delete(cSeen, k)
				}
				for _, addr := range cfg.NSAddrs {
					lat, ok := rc.route(ver, day, addr)
					if !ok {
						continue
					}
					if !routed || lat < best {
						best, routed = lat, true
					}
					if o := rc.originOf(addr); o.known && o.country != "" {
						cSeen[o.country] = true
					}
				}
				if !routed {
					continue
				}
				b := latencyBucket(best)
				if d.hist[b] == nil {
					d.hist[b] = make([]int, len(days)+1)
				}
				d.hist[b][l]++
				d.hist[b][h]--
				for country := range cSeen {
					ch := d.cHist[country]
					if ch == nil {
						ch = &[latencyBuckets][]int{}
						d.cHist[country] = ch
					}
					if ch[b] == nil {
						ch[b] = make([]int, len(days)+1)
					}
					ch[b][l]++
					ch[b][h]--
				}
			}
		})
	})

	// Merge shard deltas, prefix-sum each bucket axis.
	var mHist [latencyBuckets][]int
	mcHist := make(map[string]*[latencyBuckets][]int)
	for s := 0; s < used; s++ {
		for b := 0; b < latencyBuckets; b++ {
			if shards[s].hist[b] == nil {
				continue
			}
			if mHist[b] == nil {
				mHist[b] = make([]int, len(days)+1)
			}
			for i, v := range shards[s].hist[b] {
				mHist[b][i] += v
			}
		}
		for country, ch := range shards[s].cHist {
			mch := mcHist[country]
			if mch == nil {
				mch = &[latencyBuckets][]int{}
				mcHist[country] = mch
			}
			for b := 0; b < latencyBuckets; b++ {
				if ch[b] == nil {
					continue
				}
				if mch[b] == nil {
					mch[b] = make([]int, len(days)+1)
				}
				for i, v := range ch[b] {
					mch[b][i] += v
				}
			}
		}
	}
	countries := make([]string, 0, len(mcHist))
	for c := range mcHist {
		countries = append(countries, c)
	}
	sort.Strings(countries)

	sweeps := snap.Sweeps()
	var run [latencyBuckets]int
	runC := make(map[string]*[latencyBuckets]int, len(countries))
	for _, c := range countries {
		runC[c] = &[latencyBuckets]int{}
	}
	for i, day := range days {
		domains := 0
		for b := 0; b < latencyBuckets; b++ {
			if mHist[b] != nil {
				run[b] += mHist[b][i]
			}
			domains += run[b]
		}
		p := RouteLatencyPoint{
			Day:          day,
			Interpolated: !sweptDay(sweeps, day),
			Domains:      domains,
			P50:          bucketQuantile(&run, 0.50),
			P90:          bucketQuantile(&run, 0.90),
			P99:          bucketQuantile(&run, 0.99),
		}
		for _, c := range countries {
			cr := runC[c]
			cd := 0
			for b := 0; b < latencyBuckets; b++ {
				if mcHist[c][b] != nil {
					cr[b] += mcHist[c][b][i]
				}
				cd += cr[b]
			}
			if cd == 0 {
				continue
			}
			p.Countries = append(p.Countries, CountryLatency{
				Country: c,
				Domains: cd,
				P50:     bucketQuantile(cr, 0.50),
				P90:     bucketQuantile(cr, 0.90),
				P99:     bucketQuantile(cr, 0.99),
			})
		}
		out = append(out, p)
	}
	if perm != nil {
		res := make([]RouteLatencyPoint, len(out))
		for si, oi := range perm {
			res[oi] = out[si]
		}
		return res
	}
	return out
}
