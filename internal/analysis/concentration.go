package analysis

import (
	"sort"

	"whereru/internal/ct"
	"whereru/internal/simtime"
)

// Market-concentration analysis (extension). The paper's CCS keywords
// include "Centralization / decentralization" and its discussion warns
// about Let's Encrypt's near-complete control of .ru certificates; the
// Herfindahl–Hirschman Index (HHI) makes that concentration comparable
// across the hosting, DNS and certificate markets and across time.
//
// HHI = Σ (share_i)², with shares in [0,1]; 1.0 is a monopoly. US
// antitrust convention (shares in percent, 0–10,000) calls >2,500 highly
// concentrated, which corresponds to 0.25 here.

// HHI computes the index from a map of counts.
func HHI[K comparable](counts map[K]int) float64 {
	total := 0
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, n := range counts {
		share := float64(n) / float64(total)
		h += share * share
	}
	return h
}

// ConcentrationPoint is one day's market concentration.
type ConcentrationPoint struct {
	Day simtime.Day
	HHI float64
	// Top1Share is the largest participant's share in percent.
	Top1Share float64
	// Participants is the number of distinct market participants.
	Participants int
}

func concentrationOf[K comparable](day simtime.Day, counts map[K]int) ConcentrationPoint {
	total := 0
	top := 0
	for _, n := range counts {
		total += n
		if n > top {
			top = n
		}
	}
	p := ConcentrationPoint{Day: day, HHI: HHI(counts), Participants: len(counts)}
	if total > 0 {
		p.Top1Share = 100 * float64(top) / float64(total)
	}
	return p
}

// HostingConcentration computes HHI over hosting ASNs per day.
func (a *Analyzer) HostingConcentration(days []simtime.Day, filter Filter) []ConcentrationPoint {
	series := a.ASNShareSeries(days, filter)
	out := make([]ConcentrationPoint, len(series))
	for i, p := range series {
		out[i] = concentrationOf(p.Day, p.Counts)
	}
	return out
}

// CAConcentration computes the CA market's HHI per period from the CT
// log — the §6 "near-complete control Let's Encrypt holds" claim, as a
// number.
func CAConcentration(log *ct.Log) []ConcentrationPoint {
	periods := IssuanceByPeriod(log)
	out := make([]ConcentrationPoint, 0, len(periods))
	// Anchor each period's point at its first day.
	anchors := map[simtime.Period]simtime.Day{
		simtime.PreConflict:   simtime.CTWindowStart,
		simtime.PreSanctions:  simtime.ConflictStart,
		simtime.PostSanctions: simtime.SanctionsInEffect,
	}
	for _, p := range periods {
		counts := make(map[string]int, len(p.Issuers))
		for _, ic := range p.Issuers {
			counts[ic.Org] = ic.Count
		}
		out = append(out, concentrationOf(anchors[p.Period], counts))
	}
	return out
}

// MailConcentration computes HHI over mail-operator zones per day
// (requires the CollectMX extension).
func (a *Analyzer) MailConcentration(days []simtime.Day, filter Filter) []ConcentrationPoint {
	series := a.MailProviderSeries(days, filter)
	out := make([]ConcentrationPoint, len(series))
	for i, p := range series {
		out[i] = concentrationOf(p.Day, p.Counts)
	}
	return out
}

// RankedShares flattens a count map into (key, percent) pairs sorted by
// share, for reports.
type RankedShare struct {
	Key   string
	Share float64
}

// Ranked returns the sorted shares of a string-keyed count map.
func Ranked(counts map[string]int) []RankedShare {
	total := 0
	for _, n := range counts {
		total += n
	}
	out := make([]RankedShare, 0, len(counts))
	for k, n := range counts {
		out = append(out, RankedShare{Key: k, Share: pct(n, total)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Key < out[j].Key
	})
	return out
}
