package analysis

import (
	"context"
	"sync"
	"testing"

	"whereru/internal/ct"
	"whereru/internal/openintel"
	"whereru/internal/pki"
	"whereru/internal/scan"
	"whereru/internal/simtime"
	"whereru/internal/store"
	"whereru/internal/world"
)

// The integration fixture builds one small world, runs the full
// OpenINTEL-style collection over the study window, and runs the daily
// TLS scans — everything downstream of it verifies the paper's figures
// and tables against tolerances. Percent tolerances are wide enough for
// 1:2000-scale binomial noise; the assertions pin the paper's *shape*
// (directions, ranks, steps), with levels checked loosely.
type fixture struct {
	w       *world.World
	store   *store.Store
	an      *Analyzer
	archive *scan.Archive
	days    []simtime.Day
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func getFixture(t testing.TB) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		w, err := world.Build(world.TestConfig())
		if err != nil {
			fixErr = err
			return
		}
		st := store.New()
		pipe := &openintel.Pipeline{
			Resolver:  w.NewResolver(),
			Seeds:     w.Registries,
			Clock:     w.Clock(),
			Store:     st,
			Workers:   8,
			CollectMX: true,
		}
		days := openintel.Schedule(simtime.StudyStart, simtime.StudyEnd, simtime.Date(2022, 2, 1), 3)
		if _, err := pipe.Run(context.Background(), days); err != nil {
			fixErr = err
			return
		}
		archive := scan.NewArchive()
		for d := world.RussianCAStartDay; d <= simtime.CTWindowEnd; d = d.Add(7) {
			archive.Record(d, w.Scanner.Sweep(d))
		}
		fix = &fixture{
			w:       w,
			store:   st,
			an:      &Analyzer{Store: st, Geo: w.Geo, Internet: w.Internet},
			archive: archive,
			days:    days,
		}
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fix
}

func within(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if got < want-tol || got > want+tol {
		t.Errorf("%s = %.2f, want %.2f ± %.2f", what, got, want, tol)
	}
}

// TestFig1NSComposition verifies the paper's headline Figure 1 numbers:
// 67.0% fully-Russian name-server infrastructure at the start, 73.9% at
// the end, stable in between, with the jump at the conflict.
func TestFig1NSComposition(t *testing.T) {
	f := getFixture(t)
	series := f.an.NSCompositionSeries([]simtime.Day{
		simtime.StudyStart,
		simtime.Date(2022, 2, 22),
		simtime.StudyEnd,
	}, nil)
	start, preConflict, end := series[0], series[1], series[2]

	within(t, "NS full start", start.FullPct(), 67.0, 4.0)
	within(t, "NS full end", end.FullPct(), 73.9, 4.0)
	if end.FullPct()-start.FullPct() < 3.0 {
		t.Errorf("full-Russian NS change = %.1f points, want ≈ +6.9", end.FullPct()-start.FullPct())
	}
	// Pre-conflict stability: "this breakdown ... is stable over time".
	if diff := preConflict.FullPct() - start.FullPct(); diff > 3 || diff < -4 {
		t.Errorf("pre-conflict drift = %.1f points, want ≈ 0", diff)
	}
	// The post-conflict repatriation drains the partial class.
	if end.PartPct() >= preConflict.PartPct() {
		t.Errorf("partial did not shrink after conflict: %.1f → %.1f", preConflict.PartPct(), end.PartPct())
	}
}

// TestNetnodStep verifies §3.2: Netnod's withdrawal flips its customers
// from partial to full between March 2 and March 3, as a step.
func TestNetnodStep(t *testing.T) {
	f := getFixture(t)
	series := f.an.NSCompositionSeries([]simtime.Day{
		world.NetnodCutoffDay.Add(-1),
		world.NetnodCutoffDay,
	}, nil)
	before, after := series[0], series[1]
	drop := before.PartPct() - after.PartPct()
	if drop < 0.8 {
		t.Errorf("partial drop at Netnod cutoff = %.2f points, want ≥ 0.8 (76k domains at paper scale)", drop)
	}
	if after.FullPct() <= before.FullPct() {
		t.Error("full share did not rise at Netnod cutoff")
	}
}

// TestHostingComposition verifies §3.1: 71.0% fully Russian-hosted,
// 0.19% partial, 28.81% non on 2017-06-18, and only modest change after.
func TestHostingComposition(t *testing.T) {
	f := getFixture(t)
	series := f.an.HostingCompositionSeries([]simtime.Day{simtime.StudyStart, simtime.StudyEnd}, nil)
	start, end := series[0], series[1]
	within(t, "hosting full start", start.FullPct(), 71.0, 4.0)
	within(t, "hosting non start", start.NonPct(), 28.81, 4.0)
	if start.PartPct() > 1.5 {
		t.Errorf("hosting partial start = %.2f%%, want ≈ 0.19%%", start.PartPct())
	}
	// "These are modest effects": single-digit change.
	if diff := end.FullPct() - start.FullPct(); diff < -3 || diff > 9 {
		t.Errorf("hosting full change = %.1f points, want small positive", diff)
	}
}

// TestFig2TLDDependency verifies the counter-intuitive Figure 2 trend:
// fully-Russian TLD dependency *falls* (≈ −6.3 points) while partial
// *rises* (≈ +7.9), and the conflict barely moves it (+0.2/+0.5).
func TestFig2TLDDependency(t *testing.T) {
	f := getFixture(t)
	series := f.an.TLDDependencySeries([]simtime.Day{
		simtime.StudyStart,
		simtime.Date(2022, 2, 22),
		simtime.StudyEnd,
	}, nil)
	start, preConflict, end := series[0], series[1], series[2]
	fullChange := end.FullPct() - start.FullPct()
	partChange := end.PartPct() - start.PartPct()
	within(t, "TLD full net change", fullChange, -6.3, 4.0)
	if partChange < 2.0 {
		t.Errorf("TLD partial net change = %.1f, want ≈ +7.9", partChange)
	}
	// The conflict-time change is slight (paper: +0.2 full, +0.5 part).
	if step := end.FullPct() - preConflict.FullPct(); step < -1.5 || step > 3.0 {
		t.Errorf("TLD full conflict step = %.1f, want slight", step)
	}
}

// TestFig3TopTLDs verifies Figure 3's ranking: .ru ≫ .com > .pro > .org >
// .net on the final day, .com and .pro growing, .ru ≈ stable near 78%.
func TestFig3TopTLDs(t *testing.T) {
	f := getFixture(t)
	series := f.an.TLDShareSeries([]simtime.Day{simtime.StudyStart, simtime.StudyEnd}, nil)
	start, end := series[0], series[1]

	top := TopTLDs(series, 5)
	if len(top) != 5 || top[0] != "ru" || top[1] != "com" {
		t.Fatalf("top TLDs = %v, want ru, com leading", top)
	}
	wantOrder := []string{"ru", "com", "pro", "org", "net"}
	for i, tld := range wantOrder {
		if top[i] != tld {
			t.Errorf("rank %d = %s, want %s (full ranking %v)", i+1, top[i], tld, top)
		}
	}
	if end.Share("ru") < 60 {
		t.Errorf(".ru share end = %.1f, want ≈ 78.3 (dominant)", end.Share("ru"))
	}
	if growth := end.Share("com") - start.Share("com"); growth < 3.0 {
		t.Errorf(".com growth = %.1f points, want ≈ +7.5", growth)
	}
	if growth := end.Share("pro") - start.Share("pro"); growth < 0.8 {
		t.Errorf(".pro growth = %.1f points, want ≈ +3.6", growth)
	}
}

// TestFig4ASNShares verifies Figure 4: the Russian big four are stable at
// 38-39%, Cloudflare ≈ 7% throughout, and the Amazon/Sedo → Serverel
// migration plays out.
func TestFig4ASNShares(t *testing.T) {
	f := getFixture(t)
	days := []simtime.Day{simtime.Date(2022, 2, 22), world.AmazonStmtDay, simtime.StudyEnd}
	series := f.an.ASNShareSeries(days, nil)
	preConflict, mar8, end := series[0], series[1], series[2]

	bigFour := func(p ASNSharePoint) float64 {
		return p.Share(197695) + p.Share(48287) + p.Share(9123) + p.Share(198610)
	}
	within(t, "big-four share pre-conflict", bigFour(preConflict), 38, 5)
	within(t, "big-four share end", bigFour(end), 39, 5)
	// Cloudflare: "stable ... nearly 7% throughout this period".
	within(t, "cloudflare pre-conflict", preConflict.Share(13335), 6.5, 2.5)
	if diff := end.Share(13335) - preConflict.Share(13335); diff < -1.5 || diff > 2.5 {
		t.Errorf("cloudflare share moved %.2f points, want ≈ stable", diff)
	}
	// Sedo collapses after March 9.
	if mar8.Share(47846) < 1.5 {
		t.Errorf("sedo share on Mar 8 = %.2f, want ≈ 3.1", mar8.Share(47846))
	}
	if end.Share(47846) > 0.5 {
		t.Errorf("sedo share at end = %.2f, want ≈ 0.05 (98%% gone)", end.Share(47846))
	}
	// Serverel inherits the parked domains.
	if end.Share(29802) <= mar8.Share(29802) {
		t.Error("serverel share did not grow after the Sedo exodus")
	}
}

// TestFig5Sanctioned verifies §3.3: on Feb 24, 34.0% of sanctioned
// domains have partial and 5.2% non-Russian DNS; by March 4, 93.8% are
// fully Russian.
func TestFig5Sanctioned(t *testing.T) {
	f := getFixture(t)
	sanc := f.w.Sanctions
	filter := func(domain string) bool { return sanc.ContainsEver(domain) }
	series := f.an.NSCompositionSeries([]simtime.Day{
		simtime.ConflictStart,
		world.SanctionedNSMoved,
		simtime.StudyEnd,
	}, filter)
	feb24, mar4 := series[0], series[1]

	if feb24.Total != 107 {
		t.Fatalf("sanctioned domains measured on Feb 24 = %d, want 107", feb24.Total)
	}
	within(t, "sanctioned partial Feb 24", feb24.PartPct(), 34.0, 2.0)
	within(t, "sanctioned non Feb 24", feb24.NonPct(), 5.2, 2.0)
	within(t, "sanctioned full Mar 4", mar4.FullPct(), 93.8, 2.0)
}

// TestSanctionedHosting verifies §3.3's hosting claim: 101 of 107 already
// fully Russian-hosted before the conflict; three more by May 25; three
// never.
func TestSanctionedHosting(t *testing.T) {
	f := getFixture(t)
	sanc := f.w.Sanctions
	filter := func(domain string) bool { return sanc.ContainsEver(domain) }
	series := f.an.HostingCompositionSeries([]simtime.Day{
		simtime.ConflictStart.Add(-7),
		simtime.StudyEnd,
	}, filter)
	before, end := series[0], series[1]
	if before.Full != 101 {
		t.Errorf("sanctioned fully RU-hosted pre-conflict = %d, want 101", before.Full)
	}
	if end.Full != 104 {
		t.Errorf("sanctioned fully RU-hosted at end = %d, want 104", end.Full)
	}
	if end.Non != 3 {
		t.Errorf("sanctioned still foreign-hosted at end = %d, want 3", end.Non)
	}
}

// TestFig6AmazonMovement verifies §3.4/Figure 6: >half of Amazon's
// Russian domains relocate, ≈43% remain, with newly registered and
// relocated-in domains appearing despite Amazon's announcement.
func TestFig6AmazonMovement(t *testing.T) {
	f := getFixture(t)
	m := f.an.MovementAnalysis(16509, world.AmazonStmtDay, simtime.StudyEnd, f.w.Registries)
	if m.Original < 10 {
		t.Fatalf("amazon original set = %d, too small to analyze", m.Original)
	}
	within(t, "amazon remained pct", m.RemainedPct(), 43, 15)
	if m.RelocatedOut+m.Gone < m.Remained {
		t.Error("more than half should have relocated")
	}
	if m.NewlyRegistered+m.RelocatedIn == 0 {
		t.Error("no incoming domains; paper reports 574 new + 988 relocated in")
	}
}

// TestFig7SedoMovement verifies §3.4/Figure 7: Sedo's set almost entirely
// relocates (98%), predominantly to Serverel (NL).
func TestFig7SedoMovement(t *testing.T) {
	f := getFixture(t)
	m := f.an.MovementAnalysis(47846, world.SedoStmtDay.Add(-1), simtime.StudyEnd, f.w.Registries)
	if m.Original < 30 {
		t.Fatalf("sedo original set = %d, too small", m.Original)
	}
	if m.RemainedPct() > 6 {
		t.Errorf("sedo remained = %.1f%%, want ≈ 1.6%%", m.RemainedPct())
	}
	if m.RelocatedPct() < 85 {
		t.Errorf("sedo relocated = %.1f%%, want ≈ 98%%", m.RelocatedPct())
	}
	dests := m.TopDestinations(1)
	if len(dests) == 0 || dests[0] != 29802 {
		t.Errorf("top sedo destination = %v, want Serverel AS29802", dests)
	}
}

// TestCloudflareGoogleMovement verifies the other two §3.4 case studies:
// Cloudflare's set stays put (94% remain, new domains keep arriving);
// Google's set relocates 57.1%, but three quarters of that merely moves
// to Google's other ASN.
func TestCloudflareGoogleMovement(t *testing.T) {
	f := getFixture(t)
	cf := f.an.MovementAnalysis(13335, world.CloudflareStmtDay, simtime.StudyEnd, f.w.Registries)
	if cf.Original < 50 {
		t.Fatalf("cloudflare original set = %d, too small", cf.Original)
	}
	within(t, "cloudflare remained pct", cf.RemainedPct(), 94, 6)
	if cf.NewlyRegistered+cf.RelocatedIn == 0 {
		t.Error("no new cloudflare domains; paper reports 34k appearing")
	}

	g := f.an.MovementAnalysis(15169, world.GoogleStmtDay, simtime.StudyEnd, f.w.Registries)
	if g.Original < 3 {
		t.Skipf("google original set = %d, too small at this scale", g.Original)
	}
	if g.RelocatedPct() < 25 || g.RelocatedPct() > 85 {
		t.Errorf("google relocated = %.1f%%, want ≈ 57.1%%", g.RelocatedPct())
	}
	if g.RelocatedOut > 2 {
		intra := g.OutDestinations[396982]
		if pct := 100 * float64(intra) / float64(g.RelocatedOut); pct < 40 {
			t.Errorf("intra-Google moves = %.0f%% of relocations, want ≈ 75.2%%", pct)
		}
	}
}

// TestTable1Issuance verifies §4.1/Table 1: Let's Encrypt's share climbs
// from ≈91.6%% to ≈99.2%%, and the post-sanctions top-3 is exactly
// Let's Encrypt, GlobalSign, Google.
func TestTable1Issuance(t *testing.T) {
	f := getFixture(t)
	periods := IssuanceByPeriod(f.w.CTLog)
	if len(periods) != 3 {
		t.Fatalf("periods = %d", len(periods))
	}
	pre, mid, post := periods[0], periods[1], periods[2]
	within(t, "LE share pre-conflict", pre.Share(pki.LetsEncrypt), 91.58, 3)
	within(t, "LE share pre-sanctions", mid.Share(pki.LetsEncrypt), 98.06, 2)
	within(t, "LE share post-sanctions", post.Share(pki.LetsEncrypt), 99.23, 1)
	// Pre-conflict runners-up: DigiCert then cPanel.
	if len(pre.Issuers) < 3 || pre.Issuers[0].Org != pki.LetsEncrypt ||
		pre.Issuers[1].Org != pki.DigiCert || pre.Issuers[2].Org != pki.CPanel {
		t.Errorf("pre-conflict top-3 = %v, want LE, DigiCert, cPanel", pre.Issuers[:min(3, len(pre.Issuers))])
	}
	// Post-sanctions: only LE, GlobalSign, Google matter.
	if len(post.Issuers) < 3 || post.Issuers[0].Org != pki.LetsEncrypt ||
		post.Issuers[1].Org != pki.GlobalSign || post.Issuers[2].Org != pki.GoogleTrust {
		t.Errorf("post-sanctions top-3 = %v, want LE, GlobalSign, Google", post.Issuers[:min(3, len(post.Issuers))])
	}
	// Volume: ≈130k/day pre-conflict vs ≈115k/day after (scaled).
	scale := float64(f.w.Config().Scale)
	within(t, "certs/day pre-conflict (paper-scale)", pre.PerDay()*scale, 130000, 20000)
	within(t, "certs/day post-sanctions (paper-scale)", post.PerDay()*scale, 115000, 20000)
	if pre.PerDay() <= post.PerDay() {
		t.Error("issuance rate should dip after the conflict")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestFig8Timelines verifies Figure 8: of the top-10 CAs, six stop
// issuing (at most isolated dots remain) while Let's Encrypt, GlobalSign
// and Google continue to the end of the window.
func TestFig8Timelines(t *testing.T) {
	f := getFixture(t)
	timelines := IssuanceTimelines(f.w.CTLog, 10)
	if len(timelines) < 8 {
		t.Fatalf("only %d CAs in timelines", len(timelines))
	}
	lateWindow := simtime.Date(2022, 4, 15)
	activeLate := func(tl Timeline) int {
		n := 0
		for d := range tl.ActiveDays {
			if d >= lateWindow {
				n++
			}
		}
		return n
	}
	stopped := 0
	continuing := map[string]bool{}
	for _, tl := range timelines {
		if activeLate(tl) <= 2 {
			stopped++
		} else {
			continuing[tl.Org] = true
		}
	}
	if stopped < 5 {
		t.Errorf("stopped CAs = %d of %d, want ≥ 6 of 10", stopped, len(timelines))
	}
	for _, org := range []string{pki.LetsEncrypt, pki.GlobalSign} {
		if !continuing[org] {
			t.Errorf("%s should continue issuing to the end", org)
		}
	}
	if timelines[0].Org != pki.LetsEncrypt {
		t.Errorf("largest issuer = %s, want Let's Encrypt", timelines[0].Org)
	}
}

// TestTable2Revocations verifies §4.2/Table 2: DigiCert and Sectigo
// revoke 100% of their sanctioned-domain certificates, and every CA's
// sanctioned revocation rate exceeds its overall rate.
func TestTable2Revocations(t *testing.T) {
	f := getFixture(t)
	rows := RevocationStats(f.w.CTLog, f.w.Certs, f.w.Sanctions, 5)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byOrg := map[string]RevocationRow{}
	for _, r := range rows {
		byOrg[r.Org] = r
	}
	for _, org := range []string{pki.DigiCert, pki.Sectigo} {
		r, ok := byOrg[org]
		if !ok {
			t.Errorf("%s missing from top revokers", org)
			continue
		}
		if r.SancIssued == 0 || r.SancRevoked != r.SancIssued {
			t.Errorf("%s sanctioned revocations = %d/%d, want 100%%", org, r.SancRevoked, r.SancIssued)
		}
	}
	if le, ok := byOrg[pki.LetsEncrypt]; ok {
		if le.RevokedPct() > 0.5 {
			t.Errorf("LE overall revocation rate = %.2f%%, want ≈ 0.06%%", le.RevokedPct())
		}
		if le.SancRevokedPct() <= le.RevokedPct() {
			t.Error("LE sanctioned rate should exceed overall rate")
		}
	} else {
		t.Error("Let's Encrypt missing from revocation table")
	}
	// Paper: all CAs have higher sanctioned revocation rates.
	for _, r := range rows {
		if r.SancIssued > 0 && r.SancRevokedPct() < r.RevokedPct() {
			t.Errorf("%s: sanctioned rate %.2f%% < overall %.2f%%", r.Org, r.SancRevokedPct(), r.RevokedPct())
		}
	}
}

// TestRussianCAImpact verifies §4.3: exactly 170 unique certificates from
// the Russian Trusted Root CA appear in scans, securing 130 .ru and 2 .рф
// domains, 36 of them sanctioned (34% of the list), against a much larger
// backdrop from other CAs.
func TestRussianCAImpact(t *testing.T) {
	f := getFixture(t)
	rep := RussianCAImpact(f.archive, f.w.Sanctions)
	if rep.UniqueCerts != 170 {
		t.Errorf("unique Russian CA certs = %d, want 170", rep.UniqueCerts)
	}
	if rep.RuDomains != 130 {
		t.Errorf(".ru domains = %d, want 130", rep.RuDomains)
	}
	if rep.RFDomains != 2 {
		t.Errorf(".рф domains = %d, want 2", rep.RFDomains)
	}
	if rep.SanctionedCerts != 36 {
		t.Errorf("sanctioned certs = %d, want 36", rep.SanctionedCerts)
	}
	coverage := 100 * float64(rep.SanctionedDomains) / 107
	within(t, "sanctioned list coverage", coverage, 34, 3)
	if rep.BackdropCerts <= rep.UniqueCerts {
		t.Errorf("backdrop = %d certs, want ≫ 170", rep.BackdropCerts)
	}
	// None of the Russian CA's certificates may appear in the CT log.
	inCT := f.w.CTLog.Scan(0, f.w.CTLog.Size(), func(c *pki.Certificate) bool {
		return c.RootOrg == pki.RussianTrustedRootCA
	})
	if len(inCT) != 0 {
		t.Errorf("%d Russian CA certs leaked into CT", len(inCT))
	}
}

// TestStoreCompression sanity-checks the epoch store against the naive
// one-record-per-sweep baseline on real pipeline output.
func TestStoreCompression(t *testing.T) {
	f := getFixture(t)
	st := f.store.Stats()
	if st.Epochs == 0 || st.NaiveRecords == 0 {
		t.Fatal("empty store stats")
	}
	ratio := float64(st.NaiveRecords) / float64(st.Epochs)
	if ratio < 3 {
		t.Errorf("compression ratio = %.1fx, want ≥ 3x on piecewise-constant configs", ratio)
	}
	t.Logf("store: %d domains, %d epochs, %d naive records (%.1fx)", st.Domains, st.Epochs, st.NaiveRecords, ratio)
}

// TestCTConsistencyAcrossCollection verifies the CT log's append-only
// integrity over the generated corpus with real consistency proofs.
func TestCTConsistencyAcrossCollection(t *testing.T) {
	f := getFixture(t)
	log := f.w.CTLog
	n := log.Size()
	if n < 100 {
		t.Skip("log too small")
	}
	for _, m := range []int64{1, n / 3, n / 2, n - 1} {
		rootM, err := log.RootAt(m)
		if err != nil {
			t.Fatal(err)
		}
		rootN, err := log.RootAt(n)
		if err != nil {
			t.Fatal(err)
		}
		proof, err := log.ConsistencyProof(m, n)
		if err != nil {
			t.Fatal(err)
		}
		if !ct.VerifyConsistency(m, n, rootM, rootN, proof) {
			t.Fatalf("consistency proof %d → %d failed", m, n)
		}
	}
}

// TestAmazonSedoOscillation verifies the pre-conflict parking flip-flop
// the paper describes ("switch back and forth between Amazon and Sedo"):
// Amazon's share rises between late February and March 8 as parked
// domains flow back from Sedo.
func TestAmazonSedoOscillation(t *testing.T) {
	f := getFixture(t)
	series := f.an.ASNShareSeries([]simtime.Day{
		simtime.Date(2022, 2, 22),
		world.AmazonStmtDay,
	}, nil)
	feb22, mar8 := series[0], series[1]
	if mar8.Share(16509) <= feb22.Share(16509) {
		t.Errorf("amazon share did not rise into Mar 8: %.2f → %.2f",
			feb22.Share(16509), mar8.Share(16509))
	}
	if mar8.Share(47846) >= feb22.Share(47846) {
		t.Errorf("sedo share did not dip into Mar 8: %.2f → %.2f",
			feb22.Share(47846), mar8.Share(47846))
	}
}

// TestMailCollectedInFixture confirms the MX extension flowed through the
// default pipeline into the store and analyses.
func TestMailCollectedInFixture(t *testing.T) {
	f := getFixture(t)
	series := f.an.MailProviderSeries([]simtime.Day{simtime.StudyEnd}, nil)
	last := series[0]
	if last.WithMail == 0 {
		t.Fatal("no MX data collected")
	}
	coverage := 100 * float64(last.WithMail) / float64(last.Total)
	if coverage < 75 || coverage > 95 {
		t.Errorf("MX coverage = %.1f%%, want ≈88%%", coverage)
	}
	top := TopMailZones(series, 1)
	if len(top) != 1 || top[0] != "yandex.net." {
		t.Errorf("top mail zone = %v, want yandex.net.", top)
	}
}
