package analysis

import (
	"sort"

	"whereru/internal/netsim"
	"whereru/internal/registry"
	"whereru/internal/simtime"
	"whereru/internal/store"
)

// Movement is the §3.4/Figures 6-7 analysis: comparing two measurement
// days, what happened to the domains hosted in one ASN.
type Movement struct {
	ASN  netsim.ASN
	From simtime.Day
	To   simtime.Day

	// Original is the number of domains resolving into the ASN on From.
	Original int
	// Remained still resolve into the ASN on To.
	Remained int
	// RelocatedOut resolve elsewhere on To.
	RelocatedOut int
	// Gone are no longer measured on To (left the zone).
	Gone int
	// RelocatedIn resolve into the ASN on To but were measured elsewhere
	// on From.
	RelocatedIn int
	// NewlyRegistered resolve into the ASN on To and were registered
	// after From (confirmed via whois, as the paper does with Cisco's
	// Whois API).
	NewlyRegistered int

	// OutDestinations counts where relocated-out domains went.
	OutDestinations map[netsim.ASN]int
	// InSources counts where relocated-in domains came from.
	InSources map[netsim.ASN]int
}

// RemainedPct returns Remained as a percentage of Original.
func (m Movement) RemainedPct() float64 { return pct(m.Remained, m.Original) }

// RelocatedPct returns RelocatedOut as a percentage of Original.
func (m Movement) RelocatedPct() float64 { return pct(m.RelocatedOut, m.Original) }

// TopDestinations returns the relocation destinations by volume.
func (m Movement) TopDestinations(k int) []netsim.ASN {
	return topASNs(m.OutDestinations, k)
}

func topASNs(counts map[netsim.ASN]int, k int) []netsim.ASN {
	asns := make([]netsim.ASN, 0, len(counts))
	for a := range counts {
		asns = append(asns, a)
	}
	sort.Slice(asns, func(i, j int) bool {
		if counts[asns[i]] != counts[asns[j]] {
			return counts[asns[i]] > counts[asns[j]]
		}
		return asns[i] < asns[j]
	})
	if k > len(asns) {
		k = len(asns)
	}
	return asns[:k]
}

// Whois resolves registration records; registry.Group satisfies it.
// Implementations must be safe for concurrent use: MovementAnalysis calls
// Whois from its shard workers.
type Whois interface {
	Whois(name string) (registry.Domain, bool)
}

// MovementAnalysis compares hosting between two sweep days for one ASN.
// It runs on the epoch engine: one snapshot pass over the domain space,
// sharded across workers, with each domain's From/To configurations read
// from its own epoch list — instead of two full per-day store walks plus
// a point lookup per incomer. Per-shard partial Movements merge by
// addition, so the result is deterministic and identical to
// referenceMovementAnalysis.
func (a *Analyzer) MovementAnalysis(asn netsim.ASN, from, to simtime.Day, whois Whois) Movement {
	m := Movement{
		ASN: asn, From: from, To: to,
		OutDestinations: make(map[netsim.ASN]int),
		InSources:       make(map[netsim.ASN]int),
	}
	snap := a.Store.Snapshot()
	n := snap.NumDomains()
	shards := make([]Movement, a.workers())
	used := a.shard(n, func(shard, lo, hi int) {
		sm := &shards[shard]
		sm.OutDestinations = make(map[netsim.ASN]int)
		sm.InSources = make(map[netsim.ASN]int)
		for i := lo; i < hi; i++ {
			cfgFrom, okFrom := snap.At(i, from)
			memberFrom := okFrom && snap.MeasuredAt(i, from) && !cfgFrom.Failed
			original := memberFrom && a.hostASNs(cfgFrom)[asn]
			if original {
				sm.Original++
			}
			cfgTo, okTo := snap.At(i, to)
			memberTo := okTo && snap.MeasuredAt(i, to) && !cfgTo.Failed
			if !memberTo {
				if original {
					sm.Gone++
				}
				continue
			}
			inASN := a.hostASNs(cfgTo)[asn]
			switch {
			case original && inASN:
				sm.Remained++
			case original && !inASN:
				sm.RelocatedOut++
				for dest := range a.hostASNs(cfgTo) {
					sm.OutDestinations[dest]++
				}
			case !original && inASN:
				// Incomer: newly registered or relocated in.
				if rec, ok := whois.Whois(snap.Domains()[i]); ok && rec.Created > from {
					sm.NewlyRegistered++
					continue
				}
				sm.RelocatedIn++
				// Where it came from: its configuration carried into From,
				// whether or not it was still measured then (mirroring the
				// reference path's Store.At).
				if prev, ok := snap.At(i, from); ok {
					for src := range a.hostASNs(prev) {
						sm.InSources[src]++
					}
				}
			}
		}
	})
	for s := 0; s < used; s++ {
		sm := &shards[s]
		m.Original += sm.Original
		m.Remained += sm.Remained
		m.RelocatedOut += sm.RelocatedOut
		m.Gone += sm.Gone
		m.RelocatedIn += sm.RelocatedIn
		m.NewlyRegistered += sm.NewlyRegistered
		for k, v := range sm.OutDestinations {
			m.OutDestinations[k] += v
		}
		for k, v := range sm.InSources {
			m.InSources[k] += v
		}
	}
	return m
}

// referenceMovementAnalysis is the original two-pass per-day path, kept
// as the equivalence oracle for MovementAnalysis.
func (a *Analyzer) referenceMovementAnalysis(asn netsim.ASN, from, to simtime.Day, whois Whois) Movement {
	m := Movement{
		ASN: asn, From: from, To: to,
		OutDestinations: make(map[netsim.ASN]int),
		InSources:       make(map[netsim.ASN]int),
	}
	// Pass 1: the original set.
	original := make(map[string]bool)
	a.Store.ForEachAt(from, func(domain string, cfg store.Config) {
		if cfg.Failed {
			return
		}
		if a.hostASNs(cfg)[asn] {
			original[domain] = true
			m.Original++
		}
	})
	// Pass 2: where everyone is on To.
	seenOnTo := make(map[string]bool)
	a.Store.ForEachAt(to, func(domain string, cfg store.Config) {
		if cfg.Failed {
			return
		}
		inASN := a.hostASNs(cfg)[asn]
		seenOnTo[domain] = true
		switch {
		case original[domain] && inASN:
			m.Remained++
		case original[domain] && !inASN:
			m.RelocatedOut++
			for dest := range a.hostASNs(cfg) {
				m.OutDestinations[dest]++
			}
		case !original[domain] && inASN:
			// Incomer: newly registered or relocated in.
			if rec, ok := whois.Whois(domain); ok && rec.Created > from {
				m.NewlyRegistered++
				break
			}
			m.RelocatedIn++
			if prev, ok := a.Store.At(domain, from); ok {
				for src := range a.hostASNs(prev) {
					m.InSources[src]++
				}
			}
		}
	})
	for d := range original {
		if !seenOnTo[d] {
			m.Gone++
		}
	}
	return m
}
