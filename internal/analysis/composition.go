// Package analysis implements the paper's analytical contribution: the
// longitudinal classification of Russian domain infrastructure. Given the
// measurement store (DNS sweeps), the geolocation database, the address
// plan, the CT log, revocation state and scan archive, it regenerates
// every figure and table in the paper:
//
//	Figure 1/5 — country composition of name-server infrastructure
//	Figure 2   — TLD-dependency composition of delegations
//	Figure 3   — top TLDs used by authoritative name servers
//	Figure 4   — hosting-network (ASN) shares
//	Figure 6/7 — domain movement between ASNs (Amazon, Sedo, …)
//	Figure 8   — CA issuance-activity timelines
//	Table 1    — issuance by period per CA
//	Table 2    — revocation activity, overall vs sanctioned
//	§4.3       — Russian Trusted Root CA impact
package analysis

import (
	"whereru/internal/dns"
	"whereru/internal/geo"
	"whereru/internal/idn"
	"whereru/internal/netsim"
	"whereru/internal/simtime"
	"whereru/internal/store"
)

// Composition classifies a domain's infrastructure against Russia: Full
// means entirely inside, Non entirely outside, Part mixed. Unknown means
// the measurement had no usable data (failed resolution, no records).
type Composition int

// Composition values.
const (
	CompUnknown Composition = iota
	CompFull
	CompPart
	CompNon
)

// String names the composition the way the paper's figures do.
func (c Composition) String() string {
	switch c {
	case CompFull:
		return "Full Russian"
	case CompPart:
		return "Part Russian"
	case CompNon:
		return "Non Russian"
	default:
		return "Unknown"
	}
}

// classifyFlags folds per-record membership into a composition.
func classifyFlags(sawTarget, sawOther bool) Composition {
	switch {
	case sawTarget && sawOther:
		return CompPart
	case sawTarget:
		return CompFull
	case sawOther:
		return CompNon
	default:
		return CompUnknown
	}
}

// Analyzer binds the data sets the DNS analyses read.
type Analyzer struct {
	Store    *store.Store
	Geo      *geo.DB
	Internet *netsim.Internet
	// Routes is the AS-level routing oracle of a scenario run (nil when
	// no scenario is active: everything is reachable at zero latency).
	// The reachability and route-latency series consult it per (route
	// version, address), mirroring how the composition series consult
	// Geo.
	Routes RouteOracle
	// Workers is the analysis shard count (0 = runtime.NumCPU). Series are
	// computed by sharding the domain space over this many goroutines with
	// a deterministic merge, so the result is independent of the setting.
	Workers int
}

// Point is one day of a composition series (Figures 1, 2, 5).
type Point struct {
	Day     simtime.Day
	Full    int
	Part    int
	Non     int
	Unknown int
	// Total is the number of measured domains that day (the figures'
	// black "#names" curve).
	Total int
	// Interpolated marks a day no sweep actually covered: the values are
	// carried forward from the last measurement rather than observed. The
	// paper's own figures contain such a region (the OpenINTEL outage,
	// footnote 8); flagging it keeps carry-forward from masquerading as
	// fresh data.
	Interpolated bool
}

// FullPct returns Full as a percentage of classified domains.
func (p Point) FullPct() float64 { return pct(p.Full, p.classified()) }

// PartPct returns Part as a percentage of classified domains.
func (p Point) PartPct() float64 { return pct(p.Part, p.classified()) }

// NonPct returns Non as a percentage of classified domains.
func (p Point) NonPct() float64 { return pct(p.Non, p.classified()) }

func (p Point) classified() int { return p.Full + p.Part + p.Non }

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// Filter selects the domains an analysis runs over; nil selects all.
// Filters must be safe for concurrent use: the epoch engine calls them
// from its shard workers.
type Filter func(domain string) bool

// nsCompositionClassifier classifies a config by where its name-server
// addresses geolocate. The same classifier serves the epoch engine (bound
// to a memoizing geoCache) and the reference path (bound to the raw DB).
func nsCompositionClassifier(g geoLookup) func(simtime.Day, store.Config) Composition {
	return func(day simtime.Day, cfg store.Config) Composition {
		if cfg.Failed || len(cfg.NSAddrs) == 0 {
			return CompUnknown
		}
		sawRU, sawOther := false, false
		for _, addr := range cfg.NSAddrs {
			if country, ok := g.Lookup(day, addr); ok && country == geo.RU {
				sawRU = true
			} else {
				sawOther = true
			}
		}
		return classifyFlags(sawRU, sawOther)
	}
}

// hostingCompositionClassifier classifies by apex-address geolocation.
func hostingCompositionClassifier(g geoLookup) func(simtime.Day, store.Config) Composition {
	return func(day simtime.Day, cfg store.Config) Composition {
		if cfg.Failed || len(cfg.ApexAddrs) == 0 {
			return CompUnknown
		}
		sawRU, sawOther := false, false
		for _, addr := range cfg.ApexAddrs {
			if country, ok := g.Lookup(day, addr); ok && country == geo.RU {
				sawRU = true
			} else {
				sawOther = true
			}
		}
		return classifyFlags(sawRU, sawOther)
	}
}

// tldDependencyClassifier classifies by the TLDs the name-server hosts
// are registered under (day- and geolocation-independent).
func tldDependencyClassifier(geoLookup) func(simtime.Day, store.Config) Composition {
	return func(_ simtime.Day, cfg store.Config) Composition {
		if cfg.Failed || len(cfg.NSHosts) == 0 {
			return CompUnknown
		}
		sawRU, sawOther := false, false
		for _, host := range cfg.NSHosts {
			if isRussianTLD(dns.TLD(host)) {
				sawRU = true
			} else {
				sawOther = true
			}
		}
		return classifyFlags(sawRU, sawOther)
	}
}

// NSCompositionSeries computes Figure 1 (and, with a sanctioned-domain
// filter, Figure 5): for each day, how many domains' authoritative name
// servers geolocate fully/partially/not to Russia.
func (a *Analyzer) NSCompositionSeries(days []simtime.Day, filter Filter) []Point {
	return a.epochSeries(days, filter, nsCompositionClassifier)
}

// ReferenceNSCompositionSeries is NSCompositionSeries on the per-day
// reference path. It exists for the equivalence tests and the series
// ablation benchmarks; use NSCompositionSeries everywhere else.
func (a *Analyzer) ReferenceNSCompositionSeries(days []simtime.Day, filter Filter) []Point {
	return a.referenceSeries(days, filter, nsCompositionClassifier(a.Geo))
}

// HostingCompositionSeries classifies domains by where their apex A
// records geolocate (§3.1's hosting breakdown).
func (a *Analyzer) HostingCompositionSeries(days []simtime.Day, filter Filter) []Point {
	return a.epochSeries(days, filter, hostingCompositionClassifier)
}

// TLDDependencySeries computes Figure 2: whether each domain's name
// servers are registered entirely under Russian Federation TLDs (.ru,
// .su, .рф), partially, or not at all.
func (a *Analyzer) TLDDependencySeries(days []simtime.Day, filter Filter) []Point {
	return a.epochSeries(days, filter, tldDependencyClassifier)
}

// isRussianTLD reports whether a TLD label belongs to the Russian
// Federation (.ru, .рф as xn--p1ai, and legacy .su).
func isRussianTLD(tld string) bool {
	return tld == "ru" || tld == "su" || tld == idn.RFTLDASCII
}
