package analysis

import (
	"net/netip"
	"time"

	"whereru/internal/netsim"
	"whereru/internal/simtime"
	"whereru/internal/store"
)

// This file is the exported surface the incremental engine
// (internal/stream) folds with. The stream engine maintains per-series
// accumulators and patches them as journal segments land; to stay
// byte-identical to the epoch engine it must classify and route with the
// exact same functions, memoized the same way. Everything here is a thin
// exported binding over the unexported classifier and route-cache
// machinery the batch paths already use — one implementation, two
// drivers.

// DayClassifier classifies one (day, config) pair. Classifiers are pure
// within a geolocation version window: for a fixed config the result may
// change across days only when the geo snapshot changes, which is what
// lets both the epoch engine and the fold engine classify once and apply
// across a day range.
type DayClassifier func(day simtime.Day, cfg store.Config) Composition

// NewNSClassifier returns the Figure 1/5 classifier (name-server address
// geolocation) bound to a fresh memoizing geo cache. Not safe for
// concurrent use; callers own one per goroutine, like the shard workers.
func (a *Analyzer) NewNSClassifier() DayClassifier {
	return nsCompositionClassifier(newGeoCache(a.Geo))
}

// NewHostingClassifier returns the §3.1 hosting classifier (apex address
// geolocation) bound to a fresh memoizing geo cache.
func (a *Analyzer) NewHostingClassifier() DayClassifier {
	return hostingCompositionClassifier(newGeoCache(a.Geo))
}

// NewTLDClassifier returns the Figure 2 classifier (name-server TLD
// dependency; day- and geolocation-independent).
func (a *Analyzer) NewTLDClassifier() DayClassifier {
	return tldDependencyClassifier(newGeoCache(a.Geo))
}

// RoutesOracle resolves the analyzer's route oracle exactly as the
// reachability series do: the configured Routes, or the all-reachable
// default when no scenario is active.
func (a *Analyzer) RoutesOracle() RouteOracle { return a.routes() }

// RouteEval is a memoizing route evaluator: the exported form of the
// per-shard route cache the reachability and latency series use. Not
// safe for concurrent use.
type RouteEval struct {
	rc     *routeCache
	oracle RouteOracle
}

// NewRouteEval returns a route evaluator over the analyzer's oracle and
// address plan.
func (a *Analyzer) NewRouteEval() *RouteEval {
	oracle := a.routes()
	return &RouteEval{rc: newRouteCache(oracle, a.Internet), oracle: oracle}
}

// Version returns the route-state version of a day (decisions are
// constant within one version).
func (e *RouteEval) Version(day simtime.Day) int { return e.oracle.Version(day) }

// Route returns the memoized route decision for addr on day; ver must be
// the day's route version.
func (e *RouteEval) Route(ver int, day simtime.Day, addr netip.Addr) (time.Duration, bool) {
	return e.rc.route(ver, day, addr)
}

// Origin returns the (ASN, country) of an address per the address plan;
// known is false for addresses outside the plan, which the breakdowns
// exclude.
func (e *RouteEval) Origin(addr netip.Addr) (asn netsim.ASN, country string, known bool) {
	o := e.rc.originOf(addr)
	return o.asn, o.country, o.known
}

// LatencyBucketCount is the histogram resolution of the route-latency
// series (power-of-two microsecond buckets).
const LatencyBucketCount = latencyBuckets

// LatencyBucketIndex returns the histogram bucket of a path latency.
func LatencyBucketIndex(d time.Duration) int { return latencyBucket(d) }

// LatencyQuantile returns the upper bound of the bucket holding the
// q-quantile observation of a histogram (0 when empty).
func LatencyQuantile(counts *[LatencyBucketCount]int, q float64) time.Duration {
	return bucketQuantile(counts, q)
}
