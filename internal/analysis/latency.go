package analysis

import (
	"sort"

	"whereru/internal/netsim"
	"whereru/internal/simtime"
	"whereru/internal/store"
)

// Relocation latency quantifies the paper's §6 observation that
// "virtually all of the impacted sites quickly found new providers":
// for the domains hosted in an exiting provider's network on the event
// day, how many days passed before each was first observed hosted
// elsewhere?

// LatencyReport is the distribution of relocation delays after a
// provider-exit event.
type LatencyReport struct {
	ASN   netsim.ASN
	Event simtime.Day
	// Relocated maps each relocated domain to the first sweep day it was
	// seen outside the ASN.
	Relocated int
	// StillThere counts domains never observed leaving by the end.
	StillThere int
	// Gone counts domains that dropped out of the zone instead.
	Gone int
	// Delays are the per-domain days-to-relocation, sorted ascending.
	Delays []int
}

// Percentile returns the p-th percentile delay in days (nearest-rank
// method; p in [0,100]). ok is false when nothing relocated.
func (r LatencyReport) Percentile(p float64) (int, bool) {
	if len(r.Delays) == 0 {
		return 0, false
	}
	rank := int(p/100*float64(len(r.Delays)) + 0.999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(r.Delays) {
		rank = len(r.Delays)
	}
	return r.Delays[rank-1], true
}

// Median returns the median delay.
func (r LatencyReport) Median() (int, bool) { return r.Percentile(50) }

// RelocationLatency measures, for every domain hosted in asn on the event
// day, the first post-event sweep on which it resolved outside the ASN.
// Granularity is bounded by the sweep cadence (the paper's daily data has
// day granularity; a 3-day schedule quantizes to 3 days).
func (a *Analyzer) RelocationLatency(asn netsim.ASN, event simtime.Day, until simtime.Day) LatencyReport {
	rep := LatencyReport{ASN: asn, Event: event}
	var members []string
	a.Store.ForEachAt(event, func(domain string, cfg store.Config) {
		if !cfg.Failed && a.hostASNs(cfg)[asn] {
			members = append(members, domain)
		}
	})
	var sweeps []simtime.Day
	for _, d := range a.Store.Sweeps() {
		if d > event && d <= until {
			sweeps = append(sweeps, d)
		}
	}
	for _, domain := range members {
		relocated := false
		measuredLate := false
		for _, d := range sweeps {
			cfg, ok := a.Store.At(domain, d)
			if !ok || !a.Store.MeasuredOn(domain, d) {
				continue
			}
			measuredLate = true
			if cfg.Failed {
				continue
			}
			if !a.hostASNs(cfg)[asn] {
				rep.Relocated++
				rep.Delays = append(rep.Delays, d.Sub(event))
				relocated = true
				break
			}
		}
		if !relocated {
			if measuredLate {
				rep.StillThere++
			} else {
				rep.Gone++
			}
		}
	}
	sort.Ints(rep.Delays)
	return rep
}
