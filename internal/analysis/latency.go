package analysis

import (
	"sort"

	"whereru/internal/netsim"
	"whereru/internal/simtime"
)

// Relocation latency quantifies the paper's §6 observation that
// "virtually all of the impacted sites quickly found new providers":
// for the domains hosted in an exiting provider's network on the event
// day, how many days passed before each was first observed hosted
// elsewhere?

// LatencyReport is the distribution of relocation delays after a
// provider-exit event.
type LatencyReport struct {
	ASN   netsim.ASN
	Event simtime.Day
	// Relocated maps each relocated domain to the first sweep day it was
	// seen outside the ASN.
	Relocated int
	// StillThere counts domains never observed leaving by the end.
	StillThere int
	// Gone counts domains that dropped out of the zone instead.
	Gone int
	// Delays are the per-domain days-to-relocation, sorted ascending.
	Delays []int
}

// Percentile returns the p-th percentile delay in days (nearest-rank
// method; p in [0,100]). ok is false when nothing relocated.
func (r LatencyReport) Percentile(p float64) (int, bool) {
	if len(r.Delays) == 0 {
		return 0, false
	}
	rank := int(p/100*float64(len(r.Delays)) + 0.999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(r.Delays) {
		rank = len(r.Delays)
	}
	return r.Delays[rank-1], true
}

// Median returns the median delay.
func (r LatencyReport) Median() (int, bool) { return r.Percentile(50) }

// RelocationLatency measures, for every domain hosted in asn on the event
// day, the first post-event sweep on which it resolved outside the ASN.
// Granularity is bounded by the sweep cadence (the paper's daily data has
// day granularity; a 3-day schedule quantizes to 3 days). It runs on one
// store snapshot sharded across workers; per-shard counters and delay
// lists merge deterministically (the delays are sorted at the end).
func (a *Analyzer) RelocationLatency(asn netsim.ASN, event simtime.Day, until simtime.Day) LatencyReport {
	rep := LatencyReport{ASN: asn, Event: event}
	snap := a.Store.Snapshot()
	var sweeps []simtime.Day
	for _, d := range snap.Sweeps() {
		if d > event && d <= until {
			sweeps = append(sweeps, d)
		}
	}
	shards := make([]LatencyReport, a.workers())
	used := a.shard(snap.NumDomains(), func(shard, lo, hi int) {
		sr := &shards[shard]
		for i := lo; i < hi; i++ {
			cfg, ok := snap.At(i, event)
			if !ok || !snap.MeasuredAt(i, event) || cfg.Failed || !a.hostASNs(cfg)[asn] {
				continue
			}
			relocated := false
			measuredLate := false
			for _, d := range sweeps {
				cfg, ok := snap.At(i, d)
				if !ok || !snap.MeasuredAt(i, d) {
					continue
				}
				measuredLate = true
				if cfg.Failed {
					continue
				}
				if !a.hostASNs(cfg)[asn] {
					sr.Relocated++
					sr.Delays = append(sr.Delays, d.Sub(event))
					relocated = true
					break
				}
			}
			if !relocated {
				if measuredLate {
					sr.StillThere++
				} else {
					sr.Gone++
				}
			}
		}
	})
	for s := 0; s < used; s++ {
		rep.Relocated += shards[s].Relocated
		rep.StillThere += shards[s].StillThere
		rep.Gone += shards[s].Gone
		rep.Delays = append(rep.Delays, shards[s].Delays...)
	}
	sort.Ints(rep.Delays)
	return rep
}
