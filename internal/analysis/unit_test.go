package analysis

import (
	"net/netip"
	"testing"

	"whereru/internal/geo"
	"whereru/internal/netsim"
	"whereru/internal/registry"
	"whereru/internal/simtime"
	"whereru/internal/store"
)

// unitAnalyzer builds an analyzer over a handcrafted store and a two-AS
// internet (AS1 = RU, AS2 = US) for classification unit tests.
func unitAnalyzer(t *testing.T) (*Analyzer, *store.Store, netip.Addr, netip.Addr) {
	t.Helper()
	in := netsim.NewInternet(0)
	in.MustRegisterAS(netsim.AS{Number: 1, Org: "RU Host", Country: "RU"})
	in.MustRegisterAS(netsim.AS{Number: 2, Org: "US Host", Country: "US"})
	ruAddr, err := in.NextAddr(1)
	if err != nil {
		t.Fatal(err)
	}
	usAddr, err := in.NextAddr(2)
	if err != nil {
		t.Fatal(err)
	}
	db := geo.NewDB()
	b := geo.NewBuilder()
	for _, alloc := range in.Allocations() {
		as, _ := in.Lookup(alloc.ASN)
		b.Add(alloc.Prefix, as.Country)
	}
	if err := db.Snapshot(0, b); err != nil {
		t.Fatal(err)
	}
	st := store.New()
	return &Analyzer{Store: st, Geo: db, Internet: in}, st, ruAddr, usAddr
}

func addMeasurement(st *store.Store, domain string, day simtime.Day, ns []string, nsAddrs, apex []netip.Addr, failed bool) {
	st.BeginSweep(day)
	st.Add(store.Measurement{Domain: domain, Day: day, Config: store.Config{
		NSHosts: ns, NSAddrs: nsAddrs, ApexAddrs: apex, Failed: failed,
	}})
}

func TestNSCompositionClassification(t *testing.T) {
	an, st, ru, us := unitAnalyzer(t)
	day := simtime.Day(100)
	addMeasurement(st, "full.ru.", day, []string{"ns1.x.ru."}, []netip.Addr{ru}, nil, false)
	addMeasurement(st, "part.ru.", day, []string{"ns1.x.ru.", "ns2.y.com."}, []netip.Addr{ru, us}, nil, false)
	addMeasurement(st, "non.ru.", day, []string{"ns2.y.com."}, []netip.Addr{us}, nil, false)
	addMeasurement(st, "failed.ru.", day, nil, nil, nil, true)
	addMeasurement(st, "noaddr.ru.", day, []string{"ns.z.ru."}, nil, nil, false)

	pts := an.NSCompositionSeries([]simtime.Day{day}, nil)
	p := pts[0]
	if p.Full != 1 || p.Part != 1 || p.Non != 1 || p.Unknown != 2 || p.Total != 5 {
		t.Fatalf("classification = %+v", p)
	}
	if p.FullPct() != 100.0/3 {
		t.Errorf("FullPct over classified = %v", p.FullPct())
	}
	// Filters restrict the population.
	only := func(d string) Filter { return func(x string) bool { return x == d } }
	pts = an.NSCompositionSeries([]simtime.Day{day}, only("full.ru."))
	if pts[0].Total != 1 || pts[0].Full != 1 {
		t.Fatalf("filtered = %+v", pts[0])
	}
}

func TestHostingCompositionClassification(t *testing.T) {
	an, st, ru, us := unitAnalyzer(t)
	day := simtime.Day(10)
	addMeasurement(st, "a.ru.", day, nil, nil, []netip.Addr{ru}, false)
	addMeasurement(st, "b.ru.", day, nil, nil, []netip.Addr{ru, us}, false)
	addMeasurement(st, "c.ru.", day, nil, nil, []netip.Addr{us}, false)
	p := an.HostingCompositionSeries([]simtime.Day{day}, nil)[0]
	if p.Full != 1 || p.Part != 1 || p.Non != 1 {
		t.Fatalf("hosting classification = %+v", p)
	}
}

func TestTLDDependencyClassification(t *testing.T) {
	an, st, _, _ := unitAnalyzer(t)
	day := simtime.Day(5)
	addMeasurement(st, "a.ru.", day, []string{"ns1.x.ru.", "ns2.x.su."}, nil, nil, false) // full (ru+su)
	addMeasurement(st, "b.ru.", day, []string{"ns1.x.ru.", "ns.y.com."}, nil, nil, false) // part
	addMeasurement(st, "c.ru.", day, []string{"ns.y.com.", "ns.z.net."}, nil, nil, false) // non
	addMeasurement(st, "d.xn--p1ai.", day, []string{"ns.x.xn--p1ai."}, nil, nil, false)   // full (рф)
	p := an.TLDDependencySeries([]simtime.Day{day}, nil)[0]
	if p.Full != 2 || p.Part != 1 || p.Non != 1 {
		t.Fatalf("TLD classification = %+v", p)
	}
}

func TestTLDShareOverlap(t *testing.T) {
	an, st, _, _ := unitAnalyzer(t)
	day := simtime.Day(5)
	addMeasurement(st, "a.ru.", day, []string{"ns1.x.ru.", "ns.y.com."}, nil, nil, false)
	addMeasurement(st, "b.ru.", day, []string{"ns2.x.ru.", "ns3.x.ru."}, nil, nil, false)
	p := an.TLDShareSeries([]simtime.Day{day}, nil)[0]
	// Shares overlap: a.ru counts for both .ru and .com.
	if p.Share("ru") != 100 || p.Share("com") != 50 {
		t.Fatalf("shares: ru=%v com=%v", p.Share("ru"), p.Share("com"))
	}
	if got := TopTLDs([]TLDSharePoint{p}, 5); len(got) != 2 || got[0] != "ru" {
		t.Fatalf("TopTLDs = %v", got)
	}
	if TopTLDs(nil, 3) != nil {
		t.Fatal("TopTLDs(nil) non-nil")
	}
}

func TestMovementAccounting(t *testing.T) {
	an, st, ru, us := unitAnalyzer(t)
	reg := registry.New("ru.")
	day1, day2 := simtime.Day(10), simtime.Day(20)
	mustReg := func(name string, created simtime.Day) {
		if _, err := reg.Register(name, created, "", ""); err != nil {
			t.Fatal(err)
		}
	}
	// stays: in AS2 both days.
	mustReg("stays.ru.", 0)
	addMeasurement(st, "stays.ru.", day1, nil, nil, []netip.Addr{us}, false)
	// leaves: AS2 → AS1.
	mustReg("leaves.ru.", 0)
	addMeasurement(st, "leaves.ru.", day1, nil, nil, []netip.Addr{us}, false)
	// gone: in AS2 on day1, unmeasured on day2.
	mustReg("gone.ru.", 0)
	addMeasurement(st, "gone.ru.", day1, nil, nil, []netip.Addr{us}, false)
	// incomer: AS1 → AS2.
	mustReg("incomer.ru.", 0)
	addMeasurement(st, "incomer.ru.", day1, nil, nil, []netip.Addr{ru}, false)
	// newreg: registered after day1, lands in AS2.
	mustReg("newreg.ru.", day1+3)

	st.BeginSweep(day2)
	for name, addr := range map[string]netip.Addr{
		"stays.ru.": us, "leaves.ru.": ru, "incomer.ru.": us, "newreg.ru.": us,
	} {
		st.Add(store.Measurement{Domain: name, Day: day2, Config: store.Config{ApexAddrs: []netip.Addr{addr}}})
	}

	m := an.MovementAnalysis(2, day1, day2, reg)
	if m.Original != 3 {
		t.Fatalf("Original = %d", m.Original)
	}
	if m.Remained != 1 || m.RelocatedOut != 1 || m.Gone != 1 {
		t.Fatalf("remained/out/gone = %d/%d/%d", m.Remained, m.RelocatedOut, m.Gone)
	}
	if m.RelocatedIn != 1 || m.NewlyRegistered != 1 {
		t.Fatalf("in/new = %d/%d", m.RelocatedIn, m.NewlyRegistered)
	}
	if m.OutDestinations[1] != 1 || m.InSources[1] != 1 {
		t.Fatalf("flows: out=%v in=%v", m.OutDestinations, m.InSources)
	}
	if m.RemainedPct() != 100.0/3 {
		t.Errorf("RemainedPct = %v", m.RemainedPct())
	}
	if d := m.TopDestinations(5); len(d) != 1 || d[0] != 1 {
		t.Errorf("TopDestinations = %v", d)
	}
}

func TestRelocationLatency(t *testing.T) {
	an, st, ru, us := unitAnalyzer(t)
	event := simtime.Day(100)
	// Three members on the event day; they relocate at +3, +9, never.
	addMeasurement(st, "fast.ru.", event, nil, nil, []netip.Addr{us}, false)
	addMeasurement(st, "slow.ru.", event, nil, nil, []netip.Addr{us}, false)
	addMeasurement(st, "stuck.ru.", event, nil, nil, []netip.Addr{us}, false)
	for _, d := range []simtime.Day{event + 3, event + 6, event + 9} {
		st.BeginSweep(d)
		fastAddr := ru
		slowAddr := us
		if d >= event+9 {
			slowAddr = ru
		}
		st.Add(store.Measurement{Domain: "fast.ru.", Day: d, Config: store.Config{ApexAddrs: []netip.Addr{fastAddr}}})
		st.Add(store.Measurement{Domain: "slow.ru.", Day: d, Config: store.Config{ApexAddrs: []netip.Addr{slowAddr}}})
		st.Add(store.Measurement{Domain: "stuck.ru.", Day: d, Config: store.Config{ApexAddrs: []netip.Addr{us}}})
	}
	rep := an.RelocationLatency(2, event, event+9)
	if rep.Relocated != 2 || rep.StillThere != 1 || rep.Gone != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Delays) != 2 || rep.Delays[0] != 3 || rep.Delays[1] != 9 {
		t.Fatalf("delays = %v", rep.Delays)
	}
	if med, ok := rep.Median(); !ok || med != 3 {
		t.Errorf("median = %d, %v", med, ok)
	}
	if p90, ok := rep.Percentile(90); !ok || p90 != 9 {
		t.Errorf("p90 = %d", p90)
	}
	empty := LatencyReport{}
	if _, ok := empty.Median(); ok {
		t.Error("median of empty report")
	}
}

func TestRelocationLatencyOnFixture(t *testing.T) {
	f := getFixture(t)
	rep := f.an.RelocationLatency(47846, simtime.Date(2022, 3, 8), simtime.StudyEnd)
	if rep.Relocated < 30 {
		t.Fatalf("sedo relocations = %d", rep.Relocated)
	}
	med, ok := rep.Median()
	if !ok {
		t.Fatal("no median")
	}
	// §6: "virtually all of the impacted sites quickly found new
	// providers" — the bulk relocates within the first weeks.
	if med > 45 {
		t.Errorf("median relocation latency = %d days, want quick (≤45)", med)
	}
}

func TestCompositionStrings(t *testing.T) {
	if CompFull.String() != "Full Russian" || CompPart.String() != "Part Russian" ||
		CompNon.String() != "Non Russian" || CompUnknown.String() != "Unknown" {
		t.Error("composition names do not match the paper's legend")
	}
}
