package analysis

import (
	"context"
	"testing"

	"whereru/internal/openintel"
	"whereru/internal/simtime"
	"whereru/internal/store"
	"whereru/internal/world"
)

// mailFixture collects two MX-enabled sweeps over a small world.
func mailFixture(t *testing.T) (*Analyzer, []simtime.Day) {
	t.Helper()
	w, err := world.Build(world.Config{Seed: 9, Scale: 10000, RFShare: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	pipe := &openintel.Pipeline{
		Resolver:  w.NewResolver(),
		Seeds:     w.Registries,
		Clock:     w.Clock(),
		Store:     st,
		Workers:   4,
		CollectMX: true,
	}
	days := []simtime.Day{simtime.ConflictStart.Add(-7), world.GoogleStmtDay.Add(45)}
	if _, err := pipe.Run(context.Background(), days); err != nil {
		t.Fatal(err)
	}
	return &Analyzer{Store: st, Geo: w.Geo, Internet: w.Internet}, days
}

func TestMailProviderSeries(t *testing.T) {
	an, days := mailFixture(t)
	series := an.MailProviderSeries(days, nil)
	if len(series) != 2 {
		t.Fatalf("series length = %d", len(series))
	}
	pre := series[0]
	if pre.WithMail == 0 || pre.WithMail >= pre.Total {
		t.Fatalf("mail coverage = %d of %d, want a strict subset", pre.WithMail, pre.Total)
	}
	// Yandex dominates Russian domain mail.
	top := TopMailZones(series, 3)
	if len(top) == 0 || top[0] != "yandex.net." {
		t.Fatalf("top mail zones = %v, want yandex.net. leading", top)
	}
	// Google's share declines after its announcement.
	preG := pre.Share("googledomains.com.")
	postG := series[1].Share("googledomains.com.")
	if preG == 0 {
		t.Fatal("no Google Workspace mail before the conflict")
	}
	if postG >= preG {
		t.Errorf("google mail share %.2f → %.2f, want decline", preG, postG)
	}
}

func TestMailCompositionSeries(t *testing.T) {
	an, days := mailFixture(t)
	series := an.MailCompositionSeries(days, nil)
	pre := series[0]
	classified := pre.Full + pre.Part + pre.Non
	if classified == 0 {
		t.Fatal("nothing classified")
	}
	// MX-target TLD composition: mail.ru/hostingN.ru/nic.ru etc. are
	// Russian-TLD; yandex.net, googledomains.com, beget.com are not —
	// expect a substantial non-Russian-TLD share but a Russian plurality
	// via the hosting-provider mail hosts.
	if pre.FullPct() < 20 {
		t.Errorf("full RU-TLD mail = %.1f%%, implausibly low", pre.FullPct())
	}
	if pre.NonPct() < 20 {
		t.Errorf("non RU-TLD mail = %.1f%%, implausibly low (yandex.net alone is ≈34%%)", pre.NonPct())
	}
}

func TestMXZone(t *testing.T) {
	cases := []struct{ in, want string }{
		{"mx.yandex.net.", "yandex.net."},
		{"aspmx.googledomains.com", "googledomains.com."},
		{"mxs.mail.ru.", "mail.ru."},
	}
	for _, c := range cases {
		if got := MXZone(c.in); got != c.want {
			t.Errorf("MXZone(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestHHI(t *testing.T) {
	if got := HHI(map[string]int{}); got != 0 {
		t.Errorf("empty HHI = %v", got)
	}
	if got := HHI(map[string]int{"a": 10}); got != 1.0 {
		t.Errorf("monopoly HHI = %v, want 1", got)
	}
	got := HHI(map[string]int{"a": 1, "b": 1, "c": 1, "d": 1})
	if got < 0.2499 || got > 0.2501 {
		t.Errorf("four-way HHI = %v, want 0.25", got)
	}
	// More concentration → higher HHI.
	even := HHI(map[string]int{"a": 50, "b": 50})
	skew := HHI(map[string]int{"a": 90, "b": 10})
	if skew <= even {
		t.Errorf("HHI(90/10)=%v ≤ HHI(50/50)=%v", skew, even)
	}
}

func TestCAConcentrationJumps(t *testing.T) {
	w, err := world.Build(world.Config{Seed: 9, Scale: 2000, RFShare: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	points := CAConcentration(w.CTLog)
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	pre, post := points[0], points[2]
	// Let's Encrypt already dominates pre-conflict (share ≈ 91.6% → HHI ≈
	// 0.84) and the market concentrates further after sanctions.
	if pre.HHI < 0.75 {
		t.Errorf("pre-conflict CA HHI = %.3f, want ≥ 0.75", pre.HHI)
	}
	if post.HHI <= pre.HHI {
		t.Errorf("CA HHI did not rise: %.4f → %.4f", pre.HHI, post.HHI)
	}
	if post.Top1Share < 98 {
		t.Errorf("post-sanctions top-1 share = %.1f%%, want ≥ 98%%", post.Top1Share)
	}
	if pre.Participants <= 3 {
		t.Errorf("pre-conflict participants = %d, want a long tail", pre.Participants)
	}
}

func TestHostingConcentrationStable(t *testing.T) {
	f := getFixture(t)
	days := []simtime.Day{simtime.StudyStart, simtime.StudyEnd}
	points := f.an.HostingConcentration(days, nil)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		// Hosting is diverse: dozens of ASNs, no monopoly.
		if p.HHI > 0.2 {
			t.Errorf("hosting HHI on %s = %.3f, implausibly concentrated", p.Day, p.HHI)
		}
		if p.Participants < 10 {
			t.Errorf("hosting participants on %s = %d", p.Day, p.Participants)
		}
	}
	// §6: hosting concentration changes are modest across the window.
	if d := points[1].HHI - points[0].HHI; d > 0.05 || d < -0.05 {
		t.Errorf("hosting HHI moved %.3f over the window, want ≈ stable", d)
	}
}

func TestRanked(t *testing.T) {
	r := Ranked(map[string]int{"a": 3, "b": 6, "c": 1})
	if len(r) != 3 || r[0].Key != "b" || r[2].Key != "c" {
		t.Fatalf("Ranked = %+v", r)
	}
	if r[0].Share != 60 {
		t.Errorf("top share = %v", r[0].Share)
	}
}
