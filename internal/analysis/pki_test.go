package analysis

import (
	"fmt"
	"testing"

	"whereru/internal/ct"
	"whereru/internal/pki"
	"whereru/internal/sanctions"
	"whereru/internal/scan"
	"whereru/internal/simtime"
)

// issue creates a logged certificate in the log at the given day.
func issue(t *testing.T, log *ct.Log, ca *pki.CA, day simtime.Day, name string) *pki.Certificate {
	t.Helper()
	c, err := ca.Issue(day, name)
	if err != nil {
		t.Fatal(err)
	}
	if c.Logged {
		if _, err := log.Append(c, day); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestIssuanceByPeriodBoundaries(t *testing.T) {
	log := ct.NewLog("t")
	le := pki.NewCA(1, pki.LetsEncrypt, nil, 90)
	// One cert on the last pre-conflict day, one on the first conflict
	// day, one on the first post-sanctions day, one outside the window.
	issue(t, log, le, simtime.ConflictStart.Add(-1), "a.ru")
	issue(t, log, le, simtime.ConflictStart, "b.ru")
	issue(t, log, le, simtime.SanctionsInEffect, "c.ru")
	issue(t, log, le, simtime.CTWindowEnd.Add(5), "d.ru") // outside
	issue(t, log, le, simtime.ConflictStart, "e.com")     // not Russian

	periods := IssuanceByPeriod(log)
	if len(periods) != 3 {
		t.Fatalf("periods = %d", len(periods))
	}
	if periods[0].Total != 1 || periods[1].Total != 1 || periods[2].Total != 1 {
		t.Fatalf("totals = %d/%d/%d, want 1/1/1", periods[0].Total, periods[1].Total, periods[2].Total)
	}
	if periods[0].Period != simtime.PreConflict || periods[2].Period != simtime.PostSanctions {
		t.Fatal("period order wrong")
	}
	if periods[0].Days != 54 || periods[1].Days != 30 {
		t.Fatalf("period lengths = %d/%d, want 54/30", periods[0].Days, periods[1].Days)
	}
	if got := periods[0].Share(pki.LetsEncrypt); got != 100 {
		t.Errorf("share = %v", got)
	}
	if got := periods[0].Share("Nobody"); got != 0 {
		t.Errorf("absent share = %v", got)
	}
	if periods[0].PerDay() <= 0 {
		t.Error("PerDay must be positive")
	}
}

func TestIssuanceTimelinesStoppedBy(t *testing.T) {
	log := ct.NewLog("t")
	le := pki.NewCA(1, pki.LetsEncrypt, nil, 90)
	dc := pki.NewCA(2, pki.DigiCert, nil, 365)
	for d := simtime.CTWindowStart; d <= simtime.CTWindowEnd; d = d.Add(10) {
		issue(t, log, le, d, fmt.Sprintf("le%d.ru", d))
		if d < simtime.ConflictStart {
			issue(t, log, dc, d, fmt.Sprintf("dc%d.ru", d))
		}
	}
	tls := IssuanceTimelines(log, 10)
	if len(tls) != 2 || tls[0].Org != pki.LetsEncrypt {
		t.Fatalf("timelines = %+v", tls)
	}
	var dcTL Timeline
	for _, tl := range tls {
		if tl.Org == pki.DigiCert {
			dcTL = tl
		}
	}
	if !dcTL.StoppedBy(simtime.ConflictStart) {
		t.Error("DigiCert should have stopped by the conflict start")
	}
	if tls[0].StoppedBy(simtime.Date(2022, 5, 1)) {
		t.Error("Let's Encrypt should still be active in May")
	}
	// k bounds the result.
	if got := IssuanceTimelines(log, 1); len(got) != 1 {
		t.Errorf("k=1 → %d timelines", len(got))
	}
}

func TestRevocationStatsWindowAndRanking(t *testing.T) {
	log := ct.NewLog("t")
	store := pki.NewStore()
	sanc := sanctions.NewList()
	sanc.Add(sanctions.Entry{Domain: "bad.ru", Listed: simtime.Date(2022, 2, 25)})

	sectigo := pki.NewCA(5, pki.Sectigo, nil, 365)
	le := pki.NewCA(1, pki.LetsEncrypt, nil, 90)

	// An expired-before-cutoff certificate must not count.
	old, _ := le.Issue(simtime.Date(2021, 10, 1), "old.ru")
	old.NotAfter = simtime.Date(2022, 2, 1)
	store.Add(old)
	log.Append(old, old.NotBefore)

	// Sanctioned cert, revoked.
	s1 := issue(t, log, sectigo, simtime.Date(2022, 1, 10), "bad.ru")
	store.Add(s1)
	store.Revoke(s1.Serial, simtime.Date(2022, 3, 1), pki.ReasonCessation)
	// Ordinary cert, kept.
	s2 := issue(t, log, le, simtime.Date(2022, 1, 12), "good.ru")
	store.Add(s2)

	rows := RevocationStats(log, store, sanc, 5)
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Org != pki.Sectigo {
		t.Fatalf("ranking wrong: %+v", rows)
	}
	sec := rows[0]
	if sec.Issued != 1 || sec.Revoked != 1 || sec.SancIssued != 1 || sec.SancRevoked != 1 {
		t.Fatalf("sectigo row = %+v", sec)
	}
	if sec.RevokedPct() != 100 || sec.SancRevokedPct() != 100 {
		t.Fatalf("rates = %v/%v", sec.RevokedPct(), sec.SancRevokedPct())
	}
	leRow := rows[1]
	// The expired certificate was excluded: only good.ru counts.
	if leRow.Issued != 1 || leRow.Revoked != 0 || leRow.SancIssued != 0 {
		t.Fatalf("LE row = %+v", leRow)
	}
}

func TestRussianCAImpactEmptyArchive(t *testing.T) {
	rep := RussianCAImpact(scan.NewArchive(), sanctions.NewList())
	if rep.UniqueCerts != 0 || rep.BackdropCerts != 0 {
		t.Fatalf("empty archive report = %+v", rep)
	}
}
