package analysis

import (
	"sort"

	"whereru/internal/dns"
	"whereru/internal/simtime"
	"whereru/internal/store"
)

// Mail-provider analysis (measurement extension). The paper's related
// work (Liu et al., "Who's Got Your Mail?", IMC '21) groups domains by
// the operator of their MX targets and shows Russia bucking the Western
// mail-centralization trend with heavily domestic providers. With the
// pipeline's CollectMX extension enabled, these analyses reproduce that
// view for the .ru/.рф population.

// MailSharePoint is one day of mail-provider shares: for each MX-target
// zone (the mail operator's domain, e.g. "yandex.net."), the share of
// domains-with-mail it serves.
type MailSharePoint struct {
	Day simtime.Day
	// WithMail is the number of measured domains publishing any MX.
	WithMail int
	// Total is the number of measured domains.
	Total int
	// Counts maps MX-target zone to the number of domains it serves.
	Counts map[string]int
}

// Share returns a mail zone's share of domains-with-mail, in percent.
func (p MailSharePoint) Share(zone string) float64 { return pct(p.Counts[zone], p.WithMail) }

// MXZone maps an MX host to its operator zone (the host minus its first
// label): mx.yandex.net. → yandex.net.
func MXZone(host string) string { return dns.Parent(dns.Canonical(host)) }

// MailProviderSeries computes per-day mail-operator shares.
func (a *Analyzer) MailProviderSeries(days []simtime.Day, filter Filter) []MailSharePoint {
	totals, withMail, counts := epochShareSeries(a, days, filter,
		func(cfg store.Config) bool { return !cfg.Failed },
		func(cfg store.Config) bool { return len(cfg.MXHosts) > 0 },
		func(cfg store.Config, dst []string) []string {
			for _, h := range cfg.MXHosts {
				dst = uniqueAppend(dst, MXZone(h))
			}
			return dst
		})
	out := make([]MailSharePoint, 0, len(days))
	for i, day := range days {
		out = append(out, MailSharePoint{Day: day, Total: totals[i], WithMail: withMail[i], Counts: counts[i]})
	}
	return out
}

// referenceMailProviderSeries is the per-day reference path, kept as the
// equivalence oracle for the epoch engine.
func (a *Analyzer) referenceMailProviderSeries(days []simtime.Day, filter Filter) []MailSharePoint {
	out := make([]MailSharePoint, 0, len(days))
	for _, day := range days {
		p := MailSharePoint{Day: day, Counts: make(map[string]int)}
		a.Store.ForEachAt(day, func(domain string, cfg store.Config) {
			if filter != nil && !filter(domain) {
				return
			}
			if cfg.Failed {
				return
			}
			p.Total++
			if len(cfg.MXHosts) == 0 {
				return
			}
			p.WithMail++
			seen := map[string]bool{}
			for _, h := range cfg.MXHosts {
				z := MXZone(h)
				if !seen[z] {
					seen[z] = true
					p.Counts[z]++
				}
			}
		})
		out = append(out, p)
	}
	return out
}

// TopMailZones ranks mail-operator zones on the final day of a series.
func TopMailZones(series []MailSharePoint, k int) []string {
	if len(series) == 0 {
		return nil
	}
	last := series[len(series)-1]
	zones := make([]string, 0, len(last.Counts))
	for z := range last.Counts {
		zones = append(zones, z)
	}
	sort.Slice(zones, func(i, j int) bool {
		if last.Counts[zones[i]] != last.Counts[zones[j]] {
			return last.Counts[zones[i]] > last.Counts[zones[j]]
		}
		return zones[i] < zones[j]
	})
	if k > len(zones) {
		k = len(zones)
	}
	return zones[:k]
}

// MailCompositionSeries classifies domains-with-mail by whether their MX
// targets geolocate to Russia (via the NS-address trick does not apply;
// MX targets are classified by operator-zone TLD as a proxy — the
// Liu-et-al methodology groups by operator, and operator country is the
// analyst's judgment; here Russian-TLD operator zones count as Russian).
func (a *Analyzer) MailCompositionSeries(days []simtime.Day, filter Filter) []Point {
	return a.epochSeries(days, filter, mailCompositionClassifier)
}

func mailCompositionClassifier(geoLookup) func(simtime.Day, store.Config) Composition {
	return func(_ simtime.Day, cfg store.Config) Composition {
		if cfg.Failed || len(cfg.MXHosts) == 0 {
			return CompUnknown
		}
		sawRU, sawOther := false, false
		for _, h := range cfg.MXHosts {
			if isRussianTLD(dns.TLD(h)) {
				sawRU = true
			} else {
				sawOther = true
			}
		}
		return classifyFlags(sawRU, sawOther)
	}
}
