package dns

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// RR is a DNS resource record. Name is canonical; Data holds the typed
// RDATA. The Type field must agree with the dynamic type of Data; the
// constructors below guarantee this.
type RR struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32
	Data  RData
}

// String renders the record in zone-file presentation format.
func (rr RR) String() string {
	return fmt.Sprintf("%s\t%d\t%s\t%s\t%s", rr.Name, rr.TTL, rr.Class, rr.Type, rr.Data.String())
}

// RData is the typed payload of a resource record.
type RData interface {
	// String renders the RDATA in presentation format.
	String() string
	// appendWire appends the RDATA in wire format. Name compression is
	// deliberately not applied inside RDATA (RFC 3597 forbids it for new
	// types and it buys little for NS/CNAME in small messages).
	appendWire(b []byte) ([]byte, error)
}

// AData is an IPv4 address record payload.
type AData struct{ Addr netip.Addr }

// String implements RData.
func (d AData) String() string { return d.Addr.String() }

func (d AData) appendWire(b []byte) ([]byte, error) {
	if !d.Addr.Is4() {
		return nil, fmt.Errorf("dns: A record with non-IPv4 address %v", d.Addr)
	}
	a4 := d.Addr.As4()
	return append(b, a4[:]...), nil
}

// AAAAData is an IPv6 address record payload.
type AAAAData struct{ Addr netip.Addr }

// String implements RData.
func (d AAAAData) String() string { return d.Addr.String() }

func (d AAAAData) appendWire(b []byte) ([]byte, error) {
	if !d.Addr.Is6() || d.Addr.Is4In6() {
		return nil, fmt.Errorf("dns: AAAA record with non-IPv6 address %v", d.Addr)
	}
	a16 := d.Addr.As16()
	return append(b, a16[:]...), nil
}

// NSData names an authoritative server for the owner name.
type NSData struct{ Host string }

// String implements RData.
func (d NSData) String() string { return d.Host }

func (d NSData) appendWire(b []byte) ([]byte, error) { return appendName(b, d.Host) }

// CNAMEData is an alias record payload.
type CNAMEData struct{ Target string }

// String implements RData.
func (d CNAMEData) String() string { return d.Target }

func (d CNAMEData) appendWire(b []byte) ([]byte, error) { return appendName(b, d.Target) }

// SOAData is a start-of-authority payload.
type SOAData struct {
	MName   string // primary name server
	RName   string // responsible mailbox
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// String implements RData.
func (d SOAData) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d", d.MName, d.RName, d.Serial, d.Refresh, d.Retry, d.Expire, d.Minimum)
}

func (d SOAData) appendWire(b []byte) ([]byte, error) {
	b, err := appendName(b, d.MName)
	if err != nil {
		return nil, err
	}
	b, err = appendName(b, d.RName)
	if err != nil {
		return nil, err
	}
	for _, v := range [5]uint32{d.Serial, d.Refresh, d.Retry, d.Expire, d.Minimum} {
		b = append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return b, nil
}

// MXData is a mail-exchanger payload.
type MXData struct {
	Preference uint16
	Host       string
}

// String implements RData.
func (d MXData) String() string { return fmt.Sprintf("%d %s", d.Preference, d.Host) }

func (d MXData) appendWire(b []byte) ([]byte, error) {
	b = append(b, byte(d.Preference>>8), byte(d.Preference))
	return appendName(b, d.Host)
}

// TXTData is a text payload of one or more character-strings.
type TXTData struct{ Strings []string }

// String implements RData.
func (d TXTData) String() string {
	quoted := make([]string, len(d.Strings))
	for i, s := range d.Strings {
		quoted[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(quoted, " ")
}

func (d TXTData) appendWire(b []byte) ([]byte, error) {
	if len(d.Strings) == 0 {
		return nil, fmt.Errorf("dns: TXT record with no strings")
	}
	for _, s := range d.Strings {
		if len(s) > 255 {
			return nil, fmt.Errorf("dns: TXT character-string exceeds 255 octets")
		}
		b = append(b, byte(len(s)))
		b = append(b, s...)
	}
	return b, nil
}

// RawData carries the RDATA of a record type the codec has no
// structured representation for, verbatim (RFC 3597 opaque handling).
// Encoding reproduces the exact original octets, so decoding unknown
// types is lossless and re-encoding is idempotent.
type RawData struct{ Octets string }

// String implements RData in the RFC 3597 \# presentation format.
func (d RawData) String() string {
	if len(d.Octets) == 0 {
		return `\# 0`
	}
	return fmt.Sprintf(`\# %d %x`, len(d.Octets), d.Octets)
}

func (d RawData) appendWire(b []byte) ([]byte, error) { return append(b, d.Octets...), nil }

// NewA builds an A record.
func NewA(name string, ttl uint32, addr netip.Addr) RR {
	return RR{Name: Canonical(name), Type: TypeA, Class: ClassIN, TTL: ttl, Data: AData{addr}}
}

// NewAAAA builds an AAAA record.
func NewAAAA(name string, ttl uint32, addr netip.Addr) RR {
	return RR{Name: Canonical(name), Type: TypeAAAA, Class: ClassIN, TTL: ttl, Data: AAAAData{addr}}
}

// NewNS builds an NS record.
func NewNS(name string, ttl uint32, host string) RR {
	return RR{Name: Canonical(name), Type: TypeNS, Class: ClassIN, TTL: ttl, Data: NSData{Canonical(host)}}
}

// NewCNAME builds a CNAME record.
func NewCNAME(name string, ttl uint32, target string) RR {
	return RR{Name: Canonical(name), Type: TypeCNAME, Class: ClassIN, TTL: ttl, Data: CNAMEData{Canonical(target)}}
}

// NewSOA builds an SOA record with conventional timer values.
func NewSOA(name, mname, rname string, serial uint32) RR {
	return RR{Name: Canonical(name), Type: TypeSOA, Class: ClassIN, TTL: 3600, Data: SOAData{
		MName: Canonical(mname), RName: Canonical(rname), Serial: serial,
		Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 3600,
	}}
}

// NewMX builds an MX record.
func NewMX(name string, ttl uint32, pref uint16, host string) RR {
	return RR{Name: Canonical(name), Type: TypeMX, Class: ClassIN, TTL: ttl, Data: MXData{pref, Canonical(host)}}
}

// NewTXT builds a TXT record.
func NewTXT(name string, ttl uint32, strings ...string) RR {
	return RR{Name: Canonical(name), Type: TypeTXT, Class: ClassIN, TTL: ttl, Data: TXTData{strings}}
}

// SortRRs orders records deterministically (by name, type, then rendered
// RDATA); useful for comparing answer sets in tests and storage.
func SortRRs(rrs []RR) {
	sort.Slice(rrs, func(i, j int) bool {
		if rrs[i].Name != rrs[j].Name {
			return rrs[i].Name < rrs[j].Name
		}
		if rrs[i].Type != rrs[j].Type {
			return rrs[i].Type < rrs[j].Type
		}
		return rrs[i].Data.String() < rrs[j].Data.String()
	})
}
