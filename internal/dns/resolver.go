package dns

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
)

// Resolver performs iterative resolution from the root, the way a
// measurement platform does: no recursion is requested from servers;
// referrals are followed, glue is used when present, and out-of-bailiwick
// name-server names are resolved with bounded sub-queries.
//
// The resolver's infrastructure state — delegation cache, host cache
// (positive and negative), and the singleflight table coalescing
// concurrent misses — lives in an InfraCache, private by default and
// shareable across resolvers with SetCache. Caches must be flushed
// between measurement days, since the simulated world changes under the
// resolver (FlushCache).
type Resolver struct {
	Client *Client
	// Roots are the root name-server addresses (hints).
	Roots []netip.Addr
	// MaxSteps bounds referral-following per query (default 30).
	MaxSteps int
	// MaxCNAME bounds alias chains (default 8).
	MaxCNAME int
	// Trace, when set, observes every resolution step (zone cut queried,
	// server used, question, and outcome) — cmd/dnsdig's -trace output.
	Trace func(step TraceStep)

	cache *InfraCache
}

// NewResolver builds a resolver over the transport with the given root
// hints and a private infrastructure cache.
func NewResolver(t Transport, roots []netip.Addr) *Resolver {
	return &Resolver{
		Client:   NewClient(t),
		Roots:    roots,
		MaxSteps: 30,
		MaxCNAME: 8,
		cache:    NewInfraCache(),
	}
}

// Cache returns the resolver's infrastructure cache.
func (r *Resolver) Cache() *InfraCache { return r.cache }

// SetCache replaces the resolver's infrastructure cache, typically with
// one shared by several resolvers. Call before issuing queries.
func (r *Resolver) SetCache(c *InfraCache) { r.cache = c }

// FlushCache clears all caches (including negative entries). Call when
// the simulated date advances.
func (r *Resolver) FlushCache() { r.cache.Flush() }

// CacheStats reports cache sizes and cumulative hit/miss/coalesced
// counters (for the ablation benchmarks, sweep stats, and /metrics).
func (r *Resolver) CacheStats() CacheStats { return r.cache.Stats() }

// TraceStep is one hop of an iterative resolution.
type TraceStep struct {
	Zone     string
	Server   netip.Addr
	Question Question
	// Referral is the child zone when the answer was a delegation, "".
	Referral string
	// RCode is the response code received.
	RCode RCode
	// Answers is the number of answer records returned.
	Answers int
}

// Result is the outcome of an iterative resolution.
type Result struct {
	RCode   RCode
	Answers []RR
	// Chain records any CNAMEs followed, in order.
	Chain []string
	// Zone is the deepest zone cut that answered.
	Zone string
}

// Resolution errors.
var (
	ErrResolutionFailed = errors.New("dns: resolution failed")
	ErrLameDelegation   = errors.New("dns: lame delegation")
	ErrCNAMELoop        = errors.New("dns: CNAME chain too long")
)

// Resolve iteratively resolves (name, qtype) and returns the final answer.
// NXDOMAIN and NODATA are returned as Results with empty Answers, not errors;
// errors mean the resolution process itself failed (no servers reachable,
// lame delegations, loops).
func (r *Resolver) Resolve(ctx context.Context, name string, qtype Type) (*Result, error) {
	return r.resolve(ctx, Canonical(name), qtype, 0)
}

func (r *Resolver) resolve(ctx context.Context, name string, qtype Type, depth int) (*Result, error) {
	if depth > 6 {
		return nil, fmt.Errorf("%w: glue-chase depth exceeded for %s", ErrResolutionFailed, name)
	}
	result := &Result{Zone: "."}
	qname := name
	for cnames := 0; ; cnames++ {
		if cnames > r.maxCNAME() {
			return nil, fmt.Errorf("%w resolving %s", ErrCNAMELoop, name)
		}
		res, err := r.resolveNoCNAME(ctx, qname, qtype, depth)
		if err != nil {
			return nil, err
		}
		result.RCode = res.RCode
		result.Zone = res.Zone
		// Split CNAMEs from final answers.
		var target string
		for _, rr := range res.Answers {
			if rr.Type == TypeCNAME && qtype != TypeCNAME {
				target = rr.Data.(CNAMEData).Target
			} else if rr.Type == qtype {
				result.Answers = append(result.Answers, rr)
			}
		}
		if len(result.Answers) > 0 || target == "" {
			return result, nil
		}
		result.Chain = append(result.Chain, target)
		qname = target
	}
}

func (r *Resolver) maxCNAME() int {
	if r.MaxCNAME <= 0 {
		return 8
	}
	return r.MaxCNAME
}

func (r *Resolver) maxSteps() int {
	if r.MaxSteps <= 0 {
		return 30
	}
	return r.MaxSteps
}

// resolveNoCNAME walks referrals for one owner name without following
// aliases (the caller does that).
func (r *Resolver) resolveNoCNAME(ctx context.Context, name string, qtype Type, depth int) (*Result, error) {
	servers, zone := r.deepestCached(name)
	var lastErr error
	for step := 0; step < r.maxSteps(); step++ {
		if len(servers) == 0 {
			return nil, fmt.Errorf("%w: no servers for %s at zone %s", ErrResolutionFailed, name, zone)
		}
		resp, usedServer, srvErr := r.queryAny(ctx, servers, name, qtype)
		if srvErr != nil {
			lastErr = srvErr
			// All servers for this cut failed; if we started from cache,
			// drop the entry and restart from the root once.
			if zone != "." {
				r.dropZone(zone)
				servers, zone = r.Roots, "."
				continue
			}
			return nil, fmt.Errorf("%w: querying %s: %v", ErrResolutionFailed, name, lastErr)
		}
		ts := TraceStep{Zone: zone, Server: usedServer, Question: Question{Name: name, Type: qtype, Class: ClassIN}, RCode: resp.RCode, Answers: len(resp.Answers)}
		switch {
		case resp.RCode == RCodeNXDomain:
			r.trace(ts)
			return &Result{RCode: RCodeNXDomain, Zone: zone}, nil
		case resp.RCode != RCodeNoError:
			return nil, fmt.Errorf("%w: %s from zone %s for %s", ErrResolutionFailed, resp.RCode, zone, name)
		case len(resp.Answers) > 0:
			r.trace(ts)
			return &Result{RCode: RCodeNoError, Answers: resp.Answers, Zone: zone}, nil
		}
		// Referral? The authority section is usually all NS records, in
		// which case it is used as the NS set directly (read-only) rather
		// than copied.
		nsCount := 0
		for _, rr := range resp.Authority {
			if rr.Type == TypeNS {
				nsCount++
			}
		}
		var nsSet []RR
		if nsCount == len(resp.Authority) {
			nsSet = resp.Authority
		} else if nsCount > 0 {
			nsSet = make([]RR, 0, nsCount)
			for _, rr := range resp.Authority {
				if rr.Type == TypeNS {
					nsSet = append(nsSet, rr)
				}
			}
		}
		if len(nsSet) == 0 {
			// Authoritative NODATA.
			if resp.Authoritative {
				r.trace(ts)
				return &Result{RCode: RCodeNoError, Zone: zone}, nil
			}
			return nil, fmt.Errorf("%w: dead end at zone %s for %s", ErrLameDelegation, zone, name)
		}
		childZone := nsSet[0].Name
		ts.Referral = childZone
		r.trace(ts)
		if childZone == zone || !IsSubdomain(childZone, zone) {
			return nil, fmt.Errorf("%w: referral from %s to %s", ErrLameDelegation, zone, childZone)
		}
		var next []netip.Addr
		var needResolve []string
		for _, ns := range nsSet {
			host := ns.Data.(NSData).Host
			// Collect this host's glue by scanning the additional section
			// directly — referral sets are a handful of records, so a
			// linear scan beats building a per-referral map.
			n0 := len(next)
			for _, rr := range resp.Additional {
				if rr.Type == TypeA && rr.Name == host {
					next = append(next, rr.Data.(AData).Addr)
				}
			}
			if len(next) > n0 {
				r.cache.storeHost(host, next[n0:len(next):len(next)])
			} else {
				needResolve = append(needResolve, host)
			}
		}
		// Only chase glueless NS names if we have no glued ones — the
		// common case in the simulation has at least one glued server.
		if len(next) == 0 {
			for _, host := range needResolve {
				addrs, err := r.LookupHost(ctx, host, depth+1)
				if err == nil && len(addrs) > 0 {
					next = append(next, addrs...)
					break
				}
				lastErr = err
			}
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("%w: no reachable name servers for %s (last: %v)", ErrLameDelegation, childZone, lastErr)
		}
		r.cacheZone(childZone, next)
		servers, zone = next, childZone
	}
	return nil, fmt.Errorf("%w: referral limit exceeded for %s", ErrResolutionFailed, name)
}

// queryAny tries servers until one answers usefully, reporting which
// did. The starting server is rotated by a name-derived offset instead
// of always hammering the first of the set — under injected loss, a
// fixed order concentrates retries (and failures) on one server while
// its siblings sit idle. SERVFAIL responses fail over to the next server
// the way real resolvers do; only if every server flaps is the SERVFAIL
// handed to the caller.
func (r *Resolver) queryAny(ctx context.Context, servers []netip.Addr, name string, qtype Type) (*Message, netip.Addr, error) {
	start := 0
	if n := len(servers); n > 1 {
		h := uint64(14695981039346656037)
		for i := 0; i < len(name); i++ {
			h ^= uint64(name[i])
			h *= 1099511628211
		}
		start = int((h ^ uint64(qtype)) % uint64(n))
	}
	var lastErr error
	var flapped *Message
	var flappedSrv netip.Addr
	for i := 0; i < len(servers); i++ {
		s := servers[(start+i)%len(servers)]
		resp, err := r.Client.Query(ctx, s, name, qtype)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return nil, netip.Addr{}, ctx.Err()
			}
			continue
		}
		if resp.RCode == RCodeServFail {
			flapped, flappedSrv = resp, s
			continue
		}
		return resp, s, nil
	}
	if flapped != nil {
		return flapped, flappedSrv, nil
	}
	return nil, netip.Addr{}, lastErr
}

func (r *Resolver) trace(step TraceStep) {
	if r.Trace != nil {
		r.Trace(step)
	}
}

// LookupHost resolves the A records for a host (used for name-server
// addresses), consulting the host cache — positive and negative — first.
// Failed lookups are negative-cached until FlushCache so a dead NS host
// costs one resolution per sweep, not one per delegated domain.
// Concurrent misses on the same host are coalesced: one caller leads the
// upstream resolution, the rest wait for its outcome, so a cache-miss
// storm on a popular provider issues a single query chain.
func (r *Resolver) LookupHost(ctx context.Context, host string, depth int) ([]netip.Addr, error) {
	host = Canonical(host)
	c := r.cache
	if addrs, ok, neg := c.lookupHost(host); ok {
		c.hostHits.Add(1)
		return addrs, nil
	} else if neg {
		c.hostHits.Add(1)
		return nil, fmt.Errorf("%w: host %s (negative-cached)", ErrResolutionFailed, host)
	}
	for {
		fl, lead, gen, addrs, ok, neg := c.joinOrLead(host)
		switch {
		case ok:
			c.hostHits.Add(1)
			return addrs, nil
		case neg:
			c.hostHits.Add(1)
			return nil, fmt.Errorf("%w: host %s (negative-cached)", ErrResolutionFailed, host)
		case lead:
			c.hostMisses.Add(1)
			return r.lookupHostUpstream(ctx, host, depth, fl, gen)
		}
		c.coalesced.Add(1)
		select {
		case <-fl.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if fl.err == nil {
			return fl.addrs, nil
		}
		if isContextErr(fl.err) && ctx.Err() == nil {
			// The leader's context died, not the lookup: retry with ours.
			continue
		}
		return nil, fl.err
	}
}

// lookupHostUpstream resolves host's addresses upstream and records the
// outcome in the cache (and the flight, when coalescing).
func (r *Resolver) lookupHostUpstream(ctx context.Context, host string, depth int, fl *hostFlight, gen uint64) ([]netip.Addr, error) {
	res, err := r.resolve(ctx, host, TypeA, depth)
	var addrs []netip.Addr
	if err == nil {
		addrs = make([]netip.Addr, 0, len(res.Answers))
		for _, rr := range res.Answers {
			if rr.Type == TypeA {
				addrs = append(addrs, rr.Data.(AData).Addr)
			}
		}
	}
	r.cache.completeHost(host, fl, gen, addrs, err, ctx.Err() != nil)
	if err != nil {
		return nil, err
	}
	return addrs, nil
}

// LookupA resolves A records for name, following CNAMEs.
func (r *Resolver) LookupA(ctx context.Context, name string) ([]netip.Addr, error) {
	res, err := r.Resolve(ctx, name, TypeA)
	if err != nil {
		return nil, err
	}
	addrs := make([]netip.Addr, 0, len(res.Answers))
	for _, rr := range res.Answers {
		if rr.Type == TypeA {
			addrs = append(addrs, rr.Data.(AData).Addr)
		}
	}
	return addrs, nil
}

// LookupNS resolves the NS set for name and returns the server names.
func (r *Resolver) LookupNS(ctx context.Context, name string) ([]string, error) {
	res, err := r.Resolve(ctx, name, TypeNS)
	if err != nil {
		return nil, err
	}
	hosts := make([]string, 0, len(res.Answers))
	for _, rr := range res.Answers {
		if rr.Type == TypeNS {
			hosts = append(hosts, rr.Data.(NSData).Host)
		}
	}
	return hosts, nil
}

func (r *Resolver) deepestCached(name string) ([]netip.Addr, string) {
	return r.cache.deepestCut(name, r.Roots)
}

func (r *Resolver) cacheZone(zone string, addrs []netip.Addr) { r.cache.storeZone(zone, addrs) }

func (r *Resolver) dropZone(zone string) { r.cache.dropZone(zone) }
