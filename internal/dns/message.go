package dns

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"sync"
)

// Header is the fixed 12-octet DNS message header (RFC 1035 §4.1.1),
// unpacked into named fields.
type Header struct {
	ID                 uint16
	Response           bool // QR
	Opcode             Opcode
	Authoritative      bool // AA
	Truncated          bool // TC
	RecursionDesired   bool // RD
	RecursionAvailable bool // RA
	RCode              RCode
}

// Question is a single query (RFC 1035 §4.1.2).
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String renders the question in dig-like form.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}

// Message is a complete DNS message.
type Message struct {
	Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// NewQuery builds a standard query message for one question.
func NewQuery(id uint16, name string, qtype Type) *Message {
	return &Message{
		Header:    Header{ID: id, RecursionDesired: false},
		Questions: []Question{{Name: Canonical(name), Type: qtype, Class: ClassIN}},
	}
}

// Reply builds a response skeleton for a request: same ID and question,
// QR set, RD echoed.
func (m *Message) Reply() *Message {
	r := &Message{
		Header: Header{
			ID:               m.ID,
			Response:         true,
			Opcode:           m.Opcode,
			RecursionDesired: m.RecursionDesired,
		},
	}
	r.Questions = append(r.Questions, m.Questions...)
	return r
}

// String renders the message in a dig-like presentation.
func (m *Message) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, ";; id=%d %s qr=%t aa=%t tc=%t rd=%t ra=%t\n",
		m.ID, m.RCode, m.Response, m.Authoritative, m.Truncated, m.RecursionDesired, m.RecursionAvailable)
	for _, q := range m.Questions {
		fmt.Fprintf(&b, ";; question: %s\n", q)
	}
	for _, section := range []struct {
		name string
		rrs  []RR
	}{{"answer", m.Answers}, {"authority", m.Authority}, {"additional", m.Additional}} {
		for _, rr := range section.rrs {
			fmt.Fprintf(&b, "%s\t; %s\n", rr, section.name)
		}
	}
	return b.String()
}

// Errors returned by the codec.
var (
	ErrTruncatedMessage = errors.New("dns: message too short")
	ErrBadPointer       = errors.New("dns: bad compression pointer")
	ErrNameTooLong      = errors.New("dns: name exceeds 255 octets")
)

const (
	headerLen = 12
	// MaxUDPPayload is the classic 512-octet UDP limit; the server sets TC
	// when a response would exceed it (our client then retries over the
	// in-memory or TCP-sized path).
	MaxUDPPayload = 512
	// maxMsgSize is the hard cap accepted by Encode.
	maxMsgSize = 65535
	// maxCount is the sanity bound on total record counts in a decoded
	// message, against hostile headers.
	maxCount = 1024
)

// flags packs the header flag fields into the wire flags word.
func (m *Message) flags() uint16 {
	var flags uint16
	if m.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Opcode&0xF) << 11
	if m.Authoritative {
		flags |= 1 << 10
	}
	if m.Truncated {
		flags |= 1 << 9
	}
	if m.RecursionDesired {
		flags |= 1 << 8
	}
	if m.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.RCode & 0xF)
	return flags
}

// setFlags unpacks the wire flags word into the header fields.
func (m *Message) setFlags(flags uint16) {
	m.Response = flags&(1<<15) != 0
	m.Opcode = Opcode(flags >> 11 & 0xF)
	m.Authoritative = flags&(1<<10) != 0
	m.Truncated = flags&(1<<9) != 0
	m.RecursionDesired = flags&(1<<8) != 0
	m.RecursionAvailable = flags&(1<<7) != 0
	m.RCode = RCode(flags & 0xF)
}

// nameOffset records that the name suffix was written literally at off
// (message-relative). Suffixes of a canonical name are substrings of it,
// so the compression table holds no allocated keys.
type nameOffset struct {
	suffix string
	off    int
}

// encoder is the reusable state of one message encode: the compression
// table. Pooled so steady-state encoding allocates nothing.
type encoder struct {
	names []nameOffset
}

var encoderPool = sync.Pool{New: func() any { return new(encoder) }}

// appendCompressedName writes name using RFC 1035 compression pointers,
// byte-identically to the reference builder: the longest suffix already
// written (scanning the table in insertion order, so first-write-wins
// exactly like the reference map) is referenced with a 2-octet pointer,
// and only the new leading labels are written literally. base is the
// message's start offset within b.
func (e *encoder) appendCompressedName(b []byte, base int, name string) ([]byte, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("dns: invalid name %q", name)
	}
	if name == "." {
		return append(b, 0), nil
	}
	for pos := 0; pos < len(name); {
		suffix := name[pos:]
		off := -1
		for i := range e.names {
			if e.names[i].suffix == suffix {
				off = e.names[i].off
				break
			}
		}
		if off >= 0 { // recorded offsets are always < 0x3FFF
			return append(b, 0xC0|byte(off>>8), byte(off)), nil
		}
		if len(b)-base < 0x3FFF {
			e.names = append(e.names, nameOffset{suffix, len(b) - base})
		}
		dot := strings.IndexByte(suffix, '.') // ValidName guarantees 1..63
		b = append(b, byte(dot))
		b = append(b, suffix[:dot]...)
		pos += dot + 1
	}
	return append(b, 0), nil
}

func appendUint16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }
func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func (e *encoder) appendRR(b []byte, base int, rr RR) ([]byte, error) {
	b, err := e.appendCompressedName(b, base, rr.Name)
	if err != nil {
		return nil, err
	}
	b = appendUint16(b, uint16(rr.Type))
	b = appendUint16(b, uint16(rr.Class))
	b = appendUint32(b, rr.TTL)
	lenOff := len(b)
	b = appendUint16(b, 0) // placeholder RDLENGTH
	b, err = rr.Data.appendWire(b)
	if err != nil {
		return nil, err
	}
	rdlen := len(b) - lenOff - 2
	if rdlen > 0xFFFF {
		return nil, fmt.Errorf("dns: RDATA too long (%d octets)", rdlen)
	}
	b[lenOff] = byte(rdlen >> 8)
	b[lenOff+1] = byte(rdlen)
	return b, nil
}

// AppendEncode appends the wire encoding of m to buf and returns the
// extended slice. Compression offsets are relative to len(buf), so a
// message can be appended after framing bytes. This is the allocation-free
// fast path: with a buffer of sufficient capacity it does not allocate.
func (m *Message) AppendEncode(buf []byte) ([]byte, error) {
	e := encoderPool.Get().(*encoder)
	e.names = e.names[:0]
	b, err := m.appendEncode(buf, e)
	encoderPool.Put(e)
	return b, err
}

func (m *Message) appendEncode(buf []byte, e *encoder) ([]byte, error) {
	base := len(buf)
	b := appendUint16(buf, m.ID)
	b = appendUint16(b, m.flags())
	b = appendUint16(b, uint16(len(m.Questions)))
	b = appendUint16(b, uint16(len(m.Answers)))
	b = appendUint16(b, uint16(len(m.Authority)))
	b = appendUint16(b, uint16(len(m.Additional)))
	var err error
	for _, q := range m.Questions {
		if b, err = e.appendCompressedName(b, base, q.Name); err != nil {
			return nil, err
		}
		b = appendUint16(b, uint16(q.Type))
		b = appendUint16(b, uint16(q.Class))
	}
	for _, section := range [3][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range section {
			if b, err = e.appendRR(b, base, rr); err != nil {
				return nil, err
			}
		}
	}
	if len(b)-base > maxMsgSize {
		return nil, fmt.Errorf("dns: message exceeds %d octets", maxMsgSize)
	}
	return b, nil
}

// Encode serializes the message to wire format in a fresh buffer.
func (m *Message) Encode() ([]byte, error) {
	return m.AppendEncode(make([]byte, 0, 512))
}

// parser decodes one message. Names are parsed by offset directly into
// the packet: labels are copied into the fixed scratch buffer (no
// intermediate label slices or builders) and materialized as a string
// once — or not at all when the intern table already holds the name.
type parser struct {
	buf     []byte
	pos     int
	intern  *wireIntern
	scratch [256]byte
}

func (p *parser) uint16() (uint16, error) {
	if p.pos+2 > len(p.buf) {
		return 0, ErrTruncatedMessage
	}
	v := uint16(p.buf[p.pos])<<8 | uint16(p.buf[p.pos+1])
	p.pos += 2
	return v, nil
}

func (p *parser) uint32() (uint32, error) {
	if p.pos+4 > len(p.buf) {
		return 0, ErrTruncatedMessage
	}
	v := uint32(p.buf[p.pos])<<24 | uint32(p.buf[p.pos+1])<<16 | uint32(p.buf[p.pos+2])<<8 | uint32(p.buf[p.pos+3])
	p.pos += 4
	return v, nil
}

// str materializes decoded name bytes as a string, through the intern
// table when one is attached.
func (p *parser) str(b []byte) string {
	if p.intern != nil {
		return p.intern.name(b)
	}
	return string(b)
}

// name decodes a possibly-compressed name starting at p.pos, leaving p.pos
// just past the name's encoding at the top level. The checks mirror the
// reference parser exactly (same order, same bounds) so acceptance is
// identical; only the string materialization differs.
func (p *parser) name() (string, error) {
	n := 0 // presentation bytes accumulated in scratch
	pos := p.pos
	jumped := false
	jumps := 0
	for {
		if pos >= len(p.buf) {
			return "", ErrTruncatedMessage
		}
		b := p.buf[pos]
		switch {
		case b == 0:
			if !jumped {
				p.pos = pos + 1
			}
			if n == 0 {
				return ".", nil
			}
			name := p.scratch[:n]
			if !validName(name) {
				return "", fmt.Errorf("dns: decoded invalid name %q", name)
			}
			return p.str(name), nil
		case b&0xC0 == 0xC0:
			if pos+2 > len(p.buf) {
				return "", ErrTruncatedMessage
			}
			target := int(b&0x3F)<<8 | int(p.buf[pos+1])
			if !jumped {
				p.pos = pos + 2
			}
			// Pointers must go strictly backwards; that plus a jump
			// budget guards against loops in hostile messages.
			if target >= pos {
				return "", ErrBadPointer
			}
			jumps++
			if jumps > 32 {
				return "", ErrBadPointer
			}
			pos = target
			jumped = true
		case b&0xC0 != 0:
			return "", fmt.Errorf("dns: reserved label type 0x%02x", b&0xC0)
		default:
			if pos+1+int(b) > len(p.buf) {
				return "", ErrTruncatedMessage
			}
			if n+int(b)+1 > 255 {
				return "", ErrNameTooLong
			}
			copy(p.scratch[n:], p.buf[pos+1:pos+1+int(b)])
			n += int(b)
			p.scratch[n] = '.'
			n++
			pos += 1 + int(b)
		}
	}
}

func (p *parser) rr() (RR, error) {
	var rr RR
	name, err := p.name()
	if err != nil {
		return rr, err
	}
	t, err := p.uint16()
	if err != nil {
		return rr, err
	}
	c, err := p.uint16()
	if err != nil {
		return rr, err
	}
	ttl, err := p.uint32()
	if err != nil {
		return rr, err
	}
	rdlen, err := p.uint16()
	if err != nil {
		return rr, err
	}
	if p.pos+int(rdlen) > len(p.buf) {
		return rr, ErrTruncatedMessage
	}
	rdEnd := p.pos + int(rdlen)
	rr.Name, rr.Type, rr.Class, rr.TTL = name, Type(t), Class(c), ttl
	switch rr.Type {
	case TypeA:
		if rdlen != 4 {
			return rr, fmt.Errorf("dns: A RDATA length %d", rdlen)
		}
		addr := netip.AddrFrom4([4]byte(p.buf[p.pos:rdEnd]))
		if p.intern != nil {
			rr.Data = p.intern.aData(addr)
		} else {
			rr.Data = AData{addr}
		}
		p.pos = rdEnd
	case TypeAAAA:
		if rdlen != 16 {
			return rr, fmt.Errorf("dns: AAAA RDATA length %d", rdlen)
		}
		addr := netip.AddrFrom16([16]byte(p.buf[p.pos:rdEnd]))
		if p.intern != nil {
			rr.Data = p.intern.aaaaData(addr)
		} else {
			rr.Data = AAAAData{addr}
		}
		p.pos = rdEnd
	case TypeNS:
		host, err := p.name()
		if err != nil {
			return rr, err
		}
		if p.intern != nil {
			rr.Data = p.intern.nsData(host)
		} else {
			rr.Data = NSData{host}
		}
	case TypeCNAME:
		target, err := p.name()
		if err != nil {
			return rr, err
		}
		if p.intern != nil {
			rr.Data = p.intern.cnameData(target)
		} else {
			rr.Data = CNAMEData{target}
		}
	case TypeSOA:
		var soa SOAData
		if soa.MName, err = p.name(); err != nil {
			return rr, err
		}
		if soa.RName, err = p.name(); err != nil {
			return rr, err
		}
		for _, dst := range [5]*uint32{&soa.Serial, &soa.Refresh, &soa.Retry, &soa.Expire, &soa.Minimum} {
			if *dst, err = p.uint32(); err != nil {
				return rr, err
			}
		}
		if p.intern != nil {
			rr.Data = p.intern.soaData(soa)
		} else {
			rr.Data = soa
		}
	case TypeMX:
		pref, err := p.uint16()
		if err != nil {
			return rr, err
		}
		host, err := p.name()
		if err != nil {
			return rr, err
		}
		if p.intern != nil {
			rr.Data = p.intern.mxData(MXData{pref, host})
		} else {
			rr.Data = MXData{pref, host}
		}
	case TypeOPT:
		// OPT (EDNS0): the payload size is in Class; options are ignored.
		p.pos = rdEnd
		rr.Data = OPTData{}
	case TypeTXT:
		var txt TXTData
		for p.pos < rdEnd {
			l := int(p.buf[p.pos])
			if p.pos+1+l > rdEnd {
				return rr, ErrTruncatedMessage
			}
			txt.Strings = append(txt.Strings, string(p.buf[p.pos+1:p.pos+1+l]))
			p.pos += 1 + l
		}
		rr.Data = txt
	default:
		// Unknown types are carried opaquely so decoding is lossless and
		// re-encoding reproduces the original octets (RFC 3597).
		rr.Data = RawData{Octets: string(p.buf[p.pos:rdEnd])}
		p.pos = rdEnd
	}
	if p.pos != rdEnd {
		return rr, fmt.Errorf("dns: RDATA length mismatch for %s %s", rr.Name, rr.Type)
	}
	return rr, nil
}

// Decode parses a wire-format DNS message.
func Decode(buf []byte) (*Message, error) { return decodeWith(buf, nil) }

// decAllocRRs is how many records fit in a decAlloc; larger messages
// fall back to separate slice allocations.
const decAllocRRs = 12

// decAlloc backs one decoded message with a single allocation: the
// Message plus question and record storage for the common shape (one
// question, a handful of records). The arrays sit outside the Message
// itself, so decoded messages compare equal to messages built any other
// way.
type decAlloc struct {
	m   Message
	q   [1]Question
	rrs [decAllocRRs]RR
}

// decodeWith parses a message, sharing strings and RData values through
// the intern table when one is given. Decoded messages never alias buf —
// every name and payload is copied out — so callers may recycle the wire
// buffer immediately.
func decodeWith(buf []byte, intern *wireIntern) (*Message, error) {
	if len(buf) < headerLen {
		return nil, ErrTruncatedMessage
	}
	p := parser{buf: buf, pos: headerLen, intern: intern}
	qd := int(buf[4])<<8 | int(buf[5])
	an := int(buf[6])<<8 | int(buf[7])
	ns := int(buf[8])<<8 | int(buf[9])
	ar := int(buf[10])<<8 | int(buf[11])

	total := an + ns + ar
	if qd+total > maxCount {
		return nil, fmt.Errorf("dns: implausible record counts")
	}
	var m *Message
	var qs []Question
	var rrs []RR
	if qd <= 1 && total <= decAllocRRs {
		// The common shape — one question, a handful of records — is
		// served by a single combined allocation.
		d := new(decAlloc)
		m = &d.m
		qs = d.q[:0:qd]
		rrs = d.rrs[:0:total]
	} else {
		m = new(Message)
		qs = make([]Question, 0, qd)
		rrs = make([]RR, 0, total)
	}
	m.ID = uint16(buf[0])<<8 | uint16(buf[1])
	m.setFlags(uint16(buf[2])<<8 | uint16(buf[3]))
	for i := 0; i < qd; i++ {
		name, err := p.name()
		if err != nil {
			return nil, err
		}
		t, err := p.uint16()
		if err != nil {
			return nil, err
		}
		c, err := p.uint16()
		if err != nil {
			return nil, err
		}
		qs = append(qs, Question{Name: name, Type: Type(t), Class: Class(c)})
	}
	if qd > 0 {
		m.Questions = qs
	}
	// One backing array serves all three sections, carved with
	// full-slice expressions so appends cannot cross sections.
	for i := 0; i < total; i++ {
		rr, err := p.rr()
		if err != nil {
			return nil, err
		}
		rrs = append(rrs, rr)
	}
	if an > 0 {
		m.Answers = rrs[:an:an]
	}
	if ns > 0 {
		m.Authority = rrs[an : an+ns : an+ns]
	}
	if ar > 0 {
		m.Additional = rrs[an+ns:]
	}
	return m, nil
}
