package dns

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"whereru/internal/netsim"
	"whereru/internal/simtime"
)

// windowPolicy is a test RoutePolicy: one server unrouted inside a
// window, everything routed at a fixed latency otherwise.
type windowPolicy struct {
	cut    netip.Addr
	window simtime.Window
	lat    time.Duration
}

func (p windowPolicy) Route(day simtime.Day, server netip.Addr) (time.Duration, bool) {
	if server == p.cut && p.window.Contains(day) {
		return 0, false
	}
	return p.lat, true
}

func TestRouteTransportWindow(t *testing.T) {
	server := mustAddr("11.0.0.1")
	clock := netsim.NewClock(simtime.Date(2022, 3, 1))
	win := simtime.Window{From: simtime.Date(2022, 3, 3), To: simtime.Date(2022, 3, 5)}
	rt := NewRouteTransport(echoNet(server, mustAddr("11.0.1.1")), clock,
		windowPolicy{cut: server, window: win, lat: 40 * time.Millisecond})
	ctx := context.Background()
	q := func(id uint16) error {
		_, err := rt.Exchange(ctx, server, NewQuery(id, "x.ru.", TypeA))
		return err
	}

	start := time.Now()
	if err := q(1); err != nil {
		t.Fatalf("routed day: %v", err)
	}
	// The 40ms path latency is virtual: accumulated, never slept.
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Errorf("routed exchange took %v — simulated latency must not be slept", elapsed)
	}

	for d := win.From; d <= win.To; d++ {
		clock.Set(d)
		err := q(2)
		if !errors.Is(err, ErrNoPath) || !errors.Is(err, ErrNoRoute) {
			t.Fatalf("day %s: err = %v, want ErrNoPath wrapping ErrNoRoute", d, err)
		}
	}
	clock.Set(win.To + 1)
	if err := q(3); err != nil {
		t.Fatalf("day after window: %v", err)
	}

	st := rt.Stats()
	if st.Exchanges != 5 || st.Unrouted != 3 {
		t.Errorf("stats = %+v, want 5 exchanges, 3 unrouted", st)
	}
	if st.SimLatency != 2*40*time.Millisecond {
		t.Errorf("SimLatency = %v, want 80ms from the two routed exchanges", st.SimLatency)
	}
}

func TestRouteTransportNilClockPinsDayZero(t *testing.T) {
	server := mustAddr("11.0.0.1")
	win := simtime.Window{From: 0, To: 0}
	rt := NewRouteTransport(echoNet(server, mustAddr("11.0.1.1")), nil,
		windowPolicy{cut: server, window: win})
	if _, err := rt.Exchange(context.Background(), server, NewQuery(1, "x.ru.", TypeA)); !errors.Is(err, ErrNoPath) {
		t.Fatalf("nil clock should pin routing to day 0: %v", err)
	}
}

// TestLatencyJitterRoll pins the jitter hash: uniform in [0,1), spread
// across query identities, reproducible under a seed, and changed by it.
func TestLatencyJitterRoll(t *testing.T) {
	server := mustAddr("11.0.0.1")
	mk := func(seed int64) *FaultTransport {
		return NewFaultTransport(echoNet(server, mustAddr("11.0.1.1")), seed, nil)
	}
	ft := mk(42)
	const n = 2000
	sum := 0.0
	distinct := make(map[float64]bool, n)
	rolls := make([]float64, n)
	for i := 0; i < n; i++ {
		q := NewQuery(uint16(i), fmt.Sprintf("d%04d.ru.", i), TypeA)
		u := ft.roll(saltLatency, simtime.ConflictStart, server, q)
		if u < 0 || u >= 1 {
			t.Fatalf("roll %d = %v outside [0,1)", i, u)
		}
		rolls[i] = u
		sum += u
		distinct[u] = true
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Errorf("mean roll = %.3f, want ≈ 0.5 (mean-preserving jitter)", mean)
	}
	if len(distinct) < n*9/10 {
		t.Errorf("only %d/%d distinct rolls — jitter would be degenerate", len(distinct), n)
	}
	ft2 := mk(42)
	for i := 0; i < n; i++ {
		q := NewQuery(uint16(i), fmt.Sprintf("d%04d.ru.", i), TypeA)
		if u := ft2.roll(saltLatency, simtime.ConflictStart, server, q); u != rolls[i] {
			t.Fatalf("roll %d differs under the same seed", i)
		}
	}
	ft3 := mk(43)
	same := 0
	for i := 0; i < n; i++ {
		q := NewQuery(uint16(i), fmt.Sprintf("d%04d.ru.", i), TypeA)
		if ft3.roll(saltLatency, simtime.ConflictStart, server, q) == rolls[i] {
			same++
		}
	}
	if same > n/10 {
		t.Errorf("seed 43 reproduced %d/%d of seed 42's rolls", same, n)
	}
	// The latency salt is independent of the loss salt: the same exchange
	// identity must not roll the same value for both decisions.
	q := NewQuery(1, "x.ru.", TypeA)
	if ft.roll(saltLatency, 0, server, q) == ft.roll(saltLoss, 0, server, q) {
		t.Error("latency and loss rolls collide for the same exchange")
	}
}

// TestLatencyJitterDelay verifies the effective delay formula end to end:
// the exchange sleeps at least Latency × (1 − J/2 + J·u) for the
// exchange's own hashed u, and a zero jitter keeps the fixed delay.
func TestLatencyJitterDelay(t *testing.T) {
	server := mustAddr("11.0.0.1")
	const base = 20 * time.Millisecond
	ft := NewFaultTransport(echoNet(server, mustAddr("11.0.1.1")), 7, nil)
	ft.SetDefault(FaultProfile{Latency: base, LatencyJitter: 1.0})

	q := NewQuery(9, "jit.ru.", TypeA)
	u := ft.roll(saltLatency, 0, server, q)
	expected := time.Duration(float64(base) * (1 - 0.5 + u))
	if expected < base/2 || expected >= base*3/2 {
		t.Fatalf("expected delay %v outside [%v, %v)", expected, base/2, base*3/2)
	}
	start := time.Now()
	if _, err := ft.Exchange(context.Background(), server, q); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < expected {
		t.Errorf("exchange slept %v, want at least the jittered delay %v", elapsed, expected)
	}

	// Two different query identities draw different delays.
	q2 := NewQuery(10, "jit2.ru.", TypeA)
	if u2 := ft.roll(saltLatency, 0, server, q2); u2 == u {
		t.Error("distinct exchanges drew identical jitter")
	}

	// Jitter without Latency is inert: active() stays false, exchanges
	// pass through untouched and uncounted.
	ft2 := NewFaultTransport(echoNet(server, mustAddr("11.0.1.1")), 7, nil)
	ft2.SetDefault(FaultProfile{LatencyJitter: 0.5})
	if _, err := ft2.Exchange(context.Background(), server, NewQuery(1, "a.ru.", TypeA)); err != nil {
		t.Fatal(err)
	}
	if st := ft2.Stats(); st.Exchanges != 0 {
		t.Errorf("jitter-only profile counted as active: %+v", st)
	}
}
