package dns

import (
	"context"
	"net/netip"
	"testing"
)

func TestSetAndReadEDNS(t *testing.T) {
	m := NewQuery(1, "example.ru.", TypeA)
	if m.EDNSSize() != 0 {
		t.Fatal("fresh query advertises EDNS")
	}
	m.SetEDNS(4096)
	if got := m.EDNSSize(); got != 4096 {
		t.Fatalf("EDNSSize = %d", got)
	}
	// Replacing, not duplicating.
	m.SetEDNS(1232)
	if got := m.EDNSSize(); got != 1232 {
		t.Fatalf("EDNSSize after update = %d", got)
	}
	optCount := 0
	for _, rr := range m.Additional {
		if rr.Type == TypeOPT {
			optCount++
		}
	}
	if optCount != 1 {
		t.Fatalf("OPT records = %d", optCount)
	}
	// Below-minimum sizes are clamped.
	m.SetEDNS(100)
	if got := m.EDNSSize(); got != 512 {
		t.Fatalf("clamped EDNSSize = %d", got)
	}
}

func TestEDNSWireRoundTrip(t *testing.T) {
	m := NewQuery(7, "example.ru.", TypeA)
	m.SetEDNS(1400)
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.EDNSSize(); got != 1400 {
		t.Fatalf("EDNSSize after round trip = %d", got)
	}
	if TypeOPT.String() != "OPT" {
		t.Error("OPT mnemonic missing")
	}
}

func TestEDNSAvoidsTruncationOverUDP(t *testing.T) {
	srv := &Server{Handler: bigAnswerHandler(60)} // ≈1 KiB response
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()
	ctx := context.Background()

	// Plain UDP: truncated.
	plain := &UDPTransport{Port: int(addr.Port())}
	resp, err := plain.Exchange(ctx, addr.Addr(), NewQuery(1, "big.ru.", TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Fatal("plain UDP not truncated")
	}

	// EDNS0 with a 4096-octet advertisement: full answer over UDP.
	edns := &EDNSTransport{Transport: plain, UDPSize: 4096}
	resp, err = edns.Exchange(ctx, addr.Addr(), NewQuery(2, "big.ru.", TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truncated {
		t.Fatal("EDNS0 response still truncated")
	}
	if len(resp.Answers) != 60 {
		t.Fatalf("answers = %d, want 60", len(resp.Answers))
	}
}

func TestEDNSTransportDoesNotMutateQuery(t *testing.T) {
	net := NewMemNet()
	net.Bind(mustAddr("10.0.0.1"), HandlerFunc(func(q *Message, _ netip.Addr) *Message {
		return q.Reply()
	}))
	q := NewQuery(5, "x.ru.", TypeA)
	edns := &EDNSTransport{Transport: net}
	if _, err := edns.Exchange(context.Background(), mustAddr("10.0.0.1"), q); err != nil {
		t.Fatal(err)
	}
	if q.EDNSSize() != 0 {
		t.Fatal("EDNSTransport mutated the caller's query")
	}
}
