package dns

import (
	"context"
	"net/netip"
)

// EDNS(0) support (RFC 6891): an OPT pseudo-record in the additional
// section advertises the requester's UDP payload capacity, letting
// servers send responses beyond the classic 512-octet limit without TCP.
// Only the payload-size negotiation is implemented — no options, no
// extended RCODEs — which is all the measurement pipeline needs.

// TypeOPT is the OPT pseudo-RR type code.
const TypeOPT Type = 41

// Default and maximum advertised payload sizes.
const (
	// DefaultEDNSSize is the commonly-deployed 1232-octet advertisement
	// (DNS flag day 2020 recommendation).
	DefaultEDNSSize = 1232
	minEDNSSize     = 512
)

// OPTData is the OPT pseudo-record payload. The UDP size rides in the
// record's Class field on the wire; Data is empty (no options).
type OPTData struct{}

// String implements RData.
func (OPTData) String() string { return "" }

func (OPTData) appendWire(b []byte) ([]byte, error) { return b, nil }

// SetEDNS attaches (or replaces) an OPT record advertising the given UDP
// payload size.
func (m *Message) SetEDNS(udpSize uint16) {
	if udpSize < minEDNSSize {
		udpSize = minEDNSSize
	}
	for i := range m.Additional {
		if m.Additional[i].Type == TypeOPT {
			m.Additional[i].Class = Class(udpSize)
			return
		}
	}
	m.Additional = append(m.Additional, RR{
		Name:  ".",
		Type:  TypeOPT,
		Class: Class(udpSize), // RFC 6891 §6.1.2: class carries the size
		Data:  OPTData{},
	})
}

// EDNSSize returns the advertised UDP payload size, or 0 when the message
// carries no OPT record.
func (m *Message) EDNSSize() uint16 {
	for _, rr := range m.Additional {
		if rr.Type == TypeOPT {
			size := uint16(rr.Class)
			if size < minEDNSSize {
				size = minEDNSSize
			}
			return size
		}
	}
	return 0
}

// maxUDPResponse returns the size budget for a UDP response to the query.
func maxUDPResponse(query *Message) int {
	if size := query.EDNSSize(); size > 0 {
		return int(size)
	}
	return MaxUDPPayload
}

// EDNSTransport wraps a transport, attaching an OPT record to every
// outgoing query (stub-resolver behavior since the 2020 DNS flag day).
type EDNSTransport struct {
	Transport Transport
	// UDPSize is the advertised payload size (DefaultEDNSSize if 0).
	UDPSize uint16
}

// Exchange implements Transport.
func (t *EDNSTransport) Exchange(ctx context.Context, server netip.Addr, query *Message) (*Message, error) {
	size := t.UDPSize
	if size == 0 {
		size = DefaultEDNSSize
	}
	q := *query
	q.Additional = append([]RR(nil), query.Additional...)
	(&q).SetEDNS(size)
	return t.Transport.Exchange(ctx, server, &q)
}
