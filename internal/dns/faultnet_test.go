package dns

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"whereru/internal/netsim"
	"whereru/internal/simtime"
)

// echoNet returns a MemNet with a single authoritative handler bound at
// addr answering every A question with answerAddr.
func echoNet(addr, answerAddr netip.Addr) *MemNet {
	net := NewMemNet()
	net.Bind(addr, HandlerFunc(func(q *Message, _ netip.Addr) *Message {
		resp := q.Reply()
		resp.Authoritative = true
		resp.Answers = []RR{NewA(q.Questions[0].Name, 300, answerAddr)}
		return resp
	}))
	return net
}

func TestFaultTransportZeroProfilePassesThrough(t *testing.T) {
	server := mustAddr("11.0.0.1")
	ft := NewFaultTransport(echoNet(server, mustAddr("11.0.1.1")), 1, nil)
	// No profiles at all: transparent.
	resp, err := ft.Exchange(context.Background(), server, NewQuery(1, "a.ru.", TypeA))
	if err != nil || len(resp.Answers) != 1 {
		t.Fatalf("pass-through failed: %v %v", resp, err)
	}
	if st := ft.Stats(); st.Exchanges != 0 {
		t.Errorf("transparent exchange counted as faulted: %+v", st)
	}
	// An explicit zero-value profile is also transparent.
	ft.SetDefault(FaultProfile{})
	if _, err := ft.Exchange(context.Background(), server, NewQuery(2, "b.ru.", TypeA)); err != nil {
		t.Fatalf("zero profile injected a fault: %v", err)
	}
}

func TestFaultTransportLossRateAndDeterminism(t *testing.T) {
	server := mustAddr("11.0.0.1")
	ft := NewFaultTransport(echoNet(server, mustAddr("11.0.1.1")), 42, nil)
	ft.SetDefault(FaultProfile{Loss: 0.3})
	ctx := context.Background()

	outcome := func(tr *FaultTransport, i int) bool {
		q := NewQuery(uint16(i), fmt.Sprintf("d%04d.ru.", i), TypeA)
		_, err := tr.Exchange(ctx, server, q)
		return err == nil
	}
	const n = 2000
	dropped := 0
	first := make([]bool, n)
	for i := 0; i < n; i++ {
		first[i] = outcome(ft, i)
		if !first[i] {
			dropped++
		}
	}
	if rate := float64(dropped) / n; rate < 0.25 || rate > 0.35 {
		t.Errorf("loss rate = %.3f, want ≈ 0.30", rate)
	}
	// Same seed: every exchange meets the same fate, in any order.
	ft2 := NewFaultTransport(echoNet(server, mustAddr("11.0.1.1")), 42, nil)
	ft2.SetDefault(FaultProfile{Loss: 0.3})
	for i := n - 1; i >= 0; i-- {
		if outcome(ft2, i) != first[i] {
			t.Fatalf("exchange %d fate differs under the same seed", i)
		}
	}
	// Different seed: a different drop pattern.
	ft3 := NewFaultTransport(echoNet(server, mustAddr("11.0.1.1")), 43, nil)
	ft3.SetDefault(FaultProfile{Loss: 0.3})
	same := 0
	for i := 0; i < n; i++ {
		if outcome(ft3, i) == first[i] {
			same++
		}
	}
	if same == n {
		t.Error("seed 43 reproduced seed 42's drop pattern exactly")
	}
	// Injected losses read as unreachability to existing callers.
	st := ft.Stats()
	if st.Dropped == 0 || st.Exchanges != n {
		t.Errorf("stats = %+v", st)
	}
}

func TestFaultTransportLossErrorIsNoRoute(t *testing.T) {
	server := mustAddr("11.0.0.1")
	ft := NewFaultTransport(echoNet(server, mustAddr("11.0.1.1")), 1, nil)
	ft.SetServer(server, FaultProfile{Loss: 1})
	_, err := ft.Exchange(context.Background(), server, NewQuery(1, "x.ru.", TypeA))
	if !errors.Is(err, ErrNoRoute) || !errors.Is(err, ErrInjected) {
		t.Fatalf("injected loss error = %v, want ErrNoRoute and ErrInjected", err)
	}
}

func TestFaultTransportServFailAndTruncate(t *testing.T) {
	server := mustAddr("11.0.0.1")
	ft := NewFaultTransport(echoNet(server, mustAddr("11.0.1.1")), 1, nil)
	ft.SetServer(server, FaultProfile{ServFail: 1})
	resp, err := ft.Exchange(context.Background(), server, NewQuery(7, "x.ru.", TypeA))
	if err != nil || resp.RCode != RCodeServFail || len(resp.Answers) != 0 {
		t.Fatalf("servfail flap: resp=%v err=%v", resp, err)
	}
	if resp.ID != 7 {
		t.Errorf("flapped response ID = %d, want 7", resp.ID)
	}

	ft.SetServer(server, FaultProfile{Truncate: 1})
	resp, err = ft.Exchange(context.Background(), server, NewQuery(8, "x.ru.", TypeA))
	if err != nil || !resp.Truncated || len(resp.Answers) != 0 {
		t.Fatalf("truncation: resp=%v err=%v", resp, err)
	}
	if len(resp.Questions) != 1 || resp.Questions[0].Name != "x.ru." {
		t.Errorf("truncated response lost its question: %v", resp.Questions)
	}
	st := ft.Stats()
	if st.ServFails != 1 || st.Truncated != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFaultTransportOutageWindow(t *testing.T) {
	server := mustAddr("11.0.0.1")
	clock := netsim.NewClock(simtime.Date(2022, 3, 2))
	ft := NewFaultTransport(echoNet(server, mustAddr("11.0.1.1")), 1, clock)
	ft.SetServer(server, FaultProfile{Outages: []simtime.Window{
		{From: simtime.Date(2022, 3, 3), To: simtime.Date(2022, 3, 5)},
	}})
	ctx := context.Background()
	q := func() error {
		_, err := ft.Exchange(ctx, server, NewQuery(1, "x.ru.", TypeA))
		return err
	}
	if err := q(); err != nil {
		t.Fatalf("day before window: %v", err)
	}
	for d := simtime.Date(2022, 3, 3); d <= simtime.Date(2022, 3, 5); d++ {
		clock.Set(d)
		if err := q(); !errors.Is(err, ErrNoRoute) {
			t.Fatalf("day %s inside window: err=%v, want ErrNoRoute", d, err)
		}
	}
	clock.Set(simtime.Date(2022, 3, 6))
	if err := q(); err != nil {
		t.Fatalf("day after window: %v — the outage did not lift itself", err)
	}
	if st := ft.Stats(); st.Outaged != 3 {
		t.Errorf("outaged = %d, want 3", st.Outaged)
	}
}

func TestFaultTransportProfilePrecedence(t *testing.T) {
	inside := mustAddr("11.0.0.1")
	alsoInside := mustAddr("11.0.200.1")
	outside := mustAddr("12.0.0.1")
	net := NewMemNet()
	for _, a := range []netip.Addr{inside, alsoInside, outside} {
		addr := a
		net.Bind(addr, HandlerFunc(func(q *Message, _ netip.Addr) *Message {
			resp := q.Reply()
			resp.Answers = []RR{NewA(q.Questions[0].Name, 300, addr)}
			return resp
		}))
	}
	ft := NewFaultTransport(net, 1, nil)
	ft.SetDefault(FaultProfile{Loss: 1})
	ft.SetPrefix(netip.MustParsePrefix("11.0.0.0/8"), FaultProfile{ServFail: 1})
	ft.SetPrefix(netip.MustParsePrefix("11.0.0.0/16"), FaultProfile{Truncate: 1})
	ft.SetServer(inside, FaultProfile{}) // exact match exempts entirely
	ctx := context.Background()

	// Exact server profile beats prefixes and default.
	resp, err := ft.Exchange(ctx, inside, NewQuery(1, "a.ru.", TypeA))
	if err != nil || resp.Truncated || resp.RCode != RCodeNoError {
		t.Fatalf("server-exempt exchange: resp=%v err=%v", resp, err)
	}
	// Longest prefix wins: /16 truncates, not /8 servfail.
	resp, err = ft.Exchange(ctx, alsoInside, NewQuery(2, "b.ru.", TypeA))
	if err != nil || !resp.Truncated {
		t.Fatalf("/16 profile not applied: resp=%v err=%v", resp, err)
	}
	// No prefix match: the default drops.
	if _, err := ft.Exchange(ctx, outside, NewQuery(3, "c.ru.", TypeA)); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("default profile not applied: %v", err)
	}
}

func TestSeededClientDeterministicIDs(t *testing.T) {
	server := mustAddr("11.0.0.1")
	var ids1, ids2 []uint16
	collect := func(out *[]uint16, seed int64) {
		net := echoNet(server, mustAddr("11.0.1.1"))
		net.SetTap(func(_ netip.Addr, q *Message) { *out = append(*out, q.ID) })
		c := NewSeededClient(net, seed)
		for _, name := range []string{"a.ru.", "b.ru.", "a.ru."} {
			if _, err := c.Query(context.Background(), server, name, TypeA); err != nil {
				t.Fatal(err)
			}
		}
	}
	collect(&ids1, 99)
	collect(&ids2, 99)
	if len(ids1) != 3 || len(ids2) != 3 {
		t.Fatalf("query counts: %d, %d", len(ids1), len(ids2))
	}
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatalf("IDs diverge at %d: %v vs %v", i, ids1, ids2)
		}
	}
	if ids1[0] != ids1[2] {
		t.Errorf("same (name, type, attempt) produced different IDs: %v", ids1)
	}
	var ids3 []uint16
	collect(&ids3, 100)
	if ids3[0] == ids1[0] && ids3[1] == ids1[1] {
		t.Error("different seeds produced identical IDs")
	}
}

func TestClientRetriesRecoverInjectedLoss(t *testing.T) {
	server := mustAddr("11.0.0.1")
	ft := NewFaultTransport(echoNet(server, mustAddr("11.0.1.1")), 5, nil)
	ft.SetDefault(FaultProfile{Loss: 0.5})
	c := NewSeededClient(ft, 5)
	c.Retries = 4
	ok, failed := 0, 0
	for i := 0; i < 500; i++ {
		if _, err := c.Query(context.Background(), server, fmt.Sprintf("d%03d.ru.", i), TypeA); err != nil {
			failed++
		} else {
			ok++
		}
	}
	// Per-query failure probability is 0.5^5 ≈ 3%; without retries it
	// would be 50%.
	if failed > 40 {
		t.Errorf("%d/%d queries failed despite retries", failed, ok+failed)
	}
	st := c.Stats()
	if st.Retries == 0 || st.Recovered == 0 {
		t.Errorf("client stats did not track recovery: %+v", st)
	}
	if st.Queries != 500 {
		t.Errorf("queries = %d, want 500", st.Queries)
	}
}

func TestClientRetriesServFailFlaps(t *testing.T) {
	server := mustAddr("11.0.0.1")
	ft := NewFaultTransport(echoNet(server, mustAddr("11.0.1.1")), 9, nil)
	ft.SetDefault(FaultProfile{ServFail: 0.5, Truncate: 0.2})
	c := NewSeededClient(ft, 9)
	c.Retries = 5
	bad := 0
	for i := 0; i < 300; i++ {
		resp, err := c.Query(context.Background(), server, fmt.Sprintf("f%03d.ru.", i), TypeA)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if resp.RCode == RCodeServFail || resp.Truncated {
			bad++
		}
	}
	// A persistent flap needs 6 consecutive bad draws (p ≈ 0.6^6 ≈ 5%).
	if bad > 45 {
		t.Errorf("%d/300 queries still flapped through %d attempts", bad, c.Retries+1)
	}
}

func TestClientBackoffHonorsContext(t *testing.T) {
	server := mustAddr("11.0.0.1")
	ft := NewFaultTransport(echoNet(server, mustAddr("11.0.1.1")), 3, nil)
	ft.SetDefault(FaultProfile{Loss: 1})
	c := NewSeededClient(ft, 3)
	c.Retries = 8
	c.Backoff = 10 * time.Second // would sleep ~minutes without ctx
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Query(ctx, server, "x.ru.", TypeA); err == nil {
		t.Fatal("query over a fully lossy path succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("backoff ignored context cancellation (%v elapsed)", elapsed)
	}
}
