package dns_test

import (
	"context"
	"fmt"
	"net/netip"

	"whereru/internal/dns"
)

// ExampleResolver wires a miniature root → TLD → authoritative hierarchy
// into the in-memory transport and resolves a name iteratively.
func ExampleResolver() {
	net := dns.NewMemNet()
	root := netip.MustParseAddr("198.41.0.4")
	tld := netip.MustParseAddr("193.232.128.6")
	auth := netip.MustParseAddr("194.58.116.30")

	net.Bind(root, dns.HandlerFunc(func(q *dns.Message, _ netip.Addr) *dns.Message {
		resp := q.Reply()
		resp.Authority = []dns.RR{dns.NewNS("ru.", 3600, "a.tld.ru.")}
		resp.Additional = []dns.RR{dns.NewA("a.tld.ru.", 3600, tld)}
		return resp
	}))
	net.Bind(tld, dns.HandlerFunc(func(q *dns.Message, _ netip.Addr) *dns.Message {
		resp := q.Reply()
		resp.Authority = []dns.RR{dns.NewNS("example.ru.", 3600, "ns1.example.ru.")}
		resp.Additional = []dns.RR{dns.NewA("ns1.example.ru.", 3600, auth)}
		return resp
	}))
	net.Bind(auth, dns.HandlerFunc(func(q *dns.Message, _ netip.Addr) *dns.Message {
		resp := q.Reply()
		resp.Authoritative = true
		resp.Answers = []dns.RR{dns.NewA(q.Questions[0].Name, 300, netip.MustParseAddr("194.58.117.5"))}
		return resp
	}))

	r := dns.NewResolver(net, []netip.Addr{root})
	addrs, err := r.LookupA(context.Background(), "example.ru.")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(addrs[0])
	// Output: 194.58.117.5
}

// ExampleMessage_Encode shows the wire codec round trip.
func ExampleMessage_Encode() {
	m := dns.NewQuery(42, "example.ru.", dns.TypeNS)
	wire, _ := m.Encode()
	back, _ := dns.Decode(wire)
	fmt.Println(back.Questions[0])
	// Output: example.ru. IN NS
}

func ExampleCanonical() {
	fmt.Println(dns.Canonical("ExAmPlE.RU"))
	fmt.Println(dns.TLD("ns1.provider.com."))
	fmt.Println(dns.Parent("a.b.ru."))
	// Output:
	// example.ru.
	// com
	// b.ru.
}
