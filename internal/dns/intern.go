package dns

import (
	"net/netip"
	"sync"
)

// The sweep hot path decodes the same small set of infrastructure names
// and record payloads millions of times: every referral repeats the
// registry's NS hosts, every glued answer repeats the same few provider
// addresses. wireIntern dedups those across messages so a steady-state
// decode materializes no new strings and boxes no new RData values.
// Interning is invisible to callers — it only returns values equal to
// what a fresh decode would build — so it cannot perturb measurements.
//
// Tables are bounded; once full, lookups still hit existing entries and
// misses simply allocate like an intern-free decode. A MemNet carries
// one intern for its lifetime: the simulated world's name population is
// fixed and far below the bounds.

const (
	maxInternNames = 1 << 16
	maxInternData  = 1 << 15
)

type wireIntern struct {
	mu    sync.RWMutex
	names map[uint64]string // FNV-1a(name bytes) -> name
	a     map[netip.Addr]RData
	aaaa  map[netip.Addr]RData
	ns    map[string]RData
	cname map[string]RData
	soa   map[SOAData]RData
	mx    map[MXData]RData
}

func newWireIntern() *wireIntern {
	return &wireIntern{
		names: make(map[uint64]string),
		a:     make(map[netip.Addr]RData),
		aaaa:  make(map[netip.Addr]RData),
		ns:    make(map[string]RData),
		cname: make(map[string]RData),
		soa:   make(map[SOAData]RData),
		mx:    make(map[MXData]RData),
	}
}

// name returns a string equal to b, reusing a previously interned copy
// when possible. Hash collisions fall back to a fresh allocation (the
// first-comer keeps the slot), preserving correctness.
func (w *wireIntern) name(b []byte) string {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	w.mu.RLock()
	s, ok := w.names[h]
	w.mu.RUnlock()
	if ok && s == string(b) { // comparison does not allocate
		return s
	}
	out := string(b)
	if !ok {
		w.mu.Lock()
		if _, dup := w.names[h]; !dup && len(w.names) < maxInternNames {
			w.names[h] = out
		}
		w.mu.Unlock()
	}
	return out
}

func (w *wireIntern) aData(addr netip.Addr) RData {
	w.mu.RLock()
	d, ok := w.a[addr]
	w.mu.RUnlock()
	if ok {
		return d
	}
	d = AData{addr}
	w.mu.Lock()
	if len(w.a) < maxInternData {
		w.a[addr] = d
	}
	w.mu.Unlock()
	return d
}

func (w *wireIntern) aaaaData(addr netip.Addr) RData {
	w.mu.RLock()
	d, ok := w.aaaa[addr]
	w.mu.RUnlock()
	if ok {
		return d
	}
	d = AAAAData{addr}
	w.mu.Lock()
	if len(w.aaaa) < maxInternData {
		w.aaaa[addr] = d
	}
	w.mu.Unlock()
	return d
}

func (w *wireIntern) nsData(host string) RData {
	w.mu.RLock()
	d, ok := w.ns[host]
	w.mu.RUnlock()
	if ok {
		return d
	}
	d = NSData{host}
	w.mu.Lock()
	if len(w.ns) < maxInternData {
		w.ns[host] = d
	}
	w.mu.Unlock()
	return d
}

func (w *wireIntern) cnameData(target string) RData {
	w.mu.RLock()
	d, ok := w.cname[target]
	w.mu.RUnlock()
	if ok {
		return d
	}
	d = CNAMEData{target}
	w.mu.Lock()
	if len(w.cname) < maxInternData {
		w.cname[target] = d
	}
	w.mu.Unlock()
	return d
}

func (w *wireIntern) soaData(soa SOAData) RData {
	w.mu.RLock()
	d, ok := w.soa[soa]
	w.mu.RUnlock()
	if ok {
		return d
	}
	var rd RData = soa
	w.mu.Lock()
	if len(w.soa) < maxInternData {
		w.soa[soa] = rd
	}
	w.mu.Unlock()
	return rd
}

func (w *wireIntern) mxData(mx MXData) RData {
	w.mu.RLock()
	d, ok := w.mx[mx]
	w.mu.RUnlock()
	if ok {
		return d
	}
	var rd RData = mx
	w.mu.Lock()
	if len(w.mx) < maxInternData {
		w.mx[mx] = rd
	}
	w.mu.Unlock()
	return rd
}

// wirePool recycles wire-format buffers across exchanges. Decoded
// messages never alias these buffers (decodeWith copies everything out),
// so returning one after decode is safe.
var wirePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

func getWireBuf() *[]byte { return wirePool.Get().(*[]byte) }

func putWireBuf(b *[]byte) {
	// Messages are capped at maxMsgSize; anything larger is a stray
	// oversized read buffer not worth keeping.
	if cap(*b) <= maxMsgSize+2 {
		wirePool.Put(b)
	}
}
