package dns

import (
	"context"
	"fmt"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// singleHostRoot binds one root server that authoritatively answers A
// queries for host (invoking onHostQuery first, which may block) and
// NXDOMAIN for everything else.
func singleHostRoot(host string, hostAddr netip.Addr, onHostQuery func()) (*MemNet, []netip.Addr) {
	net := NewMemNet()
	root := mustAddr("198.41.0.4")
	net.Bind(root, HandlerFunc(func(q *Message, _ netip.Addr) *Message {
		resp := q.Reply()
		resp.Authoritative = true
		qq := q.Questions[0]
		if qq.Type == TypeA && qq.Name == host {
			if onHostQuery != nil {
				onHostQuery()
			}
			resp.Answers = []RR{NewA(host, 300, hostAddr)}
		} else {
			resp.RCode = RCodeNXDomain
		}
		return resp
	}))
	return net, []netip.Addr{root}
}

// TestLookupHostSingleflightCoalesces pins the cache-miss storm contract:
// N concurrent LookupHost calls for one uncached host issue exactly one
// upstream query chain. The schedule is controlled, not raced: the
// upstream handler blocks the leader's query on a gate, the waiters are
// started only after the leader's flight is registered (its query is on
// the wire), and the gate opens only once the coalesced counter shows
// every waiter parked on the flight.
func TestLookupHostSingleflightCoalesces(t *testing.T) {
	const host = "ns.bigprovider.ru."
	const waiters = 7
	hostAddr := mustAddr("10.1.2.3")
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	var upstream atomic.Int64
	net, roots := singleHostRoot(host, hostAddr, func() {
		upstream.Add(1)
		once.Do(func() { close(leaderIn) })
		<-release
	})
	r := NewResolver(net, roots)

	type outcome struct {
		addrs []netip.Addr
		err   error
	}
	results := make(chan outcome, waiters+1)
	lookup := func() {
		addrs, err := r.LookupHost(context.Background(), host, 0)
		results <- outcome{addrs, err}
	}
	go lookup()
	<-leaderIn
	for i := 0; i < waiters; i++ {
		go lookup()
	}
	deadline := time.Now().Add(10 * time.Second)
	for r.CacheStats().Coalesced < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never joined the flight: %+v", r.CacheStats())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	for i := 0; i < waiters+1; i++ {
		out := <-results
		if out.err != nil {
			t.Fatal(out.err)
		}
		if len(out.addrs) != 1 || out.addrs[0] != hostAddr {
			t.Fatalf("addrs = %v, want [%v]", out.addrs, hostAddr)
		}
	}
	if n := upstream.Load(); n != 1 {
		t.Errorf("upstream host queries = %d, want 1 (singleflight)", n)
	}
	cs := r.CacheStats()
	if cs.HostMisses != 1 || cs.Coalesced != waiters {
		t.Errorf("counters = %+v, want 1 host miss and %d coalesced", cs, waiters)
	}
}

// TestDisableCoalescingResolvesIndependently pins the reference-oracle
// behavior: with coalescing off, every concurrent miss leads its own
// upstream resolution — the resolver exactly as it was before the
// singleflight table existed.
func TestDisableCoalescingResolvesIndependently(t *testing.T) {
	const host = "ns.bigprovider.ru."
	const callers = 4
	hostAddr := mustAddr("10.1.2.3")
	release := make(chan struct{})
	var upstream atomic.Int64
	net, roots := singleHostRoot(host, hostAddr, func() {
		upstream.Add(1)
		<-release
	})
	r := NewResolver(net, roots)
	r.Cache().DisableCoalescing()

	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := r.LookupHost(context.Background(), host, 0)
			errs <- err
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for upstream.Load() < callers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d callers reached upstream", upstream.Load(), callers)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := upstream.Load(); n != callers {
		t.Errorf("upstream host queries = %d, want %d (coalescing disabled)", n, callers)
	}
	cs := r.CacheStats()
	if cs.Coalesced != 0 {
		t.Errorf("coalesced = %d, want 0 with coalescing disabled", cs.Coalesced)
	}
	if cs.HostMisses != callers {
		t.Errorf("host misses = %d, want %d", cs.HostMisses, callers)
	}
}

// TestSharedCacheNegativeEntrySuppressesRetries shares one InfraCache
// between two resolvers (the sweep-worker topology): a host one resolver
// failed to resolve must answer negatively from the cache for the other,
// with zero queries on the wire.
func TestSharedCacheNegativeEntrySuppressesRetries(t *testing.T) {
	net, roots := buildTestInternet(t)
	comTLD := mustAddr("192.5.6.30")
	var queries atomic.Int64
	net.SetTap(func(netip.Addr, *Message) { queries.Add(1) })
	r1 := NewResolver(net, roots)
	r1.Client.Retries = 1
	r2 := NewResolver(net, roots)
	r2.Client.Retries = 1
	r2.SetCache(r1.Cache())

	net.SetUnreachable(comTLD, true)
	if _, err := r1.LookupHost(context.Background(), "ns1.hosting.com.", 0); err == nil {
		t.Fatal("LookupHost succeeded with the .com branch down")
	}
	before := queries.Load()
	if _, err := r2.LookupHost(context.Background(), "ns1.hosting.com.", 0); err == nil {
		t.Fatal("second resolver resolved a negative-cached host")
	}
	if delta := queries.Load() - before; delta != 0 {
		t.Errorf("negative-cached lookup via shared cache sent %d queries, want 0", delta)
	}
	if cs := r2.CacheStats(); cs.HostHits == 0 {
		t.Errorf("negative-cache hit not counted: %+v", cs)
	}

	// Recovery is shared too: one flush, both resolvers see the live host.
	net.SetUnreachable(comTLD, false)
	r1.FlushCache()
	for _, r := range []*Resolver{r1, r2} {
		addrs, err := r.LookupHost(context.Background(), "ns1.hosting.com.", 0)
		if err != nil {
			t.Fatalf("post-flush lookup: %v", err)
		}
		if len(addrs) != 1 || addrs[0] != mustAddr("172.64.32.99") {
			t.Fatalf("post-flush addrs = %v", addrs)
		}
	}
}

// TestFlushCacheMidSweepRace hammers FlushCache concurrently with
// resolutions (including the glueless out-of-bailiwick chase, which
// nests LookupHost inside a resolution). In a static world every lookup
// must still return the right answer no matter where a flush lands; the
// race detector checks the synchronization.
func TestFlushCacheMidSweepRace(t *testing.T) {
	net, roots := buildTestInternet(t)
	r := NewResolver(net, roots)
	ctx := context.Background()
	const lookers = 6
	iters := 40
	if testing.Short() {
		iters = 10
	}

	stop := make(chan struct{})
	var flusher sync.WaitGroup
	flusher.Add(1)
	go func() {
		defer flusher.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			r.FlushCache()
			runtime.Gosched()
		}
	}()

	errs := make(chan error, lookers)
	var wg sync.WaitGroup
	for g := 0; g < lookers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name, want := "example.ru.", mustAddr("194.58.117.5")
			if g%2 == 1 {
				name, want = "foreign.ru.", mustAddr("172.64.33.1")
			}
			for i := 0; i < iters; i++ {
				addrs, err := r.LookupA(ctx, name)
				if err != nil {
					errs <- fmt.Errorf("%s: %w", name, err)
					return
				}
				if len(addrs) != 1 || addrs[0] != want {
					errs <- fmt.Errorf("%s = %v, want [%v]", name, addrs, want)
					return
				}
				if _, err := r.LookupHost(ctx, "ns1.reg.ru.", 0); err != nil {
					errs <- fmt.Errorf("ns1.reg.ru.: %w", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	flusher.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCacheStatsPinnedOnFixture pins the exact counter semantics on the
// fixed three-level fixture, single-threaded so every value is forced:
// which walks hit the delegation cache, which host lookups were glue
// hits versus led misses, and the final cache sizes.
func TestCacheStatsPinnedOnFixture(t *testing.T) {
	net, roots := buildTestInternet(t)
	r := NewResolver(net, roots)
	ctx := context.Background()

	check := func(label string, want CacheStats) {
		t.Helper()
		if got := r.CacheStats(); got != want {
			t.Fatalf("%s: stats = %+v, want %+v", label, got, want)
		}
	}

	// Cold resolution walks from the roots (one zone miss) and learns
	// ru. + example.ru. cuts plus both glue hosts along the way.
	if _, err := r.LookupA(ctx, "example.ru."); err != nil {
		t.Fatal(err)
	}
	check("cold example.ru", CacheStats{Zones: 2, Hosts: 2, ZoneMisses: 1})

	// Warm resolution starts at the example.ru. cut: one zone hit,
	// nothing new learned.
	if _, err := r.LookupA(ctx, "example.ru."); err != nil {
		t.Fatal(err)
	}
	check("warm example.ru", CacheStats{Zones: 2, Hosts: 2, ZoneHits: 1, ZoneMisses: 1})

	// Both glue hosts answer from the host cache.
	for i, host := range []string{"ns1.reg.ru.", "a.dns.ripn.net."} {
		if _, err := r.LookupHost(ctx, host, 0); err != nil {
			t.Fatal(err)
		}
		check("glue hit "+host, CacheStats{Zones: 2, Hosts: 2, ZoneHits: 1, ZoneMisses: 1, HostHits: int64(i) + 1})
	}

	// foreign.ru starts from the cached ru. cut (zone hit) but its NS is
	// glueless under .com: one led host miss whose nested resolution
	// walks from the roots again (zone miss) and learns the com. branch.
	if _, err := r.LookupA(ctx, "foreign.ru."); err != nil {
		t.Fatal(err)
	}
	check("glueless foreign.ru", CacheStats{Zones: 5, Hosts: 4, ZoneHits: 2, ZoneMisses: 2, HostHits: 2, HostMisses: 1})

	// The chased host is now cached.
	if _, err := r.LookupHost(ctx, "ns1.hosting.com.", 0); err != nil {
		t.Fatal(err)
	}
	final := CacheStats{Zones: 5, Hosts: 4, ZoneHits: 2, ZoneMisses: 2, HostHits: 3, HostMisses: 1}
	check("chased host hit", final)

	if final.Hits() != 5 || final.Misses() != 3 {
		t.Errorf("aggregates = %d hits / %d misses, want 5/3", final.Hits(), final.Misses())
	}
}
