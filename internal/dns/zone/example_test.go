package zone_test

import (
	"fmt"
	"net/netip"
	"strings"

	"whereru/internal/dns"
	"whereru/internal/dns/zone"
)

// ExampleZone shows authoritative lookup semantics: answers, referrals
// with glue, and NXDOMAIN.
func ExampleZone() {
	z := zone.New("ru.")
	z.Add(dns.NewA("direct.ru.", 300, netip.MustParseAddr("77.88.55.60")))
	z.Add(dns.NewNS("delegated.ru.", 3600, "ns1.delegated.ru."))
	z.Add(dns.NewA("ns1.delegated.ru.", 3600, netip.MustParseAddr("11.0.0.1")))

	ans := z.Query("direct.ru.", dns.TypeA)
	fmt.Println("answer:", ans.Answers[0].Data)

	ref := z.Query("www.delegated.ru.", dns.TypeA)
	fmt.Println("referral to:", ref.Authority[0].Data, "glue:", ref.Additional[0].Data)

	nx := z.Query("missing.ru.", dns.TypeA)
	fmt.Println("missing:", nx.RCode)
	// Output:
	// answer: 77.88.55.60
	// referral to: ns1.delegated.ru. glue: 11.0.0.1
	// missing: NXDOMAIN
}

// ExampleParse round-trips a zone through the master-file format.
func ExampleParse() {
	text := `$ORIGIN ru.
ru. 3600 IN SOA a.tld.ru. hostmaster.ru. 1 7200 900 1209600 3600
example.ru. 3600 IN NS ns1.example.ru.
ns1.example.ru. 3600 IN A 11.0.0.1
`
	z, err := zone.Parse(strings.NewReader(text))
	if err != nil {
		fmt.Println("parse error:", err)
		return
	}
	fmt.Println(z.Origin, z.Size(), "records")
	// Output: ru. 3 records
}
