// Package zone provides an authoritative DNS zone: an RRset store with
// RFC 1034 lookup semantics (answers, referrals with glue, NODATA and
// NXDOMAIN), a zone-file parser/serializer, and a dns.Handler that serves
// one or more zones. The simulated TLD registries use dynamic handlers for
// scale, but zones are the interchange format for seed lists, fixtures and
// the dnsdig example server.
package zone

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"sync"

	"whereru/internal/dns"
)

type rrKey struct {
	name string
	typ  dns.Type
}

// Zone is a single authoritative zone rooted at Origin.
type Zone struct {
	Origin string

	mu     sync.RWMutex
	rrsets map[rrKey][]dns.RR
	names  map[string]int // name -> number of rrsets at that name
}

// New creates an empty zone with an SOA record synthesized from origin.
func New(origin string) *Zone {
	z := &Zone{
		Origin: dns.Canonical(origin),
		rrsets: make(map[rrKey][]dns.RR),
		names:  make(map[string]int),
	}
	z.Add(dns.NewSOA(z.Origin, dns.Join("ns1", z.Origin), dns.Join("hostmaster", z.Origin), 1))
	return z
}

// Add inserts a record. Records outside the zone are rejected.
func (z *Zone) Add(rr dns.RR) error {
	rr.Name = dns.Canonical(rr.Name)
	if !dns.IsSubdomain(rr.Name, z.Origin) {
		return fmt.Errorf("zone %s: record %s out of zone", z.Origin, rr.Name)
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	k := rrKey{rr.Name, rr.Type}
	if len(z.rrsets[k]) == 0 {
		z.names[rr.Name]++
	}
	z.rrsets[k] = append(z.rrsets[k], rr)
	return nil
}

// RemoveRRset deletes all records of a given name and type.
func (z *Zone) RemoveRRset(name string, typ dns.Type) {
	name = dns.Canonical(name)
	z.mu.Lock()
	defer z.mu.Unlock()
	k := rrKey{name, typ}
	if len(z.rrsets[k]) > 0 {
		delete(z.rrsets, k)
		z.names[name]--
		if z.names[name] == 0 {
			delete(z.names, name)
		}
	}
}

// Lookup returns the rrset for (name, type), or nil.
func (z *Zone) Lookup(name string, typ dns.Type) []dns.RR {
	z.mu.RLock()
	defer z.mu.RUnlock()
	rrs := z.rrsets[rrKey{dns.Canonical(name), typ}]
	out := make([]dns.RR, len(rrs))
	copy(out, rrs)
	return out
}

// SOA returns the zone's SOA record (zero RR if absent).
func (z *Zone) SOA() dns.RR {
	rrs := z.Lookup(z.Origin, dns.TypeSOA)
	if len(rrs) == 0 {
		return dns.RR{}
	}
	return rrs[0]
}

// Size returns the number of records in the zone.
func (z *Zone) Size() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	n := 0
	for _, rrs := range z.rrsets {
		n += len(rrs)
	}
	return n
}

// Names returns all owner names in the zone, sorted.
func (z *Zone) Names() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	names := make([]string, 0, len(z.names))
	for n := range z.names {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Answer is the result of an authoritative lookup.
type Answer struct {
	RCode         dns.RCode
	Authoritative bool
	Answers       []dns.RR
	Authority     []dns.RR
	Additional    []dns.RR
}

// Query resolves a question against the zone with RFC 1034 §4.3.2
// semantics: authoritative answer, delegation referral with glue, CNAME,
// NODATA, or NXDOMAIN.
func (z *Zone) Query(name string, typ dns.Type) Answer {
	name = dns.Canonical(name)
	if !dns.IsSubdomain(name, z.Origin) {
		return Answer{RCode: dns.RCodeRefused}
	}
	z.mu.RLock()
	defer z.mu.RUnlock()

	// Walk down from the zone origin looking for a delegation cut
	// strictly between origin and name.
	if cut := z.findDelegation(name); cut != "" {
		nsSet := z.rrsets[rrKey{cut, dns.TypeNS}]
		ans := Answer{RCode: dns.RCodeNoError, Authority: append([]dns.RR(nil), nsSet...)}
		for _, ns := range nsSet {
			host := ns.Data.(dns.NSData).Host
			if dns.IsSubdomain(host, z.Origin) {
				ans.Additional = append(ans.Additional, z.rrsets[rrKey{host, dns.TypeA}]...)
				ans.Additional = append(ans.Additional, z.rrsets[rrKey{host, dns.TypeAAAA}]...)
			}
		}
		return ans
	}

	if rrs := z.rrsets[rrKey{name, typ}]; len(rrs) > 0 {
		return Answer{Authoritative: true, Answers: append([]dns.RR(nil), rrs...)}
	}
	// CNAME at the name answers any type except the CNAME's own.
	if cname := z.rrsets[rrKey{name, dns.TypeCNAME}]; len(cname) > 0 && typ != dns.TypeCNAME {
		ans := Answer{Authoritative: true, Answers: append([]dns.RR(nil), cname...)}
		// Chase the target within this zone, once.
		target := cname[0].Data.(dns.CNAMEData).Target
		if rrs := z.rrsets[rrKey{target, typ}]; len(rrs) > 0 {
			ans.Answers = append(ans.Answers, rrs...)
		}
		return ans
	}
	soa := z.rrsets[rrKey{z.Origin, dns.TypeSOA}]
	if z.nameExists(name) {
		return Answer{Authoritative: true, Authority: append([]dns.RR(nil), soa...)} // NODATA
	}
	return Answer{RCode: dns.RCodeNXDomain, Authoritative: true, Authority: append([]dns.RR(nil), soa...)}
}

// findDelegation returns the closest delegation cut at or above name,
// strictly below the origin, or "".
func (z *Zone) findDelegation(name string) string {
	for n := name; n != z.Origin && n != "."; n = dns.Parent(n) {
		if len(z.rrsets[rrKey{n, dns.TypeNS}]) > 0 {
			// NS at the apex is authority, not delegation — but n never
			// equals origin inside this loop.
			return n
		}
	}
	return ""
}

// nameExists reports whether any rrset or delegation-descendant exists at
// name (so empty non-terminals answer NODATA, not NXDOMAIN).
func (z *Zone) nameExists(name string) bool {
	if z.names[name] > 0 {
		return true
	}
	suffix := "." + name
	for n := range z.names {
		if strings.HasSuffix(n, suffix) {
			return true
		}
	}
	return false
}

// WriteTo serializes the zone in master-file presentation format.
func (z *Zone) WriteTo(w io.Writer) (int64, error) {
	z.mu.RLock()
	keys := make([]rrKey, 0, len(z.rrsets))
	for k := range z.rrsets {
		keys = append(keys, k)
	}
	records := make([]dns.RR, 0, len(keys))
	for _, k := range keys {
		records = append(records, z.rrsets[k]...)
	}
	z.mu.RUnlock()
	dns.SortRRs(records)
	// SOA first, by convention.
	sort.SliceStable(records, func(i, j int) bool {
		return records[i].Type == dns.TypeSOA && records[j].Type != dns.TypeSOA
	})
	var total int64
	bw := bufio.NewWriter(w)
	n, err := fmt.Fprintf(bw, "$ORIGIN %s\n", z.Origin)
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, rr := range records {
		n, err := fmt.Fprintln(bw, rr.String())
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// Parse reads a zone in the presentation format emitted by WriteTo.
// It accepts "$ORIGIN" directives, comments (';' to end of line) and blank
// lines. Owner names must be fully qualified.
func Parse(r io.Reader) (*Zone, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var z *Zone
	var pending []dns.RR
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "$ORIGIN" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("zone: line %d: malformed $ORIGIN", lineNo)
			}
			z = &Zone{
				Origin: dns.Canonical(fields[1]),
				rrsets: make(map[rrKey][]dns.RR),
				names:  make(map[string]int),
			}
			continue
		}
		rr, err := parseRR(fields)
		if err != nil {
			return nil, fmt.Errorf("zone: line %d: %w", lineNo, err)
		}
		if z == nil {
			pending = append(pending, rr)
			continue
		}
		if err := z.Add(rr); err != nil {
			return nil, fmt.Errorf("zone: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if z == nil {
		return nil, fmt.Errorf("zone: missing $ORIGIN directive")
	}
	for _, rr := range pending {
		if err := z.Add(rr); err != nil {
			return nil, err
		}
	}
	return z, nil
}

func parseRR(fields []string) (dns.RR, error) {
	// name TTL class type rdata...
	if len(fields) < 5 {
		return dns.RR{}, fmt.Errorf("short record %q", strings.Join(fields, " "))
	}
	ttl64, err := strconv.ParseUint(fields[1], 10, 32)
	if err != nil {
		return dns.RR{}, fmt.Errorf("bad TTL %q", fields[1])
	}
	if fields[2] != "IN" {
		return dns.RR{}, fmt.Errorf("unsupported class %q", fields[2])
	}
	typ, ok := dns.ParseType(fields[3])
	if !ok {
		return dns.RR{}, fmt.Errorf("unsupported type %q", fields[3])
	}
	name := dns.Canonical(fields[0])
	ttl := uint32(ttl64)
	rdata := fields[4:]
	switch typ {
	case dns.TypeA:
		addr, err := netip.ParseAddr(rdata[0])
		if err != nil || !addr.Is4() {
			return dns.RR{}, fmt.Errorf("bad A address %q", rdata[0])
		}
		return dns.NewA(name, ttl, addr), nil
	case dns.TypeAAAA:
		addr, err := netip.ParseAddr(rdata[0])
		if err != nil || !addr.Is6() {
			return dns.RR{}, fmt.Errorf("bad AAAA address %q", rdata[0])
		}
		return dns.NewAAAA(name, ttl, addr), nil
	case dns.TypeNS:
		return dns.NewNS(name, ttl, rdata[0]), nil
	case dns.TypeCNAME:
		return dns.NewCNAME(name, ttl, rdata[0]), nil
	case dns.TypeMX:
		pref, err := strconv.ParseUint(rdata[0], 10, 16)
		if err != nil || len(rdata) < 2 {
			return dns.RR{}, fmt.Errorf("bad MX rdata %v", rdata)
		}
		return dns.NewMX(name, ttl, uint16(pref), rdata[1]), nil
	case dns.TypeTXT:
		joined := strings.Join(rdata, " ")
		var strs []string
		for len(joined) > 0 {
			var s string
			var rest string
			if n, err := fmt.Sscanf(joined, "%q", &s); n == 1 && err == nil {
				// advance past the quoted string
				idx := strings.Index(joined[1:], `"`)
				rest = strings.TrimSpace(joined[idx+2:])
			} else {
				return dns.RR{}, fmt.Errorf("bad TXT rdata %q", joined)
			}
			strs = append(strs, s)
			joined = rest
		}
		return dns.NewTXT(name, ttl, strs...), nil
	case dns.TypeSOA:
		if len(rdata) != 7 {
			return dns.RR{}, fmt.Errorf("bad SOA rdata %v", rdata)
		}
		var nums [5]uint32
		for i := 0; i < 5; i++ {
			v, err := strconv.ParseUint(rdata[2+i], 10, 32)
			if err != nil {
				return dns.RR{}, fmt.Errorf("bad SOA number %q", rdata[2+i])
			}
			nums[i] = uint32(v)
		}
		return dns.RR{Name: name, Type: dns.TypeSOA, Class: dns.ClassIN, TTL: ttl, Data: dns.SOAData{
			MName: dns.Canonical(rdata[0]), RName: dns.Canonical(rdata[1]),
			Serial: nums[0], Refresh: nums[1], Retry: nums[2], Expire: nums[3], Minimum: nums[4],
		}}, nil
	default:
		return dns.RR{}, fmt.Errorf("unparsable type %v", typ)
	}
}
