package zone

import (
	"testing"

	"whereru/internal/dns"
)

func TestCompareEmptyOnIdentical(t *testing.T) {
	a := buildRuZone(t)
	b := buildRuZone(t)
	d := Compare(a, b)
	if !d.Empty() {
		t.Fatalf("identical zones differ: %+v", d)
	}
}

func TestCompareDetectsChanges(t *testing.T) {
	old := buildRuZone(t)
	new := buildRuZone(t)
	// A new registration…
	if err := new.Add(dns.NewNS("fresh.ru.", 3600, "ns1.hosting.ru.")); err != nil {
		t.Fatal(err)
	}
	// …a deletion…
	new.RemoveRRset("direct.ru.", dns.TypeA)
	// …and an NS change.
	new.RemoveRRset("example.ru.", dns.TypeNS)
	if err := new.Add(dns.NewNS("example.ru.", 3600, "ns9.elsewhere.com.")); err != nil {
		t.Fatal(err)
	}

	d := Compare(old, new)
	if d.Empty() {
		t.Fatal("changes not detected")
	}
	hasAdded := func(name string, typ dns.Type) bool {
		for _, rr := range d.Added {
			if rr.Name == name && rr.Type == typ {
				return true
			}
		}
		return false
	}
	hasRemoved := func(name string, typ dns.Type) bool {
		for _, rr := range d.Removed {
			if rr.Name == name && rr.Type == typ {
				return true
			}
		}
		return false
	}
	if !hasAdded("fresh.ru.", dns.TypeNS) {
		t.Error("new registration missing from Added")
	}
	if !hasRemoved("direct.ru.", dns.TypeA) {
		t.Error("deleted A missing from Removed")
	}
	if !hasAdded("example.ru.", dns.TypeNS) || !hasRemoved("example.ru.", dns.TypeNS) {
		t.Error("NS change not reflected on both sides")
	}

	changed := ChangedDelegations(old, new)
	want := map[string]bool{"fresh.ru.": true, "example.ru.": true}
	if len(changed) != len(want) {
		t.Fatalf("ChangedDelegations = %v", changed)
	}
	for _, n := range changed {
		if !want[n] {
			t.Fatalf("unexpected changed delegation %s", n)
		}
	}
}

func TestCompareIgnoresTTL(t *testing.T) {
	old := New("ru.")
	new := New("ru.")
	if err := old.Add(dns.NewA("x.ru.", 300, addr("10.0.0.1"))); err != nil {
		t.Fatal(err)
	}
	if err := new.Add(dns.NewA("x.ru.", 9999, addr("10.0.0.1"))); err != nil {
		t.Fatal(err)
	}
	if d := Compare(old, new); !d.Empty() {
		t.Fatalf("TTL-only change reported: %+v", d)
	}
}
