package zone

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text to the zone-file parser: no panics, and
// anything accepted must survive a serialize → parse round trip with the
// same record count.
func FuzzParse(f *testing.F) {
	f.Add("$ORIGIN ru.\nx.ru. 60 IN A 1.2.3.4\n")
	f.Add("$ORIGIN ru.\nru. 3600 IN SOA a. b. 1 2 3 4 5\nx.ru. 60 IN NS ns1.x.ru.\n")
	f.Add("; comment only\n")
	f.Add("$ORIGIN xn--p1ai.\nxn--80a.xn--p1ai. 60 IN TXT \"hi there\"\n")
	f.Fuzz(func(t *testing.T, text string) {
		z, err := Parse(strings.NewReader(text))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := z.WriteTo(&buf); err != nil {
			t.Fatalf("serialize of parsed zone failed: %v", err)
		}
		back, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse failed: %v\n%s", err, buf.String())
		}
		if back.Size() != z.Size() {
			t.Fatalf("record count changed: %d → %d", z.Size(), back.Size())
		}
	})
}
