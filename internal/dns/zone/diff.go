package zone

import "whereru/internal/dns"

// Diff compares two zone snapshots (e.g. consecutive daily TLD zone
// files) and reports added and removed records — the primitive behind
// "what changed in .ru today" monitoring.
type Diff struct {
	// Added are records present in the new zone only.
	Added []dns.RR
	// Removed are records present in the old zone only.
	Removed []dns.RR
}

// Empty reports whether the zones are identical.
func (d Diff) Empty() bool { return len(d.Added) == 0 && len(d.Removed) == 0 }

// Compare computes new − old and old − new. Records are matched by
// (name, type, rendered RDATA); TTL changes alone do not count as
// differences, mirroring how zone-diff tooling treats refresh noise.
func Compare(old, new *Zone) Diff {
	key := func(rr dns.RR) string {
		return rr.Name + "\x00" + rr.Type.String() + "\x00" + rr.Data.String()
	}
	collect := func(z *Zone) map[string]dns.RR {
		out := make(map[string]dns.RR)
		for _, name := range z.Names() {
			for _, typ := range []dns.Type{dns.TypeSOA, dns.TypeNS, dns.TypeA, dns.TypeAAAA, dns.TypeCNAME, dns.TypeMX, dns.TypeTXT} {
				for _, rr := range z.Lookup(name, typ) {
					out[key(rr)] = rr
				}
			}
		}
		return out
	}
	oldSet := collect(old)
	newSet := collect(new)
	var d Diff
	for k, rr := range newSet {
		if _, ok := oldSet[k]; !ok {
			d.Added = append(d.Added, rr)
		}
	}
	for k, rr := range oldSet {
		if _, ok := newSet[k]; !ok {
			d.Removed = append(d.Removed, rr)
		}
	}
	dns.SortRRs(d.Added)
	dns.SortRRs(d.Removed)
	return d
}

// ChangedDelegations returns the owner names whose NS sets differ between
// the two zones — the registry-level view of a diff (new registrations,
// deletions, and name-server changes).
func ChangedDelegations(old, new *Zone) []string {
	d := Compare(old, new)
	seen := map[string]bool{}
	var out []string
	note := func(rr dns.RR) {
		if rr.Type == dns.TypeNS && rr.Name != old.Origin && rr.Name != new.Origin && !seen[rr.Name] {
			seen[rr.Name] = true
			out = append(out, rr.Name)
		}
	}
	for _, rr := range d.Added {
		note(rr)
	}
	for _, rr := range d.Removed {
		note(rr)
	}
	return out
}
