package zone

import (
	"net/netip"
	"sort"
	"strings"
	"sync"

	"whereru/internal/dns"
)

// Authority serves one or more zones as a dns.Handler, routing each query
// to the zone with the longest matching origin (most-specific wins, so a
// server can host both "ru." and "example.ru.").
type Authority struct {
	mu    sync.RWMutex
	zones map[string]*Zone
}

// NewAuthority returns an Authority serving the given zones.
func NewAuthority(zones ...*Zone) *Authority {
	a := &Authority{zones: make(map[string]*Zone)}
	for _, z := range zones {
		a.AddZone(z)
	}
	return a
}

// AddZone registers (or replaces) a zone.
func (a *Authority) AddZone(z *Zone) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.zones[z.Origin] = z
}

// Zones lists the served origins, sorted.
func (a *Authority) Zones() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.zones))
	for o := range a.zones {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// match returns the most-specific zone containing name, or nil.
func (a *Authority) match(name string) *Zone {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var best *Zone
	bestLabels := -1
	for origin, z := range a.zones {
		if dns.IsSubdomain(name, origin) {
			if n := strings.Count(origin, "."); n > bestLabels {
				best, bestLabels = z, n
			}
		}
	}
	return best
}

// ServeDNS implements dns.Handler.
func (a *Authority) ServeDNS(q *dns.Message, _ netip.Addr) *dns.Message {
	resp := q.Reply()
	if q.Opcode != dns.OpcodeQuery || len(q.Questions) != 1 {
		resp.RCode = dns.RCodeNotImp
		return resp
	}
	question := q.Questions[0]
	if question.Class != dns.ClassIN {
		resp.RCode = dns.RCodeNotImp
		return resp
	}
	z := a.match(question.Name)
	if z == nil {
		resp.RCode = dns.RCodeRefused
		return resp
	}
	ans := z.Query(question.Name, question.Type)
	resp.RCode = ans.RCode
	resp.Authoritative = ans.Authoritative
	resp.Answers = ans.Answers
	resp.Authority = ans.Authority
	resp.Additional = ans.Additional
	return resp
}
