package zone

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"

	"whereru/internal/dns"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func buildRuZone(t testing.TB) *Zone {
	t.Helper()
	z := New("ru.")
	mustAdd := func(rr dns.RR) {
		if err := z.Add(rr); err != nil {
			t.Fatalf("Add(%v): %v", rr, err)
		}
	}
	mustAdd(dns.NewNS("ru.", 3600, "a.dns.ripn.net."))
	mustAdd(dns.NewNS("example.ru.", 3600, "ns1.example.ru."))
	mustAdd(dns.NewNS("example.ru.", 3600, "ns2.offsite.com."))
	mustAdd(dns.NewA("ns1.example.ru.", 3600, addr("194.58.117.1"))) // glue
	mustAdd(dns.NewA("direct.ru.", 300, addr("77.88.55.60")))
	mustAdd(dns.NewCNAME("www.direct.ru.", 300, "direct.ru."))
	mustAdd(dns.NewTXT("direct.ru.", 300, "hello"))
	return z
}

func TestZoneAnswer(t *testing.T) {
	z := buildRuZone(t)
	ans := z.Query("direct.ru.", dns.TypeA)
	if !ans.Authoritative || ans.RCode != dns.RCodeNoError || len(ans.Answers) != 1 {
		t.Fatalf("direct answer wrong: %+v", ans)
	}
	if ans.Answers[0].Data.(dns.AData).Addr != addr("77.88.55.60") {
		t.Fatalf("wrong address: %v", ans.Answers[0])
	}
}

func TestZoneReferralWithGlue(t *testing.T) {
	z := buildRuZone(t)
	ans := z.Query("example.ru.", dns.TypeA)
	if ans.Authoritative {
		t.Error("referral must not be authoritative")
	}
	if len(ans.Authority) != 2 {
		t.Fatalf("authority = %v, want 2 NS", ans.Authority)
	}
	// Only the in-zone NS gets glue.
	if len(ans.Additional) != 1 || ans.Additional[0].Name != "ns1.example.ru." {
		t.Fatalf("glue = %v", ans.Additional)
	}
	// Deeper names under the cut also get the referral.
	ans = z.Query("www.deep.example.ru.", dns.TypeA)
	if len(ans.Authority) != 2 || ans.RCode != dns.RCodeNoError {
		t.Fatalf("deep referral wrong: %+v", ans)
	}
}

func TestZoneCNAME(t *testing.T) {
	z := buildRuZone(t)
	ans := z.Query("www.direct.ru.", dns.TypeA)
	if len(ans.Answers) != 2 {
		t.Fatalf("CNAME chase answers = %v", ans.Answers)
	}
	if ans.Answers[0].Type != dns.TypeCNAME || ans.Answers[1].Type != dns.TypeA {
		t.Fatalf("CNAME order wrong: %v", ans.Answers)
	}
}

func TestZoneNXDomainAndNodata(t *testing.T) {
	z := buildRuZone(t)
	ans := z.Query("missing.ru.", dns.TypeA)
	if ans.RCode != dns.RCodeNXDomain {
		t.Fatalf("want NXDOMAIN, got %v", ans.RCode)
	}
	if len(ans.Authority) != 1 || ans.Authority[0].Type != dns.TypeSOA {
		t.Fatalf("NXDOMAIN must carry SOA, got %v", ans.Authority)
	}
	// NODATA: name exists (direct.ru. has A+TXT) but no MX.
	ans = z.Query("direct.ru.", dns.TypeMX)
	if ans.RCode != dns.RCodeNoError || len(ans.Answers) != 0 || len(ans.Authority) != 1 {
		t.Fatalf("NODATA wrong: %+v", ans)
	}
	// Empty non-terminal: "deep.example.ru." exists only via the cut below it —
	// but here test glue name parent: "ns1.example.ru." makes "example.ru." exist.
	ans = z.Query("ru.", dns.TypeMX)
	if ans.RCode != dns.RCodeNoError || len(ans.Answers) != 0 {
		t.Fatalf("apex NODATA wrong: %+v", ans)
	}
}

func TestZoneOutOfZone(t *testing.T) {
	z := buildRuZone(t)
	if ans := z.Query("example.com.", dns.TypeA); ans.RCode != dns.RCodeRefused {
		t.Fatalf("out-of-zone query not refused: %+v", ans)
	}
	if err := z.Add(dns.NewA("example.com.", 1, addr("10.0.0.1"))); err == nil {
		t.Fatal("out-of-zone Add accepted")
	}
}

func TestZoneRemove(t *testing.T) {
	z := buildRuZone(t)
	z.RemoveRRset("direct.ru.", dns.TypeA)
	ans := z.Query("direct.ru.", dns.TypeA)
	if len(ans.Answers) != 0 || ans.RCode != dns.RCodeNoError {
		t.Fatalf("after remove want NODATA (TXT remains), got %+v", ans)
	}
	z.RemoveRRset("direct.ru.", dns.TypeTXT)
	z.RemoveRRset("www.direct.ru.", dns.TypeCNAME)
	ans = z.Query("direct.ru.", dns.TypeA)
	if ans.RCode != dns.RCodeNXDomain {
		t.Fatalf("after removing all rrsets want NXDOMAIN, got %+v", ans)
	}
}

func TestZoneSerializeParseRoundTrip(t *testing.T) {
	z := buildRuZone(t)
	var buf bytes.Buffer
	if _, err := z.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	text := buf.String()
	if !strings.HasPrefix(text, "$ORIGIN ru.") {
		t.Fatalf("missing $ORIGIN header:\n%s", text)
	}
	z2, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, text)
	}
	if z2.Origin != "ru." {
		t.Fatalf("origin = %q", z2.Origin)
	}
	if z.Size() != z2.Size() {
		t.Fatalf("size mismatch: %d vs %d", z.Size(), z2.Size())
	}
	// Semantics preserved: same referral behavior.
	ans := z2.Query("example.ru.", dns.TypeA)
	if len(ans.Authority) != 2 || len(ans.Additional) != 1 {
		t.Fatalf("parsed zone referral wrong: %+v", ans)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                    // no origin
		"$ORIGIN ru.\njunk",                   // short record
		"$ORIGIN ru.\nx.ru. abc IN A 1.2.3.4", // bad TTL
		"$ORIGIN ru.\nx.ru. 60 CH A 1.2.3.4",  // bad class
		"$ORIGIN ru.\nx.ru. 60 IN A 999.2.3.4",
		"$ORIGIN ru.\nx.ru. 60 IN AAAA 1.2.3.4",
		"$ORIGIN ru.\nx.com. 60 IN A 1.2.3.4", // out of zone
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
}

func TestParseCommentsAndBlank(t *testing.T) {
	text := "; leading comment\n\n$ORIGIN ru.\nx.ru. 60 IN A 1.2.3.4 ; trailing\n"
	z, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(z.Lookup("x.ru.", dns.TypeA)) != 1 {
		t.Fatal("record with comment not parsed")
	}
}

func TestAuthorityRouting(t *testing.T) {
	parent := buildRuZone(t)
	child := New("example.ru.")
	if err := child.Add(dns.NewA("example.ru.", 60, addr("194.58.117.5"))); err != nil {
		t.Fatal(err)
	}
	auth := NewAuthority(parent, child)
	if got := auth.Zones(); len(got) != 2 {
		t.Fatalf("Zones = %v", got)
	}
	// Most-specific zone answers.
	q := dns.NewQuery(1, "example.ru.", dns.TypeA)
	resp := auth.ServeDNS(q, addr("127.0.0.1"))
	if !resp.Authoritative || len(resp.Answers) != 1 {
		t.Fatalf("child zone did not answer: %+v", resp)
	}
	// Parent still answers names outside the child.
	q = dns.NewQuery(2, "direct.ru.", dns.TypeA)
	resp = auth.ServeDNS(q, addr("127.0.0.1"))
	if len(resp.Answers) != 1 {
		t.Fatalf("parent did not answer: %+v", resp)
	}
	// Unserved name refused.
	q = dns.NewQuery(3, "example.org.", dns.TypeA)
	if resp = auth.ServeDNS(q, addr("127.0.0.1")); resp.RCode != dns.RCodeRefused {
		t.Fatalf("unserved query not refused: %v", resp.RCode)
	}
	// Multi-question and non-query opcodes are NOTIMP.
	q = dns.NewQuery(4, "direct.ru.", dns.TypeA)
	q.Questions = append(q.Questions, q.Questions[0])
	if resp = auth.ServeDNS(q, addr("127.0.0.1")); resp.RCode != dns.RCodeNotImp {
		t.Fatalf("multi-question not NOTIMP: %v", resp.RCode)
	}
}

func TestZoneNamesAndSize(t *testing.T) {
	z := buildRuZone(t)
	names := z.Names()
	if len(names) == 0 || names[0] != "direct.ru." {
		t.Fatalf("Names = %v", names)
	}
	if z.Size() != 8 { // SOA + 3 NS + 2 A + CNAME + TXT
		t.Fatalf("Size = %d, want 8", z.Size())
	}
	if z.SOA().Type != dns.TypeSOA {
		t.Fatal("SOA missing")
	}
}

func BenchmarkZoneQueryAnswer(b *testing.B) {
	z := buildRuZone(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.Query("direct.ru.", dns.TypeA)
	}
}

func BenchmarkZoneQueryReferral(b *testing.B) {
	z := buildRuZone(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.Query("www.deep.example.ru.", dns.TypeA)
	}
}
