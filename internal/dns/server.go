package dns

import (
	"errors"
	"net"
	"net/netip"
	"sync"
)

// Server is a UDP DNS server dispatching to a Handler — the real-socket
// counterpart of binding the handler into a MemNet. It exists so the same
// authoritative logic that powers in-memory sweeps can be driven by any
// standard DNS client (see cmd/dnsdig).
type Server struct {
	Handler Handler

	mu     sync.Mutex
	conn   *net.UDPConn
	tcpLn  net.Listener
	closed bool
	wg     sync.WaitGroup
}

// Listen binds a UDP socket on the given address ("127.0.0.1:0" for an
// ephemeral port) and starts serving until Close.
func (s *Server) Listen(addr string) error {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return errors.New("dns: server already closed")
	}
	s.conn = conn
	s.mu.Unlock()
	s.wg.Add(1)
	go s.serveLoop(conn)
	return nil
}

// Addr returns the bound address, valid after Listen.
func (s *Server) Addr() netip.AddrPort {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == nil {
		return netip.AddrPort{}
	}
	return s.conn.LocalAddr().(*net.UDPAddr).AddrPort()
}

func (s *Server) serveLoop(conn *net.UDPConn) {
	defer s.wg.Done()
	buf := make([]byte, maxMsgSize)
	var out []byte // response encode buffer, reused across datagrams
	for {
		n, raddr, err := conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			return // closed
		}
		query, err := Decode(buf[:n])
		if err != nil || query.Response {
			continue // not a well-formed query; drop silently like BIND
		}
		resp := s.Handler.ServeDNS(query, raddr.Addr())
		if resp == nil {
			continue
		}
		wire, err := resp.AppendEncode(out[:0])
		if err != nil {
			continue
		}
		out = wire
		if len(wire) > maxUDPResponse(query) {
			// Truncate to header+question and set TC, per RFC 1035 §4.2.1.
			// EDNS0 queries raise the budget to their advertised size.
			tc := resp.Reply()
			tc.Authoritative = resp.Authoritative
			tc.RCode = resp.RCode
			tc.Truncated = true
			if wire, err = tc.AppendEncode(out[:0]); err != nil {
				continue
			}
			out = wire
		}
		if _, err := conn.WriteToUDPAddrPort(wire, raddr); err != nil {
			return
		}
	}
}

// Close stops the server (UDP and TCP) and waits for the serve loops to
// exit.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conn := s.conn
	ln := s.tcpLn
	s.mu.Unlock()
	var err error
	if conn != nil {
		err = conn.Close()
	}
	if ln != nil {
		if cerr := ln.Close(); err == nil {
			err = cerr
		}
	}
	s.wg.Wait()
	return err
}
