package dns

import (
	"context"
	"errors"
	"net/netip"
	"sync"
	"sync/atomic"
)

// InfraCache holds the resolver's infrastructure state: the delegation
// cache (zone cut → authoritative addresses), the host cache (name-server
// name → addresses, positive and negative), and the singleflight table
// that coalesces concurrent host-cache misses. It is safe for concurrent
// use and can be shared by several Resolvers — the ZDNS design, where all
// sweep workers feed one cache so a big provider's NS set is resolved
// once per sweep rather than once per worker (or once per domain).
//
// Sharing cannot change measured answers: in the simulated world a
// response is a pure function of (question, day), so a cached value is
// bit-identical to what a fresh resolution would return. Only the
// counters (and upstream query volume) depend on scheduling.
type InfraCache struct {
	mu      sync.RWMutex
	gen     uint64 // bumped by Flush; in-flight results from older generations are not stored
	zones   map[string][]netip.Addr
	hosts   map[string][]netip.Addr
	hostNeg map[string]bool
	flights map[string]*hostFlight

	// coalesce enables singleflight on host-cache misses. Disabled, every
	// miss resolves upstream independently — the original resolver
	// behavior, kept for the reference oracle path. Set at construction.
	coalesce bool

	zoneHits, zoneMisses            atomic.Int64
	hostHits, hostMisses, coalesced atomic.Int64
}

// hostFlight is one in-flight host resolution; waiters block on done and
// then read addrs/err (the close provides the happens-before edge).
type hostFlight struct {
	done  chan struct{}
	addrs []netip.Addr
	err   error
}

// NewInfraCache returns an empty cache with miss coalescing enabled.
func NewInfraCache() *InfraCache {
	return &InfraCache{
		zones:    make(map[string][]netip.Addr),
		hosts:    make(map[string][]netip.Addr),
		hostNeg:  make(map[string]bool),
		flights:  make(map[string]*hostFlight),
		coalesce: true,
	}
}

// DisableCoalescing turns off singleflight on host-cache misses,
// restoring the original resolver's independent-miss behavior. Intended
// to be called once, before the cache is in use.
func (c *InfraCache) DisableCoalescing() {
	c.mu.Lock()
	c.coalesce = false
	c.mu.Unlock()
}

// Flush drops every cached entry (including negative entries) and
// detaches in-flight resolutions: their waiters are still answered, but
// their results — begun against the pre-flush world — are not stored.
func (c *InfraCache) Flush() {
	c.mu.Lock()
	c.gen++
	c.zones = make(map[string][]netip.Addr)
	c.hosts = make(map[string][]netip.Addr)
	c.hostNeg = make(map[string]bool)
	c.flights = make(map[string]*hostFlight)
	c.mu.Unlock()
}

// CacheStats is a point-in-time view of cache sizes and cumulative
// lookup counters (monotonic over the cache's lifetime; Flush does not
// reset them — consumers take deltas, like ClientStats).
type CacheStats struct {
	// Zones and Hosts are current entry counts.
	Zones, Hosts int
	// ZoneHits/ZoneMisses count delegation-cache walks: a hit found a
	// cached zone cut to start from, a miss fell back to the roots.
	ZoneHits, ZoneMisses int64
	// HostHits/HostMisses count host-cache lookups (hits include
	// negative-cache hits); Coalesced counts lookups that piggybacked on
	// an in-flight identical resolution instead of going upstream.
	HostHits, HostMisses, Coalesced int64
}

// Hits and Misses aggregate the per-layer counters.
func (s CacheStats) Hits() int64   { return s.ZoneHits + s.HostHits }
func (s CacheStats) Misses() int64 { return s.ZoneMisses + s.HostMisses }

// Stats returns current sizes and counters.
func (c *InfraCache) Stats() CacheStats {
	c.mu.RLock()
	zones, hosts := len(c.zones), len(c.hosts)
	c.mu.RUnlock()
	return CacheStats{
		Zones:      zones,
		Hosts:      hosts,
		ZoneHits:   c.zoneHits.Load(),
		ZoneMisses: c.zoneMisses.Load(),
		HostHits:   c.hostHits.Load(),
		HostMisses: c.hostMisses.Load(),
		Coalesced:  c.coalesced.Load(),
	}
}

// deepestCut finds the closest enclosing cached zone cut for name,
// falling back to the given roots.
func (c *InfraCache) deepestCut(name string, roots []netip.Addr) ([]netip.Addr, string) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for n := name; n != "."; n = Parent(n) {
		if addrs, ok := c.zones[n]; ok && len(addrs) > 0 {
			c.zoneHits.Add(1)
			return addrs, n
		}
	}
	c.zoneMisses.Add(1)
	return roots, "."
}

func (c *InfraCache) storeZone(zone string, addrs []netip.Addr) {
	c.mu.Lock()
	c.zones[zone] = addrs
	c.mu.Unlock()
}

func (c *InfraCache) dropZone(zone string) {
	c.mu.Lock()
	delete(c.zones, zone)
	c.mu.Unlock()
}

func (c *InfraCache) storeHost(host string, addrs []netip.Addr) {
	c.mu.Lock()
	c.hosts[host] = addrs
	c.mu.Unlock()
}

// lookupHost consults the positive and negative host caches. The second
// return distinguishes a positive hit (true, even with an empty address
// set) from a miss; neg reports a negative-cache hit.
//
// Order matters for determinism: a negative entry wins over a positive
// one, and a host with a chase in flight reports a miss so the caller
// joins the flight instead of trusting glue the chase stored on its way
// down. Referral walks cache glue (storeHost) before the authoritative
// query runs; if that query then fails, honoring the glue would make a
// host's resolvability depend on whether some earlier resolution had
// walked past it — scheduling, not DNS data.
func (c *InfraCache) lookupHost(host string) (addrs []netip.Addr, ok, neg bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.hostNeg[host] {
		return nil, false, true
	}
	if c.flights[host] != nil {
		return nil, false, false
	}
	addrs, ok = c.hosts[host]
	return addrs, ok, false
}

// joinOrLead decides a miss's fate under coalescing: either joins an
// in-flight resolution for host (lead=false) or registers a new flight
// it must complete (lead=true, with the generation to hand back to
// completeHost). A cache hit that raced in between is returned like
// lookupHost's.
func (c *InfraCache) joinOrLead(host string) (fl *hostFlight, lead bool, gen uint64, addrs []netip.Addr, ok, neg bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Same precedence as lookupHost: negative beats positive, and an
	// in-flight chase beats glue it may itself have stored.
	if c.hostNeg[host] {
		return nil, false, 0, nil, false, true
	}
	if c.coalesce {
		if fl = c.flights[host]; fl != nil {
			return fl, false, 0, nil, false, false
		}
	}
	if addrs, ok = c.hosts[host]; ok {
		return nil, false, 0, addrs, true, false
	}
	if !c.coalesce {
		return nil, true, c.gen, nil, false, false
	}
	fl = &hostFlight{done: make(chan struct{})}
	c.flights[host] = fl
	return fl, true, c.gen, nil, false, false
}

// completeHost finishes a led flight: stores the outcome (unless the
// cache was flushed since the flight began, or the failure was only the
// caller's context dying) and wakes the waiters. fl is nil when
// coalescing is off — then only the store happens.
func (c *InfraCache) completeHost(host string, fl *hostFlight, gen uint64, addrs []netip.Addr, err error, ctxDead bool) {
	c.mu.Lock()
	if fl != nil && c.flights[host] == fl {
		delete(c.flights, host)
	}
	if c.gen == gen {
		if err == nil {
			c.hosts[host] = addrs
		} else if !ctxDead {
			// A dead name-server host costs one resolution per sweep, not
			// one per delegated domain. The chase may have glued this very
			// host into the positive cache while walking down to its zone;
			// the authoritative failure invalidates that, or the host's
			// resolvability would depend on resolution order.
			delete(c.hosts, host)
			c.hostNeg[host] = true
		}
	}
	c.mu.Unlock()
	if fl != nil {
		fl.addrs, fl.err = addrs, err
		close(fl.done)
	}
}

// isContextErr reports whether err is (or wraps) a context cancellation
// or deadline — failures that describe the leader's context, not the
// looked-up host, and so must not be adopted by waiters with live
// contexts.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
