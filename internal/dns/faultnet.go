package dns

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"whereru/internal/simtime"
)

// This file is the deterministic fault-injection layer: a Transport
// wrapper that subjects exchanges to packet loss, SERVFAIL flaps,
// truncation, added latency, and scheduled outage windows keyed to the
// simulation day. Measurement platforms treat loss as normal — ZDNS-style
// sweeps retry per-nameserver precisely because single-attempt sweeps
// systematically overcount failures — so experiments that previously
// toggled MemNet.SetUnreachable by hand become declarative FaultProfiles
// here, and the paper's wartime instabilities (Netnod withdrawing
// service, flapping delegations, lossy paths) become reproducible inputs.

// DayClock reports the current simulation day. netsim.Clock satisfies it;
// a nil clock pins the fault layer to day 0 (outage windows never fire
// unless they cover day 0, and fault hashes lose their day key).
type DayClock interface {
	Now() simtime.Day
}

// FaultProfile describes how a server (or prefix of servers) misbehaves.
// The zero value injects nothing.
type FaultProfile struct {
	// Loss is the probability in [0,1] that an exchange is silently
	// dropped (surfaced as ErrNoRoute, the in-memory analog of a timeout).
	Loss float64
	// ServFail is the probability that an otherwise-successful response
	// is replaced by a SERVFAIL — a flapping resolver or overloaded
	// authoritative.
	ServFail float64
	// Truncate is the probability that the response arrives with the TC
	// bit set and its record sections clipped, as an overfull UDP
	// datagram would.
	Truncate float64
	// Latency is added to every exchange before it is attempted.
	Latency time.Duration
	// LatencyJitter spreads Latency per exchange: the effective delay is
	// Latency × (1 − J/2 + J·u), where u ∈ [0,1) is a pure hash of
	// (seed, day, server, query) — the same scheme as the fault rolls, so
	// the spread is replayable and mean-preserving. A fixed Latency alone
	// produces a one-spike distribution; jitter makes latency series
	// non-degenerate without sacrificing determinism. Values in [0,1] are
	// sensible (0.3 → ±15%); 0 disables jitter.
	LatencyJitter float64
	// Outages are scheduled windows during which the target drops every
	// query — e.g. Netnod's service withdrawal expressed as data rather
	// than an ad-hoc SetUnreachable call.
	Outages []simtime.Window
}

// outageOn reports whether day falls inside a scheduled outage window.
func (p *FaultProfile) outageOn(day simtime.Day) bool {
	for _, w := range p.Outages {
		if w.Contains(day) {
			return true
		}
	}
	return false
}

// active reports whether the profile can inject anything at all.
func (p *FaultProfile) active() bool {
	return p.Loss > 0 || p.ServFail > 0 || p.Truncate > 0 || p.Latency > 0 || len(p.Outages) > 0
}

// FaultStats counts what the fault layer did, for quantifying degraded
// sweeps.
type FaultStats struct {
	// Exchanges is the number of exchanges that passed through a profile.
	Exchanges int64
	// Dropped counts injected packet losses.
	Dropped int64
	// Outaged counts queries dropped by a scheduled outage window.
	Outaged int64
	// ServFails counts responses replaced by SERVFAIL.
	ServFails int64
	// Truncated counts responses clipped with the TC bit.
	Truncated int64
}

// ErrInjected marks errors produced by the fault layer. It wraps
// ErrNoRoute so callers that already treat unreachability as a timeout
// need no changes.
var ErrInjected = fmt.Errorf("%w (injected fault)", ErrNoRoute)

// FaultTransport wraps a Transport with per-server and per-prefix fault
// profiles.
//
// Fault decisions are pure hash functions of (seed, day, server, query),
// not draws from a sequential RNG: concurrent sweep workers interleave
// exchanges in scheduler-dependent order, and a shared RNG would hand a
// different fate to each query on every run. Hashing makes an exchange's
// outcome depend only on what is being asked and when, so a fixed seed
// reproduces the same faults — and therefore the same measurements —
// regardless of worker count or scheduling. The query ID participates in
// the hash, so retransmissions (which carry fresh IDs) re-roll their
// fate; pair with NewSeededClient for IDs that are themselves
// deterministic.
type FaultTransport struct {
	inner Transport
	clock DayClock
	seed  int64

	mu       sync.RWMutex
	def      FaultProfile
	hasDef   bool
	servers  map[netip.Addr]FaultProfile
	prefixes []prefixProfile

	exchanges, dropped, outaged, servfails, truncated atomic.Int64
}

type prefixProfile struct {
	prefix  netip.Prefix
	profile FaultProfile
}

// NewFaultTransport wraps inner with an empty fault configuration. clock
// may be nil when no profile uses outage windows.
func NewFaultTransport(inner Transport, seed int64, clock DayClock) *FaultTransport {
	return &FaultTransport{
		inner:   inner,
		clock:   clock,
		seed:    seed,
		servers: make(map[netip.Addr]FaultProfile),
	}
}

// SetDefault installs the profile applied to servers with no more
// specific match.
func (t *FaultTransport) SetDefault(p FaultProfile) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.def, t.hasDef = p, true
}

// SetServer installs a profile for one server address, overriding prefix
// and default profiles.
func (t *FaultTransport) SetServer(addr netip.Addr, p FaultProfile) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.servers[addr] = p
}

// SetPrefix installs a profile for every server inside prefix. The most
// specific (longest) matching prefix wins.
func (t *FaultTransport) SetPrefix(prefix netip.Prefix, p FaultProfile) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.prefixes {
		if t.prefixes[i].prefix == prefix {
			t.prefixes[i].profile = p
			return
		}
	}
	t.prefixes = append(t.prefixes, prefixProfile{prefix: prefix, profile: p})
}

// Stats returns the running fault counters.
func (t *FaultTransport) Stats() FaultStats {
	return FaultStats{
		Exchanges: t.exchanges.Load(),
		Dropped:   t.dropped.Load(),
		Outaged:   t.outaged.Load(),
		ServFails: t.servfails.Load(),
		Truncated: t.truncated.Load(),
	}
}

// profileFor resolves the effective profile for a server: exact address,
// then longest matching prefix, then the default.
func (t *FaultTransport) profileFor(server netip.Addr) (FaultProfile, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if p, ok := t.servers[server]; ok {
		return p, true
	}
	best, bestBits := FaultProfile{}, -1
	for _, pp := range t.prefixes {
		if pp.prefix.Contains(server) && pp.prefix.Bits() > bestBits {
			best, bestBits = pp.profile, pp.prefix.Bits()
		}
	}
	if bestBits >= 0 {
		return best, true
	}
	return t.def, t.hasDef
}

// Hash salts separating the independent fault decisions of one exchange.
const (
	saltLoss     = 0x9E3779B97F4A7C15
	saltServFail = 0xC2B2AE3D27D4EB4F
	saltTrunc    = 0x165667B19E3779F9
	saltLatency  = 0x27D4EB2F165667C5
)

// roll derives a uniform float64 in [0,1) from the exchange identity and
// a per-decision salt (FNV-1a over seed, day, server, query ID and
// question).
func (t *FaultTransport) roll(salt uint64, day simtime.Day, server netip.Addr, q *Message) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= prime64
			v >>= 8
		}
	}
	mix(salt)
	mix(uint64(t.seed))
	mix(uint64(uint32(day)))
	b := server.As4()
	mix(uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3]))
	mix(uint64(q.ID))
	if len(q.Questions) > 0 {
		mix(uint64(q.Questions[0].Type))
		for i := 0; i < len(q.Questions[0].Name); i++ {
			h ^= uint64(q.Questions[0].Name[i])
			h *= prime64
		}
	}
	return float64(h>>11) / float64(1<<53)
}

// Exchange implements Transport: it applies the effective profile's
// faults, then delegates to the wrapped transport.
func (t *FaultTransport) Exchange(ctx context.Context, server netip.Addr, query *Message) (*Message, error) {
	p, ok := t.profileFor(server)
	if !ok || !p.active() {
		return t.inner.Exchange(ctx, server, query)
	}
	t.exchanges.Add(1)
	var day simtime.Day
	if t.clock != nil {
		day = t.clock.Now()
	}
	if p.Latency > 0 {
		delay := p.Latency
		if p.LatencyJitter > 0 {
			// Mean-preserving spread around Latency, hashed from the
			// exchange identity so retransmissions (fresh query IDs)
			// re-roll their delay but replays reproduce it exactly.
			factor := 1 - p.LatencyJitter/2 + p.LatencyJitter*t.roll(saltLatency, day, server, query)
			delay = time.Duration(float64(delay) * factor)
		}
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
		}
	}
	if p.outageOn(day) {
		t.outaged.Add(1)
		return nil, fmt.Errorf("%w: %v in scheduled outage on %s", ErrInjected, server, day)
	}
	if p.Loss > 0 && t.roll(saltLoss, day, server, query) < p.Loss {
		t.dropped.Add(1)
		return nil, fmt.Errorf("%w: loss to %v", ErrInjected, server)
	}
	resp, err := t.inner.Exchange(ctx, server, query)
	if err != nil {
		return nil, err
	}
	if p.ServFail > 0 && t.roll(saltServFail, day, server, query) < p.ServFail {
		t.servfails.Add(1)
		out := query.Reply()
		out.RCode = RCodeServFail
		return out, nil
	}
	if p.Truncate > 0 && t.roll(saltTrunc, day, server, query) < p.Truncate {
		t.truncated.Add(1)
		return Truncate(resp), nil
	}
	return resp, nil
}

// Truncate returns a copy of resp clipped the way an overfull UDP
// datagram is: TC set, record sections dropped, header and question
// preserved. Exported so tests and fuzz corpora can produce exactly the
// shapes the fault layer emits.
func Truncate(resp *Message) *Message {
	out := &Message{Header: resp.Header}
	out.Truncated = true
	out.Questions = append(out.Questions, resp.Questions...)
	return out
}
