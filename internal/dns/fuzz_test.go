package dns

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the wire parser with arbitrary bytes: it must never
// panic, and anything it accepts must re-encode and re-decode to an
// equivalent message (idempotent canonicalization).
func FuzzDecode(f *testing.F) {
	seed := sampleMessage()
	wire, _ := seed.Encode()
	f.Add(wire)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xC0}, 64)) // pointer spam
	q := NewQuery(9, "пример.xn--p1ai.", TypeANY)
	if w, err := q.Encode(); err == nil {
		f.Add(w)
	}
	// Shapes the fault layer emits on a degraded wire: SERVFAIL flaps,
	// TC-stripped responses, and datagrams cut mid-record.
	flap := NewQuery(10, "flap.ru.", TypeA).Reply()
	flap.RCode = RCodeServFail
	if w, err := flap.Encode(); err == nil {
		f.Add(w)
	}
	full := sampleMessage()
	if w, err := Truncate(full).Encode(); err == nil {
		f.Add(w)
	}
	if w, err := full.Encode(); err == nil && len(w) > 12 {
		f.Add(w[:len(w)/2]) // cut inside a record
		f.Add(w[:12])       // header only, counts promise more
		garbled := bytes.Clone(w)
		garbled[4] ^= 0xFF // QDCOUNT scrambled
		f.Add(garbled)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		re, err := m.Encode()
		if err != nil {
			// Messages with decoded-but-unencodable payloads (e.g. an A
			// record whose address failed to parse) are acceptable; they
			// must only fail cleanly.
			return
		}
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded message failed: %v", err)
		}
		re2, err := m2.Encode()
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("encoding not idempotent:\n%x\n%x", re, re2)
		}
	})
}

// FuzzName drives name canonicalization and wire encoding together.
func FuzzName(f *testing.F) {
	for _, s := range []string{"example.ru", ".", "xn--p1ai", "a.b.c.d.e.f", "UPPER.RU."} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		name := Canonical(s)
		if !ValidName(name) {
			return
		}
		b, err := appendName(nil, name)
		if err != nil {
			t.Fatalf("ValidName(%q) but appendName failed: %v", name, err)
		}
		if len(b) > 256 {
			t.Fatalf("wire form of %q is %d octets", name, len(b))
		}
	})
}
