package dns

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzDiffSeeds are the FuzzMessageDecode starting corpus: well-formed
// messages of every RDATA shape the codec knows, plus the hostile wire
// shapes the fast decoder must reject without panicking — compression
// pointer loops, pointers past the end of the buffer, and RDATA cut
// short of its declared length.
func fuzzDiffSeeds() [][]byte {
	var seeds [][]byte
	add := func(b []byte, err error) {
		if err == nil {
			seeds = append(seeds, b)
		}
	}
	add(sampleMessage().Encode())
	add(NewQuery(7, "пример.xn--p1ai.", TypeANY).Encode())
	resp := NewQuery(8, "example.ru.", TypeA).Reply()
	resp.Authoritative = true
	resp.Answers = []RR{
		NewA("example.ru.", 300, mustAddr("194.58.117.5")),
		NewCNAME("www.example.ru.", 300, "example.ru."),
	}
	resp.Authority = []RR{NewNS("example.ru.", 3600, "ns1.reg.ru.")}
	resp.Additional = []RR{NewA("ns1.reg.ru.", 3600, mustAddr("194.58.116.30"))}
	add(resp.Encode())

	// Header promising one question whose name is a compression pointer
	// to itself: a decoder that follows it naively never terminates.
	selfLoop := []byte{
		0, 1, 0x80, 0, 0, 1, 0, 0, 0, 0, 0, 0, // header, QDCOUNT=1
		0xC0, 0x0C, // name: pointer to offset 12 — itself
		0, 1, 0, 1, // TYPE A, CLASS IN
	}
	seeds = append(seeds, selfLoop)

	// Two pointers chasing each other.
	pingPong := append([]byte{0, 2, 0x80, 0, 0, 1, 0, 0, 0, 0, 0, 0},
		0xC0, 0x0E, 0xC0, 0x0C, 0, 1, 0, 1)
	seeds = append(seeds, pingPong)

	// Pointer far past the end of the buffer.
	oob := append([]byte{0, 3, 0x80, 0, 0, 1, 0, 0, 0, 0, 0, 0},
		0xC3, 0xFF, 0, 1, 0, 1)
	seeds = append(seeds, oob)

	// A real answer truncated inside its RDATA, and with RDLENGTH lying.
	if wire, err := resp.Encode(); err == nil && len(wire) > 20 {
		seeds = append(seeds, wire[:len(wire)-3])
		lying := bytes.Clone(wire)
		lying[len(lying)-5] ^= 0xFF // somewhere in the final A record's RDLENGTH/RDATA
		seeds = append(seeds, lying)
	}
	seeds = append(seeds, bytes.Repeat([]byte{0xC0}, 64))
	return seeds
}

// FuzzMessageDecode differentially pins the zero-copy fast decoder to
// the preserved reference codec, the executable spec the fast path must
// never drift from:
//
//   - both decoders reach the same accept/reject verdict on every input;
//   - accepted inputs decode to deeply equal messages;
//   - the fast and reference encoders serialize those messages to the
//     same bytes (or both refuse);
//   - the fast path's encoding is a fixed point: decode → encode →
//     decode → encode reproduces the same bytes.
//
// Hostile inputs — pointer loops, out-of-bounds offsets, truncated
// RDATA — must error on both sides, never panic or diverge.
func FuzzMessageDecode(f *testing.F) {
	for _, seed := range fuzzDiffSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fast, fastErr := Decode(data)
		ref, refErr := ReferenceDecode(data)
		if (fastErr == nil) != (refErr == nil) {
			t.Fatalf("decode verdicts disagree on %x:\nfast: %v\nref:  %v", data, fastErr, refErr)
		}
		if fastErr != nil {
			return
		}
		if !reflect.DeepEqual(fast, ref) {
			t.Fatalf("decoded messages disagree on %x:\nfast: %+v\nref:  %+v", data, fast, ref)
		}

		fastWire, fErr := fast.Encode()
		refWire, rErr := ReferenceEncode(ref)
		if (fErr == nil) != (rErr == nil) {
			t.Fatalf("re-encode verdicts disagree:\nfast: %v\nref:  %v", fErr, rErr)
		}
		if fErr != nil {
			return // unencodable decoded payloads must only fail cleanly
		}
		if !bytes.Equal(fastWire, refWire) {
			t.Fatalf("re-encodings disagree:\nfast: %x\nref:  %x", fastWire, refWire)
		}

		again, err := Decode(fastWire)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		finalWire, err := again.Encode()
		if err != nil {
			t.Fatalf("re-encode of canonical message failed: %v", err)
		}
		if !bytes.Equal(fastWire, finalWire) {
			t.Fatalf("encoding is not a fixed point:\n%x\n%x", fastWire, finalWire)
		}
	})
}
