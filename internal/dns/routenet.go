package dns

import (
	"context"
	"fmt"
	"net/netip"
	"sync/atomic"
	"time"

	"whereru/internal/simtime"
)

// This file is the routing-aware transport layer: a Transport wrapper
// that consults an AS-level route table before every exchange. Where the
// fault layer (faultnet.go) models a server misbehaving, this layer
// models the path to the server not existing at all — depeering, IXP
// withdrawal, partition. No path means the query never arrives, surfaced
// exactly like a fault-layer loss (an error wrapping ErrNoRoute) so the
// resolver's retry/failover machinery and the pipeline's unreachability
// accounting need no changes. When a path exists, its simulated
// round-trip latency is accumulated — never slept — so scenario sweeps
// stay as fast as plain ones while latency series gain a routing signal.

// RoutePolicy decides, per simulation day, whether a server is reachable
// from the measurement vantage and at what simulated path round-trip
// latency. netsim.RouteView implements it over the Topology's route
// tables.
type RoutePolicy interface {
	Route(day simtime.Day, server netip.Addr) (time.Duration, bool)
}

// ErrNoPath marks exchanges refused because no AS path exists to the
// server on the current day. It wraps ErrNoRoute so callers that already
// treat unreachability as a timeout need no changes.
var ErrNoPath = fmt.Errorf("%w (no AS path)", ErrNoRoute)

// RouteStats counts what the route layer did.
type RouteStats struct {
	// Exchanges is the number of exchanges that consulted the route table.
	Exchanges int64
	// Unrouted counts exchanges refused for lack of an AS path.
	Unrouted int64
	// SimLatency is the total simulated path latency accumulated over
	// routed exchanges (virtual time — never slept).
	SimLatency time.Duration
}

// RouteTransport wraps a Transport with a RoutePolicy: exchanges to
// servers with no AS path fail with ErrNoPath, and routed exchanges
// accumulate their simulated path latency. Like every layer in this
// package it is deterministic: the decision is a pure function of
// (policy, day, server), independent of worker count and scheduling.
type RouteTransport struct {
	inner  Transport
	clock  DayClock
	policy RoutePolicy

	exchanges, unrouted, simNanos atomic.Int64
}

// NewRouteTransport wraps inner with a route policy. clock may be nil,
// pinning route decisions to day 0.
func NewRouteTransport(inner Transport, clock DayClock, policy RoutePolicy) *RouteTransport {
	return &RouteTransport{inner: inner, clock: clock, policy: policy}
}

// Stats returns the running route counters.
func (t *RouteTransport) Stats() RouteStats {
	return RouteStats{
		Exchanges:  t.exchanges.Load(),
		Unrouted:   t.unrouted.Load(),
		SimLatency: time.Duration(t.simNanos.Load()),
	}
}

// Exchange implements Transport: it refuses the exchange when no AS path
// reaches server on the current day, otherwise accumulates the path
// latency and delegates.
func (t *RouteTransport) Exchange(ctx context.Context, server netip.Addr, query *Message) (*Message, error) {
	t.exchanges.Add(1)
	var day simtime.Day
	if t.clock != nil {
		day = t.clock.Now()
	}
	lat, ok := t.policy.Route(day, server)
	if !ok {
		t.unrouted.Add(1)
		return nil, fmt.Errorf("%w: %v on %s", ErrNoPath, server, day)
	}
	if lat > 0 {
		t.simNanos.Add(int64(lat))
	}
	return t.inner.Exchange(ctx, server, query)
}
