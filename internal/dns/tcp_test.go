package dns

import (
	"context"
	"fmt"
	"net/netip"
	"strings"
	"testing"
)

// bigAnswerHandler returns n A records for any query — enough to exceed
// the 512-octet UDP limit when n is large.
func bigAnswerHandler(n int) Handler {
	return HandlerFunc(func(q *Message, _ netip.Addr) *Message {
		resp := q.Reply()
		resp.Authoritative = true
		for i := 0; i < n; i++ {
			resp.Answers = append(resp.Answers, NewA(q.Questions[0].Name, 60,
				netip.AddrFrom4([4]byte{10, 0, byte(i / 256), byte(i % 256)})))
		}
		return resp
	})
}

func TestTCPExchange(t *testing.T) {
	srv := &Server{Handler: bigAnswerHandler(3)}
	if err := srv.ListenTCP("127.0.0.1:0"); err != nil {
		t.Fatalf("ListenTCP: %v", err)
	}
	defer srv.Close()
	addr := srv.TCPAddr()
	client := NewClient(&TCPTransport{Port: int(addr.Port())})
	resp, err := client.Query(context.Background(), addr.Addr(), "example.ru.", TypeA)
	if err != nil {
		t.Fatalf("TCP query: %v", err)
	}
	if len(resp.Answers) != 3 {
		t.Fatalf("answers = %d", len(resp.Answers))
	}
}

func TestTCPMultipleQueriesPerConnection(t *testing.T) {
	srv := &Server{Handler: bigAnswerHandler(1)}
	if err := srv.ListenTCP("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.TCPAddr()
	tr := &TCPTransport{Port: int(addr.Port())}
	ctx := context.Background()
	// The transport opens one connection per exchange; issue several
	// sequential exchanges to exercise the accept loop repeatedly.
	for i := 0; i < 5; i++ {
		q := NewQuery(uint16(100+i), fmt.Sprintf("q%d.ru.", i), TypeA)
		resp, err := tr.Exchange(ctx, addr.Addr(), q)
		if err != nil {
			t.Fatalf("exchange %d: %v", i, err)
		}
		if resp.ID != q.ID {
			t.Fatalf("ID mismatch on exchange %d", i)
		}
	}
}

func TestUDPTruncationSetsTC(t *testing.T) {
	srv := &Server{Handler: bigAnswerHandler(60)} // ≈ 60×16 octets ≫ 512
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()
	udp := &UDPTransport{Port: int(addr.Port())}
	resp, err := udp.Exchange(context.Background(), addr.Addr(), NewQuery(7, "big.ru.", TypeA))
	if err != nil {
		t.Fatalf("UDP query: %v", err)
	}
	if !resp.Truncated {
		t.Fatal("oversized UDP response not truncated")
	}
	if len(resp.Answers) != 0 {
		t.Fatalf("truncated response carries %d answers", len(resp.Answers))
	}
}

func TestFallbackTransportRetriesOverTCP(t *testing.T) {
	h := bigAnswerHandler(60)
	srv := &Server{Handler: h}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	// TCP on its own ephemeral port.
	if err := srv.ListenTCP("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	fallback := &FallbackTransport{
		Primary:  &UDPTransport{Port: int(srv.Addr().Port())},
		Fallback: &TCPTransport{Port: int(srv.TCPAddr().Port())},
	}
	client := NewClient(fallback)
	resp, err := client.Query(context.Background(), srv.Addr().Addr(), "big.ru.", TypeA)
	if err != nil {
		t.Fatalf("fallback query: %v", err)
	}
	if resp.Truncated {
		t.Fatal("fallback still truncated")
	}
	if len(resp.Answers) != 60 {
		t.Fatalf("answers = %d, want 60 via TCP", len(resp.Answers))
	}
}

func TestFallbackWithoutSecondaryReturnsTruncated(t *testing.T) {
	srv := &Server{Handler: bigAnswerHandler(60)}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ft := &FallbackTransport{Primary: &UDPTransport{Port: int(srv.Addr().Port())}}
	resp, err := ft.Exchange(context.Background(), srv.Addr().Addr(), NewQuery(9, "x.ru.", TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Fatal("expected the truncated response to pass through")
	}
}

func TestTCPFramingRejectsOversize(t *testing.T) {
	var sb strings.Builder
	if err := writeTCPMessage(&sb, make([]byte, maxMsgSize+1)); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func TestTCPAddrBeforeListen(t *testing.T) {
	srv := &Server{Handler: bigAnswerHandler(1)}
	if srv.TCPAddr().IsValid() {
		t.Fatal("TCPAddr valid before ListenTCP")
	}
	if srv.Addr().IsValid() {
		t.Fatal("Addr valid before Listen")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close of never-listened server: %v", err)
	}
	if err := srv.ListenTCP("127.0.0.1:0"); err == nil {
		t.Fatal("ListenTCP after Close succeeded")
	}
}

func BenchmarkTCPExchange(b *testing.B) {
	srv := &Server{Handler: bigAnswerHandler(2)}
	if err := srv.ListenTCP("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	tr := &TCPTransport{Port: int(srv.TCPAddr().Port())}
	ctx := context.Background()
	q := NewQuery(1, "bench.ru.", TypeA)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Exchange(ctx, srv.TCPAddr().Addr(), q); err != nil {
			b.Fatal(err)
		}
	}
}
