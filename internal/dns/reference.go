package dns

import (
	"fmt"
	"net/netip"
	"strings"
)

// This file preserves the original, allocation-heavy wire codec verbatim
// as an executable specification. The fast codec in message.go must be
// observationally identical: ReferenceEncode produces byte-for-byte the
// same wire as Message.AppendEncode (compression choices included, since
// wire length feeds the server's TC decision), and ReferenceDecode
// accepts exactly the same inputs as Decode and yields deeply equal
// messages. The equivalence is pinned by differential tests and
// FuzzMessageDecode; the same pattern as the reference analysis oracles
// from the analysis engine rewrite.

type refBuilder struct {
	buf      []byte
	nameOffs map[string]int // canonical name -> offset of its first encoding
}

// appendCompressedName writes name using RFC 1035 compression pointers:
// the longest previously-written suffix is referenced with a 2-octet
// pointer, and only the new leading labels are written literally.
func (w *refBuilder) appendCompressedName(name string) error {
	if !ValidName(name) {
		return fmt.Errorf("dns: invalid name %q", name)
	}
	labels := Labels(name)
	for i := range labels {
		suffix := strings.Join(labels[i:], ".") + "."
		if off, ok := w.nameOffs[suffix]; ok && off < 0x3FFF {
			w.buf = append(w.buf, 0xC0|byte(off>>8), byte(off))
			return nil
		}
		if len(w.buf) < 0x3FFF {
			w.nameOffs[suffix] = len(w.buf)
		}
		w.buf = append(w.buf, byte(len(labels[i])))
		w.buf = append(w.buf, labels[i]...)
	}
	w.buf = append(w.buf, 0)
	return nil
}

func (w *refBuilder) appendUint16(v uint16) { w.buf = append(w.buf, byte(v>>8), byte(v)) }
func (w *refBuilder) appendUint32(v uint32) {
	w.buf = append(w.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func (w *refBuilder) appendRR(rr RR) error {
	if err := w.appendCompressedName(rr.Name); err != nil {
		return err
	}
	w.appendUint16(uint16(rr.Type))
	w.appendUint16(uint16(rr.Class))
	w.appendUint32(rr.TTL)
	lenOff := len(w.buf)
	w.appendUint16(0) // placeholder RDLENGTH
	var err error
	w.buf, err = rr.Data.appendWire(w.buf)
	if err != nil {
		return err
	}
	rdlen := len(w.buf) - lenOff - 2
	if rdlen > 0xFFFF {
		return fmt.Errorf("dns: RDATA too long (%d octets)", rdlen)
	}
	w.buf[lenOff] = byte(rdlen >> 8)
	w.buf[lenOff+1] = byte(rdlen)
	return nil
}

// ReferenceEncode serializes the message with the original map-based
// builder. It allocates freely; use Message.AppendEncode on hot paths.
func ReferenceEncode(m *Message) ([]byte, error) {
	w := &refBuilder{buf: make([]byte, 0, 512), nameOffs: make(map[string]int)}
	w.appendUint16(m.ID)
	w.appendUint16(m.flags())
	w.appendUint16(uint16(len(m.Questions)))
	w.appendUint16(uint16(len(m.Answers)))
	w.appendUint16(uint16(len(m.Authority)))
	w.appendUint16(uint16(len(m.Additional)))
	for _, q := range m.Questions {
		if err := w.appendCompressedName(q.Name); err != nil {
			return nil, err
		}
		w.appendUint16(uint16(q.Type))
		w.appendUint16(uint16(q.Class))
	}
	for _, section := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range section {
			if err := w.appendRR(rr); err != nil {
				return nil, err
			}
		}
	}
	if len(w.buf) > maxMsgSize {
		return nil, fmt.Errorf("dns: message exceeds %d octets", maxMsgSize)
	}
	return w.buf, nil
}

type refParser struct {
	buf []byte
	pos int
}

func (p *refParser) uint16() (uint16, error) {
	if p.pos+2 > len(p.buf) {
		return 0, ErrTruncatedMessage
	}
	v := uint16(p.buf[p.pos])<<8 | uint16(p.buf[p.pos+1])
	p.pos += 2
	return v, nil
}

func (p *refParser) uint32() (uint32, error) {
	if p.pos+4 > len(p.buf) {
		return 0, ErrTruncatedMessage
	}
	v := uint32(p.buf[p.pos])<<24 | uint32(p.buf[p.pos+1])<<16 | uint32(p.buf[p.pos+2])<<8 | uint32(p.buf[p.pos+3])
	p.pos += 4
	return v, nil
}

// name decodes a possibly-compressed name starting at p.pos, leaving p.pos
// just past the name's encoding at the top level.
func (p *refParser) name() (string, error) {
	var sb strings.Builder
	pos := p.pos
	jumped := false
	jumps := 0
	for {
		if pos >= len(p.buf) {
			return "", ErrTruncatedMessage
		}
		b := p.buf[pos]
		switch {
		case b == 0:
			if !jumped {
				p.pos = pos + 1
			}
			if sb.Len() == 0 {
				return ".", nil
			}
			name := sb.String()
			if !ValidName(name) {
				return "", fmt.Errorf("dns: decoded invalid name %q", name)
			}
			return name, nil
		case b&0xC0 == 0xC0:
			if pos+2 > len(p.buf) {
				return "", ErrTruncatedMessage
			}
			target := int(b&0x3F)<<8 | int(p.buf[pos+1])
			if !jumped {
				p.pos = pos + 2
			}
			// Pointers must go strictly backwards; that plus a jump
			// budget guards against loops in hostile messages.
			if target >= pos {
				return "", ErrBadPointer
			}
			jumps++
			if jumps > 32 {
				return "", ErrBadPointer
			}
			pos = target
			jumped = true
		case b&0xC0 != 0:
			return "", fmt.Errorf("dns: reserved label type 0x%02x", b&0xC0)
		default:
			if pos+1+int(b) > len(p.buf) {
				return "", ErrTruncatedMessage
			}
			sb.Write(p.buf[pos+1 : pos+1+int(b)])
			sb.WriteByte('.')
			if sb.Len() > 255 {
				return "", ErrNameTooLong
			}
			pos += 1 + int(b)
		}
	}
}

func (p *refParser) rr() (RR, error) {
	var rr RR
	name, err := p.name()
	if err != nil {
		return rr, err
	}
	t, err := p.uint16()
	if err != nil {
		return rr, err
	}
	c, err := p.uint16()
	if err != nil {
		return rr, err
	}
	ttl, err := p.uint32()
	if err != nil {
		return rr, err
	}
	rdlen, err := p.uint16()
	if err != nil {
		return rr, err
	}
	if p.pos+int(rdlen) > len(p.buf) {
		return rr, ErrTruncatedMessage
	}
	rdEnd := p.pos + int(rdlen)
	rr.Name, rr.Type, rr.Class, rr.TTL = name, Type(t), Class(c), ttl
	switch rr.Type {
	case TypeA:
		if rdlen != 4 {
			return rr, fmt.Errorf("dns: A RDATA length %d", rdlen)
		}
		rr.Data = AData{netip.AddrFrom4([4]byte(p.buf[p.pos:rdEnd]))}
		p.pos = rdEnd
	case TypeAAAA:
		if rdlen != 16 {
			return rr, fmt.Errorf("dns: AAAA RDATA length %d", rdlen)
		}
		rr.Data = AAAAData{netip.AddrFrom16([16]byte(p.buf[p.pos:rdEnd]))}
		p.pos = rdEnd
	case TypeNS:
		host, err := p.name()
		if err != nil {
			return rr, err
		}
		rr.Data = NSData{host}
	case TypeCNAME:
		target, err := p.name()
		if err != nil {
			return rr, err
		}
		rr.Data = CNAMEData{target}
	case TypeSOA:
		var soa SOAData
		if soa.MName, err = p.name(); err != nil {
			return rr, err
		}
		if soa.RName, err = p.name(); err != nil {
			return rr, err
		}
		for _, dst := range []*uint32{&soa.Serial, &soa.Refresh, &soa.Retry, &soa.Expire, &soa.Minimum} {
			if *dst, err = p.uint32(); err != nil {
				return rr, err
			}
		}
		rr.Data = soa
	case TypeMX:
		pref, err := p.uint16()
		if err != nil {
			return rr, err
		}
		host, err := p.name()
		if err != nil {
			return rr, err
		}
		rr.Data = MXData{pref, host}
	case TypeOPT:
		// OPT (EDNS0): the payload size is in Class; options are ignored.
		p.pos = rdEnd
		rr.Data = OPTData{}
	case TypeTXT:
		var txt TXTData
		for p.pos < rdEnd {
			l := int(p.buf[p.pos])
			if p.pos+1+l > rdEnd {
				return rr, ErrTruncatedMessage
			}
			txt.Strings = append(txt.Strings, string(p.buf[p.pos+1:p.pos+1+l]))
			p.pos += 1 + l
		}
		rr.Data = txt
	default:
		// Unknown types are carried opaquely so decoding is lossless and
		// re-encoding reproduces the original octets (RFC 3597).
		rr.Data = RawData{Octets: string(p.buf[p.pos:rdEnd])}
		p.pos = rdEnd
	}
	if p.pos != rdEnd {
		return rr, fmt.Errorf("dns: RDATA length mismatch for %s %s", rr.Name, rr.Type)
	}
	return rr, nil
}

// ReferenceDecode parses a wire-format DNS message with the original
// builder-per-name parser.
func ReferenceDecode(buf []byte) (*Message, error) {
	if len(buf) < headerLen {
		return nil, ErrTruncatedMessage
	}
	p := &refParser{buf: buf}
	m := &Message{}
	id, _ := p.uint16()
	flags, _ := p.uint16()
	qd, _ := p.uint16()
	an, _ := p.uint16()
	ns, _ := p.uint16()
	ar, _ := p.uint16()

	m.ID = id
	m.setFlags(flags)

	if int(qd)+int(an)+int(ns)+int(ar) > maxCount {
		return nil, fmt.Errorf("dns: implausible record counts")
	}
	for i := 0; i < int(qd); i++ {
		name, err := p.name()
		if err != nil {
			return nil, err
		}
		t, err := p.uint16()
		if err != nil {
			return nil, err
		}
		c, err := p.uint16()
		if err != nil {
			return nil, err
		}
		m.Questions = append(m.Questions, Question{Name: name, Type: Type(t), Class: Class(c)})
	}
	for _, section := range []struct {
		count int
		dst   *[]RR
	}{{int(an), &m.Answers}, {int(ns), &m.Authority}, {int(ar), &m.Additional}} {
		for i := 0; i < section.count; i++ {
			rr, err := p.rr()
			if err != nil {
				return nil, err
			}
			*section.dst = append(*section.dst, rr)
		}
	}
	return m, nil
}
