package dns

import (
	"context"
	"net/netip"
	"testing"
)

// buildTestInternet wires a tiny three-level hierarchy into a MemNet:
// root → ru/com TLD servers → two authoritative providers, with a .ru
// domain whose name server lives under .com (out-of-bailiwick, glueless).
func buildTestInternet(t testing.TB) (*MemNet, []netip.Addr) {
	t.Helper()
	net := NewMemNet()
	rootAddr := mustAddr("198.41.0.4")
	ruTLD := mustAddr("193.232.128.6")
	comTLD := mustAddr("192.5.6.30")
	regRu := mustAddr("194.58.116.30")  // authoritative for reg.ru + customers
	hostCom := mustAddr("172.64.32.99") // authoritative for hosting.com + customers

	serve := func(build func(q Question, resp *Message)) Handler {
		return HandlerFunc(func(q *Message, _ netip.Addr) *Message {
			resp := q.Reply()
			build(q.Questions[0], resp)
			return resp
		})
	}

	// Root: delegates ru. and com.
	net.Bind(rootAddr, serve(func(q Question, resp *Message) {
		switch {
		case IsSubdomain(q.Name, "ru."):
			resp.Authority = []RR{NewNS("ru.", 3600, "a.dns.ripn.net.")}
			resp.Additional = []RR{NewA("a.dns.ripn.net.", 3600, ruTLD)}
		case IsSubdomain(q.Name, "com."):
			resp.Authority = []RR{NewNS("com.", 3600, "a.gtld-servers.net.")}
			resp.Additional = []RR{NewA("a.gtld-servers.net.", 3600, comTLD)}
		default:
			resp.Authoritative = true
			resp.RCode = RCodeNXDomain
		}
	}))

	// .ru TLD: delegates example.ru (in-bailiwick NS, glued) and
	// foreign.ru (NS under .com, glueless).
	net.Bind(ruTLD, serve(func(q Question, resp *Message) {
		switch {
		case IsSubdomain(q.Name, "example.ru."):
			resp.Authority = []RR{NewNS("example.ru.", 3600, "ns1.reg.ru.")}
			resp.Additional = []RR{NewA("ns1.reg.ru.", 3600, regRu)}
		case IsSubdomain(q.Name, "foreign.ru."):
			resp.Authority = []RR{NewNS("foreign.ru.", 3600, "ns1.hosting.com.")}
		case IsSubdomain(q.Name, "reg.ru."):
			resp.Authority = []RR{NewNS("reg.ru.", 3600, "ns1.reg.ru.")}
			resp.Additional = []RR{NewA("ns1.reg.ru.", 3600, regRu)}
		case q.Name == "ru." && q.Type == TypeSOA:
			resp.Authoritative = true
			resp.Answers = []RR{NewSOA("ru.", "a.dns.ripn.net.", "hostmaster.ripn.net.", 1)}
		default:
			resp.Authoritative = true
			resp.RCode = RCodeNXDomain
			resp.Authority = []RR{NewSOA("ru.", "a.dns.ripn.net.", "hostmaster.ripn.net.", 1)}
		}
	}))

	// .com TLD: delegates hosting.com.
	net.Bind(comTLD, serve(func(q Question, resp *Message) {
		if IsSubdomain(q.Name, "hosting.com.") {
			resp.Authority = []RR{NewNS("hosting.com.", 3600, "ns1.hosting.com.")}
			resp.Additional = []RR{NewA("ns1.hosting.com.", 3600, hostCom)}
			return
		}
		resp.Authoritative = true
		resp.RCode = RCodeNXDomain
	}))

	// reg.ru authoritative: example.ru apex + its own NS names.
	net.Bind(regRu, serve(func(q Question, resp *Message) {
		resp.Authoritative = true
		switch {
		case q.Name == "example.ru." && q.Type == TypeA:
			resp.Answers = []RR{NewA("example.ru.", 300, mustAddr("194.58.117.5"))}
		case q.Name == "example.ru." && q.Type == TypeNS:
			resp.Answers = []RR{NewNS("example.ru.", 300, "ns1.reg.ru.")}
		case q.Name == "www.example.ru." && q.Type == TypeA:
			resp.Answers = []RR{
				NewCNAME("www.example.ru.", 300, "example.ru."),
				NewA("example.ru.", 300, mustAddr("194.58.117.5")),
			}
		case q.Name == "ns1.reg.ru." && q.Type == TypeA:
			resp.Answers = []RR{NewA("ns1.reg.ru.", 300, regRu)}
		case q.Name == "empty.example.ru.":
			// authoritative NODATA
		default:
			resp.RCode = RCodeNXDomain
		}
	}))

	// hosting.com authoritative: foreign.ru apex + ns1.hosting.com.
	net.Bind(hostCom, serve(func(q Question, resp *Message) {
		resp.Authoritative = true
		switch {
		case q.Name == "foreign.ru." && q.Type == TypeA:
			resp.Answers = []RR{NewA("foreign.ru.", 300, mustAddr("172.64.33.1"))}
		case q.Name == "foreign.ru." && q.Type == TypeNS:
			resp.Answers = []RR{NewNS("foreign.ru.", 300, "ns1.hosting.com.")}
		case q.Name == "ns1.hosting.com." && q.Type == TypeA:
			resp.Answers = []RR{NewA("ns1.hosting.com.", 300, hostCom)}
		default:
			resp.RCode = RCodeNXDomain
		}
	}))

	return net, []netip.Addr{rootAddr}
}

func TestIterativeResolution(t *testing.T) {
	net, roots := buildTestInternet(t)
	r := NewResolver(net, roots)
	ctx := context.Background()

	addrs, err := r.LookupA(ctx, "example.ru.")
	if err != nil {
		t.Fatalf("LookupA(example.ru.): %v", err)
	}
	if len(addrs) != 1 || addrs[0] != mustAddr("194.58.117.5") {
		t.Fatalf("LookupA(example.ru.) = %v", addrs)
	}

	hosts, err := r.LookupNS(ctx, "example.ru.")
	if err != nil {
		t.Fatalf("LookupNS: %v", err)
	}
	if len(hosts) != 1 || hosts[0] != "ns1.reg.ru." {
		t.Fatalf("LookupNS = %v", hosts)
	}
}

func TestGluelessOutOfBailiwickResolution(t *testing.T) {
	net, roots := buildTestInternet(t)
	r := NewResolver(net, roots)
	addrs, err := r.LookupA(context.Background(), "foreign.ru.")
	if err != nil {
		t.Fatalf("LookupA(foreign.ru.): %v", err)
	}
	if len(addrs) != 1 || addrs[0] != mustAddr("172.64.33.1") {
		t.Fatalf("LookupA(foreign.ru.) = %v", addrs)
	}
}

func TestCNAMEChainResolution(t *testing.T) {
	net, roots := buildTestInternet(t)
	r := NewResolver(net, roots)
	res, err := r.Resolve(context.Background(), "www.example.ru.", TypeA)
	if err != nil {
		t.Fatalf("Resolve(www): %v", err)
	}
	if len(res.Answers) != 1 || res.Answers[0].Data.(AData).Addr != mustAddr("194.58.117.5") {
		t.Fatalf("CNAME answers = %v", res.Answers)
	}
}

func TestNXDomainAndNodata(t *testing.T) {
	net, roots := buildTestInternet(t)
	r := NewResolver(net, roots)
	ctx := context.Background()
	res, err := r.Resolve(ctx, "nosuch.example.ru.", TypeA)
	if err != nil {
		t.Fatalf("Resolve NXDOMAIN: %v", err)
	}
	if res.RCode != RCodeNXDomain || len(res.Answers) != 0 {
		t.Fatalf("want NXDOMAIN, got %v %v", res.RCode, res.Answers)
	}
	res, err = r.Resolve(ctx, "empty.example.ru.", TypeA)
	if err != nil {
		t.Fatalf("Resolve NODATA: %v", err)
	}
	if res.RCode != RCodeNoError || len(res.Answers) != 0 {
		t.Fatalf("want NODATA, got %v %v", res.RCode, res.Answers)
	}
}

func TestDelegationCacheSpeedsSecondQuery(t *testing.T) {
	net, roots := buildTestInternet(t)
	var queries int
	net.SetTap(func(netip.Addr, *Message) { queries++ })
	r := NewResolver(net, roots)
	ctx := context.Background()
	if _, err := r.LookupA(ctx, "example.ru."); err != nil {
		t.Fatal(err)
	}
	first := queries
	if _, err := r.LookupA(ctx, "example.ru."); err != nil {
		t.Fatal(err)
	}
	second := queries - first
	if second >= first {
		t.Errorf("cache ineffective: first=%d second=%d queries", first, second)
	}
	cs := r.CacheStats()
	if cs.Zones == 0 || cs.Hosts == 0 {
		t.Errorf("caches empty after resolution: zones=%d hosts=%d", cs.Zones, cs.Hosts)
	}
	if cs.ZoneHits == 0 || cs.Misses() == 0 {
		t.Errorf("lookup counters not moving: %+v", cs)
	}
	r.FlushCache()
	cs = r.CacheStats()
	if cs.Zones != 0 || cs.Hosts != 0 {
		t.Error("FlushCache left entries behind")
	}
}

func TestUnreachableServerFailsOver(t *testing.T) {
	net, roots := buildTestInternet(t)
	r := NewResolver(net, roots)
	r.Client.Retries = 0
	ctx := context.Background()
	// Prime the cache, then take the authoritative down; resolution must
	// fall back to the root and ultimately fail cleanly (not hang).
	if _, err := r.LookupA(ctx, "example.ru."); err != nil {
		t.Fatal(err)
	}
	net.SetUnreachable(mustAddr("194.58.116.30"), true)
	r.FlushCache()
	if _, err := r.LookupA(ctx, "example.ru."); err == nil {
		t.Fatal("resolution succeeded with authoritative down")
	}
	net.SetUnreachable(mustAddr("194.58.116.30"), false)
	if _, err := r.LookupA(ctx, "example.ru."); err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
}

func TestLookupHostNegativeCache(t *testing.T) {
	net, roots := buildTestInternet(t)
	comTLD := mustAddr("192.5.6.30")
	hostCom := mustAddr("172.64.32.99")
	var queries int
	net.SetTap(func(netip.Addr, *Message) { queries++ })
	r := NewResolver(net, roots)
	r.Client.Retries = 1
	ctx := context.Background()

	// The whole .com branch is down, so ns1.hosting.com cannot be
	// resolved and no glue for it is ever learned.
	net.SetUnreachable(comTLD, true)
	if _, err := r.LookupHost(ctx, "ns1.hosting.com.", 0); err == nil {
		t.Fatal("LookupHost succeeded with authoritative down")
	}
	first := queries
	if first == 0 {
		t.Fatal("first lookup sent no queries")
	}

	// Second lookup must be answered from the negative cache: zero
	// queries on the wire.
	if _, err := r.LookupHost(ctx, "ns1.hosting.com.", 0); err == nil {
		t.Fatal("negative-cached lookup succeeded")
	}
	if delta := queries - first; delta != 0 {
		t.Errorf("negative-cached LookupHost sent %d queries, want 0", delta)
	}

	// A domain delegated to the dead host fails fast too: only the
	// referral chase (root + ru TLD), no renewed expedition into .com.
	before := queries
	if _, err := r.LookupA(ctx, "foreign.ru."); err == nil {
		t.Fatal("foreign.ru resolved through a dead name server")
	}
	if delta := queries - before; delta > 2 {
		t.Errorf("lame-delegation resolution sent %d queries, want ≤ 2 (referrals only)", delta)
	}

	// FlushCache forgets the negative entry, so recovery is observable.
	net.SetUnreachable(comTLD, false)
	if _, err := r.LookupHost(ctx, "ns1.hosting.com.", 0); err == nil {
		t.Fatal("stale negative entry should still answer until flushed")
	}
	r.FlushCache()
	addrs, err := r.LookupHost(ctx, "ns1.hosting.com.", 0)
	if err != nil {
		t.Fatalf("post-flush lookup: %v", err)
	}
	if len(addrs) != 1 || addrs[0] != hostCom {
		t.Fatalf("post-flush addrs = %v", addrs)
	}
}

func TestLookupHostCancellationDoesNotPoisonCache(t *testing.T) {
	net, roots := buildTestInternet(t)
	r := NewResolver(net, roots)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.LookupHost(cancelled, "ns1.reg.ru.", 0); err == nil {
		t.Fatal("cancelled lookup succeeded")
	}
	// The failure above was the caller's, not the host's: a fresh context
	// must resolve normally.
	addrs, err := r.LookupHost(context.Background(), "ns1.reg.ru.", 0)
	if err != nil {
		t.Fatalf("lookup after cancellation: %v", err)
	}
	if len(addrs) != 1 {
		t.Fatalf("addrs = %v", addrs)
	}
}

// twoServerRoot binds two root servers that answer every A query
// authoritatively, returning the MemNet and the root addresses.
func twoServerRoot(build func(server netip.Addr) Handler) (*MemNet, []netip.Addr) {
	net := NewMemNet()
	roots := []netip.Addr{mustAddr("198.41.0.4"), mustAddr("199.9.14.201")}
	for _, a := range roots {
		net.Bind(a, build(a))
	}
	return net, roots
}

func TestQueryAnyRotatesAcrossServers(t *testing.T) {
	answer := func(server netip.Addr) Handler {
		return HandlerFunc(func(q *Message, _ netip.Addr) *Message {
			resp := q.Reply()
			resp.Authoritative = true
			resp.Answers = []RR{NewA(q.Questions[0].Name, 300, server)}
			return resp
		})
	}
	net, roots := twoServerRoot(answer)
	hit := map[netip.Addr]int{}
	net.SetTap(func(server netip.Addr, _ *Message) { hit[server]++ })
	r := NewResolver(net, roots)
	ctx := context.Background()
	for i := 0; i < 16; i++ {
		if _, err := r.LookupA(ctx, Canonical(string(rune('a'+i))+".ru.")); err != nil {
			t.Fatal(err)
		}
	}
	// The per-name rotation offset must spread first attempts over both
	// servers rather than hammering servers[0].
	if hit[roots[0]] == 0 || hit[roots[1]] == 0 {
		t.Errorf("rotation left a server cold: %v", hit)
	}
}

func TestQueryAnyFailsOverServFail(t *testing.T) {
	flaky := mustAddr("198.41.0.4")
	build := func(server netip.Addr) Handler {
		return HandlerFunc(func(q *Message, _ netip.Addr) *Message {
			resp := q.Reply()
			if server == flaky {
				resp.RCode = RCodeServFail
				return resp
			}
			resp.Authoritative = true
			resp.Answers = []RR{NewA(q.Questions[0].Name, 300, server)}
			return resp
		})
	}
	net, roots := twoServerRoot(build)
	r := NewResolver(net, roots)
	r.Client.Retries = 0
	ctx := context.Background()
	// Whatever the rotation offset picks first, a SERVFAIL server must be
	// skipped in favor of a healthy sibling for every name.
	for i := 0; i < 16; i++ {
		name := Canonical(string(rune('a'+i)) + ".ru.")
		res, err := r.Resolve(ctx, name, TypeA)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.RCode != RCodeNoError || len(res.Answers) != 1 {
			t.Fatalf("%s: rcode=%v answers=%v", name, res.RCode, res.Answers)
		}
	}
}

func TestResolveOverUDP(t *testing.T) {
	// The same hierarchy, but the root is reached over a real UDP socket:
	// MemNet handlers behind a UDP front door via Server.
	memnet, roots := buildTestInternet(t)
	srv := &Server{Handler: HandlerFunc(func(q *Message, from netip.Addr) *Message {
		// A miniature recursive proxy: resolve via the in-memory Internet.
		r := NewResolver(memnet, roots)
		resp, err := r.Resolve(context.Background(), q.Questions[0].Name, q.Questions[0].Type)
		out := q.Reply()
		if err != nil {
			out.RCode = RCodeServFail
			return out
		}
		out.RCode = resp.RCode
		out.Answers = resp.Answers
		out.RecursionAvailable = true
		return out
	})}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	addrPort := srv.Addr()
	client := NewClient(&UDPTransport{Port: int(addrPort.Port())})
	resp, err := client.Query(context.Background(), addrPort.Addr(), "example.ru.", TypeA)
	if err != nil {
		t.Fatalf("UDP query: %v", err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Data.(AData).Addr != mustAddr("194.58.117.5") {
		t.Fatalf("UDP answers = %v", resp.Answers)
	}
}

func TestMemNetNoRoute(t *testing.T) {
	net := NewMemNet()
	c := NewClient(net)
	c.Retries = 0
	_, err := c.Query(context.Background(), mustAddr("10.9.9.9"), "x.ru.", TypeA)
	if err == nil {
		t.Fatal("query to unbound address succeeded")
	}
}

func TestClientContextCancellation(t *testing.T) {
	net := NewMemNet()
	c := NewClient(net)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Query(ctx, mustAddr("10.0.0.1"), "x.ru.", TypeA); err == nil {
		t.Fatal("cancelled query succeeded")
	}
}

func BenchmarkResolveWithCache(b *testing.B) {
	net, roots := buildTestInternet(b)
	r := NewResolver(net, roots)
	ctx := context.Background()
	if _, err := r.LookupA(ctx, "example.ru."); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.LookupA(ctx, "example.ru."); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResolveNoCache(b *testing.B) {
	net, roots := buildTestInternet(b)
	r := NewResolver(net, roots)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.FlushCache()
		if _, err := r.LookupA(ctx, "example.ru."); err != nil {
			b.Fatal(err)
		}
	}
}

func TestResolverTrace(t *testing.T) {
	net, roots := buildTestInternet(t)
	r := NewResolver(net, roots)
	var steps []TraceStep
	r.Trace = func(s TraceStep) { steps = append(steps, s) }
	if _, err := r.LookupA(context.Background(), "example.ru."); err != nil {
		t.Fatal(err)
	}
	if len(steps) < 3 {
		t.Fatalf("trace too short: %+v", steps)
	}
	// First hop: the root refers to ru.
	if steps[0].Zone != "." || steps[0].Referral != "ru." {
		t.Errorf("first step = %+v, want root → ru.", steps[0])
	}
	// Final hop: an authoritative answer.
	last := steps[len(steps)-1]
	if last.Answers == 0 || last.Referral != "" {
		t.Errorf("final step = %+v, want an answer", last)
	}
	// Tracing is optional: nil Trace must not break resolution.
	r.Trace = nil
	r.FlushCache()
	if _, err := r.LookupA(context.Background(), "example.ru."); err != nil {
		t.Fatal(err)
	}
}
