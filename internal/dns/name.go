package dns

import (
	"fmt"
	"strings"
)

// Domain names throughout the package are held in canonical presentation
// form: fully qualified, lowercase ASCII (IDN labels already in ACE form),
// with a trailing root dot. The root itself is ".". Canonical form makes
// names directly comparable with ==, usable as map keys, and sortable.

// Canonical normalizes a presentation-form name: lowercases it and appends
// the root dot if missing. It does not validate label lengths; use
// ValidName for that.
func Canonical(name string) string {
	if name == "" || name == "." {
		return "."
	}
	name = strings.ToLower(name)
	if !strings.HasSuffix(name, ".") {
		name += "."
	}
	return name
}

// ValidName reports whether name is a well-formed canonical domain name:
// fully qualified, total length ≤ 255 octets in wire form, each label
// 1–63 octets of printable ASCII.
func ValidName(name string) bool { return validName(name) }

// validName is ValidName over string or []byte, so the wire decoder can
// validate scratch bytes without materializing a string. It walks the
// name once instead of splitting into a label slice.
func validName[T string | []byte](name T) bool {
	if len(name) == 1 && name[0] == '.' {
		return true
	}
	if len(name) == 0 || name[len(name)-1] != '.' {
		return false
	}
	wire := 1 // terminal root byte
	start := 0
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '.' {
			l := i - start
			if l == 0 || l > 63 {
				return false
			}
			wire += l + 1
			start = i + 1
		} else if c < '!' || c > '~' {
			return false
		}
	}
	return wire <= 255
}

// Labels splits a canonical name into its labels, excluding the root.
// Labels(".") is nil.
func Labels(name string) []string {
	if name == "." || name == "" {
		return nil
	}
	return strings.Split(strings.TrimSuffix(name, "."), ".")
}

// CountLabels returns the number of labels in a canonical name.
func CountLabels(name string) int { return len(Labels(name)) }

// Parent returns the name with its leftmost label removed;
// Parent("example.ru.") is "ru.", Parent("ru.") is ".", Parent(".") is ".".
func Parent(name string) string {
	if name == "." || name == "" {
		return "."
	}
	i := strings.IndexByte(name, '.')
	if i < 0 || i == len(name)-1 {
		return "."
	}
	return name[i+1:]
}

// TLD returns the rightmost label of a canonical name (without the root
// dot), or "" for the root itself. TLD("ns1.example.com.") is "com".
func TLD(name string) string {
	labels := Labels(name)
	if len(labels) == 0 {
		return ""
	}
	return labels[len(labels)-1]
}

// IsSubdomain reports whether child is equal to or ends with parent
// (both canonical). Every name is a subdomain of the root.
func IsSubdomain(child, parent string) bool {
	if parent == "." {
		return true
	}
	if child == parent {
		return true
	}
	return strings.HasSuffix(child, "."+parent)
}

// Join prepends a label to a canonical suffix: Join("ns1", "example.ru.")
// is "ns1.example.ru.".
func Join(label, suffix string) string {
	if suffix == "." {
		return label + "."
	}
	return label + "." + suffix
}

// appendName encodes a canonical name in uncompressed wire form without
// allocating intermediate label slices.
func appendName(b []byte, name string) ([]byte, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("dns: invalid name %q", name)
	}
	if name == "." {
		return append(b, 0), nil
	}
	for pos := 0; pos < len(name); {
		dot := strings.IndexByte(name[pos:], '.') // ValidName guarantees 1..63
		b = append(b, byte(dot))
		b = append(b, name[pos:pos+dot]...)
		pos += dot + 1
	}
	return append(b, 0), nil
}
