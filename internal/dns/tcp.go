package dns

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"
)

// DNS over TCP (RFC 1035 §4.2.2): each message is preceded by a two-octet
// length field. TCP is the fallback path when a UDP response arrives
// truncated (TC bit), and the only path for responses beyond 512 octets
// in this classic (EDNS0-less) implementation.

// TCPTransport exchanges queries over TCP with the RFC 1035 framing.
type TCPTransport struct {
	Port    int
	Timeout time.Duration
}

// Exchange implements Transport.
func (t *TCPTransport) Exchange(ctx context.Context, server netip.Addr, query *Message) (*Message, error) {
	port := t.Port
	if port == 0 {
		port = 53
	}
	timeout := t.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	wb := getWireBuf()
	defer putWireBuf(wb)
	wire, err := query.AppendEncode((*wb)[:0])
	if err != nil {
		return nil, err
	}
	*wb = wire
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", netip.AddrPortFrom(server, uint16(port)).String())
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	if ctxDeadline, ok := ctx.Deadline(); ok && ctxDeadline.Before(deadline) {
		deadline = ctxDeadline
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if err := writeTCPMessage(conn, wire); err != nil {
		return nil, err
	}
	rb := getWireBuf()
	defer putWireBuf(rb)
	respWire, err := readTCPMessage(conn, (*rb)[:0])
	if err != nil {
		return nil, err
	}
	*rb = respWire
	resp, err := Decode(respWire) // does not alias respWire
	if err != nil {
		return nil, err
	}
	if resp.ID != query.ID {
		return nil, ErrIDMismatch
	}
	return resp, nil
}

func writeTCPMessage(w io.Writer, wire []byte) error {
	if len(wire) > maxMsgSize {
		return fmt.Errorf("dns: message too large for TCP framing (%d)", len(wire))
	}
	var frame [2]byte
	binary.BigEndian.PutUint16(frame[:], uint16(len(wire)))
	if _, err := w.Write(frame[:]); err != nil {
		return err
	}
	_, err := w.Write(wire)
	return err
}

// readTCPMessage reads one framed message into buf (grown as needed) and
// returns the filled slice; callers own buf and may recycle it once the
// message has been decoded.
func readTCPMessage(r io.Reader, buf []byte) ([]byte, error) {
	var frame [2]byte
	if _, err := io.ReadFull(r, frame[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(frame[:]))
	if cap(buf) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// FallbackTransport retries a truncated response over a second transport,
// the way stub resolvers fall back from UDP to TCP.
type FallbackTransport struct {
	// Primary is usually UDP; Fallback usually TCP.
	Primary  Transport
	Fallback Transport
}

// Exchange implements Transport.
func (t *FallbackTransport) Exchange(ctx context.Context, server netip.Addr, query *Message) (*Message, error) {
	resp, err := t.Primary.Exchange(ctx, server, query)
	if err != nil {
		return nil, err
	}
	if !resp.Truncated || t.Fallback == nil {
		return resp, nil
	}
	return t.Fallback.Exchange(ctx, server, query)
}

// ListenTCP starts serving the handler over TCP on addr ("127.0.0.1:0"
// for an ephemeral port), alongside any UDP listener. TCP responses are
// never truncated.
func (s *Server) ListenTCP(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("dns: server already closed")
	}
	s.tcpLn = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// TCPAddr returns the TCP listener address, valid after ListenTCP.
func (s *Server) TCPAddr() netip.AddrPort {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tcpLn == nil {
		return netip.AddrPort{}
	}
	return s.tcpLn.Addr().(*net.TCPAddr).AddrPort()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	var connWG sync.WaitGroup
	defer connWG.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // closed
		}
		connWG.Add(1)
		go func() {
			defer connWG.Done()
			defer conn.Close()
			s.serveTCPConn(conn)
		}()
	}
}

// serveTCPConn handles queries on one connection until EOF or error; TCP
// connections may carry multiple queries (RFC 7766).
func (s *Server) serveTCPConn(conn net.Conn) {
	// One read and one write buffer serve the whole connection (RFC 7766
	// connections carry many queries).
	var readBuf, writeBuf []byte
	for {
		if err := conn.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
			return
		}
		wire, err := readTCPMessage(conn, readBuf[:0])
		if err != nil {
			return
		}
		readBuf = wire
		query, err := Decode(wire)
		if err != nil || query.Response {
			return // junk on a TCP stream: drop the connection
		}
		raddr := netip.AddrPort{}
		if tcp, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
			raddr = tcp.AddrPort()
		}
		resp := s.Handler.ServeDNS(query, raddr.Addr())
		if resp == nil {
			return
		}
		out, err := resp.AppendEncode(writeBuf[:0])
		if err != nil {
			return
		}
		writeBuf = out
		if err := writeTCPMessage(conn, out); err != nil {
			return
		}
	}
}
