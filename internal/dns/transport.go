package dns

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"
)

// Transport exchanges one DNS query with the server at addr and returns
// its response. Implementations: UDPTransport speaks real RFC 1035 UDP on
// the host network; MemNet short-circuits to in-process handlers, which is
// what makes multi-million-query measurement sweeps affordable.
type Transport interface {
	Exchange(ctx context.Context, server netip.Addr, query *Message) (*Message, error)
}

// Handler answers DNS queries, in the manner of http.Handler.
type Handler interface {
	ServeDNS(q *Message, from netip.Addr) *Message
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(q *Message, from netip.Addr) *Message

// ServeDNS implements Handler.
func (f HandlerFunc) ServeDNS(q *Message, from netip.Addr) *Message { return f(q, from) }

// Errors surfaced by transports.
var (
	// ErrNoRoute means no server is bound at the target address (the
	// in-memory analog of an ICMP unreachable / timeout).
	ErrNoRoute = errors.New("dns: no server at address")
	// ErrIDMismatch means the response ID did not match the query.
	ErrIDMismatch = errors.New("dns: response ID mismatch")
)

// MemNet is an in-memory "Internet": a routing table from server address
// to handler. Exchange serializes the query and deserializes the response
// through the real codec, so everything above the socket layer behaves
// identically to UDP. MemNet is safe for concurrent use; binds are
// expected to be rare relative to exchanges.
type MemNet struct {
	mu       sync.RWMutex
	handlers map[netip.Addr]Handler
	// Unreachable marks addresses that drop queries (used to simulate
	// outages such as Netnod withdrawing service).
	unreachable map[netip.Addr]bool
	// WireTaps observe every exchanged query (e.g. for counting).
	tap func(server netip.Addr, q *Message)
	// intern dedups decoded names and RData across this network's
	// lifetime; the simulated world's name population is fixed, so the
	// steady-state decode allocates almost nothing.
	intern *wireIntern
	// refCodec routes exchanges through the original allocation-heavy
	// codec; the equivalence oracle path.
	refCodec atomic.Bool
}

// NewMemNet returns an empty in-memory network.
func NewMemNet() *MemNet {
	return &MemNet{
		handlers:    make(map[netip.Addr]Handler),
		unreachable: make(map[netip.Addr]bool),
		intern:      newWireIntern(),
	}
}

// SetReferenceCodec switches this network between the fast wire codec
// (default) and the preserved reference codec. The two are byte- and
// value-equivalent — the switch exists so equivalence tests can run whole
// studies down the original path.
func (m *MemNet) SetReferenceCodec(on bool) { m.refCodec.Store(on) }

// Bind attaches a handler to an address, replacing any previous binding.
func (m *MemNet) Bind(addr netip.Addr, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[addr] = h
}

// Unbind removes the handler at addr.
func (m *MemNet) Unbind(addr netip.Addr) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.handlers, addr)
}

// SetUnreachable marks or clears an address as dropping all queries.
func (m *MemNet) SetUnreachable(addr netip.Addr, down bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.unreachable[addr] = down
}

// SetTap installs a function observing every exchange (nil to remove).
func (m *MemNet) SetTap(tap func(server netip.Addr, q *Message)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tap = tap
}

// Exchange implements Transport. The query is round-tripped through the
// wire codec to keep the in-memory path faithful to the UDP path.
func (m *MemNet) Exchange(ctx context.Context, server netip.Addr, query *Message) (*Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	h := m.handlers[server]
	down := m.unreachable[server]
	tap := m.tap
	m.mu.RUnlock()
	if tap != nil {
		tap(server, query)
	}
	if down || h == nil {
		return nil, fmt.Errorf("%w: %v", ErrNoRoute, server)
	}
	if m.refCodec.Load() {
		return m.exchangeReference(query, h)
	}
	wb := getWireBuf()
	wire, err := query.AppendEncode((*wb)[:0])
	if err != nil {
		putWireBuf(wb)
		return nil, err
	}
	*wb = wire
	decoded, err := decodeWith(wire, m.intern)
	putWireBuf(wb) // decoded does not alias the buffer
	if err != nil {
		return nil, err
	}
	resp := h.ServeDNS(decoded, netip.AddrFrom4([4]byte{127, 0, 0, 1}))
	if resp == nil {
		return nil, fmt.Errorf("%w: handler returned no response", ErrNoRoute)
	}
	wb = getWireBuf()
	respWire, err := resp.AppendEncode((*wb)[:0])
	if err != nil {
		putWireBuf(wb)
		return nil, err
	}
	*wb = respWire
	out, err := decodeWith(respWire, m.intern)
	putWireBuf(wb)
	if err != nil {
		return nil, err
	}
	if out.ID != query.ID {
		return nil, ErrIDMismatch
	}
	return out, nil
}

// exchangeReference is Exchange's round-trip through the reference codec.
func (m *MemNet) exchangeReference(query *Message, h Handler) (*Message, error) {
	wire, err := ReferenceEncode(query)
	if err != nil {
		return nil, err
	}
	decoded, err := ReferenceDecode(wire)
	if err != nil {
		return nil, err
	}
	resp := h.ServeDNS(decoded, netip.AddrFrom4([4]byte{127, 0, 0, 1}))
	if resp == nil {
		return nil, fmt.Errorf("%w: handler returned no response", ErrNoRoute)
	}
	respWire, err := ReferenceEncode(resp)
	if err != nil {
		return nil, err
	}
	out, err := ReferenceDecode(respWire)
	if err != nil {
		return nil, err
	}
	if out.ID != query.ID {
		return nil, ErrIDMismatch
	}
	return out, nil
}

// UDPTransport exchanges queries over real UDP sockets. Port is the
// destination port (53 by default; the simulated servers listen on an
// ephemeral port, so tests inject it).
type UDPTransport struct {
	Port    int
	Timeout time.Duration
}

// Exchange implements Transport over UDP with a single datagram
// round-trip; retries are the Client's job.
func (t *UDPTransport) Exchange(ctx context.Context, server netip.Addr, query *Message) (*Message, error) {
	port := t.Port
	if port == 0 {
		port = 53
	}
	timeout := t.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	wb := getWireBuf()
	defer putWireBuf(wb)
	wire, err := query.AppendEncode((*wb)[:0])
	if err != nil {
		return nil, err
	}
	*wb = wire
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "udp", netip.AddrPortFrom(server, uint16(port)).String())
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	if ctxDeadline, ok := ctx.Deadline(); ok && ctxDeadline.Before(deadline) {
		deadline = ctxDeadline
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, err
	}
	rb := getWireBuf()
	defer putWireBuf(rb)
	buf := (*rb)[:cap(*rb)]
	if len(buf) < maxMsgSize {
		buf = make([]byte, maxMsgSize)
		*rb = buf
	}
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		resp, err := Decode(buf[:n])
		if err != nil {
			// Garbled datagram: keep listening until the deadline.
			continue
		}
		if resp.ID != query.ID {
			continue // stray or spoofed response
		}
		return resp, nil
	}
}

// Client issues queries over a Transport with ID generation, bounded
// retransmission, and jittered exponential backoff. SERVFAIL and
// truncated responses are treated as retryable — on a flapping path both
// are transient, and a single-attempt sweep that takes them at face
// value systematically overcounts failures.
type Client struct {
	Transport Transport
	// Retries is the number of re-sends after the first attempt.
	Retries int
	// Backoff is the base delay before the first retry; each further
	// retry doubles it, scaled by jitter in [0.5, 1). Zero (the default)
	// retries immediately — the in-memory wire has no congestion to wait
	// out, and sweeps over it must not sleep.
	Backoff time.Duration
	// MaxBackoff caps the per-retry delay (0 means 16×Backoff).
	MaxBackoff time.Duration

	// seeded clients derive query IDs and jitter deterministically from
	// seed so lossy runs are reproducible; unseeded clients draw both
	// from a time-seeded RNG.
	seeded bool
	seed   int64
	mu     sync.Mutex
	rng    *rand.Rand

	queries, attempts, retries, recovered, failed atomic.Int64
}

// ClientStats counts query outcomes, for quantifying degraded sweeps.
type ClientStats struct {
	// Queries is the number of Query calls.
	Queries int64
	// Attempts is the number of exchanges issued (≥ Queries).
	Attempts int64
	// Retries is the number of re-sent exchanges (Attempts - Queries for
	// queries that ran to completion).
	Retries int64
	// Recovered is the number of queries that succeeded only after at
	// least one failed, flapped, or truncated attempt.
	Recovered int64
	// Failed is the number of queries that exhausted every attempt.
	Failed int64
}

// NewClient returns a client over the given transport with random IDs.
func NewClient(t Transport) *Client {
	return &Client{Transport: t, Retries: 2, rng: rand.New(rand.NewSource(time.Now().UnixNano()))}
}

// NewSeededClient returns a client whose query IDs and backoff jitter are
// pure functions of (seed, name, type, attempt). Deterministic IDs make
// fault-injected runs reproducible end to end: FaultTransport hashes the
// query ID into its fault decisions, so with a seeded client the same
// (seed, query, attempt) always meets the same fate, no matter how sweep
// workers are scheduled.
func NewSeededClient(t Transport, seed int64) *Client {
	return &Client{Transport: t, Retries: 2, seeded: true, seed: seed}
}

// Stats returns the running counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Queries:   c.queries.Load(),
		Attempts:  c.attempts.Load(),
		Retries:   c.retries.Load(),
		Recovered: c.recovered.Load(),
		Failed:    c.failed.Load(),
	}
}

// idFor produces the query ID for one attempt.
func (c *Client) idFor(name string, qtype Type, attempt int) uint16 {
	if c.seeded {
		h := uint64(14695981039346656037)
		mix := func(v uint64) {
			for i := 0; i < 8; i++ {
				h ^= v & 0xFF
				h *= 1099511628211
				v >>= 8
			}
		}
		mix(uint64(c.seed))
		mix(uint64(qtype))
		mix(uint64(attempt))
		for i := 0; i < len(name); i++ {
			h ^= uint64(name[i])
			h *= 1099511628211
		}
		return uint16(h)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return uint16(c.rng.Intn(1 << 16))
}

// jitter returns the backoff scale factor in [0.5, 1) for an attempt.
func (c *Client) jitter(name string, attempt int) float64 {
	if c.seeded {
		// Reuse the ID hash with a different type salt for a cheap
		// deterministic uniform value.
		return 0.5 + float64(c.idFor(name, Type(0xFFFF), attempt))/float64(1<<17)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return 0.5 + c.rng.Float64()/2
}

// backoff sleeps before retry number attempt (1-based), honoring ctx.
func (c *Client) backoff(ctx context.Context, name string, attempt int) error {
	if c.Backoff <= 0 {
		return nil
	}
	d := c.Backoff << (attempt - 1)
	max := c.MaxBackoff
	if max <= 0 {
		max = 16 * c.Backoff
	}
	if d > max || d <= 0 { // d <= 0 guards shift overflow
		d = max
	}
	d = time.Duration(float64(d) * c.jitter(name, attempt))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// queryPool recycles query messages across Query calls. Safe because
// transports must not retain the query past Exchange (responses are
// decoded or copied, never aliased to it).
var queryPool = sync.Pool{
	New: func() any { return &Message{Questions: make([]Question, 1)} },
}

// Query sends a single question to server and returns the response,
// retransmitting (with a fresh ID per attempt, as real resolvers do) on
// errors, SERVFAIL flaps, and truncated responses. A SERVFAIL or
// truncated response that persists through every attempt is returned to
// the caller as-is — it is a response, and the caller decides whether to
// fail over to another server.
func (c *Client) Query(ctx context.Context, server netip.Addr, name string, qtype Type) (*Message, error) {
	c.queries.Add(1)
	var lastErr error
	var lastResp *Message
	// One pooled query message serves every attempt; only the ID changes
	// per retransmission.
	q := queryPool.Get().(*Message)
	defer queryPool.Put(q)
	q.Header = Header{}
	q.Questions = append(q.Questions[:0], Question{Name: Canonical(name), Type: qtype, Class: ClassIN})
	q.Answers, q.Authority, q.Additional = nil, nil, nil
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			if err := c.backoff(ctx, name, attempt); err != nil {
				return nil, err
			}
		}
		c.attempts.Add(1)
		q.ID = c.idFor(name, qtype, attempt)
		resp, err := c.Transport.Exchange(ctx, server, q)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			continue
		}
		if resp.RCode == RCodeServFail || resp.Truncated {
			lastResp, lastErr = resp, nil
			continue
		}
		if attempt > 0 {
			c.recovered.Add(1)
		}
		return resp, nil
	}
	if lastResp != nil {
		return lastResp, nil
	}
	c.failed.Add(1)
	return nil, fmt.Errorf("dns: query %s %s @%v failed: %w", name, qtype, server, lastErr)
}
